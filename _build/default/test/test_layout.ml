(* Tests for sn_layout: cells, flattening, queries, text round trip. *)

module G = Sn_geometry
module L = Sn_layout
module Layer = L.Layer
module Shape = L.Shape
module Cell = L.Cell
module Layout = L.Layout
module Io = L.Layout_io

let rect x0 y0 x1 y1 = G.Rect.make x0 y0 x1 y1

let unit_cell =
  Cell.make ~name:"unit"
    [ Shape.rect ~layer:(Layer.Metal 1) ~net:"gnd" (rect 0.0 0.0 1.0 1.0) ]

let test_layer_names () =
  let roundtrip l = Layer.of_name (Layer.name l) = Some l in
  List.iter
    (fun l -> Alcotest.(check bool) (Layer.name l) true (roundtrip l))
    [ Layer.Substrate_contact; Layer.Nwell; Layer.Diffusion; Layer.Poly;
      Layer.Metal 1; Layer.Metal 6; Layer.Via 0; Layer.Via 5; Layer.Pad;
      Layer.Backgate_probe "m1" ];
  Alcotest.(check bool) "unknown" true (Layer.of_name "bogus" = None)

let test_flatten_translation () =
  let top =
    Cell.make ~name:"top"
      ~instances:
        [ { Cell.cell_name = "unit";
            transform = G.Transform.translate (G.Point.v 10.0 20.0) } ]
      []
  in
  let l = Layout.create ~top:"top" [ top; unit_cell ] in
  match Layout.flatten l with
  | [ s ] ->
    let b = Shape.bbox s in
    Alcotest.(check (float 1e-9)) "x moved" 10.0 b.G.Rect.x0;
    Alcotest.(check (float 1e-9)) "y moved" 20.0 b.G.Rect.y0
  | shapes ->
    Alcotest.failf "expected 1 shape, got %d" (List.length shapes)

let test_flatten_nested () =
  let mid =
    Cell.make ~name:"mid"
      ~instances:
        [ { Cell.cell_name = "unit";
            transform = G.Transform.translate (G.Point.v 1.0 0.0) };
          { Cell.cell_name = "unit";
            transform = G.Transform.translate (G.Point.v 3.0 0.0) } ]
      []
  in
  let top =
    Cell.make ~name:"top"
      ~instances:
        [ { Cell.cell_name = "mid";
            transform = G.Transform.translate (G.Point.v 0.0 5.0) };
          { Cell.cell_name = "mid";
            transform = G.Transform.translate (G.Point.v 0.0 8.0) } ]
      []
  in
  let l = Layout.create ~top:"top" [ top; mid; unit_cell ] in
  Alcotest.(check int) "4 shapes" 4 (List.length (Layout.flatten l));
  let b = Layout.bbox l in
  Alcotest.(check (float 1e-9)) "bbox x1" 4.0 b.G.Rect.x1;
  Alcotest.(check (float 1e-9)) "bbox y1" 9.0 b.G.Rect.y1

let test_unknown_cell () =
  let top =
    Cell.make ~name:"top"
      ~instances:
        [ { Cell.cell_name = "missing"; transform = G.Transform.identity } ]
      []
  in
  Alcotest.check_raises "unknown cell" (Layout.Unknown_cell "missing")
    (fun () -> ignore (Layout.create ~top:"top" [ top ]))

let test_recursive_hierarchy () =
  let a =
    Cell.make ~name:"a"
      ~instances:[ { Cell.cell_name = "b"; transform = G.Transform.identity } ]
      []
  in
  let b =
    Cell.make ~name:"b"
      ~instances:[ { Cell.cell_name = "a"; transform = G.Transform.identity } ]
      []
  in
  Alcotest.check_raises "cycle" (Layout.Recursive_hierarchy "a") (fun () ->
      ignore (Layout.create ~top:"a" [ a; b ]))

let test_duplicate_cell () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Layout.create: duplicate cell unit") (fun () ->
      ignore (Layout.create ~top:"unit" [ unit_cell; unit_cell ]))

let sample_layout () =
  let cell =
    Cell.make ~name:"chip"
      [
        Shape.rect ~layer:Layer.Substrate_contact ~net:"gnd"
          (rect 0.0 0.0 2.0 2.0);
        Shape.rect ~layer:Layer.Nwell ~net:"vdd" (rect 5.0 5.0 9.0 9.0);
        Shape.path ~layer:(Layer.Metal 1) ~net:"gnd" ~from_terminal:"pad"
          ~to_terminal:"ring"
          (G.Path.make ~width:0.5 [ G.Point.v 0.0 0.0; G.Point.v 20.0 0.0 ]);
      ]
  in
  Layout.create ~top:"chip" [ cell ]

let test_queries () =
  let l = sample_layout () in
  Alcotest.(check int) "metal1 shapes" 1
    (List.length (Layout.shapes_on_layer l (Layer.Metal 1)));
  Alcotest.(check int) "gnd shapes" 2
    (List.length (Layout.shapes_of_net l "gnd"));
  Alcotest.(check (list string)) "nets" [ "gnd"; "vdd" ] (Layout.nets l)

let test_io_roundtrip () =
  let l = sample_layout () in
  let text = Io.to_string l in
  let l2 = Io.of_string text in
  Alcotest.(check string) "top preserved" (Layout.top_name l) (Layout.top_name l2);
  Alcotest.(check int) "shape count" (List.length (Layout.flatten l))
    (List.length (Layout.flatten l2));
  Alcotest.(check (list string)) "nets preserved" (Layout.nets l) (Layout.nets l2);
  (* second round trip must be a fixed point *)
  Alcotest.(check string) "idempotent" text (Io.to_string l2)

let test_io_hierarchy_roundtrip () =
  let top =
    Cell.make ~name:"top"
      ~instances:
        [ { Cell.cell_name = "unit";
            transform = G.Transform.make G.Transform.R90 (G.Point.v 2.0 3.0) } ]
      []
  in
  let l = Layout.create ~top:"top" [ top; unit_cell ] in
  let l2 = Io.of_string (Io.to_string l) in
  match (Layout.flatten l, Layout.flatten l2) with
  | [ a ], [ b ] ->
    Alcotest.(check bool) "transformed bbox preserved" true
      (G.Rect.equal (Shape.bbox a) (Shape.bbox b))
  | _ -> Alcotest.fail "expected single shapes"

let test_io_errors () =
  let check_fails name text =
    match Io.of_string text with
    | exception Io.Parse_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Parse_error" name
  in
  check_fails "missing header" "cell a\nend\n";
  check_fails "rect outside cell" "layout top=a\nrect metal1 n 0 0 1 1\n";
  check_fails "bad layer" "layout top=a\ncell a\nrect bogus n 0 0 1 1\nend\n";
  check_fails "bad number" "layout top=a\ncell a\nrect metal1 n 0 0 1 x\nend\n";
  check_fails "odd path coords"
    "layout top=a\ncell a\npath metal1 n 1 - - 0 0 1\nend\n"

let test_io_file () =
  let l = sample_layout () in
  let path = Filename.temp_file "snoise_layout" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path l;
      let l2 = Io.load path in
      Alcotest.(check int) "shapes" 3 (List.length (Layout.flatten l2)))

let test_map_shapes_widening () =
  let l = sample_layout () in
  let widened =
    Layout.map_shapes
      (fun s ->
        if s.Shape.net = "gnd" && Layer.is_metal s.Shape.layer then
          Shape.scale_path_width 2.0 s
        else s)
      l
  in
  let path_width layout =
    match
      List.filter_map
        (fun (s : Shape.t) ->
          match s.Shape.geometry with
          | Shape.Path { path; _ } -> Some (G.Path.width path)
          | Shape.Rect _ -> None)
        (Layout.flatten layout)
    with
    | [ w ] -> w
    | _ -> Alcotest.fail "expected one path"
  in
  Alcotest.(check (float 1e-9)) "width doubled" (2.0 *. path_width l)
    (path_width widened)

(* ------------------------------------------------------------------ *)
(* DRC *)

module Drc = L.Drc
module T = Sn_tech.Tech

let test_drc_clean () =
  let l =
    Layout.create ~top:"c"
      [ Cell.make ~name:"c"
          [ Shape.path ~layer:(Layer.Metal 1) ~net:"a" ~from_terminal:"x"
              ~to_terminal:"y"
              (G.Path.make ~width:1.0 [ G.Point.v 0.0 0.0; G.Point.v 9.0 0.0 ]) ] ]
  in
  Alcotest.(check int) "clean" 0 (List.length (Drc.check ~tech:T.imec018 l))

let test_drc_min_width () =
  let l =
    Layout.create ~top:"c"
      [ Cell.make ~name:"c"
          [ Shape.path ~layer:(Layer.Metal 1) ~net:"a" ~from_terminal:"x"
              ~to_terminal:"y"
              (G.Path.make ~width:0.1 [ G.Point.v 0.0 0.0; G.Point.v 9.0 0.0 ]) ] ]
  in
  match Drc.check ~tech:T.imec018 l with
  | [ Drc.Min_width { width; minimum; _ } ] ->
    Alcotest.(check (float 1e-9)) "width" 0.1 width;
    Alcotest.(check bool) "minimum sensible" true (minimum > width)
  | vs -> Alcotest.failf "expected 1 min-width violation, got %d" (List.length vs)

let test_drc_net_short () =
  let l =
    Layout.create ~top:"c"
      [ Cell.make ~name:"c"
          [ Shape.rect ~layer:(Layer.Metal 1) ~net:"a" (rect 0.0 0.0 5.0 5.0);
            Shape.rect ~layer:(Layer.Metal 1) ~net:"b" (rect 4.0 4.0 9.0 9.0) ] ]
  in
  match Drc.check ~tech:T.imec018 l with
  | [ Drc.Net_short { net_a; net_b; _ } ] ->
    Alcotest.(check (list string)) "nets" [ "a"; "b" ]
      (List.sort compare [ net_a; net_b ])
  | vs -> Alcotest.failf "expected 1 short, got %d" (List.length vs)

let test_drc_same_net_overlap_ok () =
  let l =
    Layout.create ~top:"c"
      [ Cell.make ~name:"c"
          [ Shape.rect ~layer:(Layer.Metal 1) ~net:"a" (rect 0.0 0.0 5.0 5.0);
            Shape.rect ~layer:(Layer.Metal 1) ~net:"a" (rect 4.0 4.0 9.0 9.0) ] ]
  in
  Alcotest.(check int) "no violation" 0
    (List.length (Drc.check ~tech:T.imec018 l))

let test_drc_testchip_layouts_clean () =
  (* the generators must produce DRC-clean layouts *)
  let check_clean name layout =
    let vs = Drc.check ~tech:T.imec018 layout in
    List.iter (fun v -> Format.eprintf "%s: %a@." name Drc.pp v) vs;
    Alcotest.(check int) (name ^ " clean") 0 (List.length vs)
  in
  check_clean "nmos"
    (Sn_testchip.Nmos_structure.layout Sn_testchip.Nmos_structure.default);
  check_clean "vco" (Sn_testchip.Vco_chip.layout Sn_testchip.Vco_chip.default)

let suites =
  [
    ( "layout",
      [
        Alcotest.test_case "layer name round trip" `Quick test_layer_names;
        Alcotest.test_case "flatten translation" `Quick test_flatten_translation;
        Alcotest.test_case "flatten nested" `Quick test_flatten_nested;
        Alcotest.test_case "unknown cell" `Quick test_unknown_cell;
        Alcotest.test_case "recursive hierarchy" `Quick test_recursive_hierarchy;
        Alcotest.test_case "duplicate cell" `Quick test_duplicate_cell;
        Alcotest.test_case "queries" `Quick test_queries;
        Alcotest.test_case "io round trip" `Quick test_io_roundtrip;
        Alcotest.test_case "io hierarchy round trip" `Quick test_io_hierarchy_roundtrip;
        Alcotest.test_case "io parse errors" `Quick test_io_errors;
        Alcotest.test_case "io file save/load" `Quick test_io_file;
        Alcotest.test_case "ground line widening" `Quick test_map_shapes_widening;
      ] );
    ( "layout.drc",
      [
        Alcotest.test_case "clean layout" `Quick test_drc_clean;
        Alcotest.test_case "min width" `Quick test_drc_min_width;
        Alcotest.test_case "net short" `Quick test_drc_net_short;
        Alcotest.test_case "same-net overlap ok" `Quick
          test_drc_same_net_overlap_ok;
        Alcotest.test_case "testchip layouts clean" `Quick
          test_drc_testchip_layouts_clean;
      ] );
  ]
