(* Integration tests: the full methodology against the paper's
   reported numbers.  Each figure/table of the evaluation section has
   its acceptance band asserted here (documented in EXPERIMENTS.md).

   The experiment fixtures are lazy so each expensive extraction runs
   once and is shared by all assertions on it. *)

module E = Snoise.Experiments
module Flow = Snoise.Flow
module Merge = Snoise.Merge
module Impact = Sn_rf.Impact

let fig3 = lazy (E.fig3 ())
let sec3 = lazy (E.sec3_numbers ())
let fig7 = lazy (E.fig7 ())
let fig8 = lazy (E.fig8 ())
let fig9 = lazy (E.fig9 ())
let fig10 = lazy (E.fig10 ())
let card = lazy (E.vco_card ())

let check_band name lo hi v =
  Alcotest.(check bool)
    (Printf.sprintf "%s = %g in [%g, %g]" name v lo hi)
    true
    (v >= lo && v <= hi)

(* ------------------------------------------------------------------ *)
(* Figure 3 / section 3 *)

let test_fig3_divider () =
  let r = Lazy.force fig3 in
  (* paper: 1/652; band: same order, within ~4 dB *)
  check_band "division ratio" 400.0 1200.0 (1.0 /. r.E.divider)

let test_fig3_r_factor () =
  let r = Lazy.force fig3 in
  (* paper: interconnect R raises v_bs by "almost a factor two" *)
  check_band "R factor" 1.5 3.0 (r.E.divider /. r.E.divider_no_r)

let test_fig3_transfer_band () =
  let r = Lazy.force fig3 in
  (* paper: -45 to -52 dB across the bias sweep *)
  List.iter
    (fun (p : Flow.nmos_point) ->
      check_band "transfer" (-57.0) (-42.0) p.Flow.transfer_sim_db)
    r.E.points

let test_fig3_hand_calculation_agreement () =
  let r = Lazy.force fig3 in
  (* paper: the back-gate + interconnect model explains the impact
     within a maximal error of 1 dB *)
  Alcotest.(check bool)
    (Printf.sprintf "max hand error %.2f <= 1 dB" r.E.max_hand_error_db)
    true
    (r.E.max_hand_error_db <= 1.0)

let test_fig3_transfer_decreases_with_bias () =
  let r = Lazy.force fig3 in
  (* gmb/gds falls with bias, so the transfer must fall monotonically *)
  let rec check = function
    | (a : Flow.nmos_point) :: (b :: _ as rest) ->
      Alcotest.(check bool) "monotone" true
        (b.Flow.transfer_sim_db < a.Flow.transfer_sim_db);
      check rest
    | [ _ ] | [] -> ()
  in
  check r.E.points

let test_sec3_gmb_gds_ranges () =
  let r = Lazy.force sec3 in
  let lo_gmb, hi_gmb = r.E.gmb_range_ms in
  let lo_gds, hi_gds = r.E.gds_range_ms in
  (* paper: gmb 10-38 mS, gds 2.8-22 mS *)
  check_band "gmb min [mS]" 6.0 16.0 lo_gmb;
  check_band "gmb max [mS]" 28.0 55.0 hi_gmb;
  check_band "gds min [mS]" 1.5 4.5 lo_gds;
  check_band "gds max [mS]" 15.0 32.0 hi_gds

let test_sec3_f3db_crossover () =
  let r = Lazy.force sec3 in
  (* paper: junction-cap path overtakes the back-gate path between
     5 and 19 GHz over the bias range *)
  check_band "f3db low" 3.0 8.0 r.E.f3db_min_ghz;
  check_band "f3db high" 14.0 30.0 r.E.f3db_max_ghz

(* ------------------------------------------------------------------ *)
(* Figure 7 *)

let test_fig7_spur_positions () =
  let r = Lazy.force fig7 in
  (* spurs must exist at fc +- fn, well below carrier, model and DFT
     measurement in agreement *)
  Alcotest.(check bool) "upper spur below carrier" true
    (r.E.model_upper_dbm < r.E.carrier_dbm -. 20.0);
  Alcotest.(check bool) "model vs measured upper" true
    (Float.abs (r.E.model_upper_dbm -. r.E.measured_upper_dbm) <= 2.0);
  Alcotest.(check bool) "model vs measured lower" true
    (Float.abs (r.E.model_lower_dbm -. r.E.measured_lower_dbm) <= 2.0)

let test_fig7_carrier_card () =
  let r = Lazy.force fig7 in
  check_band "carrier GHz" 2.5 3.7 (r.E.carrier_freq /. 1.0e9)

let test_fig7_spectrum_has_three_lines () =
  let r = Lazy.force fig7 in
  (* carrier + two spurs must stick out of the floor *)
  let strong =
    List.filter (fun (_, dbm) -> dbm > r.E.model_upper_dbm -. 15.0) r.E.spectrum
  in
  (* group by proximity: at least three distinct regions *)
  let offsets = List.map fst strong in
  let near x = List.exists (fun o -> Float.abs (o -. x) < 2.0e6) offsets in
  Alcotest.(check bool) "carrier line" true (near 0.0);
  Alcotest.(check bool) "upper spur line" true (near r.E.f_noise);
  Alcotest.(check bool) "lower spur line" true (near (-.r.E.f_noise))

(* ------------------------------------------------------------------ *)
(* Figure 8 *)

let test_fig8_slope () =
  let families = Lazy.force fig8 in
  (* paper: spur power linear in log f (resistive coupling followed by
     FM, -20 dB/decade) *)
  List.iter
    (fun (f : E.fig8_family) ->
      check_band
        (Printf.sprintf "slope at vtune %.2f" f.E.vtune)
        (-22.0) (-17.0) f.E.slope_db_per_decade)
    families

let test_fig8_model_vs_behavioral () =
  let families = Lazy.force fig8 in
  (* paper: simulation matches measurement within 2 dB; our analytic
     model must match the synthesized-waveform DFT within the same *)
  List.iter
    (fun (f : E.fig8_family) ->
      Alcotest.(check bool)
        (Printf.sprintf "vtune %.2f: max err %.2f <= 2 dB" f.E.vtune
           f.E.max_model_vs_behavioral_db)
        true
        (f.E.max_model_vs_behavioral_db <= 2.0))
    families

let test_fig8_left_right_nearly_equal () =
  let families = Lazy.force fig8 in
  (* paper: small difference between left and right spur (negligible
     AM): close but the families need not be identical *)
  List.iter
    (fun (f : E.fig8_family) ->
      List.iter
        (fun (p : E.fig8_point) ->
          Alcotest.(check bool) "spur asymmetry < 3 dB" true
            (Float.abs (p.E.upper_dbm -. p.E.lower_dbm) < 3.0))
        f.E.points)
    families

let test_fig8_vtune_families_distinct () =
  let families = Lazy.force fig8 in
  match families with
  | a :: b :: _ ->
    Alcotest.(check bool) "carriers differ with vtune" true
      (Float.abs (a.E.carrier_ghz -. b.E.carrier_ghz) > 0.05)
  | _ -> Alcotest.fail "expected several vtune families"

(* ------------------------------------------------------------------ *)
(* Figure 9 *)

let find_entry r label =
  List.find (fun (e : E.fig9_entry) -> e.E.label = label) r.E.entries

let test_fig9_ground_dominates () =
  let r = Lazy.force fig9 in
  (* paper: the ground interconnect is the dominant path, back-gate
     about 20 dB lower *)
  check_band "ground - backgate gap [dB]" 12.0 28.0
    r.E.ground_minus_backgate_db

let test_fig9_resistive_paths_slope () =
  let r = Lazy.force fig9 in
  let ground = find_entry r "ground interconnect" in
  let backgate = find_entry r "nmos back-gate" in
  check_band "ground slope" (-22.0) (-18.0) ground.E.slope_db_per_decade;
  check_band "backgate slope" (-22.0) (-18.0) backgate.E.slope_db_per_decade

let test_fig9_inductor_flat () =
  let r = Lazy.force fig9 in
  (* paper: capacitive coupling followed by FM - constant with
     frequency *)
  Alcotest.(check bool)
    (Printf.sprintf "inductor flatness %.2f dB < 2 dB" r.E.inductor_flatness_db)
    true
    (r.E.inductor_flatness_db < 2.0)

let test_fig9_wells_below_inductor () =
  let r = Lazy.force fig9 in
  (* paper: PMOS and varactor (both in n-wells) are less important
     than the inductor *)
  let at_10mhz (e : E.fig9_entry) =
    Sn_numerics.Sweep.interp1
      (Array.of_list (List.map fst e.E.spur_dbm_by_freq))
      (Array.of_list (List.map snd e.E.spur_dbm_by_freq))
      10.0e6
  in
  let ind = at_10mhz (find_entry r "inductor") in
  let pmos = at_10mhz (find_entry r "pmos n-well") in
  let var = at_10mhz (find_entry r "varactor n-well") in
  Alcotest.(check bool) "pmos below inductor" true (pmos < ind);
  Alcotest.(check bool) "varactor below inductor" true (var < ind)

(* ------------------------------------------------------------------ *)
(* Figure 10 *)

let test_fig10_improvement () =
  let r = Lazy.force fig10 in
  (* paper: 4.5 dB predicted improvement (6 dB ideal bound) *)
  check_band "mean improvement [dB]" 3.0 6.0 r.E.mean_improvement_db

let test_fig10_resistance_halved () =
  let r = Lazy.force fig10 in
  Alcotest.(check (float 0.05))
    "wire R halves"
    (r.E.wire_ohms_normal /. 2.0)
    r.E.wire_ohms_widened

let test_fig10_improvement_below_ideal () =
  let r = Lazy.force fig10 in
  Alcotest.(check bool) "below the 6 dB ideal bound" true
    (r.E.mean_improvement_db < 6.02)

(* ------------------------------------------------------------------ *)
(* VCO card *)

let test_vco_card () =
  let r = Lazy.force card in
  check_band "carrier [GHz]" 2.5 3.7 r.E.carrier_ghz;
  check_band "phase noise [dBc/Hz]" (-110.0) (-90.0) r.E.phase_noise_100k_dbc;
  Alcotest.(check (float 1e-9)) "core current" 5.0 r.E.core_current_ma;
  Alcotest.(check (float 1e-9)) "supply" 1.8 r.E.supply_v;
  let lo, hi = r.E.tuning_range_ghz in
  Alcotest.(check bool) "tuning range spans some band" true (hi -. lo > 0.2)

(* ------------------------------------------------------------------ *)
(* merge mechanics *)

let test_merge_well_net_naming () =
  Alcotest.(check string) "strips prefix" "vdd_local"
    (Snoise.Merge.well_net "nwell:vdd_local");
  Alcotest.(check string) "plain name unchanged" "gnd"
    (Snoise.Merge.well_net "gnd")

let test_merge_macromodel_elements () =
  let module Port = Sn_substrate.Port in
  let module Mac = Sn_substrate.Macromodel in
  let module G = Sn_geometry in
  let ports =
    [| Port.v ~name:"a" ~kind:Port.Resistive [ G.Rect.make 0.0 0.0 1.0 1.0 ];
       Port.v ~name:"nwell:vdd" ~kind:Port.Well [ G.Rect.make 2.0 2.0 3.0 3.0 ] |]
  in
  let g = Sn_numerics.Mat.of_arrays [| [| 1e-3; -1e-3 |]; [| -1e-3; 1e-3 |] |] in
  let m =
    Mac.make ~ports ~conductance:g ~well_capacitance:[ ("nwell:vdd", 50e-15) ]
  in
  let elements = Merge.of_macromodel m in
  Alcotest.(check int) "1 R + 1 C" 2 (List.length elements);
  let has_cap =
    List.exists
      (function
        | Sn_circuit.Element.Capacitor { n1 = "nwell:vdd"; n2 = "vdd"; _ } ->
          true
        | _ -> false)
      elements
  in
  Alcotest.(check bool) "well cap bridges port to net" true has_cap

let test_ablation_no_interconnect_resistance () =
  (* the headline claim: ignoring interconnect R (the classical flow)
     underestimates the coupling division substantially *)
  let r = Lazy.force fig3 in
  Alcotest.(check bool) "classical flow underestimates" true
    (r.E.divider_no_r < r.E.divider)

(* ------------------------------------------------------------------ *)
(* aggressor *)

let test_aggressor_experiment () =
  let r = E.aggressor_comb () in
  Alcotest.(check int) "8 harmonics" 8 (List.length r.E.lines);
  (match r.E.lines with
   | first :: rest ->
     List.iter
       (fun (l : Sn_rf.Aggressor.comb_line) ->
         Alcotest.(check bool) "fundamental dominates" true
           (l.Sn_rf.Aggressor.upper_dbm
            <= first.Sn_rf.Aggressor.upper_dbm +. 0.1))
       rest
   | [] -> Alcotest.fail "empty comb");
  Alcotest.(check bool)
    (Printf.sprintf "total %.1f dBm plausible" r.E.total_dbm)
    true
    (r.E.total_dbm > -120.0 && r.E.total_dbm < -40.0)

(* ------------------------------------------------------------------ *)
(* corners *)

let test_corner_apply_scales () =
  let module T = Sn_tech.Tech in
  let c = { Snoise.Corners.name = "x"; bulk_resistivity = 2.0;
            sheet_resistance = 3.0; contact_resistance = 4.0;
            well_capacitance = 5.0 } in
  let t = Snoise.Corners.apply c T.imec018 in
  let m1 = T.metal t 1 and m1n = T.metal T.imec018 1 in
  Alcotest.(check (float 1e-12)) "sheet x3"
    (3.0 *. m1n.T.sheet_resistance) m1.T.sheet_resistance;
  (match (t.T.substrate.T.layers, T.imec018.T.substrate.T.layers) with
   | l :: _, ln :: _ ->
     Alcotest.(check (float 1e-12)) "rho x2"
       (2.0 *. ln.T.resistivity) l.T.resistivity
   | _ -> Alcotest.fail "profile empty");
  Alcotest.(check (float 1e-20)) "contact x4"
    (4.0 *. T.imec018.T.substrate.T.contact_resistance)
    t.T.substrate.T.contact_resistance;
  Alcotest.(check bool) "scaled card still valid" true
    (Result.is_ok (T.validate t))

let test_corner_resistive_worst_dominates () =
  let corners =
    List.filter
      (fun (c : Snoise.Corners.corner) ->
        c.Snoise.Corners.name = "nominal" || c.Snoise.Corners.name = "res-worst")
      Snoise.Corners.corners_3sigma
  in
  let results = Snoise.Corners.vco_spread ~corners () in
  match results with
  | [ nom; worst ] ->
    Alcotest.(check bool)
      (Printf.sprintf "res-worst %.1f > nominal %.1f dBm"
         worst.Snoise.Corners.spur_at_10mhz_dbm
         nom.Snoise.Corners.spur_at_10mhz_dbm)
      true
      (worst.Snoise.Corners.spur_at_10mhz_dbm
       > nom.Snoise.Corners.spur_at_10mhz_dbm +. 1.0)
  | _ -> Alcotest.fail "expected 2 corners"

let suites =
  [
    ( "flow.fig3",
      [
        Alcotest.test_case "divider ~ 1/652" `Slow test_fig3_divider;
        Alcotest.test_case "interconnect R factor ~ 2" `Slow test_fig3_r_factor;
        Alcotest.test_case "transfer in -45..-52 band" `Slow
          test_fig3_transfer_band;
        Alcotest.test_case "hand calc within 1 dB" `Slow
          test_fig3_hand_calculation_agreement;
        Alcotest.test_case "transfer monotone in bias" `Slow
          test_fig3_transfer_decreases_with_bias;
        Alcotest.test_case "gmb / gds ranges" `Slow test_sec3_gmb_gds_ranges;
        Alcotest.test_case "f3dB crossover band" `Slow test_sec3_f3db_crossover;
        Alcotest.test_case "classical-flow ablation" `Slow
          test_ablation_no_interconnect_resistance;
      ] );
    ( "flow.fig7",
      [
        Alcotest.test_case "spur positions and levels" `Slow
          test_fig7_spur_positions;
        Alcotest.test_case "carrier near 3 GHz" `Slow test_fig7_carrier_card;
        Alcotest.test_case "three spectral lines" `Slow
          test_fig7_spectrum_has_three_lines;
      ] );
    ( "flow.fig8",
      [
        Alcotest.test_case "-20 dB/dec slope" `Slow test_fig8_slope;
        Alcotest.test_case "model vs DFT within 2 dB" `Slow
          test_fig8_model_vs_behavioral;
        Alcotest.test_case "left/right nearly equal" `Slow
          test_fig8_left_right_nearly_equal;
        Alcotest.test_case "vtune families distinct" `Slow
          test_fig8_vtune_families_distinct;
      ] );
    ( "flow.fig9",
      [
        Alcotest.test_case "ground dominates by ~20 dB" `Slow
          test_fig9_ground_dominates;
        Alcotest.test_case "resistive paths at -20 dB/dec" `Slow
          test_fig9_resistive_paths_slope;
        Alcotest.test_case "inductor flat" `Slow test_fig9_inductor_flat;
        Alcotest.test_case "wells below inductor" `Slow
          test_fig9_wells_below_inductor;
      ] );
    ( "flow.fig10",
      [
        Alcotest.test_case "~4.5 dB improvement" `Slow test_fig10_improvement;
        Alcotest.test_case "wire resistance halved" `Slow
          test_fig10_resistance_halved;
        Alcotest.test_case "below ideal 6 dB" `Slow
          test_fig10_improvement_below_ideal;
      ] );
    ( "flow.card",
      [ Alcotest.test_case "VCO design card" `Slow test_vco_card ] );
    ( "flow.aggressor",
      [ Alcotest.test_case "spur comb experiment" `Slow
          test_aggressor_experiment ] );
    ( "flow.corners",
      [
        Alcotest.test_case "corner scaling" `Quick test_corner_apply_scales;
        Alcotest.test_case "resistive-worst dominates" `Slow
          test_corner_resistive_worst_dominates;
      ] );
    ( "flow.merge",
      [
        Alcotest.test_case "well net naming" `Quick test_merge_well_net_naming;
        Alcotest.test_case "macromodel to elements" `Quick
          test_merge_macromodel_elements;
      ] );
  ]
