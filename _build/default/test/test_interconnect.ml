(* Tests for sn_interconnect: square counting, capacitance extraction,
   via arrays, two-terminal resistance solving, and the Fig. 10
   widening operation. *)

module G = Sn_geometry
module L = Sn_layout
module T = Sn_tech.Tech
module Rc = Sn_interconnect.Rc_netlist
module Extract = Sn_interconnect.Extract

let check_close tol = Alcotest.(check (float tol))

let straight_wire ?(net = "sig") ?(layer = L.Layer.Metal 1) ?(width = 1.0)
    ?(len = 100.0) ?(from_terminal = "a") ?(to_terminal = "b") () =
  L.Shape.path ~layer ~net ~from_terminal ~to_terminal
    (G.Path.make ~width [ G.Point.v 0.0 0.0; G.Point.v len 0.0 ])

let layout_of shapes =
  L.Layout.create ~top:"t" [ L.Cell.make ~name:"t" shapes ]

let extract ?options shapes =
  Extract.extract ?options ~tech:T.imec018 (layout_of shapes)

let test_straight_wire_resistance () =
  (* 100 um / 1 um = 100 squares of metal-1 at 0.08 ohm/sq = 8 ohm *)
  let r = extract [ straight_wire () ] in
  Alcotest.(check int) "one wire" 1 r.Extract.wires_extracted;
  check_close 1e-9 "squares" 100.0 r.Extract.total_squares;
  check_close 1e-9 "resistance" 8.0
    (Rc.resistance_between r.Extract.netlist "a" "b")

let test_wider_wire_less_resistance () =
  let r1 = extract [ straight_wire ~width:1.0 () ] in
  let r2 = extract [ straight_wire ~width:2.0 () ] in
  check_close 1e-9 "half the resistance"
    (Rc.resistance_between r1.Extract.netlist "a" "b" /. 2.0)
    (Rc.resistance_between r2.Extract.netlist "a" "b")

let test_bend_chain () =
  (* an L-shaped wire becomes two series segments with an interior
     node; total R = sum of per-segment squares *)
  let wire =
    L.Shape.path ~layer:(L.Layer.Metal 1) ~net:"sig" ~from_terminal:"a"
      ~to_terminal:"b"
      (G.Path.make ~width:2.0
         [ G.Point.v 0.0 0.0; G.Point.v 40.0 0.0; G.Point.v 40.0 60.0 ])
  in
  let r = extract [ wire ] in
  check_close 1e-9 "L-shape resistance" (0.08 *. (100.0 /. 2.0))
    (Rc.resistance_between r.Extract.netlist "a" "b");
  (* 1 interior node: a, b, bend, plus the substrate cap node *)
  Alcotest.(check bool) "interior node exists" true
    (List.exists
       (fun n -> String.length n > 3 && String.sub n 0 3 = "sig")
       (Rc.nodes r.Extract.netlist))

let test_metal6_lower_sheet_resistance () =
  let r1 = extract [ straight_wire ~layer:(L.Layer.Metal 1) () ] in
  let r6 = extract [ straight_wire ~layer:(L.Layer.Metal 6) () ] in
  Alcotest.(check bool) "thick top metal conducts better" true
    (Rc.resistance_between r6.Extract.netlist "a" "b"
     < Rc.resistance_between r1.Extract.netlist "a" "b")

let test_capacitance_extracted () =
  let r = extract [ straight_wire ~width:2.0 ~len:200.0 () ] in
  let c = Rc.total_capacitance r.Extract.netlist in
  (* area 400 um^2 at ~34.5 aF/um^2 plus fringe: tens of fF *)
  Alcotest.(check bool)
    (Printf.sprintf "C = %g plausible" c)
    true
    (c > 5.0e-15 && c < 200.0e-15);
  (* caps must land on the substrate node *)
  Alcotest.(check bool) "couples to substrate node" true
    (List.mem "sub_bulk" (Rc.nodes r.Extract.netlist))

let test_capacitance_scales_with_area () =
  let c_of len =
    Rc.total_capacitance
      (extract [ straight_wire ~len () ]).Extract.netlist
  in
  Alcotest.(check bool) "C grows ~linearly with length" true
    (let ratio = c_of 200.0 /. c_of 100.0 in
     ratio > 1.8 && ratio < 2.2)

let test_no_capacitance_option () =
  let options =
    { Extract.default_options with Extract.include_capacitance = false }
  in
  let r = extract ~options [ straight_wire () ] in
  check_close 1e-30 "no caps" 0.0 (Rc.total_capacitance r.Extract.netlist)

let test_resistance_ablation () =
  let options =
    { Extract.default_options with Extract.include_resistance = false }
  in
  let r = extract ~options [ straight_wire () ] in
  Alcotest.(check bool) "shorted wire" true
    (Rc.resistance_between r.Extract.netlist "a" "b" < 1.0e-4)

let test_via_array () =
  let via =
    L.Shape.path ~layer:(L.Layer.Via 1) ~net:"sig" ~from_terminal:"m1"
      ~to_terminal:"m2"
      (G.Path.make ~width:1.0 [ G.Point.v 0.0 0.0; G.Point.v 4.0 0.0 ])
  in
  let r = extract [ via ] in
  (* 4 um^2 strip at 0.25 um^2/cut = 16 cuts of 4 ohm each *)
  check_close 1e-9 "via array" 0.25
    (Rc.resistance_between r.Extract.netlist "m1" "m2")

let test_unterminated_skipped () =
  let deco =
    L.Shape.path ~layer:(L.Layer.Metal 1) ~net:"sig"
      (G.Path.make ~width:1.0 [ G.Point.v 0.0 0.0; G.Point.v 10.0 0.0 ])
  in
  let r = extract [ deco; straight_wire () ] in
  Alcotest.(check int) "skipped" 1 r.Extract.wires_skipped;
  Alcotest.(check int) "extracted" 1 r.Extract.wires_extracted

let test_rects_ignored () =
  let strap =
    L.Shape.rect ~layer:(L.Layer.Metal 1) ~net:"sig"
      (G.Rect.make 0.0 0.0 10.0 10.0)
  in
  let r = extract [ strap ] in
  Alcotest.(check int) "no wires" 0 r.Extract.wires_extracted

let test_unknown_metal_rejected () =
  match extract [ straight_wire ~layer:(L.Layer.Metal 9) () ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of metal 9"

let test_widen_net () =
  let shapes = [ straight_wire ~net:"gnd" (); straight_wire ~net:"sig"
                   ~from_terminal:"c" ~to_terminal:"d" () ] in
  let widened = Extract.widen_net ~net:"gnd" ~factor:2.0 (layout_of shapes) in
  let r = Extract.extract ~tech:T.imec018 widened in
  check_close 1e-9 "gnd halved" 4.0
    (Rc.resistance_between r.Extract.netlist "a" "b");
  check_close 1e-9 "sig untouched" 8.0
    (Rc.resistance_between r.Extract.netlist "c" "d")

let test_parallel_wires () =
  (* two wires sharing both terminals halve the resistance *)
  let w2 =
    L.Shape.path ~layer:(L.Layer.Metal 1) ~net:"sig" ~from_terminal:"a"
      ~to_terminal:"b"
      (G.Path.make ~width:1.0 [ G.Point.v 0.0 5.0; G.Point.v 100.0 5.0 ])
  in
  let r = extract [ straight_wire (); w2 ] in
  check_close 1e-9 "parallel combination" 4.0
    (Rc.resistance_between r.Extract.netlist "a" "b")

let test_resistance_between_errors () =
  let r = extract [ straight_wire () ] in
  Alcotest.check_raises "unknown node" Not_found (fun () ->
      ignore (Rc.resistance_between r.Extract.netlist "a" "nonexistent"));
  let two = extract [ straight_wire (); straight_wire ~net:"other"
                        ~from_terminal:"x" ~to_terminal:"y" () ] in
  match Rc.resistance_between two.Extract.netlist "a" "x" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected disconnected failure"

let prop_resistance_matches_formula =
  QCheck.Test.make ~count:50 ~name:"wire R = rho_sheet * L / W"
    QCheck.(pair (float_range 10.0 500.0) (float_range 0.5 10.0))
    (fun (len, width) ->
      let r = extract [ straight_wire ~len ~width () ] in
      let expected = 0.08 *. len /. width in
      let got = Rc.resistance_between r.Extract.netlist "a" "b" in
      Float.abs (got -. expected) < 1e-6 *. expected +. 1e-9)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "interconnect",
      [
        Alcotest.test_case "straight wire" `Quick test_straight_wire_resistance;
        Alcotest.test_case "width scaling" `Quick test_wider_wire_less_resistance;
        Alcotest.test_case "bend chain" `Quick test_bend_chain;
        Alcotest.test_case "metal 6 vs metal 1" `Quick
          test_metal6_lower_sheet_resistance;
        Alcotest.test_case "capacitance extracted" `Quick
          test_capacitance_extracted;
        Alcotest.test_case "capacitance ~ area" `Quick
          test_capacitance_scales_with_area;
        Alcotest.test_case "capacitance off" `Quick test_no_capacitance_option;
        Alcotest.test_case "resistance ablation" `Quick test_resistance_ablation;
        Alcotest.test_case "via array" `Quick test_via_array;
        Alcotest.test_case "unterminated skipped" `Quick
          test_unterminated_skipped;
        Alcotest.test_case "rect straps ignored" `Quick test_rects_ignored;
        Alcotest.test_case "unknown metal" `Quick test_unknown_metal_rejected;
        Alcotest.test_case "widen_net" `Quick test_widen_net;
        Alcotest.test_case "parallel wires" `Quick test_parallel_wires;
        Alcotest.test_case "error paths" `Quick test_resistance_between_errors;
        qcheck prop_resistance_matches_formula;
      ] );
  ]
