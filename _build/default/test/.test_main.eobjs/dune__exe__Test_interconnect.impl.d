test/test_interconnect.ml: Alcotest Float List Printf QCheck QCheck_alcotest Sn_geometry Sn_interconnect Sn_layout Sn_tech String
