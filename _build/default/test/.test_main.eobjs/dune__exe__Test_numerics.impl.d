test/test_numerics.ml: Alcotest Array Complex Float Fun Printf QCheck QCheck_alcotest Random Sn_numerics
