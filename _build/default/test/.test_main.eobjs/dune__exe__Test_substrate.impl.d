test/test_substrate.ml: Alcotest Cell Float Layer Layout List Printf Result Shape Sn_geometry Sn_layout Sn_numerics Sn_substrate Sn_tech
