test/test_geometry.ml: Alcotest List QCheck QCheck_alcotest Sn_geometry
