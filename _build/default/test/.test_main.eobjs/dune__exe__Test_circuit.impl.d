test/test_circuit.ml: Alcotest Float Format List Printf QCheck QCheck_alcotest Sn_circuit Sn_testchip Snoise String
