test/test_rf.ml: Alcotest Complex Float List Printf Sn_numerics Sn_rf String
