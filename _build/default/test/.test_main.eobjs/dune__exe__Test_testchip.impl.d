test/test_testchip.ml: Alcotest Float Lazy List Sn_circuit Sn_engine Sn_geometry Sn_interconnect Sn_layout Sn_substrate Sn_tech Sn_testchip String
