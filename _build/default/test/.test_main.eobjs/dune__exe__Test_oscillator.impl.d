test/test_oscillator.ml: Alcotest Float Lazy Printf Sn_numerics Sn_testchip
