test/test_flow.ml: Alcotest Array Float Lazy List Printf Result Sn_circuit Sn_geometry Sn_numerics Sn_rf Sn_substrate Sn_tech Snoise
