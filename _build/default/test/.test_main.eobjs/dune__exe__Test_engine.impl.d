test/test_engine.ml: Alcotest Array Complex Float Format List Printf QCheck QCheck_alcotest Random Sn_circuit Sn_engine Sn_geometry Sn_numerics Sn_substrate Sn_tech Snoise String
