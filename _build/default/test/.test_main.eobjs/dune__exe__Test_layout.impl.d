test/test_layout.ml: Alcotest Filename Format Fun List Sn_geometry Sn_layout Sn_tech Sn_testchip Sys
