(* Tests for sn_testchip: guard-ring geometry, the generated layouts'
   structural invariants, the device netlists, and text round trips of
   the generated layouts. *)

module G = Sn_geometry
module L = Sn_layout
module Ring = Sn_testchip.Ring
module NS = Sn_testchip.Nmos_structure
module VC = Sn_testchip.Vco_chip
module C = Sn_circuit

let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_geometry () =
  let rects =
    Ring.rects ~center:G.Point.zero ~inner_width:10.0 ~inner_height:10.0
      ~strip:2.0
  in
  Alcotest.(check int) "4 strips" 4 (List.length rects);
  let area = List.fold_left (fun a r -> a +. G.Rect.area r) 0.0 rects in
  check_close 1e-9 "area matches closed form"
    (Ring.area ~inner_width:10.0 ~inner_height:10.0 ~strip:2.0)
    area;
  (* the hole is really hollow *)
  Alcotest.(check bool) "center not covered" false
    (List.exists (fun r -> G.Rect.contains_point r G.Point.zero) rects);
  (* strips don't overlap each other *)
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.iter
    (fun (a, b) ->
      match G.Rect.intersection a b with
      | None -> ()
      | Some o ->
        Alcotest.(check (float 1e-9)) "zero-area touch" 0.0 (G.Rect.area o))
    (pairs rects)

let test_ring_invalid () =
  Alcotest.check_raises "bad strip"
    (Invalid_argument "Ring.rects: dimensions must be > 0") (fun () ->
      ignore
        (Ring.rects ~center:G.Point.zero ~inner_width:1.0 ~inner_height:1.0
           ~strip:0.0))

(* ------------------------------------------------------------------ *)
(* NMOS structure layout *)

let nmos_layout = lazy (NS.layout NS.default)

let shapes_on layout layer =
  L.Layout.shapes_on_layer layout layer

let test_nmos_layout_ports () =
  let ports = Sn_substrate.Port.of_layout (Lazy.force nmos_layout) in
  let names = List.map (fun p -> p.Sn_substrate.Port.name) ports in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("has port " ^ expected) true
        (List.mem expected names))
    [ "backgate:m1"; "mos_gr"; "gr"; "sub_inject" ]

let test_nmos_layout_rings_hollow () =
  let ports = Sn_substrate.Port.of_layout (Lazy.force nmos_layout) in
  let mos_gr =
    List.find (fun p -> p.Sn_substrate.Port.name = "mos_gr") ports
  in
  (* the transistor (at the origin) must not be covered by its ring *)
  Alcotest.(check bool) "device not under ring" false
    (Sn_substrate.Port.contains mos_gr G.Point.zero);
  Alcotest.(check int) "4 strips" 4
    (List.length mos_gr.Sn_substrate.Port.region)

let test_nmos_sub_inside_outer_ring () =
  let p = NS.default in
  (* SUB contact must sit between the rings: outside MOS GR, inside GR *)
  let sub_outer = p.NS.sub_offset +. (p.NS.sub_size /. 2.0) in
  Alcotest.(check bool) "inside GR" true (sub_outer < p.NS.outer_ring_inner);
  let mos_edge =
    p.NS.device_half_pitch +. p.NS.mos_ring_gap +. p.NS.mos_ring_strip
  in
  Alcotest.(check bool) "outside MOS GR" true
    (p.NS.sub_offset -. (p.NS.sub_size /. 2.0) > mos_edge)

let test_nmos_ground_wire_terminals () =
  let wires = shapes_on (Lazy.force nmos_layout) (L.Layer.Metal 1) in
  let terminals =
    List.filter_map
      (fun (s : L.Shape.t) ->
        match s.L.Shape.geometry with
        | L.Shape.Path { from_terminal = Some a; to_terminal = Some b; _ } ->
          Some (a, b)
        | L.Shape.Path _ | L.Shape.Rect _ -> None)
      wires
  in
  Alcotest.(check bool) "mos_gr -> gnd_pad wire" true
    (List.mem ("mos_gr", "gnd_pad") terminals);
  Alcotest.(check bool) "gr -> gr_pad wire" true
    (List.mem ("gr", "gr_pad") terminals)

let test_nmos_layout_io_roundtrip () =
  let l = Lazy.force nmos_layout in
  let l2 = L.Layout_io.of_string (L.Layout_io.to_string l) in
  Alcotest.(check int) "shape count" (List.length (L.Layout.flatten l))
    (List.length (L.Layout.flatten l2));
  Alcotest.(check (list string)) "nets" (L.Layout.nets l) (L.Layout.nets l2);
  (* ports derived from the round-tripped layout are identical *)
  let names l =
    List.map (fun p -> p.Sn_substrate.Port.name) (Sn_substrate.Port.of_layout l)
  in
  Alcotest.(check (list string)) "ports preserved" (names l) (names l2)

let test_nmos_device_netlist () =
  let nl = NS.device_netlist NS.default ~vgs:0.8 ~vds:0.9 in
  (match C.Netlist.find nl "m1" with
   | C.Element.Mosfet { mult; bulk; source; _ } ->
     Alcotest.(check int) "4 parallel transistors" 4 mult;
     Alcotest.(check string) "bulk is the probe port" "backgate:m1" bulk;
     Alcotest.(check string) "source on the quiet pad" "gnd_pad" source
   | _ -> Alcotest.fail "m1 missing");
  match C.Netlist.find nl "vbias" with
  | C.Element.Vsource { wave; _ } ->
    check_close 1e-12 "vds" 0.9 (C.Waveform.dc_value wave)
  | _ -> Alcotest.fail "vbias missing"

(* ------------------------------------------------------------------ *)
(* VCO chip *)

let vco_layout = lazy (VC.layout VC.default)

let test_vco_layout_ports () =
  let ports = Sn_substrate.Port.of_layout (Lazy.force vco_layout) in
  let names = List.map (fun p -> p.Sn_substrate.Port.name) ports in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("has port " ^ expected) true
        (List.mem expected names))
    [ "backgate:mn1"; "backgate:mn2"; "backgate:sub_ind"; "vss_ring";
      "sub_inject"; "frame"; "nwell:vdd_local"; "nwell:vtune_w" ]

let test_vco_wells_are_wells () =
  let ports = Sn_substrate.Port.of_layout (Lazy.force vco_layout) in
  List.iter
    (fun (p : Sn_substrate.Port.t) ->
      let is_well =
        String.length p.Sn_substrate.Port.name >= 6
        && String.sub p.Sn_substrate.Port.name 0 6 = "nwell:"
      in
      if is_well then
        Alcotest.(check bool)
          (p.Sn_substrate.Port.name ^ " kind")
          true
          (p.Sn_substrate.Port.kind = Sn_substrate.Port.Well))
    ports

let test_vco_circuit_structure () =
  let nl = VC.circuit VC.default ~vtune:0.45 in
  (* cross-coupling: mn1 gate on tank_n, drain on tank_p; mirrored *)
  (match C.Netlist.find nl "mn1" with
   | C.Element.Mosfet { drain = "tank_p"; gate = "tank_n"; _ } -> ()
   | _ -> Alcotest.fail "mn1 not cross-coupled");
  (match C.Netlist.find nl "mn2" with
   | C.Element.Mosfet { drain = "tank_n"; gate = "tank_p"; _ } -> ()
   | _ -> Alcotest.fail "mn2 not cross-coupled");
  (* two varactors to the tuning well *)
  (match C.Netlist.find nl "yvar_p" with
   | C.Element.Varactor { n2 = "vtune_w"; _ } -> ()
   | _ -> Alcotest.fail "varactor well node wrong");
  (* the inductor substrate caps land on the probe under the coil *)
  match C.Netlist.find nl "cind_p" with
  | C.Element.Capacitor { n2 = "backgate:sub_ind"; farads; _ } ->
    check_close 1e-18 "C_ind = 120 fF" 120.0e-15 farads
  | _ -> Alcotest.fail "cind_p missing"

let test_vco_dc_solvable () =
  (* the schematic plus ideal pad straps (standing in for the
     extracted wires) has a DC solution: tank nodes symmetric, supply
     sensible *)
  let straps =
    [ C.Element.Resistor { name = "strap_vss"; n1 = "vss_pad";
                           n2 = "vss_local"; ohms = 0.1 };
      C.Element.Resistor { name = "strap_vdd"; n1 = "vdd_pad";
                           n2 = "vdd_local"; ohms = 0.1 };
      C.Element.Resistor { name = "strap_vt"; n1 = "vtune_pad";
                           n2 = "vtune_w"; ohms = 0.1 };
      C.Element.Resistor { name = "strap_sub"; n1 = "sub_inject";
                           n2 = "0"; ohms = 1000.0 } ]
  in
  let nl =
    C.Netlist.create
      (C.Netlist.elements (VC.circuit VC.default ~vtune:0.45) @ straps)
  in
  let s = Sn_engine.Dc.solve nl in
  let vp = Sn_engine.Dc.voltage s "tank_p"
  and vn = Sn_engine.Dc.voltage s "tank_n" in
  Alcotest.(check bool) "tank symmetric" true (Float.abs (vp -. vn) < 1e-3);
  Alcotest.(check bool) "tank between rails" true (vp > 0.0 && vp < 1.8)

let test_vco_spiral_is_decorative () =
  (* the drawn spiral must not be extracted (its macromodel is in the
     circuit); it carries no terminals *)
  let report =
    Sn_interconnect.Extract.extract ~tech:Sn_tech.Tech.imec018
      (Lazy.force vco_layout)
  in
  Alcotest.(check bool) "some wires skipped (the spiral)" true
    (report.Sn_interconnect.Extract.wires_skipped >= 1)

let test_vco_layout_io_roundtrip () =
  let l = Lazy.force vco_layout in
  let l2 = L.Layout_io.of_string (L.Layout_io.to_string l) in
  Alcotest.(check int) "shape count" (List.length (L.Layout.flatten l))
    (List.length (L.Layout.flatten l2))

let test_sensitive_nodes_exist_in_circuit () =
  let nl = VC.circuit VC.default ~vtune:0.0 in
  List.iter
    (fun (_, node) ->
      (* every sensitive node must be either a circuit node or a
         substrate port name (they merge by name) *)
      let in_circuit = C.Netlist.mem_node nl node in
      let is_port =
        List.exists
          (fun p -> p.Sn_substrate.Port.name = node)
          (Sn_substrate.Port.of_layout (Lazy.force vco_layout))
      in
      Alcotest.(check bool) (node ^ " resolvable") true (in_circuit || is_port))
    VC.sensitive_nodes

let suites =
  [
    ( "testchip.ring",
      [
        Alcotest.test_case "frame decomposition" `Quick test_ring_geometry;
        Alcotest.test_case "validation" `Quick test_ring_invalid;
      ] );
    ( "testchip.nmos",
      [
        Alcotest.test_case "ports derived" `Quick test_nmos_layout_ports;
        Alcotest.test_case "rings hollow" `Quick test_nmos_layout_rings_hollow;
        Alcotest.test_case "SUB between rings" `Quick
          test_nmos_sub_inside_outer_ring;
        Alcotest.test_case "ground wire terminals" `Quick
          test_nmos_ground_wire_terminals;
        Alcotest.test_case "layout io round trip" `Quick
          test_nmos_layout_io_roundtrip;
        Alcotest.test_case "device netlist" `Quick test_nmos_device_netlist;
      ] );
    ( "testchip.vco",
      [
        Alcotest.test_case "ports derived" `Quick test_vco_layout_ports;
        Alcotest.test_case "wells are wells" `Quick test_vco_wells_are_wells;
        Alcotest.test_case "circuit structure" `Quick test_vco_circuit_structure;
        Alcotest.test_case "schematic DC solvable" `Quick test_vco_dc_solvable;
        Alcotest.test_case "spiral decorative" `Quick
          test_vco_spiral_is_decorative;
        Alcotest.test_case "layout io round trip" `Quick
          test_vco_layout_io_roundtrip;
        Alcotest.test_case "sensitive nodes resolvable" `Quick
          test_sensitive_nodes_exist_in_circuit;
      ] );
  ]
