(* Transistor-level oscillator validation: the transient engine starts
   up and sustains a cross-coupled LC oscillator, its frequency
   matches the tank, its tuning gain is measurable, and a tone on the
   tuning line produces exactly the FM sidebands the paper's
   equation (2) predicts — the strongest end-to-end evidence that the
   "Spectre substitute" physics is right. *)

module SO = Sn_testchip.Scaled_oscillator
module N = Sn_numerics

let params = SO.default
let base_run = lazy (SO.simulate params ~vtune:0.9)

let test_startup_and_frequency () =
  let r = Lazy.force base_run in
  let estimate = SO.natural_frequency params ~vtune:0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f vs tank %.4f MHz" (r.SO.frequency /. 1e6)
       (estimate /. 1e6))
    true
    (Float.abs (r.SO.frequency -. estimate) /. estimate < 0.02)

let test_amplitude_sane () =
  let r = Lazy.force base_run in
  Alcotest.(check bool)
    (Printf.sprintf "swing %.2f V" r.SO.amplitude)
    true
    (r.SO.amplitude > 0.5 && r.SO.amplitude < 3.6)

let test_oscillation_clean () =
  let r = Lazy.force base_run in
  let jitter =
    N.Zero_crossing.period_jitter ~fs:r.SO.sample_rate r.SO.samples
  in
  let period = 1.0 /. r.SO.frequency in
  Alcotest.(check bool)
    (Printf.sprintf "period jitter %.2f%%" (100.0 *. jitter /. period))
    true
    (jitter /. period < 0.02)

let test_tuning_gain () =
  let k = SO.kvco_transient ~cycles:120 params ~vtune:0.9 ~dv:0.2 in
  (* more tune voltage -> less varactor C -> higher frequency *)
  Alcotest.(check bool)
    (Printf.sprintf "kvco = %.0f kHz/V" (k /. 1e3))
    true
    (k > 100.0e3 && k < 2.0e6)

let test_fm_spur_matches_eq2 () =
  (* inject a small tone on the tuning line and compare the measured
     sideband with the narrowband-FM prediction (paper eq. (2)):
     spur/carrier = beta / 2, beta = K A / f_noise *)
  let vtune = 0.9 in
  let k = SO.kvco_transient ~cycles:120 params ~vtune ~dv:0.2 in
  let base = Lazy.force base_run in
  let f_noise = base.SO.frequency /. 16.0 in
  let a_tone = 0.05 in
  let run = SO.simulate ~tune_tone:(a_tone, f_noise) params ~vtune in
  let carrier =
    N.Goertzel.amplitude_windowed ~fs:run.SO.sample_rate ~f:run.SO.frequency
      run.SO.samples
  in
  let spur =
    N.Goertzel.amplitude_windowed ~fs:run.SO.sample_rate
      ~f:(run.SO.frequency +. f_noise)
      run.SO.samples
  in
  let beta = Float.abs k *. a_tone /. f_noise in
  let predicted_dbc = 20.0 *. log10 (beta /. 2.0) in
  let measured_dbc = 20.0 *. log10 (spur /. carrier) in
  Alcotest.(check bool)
    (Printf.sprintf "eq(2) %.1f dBc vs transient %.1f dBc" predicted_dbc
       measured_dbc)
    true
    (Float.abs (predicted_dbc -. measured_dbc) < 2.5)

let test_spur_scales_inverse_f () =
  (* doubling the tone frequency must drop the sideband ~6 dB *)
  let vtune = 0.9 in
  let base = Lazy.force base_run in
  let measure f_noise =
    let run = SO.simulate ~tune_tone:(0.05, f_noise) params ~vtune in
    let carrier =
      N.Goertzel.amplitude_windowed ~fs:run.SO.sample_rate
        ~f:run.SO.frequency run.SO.samples
    in
    let spur =
      N.Goertzel.amplitude_windowed ~fs:run.SO.sample_rate
        ~f:(run.SO.frequency +. f_noise)
        run.SO.samples
    in
    20.0 *. log10 (spur /. carrier)
  in
  let f1 = base.SO.frequency /. 16.0 in
  let drop = measure f1 -. measure (2.0 *. f1) in
  Alcotest.(check bool)
    (Printf.sprintf "drop %.1f dB per octave" drop)
    true
    (drop > 4.0 && drop < 8.0)

let suites =
  [
    ( "oscillator.transient",
      [
        Alcotest.test_case "startup and frequency" `Slow
          test_startup_and_frequency;
        Alcotest.test_case "amplitude" `Slow test_amplitude_sane;
        Alcotest.test_case "clean oscillation" `Slow test_oscillation_clean;
        Alcotest.test_case "tuning gain" `Slow test_tuning_gain;
        Alcotest.test_case "transient confirms eq (2)" `Slow
          test_fm_spur_matches_eq2;
        Alcotest.test_case "FM falls 6 dB/octave" `Slow
          test_spur_scales_inverse_f;
      ] );
  ]
