(* Tests for sn_geometry. *)

module Point = Sn_geometry.Point
module Rect = Sn_geometry.Rect
module Path = Sn_geometry.Path
module Transform = Sn_geometry.Transform

let check_float = Alcotest.(check (float 1e-9))

let test_point_ops () =
  let a = Point.v 1.0 2.0 and b = Point.v 4.0 6.0 in
  check_float "distance" 5.0 (Point.distance a b);
  check_float "manhattan" 7.0 (Point.manhattan a b);
  Alcotest.(check bool) "midpoint" true
    (Point.equal (Point.midpoint a b) (Point.v 2.5 4.0));
  Alcotest.(check bool) "add" true
    (Point.equal (Point.add a b) (Point.v 5.0 8.0))

let test_rect_normalization () =
  let r = Rect.make 5.0 7.0 1.0 2.0 in
  check_float "x0" 1.0 r.Rect.x0;
  check_float "y1" 7.0 r.Rect.y1;
  check_float "area" 20.0 (Rect.area r);
  check_float "perimeter" 18.0 (Rect.perimeter r)

let test_rect_intersection () =
  let a = Rect.make 0.0 0.0 4.0 4.0 in
  let b = Rect.make 2.0 2.0 6.0 6.0 in
  Alcotest.(check bool) "intersects" true (Rect.intersects a b);
  (match Rect.intersection a b with
   | Some o ->
     check_float "overlap area" 4.0 (Rect.area o)
   | None -> Alcotest.fail "expected overlap");
  let c = Rect.make 10.0 10.0 11.0 11.0 in
  Alcotest.(check bool) "disjoint" false (Rect.intersects a c);
  Alcotest.(check bool) "no intersection" true (Rect.intersection a c = None)

let test_rect_touching_edges () =
  let a = Rect.make 0.0 0.0 1.0 1.0 in
  let b = Rect.make 1.0 0.0 2.0 1.0 in
  Alcotest.(check bool) "touching counts" true (Rect.intersects a b);
  match Rect.intersection a b with
  | Some o -> check_float "degenerate overlap" 0.0 (Rect.area o)
  | None -> Alcotest.fail "expected degenerate overlap"

let test_rect_contains_expand () =
  let r = Rect.make 0.0 0.0 2.0 2.0 in
  Alcotest.(check bool) "contains center" true
    (Rect.contains_point r (Point.v 1.0 1.0));
  Alcotest.(check bool) "boundary closed" true
    (Rect.contains_point r (Point.v 0.0 2.0));
  Alcotest.(check bool) "outside" false
    (Rect.contains_point r (Point.v 3.0 1.0));
  let e = Rect.expand 1.0 r in
  check_float "expanded width" 4.0 (Rect.width e);
  Alcotest.check_raises "over-shrink"
    (Invalid_argument "Rect.expand: negative margin inverts rectangle")
    (fun () -> ignore (Rect.expand (-2.0) r))

let test_rect_union () =
  let a = Rect.make 0.0 0.0 1.0 1.0 and b = Rect.make 3.0 4.0 5.0 6.0 in
  let u = Rect.union_bbox a b in
  check_float "union width" 5.0 (Rect.width u);
  check_float "union height" 6.0 (Rect.height u)

let test_path_length_squares () =
  let p =
    Path.make ~width:0.5
      [ Point.v 0.0 0.0; Point.v 10.0 0.0; Point.v 10.0 5.0 ]
  in
  check_float "length" 15.0 (Path.length p);
  check_float "squares" 30.0 (Path.squares p);
  Alcotest.(check int) "segments" 2 (List.length (Path.segments p))

let test_path_bbox_includes_width () =
  let p = Path.make ~width:2.0 [ Point.v 0.0 0.0; Point.v 10.0 0.0 ] in
  let b = Path.bbox p in
  check_float "y extent includes half-width" (-1.0) b.Rect.y0;
  check_float "x extent includes half-width" 11.0 b.Rect.x1

let test_path_invalid () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Path.make: width must be > 0") (fun () ->
      ignore (Path.make ~width:0.0 [ Point.v 0.0 0.0; Point.v 1.0 0.0 ]));
  Alcotest.check_raises "one point"
    (Invalid_argument "Path.make: need at least 2 points") (fun () ->
      ignore (Path.make ~width:1.0 [ Point.v 0.0 0.0 ]))

let test_path_scale_width () =
  let p = Path.make ~width:1.0 [ Point.v 0.0 0.0; Point.v 4.0 0.0 ] in
  let w = Path.scale_width 2.0 p in
  check_float "width doubled" 2.0 (Path.width w);
  check_float "squares halved" (Path.squares p /. 2.0) (Path.squares w)

let test_transform_rotations () =
  let p = Point.v 1.0 0.0 in
  let at o = Transform.apply_point (Transform.make o Point.zero) p in
  Alcotest.(check bool) "R90" true (Point.equal (at Transform.R90) (Point.v 0.0 1.0));
  Alcotest.(check bool) "R180" true (Point.equal (at Transform.R180) (Point.v (-1.0) 0.0));
  Alcotest.(check bool) "R270" true (Point.equal (at Transform.R270) (Point.v 0.0 (-1.0)));
  Alcotest.(check bool) "MY" true (Point.equal (at Transform.MY) (Point.v (-1.0) 0.0))

let test_transform_compose () =
  let t1 = Transform.make Transform.R90 (Point.v 1.0 0.0) in
  let t2 = Transform.make Transform.MX (Point.v 0.0 2.0) in
  let p = Point.v 3.0 4.0 in
  let direct = Transform.apply_point t1 (Transform.apply_point t2 p) in
  let composed = Transform.apply_point (Transform.compose t1 t2) p in
  Alcotest.(check bool) "compose law" true (Point.equal direct composed)

let prop_compose_associative =
  let orient =
    QCheck.Gen.oneofl
      Transform.[ R0; R90; R180; R270; MX; MY; MXR90; MYR90 ]
  in
  let transform_gen =
    QCheck.Gen.(
      map3
        (fun o dx dy -> Transform.make o (Point.v (float_of_int dx) (float_of_int dy)))
        orient (int_range (-5) 5) (int_range (-5) 5))
  in
  QCheck.Test.make ~count:200 ~name:"transform composition is associative"
    (QCheck.make
       QCheck.Gen.(
         tup2 (tup2 transform_gen transform_gen)
           (tup2 transform_gen
              (map2 (fun x y -> Point.v (float_of_int x) (float_of_int y))
                 (int_range (-9) 9) (int_range (-9) 9)))))
    (fun ((a, b), (c, p)) ->
      let lhs =
        Transform.apply_point (Transform.compose (Transform.compose a b) c) p
      in
      let rhs =
        Transform.apply_point (Transform.compose a (Transform.compose b c)) p
      in
      Point.equal lhs rhs)

let prop_rect_intersection_commutes =
  let rect_gen =
    QCheck.Gen.(
      map (fun (a, b, c, d) ->
          Rect.make (float_of_int a) (float_of_int b) (float_of_int c)
            (float_of_int d))
        (tup4 (int_range (-10) 10) (int_range (-10) 10) (int_range (-10) 10)
           (int_range (-10) 10)))
  in
  QCheck.Test.make ~count:200 ~name:"rect intersection commutes"
    (QCheck.make QCheck.Gen.(tup2 rect_gen rect_gen))
    (fun (a, b) ->
      match (Rect.intersection a b, Rect.intersection b a) with
      | None, None -> true
      | Some x, Some y -> Rect.equal x y
      | _ -> false)

let prop_rect_intersection_within =
  let rect_gen =
    QCheck.Gen.(
      map (fun (a, b, c, d) ->
          Rect.make (float_of_int a) (float_of_int b) (float_of_int c)
            (float_of_int d))
        (tup4 (int_range (-10) 10) (int_range (-10) 10) (int_range (-10) 10)
           (int_range (-10) 10)))
  in
  QCheck.Test.make ~count:200 ~name:"intersection area <= both operands"
    (QCheck.make QCheck.Gen.(tup2 rect_gen rect_gen))
    (fun (a, b) ->
      match Rect.intersection a b with
      | None -> true
      | Some o -> Rect.area o <= Rect.area a +. 1e-9
                  && Rect.area o <= Rect.area b +. 1e-9)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "geometry",
      [
        Alcotest.test_case "point ops" `Quick test_point_ops;
        Alcotest.test_case "rect normalization" `Quick test_rect_normalization;
        Alcotest.test_case "rect intersection" `Quick test_rect_intersection;
        Alcotest.test_case "touching edges" `Quick test_rect_touching_edges;
        Alcotest.test_case "contains / expand" `Quick test_rect_contains_expand;
        Alcotest.test_case "union bbox" `Quick test_rect_union;
        Alcotest.test_case "path length and squares" `Quick test_path_length_squares;
        Alcotest.test_case "path bbox width" `Quick test_path_bbox_includes_width;
        Alcotest.test_case "path validation" `Quick test_path_invalid;
        Alcotest.test_case "path widening" `Quick test_path_scale_width;
        Alcotest.test_case "rotations" `Quick test_transform_rotations;
        Alcotest.test_case "compose" `Quick test_transform_compose;
        qcheck prop_compose_associative;
        qcheck prop_rect_intersection_commutes;
        qcheck prop_rect_intersection_within;
      ] );
  ]
