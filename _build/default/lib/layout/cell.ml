type instance = {
  cell_name : string;
  transform : Sn_geometry.Transform.t;
}

type t = {
  name : string;
  shapes : Shape.t list;
  instances : instance list;
}

let make ~name ?(instances = []) shapes = { name; shapes; instances }
let add_shape s c = { c with shapes = s :: c.shapes }
let add_instance i c = { c with instances = i :: c.instances }
let shape_count c = List.length c.shapes
