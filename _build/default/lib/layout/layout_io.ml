module G = Sn_geometry

exception Parse_error of int * string

let buf_add = Buffer.add_string

let terminal_str = function None -> "-" | Some s -> s

let shape_line buf (s : Shape.t) =
  match s.Shape.geometry with
  | Shape.Rect r ->
    buf_add buf
      (Printf.sprintf "  rect %s %s %g %g %g %g\n" (Layer.name s.Shape.layer)
         s.Shape.net r.G.Rect.x0 r.G.Rect.y0 r.G.Rect.x1 r.G.Rect.y1)
  | Shape.Path { path; from_terminal; to_terminal } ->
    let pts =
      G.Path.points path
      |> List.map (fun { G.Point.x; y } -> Printf.sprintf "%g %g" x y)
      |> String.concat " "
    in
    buf_add buf
      (Printf.sprintf "  path %s %s %g %s %s %s\n" (Layer.name s.Shape.layer)
         s.Shape.net (G.Path.width path) (terminal_str from_terminal)
         (terminal_str to_terminal) pts)

let to_string layout =
  let buf = Buffer.create 4096 in
  buf_add buf (Printf.sprintf "layout top=%s\n" (Layout.top_name layout));
  List.iter
    (fun (c : Cell.t) ->
      buf_add buf (Printf.sprintf "cell %s\n" c.Cell.name);
      List.iter (shape_line buf) c.Cell.shapes;
      List.iter
        (fun { Cell.cell_name; transform } ->
          buf_add buf
            (Printf.sprintf "  inst %s %s %g %g\n" cell_name
               (G.Transform.orientation_name transform.G.Transform.orientation)
               transform.G.Transform.offset.G.Point.x
               transform.G.Transform.offset.G.Point.y))
        c.Cell.instances;
      buf_add buf "end\n")
    (Layout.cells layout);
  Buffer.contents buf

let fail line msg = raise (Parse_error (line, msg))

let float_of ln s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail ln ("bad number: " ^ s)

let layer_of ln s =
  match Layer.of_name s with
  | Some l -> l
  | None -> fail ln ("unknown layer: " ^ s)

let terminal_of = function "-" -> None | s -> Some s

let rec parse_points ln = function
  | [] -> []
  | [ _ ] -> fail ln "odd number of path coordinates"
  | x :: y :: rest -> G.Point.v (float_of ln x) (float_of ln y) :: parse_points ln rest

let of_string text =
  let lines = String.split_on_char '\n' text in
  let top = ref None in
  let cells = ref [] in
  let current = ref None in
  let finish_cell () =
    match !current with
    | Some c -> cells := c :: !cells; current := None
    | None -> ()
  in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let line = String.trim raw in
      if line = "" || String.length line > 0 && line.[0] = '#' then ()
      else begin
        let tokens =
          String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
        in
        match tokens with
        | [ "layout"; spec ] ->
          (match String.split_on_char '=' spec with
           | [ "top"; name ] -> top := Some name
           | _ -> fail ln "expected layout top=<name>")
        | [ "cell"; name ] ->
          finish_cell ();
          current := Some (Cell.make ~name [])
        | [ "end" ] -> finish_cell ()
        | "rect" :: layer :: net :: [ x0; y0; x1; y1 ] ->
          (match !current with
           | None -> fail ln "rect outside cell"
           | Some c ->
             let r =
               G.Rect.make (float_of ln x0) (float_of ln y0) (float_of ln x1)
                 (float_of ln y1)
             in
             current := Some (Cell.add_shape (Shape.rect ~layer:(layer_of ln layer) ~net r) c))
        | "path" :: layer :: net :: width :: from_t :: to_t :: coords ->
          (match !current with
           | None -> fail ln "path outside cell"
           | Some c ->
             let pts = parse_points ln coords in
             if List.length pts < 2 then fail ln "path needs at least 2 points";
             let p = G.Path.make ~width:(float_of ln width) pts in
             let shape =
               Shape.path ~layer:(layer_of ln layer) ~net
                 ?from_terminal:(terminal_of from_t) ?to_terminal:(terminal_of to_t) p
             in
             current := Some (Cell.add_shape shape c))
        | [ "inst"; name; orient; dx; dy ] ->
          (match !current with
           | None -> fail ln "inst outside cell"
           | Some c ->
             let orientation =
               match G.Transform.orientation_of_name orient with
               | Some o -> o
               | None -> fail ln ("unknown orientation: " ^ orient)
             in
             let transform =
               G.Transform.make orientation
                 (G.Point.v (float_of ln dx) (float_of ln dy))
             in
             current :=
               Some (Cell.add_instance { Cell.cell_name = name; transform } c))
        | _ -> fail ln ("unrecognized record: " ^ line)
      end)
    lines;
  finish_cell ();
  match !top with
  | None -> fail 0 "missing layout top=<name> header"
  | Some top ->
    (* cell shape/instance lists were built by consing; restore file order *)
    let cells =
      List.rev_map
        (fun (c : Cell.t) ->
          { c with
            Cell.shapes = List.rev c.Cell.shapes;
            Cell.instances = List.rev c.Cell.instances })
        !cells
    in
    Layout.create ~top cells

let save path layout =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string layout))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
