lib/layout/drc.ml: Array Format Hashtbl Layer Layout List Shape Sn_geometry Sn_tech String
