lib/layout/layout_io.ml: Buffer Cell Fun In_channel Layer Layout List Printf Shape Sn_geometry String
