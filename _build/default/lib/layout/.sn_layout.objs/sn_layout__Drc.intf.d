lib/layout/drc.mli: Format Layer Layout Sn_tech
