lib/layout/cell.ml: List Shape Sn_geometry
