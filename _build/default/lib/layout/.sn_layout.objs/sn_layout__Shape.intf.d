lib/layout/shape.mli: Format Layer Sn_geometry
