lib/layout/layout.mli: Cell Layer Shape Sn_geometry
