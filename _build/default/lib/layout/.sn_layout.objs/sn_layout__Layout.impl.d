lib/layout/layout.ml: Cell Layer List Map Shape Sn_geometry String
