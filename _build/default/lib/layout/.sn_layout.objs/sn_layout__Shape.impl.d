lib/layout/shape.ml: Format Layer Option Sn_geometry
