lib/layout/layer.ml: Format Option Printf Stdlib String
