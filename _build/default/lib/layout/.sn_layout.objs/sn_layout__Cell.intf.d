lib/layout/cell.mli: Shape Sn_geometry
