(** A complete layout: a cell library plus a designated top cell,
    with flattening and the spatial queries the extractors need. *)

type t

exception Unknown_cell of string
exception Recursive_hierarchy of string

val create : top:string -> Cell.t list -> t
(** [create ~top cells] builds a layout.  Raises {!Unknown_cell} when
    [top] or an instanced cell is missing, [Invalid_argument] on
    duplicate cell names, and {!Recursive_hierarchy} on instance
    cycles. *)

val top_name : t -> string
val cells : t -> Cell.t list
val find_cell : t -> string -> Cell.t
(** Raises {!Unknown_cell}. *)

val flatten : t -> Shape.t list
(** [flatten l] expands the hierarchy under the top cell into a flat
    list of transformed shapes. *)

val shapes_on_layer : t -> Layer.t -> Shape.t list
(** Flattened shapes of one layer. *)

val shapes_of_net : t -> string -> Shape.t list
(** Flattened shapes attached to one net. *)

val nets : t -> string list
(** Sorted distinct net names present after flattening. *)

val bbox : t -> Sn_geometry.Rect.t
(** Bounding box of the flattened layout.
    Raises [Invalid_argument] when empty. *)

val map_shapes : (Shape.t -> Shape.t) -> t -> t
(** [map_shapes f l] rewrites every shape of every cell — used for the
    Fig. 10 ground-line widening. *)
