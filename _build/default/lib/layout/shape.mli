(** A drawn shape: geometry on a layer, attached to a net.

    Wire paths carry optional terminal labels so the interconnect
    extractor produces deterministic node names for the resistor
    chains it generates. *)

type geometry =
  | Rect of Sn_geometry.Rect.t
  | Path of {
      path : Sn_geometry.Path.t;
      from_terminal : string option;
      to_terminal : string option;
    }

type t = { layer : Layer.t; net : string; geometry : geometry }

val rect : layer:Layer.t -> net:string -> Sn_geometry.Rect.t -> t

val path :
  layer:Layer.t -> net:string -> ?from_terminal:string -> ?to_terminal:string ->
  Sn_geometry.Path.t -> t

val bbox : t -> Sn_geometry.Rect.t
(** Bounding box of the drawn geometry (paths include their width). *)

val transform : Sn_geometry.Transform.t -> t -> t

val scale_path_width : float -> t -> t
(** [scale_path_width k s] widens path geometry by [k]; rectangles are
    returned unchanged.  Used by the Fig. 10 re-extraction. *)

val pp : Format.formatter -> t -> unit
