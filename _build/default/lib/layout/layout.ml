module G = Sn_geometry
module StringMap = Map.Make (String)

type t = { top : string; table : Cell.t StringMap.t }

exception Unknown_cell of string
exception Recursive_hierarchy of string

let find_table table name =
  match StringMap.find_opt name table with
  | Some c -> c
  | None -> raise (Unknown_cell name)

let check_acyclic table top =
  let rec visit trail name =
    if List.mem name trail then raise (Recursive_hierarchy name);
    let cell = find_table table name in
    List.iter
      (fun { Cell.cell_name; _ } -> visit (name :: trail) cell_name)
      cell.Cell.instances
  in
  visit [] top

let create ~top cells =
  let table =
    List.fold_left
      (fun acc (c : Cell.t) ->
        if StringMap.mem c.Cell.name acc then
          invalid_arg ("Layout.create: duplicate cell " ^ c.Cell.name)
        else StringMap.add c.Cell.name c acc)
      StringMap.empty cells
  in
  check_acyclic table top;
  { top; table }

let top_name l = l.top
let cells l = List.map snd (StringMap.bindings l.table)
let find_cell l name = find_table l.table name

let flatten l =
  let rec expand transform name acc =
    let cell = find_table l.table name in
    let acc =
      List.fold_left
        (fun acc s -> Shape.transform transform s :: acc)
        acc cell.Cell.shapes
    in
    List.fold_left
      (fun acc { Cell.cell_name; transform = inner } ->
        expand (G.Transform.compose transform inner) cell_name acc)
      acc cell.Cell.instances
  in
  List.rev (expand G.Transform.identity l.top [])

let shapes_on_layer l layer =
  List.filter (fun (s : Shape.t) -> Layer.equal s.Shape.layer layer) (flatten l)

let shapes_of_net l net =
  List.filter (fun (s : Shape.t) -> String.equal s.Shape.net net) (flatten l)

let nets l =
  flatten l
  |> List.map (fun (s : Shape.t) -> s.Shape.net)
  |> List.sort_uniq String.compare

let bbox l =
  match flatten l with
  | [] -> invalid_arg "Layout.bbox: empty layout"
  | s :: rest ->
    List.fold_left
      (fun acc sh -> G.Rect.union_bbox acc (Shape.bbox sh))
      (Shape.bbox s) rest

let map_shapes f l =
  let table =
    StringMap.map
      (fun (c : Cell.t) -> { c with Cell.shapes = List.map f c.Cell.shapes })
      l.table
  in
  { l with table }
