(** Mask layers of the 1P6M process, plus the marker layers the
    extraction flow uses to tag substrate ports. *)

type t =
  | Substrate_contact
      (** p+ tap connecting a metal net resistively to the bulk *)
  | Nwell  (** n-well: couples capacitively to the bulk *)
  | Diffusion
  | Poly
  | Metal of int  (** metal 1..6 *)
  | Via of int
      (** [Via k] connects [Metal k] to [Metal (k+1)]; [Via 0] is the
          contact level connecting diffusion/poly to [Metal 1] *)
  | Pad  (** bond/probe pad opening *)
  | Backgate_probe of string
      (** virtual sensing region: observe the bulk potential under a
          device; the string names the device *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_metal : t -> bool
val metal_index : t -> int option

val name : t -> string
(** Stable textual name used by the layout file format. *)

val of_name : string -> t option
(** Inverse of {!name}. *)

val pp : Format.formatter -> t -> unit
