(** Design-rule checks on a flattened layout — the lightweight checks
    that catch generator bugs before they reach extraction:
    sub-minimum metal widths and same-layer shorts between different
    nets. *)

type violation =
  | Min_width of {
      net : string;
      layer : Layer.t;
      width : float;  (** um *)
      minimum : float;  (** um *)
    }
  | Net_short of {
      layer : Layer.t;
      net_a : string;
      net_b : string;
    }

val check : tech:Sn_tech.Tech.t -> Layout.t -> violation list
(** [check ~tech layout] runs all checks on the flattened layout.
    Overlap detection uses exact rectangles and path bounding boxes
    (conservative for bent paths). *)

val pp : Format.formatter -> violation -> unit
