module G = Sn_geometry

type geometry =
  | Rect of G.Rect.t
  | Path of {
      path : G.Path.t;
      from_terminal : string option;
      to_terminal : string option;
    }

type t = { layer : Layer.t; net : string; geometry : geometry }

let rect ~layer ~net r = { layer; net; geometry = Rect r }

let path ~layer ~net ?from_terminal ?to_terminal p =
  { layer; net; geometry = Path { path = p; from_terminal; to_terminal } }

let bbox s =
  match s.geometry with
  | Rect r -> r
  | Path { path; _ } -> G.Path.bbox path

let transform t s =
  match s.geometry with
  | Rect r -> { s with geometry = Rect (G.Transform.apply_rect t r) }
  | Path p ->
    { s with geometry = Path { p with path = G.Transform.apply_path t p.path } }

let scale_path_width k s =
  match s.geometry with
  | Rect _ -> s
  | Path p ->
    { s with geometry = Path { p with path = G.Path.scale_width k p.path } }

let pp fmt s =
  match s.geometry with
  | Rect r ->
    Format.fprintf fmt "%a net=%s rect %a" Layer.pp s.layer s.net G.Rect.pp r
  | Path { path; from_terminal; to_terminal } ->
    Format.fprintf fmt "%a net=%s %a (%s -> %s)" Layer.pp s.layer s.net
      G.Path.pp path
      (Option.value ~default:"?" from_terminal)
      (Option.value ~default:"?" to_terminal)
