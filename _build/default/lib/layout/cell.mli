(** Layout cells: a named list of shapes plus placed sub-cell
    instances. *)

type instance = {
  cell_name : string;
  transform : Sn_geometry.Transform.t;
}

type t = {
  name : string;
  shapes : Shape.t list;
  instances : instance list;
}

val make : name:string -> ?instances:instance list -> Shape.t list -> t

val add_shape : Shape.t -> t -> t
val add_instance : instance -> t -> t

val shape_count : t -> int
(** Own shapes only (instances not expanded). *)
