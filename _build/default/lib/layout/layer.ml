type t =
  | Substrate_contact
  | Nwell
  | Diffusion
  | Poly
  | Metal of int
  | Via of int
  | Pad
  | Backgate_probe of string

let equal a b = a = b
let compare = Stdlib.compare

let is_metal = function Metal _ -> true
  | Substrate_contact | Nwell | Diffusion | Poly | Via _ | Pad
  | Backgate_probe _ -> false

let metal_index = function Metal k -> Some k
  | Substrate_contact | Nwell | Diffusion | Poly | Via _ | Pad
  | Backgate_probe _ -> None

let name = function
  | Substrate_contact -> "subcontact"
  | Nwell -> "nwell"
  | Diffusion -> "diffusion"
  | Poly -> "poly"
  | Metal k -> Printf.sprintf "metal%d" k
  | Via k -> Printf.sprintf "via%d" k
  | Pad -> "pad"
  | Backgate_probe d -> Printf.sprintf "backgate:%s" d

let of_name s =
  match s with
  | "subcontact" -> Some Substrate_contact
  | "nwell" -> Some Nwell
  | "diffusion" -> Some Diffusion
  | "poly" -> Some Poly
  | "pad" -> Some Pad
  | _ ->
    let prefix p = String.length s > String.length p
                   && String.sub s 0 (String.length p) = p in
    let suffix p = String.sub s (String.length p)
                     (String.length s - String.length p) in
    if prefix "metal" then int_of_string_opt (suffix "metal")
                           |> Option.map (fun k -> Metal k)
    else if prefix "via" then int_of_string_opt (suffix "via")
                              |> Option.map (fun k -> Via k)
    else if prefix "backgate:" then Some (Backgate_probe (suffix "backgate:"))
    else None

let pp fmt t = Format.pp_print_string fmt (name t)
