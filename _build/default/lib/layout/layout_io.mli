(** Plain-text serialization of layouts (a minimal stand-in for GDS
    streaming, human-readable and diff-friendly).

    Format, one record per line:
    {v
    layout top=<cellname>
    cell <name>
      rect <layer> <net> <x0> <y0> <x1> <y1>
      path <layer> <net> <width> <from|-> <to|-> <x> <y> <x> <y> ...
      inst <cellname> <orientation> <dx> <dy>
    end
    v} *)

exception Parse_error of int * string
(** [Parse_error (line, message)]. *)

val to_string : Layout.t -> string
val of_string : string -> Layout.t

val save : string -> Layout.t -> unit
(** [save path layout] writes the textual form to [path]. *)

val load : string -> Layout.t
(** [load path] parses the file at [path].
    Raises {!Parse_error} or [Sys_error]. *)
