(** The paper's simulation methodology (Figure 2) end to end:

    layout + technology
    -> substrate macromodel (sn_substrate)
    -> interconnect RC model (sn_interconnect)
    -> circuit model (sn_circuit)
    -> merged impact model (Merge)
    -> impact simulation (sn_engine AC) and spur prediction (sn_rf). *)

type options = {
  grid : Sn_substrate.Grid.config;
  interconnect_resistance : bool;
      (** [false] reproduces the "classical flow" that ignores wire R *)
  widen_ground : float option;
      (** Fig. 10: scale factor applied to the ground-net wire widths
          before extraction *)
  tech : Sn_tech.Tech.t;
      (** process card; default {!Sn_tech.Tech.imec018} — corner
          analysis swaps in scaled variants *)
}

val default_options : options

(* ------------------------------------------------------------------ *)
(** {1 NMOS measurement structure (paper section 3)} *)

type nmos_flow

val build_nmos :
  ?options:options -> Sn_testchip.Nmos_structure.params -> nmos_flow
(** Extracts the substrate macromodel and the ground interconnect of
    the measurement structure once; bias-dependent analyses reuse
    them. *)

val nmos_macromodel : nmos_flow -> Sn_substrate.Macromodel.t
val nmos_ground_wire_resistance : nmos_flow -> float
(** Extracted metal resistance from the MOS guard ring to the pad. *)

val nmos_divider : nmos_flow -> float
(** SUB -> back-gate voltage division with the rings grounded through
    their extracted interconnect (the paper's 1/652 figure), evaluated
    at 1 MHz where the structure is purely resistive. *)

val nmos_merged : nmos_flow -> vgs:float -> vds:float -> Sn_circuit.Netlist.t

type nmos_point = {
  vgs : float;
  vds : float;
  gmb_total : float;  (** S, all four devices *)
  gds_total : float;
  transfer_sim_db : float;  (** AC |v(d)| / |v(sub_inject)| *)
  transfer_hand_db : float;  (** divider * gmb / gds, the paper's check *)
}

val nmos_transfer : nmos_flow -> vgs:float -> vds:float -> freq:float -> nmos_point

(* ------------------------------------------------------------------ *)
(** {1 VCO (paper sections 4-6)} *)

type vco_flow

val build_vco :
  ?options:options -> Sn_testchip.Vco_chip.params -> vtune:float -> vco_flow

val vco_merged : vco_flow -> Sn_circuit.Netlist.t
val vco_oscillator : vco_flow -> Sn_rf.Impact.oscillator
val vco_ground_wire_resistance : vco_flow -> float

val vco_carrier_freq : vco_flow -> float
val vco_amplitude : vco_flow -> float

val vco_transfers :
  vco_flow -> f_noise:float array ->
  (float -> string -> Complex.t)
(** [vco_transfers flow ~f_noise] runs the AC impact simulation of the
    merged model over the noise frequencies (unit drive at the noise
    source) and returns the interpolating transfer accessor [h f node]
    used by the spur model.  The inductor entry's capacitive transfer
    is formed from the bulk potential under the coil and the tank's
    common-mode impedance. *)

val vco_spur :
  vco_flow -> h:(float -> string -> Complex.t) -> p_noise_dbm:float ->
  f_noise:float -> Sn_rf.Impact.spur
(** Spur prediction for a substrate tone of the given power (dBm into
    the 50 ohm injection chain). *)
