(** Conversion of the extracted models into netlist elements so the
    three models (substrate macromodel, interconnect parasitics,
    device-level circuit) merge by node name into one impact model —
    the box labelled "simulation model of the entire system" in the
    paper's Figure 2. *)

val well_net : string -> string
(** [well_net "nwell:<net>"] is ["<net>"] (other names pass through)
    — the circuit net a well port's junction capacitance bridges to. *)

val of_macromodel :
  ?max_resistance:float -> Sn_substrate.Macromodel.t -> Sn_circuit.Element.t list
(** [of_macromodel ?max_resistance m] renders the port conductance
    matrix as named resistors between port-named nodes (couplings
    weaker than [1 / max_resistance], default 1 Gohm, are dropped) and
    each well port's junction capacitance as a capacitor between the
    port node ["nwell:<net>"] and its circuit net node ["<net>"]. *)

val of_rc_netlist : Sn_interconnect.Rc_netlist.t -> Sn_circuit.Element.t list
(** Interconnect R / C as circuit elements (names prefixed ["itc_"]). *)

val merged :
  title:string ->
  circuit:Sn_circuit.Netlist.t ->
  macromodel:Sn_substrate.Macromodel.t ->
  interconnect:Sn_interconnect.Rc_netlist.t ->
  Sn_circuit.Netlist.t
(** The complete impact model.  Raises {!Sn_circuit.Netlist.Invalid}
    on name clashes. *)
