lib/core/corners.mli: Flow Sn_tech
