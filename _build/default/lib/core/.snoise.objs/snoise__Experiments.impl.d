lib/core/experiments.ml: Array Float Flow List Sn_circuit Sn_numerics Sn_rf Sn_substrate Sn_testchip String Unix
