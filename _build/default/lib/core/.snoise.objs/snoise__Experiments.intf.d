lib/core/experiments.mli: Flow Sn_rf
