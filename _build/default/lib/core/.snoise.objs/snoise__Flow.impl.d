lib/core/flow.ml: Array Complex Float Hashtbl List Logs Merge Sn_circuit Sn_engine Sn_geometry Sn_interconnect Sn_numerics Sn_rf Sn_substrate Sn_tech Sn_testchip String
