lib/core/flow.mli: Complex Sn_circuit Sn_rf Sn_substrate Sn_tech Sn_testchip
