lib/core/merge.ml: List Printf Sn_circuit Sn_interconnect Sn_substrate String
