lib/core/report.ml: Array Experiments Float Flow Format List Printf Sn_numerics Sn_rf String
