lib/core/merge.mli: Sn_circuit Sn_interconnect Sn_substrate
