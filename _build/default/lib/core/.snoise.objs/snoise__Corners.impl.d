lib/core/corners.ml: Experiments Float Flow List Sn_rf Sn_tech Sn_testchip
