module C = Sn_circuit
module Macromodel = Sn_substrate.Macromodel
module Rc = Sn_interconnect.Rc_netlist

let well_net port_name =
  (* "nwell:<net>" -> "<net>" *)
  match String.index_opt port_name ':' with
  | Some i -> String.sub port_name (i + 1) (String.length port_name - i - 1)
  | None -> port_name

let of_macromodel ?(max_resistance = 1.0e9) m =
  let resistors =
    Macromodel.to_resistors m
    |> List.filter (fun (_, _, r) -> r <= max_resistance)
    |> List.mapi (fun i (a, b, r) ->
           C.Element.Resistor
             { name = Printf.sprintf "rsub_%d" i; n1 = a; n2 = b; ohms = r })
  in
  let caps =
    List.mapi
      (fun i (port, farads) ->
        C.Element.Capacitor
          { name = Printf.sprintf "cwell_%d" i; n1 = port;
            n2 = well_net port; farads })
      m.Macromodel.well_capacitance
  in
  resistors @ caps

let of_rc_netlist nl =
  List.map
    (function
      | Rc.Res { name; n1; n2; ohms } ->
        C.Element.Resistor { name = "itc_" ^ name; n1; n2; ohms }
      | Rc.Cap { name; n1; n2; farads } ->
        C.Element.Capacitor { name = "itc_" ^ name; n1; n2; farads })
    nl

let merged ~title ~circuit ~macromodel ~interconnect =
  C.Netlist.create ~title
    (C.Netlist.elements circuit
    @ of_macromodel macromodel
    @ of_rc_netlist interconnect)
