(** Textual rendering of the experiment results — the rows and series
    the paper's tables and figures show. *)

val fig3 : Format.formatter -> Experiments.fig3 -> unit
val sec3 : Format.formatter -> Experiments.sec3_numbers -> unit
val fig7 : Format.formatter -> Experiments.fig7 -> unit
val fig8 : Format.formatter -> Experiments.fig8_family list -> unit
val fig9 : Format.formatter -> Experiments.fig9 -> unit
val fig10 : Format.formatter -> Experiments.fig10 -> unit
val vco_card : Format.formatter -> Experiments.vco_card -> unit
val runtime : Format.formatter -> Experiments.runtime -> unit
val aggressor : Format.formatter -> Experiments.aggressor_comb -> unit

val spectrum_ascii :
  ?width:int -> ?height:int -> Format.formatter -> (float * float) list -> unit
(** [spectrum_ascii fmt points] renders (frequency-offset, dBm) points
    as an ASCII spectrum plot — the Figure 7 panel. *)
