(** The paper's NMOS measurement structure (section 3, Figure 4):
    four parallel RF NMOS transistors at the center, a contact ring
    around them (MOS GR), an outer guard ring around the whole
    structure (GR), a substrate injection contact (SUB), and the
    metal-1 ground interconnect connecting both rings to the ground
    pad — whose resistance is the effect under study.

    Node naming convention (shared with the substrate ports so the
    models merge):
    - ["sub_inject"]: the SUB contact (paper: SUB)
    - ["mos_gr"]: the transistor ground ring (paper: MOS GR)
    - ["gr"]: the outer guard ring (paper: GR)
    - ["backgate:m1"]: bulk sensing node under the transistors
    - ["gnd_pad"]: on-chip end of the measurement ground
    - ["0"]: off-chip ground *)

type params = {
  device_half_pitch : float;  (** um: half-extent of the 4-NMOS block *)
  mos_ring_gap : float;  (** um: gap between device and MOS GR *)
  mos_ring_strip : float;  (** um *)
  outer_ring_inner : float;  (** um: inner half-width of GR *)
  outer_ring_strip : float;  (** um *)
  sub_offset : float;  (** um: SUB contact center distance from device *)
  sub_size : float;  (** um *)
  gnd_wire_length : float;  (** um: MOS GR -> pad metal-1 run *)
  gnd_wire_width : float;  (** um *)
  gr_wire_width : float;  (** um: GR -> pad strap *)
  probe_resistance : float;  (** ohm: pad to off-chip ground *)
  mos : Sn_circuit.Mos_model.t;
  device_w : float;  (** m, per transistor *)
  device_l : float;  (** m *)
  parallel_devices : int;
}

val default : params
(** Calibrated so the extracted SUB -> back-gate voltage division and
    the bias-dependent transfer land in the paper's reported bands
    (about 1/652 and -45 to -52 dB). *)

val layout : params -> Sn_layout.Layout.t

val device_netlist : params -> vgs:float -> vds:float -> Sn_circuit.Netlist.t
(** The biased 4-NMOS device with its drain load and the probe
    resistances tying [gnd_pad] to the off-chip ground; the bulk node
    is ["backgate:m1"], left to be driven by the substrate
    macromodel. *)

val bias_sweep : params -> (float * float) list
(** The [(vgs, vds)] points of the paper's bias sweep (0.5 V to
    1.6 V). *)
