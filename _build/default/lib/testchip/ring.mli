(** Guard-ring geometry: a hollow rectangular frame decomposed into
    four strips (a guard ring must never be modeled as its filled
    bounding box). *)

val rects :
  center:Sn_geometry.Point.t -> inner_width:float -> inner_height:float ->
  strip:float -> Sn_geometry.Rect.t list
(** [rects ~center ~inner_width ~inner_height ~strip] is the four
    strips of a frame whose hole is [inner_width x inner_height] and
    whose band is [strip] wide.  Raises [Invalid_argument] on
    non-positive dimensions. *)

val area : inner_width:float -> inner_height:float -> strip:float -> float
(** Total metal/diffusion area of the frame. *)
