(** A frequency-scaled transistor-level replica of the VCO for direct
    transient simulation.

    Simulating the real 3 GHz oscillator over microseconds of noise
    modulation is out of reach for a dense fixed-step engine, so this
    module provides the same topology (complementary cross-coupled
    pair, differential LC tank, varactor pair) scaled to a few MHz,
    where hundreds of carrier cycles are cheap.  It is used to
    validate the engine (oscillation builds up, the frequency matches
    the tank) and to cross-check the narrowband FM spur model (a tone
    on the tuning line produces the sidebands equation (2) predicts)
    against a full nonlinear transient — the strongest "Spectre
    substitute" evidence this repo offers. *)

type params = {
  inductance : float;  (** differential tank L, H *)
  c_fixed : float;  (** single-ended fixed tank C per side, F *)
  varactor : Sn_circuit.Varactor_model.t;
  tank_q_resistor : float;  (** ohm, differential loss resistor *)
  tail_current : float;  (** A *)
  nmos_w : float;
  pmos_w : float;
  channel_l : float;
}

val default : params
(** ~5 MHz oscillator with a strong varactor (K_vco ~ a few hundred
    kHz/V). *)

val netlist :
  ?tune_tone:float * float ->
  params -> vtune:float -> Sn_circuit.Netlist.t
(** [netlist ?tune_tone p ~vtune] builds the oscillator; [tune_tone =
    (amplitude, freq)] superimposes a sinusoidal disturbance on the
    tuning line (the FM injection experiment).  Tank nodes are
    ["tp"] / ["tn"]. *)

val natural_frequency : params -> vtune:float -> float
(** Small-signal tank estimate [1 / (2 pi sqrt (L C_diff))] including
    the varactor at its bias. *)

type run = {
  frequency : float;  (** zero-crossing estimate from the transient *)
  amplitude : float;  (** differential swing, V peak *)
  samples : float array;  (** differential waveform after settling *)
  sample_rate : float;
}

val simulate :
  ?cycles:int -> ?steps_per_cycle:int -> ?tune_tone:float * float ->
  params -> vtune:float -> run
(** [simulate ?cycles ?steps_per_cycle ?tune_tone p ~vtune] runs the
    transient (default 160 cycles at 100 steps/cycle), discards the
    first half (startup) and measures the rest. *)

val kvco_transient : ?cycles:int -> params -> vtune:float -> dv:float -> float
(** [kvco_transient p ~vtune ~dv] estimates the tuning gain from two
    transient runs at [vtune +- dv] (Hz/V). *)
