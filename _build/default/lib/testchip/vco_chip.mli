(** The paper's test chip (section 4, Figures 5-6): a 3 GHz LC-tank
    VCO in the high-ohmic 0.18 um technology, with an NMOS/PMOS
    cross-coupled pair, an accumulation-mode NMOS varactor and an
    on-chip inductor, plus the substrate injection contact (SUB) next
    to it.

    Node naming (shared across layout ports, interconnect terminals
    and the circuit):
    - ["sub_inject"]: SUB contact; driven through 50 ohm by the noise
      source
    - ["vss_ring"]: VCO guard ring (substrate tap of the analog ground)
    - ["vss_local"], ["vss_pad"]: on-chip ground ends of the extracted
      ground interconnect
    - ["vdd_local"], ["vdd_pad"]: supply net (PMOS n-well ties here)
    - ["vtune_w"], ["vtune_pad"]: varactor well / tuning pad
    - ["backgate:mn1"], ["backgate:mn2"]: NMOS bulk nodes
    - ["backgate:sub_ind"]: bulk probe under the inductor
    - ["tank_p"], ["tank_n"]: oscillator tank *)

type params = {
  core_half_pitch : float;  (** um: NMOS pair half extent *)
  ring_inner : float;  (** um: guard ring inner half width *)
  ring_strip : float;  (** um *)
  sub_offset : float;  (** um: SUB distance from the core *)
  sub_size : float;  (** um *)
  vss_wire_length : float;  (** um *)
  vss_wire_width : float;  (** um *)
  vdd_wire_length : float;
  vdd_wire_width : float;
  vtune_wire_length : float;
  vtune_wire_width : float;
  probe_resistance : float;  (** ohm *)
  tank : Sn_rf.Tank.t;
  inductor_series_r : float;  (** ohm *)
  inductor_sub_cap : float;  (** F per tank side (the paper's 120 fF) *)
  tail_current : float;  (** A (the paper's 5 mA core) *)
  nmos : Sn_circuit.Mos_model.t;
  pmos : Sn_circuit.Mos_model.t;
  pair_w : float;  (** m *)
  pair_l : float;  (** m *)
}

val default : params

val layout : params -> Sn_layout.Layout.t

val circuit : params -> vtune:float -> Sn_circuit.Netlist.t
(** Schematic-level netlist: cross-coupled pairs, tail source, tank
    (L with series R, varactors, fixed C), decoupling, supplies, the
    tuning source and the substrate noise source (0 amplitude DC; the
    flow sets the tone), all referenced to the shared node names. *)

val noise_source_name : string
(** Name of the substrate noise V source inside {!circuit}
    (["vnoise"]); the flow retunes its waveform / AC magnitude. *)

val sensitive_nodes : (Sn_rf.Tank.entry * string) list
(** The merged-netlist node observed for each coupling entry's
    H_sub^i(f) (the inductor entry's node is the bulk probe under the
    coil; its capacitive transfer is formed analytically). *)
