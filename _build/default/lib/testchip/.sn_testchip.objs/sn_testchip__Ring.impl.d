lib/testchip/ring.ml: Sn_geometry
