lib/testchip/nmos_structure.ml: List Ring Sn_circuit Sn_geometry Sn_layout
