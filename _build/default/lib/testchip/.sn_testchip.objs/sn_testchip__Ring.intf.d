lib/testchip/ring.mli: Sn_geometry
