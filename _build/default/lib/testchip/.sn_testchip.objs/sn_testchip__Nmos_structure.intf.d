lib/testchip/nmos_structure.mli: Sn_circuit Sn_layout
