lib/testchip/scaled_oscillator.mli: Sn_circuit
