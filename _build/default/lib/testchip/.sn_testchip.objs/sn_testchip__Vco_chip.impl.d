lib/testchip/vco_chip.ml: List Ring Sn_circuit Sn_geometry Sn_layout Sn_rf
