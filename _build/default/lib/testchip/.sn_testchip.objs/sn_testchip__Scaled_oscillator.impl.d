lib/testchip/scaled_oscillator.ml: Array Sn_circuit Sn_engine Sn_numerics
