lib/testchip/vco_chip.mli: Sn_circuit Sn_layout Sn_rf
