module C = Sn_circuit
module E = C.Element
module W = C.Waveform
module Tran = Sn_engine.Tran
module N = Sn_numerics
module U = N.Units

type params = {
  inductance : float;
  c_fixed : float;
  varactor : C.Varactor_model.t;
  tank_q_resistor : float;
  tail_current : float;
  nmos_w : float;
  pmos_w : float;
  channel_l : float;
}

(* A varactor swinging 1-3 nF around 0.9 V: a strong, easily resolved
   tuning gain at the scaled frequency. *)
let scaled_varactor =
  { C.Varactor_model.name = "varscaled"; cmin = 1.0e-9; cmax = 3.0e-9;
    v0 = 0.0; vslope = 0.6 }

let default =
  {
    inductance = 1.0e-6;
    c_fixed = 2.0e-9;
    varactor = scaled_varactor;
    tank_q_resistor = 5000.0;
    tail_current = 2.0e-3;
    nmos_w = 40.0e-6;
    pmos_w = 100.0e-6;
    channel_l = 0.5e-6;
  }

let netlist ?tune_tone p ~vtune =
  let tune_wave =
    match tune_tone with
    | None -> W.dc vtune
    | Some (amplitude, freq) -> W.sin_wave ~offset:vtune ~amplitude ~freq ()
  in
  C.Netlist.create ~title:"scaled transistor-level oscillator"
    [
      E.Vsource { name = "vdd"; np = "vdd"; nn = "0"; wave = W.dc 1.8;
                  ac_mag = 0.0 };
      E.Vsource { name = "vtune"; np = "vt"; nn = "0"; wave = tune_wave;
                  ac_mag = 0.0 };
      E.Isource { name = "itail"; np = "vdd"; nn = "top";
                  wave = W.dc p.tail_current; ac_mag = 0.0 };
      E.Mosfet { name = "mp1"; drain = "tp"; gate = "tn"; source = "top";
                 bulk = "vdd"; model = C.Mos_model.default_pmos;
                 w = p.pmos_w; l = p.channel_l; mult = 1 };
      E.Mosfet { name = "mp2"; drain = "tn"; gate = "tp"; source = "top";
                 bulk = "vdd"; model = C.Mos_model.default_pmos;
                 w = p.pmos_w; l = p.channel_l; mult = 1 };
      E.Mosfet { name = "mn1"; drain = "tp"; gate = "tn"; source = "0";
                 bulk = "0"; model = C.Mos_model.default_nmos; w = p.nmos_w;
                 l = p.channel_l; mult = 1 };
      E.Mosfet { name = "mn2"; drain = "tn"; gate = "tp"; source = "0";
                 bulk = "0"; model = C.Mos_model.default_nmos; w = p.nmos_w;
                 l = p.channel_l; mult = 1 };
      E.Inductor { name = "lt"; n1 = "tp"; n2 = "tn";
                   henries = p.inductance };
      E.Resistor { name = "rq"; n1 = "tp"; n2 = "tn";
                   ohms = p.tank_q_resistor };
      E.Capacitor { name = "cp"; n1 = "tp"; n2 = "0"; farads = p.c_fixed };
      E.Capacitor { name = "cn"; n1 = "tn"; n2 = "0"; farads = p.c_fixed };
      E.Varactor { name = "yp"; n1 = "tp"; n2 = "vt"; model = p.varactor;
                   mult = 1 };
      E.Varactor { name = "yn"; n1 = "tn"; n2 = "vt"; model = p.varactor;
                   mult = 1 };
    ]

(* Differential tank: the single-ended fixed caps and varactors appear
   in series across the tank, i.e. C_diff = (c_fixed + c_var) / 2. *)
let natural_frequency p ~vtune =
  (* tank common mode sits near 0.9 V in this topology *)
  let v_var = 0.9 -. vtune in
  let c_se = p.c_fixed +. C.Varactor_model.capacitance p.varactor v_var in
  1.0 /. (U.two_pi *. sqrt (p.inductance *. (c_se /. 2.0)))

type run = {
  frequency : float;
  amplitude : float;
  samples : float array;
  sample_rate : float;
}

let simulate ?(cycles = 160) ?(steps_per_cycle = 100) ?tune_tone p ~vtune =
  let f0 = natural_frequency p ~vtune in
  let dt = 1.0 /. (f0 *. float_of_int steps_per_cycle) in
  let tstop = float_of_int cycles /. f0 in
  let options =
    { Tran.default_options with
      Tran.ic =
        (* asymmetric kick so the oscillation starts deterministically *)
        Tran.Uic
          [ ("tp", 1.0); ("tn", 0.8); ("top", 1.4); ("vdd", 1.8);
            ("vt", vtune) ];
      record = Some [ "tp"; "tn" ] }
  in
  let d = Tran.simulate ~options ~tstop ~dt (netlist ?tune_tone p ~vtune) in
  let tp = Tran.node d "tp" and tn = Tran.node d "tn" in
  let n = Array.length tp in
  let diff = Array.init n (fun i -> tp.(i) -. tn.(i)) in
  let settled = Array.sub diff (n / 2) (n - (n / 2)) in
  let fs = 1.0 /. dt in
  {
    frequency = N.Zero_crossing.estimate_frequency ~fs settled;
    amplitude = N.Stats.max_abs settled;
    samples = settled;
    sample_rate = fs;
  }

let kvco_transient ?cycles p ~vtune ~dv =
  let up = simulate ?cycles p ~vtune:(vtune +. dv) in
  let down = simulate ?cycles p ~vtune:(vtune -. dv) in
  (up.frequency -. down.frequency) /. (2.0 *. dv)
