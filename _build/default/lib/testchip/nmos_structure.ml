module G = Sn_geometry
module L = Sn_layout
module C = Sn_circuit

type params = {
  device_half_pitch : float;
  mos_ring_gap : float;
  mos_ring_strip : float;
  outer_ring_inner : float;
  outer_ring_strip : float;
  sub_offset : float;
  sub_size : float;
  gnd_wire_length : float;
  gnd_wire_width : float;
  gr_wire_width : float;
  probe_resistance : float;
  mos : C.Mos_model.t;
  device_w : float;
  device_l : float;
  parallel_devices : int;
}

(* The RF NMOS card reproduces the paper's measured small-signal
   ranges: g_mb 10-38 mS and g_ds 2.8-22 mS over the 0.5-1.6 V bias
   sweep, with the stated junction capacitances (120 fF / 200 fF for
   the four-transistor parallel connection). *)
let rf_nmos =
  {
    C.Mos_model.default_nmos with
    C.Mos_model.name = "rfnmos";
    kp = 280.0e-6;
    vt0 = 0.42;
    gamma = 0.45;
    phi = 0.85;
    lambda = 1.0;
    (* per device: the paper's 120 fF / 200 fF are for the x4 total *)
    cdb = 30.0e-15;
    csb = 50.0e-15;
    cgs = 60.0e-15;
    cgd = 20.0e-15;
  }

let default =
  {
    device_half_pitch = 8.0;
    mos_ring_gap = 8.0;
    mos_ring_strip = 8.0;
    outer_ring_inner = 140.0;
    outer_ring_strip = 8.0;
    sub_offset = 125.0;
    sub_size = 16.0;
    gnd_wire_length = 300.0;
    gnd_wire_width = 5.0;
    gr_wire_width = 8.0;
    probe_resistance = 0.05;
    mos = rf_nmos;
    device_w = 26.0e-6;
    device_l = 0.18e-6;
    parallel_devices = 4;
  }

let layout p =
  let center = G.Point.zero in
  let hp = p.device_half_pitch in
  let backgate =
    L.Shape.rect
      ~layer:(L.Layer.Backgate_probe "m1")
      ~net:"-"
      (G.Rect.make (-.hp) (-.hp) hp hp)
  in
  let mos_ring_inner = 2.0 *. (hp +. p.mos_ring_gap) in
  let mos_ring =
    Ring.rects ~center ~inner_width:mos_ring_inner
      ~inner_height:mos_ring_inner ~strip:p.mos_ring_strip
    |> List.map (fun r ->
           L.Shape.rect ~layer:L.Layer.Substrate_contact ~net:"mos_gr" r)
  in
  let outer_inner = 2.0 *. p.outer_ring_inner in
  let outer_ring =
    Ring.rects ~center ~inner_width:outer_inner ~inner_height:outer_inner
      ~strip:p.outer_ring_strip
    |> List.map (fun r ->
           L.Shape.rect ~layer:L.Layer.Substrate_contact ~net:"gr" r)
  in
  let sub =
    L.Shape.rect ~layer:L.Layer.Substrate_contact ~net:"sub_inject"
      (G.Rect.of_center
         (G.Point.v p.sub_offset 0.0)
         ~width:p.sub_size ~height:p.sub_size)
  in
  (* metal-1 ground interconnect: MOS GR and GR each strap to the pad *)
  let ring_edge = (mos_ring_inner /. 2.0) +. p.mos_ring_strip in
  let gnd_wire =
    L.Shape.path ~layer:(L.Layer.Metal 1) ~net:"gnd" ~from_terminal:"mos_gr"
      ~to_terminal:"gnd_pad"
      (G.Path.make ~width:p.gnd_wire_width
         [ G.Point.v (-.ring_edge) 0.0;
           G.Point.v (-.ring_edge -. p.gnd_wire_length) 0.0 ])
  in
  let gr_edge = p.outer_ring_inner +. p.outer_ring_strip in
  let gr_wire =
    (* the outer guard ring returns through its own pad, as the
       ground of the GSG injection probe does on the real chip *)
    L.Shape.path ~layer:(L.Layer.Metal 1) ~net:"gnd_gr" ~from_terminal:"gr"
      ~to_terminal:"gr_pad"
      (G.Path.make ~width:p.gr_wire_width
         [ G.Point.v 0.0 gr_edge; G.Point.v 0.0 (gr_edge +. 120.0) ])
  in
  let pad =
    L.Shape.rect ~layer:L.Layer.Pad ~net:"gnd"
      (G.Rect.of_center
         (G.Point.v (-.ring_edge -. p.gnd_wire_length) 0.0)
         ~width:60.0 ~height:60.0)
  in
  let cell =
    L.Cell.make ~name:"nmos_structure"
      ([ backgate; sub; gnd_wire; gr_wire; pad ] @ mos_ring @ outer_ring)
  in
  L.Layout.create ~top:"nmos_structure" [ cell ]

let device_netlist p ~vgs ~vds =
  let m = p.mos in
  C.Netlist.create ~title:"nmos measurement structure"
    [
      C.Element.Vsource { name = "vg"; np = "g"; nn = "0";
                          wave = C.Waveform.dc vgs; ac_mag = 0.0 };
      C.Element.Vsource { name = "vbias"; np = "bias"; nn = "0";
                          wave = C.Waveform.dc vds; ac_mag = 0.0 };
      (* the drain is biased through an RF choke so the AC output sees
         the transistor's own r_ds, matching the paper's
         gmb / gds hand calculation *)
      C.Element.Inductor { name = "lchoke"; n1 = "bias"; n2 = "d";
                           henries = 1.0e-3 };
      (* the source metal runs on its own wide strap to the ground
         pad, while the MOS guard ring reaches the same pad through
         the thin extracted wire — so the bulk rides up on the ring
         bounce while the source stays quiet, which is how the
         interconnect resistance doubles v_bs in the paper *)
      C.Element.Resistor { name = "rprobe"; n1 = "gnd_pad"; n2 = "0";
                           ohms = p.probe_resistance };
      C.Element.Resistor { name = "rprobe_gr"; n1 = "gr_pad"; n2 = "0";
                           ohms = p.probe_resistance };
      C.Element.Mosfet { name = "m1"; drain = "d"; gate = "g";
                         source = "gnd_pad"; bulk = "backgate:m1";
                         model = m; w = p.device_w; l = p.device_l;
                         mult = p.parallel_devices };
    ]

let bias_sweep _p =
  List.map (fun v -> (v, v)) [ 0.6; 0.7; 0.8; 0.9; 1.0 ]
