module G = Sn_geometry

let rects ~center ~inner_width ~inner_height ~strip =
  if inner_width <= 0.0 || inner_height <= 0.0 || strip <= 0.0 then
    invalid_arg "Ring.rects: dimensions must be > 0";
  let cx = center.G.Point.x and cy = center.G.Point.y in
  let hw = inner_width /. 2.0 and hh = inner_height /. 2.0 in
  let ow = hw +. strip and oh = hh +. strip in
  [
    (* bottom and top strips span the full outer width *)
    G.Rect.make (cx -. ow) (cy -. oh) (cx +. ow) (cy -. hh);
    G.Rect.make (cx -. ow) (cy +. hh) (cx +. ow) (cy +. oh);
    (* left and right strips fill between them *)
    G.Rect.make (cx -. ow) (cy -. hh) (cx -. hw) (cy +. hh);
    G.Rect.make (cx +. hw) (cy -. hh) (cx +. ow) (cy +. hh);
  ]

let area ~inner_width ~inner_height ~strip =
  let outer = (inner_width +. (2.0 *. strip)) *. (inner_height +. (2.0 *. strip)) in
  outer -. (inner_width *. inner_height)
