module G = Sn_geometry
module L = Sn_layout
module C = Sn_circuit
module Tank = Sn_rf.Tank

type params = {
  core_half_pitch : float;
  ring_inner : float;
  ring_strip : float;
  sub_offset : float;
  sub_size : float;
  vss_wire_length : float;
  vss_wire_width : float;
  vdd_wire_length : float;
  vdd_wire_width : float;
  vtune_wire_length : float;
  vtune_wire_width : float;
  probe_resistance : float;
  tank : Tank.t;
  inductor_series_r : float;
  inductor_sub_cap : float;
  tail_current : float;
  nmos : C.Mos_model.t;
  pmos : C.Mos_model.t;
  pair_w : float;
  pair_l : float;
}

let vco_nmos =
  { C.Mos_model.default_nmos with
    C.Mos_model.name = "vconmos";
    cdb = 60.0e-15; csb = 90.0e-15; cgs = 80.0e-15; cgd = 25.0e-15 }

let vco_pmos =
  { C.Mos_model.default_pmos with
    C.Mos_model.name = "vcopmos";
    cdb = 75.0e-15; csb = 110.0e-15; cgs = 100.0e-15; cgd = 30.0e-15 }

let default =
  {
    core_half_pitch = 20.0;
    ring_inner = 45.0;
    ring_strip = 14.0;
    sub_offset = 160.0;
    sub_size = 25.0;
    vss_wire_length = 70.0;
    vss_wire_width = 2.0;
    vdd_wire_length = 360.0;
    vdd_wire_width = 2.0;
    vtune_wire_length = 300.0;
    vtune_wire_width = 1.0;
    probe_resistance = 0.2;
    tank = Tank.default_3ghz;
    inductor_series_r = 2.0;
    inductor_sub_cap = 120.0e-15;
    tail_current = 5.0e-3;
    nmos = vco_nmos;
    pmos = vco_pmos;
    pair_w = 60.0e-6;
    pair_l = 0.18e-6;
  }

let layout p =
  let center = G.Point.zero in
  let bg name x =
    L.Shape.rect
      ~layer:(L.Layer.Backgate_probe name)
      ~net:"-"
      (G.Rect.of_center (G.Point.v x 0.0) ~width:10.0 ~height:10.0)
  in
  let pmos_well =
    L.Shape.rect ~layer:L.Layer.Nwell ~net:"vdd_local"
      (G.Rect.make (-22.0) 24.0 22.0 44.0)
  in
  let varactor_well =
    L.Shape.rect ~layer:L.Layer.Nwell ~net:"vtune_w"
      (G.Rect.make (-12.0) (-40.0) 12.0 (-24.0))
  in
  let guard_ring =
    Ring.rects ~center ~inner_width:(2.0 *. p.ring_inner)
      ~inner_height:(2.0 *. p.ring_inner) ~strip:p.ring_strip
    |> List.map (fun r ->
           L.Shape.rect ~layer:L.Layer.Substrate_contact ~net:"vss_ring" r)
  in
  let sub =
    L.Shape.rect ~layer:L.Layer.Substrate_contact ~net:"sub_inject"
      (G.Rect.of_center
         (G.Point.v p.sub_offset 0.0)
         ~width:p.sub_size ~height:p.sub_size)
  in
  let inductor_probe =
    L.Shape.rect
      ~layer:(L.Layer.Backgate_probe "sub_ind")
      ~net:"-"
      (G.Rect.make (-30.0) 70.0 30.0 120.0)
  in
  let ring_edge = p.ring_inner +. p.ring_strip in
  let wire net width length ~from_terminal ~to_terminal y =
    L.Shape.path ~layer:(L.Layer.Metal 1) ~net ~from_terminal ~to_terminal
      (G.Path.make ~width
         [ G.Point.v (-.ring_edge) y; G.Point.v (-.ring_edge -. length) y ])
  in
  let vss_stub =
    (* short wide strap from the circuit ground to the ring *)
    L.Shape.path ~layer:(L.Layer.Metal 1) ~net:"vss"
      ~from_terminal:"vss_local" ~to_terminal:"vss_ring"
      (G.Path.make ~width:8.0
         [ G.Point.v (-20.0) 0.0; G.Point.v (-.ring_edge) 0.0 ])
  in
  let vss_wire =
    wire "vss" p.vss_wire_width p.vss_wire_length ~from_terminal:"vss_ring"
      ~to_terminal:"vss_pad" 0.0
  in
  let vdd_wire =
    wire "vdd" p.vdd_wire_width p.vdd_wire_length ~from_terminal:"vdd_local"
      ~to_terminal:"vdd_pad" 30.0
  in
  let vtune_wire =
    wire "vtune" p.vtune_wire_width p.vtune_wire_length
      ~from_terminal:"vtune_w" ~to_terminal:"vtune_pad" (-30.0)
  in
  (* the spiral inductor: drawn (unterminated) for area realism; its
     electrical macromodel (L, series R, substrate C) lives in the
     circuit netlist, as spiral inductors are characterized by EM
     solvers rather than wire extraction *)
  let spiral =
    L.Shape.path ~layer:(L.Layer.Metal 6) ~net:"tank"
      (G.Path.make ~width:8.0
         [ G.Point.v (-25.0) 75.0; G.Point.v 25.0 75.0; G.Point.v 25.0 115.0;
           G.Point.v (-25.0) 115.0; G.Point.v (-25.0) 83.0;
           G.Point.v 17.0 83.0; G.Point.v 17.0 107.0;
           G.Point.v (-17.0) 107.0; G.Point.v (-17.0) 91.0;
           G.Point.v 9.0 91.0 ])
  in
  let frame =
    Ring.rects ~center
      ~inner_width:(2.0 *. (p.sub_offset +. p.sub_size +. 30.0))
      ~inner_height:(2.0 *. (p.sub_offset +. p.sub_size +. 30.0))
      ~strip:15.0
    |> List.map (fun r ->
           L.Shape.rect ~layer:L.Layer.Substrate_contact ~net:"frame" r)
  in
  let pads =
    List.map
      (fun (net, y) ->
        L.Shape.rect ~layer:L.Layer.Pad ~net
          (G.Rect.of_center
             (G.Point.v (-.ring_edge -. p.vss_wire_length -. 40.0) y)
             ~width:60.0 ~height:60.0))
      [ ("vss", 0.0); ("vdd", 80.0); ("vtune", -80.0) ]
  in
  let cell =
    L.Cell.make ~name:"vco_chip"
      ([ bg "mn1" (-12.0); bg "mn2" 12.0; pmos_well; varactor_well; sub;
         inductor_probe; vss_stub; vss_wire; vdd_wire; vtune_wire; spiral ]
       @ guard_ring @ frame @ pads)
  in
  L.Layout.create ~top:"vco_chip" [ cell ]

let noise_source_name = "vnoise"

let circuit p ~vtune =
  let t = p.tank in
  let c_fixed_half = t.Tank.c_fixed /. 2.0 in
  C.Netlist.create ~title:"lc-tank vco"
    [
      (* supplies and references *)
      C.Element.Vsource { name = "vdd"; np = "vdd_pad"; nn = "0";
                          wave = C.Waveform.dc 1.8; ac_mag = 0.0 };
      C.Element.Vsource { name = "vtune"; np = "vtune_pad"; nn = "0";
                          wave = C.Waveform.dc vtune; ac_mag = 0.0 };
      C.Element.Resistor { name = "rprobe_vss"; n1 = "vss_pad"; n2 = "0";
                           ohms = p.probe_resistance };
      (* substrate noise source behind its 50 ohm output impedance *)
      C.Element.Vsource { name = noise_source_name; np = "sub_drive";
                          nn = "0"; wave = C.Waveform.dc 0.0; ac_mag = 1.0 };
      C.Element.Resistor { name = "rs_noise"; n1 = "sub_drive";
                           n2 = "sub_inject"; ohms = 50.0 };
      (* bias *)
      C.Element.Isource { name = "itail"; np = "vdd_local"; nn = "vtop";
                          wave = C.Waveform.dc p.tail_current; ac_mag = 0.0 };
      C.Element.Capacitor { name = "cdec"; n1 = "vdd_local";
                            n2 = "vss_local"; farads = 5.0e-12 };
      (* cross-coupled pairs *)
      C.Element.Mosfet { name = "mp1"; drain = "tank_p"; gate = "tank_n";
                         source = "vtop"; bulk = "vdd_local"; model = p.pmos;
                         w = p.pair_w; l = p.pair_l; mult = 2 };
      C.Element.Mosfet { name = "mp2"; drain = "tank_n"; gate = "tank_p";
                         source = "vtop"; bulk = "vdd_local"; model = p.pmos;
                         w = p.pair_w; l = p.pair_l; mult = 2 };
      C.Element.Mosfet { name = "mn1"; drain = "tank_p"; gate = "tank_n";
                         source = "vss_local"; bulk = "backgate:mn1";
                         model = p.nmos; w = p.pair_w; l = p.pair_l;
                         mult = 1 };
      C.Element.Mosfet { name = "mn2"; drain = "tank_n"; gate = "tank_p";
                         source = "vss_local"; bulk = "backgate:mn2";
                         model = p.nmos; w = p.pair_w; l = p.pair_l;
                         mult = 1 };
      (* the LC tank *)
      C.Element.Inductor { name = "ltank"; n1 = "tank_p"; n2 = "ind_r";
                           henries = t.Tank.inductance };
      C.Element.Resistor { name = "rind"; n1 = "ind_r"; n2 = "tank_n";
                           ohms = p.inductor_series_r };
      C.Element.Capacitor { name = "cfix_p"; n1 = "tank_p"; n2 = "vss_local";
                            farads = c_fixed_half };
      C.Element.Capacitor { name = "cfix_n"; n1 = "tank_n"; n2 = "vss_local";
                            farads = c_fixed_half };
      C.Element.Varactor { name = "yvar_p"; n1 = "tank_p"; n2 = "vtune_w";
                           model = t.Tank.varactor;
                           mult = t.Tank.varactor_mult };
      C.Element.Varactor { name = "yvar_n"; n1 = "tank_n"; n2 = "vtune_w";
                           model = t.Tank.varactor;
                           mult = t.Tank.varactor_mult };
      (* inductor metal to substrate capacitance (EM-characterized) *)
      C.Element.Capacitor { name = "cind_p"; n1 = "tank_p";
                            n2 = "backgate:sub_ind";
                            farads = p.inductor_sub_cap };
      C.Element.Capacitor { name = "cind_n"; n1 = "tank_n";
                            n2 = "backgate:sub_ind";
                            farads = p.inductor_sub_cap };
    ]

(* The supply-interconnect entry shares the vdd_local node with the
   PMOS n-well entry in this topology, so it is subsumed by Pmos_well
   here (listing both would double-count the same coupling). *)
let sensitive_nodes =
  [
    (Tank.Ground, "vss_local");
    (Tank.Backgate, "backgate:mn1");
    (Tank.Pmos_well, "vdd_local");
    (Tank.Varactor_well, "vtune_w");
    (Tank.Inductor_node, "backgate:sub_ind");
  ]
