lib/tech/tech.ml: Fun List Result Sn_numerics
