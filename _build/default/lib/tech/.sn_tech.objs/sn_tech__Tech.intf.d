lib/tech/tech.mli:
