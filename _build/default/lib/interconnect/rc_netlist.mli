(** The output of interconnect extraction: a flat RC netlist whose node
    names are shared with the substrate macromodel ports and the device
    netlist, so the three models merge by name. *)

type element =
  | Res of { name : string; n1 : string; n2 : string; ohms : float }
  | Cap of { name : string; n1 : string; n2 : string; farads : float }

type t = element list

val resistors : t -> (string * string * float) list
val capacitors : t -> (string * string * float) list

val nodes : t -> string list
(** Sorted distinct node names. *)

val total_capacitance : t -> float
(** Sum of all capacitor values. *)

val resistance_between : t -> string -> string -> float
(** [resistance_between nl a b] is the two-terminal resistance of the
    resistor network between nodes [a] and [b] (capacitors open).
    Raises [Not_found] for unknown nodes and [Failure] when the nodes
    are not connected. *)

val pp : Format.formatter -> t -> unit
