module N = Sn_numerics

type element =
  | Res of { name : string; n1 : string; n2 : string; ohms : float }
  | Cap of { name : string; n1 : string; n2 : string; farads : float }

type t = element list

let resistors nl =
  List.filter_map
    (function Res { n1; n2; ohms; _ } -> Some (n1, n2, ohms) | Cap _ -> None)
    nl

let capacitors nl =
  List.filter_map
    (function Cap { n1; n2; farads; _ } -> Some (n1, n2, farads) | Res _ -> None)
    nl

let nodes nl =
  List.concat_map
    (function Res { n1; n2; _ } | Cap { n1; n2; _ } -> [ n1; n2 ])
    nl
  |> List.sort_uniq String.compare

let total_capacitance nl =
  List.fold_left (fun acc (_, _, c) -> acc +. c) 0.0 (capacitors nl)

(* Restrict to the connected component containing [seed] so that
   unrelated nets elsewhere in the netlist cannot make the nodal
   matrix singular. *)
let component_of rs seed =
  let adj = Hashtbl.create 64 in
  let link a b =
    let cur = Option.value ~default:[] (Hashtbl.find_opt adj a) in
    Hashtbl.replace adj a (b :: cur)
  in
  List.iter
    (fun (n1, n2, _) ->
      link n1 n2;
      link n2 n1)
    rs;
  let visited = Hashtbl.create 64 in
  let rec visit n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter visit (Option.value ~default:[] (Hashtbl.find_opt adj n))
    end
  in
  visit seed;
  visited

(* Two-terminal resistance by nodal analysis: inject 1 A at [a], sink
   1 A at [b], pin node [b] to 0 V; R = v_a. *)
let resistance_between nl a b =
  let all_rs = resistors nl in
  let all_nodes =
    List.concat_map (fun (n1, n2, _) -> [ n1; n2 ]) all_rs
    |> List.sort_uniq String.compare
  in
  if not (List.mem a all_nodes) || not (List.mem b all_nodes) then
    raise Not_found;
  let comp = component_of all_rs a in
  if not (Hashtbl.mem comp b) then
    failwith "Rc_netlist.resistance_between: nodes not connected";
  let rs =
    List.filter (fun (n1, _, _) -> Hashtbl.mem comp n1) all_rs
  in
  let node_names =
    List.concat_map (fun (n1, n2, _) -> [ n1; n2 ]) rs
    |> List.sort_uniq String.compare
  in
  let index name =
    match List.find_index (String.equal name) node_names with
    | Some i -> i
    | None -> raise Not_found
  in
  let ia = index a and ib = index b in
  let n = List.length node_names in
  let g = N.Mat.make n n in
  List.iter
    (fun (n1, n2, r) ->
      let i = index n1 and j = index n2 in
      let gv = 1.0 /. r in
      N.Mat.add_to g i i gv;
      N.Mat.add_to g j j gv;
      N.Mat.add_to g i j (-.gv);
      N.Mat.add_to g j i (-.gv))
    rs;
  (* ground node b: replace its row/column with identity *)
  for k = 0 to n - 1 do
    N.Mat.set g ib k 0.0;
    N.Mat.set g k ib 0.0
  done;
  N.Mat.set g ib ib 1.0;
  let rhs = Array.make n 0.0 in
  rhs.(ia) <- 1.0;
  match N.Lu.solve_mat g rhs with
  | x ->
    let v = x.(ia) in
    if Float.is_nan v || Float.abs v = Float.infinity then
      failwith "Rc_netlist.resistance_between: nodes not connected"
    else v
  | exception N.Lu.Singular _ ->
    failwith "Rc_netlist.resistance_between: nodes not connected"

let pp fmt nl =
  Format.fprintf fmt "@[<v>";
  List.iter
    (function
      | Res { name; n1; n2; ohms } ->
        Format.fprintf fmt "R %s %s %s %s@," name n1 n2
          (N.Units.eng ~unit:"Ohm" ohms)
      | Cap { name; n1; n2; farads } ->
        Format.fprintf fmt "C %s %s %s %s@," name n1 n2
          (N.Units.eng ~unit:"F" farads))
    nl;
  Format.fprintf fmt "@]"
