(** Interconnect parasitic extraction (the DIVA substitute).

    Every metal [Path] shape that carries both terminal labels becomes
    a chain of square-counted resistors with a pi-model capacitance to
    the substrate; [Via] paths become lumped via-array resistances.
    Paths missing a terminal are skipped (decorative geometry).

    Node naming: the two terminals keep their labels (they are circuit
    nodes); interior bend nodes are ["<net>~<shape>~<k>"]. *)

type options = {
  include_resistance : bool;
      (** [false] shorts every extracted wire — the paper's "classical
          methodology" ablation that ignores interconnect R *)
  include_capacitance : bool;
  substrate_node : string;
      (** node that wire-to-substrate capacitors connect to; merge it
          with a substrate port (e.g. the bulk probe under the
          circuit) *)
  min_resistance : float;
      (** floor (ohm) replacing R when [include_resistance = false] or
          a segment rounds to zero, keeping the topology connected *)
}

val default_options : options
(** R and C both enabled, substrate node ["sub_bulk"],
    1 micro-ohm floor. *)

type report = {
  netlist : Rc_netlist.t;
  wires_extracted : int;
  wires_skipped : int;
  total_squares : float;
}

val extract :
  ?options:options -> tech:Sn_tech.Tech.t -> Sn_layout.Layout.t -> report
(** [extract ?options ~tech layout] runs extraction over the flattened
    layout.  Raises [Invalid_argument] when a metal path references an
    unknown metal level. *)

val widen_net :
  net:string -> factor:float -> Sn_layout.Layout.t -> Sn_layout.Layout.t
(** [widen_net ~net ~factor l] scales the width of every metal path of
    [net] — the Fig. 10 layout change ("enlarging where possible the
    ground interconnect lines ... by a factor of two"). *)
