lib/interconnect/extract.ml: Float List Logs Printf Rc_netlist Sn_geometry Sn_layout Sn_tech String
