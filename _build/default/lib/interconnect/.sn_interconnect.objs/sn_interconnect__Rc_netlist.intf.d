lib/interconnect/rc_netlist.mli: Format
