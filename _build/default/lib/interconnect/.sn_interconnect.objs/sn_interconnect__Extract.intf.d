lib/interconnect/extract.mli: Rc_netlist Sn_layout Sn_tech
