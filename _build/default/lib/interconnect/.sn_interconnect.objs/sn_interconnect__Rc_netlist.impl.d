lib/interconnect/rc_netlist.ml: Array Float Format Hashtbl List Option Sn_numerics String
