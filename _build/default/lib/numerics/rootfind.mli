(** One-dimensional root finding, used for bias-point and calibration
    searches (e.g. finding the tuning voltage that centers the VCO on
    3 GHz). *)

exception No_bracket
(** Raised when the supplied interval does not bracket a sign change. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect ?tol ?max_iter f a b] finds [x] in [[a, b]] with
    [f x ~ 0] by bisection.  [tol] is the interval-width target
    (default [1e-12]); [max_iter] defaults to 200.
    Raises {!No_bracket} when [f a] and [f b] have the same sign. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  float -> float
(** [newton ?tol ?max_iter ~f ~df x0] runs Newton iteration from [x0];
    falls back on raising [Failure] when the derivative vanishes or the
    iteration cap is hit. *)
