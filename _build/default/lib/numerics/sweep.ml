let linspace a b n =
  if n = 1 && a = b then [| a |]
  else if n < 2 then invalid_arg "Sweep.linspace: need at least 2 points"
  else begin
    let step = (b -. a) /. float_of_int (n - 1) in
    Array.init n (fun i ->
        if i = n - 1 then b else a +. (float_of_int i *. step))
  end

let logspace a b n =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Sweep.logspace: endpoints must be > 0";
  Array.map (fun e -> 10.0 ** e) (linspace (log10 a) (log10 b) n)

let decades ~per_decade f0 f1 =
  if per_decade < 1 then invalid_arg "Sweep.decades: per_decade must be >= 1";
  if f0 <= 0.0 || f1 <= 0.0 || f1 <= f0 then
    invalid_arg "Sweep.decades: need 0 < f0 < f1";
  let n_dec = log10 (f1 /. f0) in
  let n = max 2 (1 + int_of_float (ceil (n_dec *. float_of_int per_decade))) in
  logspace f0 f1 n

let interp1 xs ys x =
  let n = Array.length xs in
  if n = 0 || Array.length ys <> n then
    invalid_arg "Sweep.interp1: bad sample arrays";
  if n = 1 || x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    (* binary search for the bracketing interval *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = xs.(!lo) and x1 = xs.(!hi) in
    let t = (x -. x0) /. (x1 -. x0) in
    ys.(!lo) +. (t *. (ys.(!hi) -. ys.(!lo)))
  end

let argmax a =
  if Array.length a = 0 then invalid_arg "Sweep.argmax: empty array";
  let best = ref 0 in
  Array.iteri (fun i x -> if x > a.(!best) then best := i) a;
  !best

let fold_pairs f init xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Sweep.fold_pairs: length mismatch";
  let acc = ref init in
  for i = 0 to Array.length xs - 1 do
    acc := f !acc xs.(i) ys.(i)
  done;
  !acc
