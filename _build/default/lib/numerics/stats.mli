(** Small statistics toolbox: error metrics for paper-vs-simulation
    comparisons and the regression used to check spur-slope laws. *)

val mean : float array -> float
(** Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Population variance.  Raises [Invalid_argument] on an empty array. *)

val std : float array -> float

val rms : float array -> float

val max_abs : float array -> float
(** [max_abs a] is the largest [|a.(i)|] (0 for the empty array). *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float; (** coefficient of determination *)
}

val linear_fit : float array -> float array -> fit
(** [linear_fit xs ys] is the least-squares line through the points.
    Raises [Invalid_argument] on mismatch or fewer than 2 points. *)

val slope_db_per_decade : float array -> float array -> float
(** [slope_db_per_decade freqs dbs] fits [dbs] against [log10 freqs] and
    returns the slope in dB/decade — the quantity that distinguishes
    resistive-FM (−20 dB/dec), AM or capacitive-FM (0 dB/dec) and
    capacitive-AM (+20 dB/dec) coupling in the paper's section 5. *)
