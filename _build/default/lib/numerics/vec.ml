type t = float array

let make n v = Array.make n v
let zeros n = Array.make n 0.0
let init = Array.init
let copy = Array.copy

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length a) (Array.length b))

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let add a b =
  check_dims "add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_dims "sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale k v = Array.map (fun x -> k *. x) v

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v

let max_abs_diff a b =
  check_dims "max_abs_diff" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := Float.max !acc (Float.abs (a.(i) -. b.(i)))
  done;
  !acc

let pp fmt v =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       (fun fmt x -> Format.fprintf fmt "%g" x))
    v
