(** Parameter sweeps (frequency axes, bias axes) and interpolation. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b]
    inclusive.  Raises [Invalid_argument] when [n < 2] (unless [n = 1]
    and [a = b]). *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] logarithmically spaced points from [a] to
    [b] inclusive.  Raises [Invalid_argument] when [a <= 0], [b <= 0]
    or [n < 2]. *)

val decades : per_decade:int -> float -> float -> float array
(** [decades ~per_decade f0 f1] is a log sweep with [per_decade] points
    per decade, always including both endpoints. *)

val interp1 : float array -> float array -> float -> float
(** [interp1 xs ys x] linearly interpolates the sampled function
    [(xs, ys)] at [x]; [xs] must be strictly increasing.  Values outside
    the range are clamped to the end samples.  Raises
    [Invalid_argument] on length mismatch or fewer than 1 point. *)

val argmax : float array -> int
(** [argmax a] is the index of the largest element.
    Raises [Invalid_argument] on an empty array. *)

val fold_pairs : ('a -> float -> float -> 'a) -> 'a -> float array -> float array -> 'a
(** [fold_pairs f init xs ys] folds [f] over the zipped arrays.
    Raises [Invalid_argument] on length mismatch. *)
