(** Unit conversions used across the flow.

    All power-level conversions that involve dBm assume the 50 ohm
    reference impedance of the paper's measurement chain (RF probes,
    HP 8565E spectrum analyzer). *)

val pi : float
(** [pi] is the circle constant. *)

val two_pi : float
(** [two_pi] is [2 *. pi]. *)

val reference_impedance : float
(** [reference_impedance] is the 50 ohm system impedance used when
    translating voltages to dBm. *)

val db_of_ratio : float -> float
(** [db_of_ratio r] is the amplitude ratio [r] expressed in dB
    ([20 log10 r]).  Raises [Invalid_argument] when [r <= 0]. *)

val ratio_of_db : float -> float
(** [ratio_of_db d] inverts {!db_of_ratio}. *)

val db_of_power_ratio : float -> float
(** [db_of_power_ratio r] is the power ratio [r] in dB ([10 log10 r]).
    Raises [Invalid_argument] when [r <= 0]. *)

val power_ratio_of_db : float -> float
(** [power_ratio_of_db d] inverts {!db_of_power_ratio}. *)

val dbm_of_watts : float -> float
(** [dbm_of_watts p] is the power [p] (W) in dBm.
    Raises [Invalid_argument] when [p <= 0]. *)

val watts_of_dbm : float -> float
(** [watts_of_dbm d] inverts {!dbm_of_watts}. *)

val dbm_of_vpeak : ?r:float -> float -> float
(** [dbm_of_vpeak ?r v] is the power of a sinusoid of peak amplitude [v]
    volts across resistance [r] (default {!reference_impedance}),
    in dBm. *)

val vpeak_of_dbm : ?r:float -> float -> float
(** [vpeak_of_dbm ?r d] inverts {!dbm_of_vpeak}. *)

val db_close : ?tol:float -> float -> float -> bool
(** [db_close ?tol a b] is [true] when [a] and [b] (both in dB) differ by
    at most [tol] dB (default [1.0]). *)

val pp_eng : ?unit:string -> Format.formatter -> float -> unit
(** [pp_eng ?unit fmt v] prints [v] with an engineering prefix
    (f, p, n, u, m, k, M, G, T), e.g. [pp_eng ~unit:"Hz" fmt 3.0e9]
    prints ["3.00 GHz"]. *)

val eng : ?unit:string -> float -> string
(** [eng ?unit v] is {!pp_eng} rendered to a string. *)
