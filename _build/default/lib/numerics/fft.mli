(** Radix-2 FFT and spectral helpers used to "measure" spur levels on
    simulated waveforms, playing the role of the paper's spectrum
    analyzer. *)

val is_power_of_two : int -> bool

val next_power_of_two : int -> int
(** [next_power_of_two n] is the smallest power of two [>= max 1 n]. *)

val fft : Complex.t array -> Complex.t array
(** [fft x] is the forward DFT of [x].
    Raises [Invalid_argument] when the length is not a power of two. *)

val ifft : Complex.t array -> Complex.t array
(** [ifft x] inverts {!fft} (including the 1/N normalization). *)

val hann : int -> float array
(** [hann n] is the Hann window of length [n]. *)

val coherent_gain : float array -> float
(** [coherent_gain w] is the mean of the window [w] — the amplitude
    correction factor for windowed tone measurements. *)

type spectrum = {
  frequencies : float array; (** bin centers, Hz, DC .. fs/2 *)
  amplitudes : float array;  (** peak-equivalent sinusoid amplitude per bin *)
}

val amplitude_spectrum : ?window:[ `Rect | `Hann ] -> fs:float -> float array -> spectrum
(** [amplitude_spectrum ?window ~fs samples] is the single-sided
    amplitude spectrum of [samples] taken at sample rate [fs].  The
    input is zero-padded to a power of two; window defaults to [`Hann]
    and its coherent gain is compensated so an input
    [a *. cos (2 pi f t)] with [f] on a bin center reads amplitude [a].
    Raises [Invalid_argument] on an empty input or non-positive [fs]. *)

val peak_near : spectrum -> f:float -> span:float -> float * float
(** [peak_near s ~f ~span] is [(f_peak, a_peak)], the largest-amplitude
    bin within [f +- span].  Raises [Not_found] when no bin falls in the
    interval. *)
