let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Iterative in-place Cooley-Tukey with bit-reversal permutation. *)
let transform ~inverse x =
  let n = Array.length x in
  if not (is_power_of_two n) then
    invalid_arg "Fft: length must be a power of two";
  let a = Array.copy x in
  (* bit reversal *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let t = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- t
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  let sign = if inverse then 1.0 else -1.0 in
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. 2.0 *. Units.pi /. float_of_int !len in
    let wlen = { Complex.re = cos ang; im = sin ang } in
    let i = ref 0 in
    while !i < n do
      let w = ref Complex.one in
      for k = 0 to (!len / 2) - 1 do
        let u = a.(!i + k) in
        let v = Complex.mul a.(!i + k + (!len / 2)) !w in
        a.(!i + k) <- Complex.add u v;
        a.(!i + k + (!len / 2)) <- Complex.sub u v;
        w := Complex.mul !w wlen
      done;
      i := !i + !len
    done;
    len := !len * 2
  done;
  if inverse then begin
    let inv_n = 1.0 /. float_of_int n in
    Array.map (fun c -> { Complex.re = c.Complex.re *. inv_n; im = c.Complex.im *. inv_n }) a
  end
  else a

let fft x = transform ~inverse:false x
let ifft x = transform ~inverse:true x

let hann n =
  if n <= 1 then Array.make (max n 0) 1.0
  else
    Array.init n (fun i ->
        0.5 *. (1.0 -. cos (2.0 *. Units.pi *. float_of_int i /. float_of_int (n - 1))))

let coherent_gain w =
  let n = Array.length w in
  if n = 0 then 1.0
  else Array.fold_left ( +. ) 0.0 w /. float_of_int n

type spectrum = { frequencies : float array; amplitudes : float array }

let amplitude_spectrum ?(window = `Hann) ~fs samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Fft.amplitude_spectrum: empty input";
  if fs <= 0.0 then invalid_arg "Fft.amplitude_spectrum: fs must be > 0";
  let w, gain =
    match window with
    | `Rect -> (Array.make n 1.0, 1.0)
    | `Hann ->
      let w = hann n in
      (w, coherent_gain w)
  in
  let np = next_power_of_two n in
  let padded =
    Array.init np (fun i ->
        if i < n then { Complex.re = samples.(i) *. w.(i); im = 0.0 }
        else Complex.zero)
  in
  let spec = fft padded in
  let half = (np / 2) + 1 in
  let scale k =
    (* single-sided: double all bins except DC and Nyquist *)
    let base = 1.0 /. (float_of_int n *. gain) in
    if k = 0 || k = np / 2 then base else 2.0 *. base
  in
  {
    frequencies = Array.init half (fun k -> float_of_int k *. fs /. float_of_int np);
    amplitudes = Array.init half (fun k -> Complex.norm spec.(k) *. scale k);
  }

let peak_near s ~f ~span =
  let best = ref None in
  Array.iteri
    (fun k fk ->
      if Float.abs (fk -. f) <= span then
        match !best with
        | Some (_, a) when a >= s.amplitudes.(k) -> ()
        | _ -> best := Some (fk, s.amplitudes.(k)))
    s.frequencies;
  match !best with Some r -> r | None -> raise Not_found
