(** Single-bin DFT (Goertzel algorithm).

    Measuring one spur at a known frequency [f_c +- f_noise] does not
    need a full FFT; Goertzel evaluates that single bin in O(N), at an
    arbitrary (non-bin-center) frequency. *)

val bin : fs:float -> f:float -> float array -> Complex.t
(** [bin ~fs ~f samples] is the complex DFT coefficient of [samples] at
    frequency [f] (Hz), with the [2/N] normalization that makes a pure
    input [a *. cos (2 pi f t + phi)] yield a coefficient of magnitude
    [a].  Raises [Invalid_argument] on an empty input, [fs <= 0], or
    [f] outside [0, fs/2]. *)

val amplitude : fs:float -> f:float -> float array -> float
(** [amplitude ~fs ~f samples] is [Complex.norm (bin ~fs ~f samples)]. *)

val amplitude_windowed : fs:float -> f:float -> float array -> float
(** Like {!amplitude} but applies a Hann window (compensated for
    coherent gain) first — reduces leakage from nearby strong tones at
    the cost of a wider main lobe. *)
