lib/numerics/rootfind.mli:
