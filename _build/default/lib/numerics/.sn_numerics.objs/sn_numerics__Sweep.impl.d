lib/numerics/sweep.ml: Array
