lib/numerics/sparse.mli: Mat Vec
