lib/numerics/sweep.mli:
