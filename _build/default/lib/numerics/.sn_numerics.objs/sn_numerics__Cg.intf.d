lib/numerics/cg.mli: Sparse Vec
