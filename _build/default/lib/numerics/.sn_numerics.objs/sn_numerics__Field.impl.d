lib/numerics/field.ml: Complex Float Format
