lib/numerics/zero_crossing.mli:
