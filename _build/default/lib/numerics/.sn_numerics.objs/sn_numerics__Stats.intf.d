lib/numerics/stats.mli:
