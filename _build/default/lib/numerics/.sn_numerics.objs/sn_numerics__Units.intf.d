lib/numerics/units.mli: Format
