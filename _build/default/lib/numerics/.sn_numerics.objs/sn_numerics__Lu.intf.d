lib/numerics/lu.mli: Field Mat Vec
