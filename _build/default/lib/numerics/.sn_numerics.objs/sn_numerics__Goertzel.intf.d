lib/numerics/goertzel.mli: Complex
