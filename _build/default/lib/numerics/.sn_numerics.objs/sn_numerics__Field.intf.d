lib/numerics/field.mli: Complex Format
