lib/numerics/lu.ml: Array Field Float Mat
