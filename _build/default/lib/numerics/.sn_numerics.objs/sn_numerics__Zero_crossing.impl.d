lib/numerics/zero_crossing.ml: Array List Stats
