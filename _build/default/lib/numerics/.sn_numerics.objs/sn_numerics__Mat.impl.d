lib/numerics/mat.ml: Array Float Format Printf Vec
