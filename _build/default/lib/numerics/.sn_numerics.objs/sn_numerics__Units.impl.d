lib/numerics/units.ml: Float Format Printf
