lib/numerics/sparse.ml: Array Float List Mat Printf Vec
