lib/numerics/cg.ml: Array Float Sparse Vec
