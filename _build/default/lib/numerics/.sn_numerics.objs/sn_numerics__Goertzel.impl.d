lib/numerics/goertzel.ml: Array Complex Fft Printf Units
