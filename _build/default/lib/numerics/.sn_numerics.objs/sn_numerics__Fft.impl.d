lib/numerics/fft.ml: Array Complex Float Units
