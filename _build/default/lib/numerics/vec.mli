(** Dense vectors of floats. *)

type t = float array

val make : int -> float -> t
(** [make n v] is a vector of [n] copies of [v]. *)

val zeros : int -> t
(** [zeros n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [[| f 0; ...; f (n-1) |]]. *)

val copy : t -> t
(** [copy v] is a fresh copy of [v]. *)

val dot : t -> t -> float
(** [dot a b] is the inner product.  Raises [Invalid_argument] on
    dimension mismatch. *)

val add : t -> t -> t
(** [add a b] is the elementwise sum. *)

val sub : t -> t -> t
(** [sub a b] is the elementwise difference. *)

val scale : float -> t -> t
(** [scale k v] is [k *. v] elementwise. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a *. x + y] in place. *)

val norm2 : t -> float
(** [norm2 v] is the Euclidean norm. *)

val norm_inf : t -> float
(** [norm_inf v] is the maximum absolute entry (0 for the empty vector). *)

val max_abs_diff : t -> t -> float
(** [max_abs_diff a b] is [norm_inf (sub a b)]. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt v] prints [v] as [[v0; v1; ...]]. *)
