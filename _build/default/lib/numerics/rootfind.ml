exception No_bracket

let bisect ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then raise No_bracket
  else begin
    let rec go a b fa k =
      let mid = 0.5 *. (a +. b) in
      if b -. a <= tol || k >= max_iter then mid
      else begin
        let fm = f mid in
        if fm = 0.0 then mid
        else if fa *. fm < 0.0 then go a mid fa (k + 1)
        else go mid b fm (k + 1)
      end
    in
    if a <= b then go a b fa 0 else go b a fb 0
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let rec go x k =
    if k >= max_iter then failwith "Rootfind.newton: iteration cap reached";
    let fx = f x in
    if Float.abs fx <= tol then x
    else begin
      let d = df x in
      if d = 0.0 || Float.is_nan d then
        failwith "Rootfind.newton: zero derivative";
      go (x -. (fx /. d)) (k + 1)
    end
  in
  go x0 0
