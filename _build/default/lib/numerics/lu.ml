exception Singular of int

module Make (F : Field.S) = struct
  type matrix = F.t array array
  type t = { lu : matrix; perm : int array; sign : int }

  let matrix_of_fun n f = Array.init n (fun i -> Array.init n (fun j -> f i j))

  let check_square a =
    let n = Array.length a in
    Array.iter
      (fun r -> if Array.length r <> n then invalid_arg "Lu: matrix not square")
      a;
    n

  (* Doolittle elimination with row partial pivoting; pivot weight is
     F.magnitude so the same code pivots sensibly for complex entries. *)
  let decompose a =
    let n = check_square a in
    let lu = Array.map Array.copy a in
    let perm = Array.init n (fun i -> i) in
    let sign = ref 1 in
    for k = 0 to n - 1 do
      let best = ref k and best_mag = ref (F.magnitude lu.(k).(k)) in
      for i = k + 1 to n - 1 do
        let m = F.magnitude lu.(i).(k) in
        if m > !best_mag then begin
          best := i;
          best_mag := m
        end
      done;
      if !best_mag = 0.0 || Float.is_nan !best_mag then raise (Singular k);
      if !best <> k then begin
        let tmp = lu.(k) in
        lu.(k) <- lu.(!best);
        lu.(!best) <- tmp;
        let tp = perm.(k) in
        perm.(k) <- perm.(!best);
        perm.(!best) <- tp;
        sign := - !sign
      end;
      let pivot = lu.(k).(k) in
      for i = k + 1 to n - 1 do
        let factor = F.div lu.(i).(k) pivot in
        lu.(i).(k) <- factor;
        if F.magnitude factor <> 0.0 then
          for j = k + 1 to n - 1 do
            lu.(i).(j) <- F.sub lu.(i).(j) (F.mul factor lu.(k).(j))
          done
      done
    done;
    { lu; perm; sign = !sign }

  let solve { lu; perm; _ } b =
    let n = Array.length lu in
    if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
    let x = Array.init n (fun i -> b.(perm.(i))) in
    (* forward substitution: L has unit diagonal *)
    for i = 1 to n - 1 do
      let acc = ref x.(i) in
      for j = 0 to i - 1 do
        acc := F.sub !acc (F.mul lu.(i).(j) x.(j))
      done;
      x.(i) <- !acc
    done;
    (* back substitution *)
    for i = n - 1 downto 0 do
      let acc = ref x.(i) in
      for j = i + 1 to n - 1 do
        acc := F.sub !acc (F.mul lu.(i).(j) x.(j))
      done;
      x.(i) <- F.div !acc lu.(i).(i)
    done;
    x

  let solve_matrix a b = solve (decompose a) b

  let det { lu; sign; _ } =
    let n = Array.length lu in
    let d = ref (if sign >= 0 then F.one else F.neg F.one) in
    for i = 0 to n - 1 do
      d := F.mul !d lu.(i).(i)
    done;
    !d

  let dim { lu; _ } = Array.length lu
end

module Real = Make (Field.Real)
module Cplx = Make (Field.Cplx)

let solve_mat a b =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.solve_mat: matrix not square";
  let rows = Array.init n (fun i -> Array.init n (fun j -> Mat.get a i j)) in
  Real.solve_matrix rows b

let invert_mat a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.invert_mat: matrix not square";
  let rows = Array.init n (fun i -> Array.init n (fun j -> Mat.get a i j)) in
  let f = Real.decompose rows in
  let inv = Mat.make n n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1.0 else 0.0) in
    let x = Real.solve f e in
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  inv
