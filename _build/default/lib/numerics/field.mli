(** Scalar fields over which the dense linear algebra is functorized.

    {!Lu.Make} takes an implementation of {!S} so that the same LU
    factorization code serves the real-valued DC/transient solves and the
    complex-valued AC solves of the circuit engine. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t

  val magnitude : t -> float
  (** [magnitude x] is a non-negative pivoting weight, zero iff [x] is
      (numerically) zero. *)

  val of_float : float -> t
  val pp : Format.formatter -> t -> unit
end

module Real : S with type t = float
(** Ordinary floating-point arithmetic. *)

module Cplx : S with type t = Complex.t
(** Complex arithmetic on the standard library's [Complex.t]. *)
