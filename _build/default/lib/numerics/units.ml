let pi = 4.0 *. atan 1.0
let two_pi = 2.0 *. pi
let reference_impedance = 50.0

let check_positive name v =
  if v <= 0.0 || Float.is_nan v then
    invalid_arg (Printf.sprintf "Units.%s: argument must be > 0 (got %g)" name v)

let db_of_ratio r =
  check_positive "db_of_ratio" r;
  20.0 *. log10 r

let ratio_of_db d = 10.0 ** (d /. 20.0)

let db_of_power_ratio r =
  check_positive "db_of_power_ratio" r;
  10.0 *. log10 r

let power_ratio_of_db d = 10.0 ** (d /. 10.0)

let dbm_of_watts p =
  check_positive "dbm_of_watts" p;
  10.0 *. log10 (p /. 1.0e-3)

let watts_of_dbm d = 1.0e-3 *. (10.0 ** (d /. 10.0))

(* Peak sinusoid amplitude v across r dissipates v^2 / (2 r). *)
let dbm_of_vpeak ?(r = reference_impedance) v =
  check_positive "dbm_of_vpeak" v;
  dbm_of_watts (v *. v /. (2.0 *. r))

let vpeak_of_dbm ?(r = reference_impedance) d =
  sqrt (2.0 *. r *. watts_of_dbm d)

let db_close ?(tol = 1.0) a b = Float.abs (a -. b) <= tol

let prefixes =
  [ (1.0e-15, "f"); (1.0e-12, "p"); (1.0e-9, "n"); (1.0e-6, "u");
    (1.0e-3, "m"); (1.0, ""); (1.0e3, "k"); (1.0e6, "M");
    (1.0e9, "G"); (1.0e12, "T") ]

let pp_eng ?(unit = "") fmt v =
  if v = 0.0 then Format.fprintf fmt "0 %s" unit
  else begin
    let mag = Float.abs v in
    let scale, prefix =
      let rec pick = function
        | [] -> (1.0e12, "T")
        | (s, p) :: rest ->
          if mag < s *. 1000.0 then (s, p) else pick rest
      in
      pick prefixes
    in
    Format.fprintf fmt "%.2f %s%s" (v /. scale) prefix unit
  end

let eng ?unit v = Format.asprintf "%a" (pp_eng ?unit) v
