(** Zero-crossing frequency estimation.

    Counting interpolated zero crossings resolves an oscillator's
    frequency far beyond the DFT bin width of the same record — the
    tool used to verify the transistor-level oscillator against the
    tank model. *)

val crossings : float array -> float list
(** [crossings samples] is the (fractional) sample indices of the
    rising zero crossings, linearly interpolated. *)

val estimate_frequency : fs:float -> float array -> float
(** [estimate_frequency ~fs samples] is the mean frequency over the
    record, from the first to the last rising crossing.
    Raises [Invalid_argument] when [fs <= 0] or fewer than two rising
    crossings exist. *)

val period_jitter : fs:float -> float array -> float
(** [period_jitter ~fs samples] is the standard deviation of the
    cycle-to-cycle periods (seconds) — crude but useful to confirm a
    clean oscillation.  Raises like {!estimate_frequency} (needs at
    least three crossings). *)
