(** Preconditioned conjugate-gradient solver for symmetric
    positive-definite sparse systems — the grounded substrate
    conductance Laplacian is SPD, so CG is the workhorse of the
    macromodel reduction. *)

type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float; (** final [||b - A x|| / ||b||] *)
  converged : bool;
}

exception Not_converged of result
(** Raised by {!solve_exn} when the iteration cap is reached before the
    tolerance. *)

val solve :
  ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> Sparse.t -> Vec.t -> result
(** [solve ?tol ?max_iter ?x0 a b] runs Jacobi-preconditioned CG on
    [A x = b].  [tol] is the relative residual target (default [1e-10]);
    [max_iter] defaults to [4 * dim].  Raises [Invalid_argument] when
    [a] is not square or dimensions mismatch. *)

val solve_exn :
  ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> Sparse.t -> Vec.t -> Vec.t
(** Like {!solve} but returns the solution directly and raises
    {!Not_converged} on failure. *)
