let crossings samples =
  let n = Array.length samples in
  let acc = ref [] in
  for i = 0 to n - 2 do
    let a = samples.(i) and b = samples.(i + 1) in
    if a < 0.0 && b >= 0.0 then begin
      (* linear interpolation of the crossing instant *)
      let frac = -.a /. (b -. a) in
      acc := (float_of_int i +. frac) :: !acc
    end
  done;
  List.rev !acc

let estimate_frequency ~fs samples =
  if fs <= 0.0 then invalid_arg "Zero_crossing.estimate_frequency: fs <= 0";
  match crossings samples with
  | first :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    let cycles = float_of_int (List.length rest) in
    cycles /. ((last -. first) /. fs)
  | _ ->
    invalid_arg "Zero_crossing.estimate_frequency: fewer than 2 crossings"

let period_jitter ~fs samples =
  if fs <= 0.0 then invalid_arg "Zero_crossing.period_jitter: fs <= 0";
  let cs = Array.of_list (crossings samples) in
  if Array.length cs < 3 then
    invalid_arg "Zero_crossing.period_jitter: fewer than 3 crossings";
  let periods =
    Array.init (Array.length cs - 1) (fun i -> (cs.(i + 1) -. cs.(i)) /. fs)
  in
  Stats.std periods
