let check ~fs ~f samples =
  if Array.length samples = 0 then invalid_arg "Goertzel: empty input";
  if fs <= 0.0 then invalid_arg "Goertzel: fs must be > 0";
  if f < 0.0 || f > fs /. 2.0 then
    invalid_arg (Printf.sprintf "Goertzel: f = %g outside [0, fs/2]" f)

(* Direct correlation form: robust at arbitrary (non bin-center)
   frequencies, which the recurrence form handles poorly near 0. *)
let bin_of ~fs ~f samples =
  let n = Array.length samples in
  let w = Units.two_pi *. f /. fs in
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to n - 1 do
    let ph = w *. float_of_int i in
    re := !re +. (samples.(i) *. cos ph);
    im := !im -. (samples.(i) *. sin ph)
  done;
  let scale = if f = 0.0 || f = fs /. 2.0 then 1.0 else 2.0 in
  let k = scale /. float_of_int n in
  { Complex.re = !re *. k; im = !im *. k }

let bin ~fs ~f samples =
  check ~fs ~f samples;
  bin_of ~fs ~f samples

let amplitude ~fs ~f samples = Complex.norm (bin ~fs ~f samples)

let amplitude_windowed ~fs ~f samples =
  check ~fs ~f samples;
  let w = Fft.hann (Array.length samples) in
  let gain = Fft.coherent_gain w in
  let windowed = Array.mapi (fun i s -> s *. w.(i)) samples in
  Complex.norm (bin_of ~fs ~f windowed) /. gain
