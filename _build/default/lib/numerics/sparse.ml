type t = {
  nr : int;
  nc : int;
  row_ptr : int array; (* length nr + 1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

type builder = {
  bnr : int;
  bnc : int;
  mutable entries : (int * int * float) list;
  mutable count : int;
}

let builder nr nc =
  if nr < 0 || nc < 0 then invalid_arg "Sparse.builder: negative dimension";
  { bnr = nr; bnc = nc; entries = []; count = 0 }

let add b i j v =
  if i < 0 || i >= b.bnr || j < 0 || j >= b.bnc then
    invalid_arg
      (Printf.sprintf "Sparse.add: (%d,%d) out of %dx%d" i j b.bnr b.bnc);
  if v <> 0.0 then begin
    b.entries <- (i, j, v) :: b.entries;
    b.count <- b.count + 1
  end

let finalize b =
  let arr = Array.of_list b.entries in
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) ->
      match compare i1 i2 with 0 -> compare j1 j2 | c -> c)
    arr;
  (* sum duplicates in place, keeping order *)
  let n = Array.length arr in
  let out = ref [] and out_n = ref 0 in
  let k = ref 0 in
  while !k < n do
    let i, j, _ = arr.(!k) in
    let acc = ref 0.0 in
    while
      !k < n
      &&
      let i', j', _ = arr.(!k) in
      i' = i && j' = j
    do
      let _, _, v = arr.(!k) in
      acc := !acc +. v;
      incr k
    done;
    if !acc <> 0.0 then begin
      out := (i, j, !acc) :: !out;
      incr out_n
    end
  done;
  let compressed = Array.of_list (List.rev !out) in
  let nnz = Array.length compressed in
  let row_ptr = Array.make (b.bnr + 1) 0 in
  Array.iter (fun (i, _, _) -> row_ptr.(i + 1) <- row_ptr.(i + 1) + 1) compressed;
  for i = 0 to b.bnr - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  let col_idx = Array.make nnz 0 and values = Array.make nnz 0.0 in
  Array.iteri
    (fun k (_, j, v) ->
      col_idx.(k) <- j;
      values.(k) <- v)
    compressed;
  { nr = b.bnr; nc = b.bnc; row_ptr; col_idx; values }

let rows m = m.nr
let cols m = m.nc
let nnz m = Array.length m.values

let get m i j =
  if i < 0 || i >= m.nr || j < 0 || j >= m.nc then
    invalid_arg "Sparse.get: out of bounds";
  let lo = m.row_ptr.(i) and hi = m.row_ptr.(i + 1) - 1 in
  let rec search lo hi =
    if lo > hi then 0.0
    else begin
      let mid = (lo + hi) / 2 in
      let c = m.col_idx.(mid) in
      if c = j then m.values.(mid)
      else if c < j then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search lo hi

let mul_vec m v =
  if Array.length v <> m.nc then invalid_arg "Sparse.mul_vec: dimension mismatch";
  Vec.init m.nr (fun i ->
      let acc = ref 0.0 in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        acc := !acc +. (m.values.(k) *. v.(m.col_idx.(k)))
      done;
      !acc)

let diagonal m =
  if m.nr <> m.nc then invalid_arg "Sparse.diagonal: matrix not square";
  Vec.init m.nr (fun i -> get m i i)

let iter_row m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let is_symmetric ?(tol = 1e-9) m =
  m.nr = m.nc
  &&
  let ok = ref true in
  for i = 0 to m.nr - 1 do
    iter_row m i (fun j v ->
        if Float.abs (v -. get m j i) > tol then ok := false)
  done;
  !ok

let to_dense m =
  let d = Mat.make m.nr m.nc in
  for i = 0 to m.nr - 1 do
    iter_row m i (fun j v -> Mat.set d i j v)
  done;
  d
