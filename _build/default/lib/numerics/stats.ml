let require_nonempty name a =
  if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty array")

let mean a =
  require_nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  require_nonempty "variance" a;
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a
  /. float_of_int (Array.length a)

let std a = sqrt (variance a)

let rms a =
  require_nonempty "rms" a;
  sqrt
    (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a
    /. float_of_int (Array.length a))

let max_abs a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

type fit = { slope : float; intercept : float; r_squared : float }

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least 2 points";
  let fn = float_of_int n in
  let sx = Array.fold_left ( +. ) 0.0 xs in
  let sy = Array.fold_left ( +. ) 0.0 ys in
  let sxx = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
  let sxy = Sweep.fold_pairs (fun a x y -> a +. (x *. y)) 0.0 xs ys in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if denom = 0.0 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  let y_mean = sy /. fn in
  let ss_tot = Array.fold_left (fun a y -> a +. ((y -. y_mean) ** 2.0)) 0.0 ys in
  let ss_res =
    Sweep.fold_pairs
      (fun a x y ->
        let e = y -. ((slope *. x) +. intercept) in
        a +. (e *. e))
      0.0 xs ys
  in
  let r_squared = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r_squared }

let slope_db_per_decade freqs dbs =
  let logs = Array.map log10 freqs in
  (linear_fit logs dbs).slope
