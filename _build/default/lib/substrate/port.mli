(** Substrate ports: the named surface regions between which the
    extractor computes the substrate macromodel.

    A port is where the substrate meets the circuit: a p+ contact ring
    (resistive), an n-well footprint (capacitive through the junction),
    or a device back-gate sensing area (resistive, the bulk node under
    a MOS channel).

    A port's region is a {e list} of rectangles: a guard ring is a
    hollow frame of contact strips that must not be collapsed to its
    bounding box. *)

type kind =
  | Resistive  (** p+ substrate tap: ohmic connection *)
  | Well  (** n-well: connects through the well-bulk junction C *)
  | Probe  (** back-gate observation region *)

type t = {
  name : string;
  kind : kind;
  region : Sn_geometry.Rect.t list;  (** layout coordinates, micrometers *)
}

val v : name:string -> kind:kind -> Sn_geometry.Rect.t list -> t
(** Raises [Invalid_argument] on an empty region. *)

val of_layout : Sn_layout.Layout.t -> t list
(** [of_layout l] derives ports from the flattened layout:
    - all [Substrate_contact] shapes of one net form one {!Resistive}
      port named after the net;
    - all [Nwell] shapes of one net form one {!Well} port named
      ["nwell:<net>"];
    - all [Backgate_probe d] shapes form one {!Probe} port per device
      [d], named ["backgate:<d>"].
    Ports are returned sorted by name. *)

val area : t -> float
(** Total region area (um^2). *)

val contains : t -> Sn_geometry.Point.t -> bool
(** [contains p pt] is true when [pt] lies in any region rectangle. *)

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
