(** Substrate macromodel extraction (the SubstrateStorm substitute).

    Assembles the FDM conductance Laplacian of the discretized bulk,
    couples each port to the surface cells it overlaps through the
    technology's specific contact resistance, and eliminates every
    grid node with a Schur complement computed column-by-column with
    conjugate gradients:

    {v S = G_pp - G_pi G_ii^-1 G_ip v} *)

type stats = {
  grid_cells : int;
  ports : int;
  cg_iterations_total : int;
  elapsed_seconds : float;
}

val last_stats : unit -> stats option
(** Statistics of the most recent {!extract} call (for the runtime
    bench). *)

val extract :
  ?config:Grid.config ->
  ?grounded_backplane:bool ->
  tech:Sn_tech.Tech.t ->
  die:Sn_geometry.Rect.t ->
  Port.t list ->
  Macromodel.t
(** [extract ?config ?grounded_backplane ~tech ~die ports] computes
    the macromodel.  With [grounded_backplane] (default [false]) the
    die backside is metallized: an extra resistive port named
    ["backplane"] couples to every bottom grid cell — ground it in the
    merged model to study a conductively attached die.
    [die] is in micrometers.
    Raises [Invalid_argument] when [ports] is empty, when a port lies
    outside the die, or on grid configuration errors; fails with
    [Sn_numerics.Cg.Not_converged] if the elimination solves stall. *)

val extract_from_layout :
  ?config:Grid.config ->
  ?margin_fraction:float ->
  tech:Sn_tech.Tech.t ->
  Sn_layout.Layout.t ->
  Macromodel.t
(** [extract_from_layout ?config ?margin_fraction ~tech layout]
    derives the extraction window from the substrate-relevant shapes
    (contacts, wells, probes — metal routing and pads are excluded so
    they cannot blow up the cell size), padded on each side by
    [margin_fraction] (default 0.35) of the larger extent so bulk
    spreading has room, then extracts with ports from
    {!Port.of_layout}. *)
