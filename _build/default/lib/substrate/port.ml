module G = Sn_geometry
module L = Sn_layout

type kind = Resistive | Well | Probe

type t = { name : string; kind : kind; region : G.Rect.t list }

let v ~name ~kind region =
  if region = [] then invalid_arg "Port.v: empty region";
  { name; kind; region }

let shape_rect (s : L.Shape.t) =
  match s.L.Shape.geometry with
  | L.Shape.Rect r -> r
  | L.Shape.Path _ -> L.Shape.bbox s

module StringMap = Map.Make (String)

let of_layout layout =
  let add key kind rect acc =
    StringMap.update key
      (function
        | None -> Some (kind, [ rect ])
        | Some (k, rects) -> Some (k, rect :: rects))
      acc
  in
  let table =
    List.fold_left
      (fun acc (s : L.Shape.t) ->
        match s.L.Shape.layer with
        | L.Layer.Substrate_contact ->
          add s.L.Shape.net Resistive (shape_rect s) acc
        | L.Layer.Nwell -> add ("nwell:" ^ s.L.Shape.net) Well (shape_rect s) acc
        | L.Layer.Backgate_probe d ->
          add ("backgate:" ^ d) Probe (shape_rect s) acc
        | L.Layer.Diffusion | L.Layer.Poly | L.Layer.Metal _ | L.Layer.Via _
        | L.Layer.Pad ->
          acc)
      StringMap.empty
      (L.Layout.flatten layout)
  in
  StringMap.bindings table
  |> List.map (fun (name, (kind, region)) -> { name; kind; region })

let area p =
  List.fold_left (fun acc r -> acc +. G.Rect.area r) 0.0 p.region

let contains p pt = List.exists (fun r -> G.Rect.contains_point r pt) p.region

let kind_name = function
  | Resistive -> "resistive"
  | Well -> "well"
  | Probe -> "probe"

let pp fmt p =
  Format.fprintf fmt "port %s (%s, %d rects, %.1f um^2)" p.name
    (kind_name p.kind) (List.length p.region) (area p)
