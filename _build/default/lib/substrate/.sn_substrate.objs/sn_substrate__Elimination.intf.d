lib/substrate/elimination.mli: Grid Macromodel Port Sn_geometry Sn_numerics Sn_tech
