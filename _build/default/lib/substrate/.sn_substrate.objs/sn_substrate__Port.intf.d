lib/substrate/port.mli: Format Sn_geometry Sn_layout
