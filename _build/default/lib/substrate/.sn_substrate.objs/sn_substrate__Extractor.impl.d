lib/substrate/extractor.ml: Array Float Grid List Logs Macromodel Port Printf Sn_geometry Sn_layout Sn_numerics Sn_tech Unix
