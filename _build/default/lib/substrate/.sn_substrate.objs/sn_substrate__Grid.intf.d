lib/substrate/grid.mli: Sn_geometry Sn_tech
