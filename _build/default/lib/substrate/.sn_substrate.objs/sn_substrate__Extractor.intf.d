lib/substrate/extractor.mli: Grid Macromodel Port Sn_geometry Sn_layout Sn_tech
