lib/substrate/macromodel.mli: Format Port Sn_numerics
