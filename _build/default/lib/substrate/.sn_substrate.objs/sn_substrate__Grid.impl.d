lib/substrate/grid.ml: Array List Printf Sn_geometry Sn_tech
