lib/substrate/port.ml: Format List Map Sn_geometry Sn_layout String
