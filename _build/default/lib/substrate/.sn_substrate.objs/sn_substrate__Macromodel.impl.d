lib/substrate/macromodel.ml: Array Format List Port Printf Sn_numerics
