lib/substrate/elimination.ml: Array Grid Hashtbl List Macromodel Option Port Sn_geometry Sn_numerics Sn_tech
