module Mat = Sn_numerics.Mat
module Lu = Sn_numerics.Lu

type t = {
  ports : Port.t array;
  conductance : Mat.t;
  well_capacitance : (string * float) list;
}

let make ~ports ~conductance ~well_capacitance =
  let np = Array.length ports in
  if Mat.rows conductance <> np || Mat.cols conductance <> np then
    invalid_arg "Macromodel.make: conductance dimension mismatch";
  { ports; conductance; well_capacitance }

let port_count m = Array.length m.ports

let port_index m name =
  let found = ref None in
  Array.iteri
    (fun i (p : Port.t) -> if p.Port.name = name then found := Some i)
    m.ports;
  match !found with Some i -> i | None -> raise Not_found

let port_names m =
  Array.to_list (Array.map (fun (p : Port.t) -> p.Port.name) m.ports)

let coupling_resistance m a b =
  let g = Mat.get m.conductance (port_index m a) (port_index m b) in
  if g >= 0.0 then
    invalid_arg (Printf.sprintf "Macromodel: ports %s and %s uncoupled" a b)
  else -1.0 /. g

let to_resistors m =
  let np = port_count m in
  let acc = ref [] in
  for i = 0 to np - 1 do
    for j = i + 1 to np - 1 do
      let g = Mat.get m.conductance i j in
      if g < 0.0 then
        acc :=
          (m.ports.(i).Port.name, m.ports.(j).Port.name, -1.0 /. g) :: !acc
    done
  done;
  List.rev !acc

(* Impose voltages on constrained ports, zero current on the rest:
   split G v = i into free/fixed blocks and solve
   G_ff v_f = - G_fc v_c. *)
let solve m ~driven ~grounded =
  let np = port_count m in
  let fixed = Array.make np None in
  let constrain name v =
    let i = port_index m name in
    match fixed.(i) with
    | Some _ ->
      invalid_arg ("Macromodel.solve: port constrained twice: " ^ name)
    | None -> fixed.(i) <- Some v
  in
  List.iter (fun (name, v) -> constrain name v) driven;
  List.iter (fun name -> constrain name 0.0) grounded;
  let free_idx =
    Array.to_list (Array.mapi (fun i f -> (i, f)) fixed)
    |> List.filter_map (fun (i, f) -> if f = None then Some i else None)
    |> Array.of_list
  in
  let nf = Array.length free_idx in
  if nf = np then invalid_arg "Macromodel.solve: no port constrained";
  let v = Array.make np 0.0 in
  Array.iteri (fun i f -> match f with Some x -> v.(i) <- x | None -> ()) fixed;
  if nf > 0 then begin
    let a = Mat.init nf nf (fun r c ->
        Mat.get m.conductance free_idx.(r) free_idx.(c))
    in
    let b =
      Array.init nf (fun r ->
          let acc = ref 0.0 in
          for j = 0 to np - 1 do
            match fixed.(j) with
            | Some vj ->
              acc := !acc -. (Mat.get m.conductance free_idx.(r) j *. vj)
            | None -> ()
          done;
          !acc)
    in
    let x = Lu.solve_mat a b in
    Array.iteri (fun r i -> v.(i) <- x.(r)) free_idx
  end;
  Array.to_list (Array.mapi (fun i (p : Port.t) -> (p.Port.name, v.(i))) m.ports)

let divider m ~inject ~sense ~grounded =
  let voltages = solve m ~driven:[ (inject, 1.0) ] ~grounded in
  List.assoc sense voltages

let pp fmt m =
  Format.fprintf fmt "@[<v>substrate macromodel: %d ports@," (port_count m);
  Array.iter (fun p -> Format.fprintf fmt "  %a@," Port.pp p) m.ports;
  List.iter
    (fun (name, c) ->
      Format.fprintf fmt "  C(%s) = %s@," name
        (Sn_numerics.Units.eng ~unit:"F" c))
    m.well_capacitance;
  Format.fprintf fmt "@]"
