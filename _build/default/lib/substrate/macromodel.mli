(** The extracted substrate macromodel: a dense port conductance matrix
    (the Schur complement of the eliminated grid) plus the junction
    capacitances of well ports. *)

type t = {
  ports : Port.t array;
  conductance : Sn_numerics.Mat.t;
      (** symmetric [np x np] Laplacian between ports, Siemens *)
  well_capacitance : (string * float) list;
      (** junction capacitance (F) per {!Port.Well} port *)
}

val make :
  ports:Port.t array -> conductance:Sn_numerics.Mat.t ->
  well_capacitance:(string * float) list -> t
(** Raises [Invalid_argument] on a dimension mismatch. *)

val port_count : t -> int

val port_index : t -> string -> int
(** Raises [Not_found]. *)

val port_names : t -> string list

val coupling_resistance : t -> string -> string -> float
(** [coupling_resistance m a b] is the branch resistance [-1 / G_ab] of
    the equivalent resistor network.  Raises [Not_found] for unknown
    ports and [Invalid_argument] when the ports are uncoupled
    ([G_ab >= 0]). *)

val to_resistors : t -> (string * string * float) list
(** All pairwise branch resistors [(a, b, ohms)] with [a < b],
    uncoupled pairs omitted. *)

val solve :
  t -> driven:(string * float) list -> grounded:string list ->
  (string * float) list
(** [solve m ~driven ~grounded] imposes the given port voltages
    ([driven] at their value, [grounded] at 0), leaves every other
    port floating (zero injected current) and returns all port
    voltages.  Raises [Not_found] on unknown ports, [Invalid_argument]
    when a port is constrained twice or no constraint is given. *)

val divider : t -> inject:string -> sense:string -> grounded:string list -> float
(** [divider m ~inject ~sense ~grounded] is the DC voltage division
    [v_sense / v_inject] with [inject] driven at 1 V — the quantity the
    paper reports as 1/652 for the SUB-to-back-gate transfer. *)

val pp : Format.formatter -> t -> unit
