module G = Sn_geometry
module T = Sn_tech.Tech

type config = { nx : int; ny : int; z_per_layer : int list option }

let default_config = { nx = 32; ny = 32; z_per_layer = None }

type t = {
  xs : float array; (* cell boundaries, micrometers, length nx + 1 *)
  ys : float array;
  nz : int;
  slab_dz : float array; (* meters *)
  slab_rho : float array; (* ohm m *)
}

(* Merge uniform baseline lines with feature-edge snap lines. *)
let boundaries lo hi n snaps =
  let uniform =
    List.init (n + 1) (fun i ->
        lo +. (float_of_int i *. (hi -. lo) /. float_of_int n))
  in
  let candidates =
    uniform @ List.filter (fun x -> x > lo && x < hi) snaps
    |> List.sort compare
  in
  let eps = 1.0e-3 (* micrometers: 1 nm *) in
  let rec dedupe = function
    | a :: (b :: _ as rest) ->
      if b -. a < eps then dedupe (a :: List.tl rest) else a :: dedupe rest
    | done_ -> done_
  in
  Array.of_list (dedupe candidates)

let build ?(snap_x = []) ?(snap_y = []) (config : config) ~die
    (profile : T.substrate_profile) =
  if config.nx < 1 || config.ny < 1 then
    invalid_arg "Grid.build: nx and ny must be >= 1";
  if G.Rect.area die <= 0.0 then invalid_arg "Grid.build: empty die";
  let layers = profile.T.layers in
  let subdivisions =
    match config.z_per_layer with
    | None -> List.map (fun _ -> 2) layers
    | Some subs ->
      if List.length subs <> List.length layers then
        invalid_arg "Grid.build: z_per_layer length mismatch";
      if List.exists (fun k -> k < 1) subs then
        invalid_arg "Grid.build: z_per_layer entries must be >= 1";
      subs
  in
  let slabs =
    List.concat
      (List.map2
         (fun (l : T.substrate_layer) k ->
           List.init k (fun _ -> (l.T.depth /. float_of_int k, l.T.resistivity)))
         layers subdivisions)
  in
  let open G.Rect in
  {
    xs = boundaries die.x0 die.x1 config.nx snap_x;
    ys = boundaries die.y0 die.y1 config.ny snap_y;
    nz = List.length slabs;
    slab_dz = Array.of_list (List.map fst slabs);
    slab_rho = Array.of_list (List.map snd slabs);
  }

let nx g = Array.length g.xs - 1
let ny g = Array.length g.ys - 1
let nz g = g.nz
let cell_count g = nx g * ny g * g.nz

let cell_index g ix iy iz =
  let nx = nx g and ny = ny g in
  if ix < 0 || ix >= nx || iy < 0 || iy >= ny || iz < 0 || iz >= g.nz then
    invalid_arg
      (Printf.sprintf "Grid.cell_index: (%d,%d,%d) out of %dx%dx%d" ix iy iz
         nx ny g.nz);
  (iz * nx * ny) + (iy * nx) + ix

let dx g ix = (g.xs.(ix + 1) -. g.xs.(ix)) *. T.micron
let dy g iy = (g.ys.(iy + 1) -. g.ys.(iy)) *. T.micron
let dz g iz = g.slab_dz.(iz)
let resistivity g iz = g.slab_rho.(iz)

let surface_cell_rect g ix iy =
  G.Rect.make g.xs.(ix) g.ys.(iy) g.xs.(ix + 1) g.ys.(iy + 1)

(* Box integration: the conductance between adjacent cell centers is
   the series combination of the two half-cell conductances
   G_half = sigma * A / (d / 2). *)
let series_conductance rho1 d1 rho2 d2 area =
  let r1 = rho1 *. (d1 /. 2.0) /. area in
  let r2 = rho2 *. (d2 /. 2.0) /. area in
  1.0 /. (r1 +. r2)

let iter_conductances g f =
  let nx = nx g and ny = ny g in
  for iz = 0 to g.nz - 1 do
    let rho = g.slab_rho.(iz) and dzc = g.slab_dz.(iz) in
    for iy = 0 to ny - 1 do
      for ix = 0 to nx - 1 do
        let a = cell_index g ix iy iz in
        (* +x neighbour *)
        if ix + 1 < nx then begin
          let area = dy g iy *. dzc in
          f a (cell_index g (ix + 1) iy iz)
            (series_conductance rho (dx g ix) rho (dx g (ix + 1)) area)
        end;
        (* +y neighbour *)
        if iy + 1 < ny then begin
          let area = dx g ix *. dzc in
          f a (cell_index g ix (iy + 1) iz)
            (series_conductance rho (dy g iy) rho (dy g (iy + 1)) area)
        end;
        (* +z neighbour (deeper) *)
        if iz + 1 < g.nz then begin
          let area = dx g ix *. dy g iy in
          f a (cell_index g ix iy (iz + 1))
            (series_conductance rho dzc g.slab_rho.(iz + 1)
               g.slab_dz.(iz + 1) area)
        end
      done
    done
  done
