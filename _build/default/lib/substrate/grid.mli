(** Finite-difference discretization of the die substrate.

    The lateral grid starts from [nx * ny] uniform lines and
    additionally {e snaps} to any supplied feature edges (port
    rectangle boundaries), so thin guard rings and gaps are resolved
    exactly instead of aliasing against the cell raster.  The vertical
    direction is divided into sublayers per
    {!Sn_tech.Tech.substrate_layer}.  Cells are indexed [(ix, iy, iz)]
    with [iz = 0] at the surface. *)

type config = {
  nx : int;  (** baseline uniform cell count in x *)
  ny : int;
  z_per_layer : int list option;
      (** subdivisions per profile layer (surface first); [None] picks
          a default of 2 sublayers per layer *)
}

val default_config : config
(** 32 x 32 lateral cells, default vertical subdivision. *)

type t

val build :
  ?snap_x:float list -> ?snap_y:float list -> config ->
  die:Sn_geometry.Rect.t -> Sn_tech.Tech.substrate_profile -> t
(** [build ?snap_x ?snap_y config ~die profile] discretizes.  [die]
    and the snap coordinates are in micrometers; snap lines outside
    the die or closer than 1 nm to an existing line are dropped.
    Raises [Invalid_argument] for non-positive cell counts, an empty
    die, or a [z_per_layer] whose length does not match the profile. *)

val nx : t -> int
(** Actual cell count in x (baseline + snapped lines). *)

val ny : t -> int
val nz : t -> int
val cell_count : t -> int

val cell_index : t -> int -> int -> int -> int
(** [cell_index g ix iy iz] is the linear cell index.
    Raises [Invalid_argument] out of range. *)

val dx : t -> int -> float
(** [dx g ix] is the width of column [ix], meters. *)

val dy : t -> int -> float

val dz : t -> int -> float
(** [dz g iz] is the thickness of z-slab [iz], meters. *)

val resistivity : t -> int -> float
(** [resistivity g iz] is the resistivity of slab [iz], ohm m. *)

val surface_cell_rect : t -> int -> int -> Sn_geometry.Rect.t
(** [surface_cell_rect g ix iy] is the micrometre-unit footprint of
    column [(ix, iy)] — used to intersect with port regions. *)

val iter_conductances : t -> (int -> int -> float -> unit) -> unit
(** [iter_conductances g f] calls [f cell_a cell_b conductance] once per
    adjacent cell pair (box-integration conductance, Siemens). *)
