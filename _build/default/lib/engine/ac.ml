module C = Sn_circuit
module N = Sn_numerics

type solution = {
  mna : Mna.t;
  freq : float;
  x : Complex.t array;
}

let cx re im = { Complex.re; im }
let czero = Complex.zero

let volt_of_dc dc node = Dc.voltage dc node

(* Assemble the complex admittance system at angular frequency w. *)
let assemble mna dc ~omega =
  let dim = Mna.dim mna in
  let a = Array.make_matrix dim dim czero in
  let rhs = Array.make dim czero in
  let stamp i j (y : Complex.t) =
    if i >= 0 && j >= 0 then a.(i).(j) <- Complex.add a.(i).(j) y
  in
  let inject i (v : Complex.t) =
    if i >= 0 then rhs.(i) <- Complex.add rhs.(i) v
  in
  let stamp_admittance i j y =
    stamp i i y;
    stamp j j y;
    stamp i j (Complex.neg y);
    stamp j i (Complex.neg y)
  in
  let stamp_vccs i j k l gm =
    let y = cx gm 0.0 in
    stamp i k y;
    stamp i l (Complex.neg y);
    stamp j k (Complex.neg y);
    stamp j l y
  in
  let slot = Mna.node_slot mna in
  let one = cx 1.0 0.0 in
  List.iter
    (fun e ->
      match e with
      | C.Element.Resistor { n1; n2; ohms; _ } ->
        stamp_admittance (slot n1) (slot n2) (cx (1.0 /. ohms) 0.0)
      | C.Element.Capacitor { n1; n2; farads; _ } ->
        stamp_admittance (slot n1) (slot n2) (cx 0.0 (omega *. farads))
      | C.Element.Inductor { name; n1; n2; henries } ->
        let b = Mna.branch_slot mna name in
        let i = slot n1 and j = slot n2 in
        stamp b i one;
        stamp b j (Complex.neg one);
        stamp i b one;
        stamp j b (Complex.neg one);
        stamp b b (cx 0.0 (-.(omega *. henries)))
      | C.Element.Vsource { name; np; nn; ac_mag; _ } ->
        let b = Mna.branch_slot mna name in
        let i = slot np and j = slot nn in
        stamp b i one;
        stamp b j (Complex.neg one);
        stamp i b one;
        stamp j b (Complex.neg one);
        rhs.(b) <- Complex.add rhs.(b) (cx ac_mag 0.0)
      | C.Element.Isource { np; nn; ac_mag; _ } ->
        inject (slot np) (cx (-.ac_mag) 0.0);
        inject (slot nn) (cx ac_mag 0.0)
      | C.Element.Vccs { np; nn; cp; cn; gm; _ } ->
        stamp_vccs (slot np) (slot nn) (slot cp) (slot cn) gm
      | C.Element.Vcvs { name; np; nn; cp; cn; gain } ->
        let b = Mna.branch_slot mna name in
        let i = slot np and j = slot nn and k = slot cp and l = slot cn in
        stamp b i one;
        stamp b j (Complex.neg one);
        stamp b k (cx (-.gain) 0.0);
        stamp b l (cx gain 0.0);
        stamp i b one;
        stamp j b (Complex.neg one)
      | C.Element.Mosfet { drain; gate; source; bulk; model; w; l; mult; _ } ->
        let d = slot drain and g = slot gate and s = slot source
        and b = slot bulk in
        let lin =
          Device_eval.mos ~model ~w ~l ~mult ~vd:(volt_of_dc dc drain)
            ~vg:(volt_of_dc dc gate) ~vs:(volt_of_dc dc source)
            ~vb:(volt_of_dc dc bulk)
        in
        (* transconductances: id = g_dg vg + g_dd vd + g_ds vs + g_db vb;
           the current leaves the drain node and enters the source node *)
        List.iter
          (fun (coeff, node) ->
            stamp d node (cx coeff 0.0);
            stamp s node (cx (-.coeff) 0.0))
          [ (lin.Device_eval.g_dd, d); (lin.Device_eval.g_dg, g);
            (lin.Device_eval.g_ds, s); (lin.Device_eval.g_db, b) ];
        (* device capacitances, scaled by multiplicity *)
        let fm = float_of_int mult in
        let cap n1 n2 c =
          stamp_admittance n1 n2 (cx 0.0 (omega *. c *. fm))
        in
        cap g s model.C.Mos_model.cgs;
        cap g d model.C.Mos_model.cgd;
        cap d b model.C.Mos_model.cdb;
        cap s b model.C.Mos_model.csb
      | C.Element.Varactor { n1; n2; model; mult; _ } ->
        let v1 = volt_of_dc dc n1 and v2 = volt_of_dc dc n2 in
        let c =
          C.Varactor_model.capacitance model (v1 -. v2) *. float_of_int mult
        in
        stamp_admittance (slot n1) (slot n2) (cx 0.0 (omega *. c)))
    (C.Netlist.elements (Mna.netlist mna));
  (* a touch of gmin keeps isolated nodes from making the system singular *)
  for i = 0 to Mna.n_nodes mna - 1 do
    a.(i).(i) <- Complex.add a.(i).(i) (cx 1e-15 0.0)
  done;
  (a, rhs)

let system mna dc ~omega = assemble mna dc ~omega

let solve_at mna dc ~freq =
  if freq < 0.0 then invalid_arg "Ac.solve: freq must be >= 0";
  let omega = N.Units.two_pi *. freq in
  let a, rhs = assemble mna dc ~omega in
  let x = N.Lu.Cplx.solve_matrix a rhs in
  { mna; freq; x }

let solve ?dc netlist ~freq =
  let mna = Mna.build netlist in
  let dc = match dc with Some d -> d | None -> Dc.solve_mna mna in
  solve_at mna dc ~freq

let frequency s = s.freq

let voltage s node =
  let slot = Mna.node_slot s.mna node in
  if slot < 0 then czero else s.x.(slot)

let magnitude_db s node =
  N.Units.db_of_ratio (Complex.norm (voltage s node))

type sweep_point = { freq : float; values : (string * Complex.t) list }

let sweep ?dc netlist ~freqs ~nodes =
  let mna = Mna.build netlist in
  let dc = match dc with Some d -> d | None -> Dc.solve_mna mna in
  Array.to_list freqs
  |> List.map (fun freq ->
         let s = solve_at mna dc ~freq in
         { freq; values = List.map (fun n -> (n, voltage s n)) nodes })

let transfer_db points node =
  Array.of_list
    (List.map
       (fun p -> N.Units.db_of_ratio (Complex.norm (List.assoc node p.values)))
       points)
