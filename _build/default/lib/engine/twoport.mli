(** Two-port S-parameter extraction — how substrate isolation is
    usually quoted (S21 between a noisy contact and a victim contact).

    Ports are single-ended (node referenced to ground) with a common
    reference impedance; the netlist must not already contain the
    terminations. *)

type sparams = {
  freq : float;
  s11 : Complex.t;
  s21 : Complex.t;
  s12 : Complex.t;
  s22 : Complex.t;
}

val analyze :
  ?z0:float -> Sn_circuit.Netlist.t -> port1:string -> port2:string ->
  freqs:float array -> sparams list
(** [analyze ?z0 nl ~port1 ~port2 ~freqs] terminates both ports in
    [z0] (default 50 ohm), drives each side in turn and solves the AC
    system per frequency.  Raises [Invalid_argument] when a port node
    is ground or missing. *)

val isolation_db : sparams -> float
(** [isolation_db s] is [-20 log10 |s21|] — the quoted substrate
    isolation. *)
