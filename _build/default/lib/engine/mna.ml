module C = Sn_circuit

type t = {
  netlist : C.Netlist.t;
  node_table : (string, int) Hashtbl.t;
  branch_table : (string, int) Hashtbl.t;
  node_names : string array;
  n_nodes : int;
  n_branches : int;
}

let needs_branch = function
  | C.Element.Vsource _ | C.Element.Vcvs _ | C.Element.Inductor _ -> true
  | C.Element.Resistor _ | C.Element.Capacitor _ | C.Element.Isource _
  | C.Element.Vccs _ | C.Element.Mosfet _ | C.Element.Varactor _ ->
    false

let build netlist =
  let nodes = C.Netlist.nodes netlist in
  let node_table = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.replace node_table n i) nodes;
  let n_nodes = List.length nodes in
  let branch_table = Hashtbl.create 16 in
  let n_branches = ref 0 in
  List.iter
    (fun e ->
      if needs_branch e then begin
        Hashtbl.replace branch_table (C.Element.name e) (n_nodes + !n_branches);
        incr n_branches
      end)
    (C.Netlist.elements netlist);
  {
    netlist;
    node_table;
    branch_table;
    node_names = Array.of_list nodes;
    n_nodes;
    n_branches = !n_branches;
  }

let netlist m = m.netlist
let n_nodes m = m.n_nodes
let n_branches m = m.n_branches
let dim m = m.n_nodes + m.n_branches

let node_slot m name =
  if C.Element.is_ground name then -1
  else
    match Hashtbl.find_opt m.node_table name with
    | Some i -> i
    | None -> raise Not_found

let branch_slot m name =
  match Hashtbl.find_opt m.branch_table name with
  | Some i -> i
  | None -> raise Not_found

let node_names m = m.node_names
