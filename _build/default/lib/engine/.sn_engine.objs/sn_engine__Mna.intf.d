lib/engine/mna.mli: Sn_circuit
