lib/engine/dc.ml: Array Device_eval Float Format List Logs Mna Sn_circuit Sn_numerics
