lib/engine/ac.ml: Array Complex Dc Device_eval List Mna Sn_circuit Sn_numerics
