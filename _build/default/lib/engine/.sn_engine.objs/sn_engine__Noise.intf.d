lib/engine/noise.mli: Dc Sn_circuit
