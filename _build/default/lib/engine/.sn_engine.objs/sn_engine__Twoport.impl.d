lib/engine/twoport.ml: Ac Array Complex Dc List Sn_circuit Sn_numerics
