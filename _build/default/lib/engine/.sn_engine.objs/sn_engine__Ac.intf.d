lib/engine/ac.mli: Complex Dc Mna Sn_circuit
