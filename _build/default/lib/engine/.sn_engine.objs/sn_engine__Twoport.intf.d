lib/engine/twoport.mli: Complex Sn_circuit
