lib/engine/dc.mli: Format Mna Sn_circuit
