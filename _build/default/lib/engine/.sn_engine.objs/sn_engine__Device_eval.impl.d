lib/engine/device_eval.ml: Sn_circuit
