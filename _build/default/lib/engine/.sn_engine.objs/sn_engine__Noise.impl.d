lib/engine/noise.ml: Ac Array Complex Dc List Mna Sn_circuit Sn_numerics
