lib/engine/tran.mli: Sn_circuit
