lib/engine/tran.ml: Array Buffer Dc Device_eval Float Hashtbl List Mna Printf Sn_circuit Sn_numerics String
