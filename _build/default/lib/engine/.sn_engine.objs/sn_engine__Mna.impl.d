lib/engine/mna.ml: Array Hashtbl List Sn_circuit
