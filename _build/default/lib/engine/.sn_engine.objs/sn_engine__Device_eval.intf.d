lib/engine/device_eval.mli: Sn_circuit
