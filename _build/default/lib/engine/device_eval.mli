(** Linearization of nonlinear devices at a candidate solution — the
    companion models shared by the DC, AC and transient engines. *)

type mos_linear = {
  id : float;
      (** current flowing into the drain terminal and out of the
          source terminal, A (sign already reflects device polarity) *)
  g_dd : float;  (** d id / d v_drain *)
  g_dg : float;  (** d id / d v_gate *)
  g_ds : float;  (** d id / d v_source *)
  g_db : float;  (** d id / d v_bulk *)
  op : Sn_circuit.Mos_model.operating_point;
      (** single-device operating point in the device's own frame
          (before the [mult] scaling applied to the entries above) *)
}

val mos :
  model:Sn_circuit.Mos_model.t -> w:float -> l:float -> mult:int ->
  vd:float -> vg:float -> vs:float -> vb:float -> mos_linear
(** [mos ~model ~w ~l ~mult ~vd ~vg ~vs ~vb] evaluates the MOSFET at
    the given absolute node voltages.  Handles PMOS polarity and
    drain/source swapping for reverse operation. *)
