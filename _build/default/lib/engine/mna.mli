(** Modified nodal analysis bookkeeping shared by the DC, AC and
    transient engines: node and branch-current variable numbering.

    Unknown vector layout: node voltages first (non-ground nodes in
    sorted order), then one branch current per voltage-defined element
    (independent voltage sources, VCVS, inductors). *)

type t

val build : Sn_circuit.Netlist.t -> t

val netlist : t -> Sn_circuit.Netlist.t

val n_nodes : t -> int
val n_branches : t -> int

val dim : t -> int
(** [dim m = n_nodes m + n_branches m]. *)

val node_slot : t -> string -> int
(** [node_slot m name] is the unknown index of node [name], or [-1]
    for ground.  Raises [Not_found] for unknown nodes. *)

val branch_slot : t -> string -> int
(** [branch_slot m element_name] is the unknown index of the branch
    current of a voltage-defined element.  Raises [Not_found]. *)

val node_names : t -> string array
(** Index [i] holds the name of unknown [i], for [i < n_nodes]. *)
