module M = Sn_circuit.Mos_model

type mos_linear = {
  id : float;
  g_dd : float;
  g_dg : float;
  g_ds : float;
  g_db : float;
  op : M.operating_point;
}

(* Polarity transform: a PMOS behaves as an NMOS on negated node
   voltages; the current into the drain picks up the sign while the
   conductances (second derivatives of the sign flip) do not.
   Reverse operation (vds < 0 in the device frame) is handled by
   evaluating with drain and source exchanged. *)
let mos ~model ~w ~l ~mult ~vd ~vg ~vs ~vb =
  let sigma = match model.M.polarity with M.Nmos -> 1.0 | M.Pmos -> -1.0 in
  let td = sigma *. vd
  and tg = sigma *. vg
  and ts = sigma *. vs
  and tb = sigma *. vb in
  let m = float_of_int mult in
  if td >= ts then begin
    let op =
      M.evaluate model ~w ~l ~vgs:(tg -. ts) ~vds:(td -. ts) ~vbs:(tb -. ts)
    in
    let gm = m *. op.M.gm and gds = m *. op.M.gds and gmb = m *. op.M.gmb in
    {
      id = sigma *. m *. op.M.id;
      g_dd = gds;
      g_dg = gm;
      g_ds = -.(gm +. gds +. gmb);
      g_db = gmb;
      op;
    }
  end
  else begin
    (* swapped: the physical source acts as the channel drain *)
    let op =
      M.evaluate model ~w ~l ~vgs:(tg -. td) ~vds:(ts -. td) ~vbs:(tb -. td)
    in
    let gm = m *. op.M.gm and gds = m *. op.M.gds and gmb = m *. op.M.gmb in
    (* current into the physical drain is minus the channel current;
       derivatives follow from i_D = -I(vg - vd, vs - vd, vb - vd) *)
    {
      id = -.(sigma *. m *. op.M.id);
      g_dd = gm +. gds +. gmb;
      g_dg = -.gm;
      g_ds = -.gds;
      g_db = -.gmb;
      op;
    }
  end
