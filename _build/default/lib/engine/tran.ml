module C = Sn_circuit
module N = Sn_numerics

type method_ = Backward_euler | Trapezoidal

type initial_condition = Operating_point | Uic of (string * float) list

type options = {
  method_ : method_;
  max_newton : int;
  tolerance : float;
  ic : initial_condition;
  record : string list option;
}

let default_options =
  { method_ = Trapezoidal; max_newton = 50; tolerance = 1e-9;
    ic = Operating_point; record = None }

exception Step_failed of { time : float; iterations : int }

type dataset = {
  times : float array;
  names : string array;
  data : float array array;
}

(* Dynamic-element state carried between time points. *)
type cap_state = { mutable v_prev : float; mutable i_prev : float }
type charge_state = {
  mutable q_prev : float;
  mutable vq_prev : float;
  mutable iq_prev : float;
}
type ind_state = { mutable il_prev : float; mutable vl_prev : float }

type state = {
  caps : (string, cap_state) Hashtbl.t;
  charges : (string, charge_state) Hashtbl.t;
  inds : (string, ind_state) Hashtbl.t;
}

let volt_of x slot = if slot < 0 then 0.0 else x.(slot)

(* Each MOSFET contributes four linear capacitances; key them by a
   suffixed element name. *)
let mos_caps (e : C.Element.t) =
  match e with
  | C.Element.Mosfet { name; drain; gate; source; bulk; model; mult; _ } ->
    let fm = float_of_int mult in
    [
      (name ^ ".cgs", gate, source, model.C.Mos_model.cgs *. fm);
      (name ^ ".cgd", gate, drain, model.C.Mos_model.cgd *. fm);
      (name ^ ".cdb", drain, bulk, model.C.Mos_model.cdb *. fm);
      (name ^ ".csb", source, bulk, model.C.Mos_model.csb *. fm);
    ]
  | C.Element.Resistor _ | C.Element.Capacitor _ | C.Element.Inductor _
  | C.Element.Vsource _ | C.Element.Isource _ | C.Element.Vccs _
  | C.Element.Vcvs _ | C.Element.Varactor _ ->
    []

let init_state mna x0 =
  let state =
    { caps = Hashtbl.create 32; charges = Hashtbl.create 8;
      inds = Hashtbl.create 8 }
  in
  let slot = Mna.node_slot mna in
  List.iter
    (fun e ->
      (match e with
       | C.Element.Capacitor { name; n1; n2; _ } ->
         Hashtbl.replace state.caps name
           { v_prev = volt_of x0 (slot n1) -. volt_of x0 (slot n2);
             i_prev = 0.0 }
       | C.Element.Varactor { name; n1; n2; model; mult; _ } ->
         let v = volt_of x0 (slot n1) -. volt_of x0 (slot n2) in
         Hashtbl.replace state.charges name
           { q_prev = C.Varactor_model.charge model v *. float_of_int mult;
             vq_prev = v; iq_prev = 0.0 }
       | C.Element.Inductor { name; n1; n2; _ } ->
         let b = Mna.branch_slot mna name in
         Hashtbl.replace state.inds name
           { il_prev = x0.(b);
             vl_prev = volt_of x0 (slot n1) -. volt_of x0 (slot n2) }
       | C.Element.Resistor _ | C.Element.Vsource _ | C.Element.Isource _
       | C.Element.Vccs _ | C.Element.Vcvs _ | C.Element.Mosfet _ ->
         ());
      List.iter
        (fun (key, na, nb, _c) ->
          Hashtbl.replace state.caps key
            { v_prev = volt_of x0 (slot na) -. volt_of x0 (slot nb);
              i_prev = 0.0 })
        (mos_caps e))
    (C.Netlist.elements (Mna.netlist mna));
  state

(* Companion coefficients for a linear capacitance. *)
let cap_companion options ~h (st : cap_state) c =
  match options.method_ with
  | Backward_euler ->
    let geq = c /. h in
    (geq, -.(geq *. st.v_prev))
  | Trapezoidal ->
    let geq = 2.0 *. c /. h in
    (geq, -.(geq *. st.v_prev) -. st.i_prev)

(* Assemble and Newton-solve one time point at time [t]. *)
let solve_point mna options state ~h ~t x_guess =
  let dim = Mna.dim mna in
  let slot = Mna.node_slot mna in
  let x = Array.copy x_guess in
  let gmin = 1e-12 in
  let rec newton k =
    if k >= options.max_newton then
      raise (Step_failed { time = t; iterations = k });
    let a = N.Mat.make dim dim in
    let rhs = Array.make dim 0.0 in
    let stamp i j g = if i >= 0 && j >= 0 then N.Mat.add_to a i j g in
    let inject i v = if i >= 0 then rhs.(i) <- rhs.(i) +. v in
    let stamp_conductance i j g =
      stamp i i g;
      stamp j j g;
      stamp i j (-.g);
      stamp j i (-.g)
    in
    let stamp_cap key n1 n2 c =
      let st = Hashtbl.find state.caps key in
      let geq, ieq = cap_companion options ~h st c in
      let i = slot n1 and j = slot n2 in
      stamp_conductance i j geq;
      inject i (-.ieq);
      inject j ieq
    in
    List.iter
      (fun e ->
        (match e with
         | C.Element.Resistor { n1; n2; ohms; _ } ->
           stamp_conductance (slot n1) (slot n2) (1.0 /. ohms)
         | C.Element.Capacitor { name; n1; n2; farads } ->
           stamp_cap name n1 n2 farads
         | C.Element.Varactor { name; n1; n2; model; mult; _ } ->
           let st = Hashtbl.find state.charges name in
           let fm = float_of_int mult in
           let i = slot n1 and j = slot n2 in
           let v = volt_of x i -. volt_of x j in
           let cv = C.Varactor_model.capacitance model v *. fm in
           let qv = C.Varactor_model.charge model v *. fm in
           let geq, ieq =
             match options.method_ with
             | Backward_euler ->
               let geq = cv /. h in
               (geq, ((qv -. st.q_prev) /. h) -. (geq *. v))
             | Trapezoidal ->
               let geq = 2.0 *. cv /. h in
               ( geq,
                 (2.0 *. (qv -. st.q_prev) /. h) -. st.iq_prev -. (geq *. v) )
           in
           stamp_conductance i j geq;
           inject i (-.ieq);
           inject j ieq
         | C.Element.Inductor { name; n1; n2; henries } ->
           let b = Mna.branch_slot mna name in
           let st = Hashtbl.find state.inds name in
           let i = slot n1 and j = slot n2 in
           stamp b i 1.0;
           stamp b j (-1.0);
           stamp i b 1.0;
           stamp j b (-1.0);
           (match options.method_ with
            | Backward_euler ->
              let z = henries /. h in
              N.Mat.add_to a b b (-.z);
              rhs.(b) <- rhs.(b) -. (z *. st.il_prev)
            | Trapezoidal ->
              let z = 2.0 *. henries /. h in
              N.Mat.add_to a b b (-.z);
              rhs.(b) <- rhs.(b) -. (z *. st.il_prev) -. st.vl_prev)
         | C.Element.Vsource { name; np; nn; wave; _ } ->
           let b = Mna.branch_slot mna name in
           let i = slot np and j = slot nn in
           stamp b i 1.0;
           stamp b j (-1.0);
           stamp i b 1.0;
           stamp j b (-1.0);
           rhs.(b) <- rhs.(b) +. C.Waveform.value wave t
         | C.Element.Isource { np; nn; wave; _ } ->
           let v = C.Waveform.value wave t in
           inject (slot np) (-.v);
           inject (slot nn) v
         | C.Element.Vccs { np; nn; cp; cn; gm; _ } ->
           let i = slot np and j = slot nn and k = slot cp and l = slot cn in
           stamp i k gm;
           stamp i l (-.gm);
           stamp j k (-.gm);
           stamp j l gm
         | C.Element.Vcvs { name; np; nn; cp; cn; gain } ->
           let b = Mna.branch_slot mna name in
           let i = slot np and j = slot nn and k = slot cp and l = slot cn in
           stamp b i 1.0;
           stamp b j (-1.0);
           stamp b k (-.gain);
           stamp b l gain;
           stamp i b 1.0;
           stamp j b (-1.0)
         | C.Element.Mosfet { drain; gate; source; bulk; model; w; l; mult; _ }
           ->
           let d = slot drain and g = slot gate and s = slot source
           and b = slot bulk in
           let lin =
             Device_eval.mos ~model ~w ~l ~mult ~vd:(volt_of x d)
               ~vg:(volt_of x g) ~vs:(volt_of x s) ~vb:(volt_of x b)
           in
           let linear_part =
             (lin.Device_eval.g_dd *. volt_of x d)
             +. (lin.Device_eval.g_dg *. volt_of x g)
             +. (lin.Device_eval.g_ds *. volt_of x s)
             +. (lin.Device_eval.g_db *. volt_of x b)
           in
           let ieq = lin.Device_eval.id -. linear_part in
           stamp d d lin.Device_eval.g_dd;
           stamp d g lin.Device_eval.g_dg;
           stamp d s lin.Device_eval.g_ds;
           stamp d b lin.Device_eval.g_db;
           stamp s d (-.lin.Device_eval.g_dd);
           stamp s g (-.lin.Device_eval.g_dg);
           stamp s s (-.lin.Device_eval.g_ds);
           stamp s b (-.lin.Device_eval.g_db);
           inject d (-.ieq);
           inject s ieq);
        List.iter
          (fun (key, na, nb, c) -> stamp_cap key na nb c)
          (mos_caps e))
      (C.Netlist.elements (Mna.netlist mna));
    for i = 0 to Mna.n_nodes mna - 1 do
      N.Mat.add_to a i i gmin
    done;
    let x_new =
      try N.Lu.solve_mat a rhs
      with N.Lu.Singular _ -> raise (Step_failed { time = t; iterations = k })
    in
    let max_delta = ref 0.0 in
    for i = 0 to dim - 1 do
      max_delta := Float.max !max_delta (Float.abs (x_new.(i) -. x.(i)));
      x.(i) <- x_new.(i)
    done;
    if !max_delta < options.tolerance then x else newton (k + 1)
  in
  newton 0

(* After accepting a step, refresh the dynamic-element states. *)
let update_state mna options state ~h x =
  let slot = Mna.node_slot mna in
  let update_cap key n1 n2 c =
    let st = Hashtbl.find state.caps key in
    let v = volt_of x (slot n1) -. volt_of x (slot n2) in
    let geq, ieq = cap_companion options ~h st c in
    st.i_prev <- (geq *. v) +. ieq;
    st.v_prev <- v
  in
  List.iter
    (fun e ->
      (match e with
       | C.Element.Capacitor { name; n1; n2; farads } ->
         update_cap name n1 n2 farads
       | C.Element.Varactor { name; n1; n2; model; mult; _ } ->
         let st = Hashtbl.find state.charges name in
         let fm = float_of_int mult in
         let v = volt_of x (slot n1) -. volt_of x (slot n2) in
         let q = C.Varactor_model.charge model v *. fm in
         let i =
           match options.method_ with
           | Backward_euler -> (q -. st.q_prev) /. h
           | Trapezoidal -> (2.0 *. (q -. st.q_prev) /. h) -. st.iq_prev
         in
         st.q_prev <- q;
         st.vq_prev <- v;
         st.iq_prev <- i
       | C.Element.Inductor { name; n1; n2; _ } ->
         let st = Hashtbl.find state.inds name in
         let b = Mna.branch_slot mna name in
         st.il_prev <- x.(b);
         st.vl_prev <- volt_of x (slot n1) -. volt_of x (slot n2)
       | C.Element.Resistor _ | C.Element.Vsource _ | C.Element.Isource _
       | C.Element.Vccs _ | C.Element.Vcvs _ | C.Element.Mosfet _ ->
         ());
      List.iter
        (fun (key, na, nb, c) -> update_cap key na nb c)
        (mos_caps e))
    (C.Netlist.elements (Mna.netlist mna))

let simulate ?(options = default_options) ~tstop ~dt netlist =
  if tstop <= 0.0 || dt <= 0.0 then
    invalid_arg "Tran.simulate: tstop and dt must be > 0";
  let mna = Mna.build netlist in
  let x0 =
    match options.ic with
    | Operating_point -> Dc.unknowns (Dc.solve_mna mna)
    | Uic pairs ->
      let x = Array.make (Mna.dim mna) 0.0 in
      List.iter
        (fun (node, v) ->
          let s = Mna.node_slot mna node in
          if s >= 0 then x.(s) <- v)
        pairs;
      x
  in
  let recorded =
    match options.record with
    | Some nodes -> Array.of_list nodes
    | None -> Mna.node_names mna
  in
  let n_steps = int_of_float (Float.round (tstop /. dt)) in
  let times = Array.init (n_steps + 1) (fun k -> float_of_int k *. dt) in
  let data = Array.map (fun _ -> Array.make (n_steps + 1) 0.0) recorded in
  let record k x =
    Array.iteri
      (fun r node ->
        let s = Mna.node_slot mna node in
        data.(r).(k) <- volt_of x s)
      recorded
  in
  let state = init_state mna x0 in
  record 0 x0;
  let x = ref x0 in
  for k = 1 to n_steps do
    let t = times.(k) in
    let x_next = solve_point mna options state ~h:dt ~t !x in
    update_state mna options state ~h:dt x_next;
    record k x_next;
    x := x_next
  done;
  { times; names = recorded; data }

let node d name =
  let rec find k =
    if k >= Array.length d.names then raise Not_found
    else if String.equal d.names.(k) name then d.data.(k)
    else find (k + 1)
  in
  find 0

let samples_after d ~t0 name =
  let w = node d name in
  let start = ref 0 in
  Array.iteri (fun k t -> if t < t0 then start := k + 1) d.times;
  Array.sub w !start (Array.length w - !start)

(* ------------------------------------------------------------------ *)
(* adaptive stepping: step-doubling local truncation error control *)

let clone_state st =
  let caps = Hashtbl.copy st.caps in
  Hashtbl.iter
    (fun k (v : cap_state) ->
      Hashtbl.replace caps k { v_prev = v.v_prev; i_prev = v.i_prev })
    st.caps;
  let charges = Hashtbl.copy st.charges in
  Hashtbl.iter
    (fun k (v : charge_state) ->
      Hashtbl.replace charges k
        { q_prev = v.q_prev; vq_prev = v.vq_prev; iq_prev = v.iq_prev })
    st.charges;
  let inds = Hashtbl.copy st.inds in
  Hashtbl.iter
    (fun k (v : ind_state) ->
      Hashtbl.replace inds k { il_prev = v.il_prev; vl_prev = v.vl_prev })
    st.inds;
  { caps; charges; inds }

let simulate_adaptive ?(options = default_options) ?dt_min ?dt_max
    ?(lte_tol = 1e-6) ~tstop ~dt netlist =
  if tstop <= 0.0 || dt <= 0.0 then
    invalid_arg "Tran.simulate_adaptive: tstop and dt must be > 0";
  let dt_min = match dt_min with Some v -> v | None -> dt /. 1024.0 in
  let dt_max = match dt_max with Some v -> v | None -> 16.0 *. dt in
  let mna = Mna.build netlist in
  let x0 =
    match options.ic with
    | Operating_point -> Dc.unknowns (Dc.solve_mna mna)
    | Uic pairs ->
      let x = Array.make (Mna.dim mna) 0.0 in
      List.iter
        (fun (node, v) ->
          let s = Mna.node_slot mna node in
          if s >= 0 then x.(s) <- v)
        pairs;
      x
  in
  let recorded =
    match options.record with
    | Some nodes -> Array.of_list nodes
    | None -> Mna.node_names mna
  in
  let times = ref [ 0.0 ] in
  let data = Array.map (fun _ -> ref []) recorded in
  let record x =
    Array.iteri
      (fun r node ->
        let s = Mna.node_slot mna node in
        data.(r) := volt_of x s :: !(data.(r)))
      recorded
  in
  record x0;
  let state = ref (init_state mna x0) in
  let x = ref x0 in
  let t = ref 0.0 and h = ref dt in
  while !t < tstop -. 1e-18 do
    let h_eff = Float.min !h (tstop -. !t) in
    (* one full step *)
    let st_full = clone_state !state in
    let x_full = solve_point mna options st_full ~h:h_eff ~t:(!t +. h_eff) !x in
    (* two half steps *)
    let st_half = clone_state !state in
    let h2 = h_eff /. 2.0 in
    let x_mid = solve_point mna options st_half ~h:h2 ~t:(!t +. h2) !x in
    update_state mna options st_half ~h:h2 x_mid;
    let x_end = solve_point mna options st_half ~h:h2 ~t:(!t +. h_eff) x_mid in
    let err = ref 0.0 in
    for i = 0 to Mna.n_nodes mna - 1 do
      err := Float.max !err (Float.abs (x_full.(i) -. x_end.(i)))
    done;
    if !err <= lte_tol then begin
      (* accept the more accurate half-step solution *)
      update_state mna options st_half ~h:h2 x_end;
      state := st_half;
      x := x_end;
      t := !t +. h_eff;
      times := !t :: !times;
      record x_end;
      if !err < lte_tol /. 4.0 then h := Float.min (2.0 *. h_eff) dt_max
    end
    else if h_eff <= dt_min *. 1.000001 then
      raise (Step_failed { time = !t; iterations = 0 })
    else h := Float.max (h_eff /. 2.0) dt_min
  done;
  {
    times = Array.of_list (List.rev !times);
    names = recorded;
    data = Array.map (fun cell -> Array.of_list (List.rev !cell)) data;
  }

let to_csv d =
  let b = Buffer.create 4096 in
  Buffer.add_string b "time";
  Array.iter
    (fun n ->
      Buffer.add_char b ',';
      Buffer.add_string b n)
    d.names;
  Buffer.add_char b '\n';
  Array.iteri
    (fun k t ->
      Buffer.add_string b (Printf.sprintf "%.12g" t);
      Array.iter
        (fun w -> Buffer.add_string b (Printf.sprintf ",%.9g" w.(k)))
        d.data;
      Buffer.add_char b '\n')
    d.times;
  Buffer.contents b
