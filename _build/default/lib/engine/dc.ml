module C = Sn_circuit
module N = Sn_numerics

let log_src = Logs.Src.create "sn.engine.dc" ~doc:"DC analysis"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  max_iterations : int;
  tolerance : float;
  gmin : float;
  damping : float;
  gmin_steps : int;
}

let default_options =
  { max_iterations = 200; tolerance = 1e-9; gmin = 1e-12; damping = 0.6;
    gmin_steps = 6 }

exception No_convergence of { iterations : int; residual : float }

type solution = { mna : Mna.t; x : float array }

let volt_of x slot = if slot < 0 then 0.0 else x.(slot)

(* One Newton iteration: assemble the linearized MNA system at
   candidate [x] and solve for the next iterate. *)
let assemble mna ~gmin x =
  let dim = Mna.dim mna in
  let a = N.Mat.make dim dim in
  let rhs = Array.make dim 0.0 in
  let stamp i j g =
    if i >= 0 && j >= 0 then N.Mat.add_to a i j g
  in
  let inject i v = if i >= 0 then rhs.(i) <- rhs.(i) +. v in
  let slot = Mna.node_slot mna in
  List.iter
    (fun e ->
      match e with
      | C.Element.Resistor { n1; n2; ohms; _ } ->
        let i = slot n1 and j = slot n2 in
        let g = 1.0 /. ohms in
        stamp i i g;
        stamp j j g;
        stamp i j (-.g);
        stamp j i (-.g)
      | C.Element.Capacitor _ | C.Element.Varactor _ -> ()
      | C.Element.Inductor { name; n1; n2; _ } ->
        (* DC short with explicit branch current *)
        let b = Mna.branch_slot mna name in
        let i = slot n1 and j = slot n2 in
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp i b 1.0;
        stamp j b (-1.0)
      | C.Element.Vsource { name; np; nn; wave; _ } ->
        let b = Mna.branch_slot mna name in
        let i = slot np and j = slot nn in
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp i b 1.0;
        stamp j b (-1.0);
        rhs.(b) <- rhs.(b) +. C.Waveform.dc_value wave
      | C.Element.Isource { np; nn; wave; _ } ->
        let v = C.Waveform.dc_value wave in
        inject (slot np) (-.v);
        inject (slot nn) v
      | C.Element.Vccs { np; nn; cp; cn; gm; _ } ->
        let i = slot np and j = slot nn and k = slot cp and l = slot cn in
        stamp i k gm;
        stamp i l (-.gm);
        stamp j k (-.gm);
        stamp j l gm
      | C.Element.Vcvs { name; np; nn; cp; cn; gain } ->
        let b = Mna.branch_slot mna name in
        let i = slot np and j = slot nn and k = slot cp and l = slot cn in
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp b k (-.gain);
        stamp b l gain;
        stamp i b 1.0;
        stamp j b (-1.0)
      | C.Element.Mosfet { drain; gate; source; bulk; model; w; l; mult; _ } ->
        let d = slot drain and g = slot gate and s = slot source
        and b = slot bulk in
        let lin =
          Device_eval.mos ~model ~w ~l ~mult ~vd:(volt_of x d)
            ~vg:(volt_of x g) ~vs:(volt_of x s) ~vb:(volt_of x b)
        in
        (* i_d(v) ~ id0 + sum g_t (v_t - v_t0); current leaves drain,
           enters source *)
        let linear_part =
          (lin.Device_eval.g_dd *. volt_of x d)
          +. (lin.Device_eval.g_dg *. volt_of x g)
          +. (lin.Device_eval.g_ds *. volt_of x s)
          +. (lin.Device_eval.g_db *. volt_of x b)
        in
        let ieq = lin.Device_eval.id -. linear_part in
        stamp d d lin.Device_eval.g_dd;
        stamp d g lin.Device_eval.g_dg;
        stamp d s lin.Device_eval.g_ds;
        stamp d b lin.Device_eval.g_db;
        stamp s d (-.lin.Device_eval.g_dd);
        stamp s g (-.lin.Device_eval.g_dg);
        stamp s s (-.lin.Device_eval.g_ds);
        stamp s b (-.lin.Device_eval.g_db);
        inject d (-.ieq);
        inject s ieq)
    (C.Netlist.elements (Mna.netlist mna));
  (* gmin on every node row keeps floating subnets solvable *)
  for i = 0 to Mna.n_nodes mna - 1 do
    N.Mat.add_to a i i gmin
  done;
  (a, rhs)

let newton_loop mna options ~gmin x0 =
  let dim = Mna.dim mna in
  let x = Array.copy x0 in
  let rec iterate k =
    if k >= options.max_iterations then
      raise (No_convergence { iterations = k; residual = Float.infinity })
    else begin
      let a, rhs = assemble mna ~gmin x in
      let x_new =
        try N.Lu.solve_mat a rhs
        with N.Lu.Singular _ ->
          raise (No_convergence { iterations = k; residual = Float.nan })
      in
      let max_delta = ref 0.0 in
      for i = 0 to dim - 1 do
        let delta = x_new.(i) -. x.(i) in
        let clamped =
          if i < Mna.n_nodes mna then
            Float.max (-.options.damping) (Float.min options.damping delta)
          else delta
        in
        max_delta := Float.max !max_delta (Float.abs delta);
        x.(i) <- x.(i) +. clamped
      done;
      if !max_delta < options.tolerance then x else iterate (k + 1)
    end
  in
  iterate 0

let solve_mna ?(options = default_options) mna =
  let dim = Mna.dim mna in
  let x0 = Array.make dim 0.0 in
  match newton_loop mna options ~gmin:options.gmin x0 with
  | x -> { mna; x }
  | exception No_convergence _ ->
    (* gmin continuation: solve with a heavy gmin, then relax *)
    Log.info (fun m -> m "direct Newton failed; starting gmin stepping");
    let rec continuation x = function
      | [] -> x
      | g :: rest ->
        let x = newton_loop mna options ~gmin:g x in
        continuation x rest
    in
    let steps =
      List.init options.gmin_steps (fun k ->
          1e-3 *. (10.0 ** (-.float_of_int k *. 9.0 /. float_of_int (options.gmin_steps - 1))))
      @ [ options.gmin ]
    in
    let x = continuation x0 steps in
    { mna; x }

let solve ?options netlist = solve_mna ?options (Mna.build netlist)

let mna s = s.mna

let voltage s node =
  let slot = Mna.node_slot s.mna node in
  volt_of s.x slot

let branch_current s name = s.x.(Mna.branch_slot s.mna name)

let mos_operating_point s name =
  match C.Netlist.find (Mna.netlist s.mna) name with
  | C.Element.Mosfet { drain; gate; source; bulk; model; w; l; mult; _ } ->
    let v n = voltage s n in
    let lin =
      Device_eval.mos ~model ~w ~l ~mult ~vd:(v drain) ~vg:(v gate)
        ~vs:(v source) ~vb:(v bulk)
    in
    lin.Device_eval.op
  | C.Element.Resistor _ | C.Element.Capacitor _ | C.Element.Inductor _
  | C.Element.Vsource _ | C.Element.Isource _ | C.Element.Vccs _
  | C.Element.Vcvs _ | C.Element.Varactor _ ->
    raise Not_found

let unknowns s = Array.copy s.x

let pp fmt s =
  let m = s.mna in
  Format.fprintf fmt "@[<v>operating point (%d nodes, %d branches)@,"
    (Mna.n_nodes m) (Mna.n_branches m);
  Array.iter
    (fun name ->
      Format.fprintf fmt "  v(%-20s) = %12.6g V@," name (voltage s name))
    (Mna.node_names m);
  List.iter
    (fun e ->
      match e with
      | C.Element.Vsource { name; _ } | C.Element.Vcvs { name; _ }
      | C.Element.Inductor { name; _ } ->
        Format.fprintf fmt "  i(%-20s) = %12.6g A@," name
          (branch_current s name)
      | C.Element.Mosfet { name; mult; _ } ->
        let op = mos_operating_point s name in
        let fm = float_of_int mult in
        Format.fprintf fmt
          "  %-8s %-11s id=%9.4g A gm=%9.4g S gds=%9.4g S gmb=%9.4g S@,"
          name
          (match op.C.Mos_model.region with
           | `Cutoff -> "cutoff"
           | `Triode -> "triode"
           | `Saturation -> "saturation")
          (fm *. op.C.Mos_model.id)
          (fm *. op.C.Mos_model.gm)
          (fm *. op.C.Mos_model.gds)
          (fm *. op.C.Mos_model.gmb)
      | C.Element.Resistor _ | C.Element.Capacitor _ | C.Element.Isource _
      | C.Element.Vccs _ | C.Element.Varactor _ ->
        ())
    (C.Netlist.elements (Mna.netlist m));
  Format.fprintf fmt "@]"
