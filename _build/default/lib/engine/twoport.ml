module C = Sn_circuit
module E = C.Element
module N = Sn_numerics

type sparams = {
  freq : float;
  s11 : Complex.t;
  s21 : Complex.t;
  s12 : Complex.t;
  s22 : Complex.t;
}

(* Voltage-wave convention with equal reference impedances: drive one
   side with an EMF of 2 V behind z0 (incident wave a = 1 at the port
   plane), terminate the other side in z0.  Then
   S_driven,driven = v_driven - 1 and S_other,driven = v_other. *)
let analyze ?(z0 = 50.0) nl ~port1 ~port2 ~freqs =
  if E.is_ground port1 || E.is_ground port2 then
    invalid_arg "Twoport.analyze: port cannot be ground";
  if not (C.Netlist.mem_node nl port1 && C.Netlist.mem_node nl port2) then
    invalid_arg "Twoport.analyze: unknown port node";
  let harness ~drive =
    let src name node mag =
      [ E.Vsource { name = name ^ "_src"; np = name ^ "_emf"; nn = "0";
                    wave = C.Waveform.dc 0.0; ac_mag = mag };
        E.Resistor { name = name ^ "_term"; n1 = name ^ "_emf"; n2 = node;
                     ohms = z0 } ]
    in
    C.Netlist.create
      (C.Netlist.elements nl
      @ src "p1" port1 (if drive = `One then 2.0 else 0.0)
      @ src "p2" port2 (if drive = `Two then 2.0 else 0.0))
  in
  let forward = harness ~drive:`One and reverse = harness ~drive:`Two in
  let dc_f = Dc.solve forward and dc_r = Dc.solve reverse in
  Array.to_list freqs
  |> List.map (fun freq ->
         let sf = Ac.solve ~dc:dc_f forward ~freq in
         let sr = Ac.solve ~dc:dc_r reverse ~freq in
         {
           freq;
           s11 = Complex.sub (Ac.voltage sf port1) Complex.one;
           s21 = Ac.voltage sf port2;
           s22 = Complex.sub (Ac.voltage sr port2) Complex.one;
           s12 = Ac.voltage sr port1;
         })

let isolation_db s = -.N.Units.db_of_ratio (Complex.norm s.s21)
