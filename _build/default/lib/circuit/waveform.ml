module U = Sn_numerics.Units

type t =
  | Dc of float
  | Sin of { offset : float; amplitude : float; freq : float; phase : float }
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list

let dc v = Dc v

let sin_wave ?(offset = 0.0) ?(phase = 0.0) ~amplitude ~freq () =
  if freq <= 0.0 then invalid_arg "Waveform.sin_wave: freq must be > 0";
  Sin { offset; amplitude; freq; phase }

let pulse ?(delay = 0.0) ?(rise = 1e-12) ?(fall = 1e-12) ~v1 ~v2 ~width ~period
    () =
  if width < 0.0 || period <= 0.0 then
    invalid_arg "Waveform.pulse: bad width/period";
  Pulse { v1; v2; delay; rise; fall; width; period }

let pwl points =
  if points = [] then invalid_arg "Waveform.pwl: empty point list";
  let rec strictly_increasing = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
      t1 < t2 && strictly_increasing rest
    | [ _ ] | [] -> true
  in
  if not (strictly_increasing points) then
    invalid_arg "Waveform.pwl: times must be strictly increasing";
  Pwl points

let pulse_value ~v1 ~v2 ~delay ~rise ~fall ~width ~period t =
  if t < delay then v1
  else begin
    let tau = Float.rem (t -. delay) period in
    if tau < rise then v1 +. ((v2 -. v1) *. tau /. rise)
    else if tau < rise +. width then v2
    else if tau < rise +. width +. fall then
      v2 +. ((v1 -. v2) *. (tau -. rise -. width) /. fall)
    else v1
  end

let pwl_value points t =
  let xs = Array.of_list (List.map fst points) in
  let ys = Array.of_list (List.map snd points) in
  Sn_numerics.Sweep.interp1 xs ys t

let value w t =
  match w with
  | Dc v -> v
  | Sin { offset; amplitude; freq; phase } ->
    offset +. (amplitude *. Stdlib.sin ((U.two_pi *. freq *. t) +. phase))
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    pulse_value ~v1 ~v2 ~delay ~rise ~fall ~width ~period t
  | Pwl points -> pwl_value points t

let dc_value = function
  | Dc v -> v
  | Sin { offset; _ } -> offset
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    pulse_value ~v1 ~v2 ~delay ~rise ~fall ~width ~period 0.0
  | Pwl points -> pwl_value points 0.0

let pp fmt = function
  | Dc v -> Format.fprintf fmt "DC %g" v
  | Sin { offset; amplitude; freq; phase } ->
    Format.fprintf fmt "SIN(%g %g %g %g)" offset amplitude freq phase
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    Format.fprintf fmt "PULSE(%g %g %g %g %g %g %g)" v1 v2 delay rise fall
      width period
  | Pwl points ->
    Format.fprintf fmt "PWL(";
    List.iter (fun (t, v) -> Format.fprintf fmt "%g %g " t v) points;
    Format.fprintf fmt ")"
