(** Time-domain stimulus waveforms of independent sources (the usual
    SPICE set). *)

type t =
  | Dc of float
  | Sin of { offset : float; amplitude : float; freq : float; phase : float }
      (** [phase] in radians; value is
          [offset + amplitude * sin (2 pi freq t + phase)] *)
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list
      (** piecewise-linear [(time, value)] points, strictly increasing
          times; constant extrapolation outside *)

val dc : float -> t

val sin_wave : ?offset:float -> ?phase:float -> amplitude:float -> freq:float -> unit -> t
(** Raises [Invalid_argument] when [freq <= 0]. *)

val pulse :
  ?delay:float -> ?rise:float -> ?fall:float -> v1:float -> v2:float ->
  width:float -> period:float -> unit -> t

val pwl : (float * float) list -> t
(** Raises [Invalid_argument] when times are not strictly increasing or
    the list is empty. *)

val value : t -> float -> float
(** [value w t] evaluates the waveform at time [t >= 0]. *)

val dc_value : t -> float
(** Value used by DC analysis ([t = 0] for time-varying shapes, except
    [Sin] which uses its offset). *)

val pp : Format.formatter -> t -> unit
