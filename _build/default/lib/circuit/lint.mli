(** Netlist sanity checks run before handing a merged impact model to
    the engine.  These catch the classic merge mistakes: a port name
    that did not line up with its circuit node (floating island), a
    dangling terminal, a loop of ideal voltage sources, or a value
    that was probably entered in the wrong unit. *)

type severity = Warning | Error

type diagnostic = {
  severity : severity;
  code : string;  (** stable identifier, e.g. "floating-node" *)
  message : string;
}

val check : Netlist.t -> diagnostic list
(** All diagnostics, errors first.  Checks:
    - ["dangling-node"] (warning): a node touched by exactly one
      element terminal;
    - ["no-ground-path"] (error): a connected component of the circuit
      graph with no DC path (R, L, V source) to ground;
    - ["vsource-loop"] (error): a cycle of ideal voltage sources /
      inductors (singular at DC);
    - ["extreme-value"] (warning): resistance outside [1 uohm, 100
      Gohm], capacitance outside [1 aF, 1 F], inductance outside
      [1 pH, 1 kH] — usually a unit-suffix slip. *)

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list

val pp : Format.formatter -> diagnostic -> unit
