type severity = Warning | Error

type diagnostic = { severity : severity; code : string; message : string }

let diag severity code fmt = Printf.ksprintf (fun message -> { severity; code; message }) fmt

(* ------------------------------------------------------------------ *)
(* dangling nodes *)

let dangling_nodes nl =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (fun n ->
          if not (Element.is_ground n) then
            Hashtbl.replace counts n
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
        (Element.nodes e))
    (Netlist.elements nl);
  Hashtbl.fold
    (fun node count acc ->
      if count = 1 then
        diag Warning "dangling-node"
          "node %s is connected to a single terminal" node
        :: acc
      else acc)
    counts []

(* ------------------------------------------------------------------ *)
(* DC path to ground: union-find over DC-conducting elements *)

let dc_path_diagnostics nl =
  let parent = Hashtbl.create 64 in
  let rec find n =
    match Hashtbl.find_opt parent n with
    | None | Some "" -> n
    | Some p ->
      let root = find p in
      Hashtbl.replace parent n root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let ground = "0" in
  let canonical n = if Element.is_ground n then ground else n in
  (* register all nodes *)
  List.iter
    (fun e ->
      List.iter
        (fun n ->
          let n = canonical n in
          if not (Hashtbl.mem parent n) then Hashtbl.replace parent n "")
        (Element.nodes e))
    (Netlist.elements nl);
  (* DC-conducting: R, L, V sources, VCVS outputs, MOS channels
     (source-drain), current sources conduct DC current but have
     infinite impedance, so they do not define a node's potential *)
  List.iter
    (fun e ->
      match e with
      | Element.Resistor { n1; n2; _ } | Element.Inductor { n1; n2; _ } ->
        union (canonical n1) (canonical n2)
      | Element.Vsource { np; nn; _ } | Element.Vcvs { np; nn; _ } ->
        union (canonical np) (canonical nn)
      | Element.Mosfet { drain; source; _ } ->
        union (canonical drain) (canonical source)
      | Element.Capacitor _ | Element.Isource _ | Element.Vccs _
      | Element.Varactor _ ->
        ())
    (Netlist.elements nl);
  let ground_root = find ground in
  let reported = Hashtbl.create 8 in
  Hashtbl.fold
    (fun node _ acc ->
      if node = "" then acc
      else begin
        let root = find node in
        if root <> ground_root && not (Hashtbl.mem reported root) then begin
          Hashtbl.replace reported root ();
          diag Error "no-ground-path"
            "the subcircuit containing node %s has no DC path to ground"
            node
          :: acc
        end
        else acc
      end)
    parent []

(* ------------------------------------------------------------------ *)
(* voltage-source / inductor loops: a cycle in the graph whose edges
   are ideal voltage-defined branches is singular *)

let vsource_loops nl =
  let edges =
    List.filter_map
      (fun e ->
        match e with
        | Element.Vsource { name; np; nn; _ } -> Some (name, np, nn)
        | Element.Inductor { name; n1; n2; _ } -> Some (name, n1, n2)
        | Element.Vcvs _ | Element.Resistor _ | Element.Capacitor _
        | Element.Isource _ | Element.Vccs _ | Element.Mosfet _
        | Element.Varactor _ ->
          None)
      (Netlist.elements nl)
  in
  (* union-find: adding an edge whose endpoints are already connected
     closes a loop *)
  let parent = Hashtbl.create 16 in
  let rec find n =
    match Hashtbl.find_opt parent n with
    | None -> n
    | Some p ->
      let root = find p in
      Hashtbl.replace parent n root;
      root
  in
  let canonical n = if Element.is_ground n then "0" else n in
  List.filter_map
    (fun (name, a, b) ->
      let ra = find (canonical a) and rb = find (canonical b) in
      if ra = rb then
        Some
          (diag Error "vsource-loop"
             "element %s closes a loop of ideal voltage sources / inductors"
             name)
      else begin
        Hashtbl.replace parent ra rb;
        None
      end)
    edges

(* ------------------------------------------------------------------ *)
(* suspicious values *)

let extreme_values nl =
  List.filter_map
    (fun e ->
      let out name kind v lo hi unit =
        if v < lo || v > hi then
          Some
            (diag Warning "extreme-value" "%s: %s %g %s is outside [%g, %g]"
               name kind v unit lo hi)
        else None
      in
      match e with
      | Element.Resistor { name; ohms; _ } ->
        out name "resistance" ohms 1e-6 1e11 "ohm"
      | Element.Capacitor { name; farads; _ } ->
        out name "capacitance" farads 1e-18 1.0 "F"
      | Element.Inductor { name; henries; _ } ->
        out name "inductance" henries 1e-12 1e3 "H"
      | Element.Vsource _ | Element.Isource _ | Element.Vccs _
      | Element.Vcvs _ | Element.Mosfet _ | Element.Varactor _ ->
        None)
    (Netlist.elements nl)

let check nl =
  let all =
    dc_path_diagnostics nl @ vsource_loops nl @ dangling_nodes nl
    @ extreme_values nl
  in
  let sev_order = function Error -> 0 | Warning -> 1 in
  List.stable_sort (fun a b -> compare (sev_order a.severity) (sev_order b.severity)) all

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)

let pp fmt d =
  Format.fprintf fmt "%s [%s]: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.code d.message
