(** Level-1 (Shichman-Hodges) MOSFET model with body effect.

    The body effect is the essential ingredient of this paper: the
    back-gate transconductance [gmb = gm * gamma / (2 sqrt (phi + vsb))]
    is the gain with which substrate noise at the bulk modulates the
    drain current. *)

type polarity = Nmos | Pmos

type t = {
  name : string;
  polarity : polarity;
  vt0 : float;  (** zero-bias threshold, V (positive for both types) *)
  kp : float;  (** transconductance parameter, A/V^2 *)
  gamma : float;  (** body-effect coefficient, sqrt(V) *)
  phi : float;  (** surface potential, V *)
  lambda : float;  (** channel-length modulation, 1/V *)
  cdb : float;  (** drain-bulk junction capacitance, F (per device) *)
  csb : float;  (** source-bulk junction capacitance, F (per device) *)
  cgs : float;  (** gate-source capacitance, F (per device) *)
  cgd : float;  (** gate-drain capacitance, F (per device) *)
}

val default_nmos : t
val default_pmos : t

type operating_point = {
  id : float;  (** drain current, A (flowing drain -> source for NMOS) *)
  gm : float;  (** dId/dVgs, S *)
  gds : float;  (** dId/dVds, S *)
  gmb : float;  (** dId/dVbs, S *)
  vth : float;  (** effective threshold with body bias, V *)
  region : [ `Cutoff | `Triode | `Saturation ];
}

val evaluate : t -> w:float -> l:float -> vgs:float -> vds:float -> vbs:float ->
  operating_point
(** [evaluate m ~w ~l ~vgs ~vds ~vbs] computes the DC operating point.
    Voltages are given in the device's own polarity convention (for a
    PMOS pass source-referred values as negative quantities, i.e. the
    caller flips signs; {!Netlist} handles this).  [w], [l] in meters.
    Raises [Invalid_argument] when [w <= 0] or [l <= 0]. *)
