type t = {
  name : string;
  cmin : float;
  cmax : float;
  v0 : float;
  vslope : float;
}

let default =
  { name = "varacc"; cmin = 250.0e-15; cmax = 750.0e-15; v0 = 0.45;
    vslope = 0.35 }

(* C(v) = cmin + (cmax - cmin) * (1 + tanh ((v - v0) / vs)) / 2 *)
let capacitance m v =
  m.cmin +. ((m.cmax -. m.cmin) *. 0.5 *. (1.0 +. tanh ((v -. m.v0) /. m.vslope)))

(* log (cosh x) computed overflow-safely *)
let log_cosh x =
  let ax = Float.abs x in
  if ax > 20.0 then ax -. log 2.0 else log (cosh x)

let charge m v =
  let half = 0.5 *. (m.cmax -. m.cmin) in
  let term x = m.vslope *. log_cosh ((x -. m.v0) /. m.vslope) in
  (m.cmin *. v) +. (half *. (v +. term v -. term 0.0))

let sensitivity m v =
  let s = 1.0 /. cosh ((v -. m.v0) /. m.vslope) in
  (m.cmax -. m.cmin) *. 0.5 *. s *. s /. m.vslope
