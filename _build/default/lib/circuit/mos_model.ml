type polarity = Nmos | Pmos

type t = {
  name : string;
  polarity : polarity;
  vt0 : float;
  kp : float;
  gamma : float;
  phi : float;
  lambda : float;
  cdb : float;
  csb : float;
  cgs : float;
  cgd : float;
}

(* Generic 0.18 um-flavoured cards; junction capacitances default to the
   paper's measured NMOS values. *)
let default_nmos =
  {
    name = "nch";
    polarity = Nmos;
    vt0 = 0.45;
    kp = 300.0e-6;
    gamma = 0.45;
    phi = 0.85;
    lambda = 0.06;
    cdb = 120.0e-15;
    csb = 200.0e-15;
    cgs = 150.0e-15;
    cgd = 40.0e-15;
  }

let default_pmos =
  {
    name = "pch";
    polarity = Pmos;
    vt0 = 0.45;
    kp = 80.0e-6;
    gamma = 0.4;
    phi = 0.85;
    lambda = 0.08;
    cdb = 150.0e-15;
    csb = 250.0e-15;
    cgs = 180.0e-15;
    cgd = 50.0e-15;
  }

type operating_point = {
  id : float;
  gm : float;
  gds : float;
  gmb : float;
  vth : float;
  region : [ `Cutoff | `Triode | `Saturation ];
}

(* Shichman-Hodges equations.  The body term is clamped so the square
   roots stay real when Newton wanders into forward body bias. *)
let evaluate m ~w ~l ~vgs ~vds ~vbs =
  if w <= 0.0 || l <= 0.0 then invalid_arg "Mos_model.evaluate: w, l must be > 0";
  let vsb = -.vbs in
  let phi_eff = Float.max (m.phi +. vsb) (0.05 *. m.phi) in
  let vth = m.vt0 +. (m.gamma *. (sqrt phi_eff -. sqrt m.phi)) in
  let beta = m.kp *. w /. l in
  let vov = vgs -. vth in
  if vov <= 0.0 then
    { id = 0.0; gm = 0.0; gds = 0.0; gmb = 0.0; vth; region = `Cutoff }
  else begin
    let clm = 1.0 +. (m.lambda *. vds) in
    let dvth_dvbs = -.(m.gamma /. (2.0 *. sqrt phi_eff)) in
    if vds < vov then begin
      (* triode *)
      let id = beta *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. clm in
      let gm = beta *. vds *. clm in
      let gds =
        (beta *. (vov -. vds) *. clm)
        +. (beta *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. m.lambda)
      in
      let gmb = -.(gm *. dvth_dvbs) in
      { id; gm; gds; gmb; vth; region = `Triode }
    end
    else begin
      (* saturation *)
      let id = 0.5 *. beta *. vov *. vov *. clm in
      let gm = beta *. vov *. clm in
      let gds = 0.5 *. beta *. vov *. vov *. m.lambda in
      let gmb = -.(gm *. dvth_dvbs) in
      { id; gm; gds; gmb; vth; region = `Saturation }
    end
  end
