type t = { title : string; elements : Element.t list }

exception Invalid of string list

let create ?(title = "untitled") elements =
  let errors = ref [] in
  let err m = errors := m :: !errors in
  (* duplicate names *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let n = Element.name e in
      if Hashtbl.mem seen n then err ("duplicate element name: " ^ n)
      else Hashtbl.add seen n ())
    elements;
  (* per-element checks *)
  List.iter
    (fun e ->
      match Element.validate e with Ok () -> () | Error m -> err m)
    elements;
  (* ground reference *)
  if elements <> []
     && not
          (List.exists
             (fun e -> List.exists Element.is_ground (Element.nodes e))
             elements)
  then err "netlist has no ground reference (node 0 or gnd)";
  (match !errors with [] -> () | es -> raise (Invalid (List.rev es)));
  { title; elements }

let title nl = nl.title
let elements nl = nl.elements
let element_count nl = List.length nl.elements

let nodes nl =
  List.concat_map Element.nodes nl.elements
  |> List.filter (fun n -> not (Element.is_ground n))
  |> List.sort_uniq String.compare

let find nl name =
  match
    List.find_opt (fun e -> String.equal (Element.name e) name) nl.elements
  with
  | Some e -> e
  | None -> raise Not_found

let mem_node nl n =
  Element.is_ground n
  || List.exists (fun e -> List.mem n (Element.nodes e)) nl.elements

let merge ?(title = "merged") parts =
  create ~title (List.concat_map elements parts)

let map f nl = create ~title:nl.title (List.map f nl.elements)
let filter f nl = create ~title:nl.title (List.filter f nl.elements)

let pp fmt nl =
  Format.fprintf fmt "@[<v>* %s@," nl.title;
  List.iter (fun e -> Format.fprintf fmt "%a@," Element.pp e) nl.elements;
  Format.fprintf fmt "@]"
