(** A circuit netlist: a titled collection of elements with validation
    and by-name merging (how the substrate macromodel, the interconnect
    parasitics and the device-level circuit are combined into one
    impact model). *)

type t

exception Invalid of string list
(** Raised by {!create} with all validation messages. *)

val create : ?title:string -> Element.t list -> t
(** [create ?title elements] validates and builds a netlist.
    Raises {!Invalid} on duplicate element names, per-element
    validation failures, or a netlist with no ground reference. *)

val title : t -> string
val elements : t -> Element.t list
val element_count : t -> int

val nodes : t -> string list
(** Sorted distinct non-ground node names. *)

val find : t -> string -> Element.t
(** Find an element by name.  Raises [Not_found]. *)

val mem_node : t -> string -> bool

val merge : ?title:string -> t list -> t
(** [merge parts] concatenates element lists (re-validating); node
    names shared across parts become electrical connections. *)

val map : (Element.t -> Element.t) -> t -> t
(** Rewrite elements (revalidates). *)

val filter : (Element.t -> bool) -> t -> t
(** Drop elements (revalidates; useful for ablations). *)

val pp : Format.formatter -> t -> unit
