lib/circuit/netlist.ml: Element Format Hashtbl List String
