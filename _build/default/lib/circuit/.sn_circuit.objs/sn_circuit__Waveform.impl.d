lib/circuit/waveform.ml: Array Float Format List Sn_numerics Stdlib
