lib/circuit/varactor_model.ml: Float
