lib/circuit/element.mli: Format Mos_model Varactor_model Waveform
