lib/circuit/spice.ml: Buffer Char Element Fun Hashtbl In_channel List Mos_model Netlist Option Printf String Varactor_model Waveform
