lib/circuit/varactor_model.mli:
