lib/circuit/element.ml: Float Format Mos_model Result String Varactor_model Waveform
