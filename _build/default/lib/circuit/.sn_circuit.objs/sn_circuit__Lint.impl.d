lib/circuit/lint.ml: Element Format Hashtbl List Netlist Option Printf
