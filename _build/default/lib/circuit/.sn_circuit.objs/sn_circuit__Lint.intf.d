lib/circuit/lint.mli: Format Netlist
