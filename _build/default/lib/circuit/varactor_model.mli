(** Accumulation-mode NMOS varactor: a smooth, monotone C(V)
    characteristic between [cmin] and [cmax], the tuning element of the
    paper's LC tank.  The charge is available in closed form so the
    transient engine can use charge-conserving integration. *)

type t = {
  name : string;
  cmin : float;  (** F *)
  cmax : float;  (** F *)
  v0 : float;  (** transition center, V *)
  vslope : float;  (** transition width, V *)
}

val default : t
(** A 3 GHz-tank sized varactor: 250 fF to 750 fF swinging around
    0.45 V with a 0.35 V transition. *)

val capacitance : t -> float -> float
(** [capacitance m v] is [C(v)] (F) where [v] is the gate-to-bulk
    voltage.  Monotone increasing in [v]. *)

val charge : t -> float -> float
(** [charge m v] is the exact antiderivative of {!capacitance} with
    [charge m 0 = 0]. *)

val sensitivity : t -> float -> float
(** [sensitivity m v] is [dC/dV] (F/V) at [v]. *)
