type params = {
  carrier_freq : float;
  loaded_q : float;
  signal_power : float;
  noise_factor : float;
  flicker_corner : float;
  temperature : float;
}

let default_vco =
  {
    carrier_freq = 3.0e9;
    loaded_q = 12.0;
    (* 5 mA core from 1.8 V, ~0.6 V amplitude in a ~150 ohm tank *)
    signal_power = 1.2e-3;
    noise_factor = 4.0;
    flicker_corner = 100.0e3;
    temperature = 300.0;
  }

let boltzmann = 1.380649e-23

(* Leeson:
   L(dm) = 10 log10 (2 F k T / Ps * (1 + (f0 / (2 Q dm))^2)
                      * (1 + fc / dm)) *)
let dbc_per_hz p offset =
  if offset <= 0.0 then invalid_arg "Phase_noise.dbc_per_hz: offset must be > 0";
  let thermal = 2.0 *. p.noise_factor *. boltzmann *. p.temperature /. p.signal_power in
  let resonator = p.carrier_freq /. (2.0 *. p.loaded_q *. offset) in
  let shape = 1.0 +. (resonator *. resonator) in
  let flicker = 1.0 +. (p.flicker_corner /. offset) in
  10.0 *. log10 (thermal *. shape *. flicker)

let spur_equivalent_dbc ~beta =
  if beta <= 0.0 then -300.0 else 20.0 *. log10 (beta /. 2.0)
