(** LC-tank model of the VCO: oscillation frequency as a function of
    the DC voltages on the sensitive nodes, and the frequency
    sensitivities K_i = d f_c / d v_i obtained by numeric
    differentiation.

    The voltage conventions follow the paper's impact mechanism: the
    tuning voltage is referenced to the {e off-chip} ground, while the
    tank common mode rides on the {e on-chip} local ground/supply.  A
    bounce of the local ground therefore modulates the varactor bias
    one-for-one — that is why the ground interconnect is the dominant
    FM entry. *)

type junction = {
  c0 : float;  (** zero-bias junction capacitance, F *)
  phi_b : float;  (** built-in potential, V *)
  grading : float;  (** grading coefficient m (0.3-0.5) *)
}

val junction_capacitance : junction -> float -> float
(** [junction_capacitance j v_reverse] is
    [c0 / (1 + v_reverse / phi_b) ** grading], clamped for forward
    bias below [-phi_b / 2]. *)

type bias = {
  v_tune : float;  (** tuning pad voltage, off-chip referenced, V *)
  v_gnd : float;  (** on-chip local ground, V (0 when quiet) *)
  v_tank_cm : float;  (** tank common mode above local ground, V *)
  v_backgate : float;  (** NMOS bulk potential, V *)
  v_nwell : float;  (** PMOS / varactor n-well potential, V *)
}

val quiet_bias : v_tune:float -> bias
(** Bias with all noise entries at rest and the default common mode
    (tank at mid-supply). *)

type t = {
  inductance : float;  (** total differential tank inductance, H *)
  c_fixed : float;  (** bias-independent tank capacitance, F *)
  varactor : Sn_circuit.Varactor_model.t;
  varactor_mult : int;
  cj_nmos : junction;  (** switching-pair NMOS drain junction at tank *)
  cj_pmos : junction;  (** switching-pair PMOS drain junction at tank *)
}

val default_3ghz : t
(** Tank sized so the paper's VCO card holds: ~3 GHz at mid tuning
    range with the default varactor. *)

type entry =
  | Ground  (** on-chip ground interconnect (resistive coupling) *)
  | Backgate  (** NMOS back-gates (resistive) *)
  | Pmos_well  (** PMOS n-well (capacitive through the well junction) *)
  | Varactor_well  (** accumulation varactor n-well (capacitive) *)
  | Inductor_node  (** direct capacitive injection onto the tank *)
  | Supply  (** on-chip power interconnect *)

val entry_name : entry -> string

val capacitance : t -> bias -> float
(** Total single-ended tank capacitance at the bias point, F. *)

val frequency : t -> bias -> float
(** [frequency tank bias] is [1 / (2 pi sqrt (L C))]. *)

val apply_entry : bias -> entry -> float -> bias
(** [apply_entry bias entry dv] shifts the bias the way a small voltage
    [dv] arriving at [entry] physically does (a ground bounce lifts
    local ground {e and} the tank common mode riding on it, etc.). *)

val sensitivity : t -> bias -> entry -> float
(** [sensitivity tank bias entry] is K_i = d f_c / d v_i (Hz/V),
    central finite difference. *)

val kvco : t -> v_tune:float -> float
(** Conventional tuning gain d f_c / d v_tune (Hz/V, negative for this
    topology at rising tune voltage if C grows). *)
