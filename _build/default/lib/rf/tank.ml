module U = Sn_numerics.Units
module V = Sn_circuit.Varactor_model

type junction = { c0 : float; phi_b : float; grading : float }

(* Reverse bias increases depletion width and shrinks C; clamp the
   forward-bias singularity the usual SPICE way. *)
let junction_capacitance j v_reverse =
  let v = Float.max v_reverse (-.(j.phi_b /. 2.0)) in
  j.c0 /. ((1.0 +. (v /. j.phi_b)) ** j.grading)

type bias = {
  v_tune : float;
  v_gnd : float;
  v_tank_cm : float;
  v_backgate : float;
  v_nwell : float;
}

let quiet_bias ~v_tune =
  { v_tune; v_gnd = 0.0; v_tank_cm = 0.9; v_backgate = 0.0; v_nwell = 1.8 }

type t = {
  inductance : float;
  c_fixed : float;
  varactor : V.t;
  varactor_mult : int;
  cj_nmos : junction;
  cj_pmos : junction;
}

let default_3ghz =
  {
    inductance = 2.0e-9;
    c_fixed = 550.0e-15;
    varactor = V.default;
    varactor_mult = 1;
    cj_nmos = { c0 = 120.0e-15; phi_b = 0.8; grading = 0.4 };
    cj_pmos = { c0 = 150.0e-15; phi_b = 0.8; grading = 0.4 };
  }

type entry =
  | Ground
  | Backgate
  | Pmos_well
  | Varactor_well
  | Inductor_node
  | Supply

let entry_name = function
  | Ground -> "ground interconnect"
  | Backgate -> "nmos back-gate"
  | Pmos_well -> "pmos n-well"
  | Varactor_well -> "varactor n-well"
  | Inductor_node -> "inductor"
  | Supply -> "supply interconnect"

let capacitance t bias =
  let v_tank = bias.v_gnd +. bias.v_tank_cm in
  (* varactor: gate on the tank, well driven by the (externally
     referenced) tuning voltage *)
  let c_var =
    V.capacitance t.varactor (v_tank -. bias.v_tune)
    *. float_of_int t.varactor_mult
  in
  let c_jn = junction_capacitance t.cj_nmos (v_tank -. bias.v_backgate) in
  let c_jp = junction_capacitance t.cj_pmos (bias.v_nwell -. v_tank) in
  t.c_fixed +. c_var +. c_jn +. c_jp

let frequency t bias =
  1.0 /. (U.two_pi *. sqrt (t.inductance *. capacitance t bias))

let apply_entry bias entry dv =
  match entry with
  | Ground -> { bias with v_gnd = bias.v_gnd +. dv }
  | Backgate -> { bias with v_backgate = bias.v_backgate +. dv }
  | Pmos_well -> { bias with v_nwell = bias.v_nwell +. dv }
  | Varactor_well -> { bias with v_tune = bias.v_tune +. dv }
  | Inductor_node -> { bias with v_tank_cm = bias.v_tank_cm +. dv }
  | Supply -> { bias with v_nwell = bias.v_nwell +. dv }

let sensitivity t bias entry =
  let dv = 1.0e-4 in
  let fp = frequency t (apply_entry bias entry dv) in
  let fm = frequency t (apply_entry bias entry (-.dv)) in
  (fp -. fm) /. (2.0 *. dv)

let kvco t ~v_tune =
  let bias = quiet_bias ~v_tune in
  let dv = 1.0e-4 in
  let fp = frequency t { bias with v_tune = v_tune +. dv } in
  let fm = frequency t { bias with v_tune = v_tune -. dv } in
  (fp -. fm) /. (2.0 *. dv)
