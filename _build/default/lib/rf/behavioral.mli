(** Behavioral oscillator synthesis — paper equation (1) in the time
    domain.  Generates the modulated carrier so a DFT "measurement" of
    the spurs can cross-check the closed-form spur model (and render
    the Figure 7 spectrum). *)

type tone = {
  f_noise : float;
  beta : Complex.t;  (** FM modulation index *)
  m_am : Complex.t;  (** AM modulation index *)
}

val synthesize :
  carrier_freq:float -> amplitude:float -> tones:tone list -> fs:float ->
  n:int -> float array
(** [synthesize ~carrier_freq ~amplitude ~tones ~fs ~n] samples

    {v v(t) = Ac (1 + sum Re (m e^{j w_m t}))
              cos (w_c t + sum Re (beta e^{j w_m t})) v}

    at rate [fs].  Raises [Invalid_argument] when [fs <= 2 * fc] or
    [n <= 0]. *)

val measured_sideband_dbm :
  float array -> fs:float -> carrier_freq:float -> f_noise:float ->
  [ `Lower | `Upper ] -> float
(** Goertzel measurement of one spur, in dBm (50 ohm), on a synthesized
    or simulated waveform. *)

val carrier_dbm : float array -> fs:float -> carrier_freq:float -> float
