lib/rf/phase_noise.mli:
