lib/rf/aggressor.mli: Complex Impact
