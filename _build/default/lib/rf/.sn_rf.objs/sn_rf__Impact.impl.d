lib/rf/impact.ml: Array Complex List Sn_numerics
