lib/rf/behavioral.mli: Complex
