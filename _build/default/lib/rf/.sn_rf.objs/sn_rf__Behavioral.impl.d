lib/rf/behavioral.ml: Array Complex List Sn_numerics
