lib/rf/tank.mli: Sn_circuit
