lib/rf/aggressor.ml: Float Impact List Sn_numerics
