lib/rf/impact.mli: Complex
