lib/rf/tank.ml: Float Sn_circuit Sn_numerics
