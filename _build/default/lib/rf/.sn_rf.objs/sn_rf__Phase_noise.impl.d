lib/rf/phase_noise.ml:
