module U = Sn_numerics.Units
module Goertzel = Sn_numerics.Goertzel

type tone = { f_noise : float; beta : Complex.t; m_am : Complex.t }

let synthesize ~carrier_freq ~amplitude ~tones ~fs ~n =
  if n <= 0 then invalid_arg "Behavioral.synthesize: n must be > 0";
  if fs <= 2.0 *. carrier_freq then
    invalid_arg "Behavioral.synthesize: fs must exceed 2 fc";
  let wc = U.two_pi *. carrier_freq in
  Array.init n (fun k ->
      let t = float_of_int k /. fs in
      let am = ref 0.0 and pm = ref 0.0 in
      List.iter
        (fun { f_noise; beta; m_am } ->
          let wm = U.two_pi *. f_noise *. t in
          let cwm = cos wm and swm = sin wm in
          (* Re (z e^{j wm t}) = re z cos - im z sin *)
          am := !am +. ((m_am.Complex.re *. cwm) -. (m_am.Complex.im *. swm));
          pm := !pm +. ((beta.Complex.re *. cwm) -. (beta.Complex.im *. swm)))
        tones;
      amplitude *. (1.0 +. !am) *. cos ((wc *. t) +. !pm))

let measured_sideband_dbm samples ~fs ~carrier_freq ~f_noise side =
  let f =
    match side with
    | `Lower -> carrier_freq -. f_noise
    | `Upper -> carrier_freq +. f_noise
  in
  let a = Goertzel.amplitude_windowed ~fs ~f samples in
  if a <= 0.0 then -300.0 else U.dbm_of_vpeak a

let carrier_dbm samples ~fs ~carrier_freq =
  let a = Goertzel.amplitude_windowed ~fs ~f:carrier_freq samples in
  if a <= 0.0 then -300.0 else U.dbm_of_vpeak a
