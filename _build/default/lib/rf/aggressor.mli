(** Digital switching-noise aggressor model — the paper's closing
    point: combining the impact methodology with a generation model
    (their ref. [10]) "would permit mixed-signal chip verification".

    A synchronous digital block injects supply/substrate current at
    its clock frequency and harmonics.  This module models the
    aggressor as the line spectrum of a periodic triangular current
    pulse train and converts it, through the same substrate transfer
    H(f) and oscillator model, into the predicted spur {e comb} at the
    VCO output. *)

type t = {
  clock_freq : float;  (** Hz *)
  peak_current : float;  (** A: peak of each switching current spike *)
  pulse_width : float;  (** s: triangular spike base width *)
  harmonics : int;  (** number of clock harmonics to evaluate *)
  injection_resistance : float;
      (** ohm: effective resistance from the digital ground network
          into the substrate injection point *)
}

val default : t
(** A 50 MHz, 20 mA-peak, 1 ns-wide aggressor, 8 harmonics. *)

val harmonic_amplitude : t -> int -> float
(** [harmonic_amplitude a k] is the amplitude (A, peak) of the [k]-th
    clock harmonic of the periodic triangular pulse train
    ([k >= 1]; raises [Invalid_argument] otherwise). *)

val injected_voltage : t -> int -> float
(** [injected_voltage a k] is the equivalent voltage amplitude the
    harmonic develops at the injection point
    ([harmonic_amplitude x injection_resistance]). *)

type comb_line = {
  harmonic : int;
  f_noise : float;  (** k * f_clock *)
  injected_dbm : float;  (** tone power at the injection point, 50 ohm *)
  upper_dbm : float;  (** spur at f_c + k f_clock *)
  lower_dbm : float;
}

val spur_comb :
  t -> osc:Impact.oscillator -> h:(float -> string -> Complex.t) -> comb_line list
(** [spur_comb a ~osc ~h] is the predicted spur comb: one line per
    clock harmonic, evaluated with the oscillator's impact model and
    the substrate transfer [h] (same accessor as
    [Snoise.Flow.vco_transfers]). *)

val total_spur_power_dbm : comb_line list -> float
(** Power sum of all upper+lower comb lines (dBm) — a single figure of
    merit for the aggressor's impact. *)
