(** Leeson phase-noise estimate — used to check the VCO design card
    (-100 dBc/Hz at 100 kHz offset for the paper's 3 GHz, 5 mA VCO). *)

type params = {
  carrier_freq : float;  (** Hz *)
  loaded_q : float;
  signal_power : float;  (** W dissipated in the tank *)
  noise_factor : float;  (** Leeson F (excess noise), typically 2-10 *)
  flicker_corner : float;  (** 1/f^3 corner, Hz *)
  temperature : float;  (** K *)
}

val default_vco : params
(** The paper's VCO card: 3 GHz, loaded Q ~ 12, 5 mA core. *)

val dbc_per_hz : params -> float -> float
(** [dbc_per_hz p offset] is the Leeson single-sideband phase noise at
    [offset] Hz from the carrier.  Raises [Invalid_argument] when
    [offset <= 0]. *)

val spur_equivalent_dbc : beta:float -> float
(** [spur_equivalent_dbc ~beta] is the dBc level of a discrete FM spur
    with modulation index [beta] ([20 log10 (beta / 2)]) — relates the
    substrate-noise spurs to the phase-noise plot. *)
