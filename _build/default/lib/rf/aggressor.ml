module U = Sn_numerics.Units

type t = {
  clock_freq : float;
  peak_current : float;
  pulse_width : float;
  harmonics : int;
  injection_resistance : float;
}

let default =
  {
    clock_freq = 50.0e6;
    peak_current = 20.0e-3;
    pulse_width = 1.0e-9;
    harmonics = 8;
    injection_resistance = 5.0;
  }

let sinc x = if Float.abs x < 1e-12 then 1.0 else sin x /. x

(* Fourier line amplitudes of a periodic triangular pulse train:
   a_k = 2 * area / T * sinc^2 (pi k f w / 2). *)
let harmonic_amplitude a k =
  if k < 1 then invalid_arg "Aggressor.harmonic_amplitude: k must be >= 1";
  let area = a.peak_current *. a.pulse_width /. 2.0 in
  let arg = U.pi *. float_of_int k *. a.clock_freq *. a.pulse_width /. 2.0 in
  let s = sinc arg in
  2.0 *. area *. a.clock_freq *. s *. s

let injected_voltage a k = harmonic_amplitude a k *. a.injection_resistance

type comb_line = {
  harmonic : int;
  f_noise : float;
  injected_dbm : float;
  upper_dbm : float;
  lower_dbm : float;
}

let spur_comb a ~osc ~h =
  List.init a.harmonics (fun i ->
      let k = i + 1 in
      let f_noise = float_of_int k *. a.clock_freq in
      let a_noise = injected_voltage a k in
      let spur = Impact.spur osc ~h:(h f_noise) ~a_noise ~f_noise in
      {
        harmonic = k;
        f_noise;
        injected_dbm =
          (if a_noise > 0.0 then U.dbm_of_vpeak a_noise else -300.0);
        upper_dbm = spur.Impact.upper_dbm;
        lower_dbm = spur.Impact.lower_dbm;
      })

let total_spur_power_dbm lines =
  let watts =
    List.fold_left
      (fun acc l ->
        acc +. U.watts_of_dbm l.upper_dbm +. U.watts_of_dbm l.lower_dbm)
      0.0 lines
  in
  if watts > 0.0 then U.dbm_of_watts watts else -300.0
