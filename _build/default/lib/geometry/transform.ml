type orientation = R0 | R90 | R180 | R270 | MX | MY | MXR90 | MYR90

type t = { orientation : orientation; offset : Point.t }

let identity = { orientation = R0; offset = Point.zero }
let translate offset = { orientation = R0; offset }
let make orientation offset = { orientation; offset }

let rotate o (p : Point.t) =
  let { Point.x; y } = p in
  match o with
  | R0 -> p
  | R90 -> Point.v (-.y) x
  | R180 -> Point.v (-.x) (-.y)
  | R270 -> Point.v y (-.x)
  | MX -> Point.v x (-.y)
  | MY -> Point.v (-.x) y
  | MXR90 -> Point.v y x
  | MYR90 -> Point.v (-.y) (-.x)

let apply_point t p = Point.add (rotate t.orientation p) t.offset

let apply_rect t r =
  let open Rect in
  let a = apply_point t (Point.v r.x0 r.y0) in
  let b = apply_point t (Point.v r.x1 r.y1) in
  of_corners a b

let apply_path t p =
  Path.make ~width:(Path.width p) (List.map (apply_point t) (Path.points p))

(* Composition of the dihedral group, identified by the images of the
   basis vectors.  The eight orientations cover every combination, so
   the lookup is total. *)
let compose_orientation outer inner =
  let ex = rotate outer (rotate inner (Point.v 1.0 0.0)) in
  let ey = rotate outer (rotate inner (Point.v 0.0 1.0)) in
  match (ex.Point.x, ex.Point.y, ey.Point.x, ey.Point.y) with
  | 1.0, 0.0, 0.0, 1.0 -> R0
  | 0.0, 1.0, -1.0, 0.0 -> R90
  | -1.0, 0.0, 0.0, -1.0 -> R180
  | 0.0, -1.0, 1.0, 0.0 -> R270
  | 1.0, 0.0, 0.0, -1.0 -> MX
  | -1.0, 0.0, 0.0, 1.0 -> MY
  | 0.0, 1.0, 1.0, 0.0 -> MXR90
  | 0.0, -1.0, -1.0, 0.0 -> MYR90
  | _ -> assert false

let compose outer inner =
  {
    orientation = compose_orientation outer.orientation inner.orientation;
    offset = apply_point outer inner.offset;
  }

let orientation_name = function
  | R0 -> "R0"
  | R90 -> "R90"
  | R180 -> "R180"
  | R270 -> "R270"
  | MX -> "MX"
  | MY -> "MY"
  | MXR90 -> "MXR90"
  | MYR90 -> "MYR90"

let orientation_of_name = function
  | "R0" -> Some R0
  | "R90" -> Some R90
  | "R180" -> Some R180
  | "R270" -> Some R270
  | "MX" -> Some MX
  | "MY" -> Some MY
  | "MXR90" -> Some MXR90
  | "MYR90" -> Some MYR90
  | _ -> None

let pp fmt t =
  Format.fprintf fmt "%s@%a" (orientation_name t.orientation) Point.pp t.offset
