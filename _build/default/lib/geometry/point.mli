(** 2-D points.  Layout coordinates are in micrometers throughout the
    layout / extraction layers; the extractors convert to SI. *)

type t = { x : float; y : float }

val v : float -> float -> t
(** [v x y] is the point [(x, y)]. *)

val zero : t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val distance : t -> t -> float
(** [distance a b] is the Euclidean distance. *)

val manhattan : t -> t -> float
(** [manhattan a b] is [|dx| + |dy|]. *)

val midpoint : t -> t -> t

val equal : ?tol:float -> t -> t -> bool
(** [equal ?tol a b] compares within absolute tolerance [tol]
    (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
