(** Axis-aligned rectangles (normalized so [x0 <= x1], [y0 <= y1]). *)

type t = private { x0 : float; y0 : float; x1 : float; y1 : float }

val make : float -> float -> float -> float -> t
(** [make x0 y0 x1 y1] normalizes corner order. *)

val of_corners : Point.t -> Point.t -> t

val of_center : Point.t -> width:float -> height:float -> t
(** Raises [Invalid_argument] on negative [width] or [height]. *)

val width : t -> float
val height : t -> float
val area : t -> float
val perimeter : t -> float
val center : t -> Point.t

val contains_point : t -> Point.t -> bool
(** Closed-boundary containment. *)

val intersects : t -> t -> bool
(** [intersects a b] is [true] when the closed rectangles overlap
    (touching edges count). *)

val intersection : t -> t -> t option
(** [intersection a b] is the overlap rectangle, [None] when disjoint. *)

val union_bbox : t -> t -> t
(** [union_bbox a b] is the smallest rectangle containing both. *)

val expand : float -> t -> t
(** [expand m r] grows [r] by margin [m] on all four sides
    (negative [m] shrinks; raises [Invalid_argument] if the result
    would be inverted). *)

val translate : Point.t -> t -> t

val bbox_of_points : Point.t list -> t
(** Raises [Invalid_argument] on the empty list. *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
