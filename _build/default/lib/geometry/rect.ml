type t = { x0 : float; y0 : float; x1 : float; y1 : float }

let make xa ya xb yb =
  { x0 = Float.min xa xb; y0 = Float.min ya yb;
    x1 = Float.max xa xb; y1 = Float.max ya yb }

let of_corners (a : Point.t) (b : Point.t) = make a.Point.x a.Point.y b.Point.x b.Point.y

let of_center (c : Point.t) ~width ~height =
  if width < 0.0 || height < 0.0 then
    invalid_arg "Rect.of_center: negative dimension";
  make
    (c.Point.x -. (width /. 2.0))
    (c.Point.y -. (height /. 2.0))
    (c.Point.x +. (width /. 2.0))
    (c.Point.y +. (height /. 2.0))

let width r = r.x1 -. r.x0
let height r = r.y1 -. r.y0
let area r = width r *. height r
let perimeter r = 2.0 *. (width r +. height r)
let center r = Point.v ((r.x0 +. r.x1) /. 2.0) ((r.y0 +. r.y1) /. 2.0)

let contains_point r (p : Point.t) =
  p.Point.x >= r.x0 && p.Point.x <= r.x1 && p.Point.y >= r.y0 && p.Point.y <= r.y1

let intersects a b =
  a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

let intersection a b =
  if intersects a b then
    Some
      { x0 = Float.max a.x0 b.x0; y0 = Float.max a.y0 b.y0;
        x1 = Float.min a.x1 b.x1; y1 = Float.min a.y1 b.y1 }
  else None

let union_bbox a b =
  { x0 = Float.min a.x0 b.x0; y0 = Float.min a.y0 b.y0;
    x1 = Float.max a.x1 b.x1; y1 = Float.max a.y1 b.y1 }

let expand m r =
  let r' = { x0 = r.x0 -. m; y0 = r.y0 -. m; x1 = r.x1 +. m; y1 = r.y1 +. m } in
  if r'.x0 > r'.x1 || r'.y0 > r'.y1 then
    invalid_arg "Rect.expand: negative margin inverts rectangle";
  r'

let translate (d : Point.t) r =
  { x0 = r.x0 +. d.Point.x; y0 = r.y0 +. d.Point.y;
    x1 = r.x1 +. d.Point.x; y1 = r.y1 +. d.Point.y }

let bbox_of_points = function
  | [] -> invalid_arg "Rect.bbox_of_points: empty list"
  | p :: rest ->
    List.fold_left
      (fun acc (q : Point.t) ->
        { x0 = Float.min acc.x0 q.Point.x; y0 = Float.min acc.y0 q.Point.y;
          x1 = Float.max acc.x1 q.Point.x; y1 = Float.max acc.y1 q.Point.y })
      { x0 = p.Point.x; y0 = p.Point.y; x1 = p.Point.x; y1 = p.Point.y }
      rest

let equal ?(tol = 1e-9) a b =
  Float.abs (a.x0 -. b.x0) <= tol
  && Float.abs (a.y0 -. b.y0) <= tol
  && Float.abs (a.x1 -. b.x1) <= tol
  && Float.abs (a.y1 -. b.y1) <= tol

let pp fmt r = Format.fprintf fmt "[%g,%g .. %g,%g]" r.x0 r.y0 r.x1 r.y1
