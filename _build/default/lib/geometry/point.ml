type t = { x : float; y : float }

let v x y = { x; y }
let zero = { x = 0.0; y = 0.0 }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale k p = { x = k *. p.x; y = k *. p.y }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)
let midpoint a b = { x = 0.5 *. (a.x +. b.x); y = 0.5 *. (a.y +. b.y) }

let equal ?(tol = 1e-9) a b =
  Float.abs (a.x -. b.x) <= tol && Float.abs (a.y -. b.y) <= tol

let pp fmt { x; y } = Format.fprintf fmt "(%g, %g)" x y
