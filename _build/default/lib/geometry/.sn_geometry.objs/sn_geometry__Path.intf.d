lib/geometry/path.mli: Format Point Rect
