lib/geometry/transform.ml: Format List Path Point Rect
