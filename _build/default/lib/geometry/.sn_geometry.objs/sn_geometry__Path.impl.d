lib/geometry/path.ml: Format List Point Rect
