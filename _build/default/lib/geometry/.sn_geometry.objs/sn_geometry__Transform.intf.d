lib/geometry/transform.mli: Format Path Point Rect
