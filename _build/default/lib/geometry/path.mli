(** Wire paths: a centerline polyline with a width, the layout shape
    the interconnect extractor turns into resistor chains. *)

type t = private { points : Point.t list; width : float }

val make : width:float -> Point.t list -> t
(** [make ~width points] builds a path.  Raises [Invalid_argument] when
    [width <= 0] or fewer than 2 points are given. *)

val points : t -> Point.t list
val width : t -> float

val length : t -> float
(** [length p] is the total centerline length. *)

val squares : t -> float
(** [squares p] is [length / width] — the number of sheet-resistance
    squares the path represents. *)

val segments : t -> (Point.t * Point.t) list
(** [segments p] is the list of consecutive point pairs. *)

val bbox : t -> Rect.t
(** [bbox p] is the bounding box of the drawn metal, i.e. the
    centerline bbox expanded by half the width. *)

val translate : Point.t -> t -> t

val scale_width : float -> t -> t
(** [scale_width k p] multiplies the width by [k] (the Fig. 10
    "enlarge the ground lines" operation).
    Raises [Invalid_argument] when [k <= 0]. *)

val pp : Format.formatter -> t -> unit
