(** Manhattan placement transforms (the dihedral group of the square
    plus translation) applied to cell instances. *)

type orientation =
  | R0
  | R90
  | R180
  | R270
  | MX     (** mirror about the x axis *)
  | MY     (** mirror about the y axis *)
  | MXR90  (** mirror about x, then rotate 90 *)
  | MYR90  (** mirror about y, then rotate 90 *)

type t = { orientation : orientation; offset : Point.t }

val identity : t
val translate : Point.t -> t
val make : orientation -> Point.t -> t

val apply_point : t -> Point.t -> Point.t
val apply_rect : t -> Rect.t -> Rect.t
val apply_path : t -> Path.t -> Path.t

val compose : t -> t -> t
(** [compose outer inner] applies [inner] first, then [outer]:
    [apply_point (compose o i) p = apply_point o (apply_point i p)]. *)

val orientation_name : orientation -> string
val orientation_of_name : string -> orientation option

val pp : Format.formatter -> t -> unit
