type t = { points : Point.t list; width : float }

let make ~width points =
  if width <= 0.0 then invalid_arg "Path.make: width must be > 0";
  if List.length points < 2 then invalid_arg "Path.make: need at least 2 points";
  { points; width }

let points p = p.points
let width p = p.width

let rec pairwise = function
  | a :: (b :: _ as rest) -> (a, b) :: pairwise rest
  | [ _ ] | [] -> []

let segments p = pairwise p.points

let length p =
  List.fold_left (fun acc (a, b) -> acc +. Point.distance a b) 0.0 (segments p)

let squares p = length p /. p.width

let bbox p = Rect.expand (p.width /. 2.0) (Rect.bbox_of_points p.points)

let translate d p = { p with points = List.map (Point.add d) p.points }

let scale_width k p =
  if k <= 0.0 then invalid_arg "Path.scale_width: factor must be > 0";
  { p with width = k *. p.width }

let pp fmt p =
  Format.fprintf fmt "path(w=%g)[%a]" p.width
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " -> ") Point.pp)
    p.points
