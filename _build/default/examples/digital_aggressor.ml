(* Extension experiment (the paper's closing remark): combine the
   impact methodology with a digital switching-noise generation model
   to predict the full spur comb a synchronous digital block imprints
   on the VCO — "mixed-signal chip verification and sign-off".

   Run with:  dune exec examples/digital_aggressor.exe *)

module Flow = Snoise.Flow
module Aggressor = Sn_rf.Aggressor
module U = Sn_numerics.Units

let () =
  Format.printf "== Digital aggressor -> VCO spur comb ==@.@.";
  let aggressor = Aggressor.default in
  Format.printf
    "Aggressor: %s clock, %.0f mA peak switching current, %.1f ns spikes@.@."
    (U.eng ~unit:"Hz" aggressor.Aggressor.clock_freq)
    (1.0e3 *. aggressor.Aggressor.peak_current)
    (1.0e9 *. aggressor.Aggressor.pulse_width);

  let flow = Flow.build_vco Sn_testchip.Vco_chip.default ~vtune:0.0 in
  let freqs =
    Array.init aggressor.Aggressor.harmonics (fun i ->
        float_of_int (i + 1) *. aggressor.Aggressor.clock_freq)
  in
  let h = Flow.vco_transfers flow ~f_noise:freqs in
  let osc = Flow.vco_oscillator flow in
  let comb = Aggressor.spur_comb aggressor ~osc ~h in

  Format.printf "  %3s %12s %14s %12s %12s@." "k" "k*fclk" "injected[dBm]"
    "upper[dBm]" "lower[dBm]";
  List.iter
    (fun (l : Aggressor.comb_line) ->
      Format.printf "  %3d %12s %14.1f %12.1f %12.1f@." l.Aggressor.harmonic
        (U.eng ~unit:"Hz" l.Aggressor.f_noise)
        l.Aggressor.injected_dbm l.Aggressor.upper_dbm l.Aggressor.lower_dbm)
    comb;
  Format.printf "@.total comb power: %.1f dBm@."
    (Aggressor.total_spur_power_dbm comb);
  Format.printf
    "@.The fundamental dominates.  Note how slowly the comb decays:@.\
     the resistive-FM ground path falls as 1/f, but above a few tens@.\
     of MHz the capacitive entries (wells, inductor), whose transfer@.\
     rises with f, take over - the crossover the paper predicts when@.\
     discussing coupling mechanisms in section 5.@."
