(* Design exploration beyond the paper's Figure 10: sweep the ground
   interconnect width scaling factor and watch the spur fall toward
   the residual floor set by the fixed resistances (probe, strap) —
   quantifying how much a designer can buy with metal.

   Run with:  dune exec examples/ground_wire_sizing.exe *)

module Flow = Snoise.Flow
module Impact = Sn_rf.Impact

let f_noise = 10.0e6

let spur_at factor =
  let options =
    match factor with
    | 1.0 -> Flow.default_options
    | f -> { Flow.default_options with Flow.widen_ground = Some f }
  in
  let flow = Flow.build_vco ~options Sn_testchip.Vco_chip.default ~vtune:0.0 in
  let h = Flow.vco_transfers flow ~f_noise:[| f_noise |] in
  let s = Flow.vco_spur flow ~h ~p_noise_dbm:(-5.0) ~f_noise in
  (Flow.vco_ground_wire_resistance flow, s.Impact.upper_dbm)

let () =
  Format.printf "== Ground wire sizing (paper Fig. 10, extended) ==@.@.";
  Format.printf "Spur at fc + 10 MHz, -5 dBm substrate tone, Vtune = 0:@.@.";
  Format.printf "  %8s %12s %12s %14s@." "width x" "wire R" "spur [dBm]"
    "vs normal [dB]";
  let r1, base = spur_at 1.0 in
  Format.printf "  %8.1f %9.2f ohm %12.1f %14s@." 1.0 r1 base "-";
  List.iter
    (fun factor ->
      let r, dbm = spur_at factor in
      Format.printf "  %8.1f %9.2f ohm %12.1f %14.2f@." factor r dbm
        (base -. dbm))
    [ 1.5; 2.0; 3.0; 5.0 ];
  Format.printf
    "@.Doubling the width buys ~4.5 dB (the paper's prediction); the@.\
     returns diminish as the fixed probe and strap resistances start@.\
     to dominate the analog ground bounce.@."
