(* Render the Figure-7 output spectrum for several substrate tone
   frequencies: the spur pair walks outward with f_noise while its
   amplitude falls at -20 dB/decade.

   Run with:  dune exec examples/spectrum_sweep.exe *)

let () =
  Format.printf "== VCO output spectra vs substrate tone frequency ==@.@.";
  List.iter
    (fun f_noise ->
      let r = Snoise.Experiments.fig7 ~f_noise () in
      Snoise.Report.fig7 Format.std_formatter r;
      Format.printf "@.")
    [ 5.0e6; 10.0e6; 15.0e6 ];
  Format.printf
    "The spurs move out with the tone and shrink as 1/f_noise - the@.\
     narrowband-FM signature of resistive substrate coupling into the@.\
     analog ground interconnect.@."
