(* Quickstart: extract a substrate macromodel for a tiny hand-built
   layout, look at the coupling resistances, and watch a grounded
   guard ring attenuate the aggressor-to-victim transfer.

   Run with:  dune exec examples/quickstart.exe *)

module G = Sn_geometry
module L = Sn_layout
module Port = Sn_substrate.Port
module Extractor = Sn_substrate.Extractor
module Macromodel = Sn_substrate.Macromodel

let um = Printf.sprintf "%.0f um"

(* A 200 x 200 um die with a digital aggressor contact on the left, an
   analog victim sensing region on the right, and an optional guard
   ring between them. *)
let layout ~with_ring =
  let shapes =
    [
      L.Shape.rect ~layer:L.Layer.Substrate_contact ~net:"aggressor"
        (G.Rect.make 20.0 90.0 40.0 110.0);
      L.Shape.rect
        ~layer:(L.Layer.Backgate_probe "victim")
        ~net:"-"
        (G.Rect.make 160.0 90.0 180.0 110.0);
    ]
  in
  let ring =
    if with_ring then
      [ L.Shape.rect ~layer:L.Layer.Substrate_contact ~net:"ring"
          (G.Rect.make 95.0 40.0 105.0 160.0) ]
    else []
  in
  L.Layout.create ~top:"quickstart"
    [ L.Cell.make ~name:"quickstart" (shapes @ ring) ]

let () =
  Format.printf "== snoise quickstart ==@.@.";
  Format.printf "Die: 200 x 200 %s, %s technology@.@." "um"
    Sn_tech.Tech.imec018.Sn_tech.Tech.name;

  (* 1. extract without the guard ring *)
  let bare = Extractor.extract_from_layout ~tech:Sn_tech.Tech.imec018
      (layout ~with_ring:false) in
  Format.printf "Without guard ring:@.";
  Format.printf "  %a@." Macromodel.pp bare;
  let d_bare =
    Macromodel.divider bare ~inject:"aggressor" ~sense:"backgate:victim"
      ~grounded:[]
  in
  Format.printf "  aggressor -> victim transfer (victim floating): %.4f@.@."
    d_bare;

  (* 2. extract with a grounded guard ring in between *)
  let ringed = Extractor.extract_from_layout ~tech:Sn_tech.Tech.imec018
      (layout ~with_ring:true) in
  let d_ring =
    Macromodel.divider ringed ~inject:"aggressor" ~sense:"backgate:victim"
      ~grounded:[ "ring" ]
  in
  Format.printf "With a grounded guard ring between them:@.";
  Format.printf "  transfer: %.4f  (%.1f dB better)@.@." d_ring
    (20.0 *. log10 (d_bare /. d_ring));

  (* 3. the same numbers as an equivalent resistor network *)
  Format.printf "Equivalent port-to-port resistors (with ring):@.";
  List.iter
    (fun (a, b, r) ->
      Format.printf "  %-18s <-> %-18s %s@." a b
        (Sn_numerics.Units.eng ~unit:"Ohm" r))
    (Macromodel.to_resistors ringed);
  Format.printf "@.Guard ring placement: 10 %s wide strip at x = %s.@."
    "um" (um 100.0)
