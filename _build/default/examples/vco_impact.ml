(* Full VCO impact analysis: run the complete methodology on the 3 GHz
   LC-tank VCO and break the spur at fc +- fn down into the
   contributions of the separate devices (paper Figs. 8 and 9).

   Run with:  dune exec examples/vco_impact.exe *)

module Flow = Snoise.Flow
module Impact = Sn_rf.Impact
module U = Sn_numerics.Units

let () =
  Format.printf "== VCO substrate-noise impact (paper Figs. 8 / 9) ==@.@.";
  Format.printf "Extracting substrate + interconnect, solving the VCO...@.";
  let flow = Flow.build_vco Sn_testchip.Vco_chip.default ~vtune:0.0 in
  Format.printf "  carrier: %s, output amplitude %.2f V@."
    (U.eng ~unit:"Hz" (Flow.vco_carrier_freq flow))
    (Flow.vco_amplitude flow);
  Format.printf "  analog ground wire: %.1f ohm@.@."
    (Flow.vco_ground_wire_resistance flow);

  let osc = Flow.vco_oscillator flow in
  Format.printf "Oscillator sensitivities K_i = dfc/dv_i:@.";
  List.iter
    (fun (e : Impact.entry) ->
      Format.printf "  %-22s %10.1f MHz/V@." e.Impact.label
        (e.Impact.k_hz_per_v /. 1.0e6))
    osc.Impact.entries;

  let freqs = Sn_numerics.Sweep.logspace 1.0e6 15.0e6 5 in
  let h = Flow.vco_transfers flow ~f_noise:freqs in
  Format.printf "@.Spur at fc +- fn for a -5 dBm substrate tone:@.";
  Format.printf "  %10s %12s | per-device contributions [dBm]@." "f_noise"
    "total[dBm]";
  Array.iter
    (fun fn ->
      let s = Flow.vco_spur flow ~h ~p_noise_dbm:(-5.0) ~f_noise:fn in
      Format.printf "  %10s %12.1f |" (U.eng ~unit:"Hz" fn) s.Impact.upper_dbm;
      List.iter
        (fun (c : Impact.contribution) ->
          Format.printf " %.1f" c.Impact.spur_dbm)
        s.Impact.contributions;
      Format.printf "@.")
    freqs;
  (match osc.Impact.entries with
   | first :: _ ->
     Format.printf "  (columns:";
     List.iter
       (fun (e : Impact.entry) -> Format.printf " %s;" e.Impact.label)
       osc.Impact.entries;
     Format.printf ")@.";
     ignore first
   | [] -> ());

  Format.printf
    "@.The ground interconnect dominates and falls at -20 dB/decade@.\
     (resistive coupling followed by FM); the inductor contribution@.\
     is flat (capacitive coupling followed by FM) - exactly the@.\
     signatures of paper section 5.@."
