examples/process_corners.ml: Format List Snoise
