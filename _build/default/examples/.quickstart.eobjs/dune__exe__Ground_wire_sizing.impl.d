examples/ground_wire_sizing.ml: Format List Sn_rf Sn_testchip Snoise
