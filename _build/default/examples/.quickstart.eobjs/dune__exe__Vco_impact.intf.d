examples/vco_impact.mli:
