examples/vco_impact.ml: Array Format List Sn_numerics Sn_rf Sn_testchip Snoise
