examples/guard_ring_study.mli:
