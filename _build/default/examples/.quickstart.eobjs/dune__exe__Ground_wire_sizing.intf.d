examples/ground_wire_sizing.mli:
