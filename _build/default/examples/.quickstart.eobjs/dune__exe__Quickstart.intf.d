examples/quickstart.mli:
