examples/epi_vs_high_ohmic.ml: Format List Sn_geometry Sn_substrate Sn_tech
