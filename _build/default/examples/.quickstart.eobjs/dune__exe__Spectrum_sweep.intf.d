examples/spectrum_sweep.mli:
