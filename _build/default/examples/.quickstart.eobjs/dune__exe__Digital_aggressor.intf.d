examples/digital_aggressor.mli:
