examples/process_corners.mli:
