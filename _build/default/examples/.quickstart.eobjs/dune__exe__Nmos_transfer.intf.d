examples/nmos_transfer.mli:
