examples/quickstart.ml: Format List Printf Sn_geometry Sn_layout Sn_numerics Sn_substrate Sn_tech
