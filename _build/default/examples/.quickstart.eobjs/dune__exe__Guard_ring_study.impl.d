examples/guard_ring_study.ml: Format List Printf Sn_geometry Sn_layout Sn_substrate Sn_tech Sn_testchip
