examples/nmos_transfer.ml: Format List Sn_testchip Snoise
