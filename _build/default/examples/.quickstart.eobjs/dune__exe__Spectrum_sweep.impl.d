examples/spectrum_sweep.ml: Format List Snoise
