examples/oscillator_transient.mli:
