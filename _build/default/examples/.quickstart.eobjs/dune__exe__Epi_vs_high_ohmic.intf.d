examples/epi_vs_high_ohmic.mli:
