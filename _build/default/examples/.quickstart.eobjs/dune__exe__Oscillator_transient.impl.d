examples/oscillator_transient.ml: Float Format List Sn_numerics Sn_testchip
