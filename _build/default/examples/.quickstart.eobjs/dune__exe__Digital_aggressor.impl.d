examples/digital_aggressor.ml: Array Format List Sn_numerics Sn_rf Sn_testchip Snoise
