(* The paper's section-3 validation experiment: inject a tone into the
   substrate next to the four-transistor NMOS measurement structure
   and compare the simulated transfer to the back-gate hand
   calculation (divider x gmb / gds).

   Run with:  dune exec examples/nmos_transfer.exe *)

module Flow = Snoise.Flow
module NS = Sn_testchip.Nmos_structure

let () =
  Format.printf "== NMOS measurement structure (paper Fig. 3) ==@.@.";
  let params = NS.default in
  Format.printf "Building the structure and extracting models...@.";
  let flow = Flow.build_nmos params in

  Format.printf "  ground wire (MOS GR -> pad): %.2f ohm@."
    (Flow.nmos_ground_wire_resistance flow);
  let divider = Flow.nmos_divider flow in
  Format.printf "  SUB -> back-gate division: 1/%.0f   (paper: 1/652)@.@."
    (1.0 /. divider);

  Format.printf "Bias sweep (vgs = vds, tone at 5 MHz):@.";
  Format.printf "  %6s %10s %10s %10s %10s@." "vgs" "gmb[mS]" "gds[mS]"
    "sim[dB]" "hand[dB]";
  List.iter
    (fun (vgs, vds) ->
      let p = Flow.nmos_transfer flow ~vgs ~vds ~freq:5.0e6 in
      Format.printf "  %6.2f %10.1f %10.1f %10.1f %10.1f@." vgs
        (1.0e3 *. p.Flow.gmb_total)
        (1.0e3 *. p.Flow.gds_total)
        p.Flow.transfer_sim_db p.Flow.transfer_hand_db)
    (NS.bias_sweep params);

  (* the ablation that motivates the whole paper: re-run the flow the
     "classical" way, with ideal (zero-resistance) interconnect *)
  Format.printf "@.Classical-flow ablation (interconnect R ignored):@.";
  let flow0 =
    Flow.build_nmos
      ~options:
        { Flow.default_options with Flow.interconnect_resistance = false }
      params
  in
  let d0 = Flow.nmos_divider flow0 in
  Format.printf
    "  division collapses to 1/%.0f - the wire resistance raises the@."
    (1.0 /. d0);
  Format.printf
    "  coupled noise by %.1fx (paper: almost a factor of two).@."
    (divider /. d0)
