(* Transistor-level cross-check of the narrowband FM spur model: run a
   frequency-scaled replica of the VCO through the full nonlinear
   transient engine, inject a tone on the tuning line, and compare the
   measured sidebands with the paper's equation (2).

   Run with:  dune exec examples/oscillator_transient.exe *)

module SO = Sn_testchip.Scaled_oscillator
module N = Sn_numerics

let () =
  Format.printf "== Transistor-level oscillator vs the FM spur model ==@.@.";
  let p = SO.default in
  let vtune = 0.9 in
  Format.printf "Starting the cross-coupled oscillator (transient)...@.";
  let r = SO.simulate p ~vtune in
  Format.printf "  tank estimate : %s@."
    (N.Units.eng ~unit:"Hz" (SO.natural_frequency p ~vtune));
  Format.printf "  transient     : %s, %.2f V differential swing@."
    (N.Units.eng ~unit:"Hz" r.SO.frequency)
    r.SO.amplitude;
  Format.printf "  period jitter : %.3f%%@.@."
    (100.0
    *. N.Zero_crossing.period_jitter ~fs:r.SO.sample_rate r.SO.samples
    *. r.SO.frequency);

  Format.printf "Measuring the tuning gain from two transients...@.";
  let k = SO.kvco_transient ~cycles:120 p ~vtune ~dv:0.2 in
  Format.printf "  K_vco = %.0f kHz/V@.@." (k /. 1.0e3);

  Format.printf "Injecting a 50 mV tone on the tuning line:@.";
  Format.printf "  %12s %18s %18s@." "f_noise" "eq.(2) [dBc]" "transient [dBc]";
  List.iter
    (fun divisor ->
      let f_noise = r.SO.frequency /. divisor in
      let a_tone = 0.05 in
      let run = SO.simulate ~tune_tone:(a_tone, f_noise) p ~vtune in
      let carrier =
        N.Goertzel.amplitude_windowed ~fs:run.SO.sample_rate
          ~f:run.SO.frequency run.SO.samples
      in
      let spur =
        N.Goertzel.amplitude_windowed ~fs:run.SO.sample_rate
          ~f:(run.SO.frequency +. f_noise)
          run.SO.samples
      in
      let beta = Float.abs k *. a_tone /. f_noise in
      Format.printf "  %12s %18.1f %18.1f@."
        (N.Units.eng ~unit:"Hz" f_noise)
        (20.0 *. log10 (beta /. 2.0))
        (20.0 *. log10 (spur /. carrier)))
    [ 8.0; 16.0; 32.0 ];
  Format.printf
    "@.The full nonlinear transient lands within the paper's 2 dB of@.\
     the narrowband-FM prediction - the impact model and the circuit@.\
     engine agree end to end.@."
