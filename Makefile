.PHONY: all build test check bench doc clean

all: build

build:
	dune build

test:
	dune runtest

# tier-1 gate: what CI runs
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# API reference (requires odoc: `opam install odoc`);
# output lands in _build/default/_doc/_html/
doc:
	dune build @doc

clean:
	dune clean
