.PHONY: all build test check lint bench bench-extract bench-serve bench-cancel bench-reduce bench-preflight server-smoke server-chaos doc clean

all: build

build:
	dune build

test:
	dune runtest

# tier-1 gate: what CI runs
check:
	dune build && dune runtest

# structural ERC over every shipped deck (rule catalogue: docs/LINT.md);
# pathological test decks are expected to fail and are skipped here
lint: build
	@status=0; \
	for deck in examples/decks/*.sp test/decks/clean_rc.sp \
	    test/decks/isource_open.sp; do \
	  echo "== snoise lint $$deck"; \
	  dune exec bin/snoise_cli.exe -- lint "$$deck" || status=1; \
	done; \
	exit $$status

bench:
	dune exec bench/main.exe

# extraction-at-scale bench only (MG-CG vs direct, tiled cache, BENCH_5.json);
# `make bench-extract SMALL=1` runs the reduced CI-sized ladder
bench-extract:
	dune exec bench/main.exe -- part6 $(if $(SMALL),small)

# resident-service bench only (cold vs warm requests/s, batching
# byte-identity, BENCH_6.json); `make bench-serve SMALL=1` runs the
# reduced CI-sized workload
bench-serve:
	dune exec bench/main.exe -- part7 $(if $(SMALL),small)

# cooperative-cancellation bench only (armed-vs-disarmed AC sweep,
# deadline-fires probe, BENCH_7.json); `make bench-cancel SMALL=1` runs
# the reduced CI-sized ladder
bench-cancel:
	dune exec bench/main.exe -- part8 $(if $(SMALL),small)

# PRIMA model-order-reduction bench only (exact vs rank-k AC sweep,
# matched-accuracy + jobs byte-identity gates, BENCH_8.json);
# `make bench-reduce SMALL=1` runs the reduced CI-sized mesh
bench-reduce:
	dune exec bench/main.exe -- part9 $(if $(SMALL),small)

# numerical pre-flight overhead bench only (static verify vs cold
# compile on the shipped example decks, <= 5% gate, BENCH_9.json);
# `make bench-preflight SMALL=1` trims the repetition counts
bench-preflight:
	dune exec bench/main.exe -- part10 $(if $(SMALL),small)

# end-to-end smoke of `snoise serve` over a real socket (docs/SERVER.md
# session, scripted): cold/warm requests, stats counters, structured
# lint error, health probe, protocol shutdown
server-smoke: build
	sh test/server_smoke.sh

# wire-level chaos harness: each SNOISE_FAULT server injection point
# (kill / delay / garble / drop), asserting a re-issued request is
# identical to an unfaulted baseline and a supervised worker restarts
# warm from its journal
server-chaos: build
	sh test/server_chaos.sh

# API reference (requires odoc: `opam install odoc`);
# output lands in _build/default/_doc/_html/
doc:
	dune build @doc

clean:
	dune clean
