.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# tier-1 gate: what CI runs
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
