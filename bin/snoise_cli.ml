(* Command-line driver for the substrate-noise impact flow.

   snoise fig3 | fig7 | fig8 | fig9 | fig10 | card | runtime | all
   snoise extract <layout.txt>     substrate macromodel of a layout file
   snoise netlist [--vtune V]      dump the merged VCO impact model *)

open Cmdliner

let setup_logs
    (verbose, jobs, no_lint, cache_dir, no_cache, reduce_order, reduce_tol) =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning);
  Option.iter Snoise.Sweep.set_jobs jobs;
  if no_lint then Snoise.Flow.disable_lint ();
  (match (reduce_order, reduce_tol) with
  | None, None -> ()
  | Some _, Some _ ->
    Format.eprintf
      "snoise: --reduce-order and --reduce-tol are mutually exclusive@.";
    exit 1
  | Some k, None ->
    Snoise.Flow.set_default_reduction
      (Some
         {
           Snoise.Reduced_model.default_config with
           Snoise.Reduced_model.order = Snoise.Reduced_model.Fixed k;
         })
  | None, Some e ->
    Snoise.Flow.set_default_reduction
      (Some
         {
           Snoise.Reduced_model.default_config with
           Snoise.Reduced_model.order = Snoise.Reduced_model.Auto e;
         }));
  if no_cache then Sn_substrate.Cache.set_default_dir None
  else
    Option.iter
      (fun d -> Sn_substrate.Cache.set_default_dir (Some d))
      cache_dir

let verbose_flag =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log extraction progress.")

let jobs_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the experiment sweeps (default: \
           $(b,SNOISE_JOBS) or the machine's recommended domain count; \
           1 runs the exact sequential path).  Output is identical for \
           every width.")

let no_lint_flag =
  Arg.(
    value & flag
    & info [ "no-lint" ]
        ~doc:
          "Skip the netlist lint gate.  By default a merged model with \
           lint errors (floating island, voltage-source loop, ...) \
           refuses to simulate with exit code 2.")

let cache_dir_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist reduced substrate tile macromodels under $(docv) \
           (content-addressed: entries are keyed by what they were \
           computed from, so stale hits are impossible).  Default: \
           $(b,SNOISE_CACHE_DIR) when set, otherwise no caching.")

let no_cache_flag =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the substrate macromodel cache, overriding \
           $(b,--cache-dir) and $(b,SNOISE_CACHE_DIR).")

let reduce_order_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "reduce-order" ] ~docv:"K"
        ~doc:
          "Swap every merged model's passive pool (substrate resistors, \
           well capacitors, interconnect RC) for its passivity-preserving \
           PRIMA reduction matching $(docv) block moments before \
           simulating.  Mutually exclusive with $(b,--reduce-tol).")

let reduce_tol_flag =
  Arg.(
    value
    & opt (some float) None
    & info [ "reduce-tol" ] ~docv:"TOL"
        ~doc:
          "Like $(b,--reduce-order), but grow the reduction order \
           automatically until the estimated port-transfer error over the \
           AC band drops below the relative tolerance $(docv).")

(* every command takes -v, --jobs, --no-lint, the cache knobs and the
   model-order-reduction knobs *)
let verbose =
  Term.(
    const (fun v j nl cd nc ro rt -> (v, j, nl, cd, nc, ro, rt))
    $ verbose_flag $ jobs_flag $ no_lint_flag $ cache_dir_flag
    $ no_cache_flag $ reduce_order_flag $ reduce_tol_flag)

let fmt = Format.std_formatter

let finish () = Format.pp_print_flush fmt ()

(* Engine diagnostics (a lint refusal, a solve that exhausted the
   rescue ladder) exit with code 2 — distinct from cmdliner's 1 for
   usage errors and the lint/drc commands' 1 for "found findings". *)
let or_diag_exit f =
  try f ()
  with Sn_engine.Diag.Error d ->
    finish ();
    Format.eprintf "snoise: %a@." Sn_engine.Diag.pp d;
    exit 2

let run_fig3 verbose =
  setup_logs verbose;
  or_diag_exit (fun () ->
      Snoise.Report.fig3 fmt (Snoise.Experiments.fig3 ());
      Snoise.Report.sec3 fmt (Snoise.Experiments.sec3_numbers ());
      finish ())

let run_fig7 verbose f_noise =
  setup_logs verbose;
  or_diag_exit (fun () ->
      Snoise.Report.fig7 fmt (Snoise.Experiments.fig7 ~f_noise ());
      finish ())

let run_fig8 verbose =
  setup_logs verbose;
  or_diag_exit (fun () ->
      Snoise.Report.fig8 fmt (Snoise.Experiments.fig8 ());
      finish ())

let run_fig9 verbose =
  setup_logs verbose;
  or_diag_exit (fun () ->
      Snoise.Report.fig9 fmt (Snoise.Experiments.fig9 ());
      finish ())

let run_fig10 verbose =
  setup_logs verbose;
  or_diag_exit (fun () ->
      Snoise.Report.fig10 fmt (Snoise.Experiments.fig10 ());
      finish ())

let run_card verbose =
  setup_logs verbose;
  or_diag_exit (fun () ->
      Snoise.Report.vco_card fmt (Snoise.Experiments.vco_card ());
      finish ())

let run_runtime verbose =
  setup_logs verbose;
  or_diag_exit (fun () ->
      Snoise.Report.runtime fmt (Snoise.Experiments.runtime ());
      finish ())

let run_aggressor verbose =
  setup_logs verbose;
  or_diag_exit (fun () ->
      Snoise.Report.aggressor fmt (Snoise.Experiments.aggressor_comb ());
      finish ())

let run_all verbose =
  run_fig3 verbose;
  run_fig7 verbose 10.0e6;
  run_fig8 verbose;
  run_fig9 verbose;
  run_fig10 verbose;
  run_card verbose;
  run_runtime verbose

let run_extract verbose path =
  setup_logs verbose;
  let layout = Sn_layout.Layout_io.load path in
  let macro =
    Sn_substrate.Extractor.extract_from_layout ~tech:Sn_tech.Tech.imec018
      layout
  in
  Sn_substrate.Macromodel.pp fmt macro;
  Format.fprintf fmt "@.";
  List.iter
    (fun (a, b, r) ->
      Format.fprintf fmt "R %s %s %s@." a b
        (Sn_numerics.Units.eng ~unit:"Ohm" r))
    (Sn_substrate.Macromodel.to_resistors macro);
  finish ()

let run_netlist verbose vtune =
  setup_logs verbose;
  or_diag_exit (fun () ->
      let flow = Snoise.Flow.build_vco Sn_testchip.Vco_chip.default ~vtune in
      print_string (Sn_circuit.Spice.to_string (Snoise.Flow.vco_merged flow)))

let run_op verbose vtune file =
  setup_logs verbose;
  or_diag_exit (fun () ->
      let netlist =
        match file with
        | Some path ->
          let nl = Sn_circuit.Spice.load path in
          Snoise.Flow.lint_gate nl;
          nl
        | None ->
          let flow =
            Snoise.Flow.build_vco Sn_testchip.Vco_chip.default ~vtune
          in
          Snoise.Flow.vco_merged flow
      in
      let dc = Sn_engine.Dc.solve netlist in
      Format.fprintf fmt "%a@." Sn_engine.Dc.pp dc;
      finish ())

(* --ignore CODE[=SUBJECT]: '=' as the separator because subject
   names themselves contain ':' (backgate:m1, nwell:vdd) *)
let parse_ignore s =
  match String.index_opt s '=' with
  | None -> (s, None)
  | Some i ->
    (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

let run_lint verbose json strict ignores disables file =
  setup_logs verbose;
  or_diag_exit (fun () ->
      let deck, netlist =
        match file with
        | Some path -> (path, Sn_circuit.Spice.load path)
        | None ->
          ( "merged VCO impact model",
            Snoise.Flow.vco_merged
              (Snoise.Flow.build_vco Sn_testchip.Vco_chip.default
                 ~vtune:0.45) )
      in
      let config =
        {
          Sn_analysis.Analyzer.default with
          Sn_analysis.Analyzer.disabled = disables;
          ignores = List.map parse_ignore ignores;
        }
      in
      let report = Sn_analysis.Analyzer.analyze ~config netlist in
      if json then print_endline (Sn_analysis.Analyzer.to_json report)
      else Snoise.Report.lint fmt ~deck report;
      finish ();
      let failing =
        Sn_analysis.Analyzer.errors report <> []
        || (strict && Sn_analysis.Analyzer.warnings report <> [])
      in
      if failing then exit 1)

(* snoise verify: the numerical pre-flight (deck mode) or certificate
   verification of a tile-cache directory (--cache).  Stricter than
   lint by design: ANY finding — warnings included — or a refused
   reduction certificate, or a bad cache entry, exits 1.  Unreadable
   input exits 2, like every diagnostic failure. *)

module J = Sn_server.Json

let embed_json s =
  match J.parse s with Ok j -> j | Error _ -> J.Str s

let preflight_json ~deck (p : Snoise.Flow.preflight) =
  let module A = Sn_analysis in
  let module Nu = Sn_analysis.Numeric in
  let num i = J.Num (float_of_int i) in
  let span_json (s : Nu.span) =
    J.Obj
      [
        ("node", J.Str s.Nu.sp_node);
        ("ratio", J.Num s.Nu.sp_ratio);
        ( "hi",
          J.Obj
            [
              ("element", J.Str (fst s.Nu.sp_hi));
              ("siemens", J.Num (snd s.Nu.sp_hi));
            ] );
        ( "lo",
          J.Obj
            [
              ("element", J.Str (fst s.Nu.sp_lo));
              ("siemens", J.Num (snd s.Nu.sp_lo));
            ] );
        ("digits", J.Num s.Nu.sp_digits);
      ]
  in
  let stiffness_json = function
    | None -> J.Null
    | Some (st : Nu.stiffness) ->
      J.Obj
        [
          ("fast_node", J.Str st.Nu.st_fast_node);
          ("fast_tau_s", J.Num st.Nu.st_fast_tau);
          ("slow_node", J.Str st.Nu.st_slow_node);
          ("slow_tau_s", J.Num st.Nu.st_slow_tau);
          ("ratio", J.Num st.Nu.st_ratio);
          ("suggested_dt_s", J.Num st.Nu.st_dt);
          ("steps_to_cover", J.Num st.Nu.st_steps);
        ]
  in
  let pool_defect_json (d : Nu.pool_defect) =
    J.Obj
      [
        ( "pencil",
          J.Str
            (match d.Nu.pd_pencil with
            | `Conductance -> "conductance"
            | `Capacitance -> "capacitance") );
        ("node", J.Str d.Nu.pd_node);
        ("defect", J.Num d.Nu.pd_defect);
        ("tolerance", J.Num d.Nu.pd_tol);
        ("dim", num d.Nu.pd_dim);
        ("negative_branches", num d.Nu.pd_negative);
      ]
  in
  J.Obj
    [
      ("schema_version", num Sn_analysis.Analyzer.schema_version);
      ("mode", J.Str "deck");
      ("deck", J.Str deck);
      ( "report",
        embed_json (Sn_analysis.Analyzer.to_json p.Snoise.Flow.pf_report) );
      ( "conditioning",
        J.Arr (List.map span_json p.Snoise.Flow.pf_spans) );
      ("stiffness", stiffness_json p.Snoise.Flow.pf_stiffness);
      ("pool", J.Arr (List.map pool_defect_json p.Snoise.Flow.pf_pool));
      ( "reduction",
        J.Str (Snoise.Flow.reduction_verdict_name p.Snoise.Flow.pf_reduction)
      );
      ("failing", J.Bool (Snoise.Flow.preflight_failing p));
    ]

let cache_verification_json ~dir (v : Sn_substrate.Cache.verification) =
  let module SC = Sn_substrate.Cache in
  let num i = J.Num (float_of_int i) in
  J.Obj
    [
      ("schema_version", num Sn_analysis.Analyzer.schema_version);
      ("mode", J.Str "cache");
      ("dir", J.Str dir);
      ( "entries",
        J.Arr
          (List.map
             (fun (key, status) ->
               J.Obj
                 (("key", J.Str key)
                  :: ("status", J.Str (SC.status_name status))
                  ::
                  (match status with
                  | SC.Bad why -> [ ("detail", J.Str why) ]
                  | _ -> [])))
             v.SC.vf_entries) );
      ("certified", num v.SC.vf_certified);
      ("recertified", num v.SC.vf_recertified);
      ("stale", num v.SC.vf_stale);
      ("bad", num v.SC.vf_bad);
      ("failing", J.Bool (v.SC.vf_bad > 0));
    ]

let run_verify verbose json ignores disables cache file =
  setup_logs verbose;
  or_diag_exit (fun () ->
      match (cache, file) with
      | Some _, Some _ ->
        Format.eprintf "snoise verify: give a deck or --cache, not both@.";
        exit 2
      | Some dir, None ->
        if not (Sys.file_exists dir && Sys.is_directory dir) then begin
          Format.eprintf "snoise verify: %S is not a directory@." dir;
          exit 2
        end;
        let module SC = Sn_substrate.Cache in
        let v = SC.verify_dir (SC.create ~dir) in
        if json then print_endline (J.to_string (cache_verification_json ~dir v))
        else Snoise.Report.cache_verification fmt ~dir v;
        finish ();
        if v.SC.vf_bad > 0 then exit 1
      | None, _ ->
        let deck, netlist =
          match file with
          | Some path -> (
            ( path,
              try Sn_circuit.Spice.load path with
              | Sn_circuit.Spice.Parse_error (line, msg) ->
                Format.eprintf "snoise verify: %s:%d: %s@." path line msg;
                exit 2
              | Sn_circuit.Netlist.Invalid msg ->
                Format.eprintf "snoise verify: %s: %s@." path
                  (String.concat "; " msg);
                exit 2 ))
          | None ->
            ( "merged VCO impact model",
              Snoise.Flow.vco_merged
                (Snoise.Flow.build_vco Sn_testchip.Vco_chip.default
                   ~vtune:0.45) )
        in
        let config =
          {
            Sn_analysis.Analyzer.default with
            Sn_analysis.Analyzer.disabled = disables;
            ignores = List.map parse_ignore ignores;
          }
        in
        let p = Snoise.Flow.preflight ~config netlist in
        if json then print_endline (J.to_string (preflight_json ~deck p))
        else Snoise.Report.verify fmt ~deck p;
        finish ();
        if Snoise.Flow.preflight_failing p then exit 1)

let run_drc verbose file =
  setup_logs verbose;
  let layout =
    match file with
    | Some path -> Sn_layout.Layout_io.load path
    | None -> Sn_testchip.Vco_chip.layout Sn_testchip.Vco_chip.default
  in
  let vs = Sn_layout.Drc.check ~tech:Sn_tech.Tech.imec018 layout in
  if vs = [] then Format.fprintf fmt "layout is DRC clean@."
  else List.iter (fun v -> Format.fprintf fmt "%a@." Sn_layout.Drc.pp v) vs;
  finish ();
  if vs <> [] then exit 1

let run_isolation verbose path port1 port2 =
  setup_logs verbose;
  let layout = Sn_layout.Layout_io.load path in
  let macro =
    Sn_substrate.Extractor.extract_from_layout ~tech:Sn_tech.Tech.imec018
      layout
  in
  let nl =
    Sn_circuit.Netlist.create
      (Snoise.Merge.of_macromodel macro
      @ [ Sn_circuit.Element.Resistor
            { name = "rref"; n1 = port1; n2 = "0"; ohms = 1.0e12 } ])
  in
  let freqs = Sn_numerics.Sweep.logspace 1.0e6 1.0e9 10 in
  let points = Sn_engine.Twoport.analyze nl ~port1 ~port2 ~freqs in
  Format.fprintf fmt "%14s %14s@." "freq" "isolation";
  List.iter
    (fun (s : Sn_engine.Twoport.sparams) ->
      Format.fprintf fmt "%14s %11.1f dB@."
        (Sn_numerics.Units.eng ~unit:"Hz" s.Sn_engine.Twoport.freq)
        (Sn_engine.Twoport.isolation_db s))
    points;
  finish ()

(* --- the resident service ------------------------------------------ *)

let default_socket () =
  match Sys.getenv_opt "SNOISE_SOCKET" with
  | Some s when s <> "" -> s
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "snoise.sock"

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> ("127.0.0.1", int_of_string s)
  | Some i ->
    ( String.sub s 0 i,
      int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )

(* Crash-only supervision: fork the worker, restart it on abnormal
   exit with exponential backoff.  The worker learns its restart
   ordinal through SNOISE_RESTARTS (surfaced in [stats]); SNOISE_FAULT
   is scrubbed after the first crash so a single-shot injected fault
   cannot put the pair into a crash loop. *)
let supervise_loop run_worker =
  let restarts = ref 0 in
  let describe = function
    | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
    | Unix.WSIGNALED sg -> Printf.sprintf "killed by signal %d" sg
    | Unix.WSTOPPED sg -> Printf.sprintf "stopped by signal %d" sg
  in
  let rec loop backoff =
    let started = Unix.gettimeofday () in
    match Unix.fork () with
    | 0 ->
      Unix.putenv "SNOISE_RESTARTS" (string_of_int !restarts);
      (try run_worker () with
      | Sn_engine.Diag.Error d ->
        Format.eprintf "snoise: %a@." Sn_engine.Diag.pp d;
        exit 2);
      exit 0
    | pid -> (
      let _, status = Unix.waitpid [] pid in
      match status with
      | Unix.WEXITED 0 -> exit 0
      | status ->
        incr restarts;
        Unix.putenv "SNOISE_FAULT" "";
        let uptime = Unix.gettimeofday () -. started in
        let backoff =
          if uptime > 60.0 then 0.5 else Float.min 30.0 (backoff *. 2.0)
        in
        Format.eprintf
          "snoise serve: worker %s; restart #%d in %.1f s@."
          (describe status) !restarts backoff;
        Format.pp_print_flush Format.err_formatter ();
        Unix.sleepf backoff;
        loop backoff)
  in
  loop 0.25

let run_serve verbose socket tcp auth_token supervise max_queue quota
    max_decks tran_max_points max_flows mem_watermark_mb warmup_journal =
  setup_logs verbose;
  let tcp =
    Option.map
      (fun s ->
        try parse_host_port s
        with Failure _ ->
          Format.eprintf "snoise serve: bad --tcp %S (HOST:PORT)@." s;
          exit 1)
      tcp
  in
  let config =
    {
      Sn_server.Service.max_queue;
      client_quota = quota;
      max_decks;
      tran_max_points;
      max_flows;
      mem_watermark_mb;
      warmup_journal;
    }
  in
  let worker () =
    let server = Sn_server.Server.create ~config ?tcp ?auth_token ~socket () in
    (match Sn_server.Service.warm_from_journal (Sn_server.Server.service server)
     with
    | 0, 0 -> ()
    | ok, failed ->
      Format.printf "snoise serve: warmed %d plan(s) from journal%s@." ok
        (if failed > 0 then Printf.sprintf " (%d failed)" failed else ""));
    Sn_server.Server.serve
      ~on_ready:(fun () ->
        Format.printf "snoise serve: listening on %s%s@." socket
          (match tcp with
          | Some (h, p) -> Printf.sprintf " and tcp %s:%d" h p
          | None -> "");
        Format.pp_print_flush Format.std_formatter ())
      server
  in
  if supervise then supervise_loop worker
  else or_diag_exit (fun () -> worker ())

(* one-shot JSONL client: send request lines (positional or stdin),
   print each reply line, exit 1 when any reply is an error *)
let run_request verbose socket wait lines =
  setup_logs verbose;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  in
  let fd =
    let deadline = Unix.gettimeofday () +. wait in
    let rec retry () =
      match connect () with
      | fd -> fd
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        retry ()
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "snoise request: cannot connect to %s: %s@." socket
          (Unix.error_message e);
        exit 2
    in
    retry ()
  in
  let lines =
    match lines with
    | _ :: _ -> lines
    | [] ->
      let rec slurp acc =
        match In_channel.input_line stdin with
        | Some l -> slurp (l :: acc)
        | None -> List.rev acc
      in
      slurp []
  in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let payload = String.concat "\n" lines ^ "\n" in
  let rec send off =
    if off < String.length payload then
      send (off + Unix.write_substring fd payload off (String.length payload - off))
  in
  send 0;
  let ic = Unix.in_channel_of_descr fd in
  let saw_error = ref false in
  let rec read_replies n =
    if n > 0 then
      match In_channel.input_line ic with
      | Some reply ->
        print_endline reply;
        (match Sn_server.Json.parse reply with
        | Ok j -> (
          match Sn_server.Json.member "type" j with
          | Some (Sn_server.Json.Str "error") -> saw_error := true
          | _ -> ())
        | Error _ -> saw_error := true);
        read_replies (n - 1)
      | None ->
        Format.eprintf "snoise request: server closed the connection@.";
        exit 2
  in
  read_replies (List.length lines);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  if !saw_error then exit 1

let socket_arg =
  Arg.(
    value
    & opt string (default_socket ())
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path (default: $(b,SNOISE_SOCKET) or \
           snoise.sock in the system temp directory).")

let f_noise_arg =
  Arg.(
    value
    & opt float 10.0e6
    & info [ "f-noise" ] ~docv:"HZ" ~doc:"Substrate tone frequency in Hz.")

let vtune_arg =
  Arg.(
    value
    & opt float 0.45
    & info [ "vtune" ] ~docv:"V" ~doc:"VCO tuning voltage.")

let layout_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"LAYOUT" ~doc:"Layout file (text format).")

let cmd name doc term =
  Cmd.v (Cmd.info name ~doc) term

let cmds =
  [
    cmd "fig3" "NMOS measurement structure transfer (paper Figure 3 / section 3)"
      Term.(const run_fig3 $ verbose);
    cmd "fig7" "VCO output spectrum with a substrate tone (paper Figure 7)"
      Term.(const run_fig7 $ verbose $ f_noise_arg);
    cmd "fig8" "spur power vs noise frequency and Vtune (paper Figure 8)"
      Term.(const run_fig8 $ verbose);
    cmd "fig9" "per-device contribution analysis (paper Figure 9)"
      Term.(const run_fig9 $ verbose);
    cmd "fig10" "ground interconnect sizing experiment (paper Figure 10)"
      Term.(const run_fig10 $ verbose);
    cmd "card" "VCO design card check (paper section 4)"
      Term.(const run_card $ verbose);
    cmd "runtime" "extraction / simulation wall-clock (paper section 6 note)"
      Term.(const run_runtime $ verbose);
    cmd "aggressor"
      "digital switching-noise spur comb (the paper's sign-off outlook)"
      Term.(const run_aggressor $ verbose);
    cmd "all" "run every experiment" Term.(const run_all $ verbose);
    cmd "extract" "extract the substrate macromodel of a layout file"
      Term.(const run_extract $ verbose $ layout_arg);
    cmd "netlist" "print the merged VCO impact model as a SPICE deck"
      Term.(const run_netlist $ verbose $ vtune_arg);
    cmd "drc" "design-rule check a layout file (default: the VCO layout)"
      Term.(
        const run_drc $ verbose
        $ Arg.(
            value
            & pos 0 (some file) None
            & info [] ~docv:"LAYOUT" ~doc:"Layout file to check."));
    cmd "isolation"
      "S21 substrate isolation between two ports of a layout file"
      Term.(
        const run_isolation $ verbose $ layout_arg
        $ Arg.(
            required
            & pos 1 (some string) None
            & info [] ~docv:"PORT1" ~doc:"Aggressor port name.")
        $ Arg.(
            required
            & pos 2 (some string) None
            & info [] ~docv:"PORT2" ~doc:"Victim port name."));
    cmd "op" "DC operating point of a SPICE deck (default: the merged VCO)"
      Term.(
        const run_op $ verbose $ vtune_arg
        $ Arg.(
            value
            & pos 0 (some file) None
            & info [] ~docv:"DECK"
                ~doc:
                  "SPICE netlist file to solve (lint-gated); omit to \
                   solve the merged VCO impact model."));
    cmd "serve"
      "persistent simulation service over a Unix-domain socket (JSONL)"
      Term.(
        const run_serve $ verbose $ socket_arg
        $ Arg.(
            value
            & opt (some string) None
            & info [ "tcp" ] ~docv:"HOST:PORT"
                ~doc:
                  "Additionally listen on a TCP endpoint.  Pair it \
                   with $(b,--auth-token) unless the interface is \
                   loopback: without a token the TCP endpoint is \
                   open.")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "auth-token" ] ~docv:"SECRET"
                ~doc:
                  "Require TCP clients to present $(docv) as a \
                   top-level $(b,auth_token) member before serving \
                   them (constant-time comparison; unauthenticated \
                   lines get the stable $(b,unauthorized) error).  \
                   The Unix socket, guarded by file permissions, \
                   never needs it.")
        $ Arg.(
            value & flag
            & info [ "supervise" ]
                ~doc:
                  "Run the worker under a supervisor that restarts it \
                   on abnormal exit with exponential backoff \
                   (crash-only operation).  Pair with \
                   $(b,--warmup-journal) so a restarted worker \
                   re-compiles recently served plans before \
                   accepting traffic.")
        $ Arg.(
            value
            & opt int Sn_server.Service.default_config.Sn_server.Service.max_queue
            & info [ "max-queue" ] ~docv:"N"
                ~doc:
                  "Bounded request-queue capacity; a full queue answers \
                   $(b,busy) with a retry hint instead of buffering \
                   without limit.")
        $ Arg.(
            value
            & opt int
                Sn_server.Service.default_config.Sn_server.Service.client_quota
            & info [ "quota" ] ~docv:"N"
                ~doc:
                  "Max requests one client may have queued at once; \
                   beyond it the client is answered $(b,quota-exceeded).")
        $ Arg.(
            value
            & opt int Sn_server.Service.default_config.Sn_server.Service.max_decks
            & info [ "max-decks" ] ~docv:"N"
                ~doc:
                  "Compiled-plan cache bound (LRU eviction beyond it).")
        $ Arg.(
            value
            & opt int
                Sn_server.Service.default_config.Sn_server.Service
                .tran_max_points
            & info [ "tran-max-points" ] ~docv:"N"
                ~doc:
                  "Largest transient point count a request may ask \
                   for.")
        $ Arg.(
            value
            & opt int
                Sn_server.Service.default_config.Sn_server.Service.max_flows
            & info [ "max-flows" ] ~docv:"N"
                ~doc:
                  "Bound on resident per-(vtune, grid) VCO flows \
                   (LRU eviction beyond it).")
        $ Arg.(
            value
            & opt int
                Sn_server.Service.default_config.Sn_server.Service
                .mem_watermark_mb
            & info [ "mem-watermark-mb" ] ~docv:"MB"
                ~doc:
                  "Memory watermark: above $(docv) MB of live heap or \
                   accounted plan bytes the service sheds \
                   least-recently-used plans and answers $(b,busy) \
                   with a retry hint instead of running into the OOM \
                   killer.")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "warmup-journal" ] ~docv:"PATH"
                ~doc:
                  "Append compiled-deck digests to $(docv) and replay \
                   them at startup, so a restarted worker serves \
                   recently used plans warm.  The journal is \
                   fail-soft: corruption or a damaged tail just \
                   shortens the replay."));
    cmd "request"
      "send JSONL request lines to a running snoise serve and print replies"
      Term.(
        const run_request $ verbose $ socket_arg
        $ Arg.(
            value
            & opt float 0.0
            & info [ "wait" ] ~docv:"SECONDS"
                ~doc:
                  "Retry connecting for up to $(docv) (a just-started \
                   server may not be listening yet).")
        $ Arg.(
            value
            & pos_all string []
            & info [] ~docv:"REQUEST"
                ~doc:
                  "Request lines (JSON objects).  With none, lines are \
                   read from stdin.  Exit status: 0 when every reply is \
                   a response, 1 when any reply is an error, 2 on \
                   connection failure."));
    cmd "lint"
      "structural ERC of a SPICE deck (default: the merged VCO model)"
      Term.(
        const run_lint $ verbose
        $ Arg.(
            value & flag
            & info [ "json" ]
                ~doc:"Emit the report as a JSON object on stdout.")
        $ Arg.(
            value & flag
            & info [ "strict" ]
                ~doc:"Exit 1 on warnings too, not only on errors.")
        $ Arg.(
            value
            & opt_all string []
            & info [ "ignore" ] ~docv:"CODE[=SUBJECT]"
                ~doc:
                  "Suppress diagnostics of rule $(docv); with \
                   $(b,=SUBJECT), only on that element/node/port.  \
                   Repeatable.  Equivalent to an in-deck \
                   $(b,*%snoise ignore) pragma.")
        $ Arg.(
            value
            & opt_all string []
            & info [ "disable" ] ~docv:"CODE"
                ~doc:"Do not run rule $(docv) at all.  Repeatable.")
        $ Arg.(
            value
            & pos 0 (some file) None
            & info [] ~docv:"DECK" ~doc:"SPICE netlist file to lint."));
    cmd "verify"
      "numerical pre-flight of a deck, or certificate verification of a \
       tile-cache directory"
      Term.(
        const run_verify $ verbose
        $ Arg.(
            value & flag
            & info [ "json" ]
                ~doc:
                  "Emit the result as a JSON object on stdout \
                   (carries the same $(b,schema_version) as \
                   $(b,snoise lint --json)).")
        $ Arg.(
            value
            & opt_all string []
            & info [ "ignore" ] ~docv:"CODE[=SUBJECT]"
                ~doc:
                  "Suppress diagnostics of rule $(docv), as in \
                   $(b,snoise lint).  Repeatable.")
        $ Arg.(
            value
            & opt_all string []
            & info [ "disable" ] ~docv:"CODE"
                ~doc:"Do not run rule $(docv) at all.  Repeatable.")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "cache" ] ~docv:"DIR"
                ~doc:
                  "Verify the tile-cache directory $(docv) instead of \
                   a deck: every entry is re-judged from its bytes \
                   alone (certificate hashing, or a fresh LDL^T for \
                   uncertified entries) — no extraction, no CG \
                   iterations.  Exit 1 when any entry is bad.")
        $ Arg.(
            value
            & pos 0 (some file) None
            & info [] ~docv:"DECK"
                ~doc:
                  "SPICE netlist file to pre-flight (default: the \
                   merged VCO impact model).  Any finding — warnings \
                   included — exits 1; unreadable input exits 2."));
  ]

let () =
  let info =
    Cmd.info "snoise" ~version:"1.0.0"
      ~doc:
        "Substrate noise impact simulation for analog/RF circuits \
         including interconnect resistance (Soens et al., DATE 2005)"
  in
  exit (Cmd.eval (Cmd.group info cmds))
