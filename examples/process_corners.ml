(* Process-corner sign-off: how much does the substrate-noise spur
   move across technology variation?  This is the "mixed-signal chip
   verification and sign-off" use the paper's conclusion points to.

   Run with:  dune exec examples/process_corners.exe *)

module Corners = Snoise.Corners

let () =
  Format.printf "== Process corners: VCO spur at fc + 10 MHz ==@.@.";
  (* Corners.vco_spread runs one flow per corner on the shared pool
     (Snoise.Sweep.corners) — width picked by SNOISE_JOBS *)
  Format.printf "  evaluating %d corners on %d worker(s)@.@."
    (List.length Corners.corners_3sigma)
    (Snoise.Sweep.jobs ());
  let results = Corners.vco_spread () in
  Format.printf "  %-12s %10s %10s %10s %8s | %12s %10s@." "corner"
    "bulk rho" "sheet R" "contact R" "well C" "spur [dBm]" "fc [GHz]";
  List.iter
    (fun (r : Corners.vco_corner_result) ->
      let c = r.Corners.corner in
      Format.printf "  %-12s %9.1fx %9.1fx %9.1fx %7.1fx | %12.1f %10.2f@."
        c.Corners.name c.Corners.bulk_resistivity c.Corners.sheet_resistance
        c.Corners.contact_resistance c.Corners.well_capacitance
        r.Corners.spur_at_10mhz_dbm r.Corners.carrier_ghz)
    results;
  Format.printf "@.spur spread across corners: %.1f dB@."
    (Corners.spread_db results);
  Format.printf
    "@.A designer signing off substrate-noise immunity needs the@.\
     worst corner, not the nominal one - the resistive-worst corner@.\
     (low-ohmic bulk + resistive metal) dominates, consistent with@.\
     the paper's resistive-coupling mechanism.@."
