(* Design exploration beyond the paper's Figure 10: sweep the ground
   interconnect width scaling factor and watch the spur fall toward
   the residual floor set by the fixed resistances (probe, strap) —
   quantifying how much a designer can buy with metal.

   Run with:  dune exec examples/ground_wire_sizing.exe *)

module Flow = Snoise.Flow
module Sweep = Snoise.Sweep
module Impact = Sn_rf.Impact

let f_noise = 10.0e6

let spur_at factor =
  let options =
    match factor with
    | 1.0 -> Flow.default_options
    | f -> { Flow.default_options with Flow.widen_ground = Some f }
  in
  let flow = Flow.build_vco ~options Sn_testchip.Vco_chip.default ~vtune:0.0 in
  let h = Flow.vco_transfers flow ~f_noise:[| f_noise |] in
  let s = Flow.vco_spur flow ~h ~p_noise_dbm:(-5.0) ~f_noise in
  (Flow.vco_ground_wire_resistance flow, s.Impact.upper_dbm)

let () =
  Format.printf "== Ground wire sizing (paper Fig. 10, extended) ==@.@.";
  Format.printf
    "Spur at fc + 10 MHz, -5 dBm substrate tone, Vtune = 0 (%d jobs):@.@."
    (Sweep.jobs ());
  Format.printf "  %8s %12s %12s %14s@." "width x" "wire R" "spur [dBm]"
    "vs normal [dB]";
  (* every width is an independent extraction + impact run: one sweep
     point each, fanned out over the pool *)
  let results =
    Sweep.map_points
      (fun factor -> (factor, spur_at factor))
      [ 1.0; 1.5; 2.0; 3.0; 5.0 ]
  in
  let base = match results with (_, (_, dbm)) :: _ -> dbm | [] -> 0.0 in
  List.iteri
    (fun i (factor, (r, dbm)) ->
      if i = 0 then Format.printf "  %8.1f %9.2f ohm %12.1f %14s@." factor r dbm "-"
      else
        Format.printf "  %8.1f %9.2f ohm %12.1f %14.2f@." factor r dbm
          (base -. dbm))
    results;
  Format.printf
    "@.Doubling the width buys ~4.5 dB (the paper's prediction); the@.\
     returns diminish as the fixed probe and strap resistances start@.\
     to dominate the analog ground bounce.@."
