.title minimal clean RC low-pass
v1 in 0 1.0 ac 1
r1 in out 1k
c1 out 0 1p
.end
