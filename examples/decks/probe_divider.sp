.title resistive divider with an observation-only probe tap
* The probe node hangs off a single resistor on purpose (it models a
* high-impedance sense point); suppress the one expected warning so
* the deck lints clean:
*%snoise ignore dangling-node probe
v1 in 0 1.0 ac 1
r1 in mid 1k
r2 mid 0 1k
rprobe mid probe 10k
c1 mid 0 1p
.end
