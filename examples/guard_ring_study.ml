(* Guard-ring design study: how much isolation does a guard ring buy
   in a high-ohmic substrate, as a function of its width and of how it
   is grounded?  (The sobering answer for high-ohmic processes — rings
   help far less than designers hope, and a ring grounded through a
   resistive wire helps even less — is exactly why the paper's
   interconnect-aware methodology matters.)

   Run with:  dune exec examples/guard_ring_study.exe *)

module G = Sn_geometry
module L = Sn_layout
module Port = Sn_substrate.Port
module Extractor = Sn_substrate.Extractor
module Macromodel = Sn_substrate.Macromodel

let die = G.Rect.make 0.0 0.0 200.0 200.0

let ports ~ring_strip =
  let inject =
    Port.v ~name:"inj" ~kind:Port.Resistive [ G.Rect.make 20.0 90.0 40.0 110.0 ]
  in
  let victim =
    Port.v ~name:"vic" ~kind:Port.Probe [ G.Rect.make 150.0 90.0 170.0 110.0 ]
  in
  (* every configuration shares a grounded perimeter tap (the pad
     frame) so the noise current always has the same return path *)
  let frame =
    Port.v ~name:"frame" ~kind:Port.Resistive
      (Sn_testchip.Ring.rects
         ~center:(G.Point.v 100.0 100.0)
         ~inner_width:180.0 ~inner_height:180.0 ~strip:8.0)
  in
  match ring_strip with
  | None -> [ inject; victim; frame ]
  | Some strip ->
    let ring =
      Port.v ~name:"ring" ~kind:Port.Resistive
        (Sn_testchip.Ring.rects
           ~center:(G.Point.v 160.0 100.0)
           ~inner_width:50.0 ~inner_height:50.0 ~strip)
    in
    [ inject; victim; frame; ring ]

let config =
  { Sn_substrate.Grid.nx = 40; ny = 40; z_per_layer = Some [ 1; 3; 3; 2 ] }

let transfer ?(backplane = false) ~ring_strip ~grounded () =
  let m =
    Extractor.extract ~config ~grounded_backplane:backplane
      ~tech:Sn_tech.Tech.imec018 ~die (ports ~ring_strip)
  in
  Macromodel.divider m ~inject:"inj" ~sense:"vic" ~grounded

let db x = 20.0 *. log10 x

let () =
  Format.printf "== Guard ring design study (high-ohmic substrate) ==@.@.";
  Format.printf
    "Aggressor contact at 130 um from a victim device; 20 ohm cm bulk.@.@.";
  (* every configuration is an independent extraction: fan the whole
     study out as one parallel sweep over the scenario list *)
  let scenarios =
    (`Bare, None, false, [ "frame" ])
    :: List.map
         (fun strip -> (`Ring strip, Some strip, false, [ "frame"; "ring" ]))
         [ 2.0; 5.0; 10.0; 20.0 ]
    @ [
        (`Floating, Some 10.0, false, [ "frame" ]);
        (`Plated, Some 10.0, true, [ "frame"; "ring"; "backplane" ]);
      ]
  in
  let results =
    Snoise.Sweep.map_points
      (fun (tag, ring_strip, backplane, grounded) ->
        (tag, transfer ~backplane ~ring_strip ~grounded ()))
      scenarios
  in
  let find tag = List.assoc tag results in
  let bare = find `Bare in
  Format.printf "  %-44s %8.1f dB@." "no ring" (db bare);
  List.iter
    (fun (tag, d) ->
      match tag with
      | `Ring strip ->
        Format.printf "  %-44s %8.1f dB  (%+.1f dB)@."
          (Printf.sprintf "%g um ring around the victim, ideal ground" strip)
          (db d)
          (db d -. db bare)
      | _ -> ())
    results;
  (* a ring is only as good as its ground *)
  let floating = find `Floating in
  Format.printf "  %-44s %8.1f dB  (%+.1f dB)@." "10 um ring left floating"
    (db floating)
    (db floating -. db bare);
  let plated = find `Plated in
  Format.printf "  %-44s %8.1f dB  (%+.1f dB)@."
    "10 um ring + grounded backside metallization" (db plated)
    (db plated -. db bare);
  Format.printf
    "@.Takeaways for this high-ohmic floorplan:@.\
     - making the ring wider buys almost nothing (the noise dives@.\
       under any surface ring: 2 um and 20 um are within 3 dB);@.\
     - the ring works mostly as a relay to the nearby grounded pad@.\
       frame - even a floating ring helps here because it couples the@.\
       victim region to that ground (move the frame away and the@.\
       floating ring collapses);@.\
     - an (idealized, zero-impedance) backside metallization is by@.\
       far the strongest measure.@.\
     Width is not the lever - the quality of the ring's ground is,@.\
     which is the paper's interconnect-resistance point.@."
