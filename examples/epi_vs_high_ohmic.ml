(* Why the paper keeps saying "high-ohmic": compare substrate coupling
   versus separation distance on the paper's 20 ohm cm wafer and on an
   epitaxial (p- epi over p+ bulk) wafer.

   On the high-ohmic wafer, distance buys isolation.  On the epi
   wafer, the heavily doped bulk a few micrometers down behaves as a
   single node: moving the victim away barely helps, and only a
   backside contact does.

   Run with:  dune exec examples/epi_vs_high_ohmic.exe *)

module G = Sn_geometry
module Port = Sn_substrate.Port
module Extractor = Sn_substrate.Extractor
module Macromodel = Sn_substrate.Macromodel

let die = G.Rect.make 0.0 0.0 300.0 300.0

let config =
  { Sn_substrate.Grid.nx = 40; ny = 40; z_per_layer = Some [ 1; 2; 3; 2 ] }

let coupling ?(backplane = false) ~tech ~distance () =
  let inject =
    Port.v ~name:"inj" ~kind:Port.Resistive
      [ G.Rect.make 20.0 140.0 40.0 160.0 ]
  in
  let victim =
    Port.v ~name:"vic" ~kind:Port.Probe
      [ G.Rect.make (40.0 +. distance) 140.0 (60.0 +. distance) 160.0 ]
  in
  let tap =
    Port.v ~name:"tap" ~kind:Port.Resistive
      [ G.Rect.make 140.0 20.0 160.0 40.0 ]
  in
  let m =
    Extractor.extract ~config ~grounded_backplane:backplane ~tech ~die
      [ inject; victim; tap ]
  in
  let grounded = if backplane then [ "tap"; "backplane" ] else [ "tap" ] in
  20.0 *. log10 (Macromodel.divider m ~inject:"inj" ~sense:"vic" ~grounded)

let () =
  Format.printf "== Epi vs high-ohmic substrate coupling ==@.@.";
  Format.printf "Aggressor -> victim transfer (dB) vs edge separation:@.@.";
  Format.printf "  %10s %14s %14s@." "distance" "high-ohmic" "epi (p+ bulk)";
  (* the (wafer x distance) grid: eight independent extractions, all
     pool tasks of one sweep *)
  let distances = [ 20.0; 60.0; 120.0; 200.0 ] in
  let results =
    Snoise.Sweep.grid
      (fun tech distance -> coupling ~tech ~distance ())
      [ Sn_tech.Tech.imec018; Sn_tech.Tech.epi018 ]
      distances
  in
  let value tech d =
    let _, _, v = List.find (fun (t, x, _) -> t == tech && x = d) results in
    v
  in
  List.iter
    (fun d ->
      Format.printf "  %7.0f um %14.1f %14.1f@." d
        (value Sn_tech.Tech.imec018 d)
        (value Sn_tech.Tech.epi018 d))
    distances;
  let epi_open = coupling ~tech:Sn_tech.Tech.epi018 ~distance:120.0 () in
  let epi_plated =
    coupling ~backplane:true ~tech:Sn_tech.Tech.epi018 ~distance:120.0 ()
  in
  Format.printf
    "@.epi wafer at 120 um: open backside %.1f dB, grounded backside %.1f dB@."
    epi_open epi_plated;
  Format.printf
    "@.Distance helps on the high-ohmic wafer but saturates almost@.\
     immediately on the epi wafer (the p+ bulk is one node); on epi@.\
     only the backside contact restores isolation.  This is why the@.\
     paper's high-ohmic substrate makes layout detail - like the@.\
     ground interconnect resistance - decisive.@."
