(** In-memory content-addressed cache of compiled simulation
    artifacts — what keeps a resident [snoise serve] process hot.

    Three layers, all keyed by {e content} digests so a stale hit is
    impossible (the same discipline as the on-disk
    {!Sn_substrate.Cache} for tiles):

    - {b parse layer}: deck text digest -> parsed
      {!Sn_circuit.Netlist.t}.  Editing a deck file changes its
      digest, which is the whole invalidation story.
    - {b plan layer}: (deck text digest, canonical overrides) ->
      {!Snoise.Flow.compiled} — the lint verdict, MNA structure and
      compiled stamp plan.  The {!Snoise.Flow.compiled} value itself
      memoizes the DC bias and the complex AC plan, so the
      (deck, bias point) -> [Ac_plan] mapping rides on this layer.
    - {b macro layer}: layout text digest -> extracted substrate
      macromodel (the [extract] verb).

    Plan-layer entries are evicted least-recently-used beyond
    [max_decks]; the parse layer is evicted alongside (it only exists
    to de-duplicate work between override variants of one deck).
    All operations are thread-safe. *)

type t

val create : ?max_decks:int -> unit -> t
(** [create ()] builds an empty cache holding at most [max_decks]
    (default 128) compiled plans. *)

val deck_key : text:string -> overrides:(string * float) list -> string
(** The plan-layer key: a digest over the deck text and the
    canonically-rendered (sorted) overrides.  Exposed so tests and
    [docs/SERVER.md] can state the cache-key semantics precisely. *)

val find_netlist :
  t -> text:string -> parse:(string -> Sn_circuit.Netlist.t) ->
  Sn_circuit.Netlist.t
(** [find_netlist t ~text ~parse] returns the cached parse of [text]
    or runs [parse text] and caches it.  Parser exceptions propagate
    and cache nothing. *)

(** One plan-layer entry: the compiled plan, stored alongside the
    reduced pool model and its passivity certificates when the deck
    went through model-order reduction on the way in ([None]/[None]
    for an unreduced deck).  The certificates let {!verify_plans}
    re-judge a warm plan by hashing alone. *)
type certified_plan = {
  cp_plan : Snoise.Flow.compiled;
  cp_reduced : Snoise.Reduced_model.t option;
  cp_cert :
    (Sn_numerics.Passivity.cert * Sn_numerics.Passivity.cert) option;
}

val find_compiled :
  t -> key:string -> compile:(unit -> certified_plan) ->
  certified_plan * Protocol.cache_note
(** [find_compiled t ~key ~compile] returns the cached compiled deck
    for [key] (a {!deck_key}) and {!Protocol.Hit}, or runs [compile]
    and caches its result with {!Protocol.Miss}.  A [compile] that
    raises (lint refusal, bad deck) caches nothing, so a fixed deck
    re-compiles cleanly. *)

(** {2 Certificate verification} — the plan-cache half of the server's
    [verify] verb. *)

type plan_verification = {
  pv_plans : int;  (** resident plans judged *)
  pv_exact : int;  (** never reduced: nothing to certify *)
  pv_certified : int;  (** certificate re-verified against the pencil *)
  pv_uncertified : int;
      (** reduced, but certification was refused at compile time *)
  pv_bad : int;  (** stored certificate no longer matches its pencil *)
}

val verify_plans : t -> plan_verification
(** Re-verify every resident plan's reduction certificate
    ({!Snoise.Reduced_model.verify_certificate}: hashing only — no
    compile, no factorization).  A healthy cache has [pv_bad = 0]. *)

val find_macro :
  t -> text:string ->
  extract:(unit -> Sn_substrate.Macromodel.t) ->
  Sn_substrate.Macromodel.t * Protocol.cache_note
(** Layout-extraction layer, keyed by layout text digest. *)

(** Monotonic hit/miss/eviction counters, exposed in the server's
    [stats] reply. *)
type stats = {
  plans : int;  (** compiled plans currently resident *)
  certified_plans : int;
      (** resident plans carrying a reduction passivity certificate *)
  plan_words : int;
      (** accounted heap words of the resident plans (weighed once at
          insert with [Obj.reachable_words]) — the plan-size half of
          the service's memory watermark *)
  plan_hits : int;
  plan_misses : int;
  parse_hits : int;
  parse_misses : int;
  macro_hits : int;
  macro_misses : int;
  evictions : int;  (** LRU evictions from the plan layer *)
}

val stats : t -> stats

val plan_words : t -> int
(** Accounted heap words of the resident plan layer (see
    {!stats.plan_words}). *)

val shed : t -> keep:int -> int
(** [shed t ~keep] drops least-recently-used plans until at most
    [keep] remain, returning how many were evicted.  Called by the
    service when the memory watermark is crossed; the freed words
    leave the process on the next compaction. *)

val clear : t -> unit
(** Drop every entry (the bench's cold-cache mode).  Counters are
    preserved. *)

val reset_counters : t -> unit
