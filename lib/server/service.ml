module J = Json
module P = Protocol
module C = Sn_circuit
module E = Sn_engine
module A = Sn_analysis
module N = Sn_numerics
module Flow = Snoise.Flow

let log_src = Logs.Src.create "sn.server" ~doc:"snoise serving core"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  max_queue : int;
  client_quota : int;
  max_decks : int;
  tran_max_points : int;
  max_flows : int;
  mem_watermark_mb : int;
  warmup_journal : string option;
}

let default_config =
  { max_queue = 256; client_quota = 32; max_decks = 128;
    tran_max_points = 100_000; max_flows = 8; mem_watermark_mb = 4096;
    warmup_journal = None }

type pending = { seq : int; client : int; arrived : float; req : P.request }

type t = {
  config : config;
  cache : Plan_cache.t;
  lock : Mutex.t;
  queue : pending Queue.t;
  per_client : (int, int) Hashtbl.t;
  mutable seq : int;
  started : float;
  (* counters (all under [lock]) *)
  verb_counts : (string, int) Hashtbl.t;
  verb_ms : (string, float) Hashtbl.t;
  mutable requests_total : int;
  mutable responses_total : int;
  mutable errors_total : int;
  mutable rejected_busy : int;
  mutable rejected_quota : int;
  mutable max_depth : int;
  mutable dispatches : int;
  mutable coalesced : int;
  mutable svc_total_ms : float;
  mutable svc_max_ms : float;
  mutable svc_last_ms : float;
  (* VCO flows for the spur verb, keyed by (vtune, grid); LRU-bounded
     because each resident flow holds a substrate macromodel plus
     compiled tank plans *)
  flows : Flow.vco_flow Sn_rf.Lru.t;
  mutable flow_hits : int;
  mutable flow_misses : int;
  (* resilience layer (all under [lock] unless noted) *)
  restarts : int;  (* set by the supervisor via SNOISE_RESTARTS *)
  mutable deadline_exceeded : int;
  mutable disconnected : int;
  mutable shed_events : int;
  mutable shed_plans : int;
  mutable rejected_memory : int;
  mutable last_shed : float;
  journal : Journal.t option;
  journaled : (string, unit) Hashtbl.t;  (* keys already appended *)
  mutable journal_replayed : int;
  mutable journaling : bool;  (* off while warming, to avoid echo *)
}

let create ?(config = default_config) () =
  {
    config;
    cache = Plan_cache.create ~max_decks:config.max_decks ();
    lock = Mutex.create ();
    queue = Queue.create ();
    per_client = Hashtbl.create 16;
    seq = 0;
    started = Unix.gettimeofday ();
    verb_counts = Hashtbl.create 16;
    verb_ms = Hashtbl.create 16;
    requests_total = 0;
    responses_total = 0;
    errors_total = 0;
    rejected_busy = 0;
    rejected_quota = 0;
    max_depth = 0;
    dispatches = 0;
    coalesced = 0;
    svc_total_ms = 0.0;
    svc_max_ms = 0.0;
    svc_last_ms = 0.0;
    flows = Sn_rf.Lru.create ~capacity:(max 1 config.max_flows);
    flow_hits = 0;
    flow_misses = 0;
    restarts =
      (match Sys.getenv_opt "SNOISE_RESTARTS" with
      | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
      | None -> 0);
    deadline_exceeded = 0;
    disconnected = 0;
    shed_events = 0;
    shed_plans = 0;
    rejected_memory = 0;
    last_shed = 0.0;
    journal = Option.map (fun path -> Journal.open_ ~path) config.warmup_journal;
    journaled = Hashtbl.create 16;
    journal_replayed = 0;
    journaling = true;
  }

let cache t = t.cache

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let queue_depth t = with_lock t (fun () -> Queue.length t.queue)

(* ------------------------------------------------------------------ *)
(* request-shape failures raised by handlers, mapped to wire errors by
   [guard_result] below — a malformed request must produce a structured
   reply, never a disconnect or a crash *)

exception Bad of string
exception Unreadable of string
exception Lint_errors of A.Analyzer.report

let embed_json s = match J.parse s with Ok j -> j | Error _ -> J.Str s

let name_hint = function
  | [] -> ""
  | cs -> Printf.sprintf " (did you mean %s?)" (String.concat ", " cs)

let guard_result ~id f =
  match f () with
  | v -> Ok v
  | exception E.Diag.Error d -> Error (P.diag_error ~id d)
  | exception Lint_errors report ->
    Error
      (P.error ~id
         ~data:[ ("lint", embed_json (A.Analyzer.to_json report)) ]
         P.Lint_refused "lint errors refused simulation")
  | exception Bad m -> Error (P.error ~id P.Bad_request m)
  | exception Unreadable m -> Error (P.error ~id P.Deck_unreadable m)
  | exception C.Spice.Parse_error (line, msg) ->
    Error
      (P.error ~id P.Deck_unreadable
         (Printf.sprintf "SPICE parse error at line %d: %s" line msg))
  | exception C.Netlist.Invalid msgs ->
    Error (P.error ~id P.Deck_unreadable (String.concat "; " msgs))
  | exception E.Mna.Unknown_node { node; candidates } ->
    Error
      (P.error ~id P.Bad_request
         (Printf.sprintf "unknown node %S%s" node (name_hint candidates)))
  | exception E.Mna.Unknown_branch { name; candidates } ->
    Error
      (P.error ~id P.Bad_request
         (Printf.sprintf "unknown branch %S%s" name (name_hint candidates)))
  | exception Invalid_argument m -> Error (P.error ~id P.Bad_request m)
  | exception Not_found ->
    Error (P.error ~id P.Bad_request "unknown name in request")
  | exception N.Cancel.Cancelled tok ->
    (* cooperative cancellation unwound the work at an iteration
       boundary; report how far it got so the client can reason about
       a retry budget *)
    Error
      (P.error ~id
         ~data:
           [
             ( "progress",
               J.Obj
                 [ ("iterations", J.Num (float_of_int (N.Cancel.progress tok))) ]
             );
             ("reason", J.Str (N.Cancel.reason tok));
           ]
         P.Deadline_exceeded
         "deadline exceeded; work cancelled at an iteration boundary")
  | exception e -> Error (P.error ~id P.Internal (Printexc.to_string e))

(* re-tag a shared group error with one member's id *)
let with_id json id =
  match json with
  | J.Obj members ->
    J.Obj
      (List.map
         (fun (k, v) -> if String.equal k "id" then (k, id) else (k, v))
         members)
  | other -> other

(* ------------------------------------------------------------------ *)
(* params accessors (the ["params"] object of a request) *)

let params_members = function
  | J.Null -> []
  | J.Obj members -> members
  | _ -> raise (Bad "\"params\" must be an object")

let opt_field m k = List.assoc_opt k m

let opt_float m k =
  match opt_field m k with
  | None -> None
  | Some v -> (
    match J.to_float v with
    | Some f -> Some f
    | None -> raise (Bad (Printf.sprintf "param %S must be a number" k)))

let req_float m k =
  match opt_float m k with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "missing required param %S" k))

let opt_int m k =
  match opt_field m k with
  | None -> None
  | Some v -> (
    match J.to_int v with
    | Some i -> Some i
    | None -> raise (Bad (Printf.sprintf "param %S must be an integer" k)))

let opt_bool m k =
  match opt_field m k with
  | None -> None
  | Some v -> (
    match J.to_bool v with
    | Some b -> Some b
    | None -> raise (Bad (Printf.sprintf "param %S must be a boolean" k)))

let opt_str m k =
  match opt_field m k with
  | None -> None
  | Some v -> (
    match J.to_str v with
    | Some s -> Some s
    | None -> raise (Bad (Printf.sprintf "param %S must be a string" k)))

let req_str m k =
  match opt_str m k with
  | Some s -> s
  | None -> raise (Bad (Printf.sprintf "missing required param %S" k))

let opt_str_list m k =
  match opt_field m k with
  | None -> None
  | Some v -> (
    match J.to_list v with
    | None -> raise (Bad (Printf.sprintf "param %S must be an array" k))
    | Some items ->
      Some
        (List.map
           (fun item ->
             match J.to_str item with
             | Some s -> s
             | None ->
               raise (Bad (Printf.sprintf "param %S must hold strings" k)))
           items))

(* ["freqs": [...]] or a generated span ["fstart"/"fstop"/"points"
   with log (default) or lin "spacing"] *)
let freqs_of_params m =
  match opt_field m "freqs" with
  | Some v -> (
    match J.float_list v with
    | Some (_ :: _ as l) -> Array.of_list l
    | Some [] -> raise (Bad "\"freqs\" must not be empty")
    | None -> raise (Bad "\"freqs\" must be an array of numbers"))
  | None ->
    let fstart = req_float m "fstart" and fstop = req_float m "fstop" in
    let points = Option.value (opt_int m "points") ~default:50 in
    if points < 1 then raise (Bad "\"points\" must be >= 1");
    (match Option.value (opt_str m "spacing") ~default:"log" with
    | "log" -> N.Sweep.logspace fstart fstop points
    | "lin" -> N.Sweep.linspace fstart fstop points
    | other ->
      raise (Bad (Printf.sprintf "unknown spacing %S (log or lin)" other)))

(* ------------------------------------------------------------------ *)
(* deck resolution and compilation *)

let source_text = function
  | P.Inline s -> s
  | P.Path p -> (
    try In_channel.with_open_bin p In_channel.input_all
    with Sys_error m -> raise (Unreadable m))

let source_name = function P.Inline _ -> "<inline>" | P.Path p -> p

let require_source (req : P.request) =
  match req.P.source with
  | Some s -> s
  | None ->
    raise
      (Bad
         (Printf.sprintf "verb %S needs a deck (\"deck\" or \"deck_path\")"
            (P.verb_name req.P.verb)))

(* reserved override keys steering server-side model-order reduction:
   they are configuration, not element values, so they are peeled off
   before apply_overrides's unknown-element check.  deck_key digests
   the raw override list, so requests differing only in reduce_*
   settings compile into distinct plan-cache entries. *)
let reduction_of_overrides overrides =
  let order = ref None and tol = ref None and s0 = ref None in
  let elements =
    List.filter
      (fun (k, v) ->
        match String.lowercase_ascii k with
        | "reduce_order" ->
          if Float.is_integer v && v >= 1.0 && v <= 1024.0 then
            order := Some (int_of_float v)
          else
            raise
              (Bad
                 (Printf.sprintf
                    "override \"reduce_order\": expected an integer order >= \
                     1, got %g"
                    v));
          false
        | "reduce_tol" ->
          if v > 0.0 && v < 1.0 then tol := Some v
          else
            raise
              (Bad
                 (Printf.sprintf
                    "override \"reduce_tol\": expected a relative tolerance \
                     in (0, 1), got %g"
                    v));
          false
        | "reduce_s0" ->
          if v > 0.0 then s0 := Some v
          else
            raise
              (Bad
                 (Printf.sprintf
                    "override \"reduce_s0\": expected an expansion point in \
                     Hz > 0, got %g"
                    v));
          false
        | _ -> true)
      overrides
  in
  let config =
    match (!order, !tol) with
    | None, None ->
      if !s0 <> None then
        raise
          (Bad
             "override \"reduce_s0\" needs \"reduce_order\" or \"reduce_tol\"")
      else None
    | Some _, Some _ ->
      raise (Bad "overrides \"reduce_order\" and \"reduce_tol\" conflict")
    | Some k, None ->
      Some
        {
          Snoise.Reduced_model.default_config with
          Snoise.Reduced_model.order = Snoise.Reduced_model.Fixed k;
          s0_hz =
            Option.value !s0
              ~default:Snoise.Reduced_model.default_config
                         .Snoise.Reduced_model.s0_hz;
        }
    | None, Some e ->
      Some
        {
          Snoise.Reduced_model.default_config with
          Snoise.Reduced_model.order = Snoise.Reduced_model.Auto e;
          s0_hz =
            Option.value !s0
              ~default:Snoise.Reduced_model.default_config
                         .Snoise.Reduced_model.s0_hz;
        }
  in
  (elements, config)

let apply_overrides nl overrides =
  if overrides = [] then nl
  else begin
    let wanted = Hashtbl.create 8 in
    List.iter
      (fun (k, v) -> Hashtbl.replace wanted (String.lowercase_ascii k) v)
      overrides;
    let used = Hashtbl.create 8 in
    let subst e =
      let name = String.lowercase_ascii (C.Element.name e) in
      match Hashtbl.find_opt wanted name with
      | None -> e
      | Some v ->
        Hashtbl.replace used name ();
        (match e with
        | C.Element.Resistor r -> C.Element.Resistor { r with ohms = v }
        | C.Element.Capacitor c -> C.Element.Capacitor { c with farads = v }
        | C.Element.Inductor l -> C.Element.Inductor { l with henries = v }
        | C.Element.Vsource s ->
          C.Element.Vsource { s with wave = C.Waveform.dc v }
        | C.Element.Isource s ->
          C.Element.Isource { s with wave = C.Waveform.dc v }
        | C.Element.Vccs g -> C.Element.Vccs { g with gm = v }
        | C.Element.Vcvs g -> C.Element.Vcvs { g with gain = v }
        | C.Element.Mosfet _ | C.Element.Varactor _ ->
          raise
            (Bad
               (Printf.sprintf
                  "override %S: only R/C/L/V/I/G/E values can be overridden"
                  name)))
    in
    let elements = List.map subst (C.Netlist.elements nl) in
    List.iter
      (fun (k, _) ->
        if not (Hashtbl.mem used (String.lowercase_ascii k)) then
          raise (Bad (Printf.sprintf "override %S names no deck element" k)))
      overrides;
    C.Netlist.create ~title:(C.Netlist.title nl)
      ~pragmas:(C.Netlist.pragmas nl)
      ~directives:(C.Netlist.directives nl)
      ~locs:(C.Netlist.element_locs nl) elements
  end

(* parse (cached), apply overrides; the compiled result is lint-gated
   with a wire-structured refusal and cached under the content key *)
let netlist_of t ~src ~text ~overrides =
  let nl =
    Plan_cache.find_netlist t.cache ~text ~parse:(fun s ->
        C.Spice.of_string ~file:(source_name src) s)
  in
  let element_overrides, reduce = reduction_of_overrides overrides in
  let nl = apply_overrides nl element_overrides in
  match reduce with
  | None -> (nl, None)
  | Some config -> Snoise.Reduced_model.reduce_deck_certified ~config nl

let journal_compile t ~key ~text ~overrides =
  match t.journal with
  | None -> ()
  | Some j ->
    let fresh =
      with_lock t (fun () ->
          if t.journaling && not (Hashtbl.mem t.journaled key) then begin
            Hashtbl.replace t.journaled key ();
            true
          end
          else false)
    in
    if fresh then Journal.append j { Journal.text; overrides }

let compiled_of t ~src ~text ~overrides =
  let key = Plan_cache.deck_key ~text ~overrides in
  let result =
    Plan_cache.find_compiled t.cache ~key ~compile:(fun () ->
        let nl, reduced = netlist_of t ~src ~text ~overrides in
        let report = A.Analyzer.analyze nl in
        (match A.Analyzer.errors report with
        | [] -> ()
        | _ -> raise (Lint_errors report));
        {
          Plan_cache.cp_plan = Flow.compile_deck ~lint:false nl;
          cp_reduced = Option.map fst reduced;
          cp_cert = Option.bind reduced snd;
        })
  in
  (match result with
  | _, P.Miss -> journal_compile t ~key ~text ~overrides
  | _ -> ());
  let cp, note = result in
  (cp.Plan_cache.cp_plan, note)

(* ------------------------------------------------------------------ *)
(* result rendering *)

let cx_json (c : Complex.t) = J.Arr [ J.Num c.Complex.re; J.Num c.Complex.im ]

let float_arr a = J.Arr (Array.to_list (Array.map (fun v -> J.Num v) a))

let ac_points_json ~nodes ~freqs table =
  J.Arr
    (Array.to_list
       (Array.map
          (fun freq ->
            let values : (string * Complex.t) list = Hashtbl.find table freq in
            J.Obj
              [
                ("freq", J.Num freq);
                ( "v",
                  J.Obj
                    (List.map
                       (fun n -> (n, cx_json (List.assoc n values)))
                       nodes) );
              ])
          freqs))

let noise_points_json ~with_contributions ~freqs table =
  J.Arr
    (Array.to_list
       (Array.map
          (fun freq ->
            let (p : E.Noise.point) = Hashtbl.find table freq in
            let base =
              [
                ("freq", J.Num freq);
                ("total_psd", J.Num p.E.Noise.total_psd);
                ("spot_nv", J.Num (E.Noise.spot_nv p));
              ]
            in
            let members =
              if with_contributions then
                base
                @ [
                    ( "contributions",
                      J.Arr
                        (List.map
                           (fun (c : E.Noise.contribution) ->
                             J.Obj
                               [
                                 ("element", J.Str c.E.Noise.element);
                                 ("psd", J.Num c.E.Noise.psd);
                               ])
                           p.E.Noise.contributions) );
                  ]
              else base
            in
            J.Obj members)
          freqs))

(* ------------------------------------------------------------------ *)
(* batching: one signature per sweep-shaped request, so [drain] can
   coalesce same-plan same-node requests into one pool dispatch *)

type sweep_sig = {
  sg_key : string;  (* plan-cache key: deck digest + overrides *)
  sg_src : P.source;
  sg_text : string;
  sg_overrides : (string * float) list;
  sg_columns : string list;  (* AC probe nodes, or the noise output *)
  sg_freqs : float array;
  sg_contributions : bool;  (* noise only: render per-element PSDs *)
  sg_deadline_ms : float option;  (* only equal deadlines coalesce *)
}

let ac_signature (req : P.request) =
  let m = params_members req.P.params in
  let nodes =
    match opt_str_list m "nodes" with
    | Some (_ :: _ as ns) -> ns
    | Some [] -> raise (Bad "\"nodes\" must not be empty")
    | None -> raise (Bad "missing required param \"nodes\"")
  in
  let src = require_source req in
  let text = source_text src in
  {
    sg_key = Plan_cache.deck_key ~text ~overrides:req.P.overrides;
    sg_src = src;
    sg_text = text;
    sg_overrides = req.P.overrides;
    sg_columns = nodes;
    sg_freqs = freqs_of_params m;
    sg_contributions = false;
    sg_deadline_ms = req.P.deadline_ms;
  }

let noise_signature (req : P.request) =
  let m = params_members req.P.params in
  let output = req_str m "output" in
  let src = require_source req in
  let text = source_text src in
  {
    sg_key = Plan_cache.deck_key ~text ~overrides:req.P.overrides;
    sg_src = src;
    sg_text = text;
    sg_overrides = req.P.overrides;
    sg_columns = [ output ];
    sg_contributions = Option.value (opt_bool m "contributions") ~default:false;
    sg_freqs = freqs_of_params m;
    sg_deadline_ms = req.P.deadline_ms;
  }

let compatible a b =
  String.equal a.sg_key b.sg_key
  && List.length a.sg_columns = List.length b.sg_columns
  && List.for_all2 String.equal a.sg_columns b.sg_columns
  (* a bounded and an unbounded request must not share a fate, and
     mixed deadlines would cancel the whole group at the earliest one *)
  && Option.equal Float.equal a.sg_deadline_ms b.sg_deadline_ms

let union_freqs members =
  List.concat_map (fun (_, sg) -> Array.to_list sg.sg_freqs) members
  |> List.sort_uniq compare
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* per-verb handlers.  Each returns (result, plan note, bias note). *)

let run_op t (req : P.request) =
  let src = require_source req in
  let text = source_text src in
  let compiled, plan_note =
    compiled_of t ~src ~text ~overrides:req.P.overrides
  in
  let bias_note =
    if Flow.compiled_bias_cached compiled then P.Hit else P.Miss
  in
  let dc = Flow.compiled_bias compiled in
  let m = params_members req.P.params in
  let nodes =
    match opt_str_list m "nodes" with
    | Some ns -> ns
    | None ->
      Array.to_list (E.Mna.node_names (Flow.compiled_mna compiled))
      |> List.sort String.compare
  in
  let voltages = List.map (fun n -> (n, J.Num (E.Dc.voltage dc n))) nodes in
  (J.Obj [ ("voltages", J.Obj voltages) ], plan_note, bias_note)

let run_tran t (req : P.request) =
  let src = require_source req in
  let text = source_text src in
  let compiled, plan_note =
    compiled_of t ~src ~text ~overrides:req.P.overrides
  in
  let m = params_members req.P.params in
  let tstop = req_float m "tstop" and dt = req_float m "dt" in
  if tstop <= 0.0 || dt <= 0.0 then
    raise (Bad "\"tstop\" and \"dt\" must be > 0");
  let n_points = int_of_float (Float.round (tstop /. dt)) + 1 in
  if n_points > t.config.tran_max_points then
    raise
      (Bad
         (Printf.sprintf
            "%d points exceed the service limit of %d (raise \"dt\" or \
             split the window)"
            n_points t.config.tran_max_points));
  let method_ =
    match Option.value (opt_str m "method") ~default:"trapezoidal" with
    | "trapezoidal" | "trap" -> E.Tran.Trapezoidal
    | "backward-euler" | "be" -> E.Tran.Backward_euler
    | other ->
      raise
        (Bad
           (Printf.sprintf "unknown method %S (trapezoidal or backward-euler)"
              other))
  in
  let options =
    { E.Tran.default_options with
      E.Tran.method_ = method_;
      record = opt_str_list m "nodes" }
  in
  let ds =
    E.Tran.simulate ~options ~tstop ~dt (Flow.compiled_netlist compiled)
  in
  let waves =
    Array.to_list
      (Array.mapi
         (fun k name -> (name, float_arr ds.E.Tran.data.(k)))
         ds.E.Tran.names)
  in
  let truncated =
    match ds.E.Tran.truncated with
    | None -> J.Null
    | Some d -> embed_json (E.Diag.to_json d)
  in
  ( J.Obj
      [
        ("times", float_arr ds.E.Tran.times);
        ("waves", J.Obj waves);
        ("truncated", truncated);
      ],
    plan_note,
    P.Not_applicable )

let run_lint t (req : P.request) =
  let src = require_source req in
  let text = source_text src in
  let nl, _ = netlist_of t ~src ~text ~overrides:req.P.overrides in
  let m = params_members req.P.params in
  let strict = Option.value (opt_bool m "strict") ~default:false in
  let parse_ignore s =
    match String.index_opt s '=' with
    | None -> (s, None)
    | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let config =
    {
      A.Analyzer.default with
      A.Analyzer.disabled =
        Option.value (opt_str_list m "disable") ~default:[];
      ignores =
        List.map parse_ignore
          (Option.value (opt_str_list m "ignore") ~default:[]);
    }
  in
  let report = A.Analyzer.analyze ~config nl in
  let failing =
    A.Analyzer.errors report <> []
    || (strict && A.Analyzer.warnings report <> [])
  in
  ( J.Obj
      [
        ("report", embed_json (A.Analyzer.to_json report));
        ("failing", J.Bool failing);
      ],
    P.Not_applicable,
    P.Not_applicable )

(* the verify verb: three modes, picked by the request shape.
   A deck source runs the full numerical pre-flight; params.cache_dir
   re-judges an on-disk tile-cache directory from certificates alone;
   neither re-verifies the resident plan cache.  All three are
   hash-or-LDL^T work — never an extraction, solve or CG iteration. *)

let span_json (s : A.Numeric.span) =
  J.Obj
    [
      ("node", J.Str s.A.Numeric.sp_node);
      ("ratio", J.Num s.A.Numeric.sp_ratio);
      ( "hi",
        J.Obj
          [
            ("element", J.Str (fst s.A.Numeric.sp_hi));
            ("siemens", J.Num (snd s.A.Numeric.sp_hi));
          ] );
      ( "lo",
        J.Obj
          [
            ("element", J.Str (fst s.A.Numeric.sp_lo));
            ("siemens", J.Num (snd s.A.Numeric.sp_lo));
          ] );
      ("digits", J.Num s.A.Numeric.sp_digits);
    ]

let stiffness_json = function
  | None -> J.Null
  | Some (st : A.Numeric.stiffness) ->
    J.Obj
      [
        ("fast_node", J.Str st.A.Numeric.st_fast_node);
        ("fast_tau_s", J.Num st.A.Numeric.st_fast_tau);
        ("slow_node", J.Str st.A.Numeric.st_slow_node);
        ("slow_tau_s", J.Num st.A.Numeric.st_slow_tau);
        ("ratio", J.Num st.A.Numeric.st_ratio);
        ("suggested_dt_s", J.Num st.A.Numeric.st_dt);
        ("steps_to_cover", J.Num st.A.Numeric.st_steps);
      ]

let pool_defect_json (d : A.Numeric.pool_defect) =
  J.Obj
    [
      ( "pencil",
        J.Str
          (match d.A.Numeric.pd_pencil with
          | `Conductance -> "conductance"
          | `Capacitance -> "capacitance") );
      ("node", J.Str d.A.Numeric.pd_node);
      ("defect", J.Num d.A.Numeric.pd_defect);
      ("tolerance", J.Num d.A.Numeric.pd_tol);
      ("dim", J.Num (float_of_int d.A.Numeric.pd_dim));
      ("negative_branches", J.Num (float_of_int d.A.Numeric.pd_negative));
    ]

let run_verify t (req : P.request) =
  let m = params_members req.P.params in
  let num i = J.Num (float_of_int i) in
  match (opt_str m "cache_dir", req.P.source) with
  | Some _, Some _ ->
    raise (Bad "give a deck or \"cache_dir\", not both")
  | Some dir, None ->
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      raise (Bad (Printf.sprintf "cache_dir %S is not a directory" dir));
    let module SC = Sn_substrate.Cache in
    let v = SC.verify_dir (SC.create ~dir) in
    ( J.Obj
        [
          ("schema_version", num A.Analyzer.schema_version);
          ("mode", J.Str "cache");
          ("dir", J.Str dir);
          ( "entries",
            J.Arr
              (List.map
                 (fun (key, status) ->
                   J.Obj
                     (("key", J.Str key)
                      :: ("status", J.Str (SC.status_name status))
                      ::
                      (match status with
                      | SC.Bad why -> [ ("detail", J.Str why) ]
                      | _ -> [])))
                 v.SC.vf_entries) );
          ("certified", num v.SC.vf_certified);
          ("recertified", num v.SC.vf_recertified);
          ("stale", num v.SC.vf_stale);
          ("bad", num v.SC.vf_bad);
          ("failing", J.Bool (v.SC.vf_bad > 0));
        ],
      P.Not_applicable,
      P.Not_applicable )
  | None, Some src ->
    let text = source_text src in
    let nl, _ = netlist_of t ~src ~text ~overrides:req.P.overrides in
    let p = Flow.preflight nl in
    ( J.Obj
        [
          ("schema_version", num A.Analyzer.schema_version);
          ("mode", J.Str "deck");
          ("report", embed_json (A.Analyzer.to_json p.Flow.pf_report));
          ("conditioning", J.Arr (List.map span_json p.Flow.pf_spans));
          ("stiffness", stiffness_json p.Flow.pf_stiffness);
          ("pool", J.Arr (List.map pool_defect_json p.Flow.pf_pool));
          ( "reduction",
            J.Str (Flow.reduction_verdict_name p.Flow.pf_reduction) );
          ("failing", J.Bool (Flow.preflight_failing p));
        ],
      P.Not_applicable,
      P.Not_applicable )
  | None, None ->
    let pv = Plan_cache.verify_plans t.cache in
    ( J.Obj
        [
          ("schema_version", num A.Analyzer.schema_version);
          ("mode", J.Str "plans");
          ("plans", num pv.Plan_cache.pv_plans);
          ("exact", num pv.Plan_cache.pv_exact);
          ("certified", num pv.Plan_cache.pv_certified);
          ("uncertified", num pv.Plan_cache.pv_uncertified);
          ("bad", num pv.Plan_cache.pv_bad);
          ("failing", J.Bool (pv.Plan_cache.pv_bad > 0));
        ],
      P.Not_applicable,
      P.Not_applicable )

let run_extract t (req : P.request) =
  let src = require_source req in
  let text = source_text src in
  let macro, note =
    Plan_cache.find_macro t.cache ~text ~extract:(fun () ->
        let layout = Sn_layout.Layout_io.of_string text in
        Sn_substrate.Extractor.extract_from_layout ~tech:Sn_tech.Tech.imec018
          layout)
  in
  let resistors =
    List.map
      (fun (a, b, r) -> J.Arr [ J.Str a; J.Str b; J.Num r ])
      (Sn_substrate.Macromodel.to_resistors macro)
  in
  ( J.Obj
      [
        ( "ports",
          J.Arr
            (List.map (fun p -> J.Str p)
               (Sn_substrate.Macromodel.port_names macro)) );
        ("resistors", J.Arr resistors);
      ],
    note,
    P.Not_applicable )

let run_spur t (req : P.request) =
  let m = params_members req.P.params in
  let f_noise = req_float m "f_noise" in
  let vtune = Option.value (opt_float m "vtune") ~default:0.45 in
  let p_noise_dbm = Option.value (opt_float m "p_noise_dbm") ~default:(-5.0) in
  let nx = Option.value (opt_int m "nx") ~default:48 in
  let ny = Option.value (opt_int m "ny") ~default:48 in
  if nx < 4 || ny < 4 then raise (Bad "\"nx\"/\"ny\" must be >= 4");
  let key = Printf.sprintf "%.17g:%d:%d" vtune nx ny in
  let cached =
    with_lock t (fun () ->
        match Sn_rf.Lru.find t.flows key with
        | Some f ->
          t.flow_hits <- t.flow_hits + 1;
          Some f
        | None ->
          t.flow_misses <- t.flow_misses + 1;
          None)
  in
  let flow, note =
    match cached with
    | Some f -> (f, P.Hit)
    | None ->
      let grid =
        { Flow.default_options.Flow.grid with
          Sn_substrate.Grid.nx = nx;
          ny = ny }
      in
      let options = { Flow.default_options with Flow.grid = grid } in
      let f = Flow.build_vco ~options Sn_testchip.Vco_chip.default ~vtune in
      with_lock t (fun () -> Sn_rf.Lru.add t.flows key f);
      (f, P.Miss)
  in
  let h = Flow.vco_transfers flow ~f_noise:[| f_noise |] in
  let spur = Flow.vco_spur flow ~h ~p_noise_dbm ~f_noise in
  let module I = Sn_rf.Impact in
  ( J.Obj
      [
        ("carrier_hz", J.Num (Flow.vco_carrier_freq flow));
        ("amplitude_v", J.Num (Flow.vco_amplitude flow));
        ("f_noise", J.Num spur.I.f_noise);
        ("lower_dbm", J.Num spur.I.lower_dbm);
        ("upper_dbm", J.Num spur.I.upper_dbm);
        ( "contributions",
          J.Arr
            (List.map
               (fun (c : I.contribution) ->
                 J.Obj
                   [
                     ("entry", J.Str c.I.entry_label);
                     ("h_mag", J.Num c.I.h_mag);
                     ("spur_dbm", J.Num c.I.spur_dbm);
                   ])
               spur.I.contributions) );
      ],
    note,
    P.Not_applicable )

(* ------------------------------------------------------------------ *)
(* memory watermark: Gc heap words plus the plan cache's own size
   accounting, checked at admission so the service answers [busy]
   before the OOM killer answers for us *)

let words_to_mb w = float_of_int w *. float_of_int (Sys.word_size / 8) /. 1e6

let heap_mb () = words_to_mb (Gc.quick_stat ()).Gc.heap_words

let mem_pressure_mb t =
  Float.max (heap_mb ()) (words_to_mb (Plan_cache.plan_words t.cache))

let over_watermark t = mem_pressure_mb t > float_of_int t.config.mem_watermark_mb

(* Shed LRU state and compact.  Rate-limited: if a shed five seconds
   ago did not get us under the watermark, another one will not either
   — go straight to backpressure instead of thrashing the compactor. *)
let try_shed t =
  let now = Unix.gettimeofday () in
  let allowed =
    with_lock t (fun () ->
        if now -. t.last_shed < 5.0 then false
        else begin
          t.last_shed <- now;
          t.shed_events <- t.shed_events + 1;
          true
        end)
  in
  if allowed then begin
    let resident = (Plan_cache.stats t.cache).Plan_cache.plans in
    let dropped = Plan_cache.shed t.cache ~keep:(resident / 2) in
    let flows_dropped =
      with_lock t (fun () ->
          Sn_rf.Lru.trim t.flows
            ~max_entries:(Sn_rf.Lru.length t.flows / 2))
    in
    with_lock t (fun () -> t.shed_plans <- t.shed_plans + dropped);
    Log.warn (fun m ->
        m "memory watermark: shed %d plan(s), %d flow(s), compacting"
          dropped flows_dropped);
    Gc.compact ()
  end

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_json t =
  let cs = Plan_cache.stats t.cache in
  let pool = Snoise.Sweep.stats () in
  let tile = Sn_substrate.Cache.resolution () in
  let verb_table table to_json =
    with_lock t (fun () ->
        Hashtbl.fold (fun k v acc -> (k, to_json v) :: acc) table []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))
  in
  let ms v = Float.round (v *. 1000.0) /. 1000.0 in
  let num i = J.Num (float_of_int i) in
  J.Obj
    [
      ("uptime_s", J.Num (Unix.gettimeofday () -. t.started));
      ("requests", num t.requests_total);
      ("responses", num t.responses_total);
      ("errors", num t.errors_total);
      ("by_verb", J.Obj (verb_table t.verb_counts num));
      ( "queue",
        J.Obj
          [
            ("capacity", num t.config.max_queue);
            ("depth", num (queue_depth t));
            ("max_depth", num t.max_depth);
            ("client_quota", num t.config.client_quota);
            ("rejected_busy", num t.rejected_busy);
            ("rejected_quota", num t.rejected_quota);
          ] );
      ( "batch",
        J.Obj
          [
            ("dispatches", num t.dispatches);
            ("coalesced_requests", num t.coalesced);
          ] );
      ( "plan_cache",
        J.Obj
          [
            ("plans", num cs.Plan_cache.plans);
            ("certified_plans", num cs.Plan_cache.certified_plans);
            ("plan_hits", num cs.Plan_cache.plan_hits);
            ("plan_misses", num cs.Plan_cache.plan_misses);
            ("parse_hits", num cs.Plan_cache.parse_hits);
            ("parse_misses", num cs.Plan_cache.parse_misses);
            ("macro_hits", num cs.Plan_cache.macro_hits);
            ("macro_misses", num cs.Plan_cache.macro_misses);
            ("evictions", num cs.Plan_cache.evictions);
            ("plan_words", num cs.Plan_cache.plan_words);
            ("shed_plans", num t.shed_plans);
            ("flows", num (Sn_rf.Lru.length t.flows));
            ("flow_capacity", num (Sn_rf.Lru.capacity t.flows));
            ("flow_evictions", num (Sn_rf.Lru.evictions t.flows));
            ("flow_hits", num t.flow_hits);
            ("flow_misses", num t.flow_misses);
          ] );
      ( "timings_ms",
        J.Obj
          (("total", J.Num (ms t.svc_total_ms))
           :: ("last", J.Num (ms t.svc_last_ms))
           :: ("max", J.Num (ms t.svc_max_ms))
           :: verb_table t.verb_ms (fun v -> J.Num (ms v))) );
      ( "pool",
        J.Obj
          [
            ("jobs", num pool.E.Pool.jobs);
            ("tasks_run", num pool.E.Pool.tasks_run);
            ("batches", num pool.E.Pool.batches);
            ("cpu_seconds", J.Num (E.Pool.cpu_seconds pool));
            ("wall_seconds", J.Num pool.E.Pool.wall_seconds);
            ("imbalance", J.Num (E.Pool.imbalance pool));
          ] );
      ( "tile_cache",
        let tc = Sn_substrate.Cache.counters () in
        J.Obj
          [
            ( "origin",
              J.Str
                (Sn_substrate.Cache.origin_name tile.Sn_substrate.Cache.origin)
            );
            ( "dir",
              match tile.Sn_substrate.Cache.dir with
              | Some d -> J.Str d
              | None -> J.Null );
            ("lookups", num tc.Sn_substrate.Cache.lookups);
            ("hits", num tc.Sn_substrate.Cache.hits);
            ("rejected", num tc.Sn_substrate.Cache.rejected);
            ("stores", num tc.Sn_substrate.Cache.stores);
          ] );
      ( "reduction",
        J.Obj
          (("reductions", num (Snoise.Reduced_model.reductions ()))
          ::
          (match Snoise.Reduced_model.last_stats () with
          | None -> []
          | Some r ->
            let module R = Snoise.Reduced_model in
            [
              ("last_ports", num r.R.ports);
              ("last_internal", num r.R.internal);
              ("last_rank", num r.R.rank);
              ("last_order", num r.R.order);
              ("last_build_ms", J.Num (ms (r.R.build_seconds *. 1000.0)));
              ( "last_est_error",
                if Float.is_nan r.R.est_error then J.Null
                else J.Num r.R.est_error );
            ])) );
      ( "memory",
        J.Obj
          [
            ("watermark_mb", num t.config.mem_watermark_mb);
            ("heap_mb", J.Num (Float.round (heap_mb () *. 100.) /. 100.));
            ("shed_events", num t.shed_events);
            ("rejected_memory", num t.rejected_memory);
          ] );
      ( "cancel",
        J.Obj
          [
            ("deadline_exceeded", num t.deadline_exceeded);
            ("disconnected", num t.disconnected);
          ] );
      ("restarts", num t.restarts);
      ( "journal",
        match t.journal with
        | None -> J.Null
        | Some j ->
          J.Obj
            [
              ("path", J.Str (Journal.path j));
              ("recorded", num (Journal.recorded j));
              ("replayed", num t.journal_replayed);
            ] );
    ]

(* liveness + readiness in one verb: cheap enough for a tight probe
   loop, detailed enough for a load balancer to act on *)
let health_json t =
  let depth = queue_depth t in
  let pool = Snoise.Sweep.stats () in
  let cs = Plan_cache.stats t.cache in
  let pressure = mem_pressure_mb t in
  let watermark = float_of_int t.config.mem_watermark_mb in
  let shedding = pressure > watermark in
  let queue_full = depth >= t.config.max_queue in
  let status = if shedding || queue_full then "degraded" else "ok" in
  let num i = J.Num (float_of_int i) in
  J.Obj
    [
      ("status", J.Str status);
      ("uptime_s", J.Num (Unix.gettimeofday () -. t.started));
      ( "queue",
        J.Obj [ ("depth", num depth); ("capacity", num t.config.max_queue) ] );
      ("pool", J.Obj [ ("jobs", num pool.E.Pool.jobs) ]);
      ( "cache",
        J.Obj
          [
            ("plans", num cs.Plan_cache.plans);
            ("flows", num (Sn_rf.Lru.length t.flows));
          ] );
      ( "memory",
        J.Obj
          [
            ("pressure_mb", J.Num (Float.round (pressure *. 100.) /. 100.));
            ("watermark_mb", J.Num watermark);
            ("shedding", J.Bool shedding);
          ] );
      ("restarts", num t.restarts);
    ]

(* ------------------------------------------------------------------ *)
(* submit: parse, immediately answer control verbs and refusals, queue
   analysis work *)

let bump table k v =
  match Hashtbl.find_opt table k with
  | Some prev -> Hashtbl.replace table k (prev +. v)
  | None -> Hashtbl.replace table k v

let count table k =
  match Hashtbl.find_opt table k with
  | Some prev -> Hashtbl.replace table k (prev + 1)
  | None -> Hashtbl.replace table k 1

let note_reply t reply =
  with_lock t (fun () ->
      match reply with
      | J.Obj (("type", J.Str "error") :: _) ->
        t.errors_total <- t.errors_total + 1
      | _ -> t.responses_total <- t.responses_total + 1);
  reply

let submit t ~client line =
  let trimmed = String.trim line in
  match J.parse trimmed with
  | Error msg -> `Replied (note_reply t (P.error P.Parse_error msg))
  | Ok json -> (
    with_lock t (fun () -> t.requests_total <- t.requests_total + 1);
    match P.parse_request json with
    | Error (code, msg) ->
      let id = Option.value (J.member "id" json) ~default:J.Null in
      `Replied (note_reply t (P.error ~id code msg))
    | Ok req -> (
      with_lock t (fun () -> count t.verb_counts (P.verb_name req.P.verb));
      let served_now =
        { P.elapsed_ms = 0.0; plan = P.Not_applicable;
          bias = P.Not_applicable; batched = 1 }
      in
      match req.P.verb with
      | P.Ping ->
        `Replied
          (note_reply t
             (P.response ~id:req.P.id ~verb:P.Ping ~served:served_now
                (J.Obj [])))
      | P.Stats ->
        `Replied
          (note_reply t
             (P.response ~id:req.P.id ~verb:P.Stats ~served:served_now
                (stats_json t)))
      | P.Health ->
        `Replied
          (note_reply t
             (P.response ~id:req.P.id ~verb:P.Health ~served:served_now
                (health_json t)))
      | P.Shutdown ->
        `Shutdown
          (note_reply t
             (P.response ~id:req.P.id ~verb:P.Shutdown ~served:served_now
                (J.Obj [ ("stopping", J.Bool true) ])))
      | P.Op | P.Ac | P.Tran | P.Noise | P.Spur | P.Lint | P.Verify
      | P.Extract -> (
        (* graceful degradation: when the heap (or the accounted plan
           cache) crosses the watermark, shed LRU state once, and if
           that was not enough answer busy instead of growing toward
           the OOM killer *)
        let memory_ok =
          if not (over_watermark t) then true
          else begin
            try_shed t;
            not (over_watermark t)
          end
        in
        let arrived = Unix.gettimeofday () in
        let verdict =
          with_lock t (fun () ->
              let depth = Queue.length t.queue in
              let mine =
                Option.value (Hashtbl.find_opt t.per_client client) ~default:0
              in
              if not memory_ok then begin
                t.rejected_memory <- t.rejected_memory + 1;
                t.rejected_busy <- t.rejected_busy + 1;
                `Memory
              end
              else if depth >= t.config.max_queue then begin
                t.rejected_busy <- t.rejected_busy + 1;
                `Busy
              end
              else if mine >= t.config.client_quota then begin
                t.rejected_quota <- t.rejected_quota + 1;
                `Quota
              end
              else begin
                t.seq <- t.seq + 1;
                Queue.add { seq = t.seq; client; arrived; req } t.queue;
                Hashtbl.replace t.per_client client (mine + 1);
                t.max_depth <- max t.max_depth (depth + 1);
                `Accepted
              end)
        in
        match verdict with
        | `Accepted -> `Queued
        | `Memory ->
          `Replied
            (note_reply t
               (P.error ~id:req.P.id
                  ~data:[ ("retry_after_ms", J.Num 100.0) ]
                  P.Busy
                  (Printf.sprintf
                     "memory pressure: %.0f MB exceeds the %d MB watermark"
                     (mem_pressure_mb t) t.config.mem_watermark_mb)))
        | `Busy ->
          `Replied
            (note_reply t
               (P.error ~id:req.P.id
                  ~data:[ ("retry_after_ms", J.Num 100.0) ]
                  P.Busy
                  (Printf.sprintf "queue full (%d requests)"
                     t.config.max_queue)))
        | `Quota ->
          `Replied
            (note_reply t
               (P.error ~id:req.P.id
                  ~data:[ ("retry_after_ms", J.Num 100.0) ]
                  P.Quota_exceeded
                  (Printf.sprintf "client has %d requests queued (quota %d)"
                     t.config.client_quota t.config.client_quota))))))

(* ------------------------------------------------------------------ *)
(* drain: execute everything queued, coalescing sweep-shaped work *)

let finish_timing t verb t0 =
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  with_lock t (fun () ->
      t.svc_total_ms <- t.svc_total_ms +. elapsed_ms;
      t.svc_last_ms <- elapsed_ms;
      if elapsed_ms > t.svc_max_ms then t.svc_max_ms <- elapsed_ms;
      bump t.verb_ms (P.verb_name verb) elapsed_ms);
  elapsed_ms

(* chaos point: die abruptly mid-request, exactly as a segfault or an
   OOM kill would — no at_exit, no cleanup.  The supervisor's job is
   to make this invisible to the next request. *)
let fire_kill () =
  if E.Fault.fire E.Fault.Server_kill then begin
    Log.err (fun m -> m "injected fault: killing worker mid-request");
    Unix._exit 70
  end

(* Arm the cooperative-cancellation token for one dispatch.  The
   deadline counts from admission ([arrived]), so time spent queued
   burns budget too; a request that expired while queued is refused
   before any engine work. *)
let run_with_deadline t ~arrived ~deadline_ms f =
  match deadline_ms with
  | None -> f ()
  | Some ms -> (
    let tok = N.Cancel.create ~deadline:(arrived +. (ms /. 1000.0)) () in
    try
      N.Cancel.check tok;
      N.Cancel.with_token tok f
    with N.Cancel.Cancelled _ as e ->
      with_lock t (fun () -> t.deadline_exceeded <- t.deadline_exceeded + 1);
      raise e)

let serve_single t (p : pending) =
  let t0 = Unix.gettimeofday () in
  let outcome =
    guard_result ~id:p.req.P.id (fun () ->
        fire_kill ();
        run_with_deadline t ~arrived:p.arrived ~deadline_ms:p.req.P.deadline_ms
          (fun () ->
            match p.req.P.verb with
            | P.Op -> run_op t p.req
            | P.Tran -> run_tran t p.req
            | P.Lint -> run_lint t p.req
            | P.Verify -> run_verify t p.req
            | P.Extract -> run_extract t p.req
            | P.Spur -> run_spur t p.req
            | P.Ac | P.Noise | P.Stats | P.Ping | P.Health | P.Shutdown ->
              assert false))
  in
  let elapsed_ms = finish_timing t p.req.P.verb t0 in
  with_lock t (fun () -> t.dispatches <- t.dispatches + 1);
  match outcome with
  | Error reply -> note_reply t reply
  | Ok (result, plan, bias) ->
    note_reply t
      (P.response ~id:p.req.P.id ~verb:p.req.P.verb
         ~served:{ P.elapsed_ms; plan; bias; batched = 1 }
         result)

(* serve a compatible group of AC (or noise) requests with one pool
   dispatch over the union of their frequencies.  Byte-identity with
   one-by-one serving holds because the cached plan's pivot order is
   fixed by its first (master) factorization — every dispatch refills
   the same pattern numerically. *)
let serve_sweep_group t ~verb (members : (pending * sweep_sig) list) emit =
  let t0 = Unix.gettimeofday () in
  let leader = snd (List.hd members) in
  let n = List.length members in
  with_lock t (fun () ->
      t.dispatches <- t.dispatches + 1;
      if n > 1 then t.coalesced <- t.coalesced + (n - 1));
  let union = union_freqs members in
  Log.debug (fun m ->
      m "dispatch %s: %d request(s), %d union point(s)" (P.verb_name verb) n
        (Array.length union));
  (* the earliest member's admission time bounds the whole group (all
     members carry the same deadline_ms by [compatible]) *)
  let arrived =
    List.fold_left
      (fun acc ((p : pending), _) -> Float.min acc p.arrived)
      Float.infinity members
  in
  let outcome =
    guard_result ~id:J.Null (fun () ->
        fire_kill ();
        run_with_deadline t ~arrived ~deadline_ms:leader.sg_deadline_ms
          (fun () ->
        let compiled, plan_note =
          compiled_of t ~src:leader.sg_src ~text:leader.sg_text
            ~overrides:leader.sg_overrides
        in
        let bias_note =
          if Flow.compiled_bias_cached compiled then P.Hit else P.Miss
        in
        let acp = Flow.compiled_ac_plan compiled in
        let render =
          match verb with
          | P.Ac ->
            let points =
              E.Ac.sweep_plan acp ~freqs:union ~nodes:leader.sg_columns
            in
            let table = Hashtbl.create (Array.length union) in
            Array.iter
              (fun (pt : E.Ac.sweep_point) ->
                Hashtbl.replace table pt.E.Ac.freq pt.E.Ac.values)
              points;
            fun sg ->
              J.Obj
                [
                  ( "points",
                    ac_points_json ~nodes:sg.sg_columns ~freqs:sg.sg_freqs
                      table );
                ]
          | P.Noise ->
            let dc = Flow.compiled_bias compiled in
            let output = List.hd leader.sg_columns in
            let points = E.Noise.analyze_plan ~dc acp ~output ~freqs:union in
            let table = Hashtbl.create (Array.length union) in
            List.iter
              (fun (pt : E.Noise.point) ->
                Hashtbl.replace table pt.E.Noise.freq pt)
              points;
            fun sg ->
              let points_json =
                noise_points_json ~with_contributions:sg.sg_contributions
                  ~freqs:sg.sg_freqs table
              in
              let total_rms =
                if Array.length sg.sg_freqs >= 2 then
                  J.Num
                    (E.Noise.total_rms
                       (Array.to_list
                          (Array.map (Hashtbl.find table) sg.sg_freqs)))
                else J.Null
              in
              J.Obj [ ("points", points_json); ("total_rms", total_rms) ]
          | _ -> assert false
        in
        (plan_note, bias_note, render)))
  in
  let elapsed_ms = finish_timing t verb t0 in
  match outcome with
  | Error failure ->
    (* the group failed as a unit (lint refusal, singular pivot, bad
       deck): every member gets the error, tagged with its own id *)
    List.iter
      (fun ((p : pending), _) ->
        emit p.seq p.client (note_reply t (with_id failure p.req.P.id)))
      members
  | Ok (plan_note, bias_note, render) ->
    List.iteri
      (fun i ((p : pending), sg) ->
        (* the leader reports the real cache outcome; coalesced
           followers ran off the (by now resident) plan *)
        let plan = if i = 0 then plan_note else P.Hit in
        let bias = if i = 0 then bias_note else P.Hit in
        emit p.seq p.client
          (note_reply t
             (P.response ~id:p.req.P.id ~verb
                ~served:{ P.elapsed_ms; plan; bias; batched = n }
                (render sg))))
      members

let drain ?(alive = fun _ -> true) t =
  let items =
    with_lock t (fun () ->
        let items = List.of_seq (Queue.to_seq t.queue) in
        Queue.clear t.queue;
        Hashtbl.reset t.per_client;
        items)
  in
  (* a client that hung up while queued gets no work done on its
     behalf: the reply would be dropped anyway, so the pool slot goes
     to a request somebody is still waiting for *)
  let items =
    List.filter
      (fun (p : pending) ->
        alive p.client
        ||
        begin
          with_lock t (fun () -> t.disconnected <- t.disconnected + 1);
          Log.info (fun m ->
              m "dropping request from disconnected client #%d" p.client);
          false
        end)
      items
  in
  let results = ref [] in
  let emit seq client reply = results := (seq, (client, reply)) :: !results in
  let taken = Hashtbl.create 16 in
  let try_signature (p : pending) =
    match p.req.P.verb with
    | P.Ac -> Some (guard_result ~id:p.req.P.id (fun () -> ac_signature p.req))
    | P.Noise ->
      Some (guard_result ~id:p.req.P.id (fun () -> noise_signature p.req))
    | _ -> None
  in
  List.iter
    (fun (p : pending) ->
      if not (Hashtbl.mem taken p.seq) then begin
        Hashtbl.replace taken p.seq ();
        match try_signature p with
        | None -> emit p.seq p.client (serve_single t p)
        | Some (Error reply) -> emit p.seq p.client (note_reply t reply)
        | Some (Ok leader_sig) ->
          let group = ref [ (p, leader_sig) ] in
          List.iter
            (fun (q : pending) ->
              if (not (Hashtbl.mem taken q.seq)) && q.req.P.verb = p.req.P.verb
              then
                match try_signature q with
                | Some (Ok qsig) when compatible leader_sig qsig ->
                  Hashtbl.replace taken q.seq ();
                  group := (q, qsig) :: !group
                | _ -> ())
            items;
          serve_sweep_group t ~verb:p.req.P.verb (List.rev !group) emit
      end)
    items;
  List.sort (fun (a, _) (b, _) -> compare a b) !results |> List.map snd

(* Replay the warmup journal into the plan cache (most recent
   [max_decks] unique decks), then compact the file to exactly those
   entries.  Failures are counted, not raised: a deck that stopped
   compiling only costs its own warmth. *)
let warm_from_journal t =
  match t.journal with
  | None -> (0, 0)
  | Some j ->
    let entries = Journal.replay ~path:(Journal.path j) in
    let key_of (e : Journal.entry) =
      Plan_cache.deck_key ~text:e.Journal.text ~overrides:e.Journal.overrides
    in
    let seen = Hashtbl.create 16 in
    let unique =
      List.rev entries
      |> List.filter (fun e ->
             let key = key_of e in
             if Hashtbl.mem seen key then false
             else begin
               Hashtbl.replace seen key ();
               true
             end)
      |> List.filteri (fun i _ -> i < t.config.max_decks)
      |> List.rev
    in
    t.journaling <- false;
    let ok = ref 0 and failed = ref 0 in
    List.iter
      (fun (e : Journal.entry) ->
        match
          compiled_of t ~src:(P.Inline e.Journal.text) ~text:e.Journal.text
            ~overrides:e.Journal.overrides
        with
        | _ -> incr ok
        | exception _ -> incr failed)
      unique;
    t.journaling <- true;
    List.iter (fun e -> Hashtbl.replace t.journaled (key_of e) ()) unique;
    with_lock t (fun () -> t.journal_replayed <- !ok);
    if unique <> [] then Journal.rewrite j unique;
    Log.info (fun m ->
        m "warmup journal: %d plan(s) recompiled, %d failed" !ok !failed);
    (!ok, !failed)

let handle t ~client line =
  match submit t ~client line with
  | `Replied r | `Shutdown r -> [ r ]
  | `Queued ->
    drain t
    |> List.filter_map (fun (c, reply) ->
           if c = client then Some reply else None)
