(** The serving core: a bounded request queue with per-client quotas,
    a coalescing scheduler, and the verb handlers — everything
    [snoise serve] does except the sockets.

    Keeping the socket layer out makes the whole protocol unit-testable
    in-process: {!submit} accepts one raw request line exactly as it
    would arrive on the wire, {!drain} executes everything queued and
    returns the reply objects in submission order, and the bench
    drives sustained workloads through the same two calls the real
    server uses.

    {b Batching.}  {!drain} coalesces compatible queued requests —
    same compiled plan (deck digest + overrides) and same node/output
    set, differing only in sweep frequencies — into a single
    pool dispatch over the union of their points, then splits the
    results back per request.  Because a cached plan's pivot order is
    fixed by its first factorization, batched replies are
    byte-identical to the same requests served one by one.

    {b Backpressure.}  A full queue answers [busy] (with a
    [retry_after_ms] hint), a client exceeding its in-queue quota
    answers [quota-exceeded]; neither disconnects, and neither is ever
    silently dropped. *)

type config = {
  max_queue : int;  (** bounded-queue capacity (default 256) *)
  client_quota : int;
      (** max requests one client may have queued (default 32) *)
  max_decks : int;  (** plan-cache LRU bound (default 128) *)
  tran_max_points : int;
      (** largest transient point count a request may ask for
          (default 100_000) — a deliberate service limit so one
          request cannot wedge the daemon *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val submit :
  t -> client:int -> string ->
  [ `Queued | `Replied of Json.t | `Shutdown of Json.t ]
(** [submit t ~client line] accepts one raw request line.  Control
    verbs ([ping], [stats]), malformed lines and backpressure /
    quota refusals are answered immediately as [`Replied]; analysis
    verbs enter the queue as [`Queued]; [shutdown] returns the final
    reply as [`Shutdown] and the caller stops its loop.  Never
    raises on any input. *)

val drain : t -> (int * Json.t) list
(** Execute every queued request (coalescing where possible) and
    return [(client, reply)] pairs in submission order.  Engine
    failures become [error] replies; {!drain} itself never raises. *)

val handle : t -> client:int -> string -> Json.t list
(** [submit] then, if the request queued, [drain] — the convenience
    path for tests, the bench and the one-shot CLI client.  Returns
    only this client's replies (in a single-client process that is
    all of them). *)

val queue_depth : t -> int
(** Requests currently queued (the [stats] reply's [queue.depth]). *)

val cache : t -> Plan_cache.t
(** The service's plan cache — exposed so the bench can clear it
    between cold and warm passes. *)

val stats_json : t -> Json.t
(** The [stats] reply payload: request / error / batching counters,
    queue state, plan-cache and VCO-flow-cache hit rates, pool stats,
    per-verb service timings, and the substrate tile-cache directory
    resolution ({!Sn_substrate.Cache.resolution}). *)
