(** The serving core: a bounded request queue with per-client quotas,
    a coalescing scheduler, and the verb handlers — everything
    [snoise serve] does except the sockets.

    Keeping the socket layer out makes the whole protocol unit-testable
    in-process: {!submit} accepts one raw request line exactly as it
    would arrive on the wire, {!drain} executes everything queued and
    returns the reply objects in submission order, and the bench
    drives sustained workloads through the same two calls the real
    server uses.

    {b Batching.}  {!drain} coalesces compatible queued requests —
    same compiled plan (deck digest + overrides) and same node/output
    set, differing only in sweep frequencies — into a single
    pool dispatch over the union of their points, then splits the
    results back per request.  Because a cached plan's pivot order is
    fixed by its first factorization, batched replies are
    byte-identical to the same requests served one by one.

    {b Backpressure.}  A full queue answers [busy] (with a
    [retry_after_ms] hint), a client exceeding its in-queue quota
    answers [quota-exceeded]; neither disconnects, and neither is ever
    silently dropped.  Crossing the memory watermark sheds LRU cache
    state and, if still over, answers [busy] as well.

    {b Deadlines.}  A request carrying [deadline_ms] is served under a
    cooperative-cancellation token ({!Sn_numerics.Cancel}) armed at
    admission time; the engines poll it at iteration boundaries, so an
    expired request unwinds within one DC rung / sweep point /
    transient step / CG iteration and answers [deadline-exceeded] with
    progress counters.  Only requests with {e equal} deadlines
    coalesce. *)

type config = {
  max_queue : int;  (** bounded-queue capacity (default 256) *)
  client_quota : int;
      (** max requests one client may have queued (default 32) *)
  max_decks : int;  (** plan-cache LRU bound (default 128) *)
  tran_max_points : int;
      (** largest transient point count a request may ask for
          (default 100_000) — a deliberate service limit so one
          request cannot wedge the daemon *)
  max_flows : int;
      (** LRU bound on the per-[(vtune, grid)] VCO flow cache
          (default 8) *)
  mem_watermark_mb : int;
      (** memory watermark in MB (default 4096): above it the service
          sheds LRU plans/flows, compacts, and answers [busy] with
          [retry_after_ms] rather than grow toward the OOM killer *)
  warmup_journal : string option;
      (** path of the fail-soft warmup journal ({!Journal}); [None]
          (the default) disables journalling *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val submit :
  t -> client:int -> string ->
  [ `Queued | `Replied of Json.t | `Shutdown of Json.t ]
(** [submit t ~client line] accepts one raw request line.  Control
    verbs ([ping], [stats]), malformed lines and backpressure /
    quota refusals are answered immediately as [`Replied]; analysis
    verbs enter the queue as [`Queued]; [shutdown] returns the final
    reply as [`Shutdown] and the caller stops its loop.  Never
    raises on any input. *)

val drain : ?alive:(int -> bool) -> t -> (int * Json.t) list
(** Execute every queued request (coalescing where possible) and
    return [(client, reply)] pairs in submission order.  Engine
    failures become [error] replies; {!drain} itself never raises.
    [alive] (default: everyone) is probed per queued request; work for
    clients that already hung up is skipped entirely — the reply
    would be dropped anyway, so the pool goes to somebody still
    waiting. *)

val handle : t -> client:int -> string -> Json.t list
(** [submit] then, if the request queued, [drain] — the convenience
    path for tests, the bench and the one-shot CLI client.  Returns
    only this client's replies (in a single-client process that is
    all of them). *)

val queue_depth : t -> int
(** Requests currently queued (the [stats] reply's [queue.depth]). *)

val cache : t -> Plan_cache.t
(** The service's plan cache — exposed so the bench can clear it
    between cold and warm passes. *)

val stats_json : t -> Json.t
(** The [stats] reply payload: request / error / batching counters,
    queue state, plan-cache and VCO-flow-cache hit rates, pool stats,
    per-verb service timings, memory-watermark and cancellation
    counters, the supervisor restart count, journal state, and the
    substrate tile-cache directory resolution
    ({!Sn_substrate.Cache.resolution}). *)

val health_json : t -> Json.t
(** The [health] reply payload: [status] (["ok"] / ["degraded"]),
    queue depth vs capacity, pool width, resident cache entries,
    memory pressure vs watermark, and the supervisor restart count. *)

val warm_from_journal : t -> int * int
(** Replay the configured warmup journal into the plan cache (most
    recent [max_decks] unique decks) and compact the file.  Returns
    [(recompiled, failed)]; [(0, 0)] when no journal is configured.
    Call before accepting traffic so a supervised restart serves its
    first repeat request from a warm cache. *)
