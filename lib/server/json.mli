(** Minimal JSON values for the wire protocol.

    The repo's other JSON producers ({!Sn_engine.Diag.to_json},
    [Sn_analysis.Analyzer.to_json]) hand-render strings; the server
    additionally needs to {e parse} client requests, so this module
    carries a small self-contained value type with a recursive-descent
    parser and a deterministic printer.  No external dependency.

    Printing is canonical and stable: object members keep their
    construction order, floats render as the shortest of [%.17g] (or a
    plain integer when exact), and non-finite floats render as the
    strings ["nan"], ["inf"], ["-inf"] — the same convention as
    {!Sn_engine.Diag.to_json}.  Stable bytes matter: the protocol
    tests assert that batched and individual sweeps produce
    byte-identical result payloads. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** members in construction order *)

val parse : string -> (t, string) result
(** [parse s] parses one JSON value (surrounding whitespace allowed).
    Errors carry a byte offset and a reason; nesting beyond 200 levels
    is rejected rather than risking a stack overflow on hostile
    input.  Trailing garbage after the value is an error. *)

val to_string : t -> string
(** Canonical single-line rendering (no insignificant whitespace). *)

(** {1 Accessors}

    All return [None] on a type mismatch — request handlers turn that
    into a structured [bad-request] reply, never an exception. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to [k], if any; [None] on
    non-objects. *)

val to_float : t -> float option
(** Numbers only (no string coercion). *)

val to_int : t -> int option
(** Numbers with an exact integer value. *)

val to_bool : t -> bool option

val to_str : t -> string option

val to_list : t -> t list option
(** Arrays only. *)

val float_list : t -> float list option
(** An array of numbers, e.g. a frequency list. *)
