let log_src = Logs.Src.create "sn.server.socket" ~doc:"snoise socket server"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* a line longer than this is answered with a parse-error and skipped;
   it bounds per-client buffering so one peer cannot balloon the
   daemon's memory *)
let max_line = 8 * 1024 * 1024

type client = {
  id : int;
  fd : Unix.file_descr;
  peer : string;
  buf : Buffer.t;  (* bytes read, not yet terminated by '\n' *)
  out : Buffer.t;  (* replies waiting for the fd to be writable *)
  mutable skipping : bool;  (* discarding the rest of an oversized line *)
  requires_auth : bool;  (* TCP client while --auth-token is set *)
  mutable authed : bool;
}

type t = {
  service : Service.t;
  listeners : Unix.file_descr list;
  tcp_listener : Unix.file_descr option;
  auth_token : string option;
  socket_path : string;
  clients : (Unix.file_descr, client) Hashtbl.t;
  mutable next_client : int;
  stop_flag : bool Atomic.t;
}

let service t = t.service

let stop t = Atomic.set t.stop_flag true

let unlink_stale path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ ->
    invalid_arg
      (Printf.sprintf "refusing to replace %s: existing file is not a socket"
         path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let create ?config ?tcp ?auth_token ~socket () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  unlink_stale socket;
  let unix_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind unix_fd (Unix.ADDR_UNIX socket);
  Unix.listen unix_fd 64;
  let listeners, tcp_listener =
    match tcp with
    | None -> ([ unix_fd ], None)
    | Some (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found ->
            invalid_arg (Printf.sprintf "cannot resolve host %S" host))
      in
      let tcp_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt tcp_fd Unix.SO_REUSEADDR true;
      Unix.bind tcp_fd (Unix.ADDR_INET (addr, port));
      Unix.listen tcp_fd 64;
      ([ unix_fd; tcp_fd ], Some tcp_fd)
  in
  {
    service = Service.create ?config ();
    listeners;
    tcp_listener;
    auth_token = (match auth_token with Some "" -> None | other -> other);
    socket_path = socket;
    clients = Hashtbl.create 16;
    next_client = 0;
    stop_flag = Atomic.make false;
  }

(* the ephemeral port when --tcp was given port 0 (tests) *)
let tcp_port t =
  match t.tcp_listener with
  | None -> None
  | Some fd -> (
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> Some p
    | _ -> None)

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | exception Unix.Unix_error _ -> "?"

let accept_client t listener =
  match Unix.accept listener with
  | fd, _ ->
    Unix.set_nonblock fd;
    t.next_client <- t.next_client + 1;
    let is_tcp =
      match t.tcp_listener with Some l -> l == listener | None -> false
    in
    let c =
      {
        id = t.next_client;
        fd;
        peer = peer_name fd;
        buf = Buffer.create 256;
        out = Buffer.create 256;
        skipping = false;
        requires_auth = is_tcp && t.auth_token <> None;
        authed = false;
      }
    in
    Hashtbl.replace t.clients fd c;
    Log.info (fun m -> m "client %d connected (%s)" c.id c.peer)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let close_client t (c : client) =
  Hashtbl.remove t.clients c.fd;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "client %d disconnected" c.id)

module Fault = Sn_engine.Fault

(* chaos points on the reply path: a delayed, corrupted or dropped
   reply must leave the server consistent — the client re-issues and
   gets byte-identical results *)
let enqueue_reply t c json =
  if Fault.fire Fault.Server_drop then begin
    Log.err (fun m -> m "injected fault: dropping client %d" c.id);
    close_client t c
  end
  else begin
    if Fault.fire Fault.Server_delay then begin
      Log.err (fun m -> m "injected fault: delaying reply to client %d" c.id);
      Unix.sleepf 0.2
    end;
    let line = Json.to_string json in
    let line =
      if Fault.fire Fault.Server_garble then begin
        Log.err (fun m -> m "injected fault: garbling reply to client %d" c.id);
        String.sub line 0 (String.length line / 2) ^ "#garbled#"
      end
      else line
    in
    Buffer.add_string c.out line;
    Buffer.add_char c.out '\n'
  end

(* A TCP client under --auth-token must present the shared secret as a
   top-level ["auth_token"] member; the first valid token authenticates
   the connection.  Unknown members are ignored by the request parser,
   so authenticated lines flow through unchanged.  The Unix socket is
   local and file-permission-guarded — it never requires a token. *)
let check_auth t (c : client) line =
  if (not c.requires_auth) || c.authed then `Ok
  else begin
    let expected = Option.value t.auth_token ~default:"" in
    match Json.parse (String.trim line) with
    | Ok json -> (
      let id = Option.value (Json.member "id" json) ~default:Json.Null in
      match Json.member "auth_token" json with
      | Some (Json.Str given) when Auth.equal_const expected given ->
        c.authed <- true;
        `Ok
      | Some _ ->
        `Denied
          (Protocol.error ~id Protocol.Unauthorized "invalid auth token")
      | None ->
        `Denied
          (Protocol.error ~id Protocol.Unauthorized
             "this endpoint requires \"auth_token\""))
    | Error _ ->
      (* not parseable: let the service answer parse-error without
         leaking whether a token would have been accepted *)
      `Ok
  end

(* returns [`Shutdown] when a shutdown request was accepted *)
let feed_line t (c : client) line =
  if String.trim line = "" then `Continue
  else
    match check_auth t c line with
    | `Denied reply ->
      enqueue_reply t c reply;
      `Continue
    | `Ok -> (
      match Service.submit t.service ~client:c.id line with
      | `Replied reply ->
        enqueue_reply t c reply;
        `Continue
      | `Queued -> `Continue
      | `Shutdown reply ->
        enqueue_reply t c reply;
        `Shutdown)

(* split [c.buf] into complete lines, respecting the oversized-line
   skip state *)
let drain_buffer t (c : client) =
  let verdict = ref `Continue in
  let rec next () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | None ->
      if c.skipping then Buffer.clear c.buf
      else if Buffer.length c.buf > max_line then begin
        Buffer.clear c.buf;
        c.skipping <- true;
        enqueue_reply t c
          (Protocol.error Protocol.Parse_error
             (Printf.sprintf "request line exceeds %d bytes" max_line))
      end
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear c.buf;
      Buffer.add_substring c.buf s (i + 1) (String.length s - i - 1);
      if c.skipping then c.skipping <- false
      else if String.length line > max_line then
        enqueue_reply t c
          (Protocol.error Protocol.Parse_error
             (Printf.sprintf "request line exceeds %d bytes" max_line))
      else begin
        match feed_line t c line with
        | `Continue -> ()
        | `Shutdown -> verdict := `Shutdown
      end;
      next ()
  in
  next ();
  !verdict

let read_chunk = Bytes.create 65536

let handle_readable t (c : client) =
  match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 ->
    close_client t c;
    `Continue
  | n ->
    Buffer.add_subbytes c.buf read_chunk 0 n;
    drain_buffer t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    `Continue
  | exception Unix.Unix_error _ ->
    close_client t c;
    `Continue

let handle_writable t (c : client) =
  let s = Buffer.contents c.out in
  if s <> "" then (
    match Unix.write_substring c.fd s 0 (String.length s) with
    | n ->
      Buffer.clear c.out;
      if n < String.length s then
        Buffer.add_substring c.out s n (String.length s - n)
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> close_client t c)

(* route drained service replies back onto their client's out buffer;
   replies for clients that disconnected mid-queue are dropped *)
let route_replies t replies =
  let by_id = Hashtbl.create 8 in
  Hashtbl.iter (fun _ c -> Hashtbl.replace by_id c.id c) t.clients;
  List.iter
    (fun (client_id, reply) ->
      match Hashtbl.find_opt by_id client_id with
      | Some c -> enqueue_reply t c reply
      | None ->
        Log.debug (fun m -> m "dropping reply for gone client %d" client_id))
    replies

(* Liveness probe used by the service at dispatch time: a zero-byte
   MSG_PEEK distinguishes a hung-up peer (EOF) from one that is merely
   quiet, without consuming pipelined request bytes.  This runs on the
   reactor thread between reads, so the client table is stable. *)
let peek_buf = Bytes.create 1

let client_alive t client_id =
  let found =
    Hashtbl.fold
      (fun _ c acc -> if c.id = client_id then Some c else acc)
      t.clients None
  in
  match found with
  | None -> false
  | Some c -> (
    match Unix.recv c.fd peek_buf 0 1 [ Unix.MSG_PEEK ] with
    | 0 -> false
    | _ -> true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      true
    | exception Unix.Unix_error _ -> false)

let select_retry reads writes timeout =
  try Unix.select reads writes [] timeout
  with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])

let flush_all t =
  (* best-effort: give sockets a short window to accept the final
     replies (the shutdown acknowledgement in particular) *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec loop () =
    let pending =
      Hashtbl.fold
        (fun _ c acc -> if Buffer.length c.out > 0 then c :: acc else acc)
        t.clients []
    in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      let _, ws, _ =
        select_retry [] (List.map (fun c -> c.fd) pending) 0.2
      in
      List.iter
        (fun fd ->
          match Hashtbl.find_opt t.clients fd with
          | Some c -> handle_writable t c
          | None -> ())
        ws;
      loop ()
    end
  in
  loop ()

let shutdown_loop t =
  flush_all t;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.clients;
  Hashtbl.reset t.clients;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "server stopped")

let serve ?on_ready t =
  (match on_ready with Some f -> f () | None -> ());
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else begin
      let client_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.clients [] in
      let writable =
        Hashtbl.fold
          (fun fd c acc -> if Buffer.length c.out > 0 then fd :: acc else acc)
          t.clients []
      in
      let rs, ws, _ =
        select_retry (t.listeners @ client_fds) writable 0.2
      in
      let stop_requested = ref false in
      List.iter
        (fun fd ->
          if List.memq fd t.listeners then accept_client t fd
          else
            match Hashtbl.find_opt t.clients fd with
            | Some c -> (
              match handle_readable t c with
              | `Continue -> ()
              | `Shutdown -> stop_requested := true)
            | None -> ())
        rs;
      (* everything read this round is queued; dispatch it (the
         coalescing window is exactly one read round) *)
      if Service.queue_depth t.service > 0 then
        route_replies t
          (Service.drain ~alive:(fun id -> client_alive t id) t.service);
      List.iter
        (fun fd ->
          match Hashtbl.find_opt t.clients fd with
          | Some c -> handle_writable t c
          | None -> ())
        ws;
      if !stop_requested then Atomic.set t.stop_flag true;
      loop ()
    end
  in
  Fun.protect ~finally:(fun () -> shutdown_loop t) loop
