type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* shortest decimal that round-trips; integers print bare (same
   convention as Diag.to_json, which these payloads embed) *)
let float_repr v =
  if Float.is_nan v then "\"nan\""
  else if v = Float.infinity then "\"inf\""
  else if v = Float.neg_infinity then "\"-inf\""
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec render b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v -> Buffer.add_string b (float_repr v)
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ", ";
        render b v)
      items;
    Buffer.add_char b ']'
  | Obj members ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\": ";
        render b v)
      members;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  render b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing: recursive descent with an explicit depth bound so a
   pathological request line degrades to a structured error instead of
   blowing the stack *)

exception Fail of int * string

let max_depth = 200

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Fail (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let utf8_of_code b code =
    (* basic-plane escapes only; surrogate pairs are combined by the
       caller before reaching here *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' -> Buffer.add_char b '"'; loop ()
        | '\\' -> Buffer.add_char b '\\'; loop ()
        | '/' -> Buffer.add_char b '/'; loop ()
        | 'b' -> Buffer.add_char b '\b'; loop ()
        | 'f' -> Buffer.add_char b '\012'; loop ()
        | 'n' -> Buffer.add_char b '\n'; loop ()
        | 'r' -> Buffer.add_char b '\r'; loop ()
        | 't' -> Buffer.add_char b '\t'; loop ()
        | 'u' ->
          let code = hex4 () in
          let code =
            if code >= 0xD800 && code <= 0xDBFF then begin
              (* high surrogate: require the paired low surrogate *)
              if
                !pos + 1 < n && s.[!pos] = '\\'
                && !pos + 1 < n
                && s.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
                else fail "unpaired surrogate"
              end
              else fail "unpaired surrogate"
            end
            else code
          in
          utf8_of_code b code;
          loop ()
        | _ -> fail "bad escape")
      | c -> Buffer.add_char b c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let consume p =
      while !pos < n && p s.[!pos] do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    consume (fun c -> c >= '0' && c <= '9');
    if peek () = Some '.' then begin
      advance ();
      consume (fun c -> c >= '0' && c <= '9')
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      consume (fun c -> c >= '0' && c <= '9')
    | _ -> ());
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let members = ref [] in
        let rec members_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          members := (k, v) :: !members;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members_loop ();
        Obj (List.rev !members)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value (depth + 1) in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        Arr (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "%s at byte %d" msg at)

(* ------------------------------------------------------------------ *)
(* accessors *)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_bool = function Bool v -> Some v | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr items -> Some items | _ -> None

let float_list v =
  match v with
  | Arr items ->
    let rec collect acc = function
      | [] -> Some (List.rev acc)
      | Num v :: rest -> collect (v :: acc) rest
      | _ -> None
    in
    collect [] items
  | _ -> None
