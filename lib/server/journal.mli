(** Fail-soft append-only warmup journal.

    Remembers the decks (text + overrides) the service compiled so a
    restarted worker can rebuild its plan cache before serving —
    after a supervised crash, [snoise request --wait] clients see a
    blip, not a cold cache.  Records are framed with a length and an
    MD5 digest; a truncated or corrupted tail ends the replay early
    (corruption-is-a-miss, like [Sn_substrate.Cache]).  All I/O
    failures degrade to "less warmth", never to an error. *)

type entry = { text : string; overrides : (string * float) list }
(** Enough to re-run the compile pipeline: deck text plus the
    canonical override list (together they form the plan-cache key). *)

type t

val open_ : path:string -> t
(** Handle on a journal file (created lazily on first append). *)

val path : t -> string

val recorded : t -> int
(** Entries appended through this handle. *)

val append : t -> entry -> unit
(** Append one record.  Thread-safe; write failures are logged and
    swallowed. *)

val replay : path:string -> entry list
(** All intact records, oldest first.  Missing file or damaged tail
    yield a short (possibly empty) list, never an exception. *)

val rewrite : t -> entry list -> unit
(** Replace the journal's contents (startup compaction after a
    replay, bounding file growth across restarts). *)
