(* Fail-soft warmup journal for the serving layer.

   The journal remembers which decks the service compiled recently so
   a supervised worker that crashed and restarted can re-compile them
   before accepting traffic: clients see a blip, not a cold plan
   cache.  Records are append-only and self-checking — a truncated or
   corrupted tail (the likely artifact of dying mid-write) simply
   ends the replay early, exactly the corruption-is-a-miss discipline
   of [Sn_substrate.Cache].  Losing journal entries only costs warmth,
   never correctness.

   Record framing: ["SNJ1"] magic, 8 hex digits of payload length,
   32 hex digits of payload MD5, then the marshalled payload.  The
   digest is verified before unmarshalling so a damaged record can
   never feed [Marshal.from_string]. *)

type entry = { text : string; overrides : (string * float) list }

type t = {
  path : string;
  lock : Mutex.t;
  mutable recorded : int;
}

let magic = "SNJ1"

let log_src = Logs.Src.create "sn.server.journal" ~doc:"warmup journal"

module Log = (val Logs.src_log log_src : Logs.LOG)

let frame (e : entry) =
  let payload = Marshal.to_string (e : entry) [] in
  Printf.sprintf "%s%08x%s%s" magic (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

(* Parse as many whole, digest-valid records as the bytes hold; stop
   silently at the first damaged one. *)
let parse_all bytes =
  let n = String.length bytes in
  let entries = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos + 44 <= n do
    if not (String.equal (String.sub bytes !pos 4) magic) then ok := false
    else begin
      match int_of_string_opt ("0x" ^ String.sub bytes (!pos + 4) 8) with
      | None -> ok := false
      | Some len when len < 0 || !pos + 44 + len > n -> ok := false
      | Some len ->
        let digest = String.sub bytes (!pos + 12) 32 in
        let payload = String.sub bytes (!pos + 44) len in
        if not (String.equal digest (Digest.to_hex (Digest.string payload)))
        then ok := false
        else begin
          (match (Marshal.from_string payload 0 : entry) with
          | e -> entries := e :: !entries
          | exception _ -> ok := false);
          if !ok then pos := !pos + 44 + len
        end
    end
  done;
  List.rev !entries

let replay ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | bytes -> parse_all bytes
  | exception Sys_error _ -> []

let open_ ~path = { path; lock = Mutex.create (); recorded = 0 }

let path t = t.path

let recorded t = t.recorded

let append t e =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      try
        Out_channel.with_open_gen
          [ Open_append; Open_creat; Open_binary ]
          0o644 t.path
          (fun oc -> Out_channel.output_string oc (frame e));
        t.recorded <- t.recorded + 1
      with Sys_error m ->
        (* fail-soft: a journal that cannot be written costs warmth on
           the next restart, nothing else *)
        Log.warn (fun f -> f "journal append failed: %s" m))

(* Rewrite the file to the given entries (newest last) — startup
   compaction keeps the journal from growing without bound. *)
let rewrite t entries =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      try
        let tmp = t.path ^ ".tmp" in
        Out_channel.with_open_bin tmp (fun oc ->
            List.iter
              (fun e -> Out_channel.output_string oc (frame e))
              entries);
        Sys.rename tmp t.path
      with Sys_error m ->
        Log.warn (fun f -> f "journal rewrite failed: %s" m))
