(* Shared-secret check for the TCP endpoint.

   The comparison is constant-time in the length of the presented
   token: every byte is inspected and folded into an accumulator with
   no data-dependent branch, so a remote caller cannot binary-search
   the secret one byte at a time off the reply latency.  (The length
   itself is not secret — a mismatched length fails via the
   accumulator like any other mismatch.) *)

let equal_const expected given =
  let le = String.length expected and lg = String.length given in
  let acc = ref (le lxor lg) in
  for i = 0 to lg - 1 do
    (* index expected cyclically so the loop bound depends only on the
       attacker-supplied string *)
    let e = if le = 0 then 0 else Char.code expected.[i mod le] in
    acc := !acc lor (e lxor Char.code given.[i])
  done;
  !acc = 0 && le > 0
