(* LRU bookkeeping: every lookup stamps the entry with a monotonically
   increasing tick; eviction scans for the minimum stamp.  The scan is
   O(entries) but entries are bounded by max_decks (default 128) and
   eviction only runs on insertion past the bound — invisible next to
   a single Newton iteration. *)

type 'a entry = { value : 'a; mutable last_use : int; words : int }

(* what one plans-table slot holds: the compiled plan, and — when the
   deck went through model-order reduction on the way in — the reduced
   pool model and its passivity certificates, stored alongside so a
   resident plan's pencil re-verifies by hashing alone (the server's
   verify verb), never by recompiling *)
type certified_plan = {
  cp_plan : Snoise.Flow.compiled;
  cp_reduced : Snoise.Reduced_model.t option;
  cp_cert :
    (Sn_numerics.Passivity.cert * Sn_numerics.Passivity.cert) option;
}

type t = {
  lock : Mutex.t;
  max_decks : int;
  mutable tick : int;
  netlists : (string, Sn_circuit.Netlist.t entry) Hashtbl.t;
  plans : (string, certified_plan entry) Hashtbl.t;
  macros : (string, Sn_substrate.Macromodel.t entry) Hashtbl.t;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable parse_hits : int;
  mutable parse_misses : int;
  mutable macro_hits : int;
  mutable macro_misses : int;
  mutable evictions : int;
}

let create ?(max_decks = 128) () =
  {
    lock = Mutex.create ();
    max_decks = max 1 max_decks;
    tick = 0;
    netlists = Hashtbl.create 64;
    plans = Hashtbl.create 64;
    macros = Hashtbl.create 16;
    plan_hits = 0;
    plan_misses = 0;
    parse_hits = 0;
    parse_misses = 0;
    macro_hits = 0;
    macro_misses = 0;
    evictions = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_use <- t.tick

let deck_key ~text ~overrides =
  let canonical =
    List.map (fun (k, v) -> Printf.sprintf "%s=%.17g" k v) overrides
    |> String.concat ";"
  in
  Digest.to_hex
    (Digest.string
       (* v2: compiled plans carry pre-flight artifacts (reduction
          certificates); bumping the key namespace invalidates every
          v1 journal entry and warm key instead of mixing formats *)
       (Printf.sprintf "snoise-plan-v2\n%d:%s\n%s" (String.length text) text
          canonical))

let text_key text =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "snoise-parse-v1\n%d:%s" (String.length text) text))

(* layered find: probe under the lock, compute outside it (a compile
   or extraction can take seconds and must not serialize unrelated
   requests), publish under the lock.  Two racing misses both compute;
   the second publish wins harmlessly — entries are pure values of
   their key. *)
let find_generic ?(weigh = fun _ -> 0) t table ~key ~(compute : unit -> 'a)
    ~hit ~miss ~(evict : unit -> unit) =
  let cached =
    with_lock t (fun () ->
        match Hashtbl.find_opt table key with
        | Some e ->
          touch t e;
          hit ();
          Some e.value
        | None ->
          miss ();
          None)
  in
  match cached with
  | Some v -> (v, Protocol.Hit)
  | None ->
    let v = compute () in
    let words = weigh v in
    with_lock t (fun () ->
        t.tick <- t.tick + 1;
        Hashtbl.replace table key { value = v; last_use = t.tick; words };
        evict ());
    (v, Protocol.Miss)

(* caller holds the lock *)
let evict_down t ~max_plans =
  let dropped = ref 0 in
  while Hashtbl.length t.plans > max 0 max_plans do
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, age) when age <= e.last_use -> ()
        | _ -> victim := Some (k, e.last_use))
      t.plans;
    match !victim with
    | Some (k, _) ->
      Hashtbl.remove t.plans k;
      t.evictions <- t.evictions + 1;
      incr dropped
    | None -> ()
  done;
  (* keep the parse layer from outliving every plan that used it *)
  while Hashtbl.length t.netlists > 2 * t.max_decks do
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, age) when age <= e.last_use -> ()
        | _ -> victim := Some (k, e.last_use))
      t.netlists;
    match !victim with
    | Some (k, _) -> Hashtbl.remove t.netlists k
    | None -> ()
  done;
  !dropped

let evict_lru t = ignore (evict_down t ~max_plans:t.max_decks)

(* memory-pressure shedding: drop LRU plans down to [keep], returning
   how many went.  The freed words only leave the process after a
   compaction — the service pairs this with [Gc.compact]. *)
let shed t ~keep = with_lock t (fun () -> evict_down t ~max_plans:keep)

let plan_words t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ e acc -> acc + e.words) t.plans 0)

let find_netlist t ~text ~parse =
  let key = text_key text in
  fst
    (find_generic t t.netlists ~key
       ~compute:(fun () -> parse text)
       ~hit:(fun () -> t.parse_hits <- t.parse_hits + 1)
       ~miss:(fun () -> t.parse_misses <- t.parse_misses + 1)
       ~evict:(fun () -> evict_lru t))

let find_compiled t ~key ~compile =
  (* weigh each resident plan once at insert so the service's memory
     watermark can account for cache growth without a heap walk per
     request *)
  find_generic t t.plans ~key ~compute:compile
    ~weigh:(fun v -> Obj.reachable_words (Obj.repr v))
    ~hit:(fun () -> t.plan_hits <- t.plan_hits + 1)
    ~miss:(fun () -> t.plan_misses <- t.plan_misses + 1)
    ~evict:(fun () -> evict_lru t)

let find_macro t ~text ~extract =
  let key = text_key text in
  find_generic t t.macros ~key ~compute:extract
    ~hit:(fun () -> t.macro_hits <- t.macro_hits + 1)
    ~miss:(fun () -> t.macro_misses <- t.macro_misses + 1)
    ~evict:(fun () -> ())

(* certificate re-verification of every resident plan: hash-only
   (Reduced_model.verify_certificate), no compile, no factorization.
   [pv_bad] > 0 means an in-memory pencil no longer matches its own
   signature — memory corruption or a logic bug, either way the plan
   cannot be trusted. *)
type plan_verification = {
  pv_plans : int;
  pv_exact : int;  (** resident plans that never went through reduction *)
  pv_certified : int;
  pv_uncertified : int;
      (** reduced at compile time but certification was refused *)
  pv_bad : int;
}

let verify_plans t =
  let entries =
    with_lock t (fun () ->
        Hashtbl.fold (fun _ e acc -> e.value :: acc) t.plans [])
  in
  let v =
    {
      pv_plans = List.length entries;
      pv_exact = 0;
      pv_certified = 0;
      pv_uncertified = 0;
      pv_bad = 0;
    }
  in
  List.fold_left
    (fun v cp ->
      match (cp.cp_reduced, cp.cp_cert) with
      | None, _ -> { v with pv_exact = v.pv_exact + 1 }
      | Some _, None -> { v with pv_uncertified = v.pv_uncertified + 1 }
      | Some m, Some cert ->
        if Snoise.Reduced_model.verify_certificate m cert then
          { v with pv_certified = v.pv_certified + 1 }
        else { v with pv_bad = v.pv_bad + 1 })
    v entries

type stats = {
  plans : int;
  certified_plans : int;
  plan_words : int;
  plan_hits : int;
  plan_misses : int;
  parse_hits : int;
  parse_misses : int;
  macro_hits : int;
  macro_misses : int;
  evictions : int;
}

let stats t =
  with_lock t (fun () ->
      {
        plans = Hashtbl.length t.plans;
        certified_plans =
          Hashtbl.fold
            (fun _ e acc -> if e.value.cp_cert <> None then acc + 1 else acc)
            t.plans 0;
        plan_words =
          Hashtbl.fold (fun _ e acc -> acc + e.words) t.plans 0;
        plan_hits = t.plan_hits;
        plan_misses = t.plan_misses;
        parse_hits = t.parse_hits;
        parse_misses = t.parse_misses;
        macro_hits = t.macro_hits;
        macro_misses = t.macro_misses;
        evictions = t.evictions;
      })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.netlists;
      Hashtbl.reset t.plans;
      Hashtbl.reset t.macros)

let reset_counters t =
  with_lock t (fun () ->
      t.plan_hits <- 0;
      t.plan_misses <- 0;
      t.parse_hits <- 0;
      t.parse_misses <- 0;
      t.macro_hits <- 0;
      t.macro_misses <- 0;
      t.evictions <- 0)
