(** The socket front end of [snoise serve]: a single-threaded
    [Unix.select] loop speaking the line-delimited JSON protocol of
    {!Protocol} over a Unix-domain socket (always) and an optional
    loopback TCP endpoint.

    All simulation work happens in {!Service} on the server's own
    thread — the engine parallelizes {e inside} a dispatch via the
    domain pool, so a single reactor thread keeps replies totally
    ordered per client with no extra locking, and the coalescing
    scheduler sees every request that arrived in a read round before
    it dispatches.

    Robustness guarantees, tested in [test/test_server.ml]:
    malformed input (bad JSON, unknown verbs, oversized lines) is
    answered with a structured [error] message on the same
    connection — the server never disconnects a client for a bad
    request and never dies on one. *)

type t

val create :
  ?config:Service.config ->
  ?tcp:string * int ->
  ?auth_token:string ->
  socket:string ->
  unit ->
  t
(** [create ~socket ()] binds the Unix-domain listener at path
    [socket] (unlinking a stale socket file left by a previous
    process) and, when [?tcp:(host, port)] is given, a TCP listener
    as well.  Listeners are bound and listening when [create]
    returns, so a caller that forks a {!serve} thread can connect
    immediately.  Raises [Unix.Unix_error] when binding fails
    (e.g. the socket path's directory does not exist).

    When [?auth_token] is a non-empty string, every TCP connection
    must present it as a top-level ["auth_token"] member before any
    request is served; until then the connection only ever receives
    the stable [unauthorized] error.  The comparison is constant-time
    ({!Auth.equal_const}).  The Unix-domain socket — guarded by file
    permissions — never requires a token. *)

val tcp_port : t -> int option
(** The bound TCP port, when a TCP listener exists.  Useful with
    [?tcp:(host, 0)]: the kernel picks an ephemeral port and tests
    read it back here. *)

val service : t -> Service.t
(** The serving core behind this server — exposed so tests can reach
    {!Service.stats_json} and the plan cache directly. *)

val serve : ?on_ready:(unit -> unit) -> t -> unit
(** Run the accept/read/dispatch/write loop until a client sends
    [shutdown] or {!stop} is called, then flush pending replies,
    close every connection and remove the socket file.  [on_ready]
    fires once just before the first [select] — the CLI uses it to
    log the endpoints. *)

val stop : t -> unit
(** Ask a running {!serve} loop to exit after its current iteration.
    Thread-safe and idempotent — how in-process tests shut the
    server down without speaking the protocol. *)
