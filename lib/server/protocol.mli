(** The [snoise serve] wire protocol: typed requests and the response
    constructors.

    The wire format is line-delimited JSON (JSONL): every message is
    one JSON object on one line, and every request produces exactly
    one reply on the same connection, in per-client request order.
    Three message types exist on the wire — [request] (client to
    server), [response] and [error] (server to client); [stats] and
    [ping] are request verbs, not separate message types.  The full
    schema, an annotated session transcript and the error catalogue
    live in [docs/SERVER.md]; this module is the single point where
    those bytes are produced and consumed, so the doc and the
    implementation cannot drift apart silently. *)

(** What a request asks for.  Analysis verbs ([Op] … [Extract]) may do
    real solver work and go through the service queue; control verbs
    ([Stats], [Ping], [Health], [Shutdown]) are answered immediately
    and never queue. *)
type verb =
  | Op  (** DC operating point of a deck *)
  | Ac  (** small-signal sweep: frequencies x nodes *)
  | Tran  (** transient integration *)
  | Noise  (** output-referred noise PSD (adjoint method) *)
  | Spur  (** VCO substrate-spur prediction (built-in test chip) *)
  | Lint  (** structural ERC report of a deck *)
  | Verify
      (** numerical pre-flight of a deck, or certificate verification
          of a tile-cache directory ([params.cache_dir]) or of the
          resident plan cache (no source, no [cache_dir]) *)
  | Extract  (** substrate macromodel of a layout *)
  | Stats  (** server / cache / queue / pool counters *)
  | Ping  (** liveness probe *)
  | Health
      (** liveness + readiness: queue depth, pool width, cache and
          memory pressure, supervisor restart count *)
  | Shutdown  (** orderly server stop (the last reply on the wire) *)

val verb_name : verb -> string
(** Stable lower-case wire name, e.g. ["ac"]. *)

val verb_of_string : string -> verb option

(** Where the deck (or layout) text comes from.  Inline text and an
    on-disk path are equivalent: both are cached by {e content}
    digest, so editing a file invalidates exactly its own entries. *)
type source = Inline of string | Path of string

type request = {
  id : Json.t;
      (** client-chosen correlation value, echoed verbatim in the
          reply; [Json.Null] when absent *)
  verb : verb;
  source : source option;  (** from the ["deck"] / ["deck_path"] /
                               ["layout"] / ["layout_path"] fields *)
  overrides : (string * float) list;
      (** element-value overrides, sorted by element name — part of
          the plan-cache key *)
  deadline_ms : float option;
      (** request deadline in milliseconds, counted from admission;
          when exceeded the service cancels the work cooperatively and
          replies [deadline-exceeded] with partial progress counters *)
  params : Json.t;  (** the verb-specific ["params"] object;
                        [Json.Null] when absent *)
}

(** Stable error codes of the wire error catalogue
    (see [docs/SERVER.md]). *)
type error_code =
  | Parse_error  (** the line was not valid JSON *)
  | Bad_request  (** valid JSON, invalid request shape or params *)
  | Unknown_verb
  | Deck_unreadable  (** missing file, SPICE parse error, bad deck *)
  | Lint_refused  (** lint errors refused simulation; carries the
                      full analyzer report *)
  | Engine_diag  (** solver diagnostic; carries {!Sn_engine.Diag}
                     JSON *)
  | Busy
      (** bounded queue full or memory watermark exceeded —
          backpressure, retry later *)
  | Quota_exceeded  (** per-client in-queue quota hit *)
  | Deadline_exceeded
      (** the request's [deadline_ms] elapsed; work was cancelled at
          an iteration boundary and the error carries progress
          counters *)
  | Unauthorized
      (** TCP endpoint requires [--auth-token] and the connection has
          not presented it *)
  | Internal  (** unexpected exception (reported, not a disconnect) *)

val error_code_name : error_code -> string
(** Stable kebab-case wire name, e.g. ["quota-exceeded"]. *)

val parse_request : Json.t -> (request, error_code * string) result
(** Typed view of a parsed request line.  Rejects non-objects, unknown
    or missing verbs, conflicting deck sources and malformed
    overrides with the error code the reply should carry. *)

(** {1 Reply constructors} *)

type cache_note = Hit | Miss | Not_applicable
(** Whether a cache layer served this request. *)

type served = {
  elapsed_ms : float;  (** wall time inside the service dispatch *)
  plan : cache_note;  (** compiled-plan cache (deck hash + overrides) *)
  bias : cache_note;  (** DC-bias / AC-plan cache *)
  batched : int;
      (** how many queued requests the serving pool dispatch
          coalesced; [1] when the request ran alone *)
}

val response : id:Json.t -> verb:verb -> served:served -> Json.t -> Json.t
(** [response ~id ~verb ~served result] is the
    [{"type":"response", …}] object.  [result] is the verb-specific
    payload. *)

val error :
  ?id:Json.t -> ?data:(string * Json.t) list -> error_code -> string ->
  Json.t
(** [error code message] is the [{"type":"error", …}] object; [data]
    members (e.g. ["diag"], ["lint"], ["retry_after_ms"]) are spliced
    into the ["error"] object after ["code"] and ["message"]. *)

val diag_error : ?id:Json.t -> Sn_engine.Diag.t -> Json.t
(** Map a solver diagnostic onto the wire: lint-gate refusals become
    {!Lint_refused}, everything else {!Engine_diag}; both embed the
    diagnostic's own JSON under ["diag"]. *)
