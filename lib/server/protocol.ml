type verb =
  | Op
  | Ac
  | Tran
  | Noise
  | Spur
  | Lint
  | Verify
  | Extract
  | Stats
  | Ping
  | Health
  | Shutdown

let verb_name = function
  | Op -> "op"
  | Ac -> "ac"
  | Tran -> "tran"
  | Noise -> "noise"
  | Spur -> "spur"
  | Lint -> "lint"
  | Verify -> "verify"
  | Extract -> "extract"
  | Stats -> "stats"
  | Ping -> "ping"
  | Health -> "health"
  | Shutdown -> "shutdown"

let verb_of_string = function
  | "op" -> Some Op
  | "ac" -> Some Ac
  | "tran" -> Some Tran
  | "noise" -> Some Noise
  | "spur" -> Some Spur
  | "lint" -> Some Lint
  | "verify" -> Some Verify
  | "extract" -> Some Extract
  | "stats" -> Some Stats
  | "ping" -> Some Ping
  | "health" -> Some Health
  | "shutdown" -> Some Shutdown
  | _ -> None

type source = Inline of string | Path of string

type request = {
  id : Json.t;
  verb : verb;
  source : source option;
  overrides : (string * float) list;
  deadline_ms : float option;
  params : Json.t;
}

type error_code =
  | Parse_error
  | Bad_request
  | Unknown_verb
  | Deck_unreadable
  | Lint_refused
  | Engine_diag
  | Busy
  | Quota_exceeded
  | Deadline_exceeded
  | Unauthorized
  | Internal

let error_code_name = function
  | Parse_error -> "parse-error"
  | Bad_request -> "bad-request"
  | Unknown_verb -> "unknown-verb"
  | Deck_unreadable -> "deck-unreadable"
  | Lint_refused -> "lint-refused"
  | Engine_diag -> "engine-diag"
  | Busy -> "busy"
  | Quota_exceeded -> "quota-exceeded"
  | Deadline_exceeded -> "deadline-exceeded"
  | Unauthorized -> "unauthorized"
  | Internal -> "internal"

let parse_request json =
  match json with
  | Json.Obj _ -> (
    let type_ok =
      match Json.member "type" json with
      | None | Some (Json.Str "request") -> Ok ()
      | Some (Json.Str other) ->
        Error
          (Bad_request, Printf.sprintf "unexpected message type %S" other)
      | Some _ -> Error (Bad_request, "\"type\" must be a string")
    in
    match type_ok with
    | Error (c, m) -> Error (c, m)
    | Ok () -> (
      match Json.member "verb" json with
      | None -> Error (Bad_request, "missing \"verb\"")
      | Some v -> (
        match Json.to_str v with
        | None -> Error (Bad_request, "\"verb\" must be a string")
        | Some name -> (
          match verb_of_string name with
          | None ->
            Error (Unknown_verb, Printf.sprintf "unknown verb %S" name)
          | Some verb -> (
            let id =
              Option.value (Json.member "id" json) ~default:Json.Null
            in
            let params =
              Option.value (Json.member "params" json) ~default:Json.Null
            in
            let pick_source inline_field path_field =
              match
                (Json.member inline_field json, Json.member path_field json)
              with
              | Some _, Some _ ->
                Error
                  ( Bad_request,
                    Printf.sprintf "give %S or %S, not both" inline_field
                      path_field )
              | Some v, None -> (
                match Json.to_str v with
                | Some s -> Ok (Some (Inline s))
                | None ->
                  Error
                    ( Bad_request,
                      Printf.sprintf "%S must be a string" inline_field ))
              | None, Some v -> (
                match Json.to_str v with
                | Some s -> Ok (Some (Path s))
                | None ->
                  Error
                    ( Bad_request,
                      Printf.sprintf "%S must be a string" path_field ))
              | None, None -> Ok None
            in
            let source =
              match verb with
              | Extract -> pick_source "layout" "layout_path"
              | _ -> pick_source "deck" "deck_path"
            in
            let deadline =
              match Json.member "deadline_ms" json with
              | None | Some Json.Null -> Ok None
              | Some (Json.Num v) when v > 0.0 && Float.is_finite v ->
                Ok (Some v)
              | Some _ ->
                Error
                  (Bad_request, "\"deadline_ms\" must be a positive number")
            in
            match (source, deadline) with
            | (Error _ as e), _ -> e
            | _, Error (c, m) -> Error (c, m)
            | Ok source, Ok deadline_ms -> (
              match Json.member "overrides" json with
              | None ->
                Ok { id; verb; source; overrides = []; deadline_ms; params }
              | Some (Json.Obj members) -> (
                let rec collect acc = function
                  | [] ->
                    Ok
                      (List.sort
                         (fun (a, _) (b, _) -> String.compare a b)
                         acc)
                  | (k, Json.Num v) :: rest -> collect ((k, v) :: acc) rest
                  | (k, _) :: _ ->
                    Error
                      ( Bad_request,
                        Printf.sprintf "override %S must be a number" k )
                in
                match collect [] members with
                | Ok overrides ->
                  Ok { id; verb; source; overrides; deadline_ms; params }
                | Error _ as e -> e)
              | Some _ ->
                Error (Bad_request, "\"overrides\" must be an object")))))))
  | _ -> Error (Bad_request, "a request must be a JSON object")

type cache_note = Hit | Miss | Not_applicable

let cache_note_json = function
  | Hit -> Json.Str "hit"
  | Miss -> Json.Str "miss"
  | Not_applicable -> Json.Null

type served = {
  elapsed_ms : float;
  plan : cache_note;
  bias : cache_note;
  batched : int;
}

let response ~id ~verb ~served result =
  Json.Obj
    [
      ("type", Json.Str "response");
      ("id", id);
      ("verb", Json.Str (verb_name verb));
      ("result", result);
      ( "served",
        Json.Obj
          [
            ("elapsed_ms", Json.Num served.elapsed_ms);
            ("plan", cache_note_json served.plan);
            ("bias", cache_note_json served.bias);
            ("batched", Json.Num (float_of_int served.batched));
          ] );
    ]

let error ?(id = Json.Null) ?(data = []) code message =
  Json.Obj
    [
      ("type", Json.Str "error");
      ("id", id);
      ( "error",
        Json.Obj
          (("code", Json.Str (error_code_name code))
           :: ("message", Json.Str message)
           :: data) );
    ]

let diag_error ?id d =
  let diag_json =
    match Json.parse (Sn_engine.Diag.to_json d) with
    | Ok j -> j
    | Error _ -> Json.Str (Sn_engine.Diag.to_string d)
  in
  let code =
    match d with
    | Sn_engine.Diag.Bad_input { loc; _ }
      when String.equal loc.Sn_engine.Diag.analysis "lint" ->
      Lint_refused
    | _ -> Engine_diag
  in
  error ?id ~data:[ ("diag", diag_json) ] code
    (Sn_engine.Diag.to_string d)
