(** Constant-time shared-secret comparison for the TCP endpoint
    ([snoise serve --auth-token]). *)

val equal_const : string -> string -> bool
(** [equal_const expected given] is [true] iff the strings are equal,
    in time independent of where they first differ.  An empty
    [expected] never matches (no token configured means nothing to
    present, not a free pass). *)
