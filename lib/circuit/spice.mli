(** SPICE-like netlist text format.

    Supported cards:
    {v
    * comment
    R<name> n1 n2 <value>
    C<name> n1 n2 <value>
    L<name> n1 n2 <value>
    V<name> np nn [DC <v>] [AC <mag>] [SIN(<off> <ampl> <freq> [<phase>])]
                  [PULSE(<v1> <v2> <delay> <rise> <fall> <width> <period>)]
                  [PWL(<t1> <v1> <t2> <v2> ...)]
    I<name> np nn ... (same stimulus syntax)
    G<name> np nn cp cn <gm>          (VCCS)
    E<name> np nn cp cn <gain>        (VCVS)
    M<name> d g s b <model> W=<w> L=<l> [M=<mult>]
    Y<name> n1 n2 <model> [M=<mult>]  (varactor)
    .model <name> nmos|pmos  vt0= kp= gamma= phi= lambda= cdb= csb= cgs= cgd=
    .model <name> varactor   cmin= cmax= v0= vslope=
    .title <text>
    .end
    v}

    Values accept engineering suffixes
    [f p n u m k meg g t] (case-insensitive); lines starting with [+]
    continue the previous card.

    Lint-suppression pragmas and tool directives ride in comments:
    {v
    *%snoise ignore <code>[,<code>...] [<subject>]
    *%snoise extract <key>=<value> ...
    *%snoise reduce <key>=<value> ...
    v}
    and surface as {!Netlist.pragmas} / {!Netlist.directives}; every
    parsed element also records its {!Netlist.source_loc} so analysis
    diagnostics can point at the offending deck line. *)

exception Parse_error of int * string

val parse_number : string -> float option
(** [parse_number "10meg"] is [Some 1e7]; exposed for tests. *)

val of_string : ?file:string -> string -> Netlist.t
(** Raises {!Parse_error} or {!Netlist.Invalid}.  [?file] (default
    ["<string>"]) names the source in the recorded element
    locations. *)

val to_string : Netlist.t -> string
(** Emits a netlist (with the [.model] cards and [%snoise] marker
    lines it needs) that {!of_string} parses back. *)

val load : string -> Netlist.t
val save : string -> Netlist.t -> unit
