(** Netlist elements.  Node names are free-form strings; ["0"] and
    ["gnd"] both denote ground. *)

type t =
  | Resistor of { name : string; n1 : string; n2 : string; ohms : float }
  | Capacitor of { name : string; n1 : string; n2 : string; farads : float }
  | Inductor of { name : string; n1 : string; n2 : string; henries : float }
  | Vsource of {
      name : string;
      np : string;
      nn : string;
      wave : Waveform.t;
      ac_mag : float;  (** stimulus amplitude for AC analysis *)
    }
  | Isource of {
      name : string;
      np : string;  (** current flows np -> nn through the source *)
      nn : string;
      wave : Waveform.t;
      ac_mag : float;
    }
  | Vccs of {
      name : string;
      np : string;
      nn : string;
      cp : string;  (** positive controlling node *)
      cn : string;
      gm : float;  (** S: i(np->nn) = gm * (v_cp - v_cn) *)
    }
  | Vcvs of {
      name : string;
      np : string;
      nn : string;
      cp : string;
      cn : string;
      gain : float;
    }
  | Mosfet of {
      name : string;
      drain : string;
      gate : string;
      source : string;
      bulk : string;
      model : Mos_model.t;
      w : float;  (** m *)
      l : float;  (** m *)
      mult : int;  (** parallel multiplicity *)
    }
  | Varactor of {
      name : string;
      n1 : string;  (** gate side *)
      n2 : string;  (** bulk side *)
      model : Varactor_model.t;
      mult : int;
    }

val name : t -> string
val nodes : t -> string list

val is_ground : string -> bool
(** ["0"] or ["gnd"] (case-insensitive). *)

val validate : t -> (unit, string) result
(** Finite nonzero R / C values (negative allowed — reduced-order
    macromodel branches carry arbitrary sign), positive inductance and
    device geometry, [mult >= 1]. *)

val pp : Format.formatter -> t -> unit
