type t =
  | Resistor of { name : string; n1 : string; n2 : string; ohms : float }
  | Capacitor of { name : string; n1 : string; n2 : string; farads : float }
  | Inductor of { name : string; n1 : string; n2 : string; henries : float }
  | Vsource of {
      name : string;
      np : string;
      nn : string;
      wave : Waveform.t;
      ac_mag : float;
    }
  | Isource of {
      name : string;
      np : string;
      nn : string;
      wave : Waveform.t;
      ac_mag : float;
    }
  | Vccs of {
      name : string;
      np : string;
      nn : string;
      cp : string;
      cn : string;
      gm : float;
    }
  | Vcvs of {
      name : string;
      np : string;
      nn : string;
      cp : string;
      cn : string;
      gain : float;
    }
  | Mosfet of {
      name : string;
      drain : string;
      gate : string;
      source : string;
      bulk : string;
      model : Mos_model.t;
      w : float;
      l : float;
      mult : int;
    }
  | Varactor of {
      name : string;
      n1 : string;
      n2 : string;
      model : Varactor_model.t;
      mult : int;
    }

let name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vccs { name; _ }
  | Vcvs { name; _ }
  | Mosfet { name; _ }
  | Varactor { name; _ } ->
    name

let nodes = function
  | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } | Inductor { n1; n2; _ }
  | Varactor { n1; n2; _ } ->
    [ n1; n2 ]
  | Vsource { np; nn; _ } | Isource { np; nn; _ } -> [ np; nn ]
  | Vccs { np; nn; cp; cn; _ } | Vcvs { np; nn; cp; cn; _ } ->
    [ np; nn; cp; cn ]
  | Mosfet { drain; gate; source; bulk; _ } -> [ drain; gate; source; bulk ]

let is_ground n =
  match String.lowercase_ascii n with "0" | "gnd" -> true | _ -> false

let validate e =
  let check cond msg = if cond then Ok () else Error (name e ^ ": " ^ msg) in
  (* R and C admit negative values: reduced-order macromodels
     (Snoise.Reduced_model) realize as branch networks whose
     off-diagonal couplings carry arbitrary sign.  Zero, nan and inf
     stay invalid — they stamp a broken matrix. *)
  let finite_nonzero v = Float.is_finite v && v <> 0.0 in
  match e with
  | Resistor { ohms; _ } ->
    check (finite_nonzero ohms) "resistance must be finite and nonzero"
  | Capacitor { farads; _ } ->
    check (finite_nonzero farads) "capacitance must be finite and nonzero"
  | Inductor { henries; _ } -> check (henries > 0.0) "inductance must be > 0"
  | Vsource _ | Isource _ | Vcvs _ -> Ok ()
  | Vccs { gm; _ } -> check (Float.is_nan gm = false) "gm must be a number"
  | Mosfet { w; l; mult; _ } ->
    Result.bind (check (w > 0.0 && l > 0.0) "W and L must be > 0") (fun () ->
        check (mult >= 1) "multiplicity must be >= 1")
  | Varactor { mult; model; _ } ->
    Result.bind (check (mult >= 1) "multiplicity must be >= 1") (fun () ->
        check
          (model.Varactor_model.cmin > 0.0
           && model.Varactor_model.cmax >= model.Varactor_model.cmin)
          "need 0 < cmin <= cmax")

let pp fmt e =
  match e with
  | Resistor { name; n1; n2; ohms } ->
    Format.fprintf fmt "%s %s %s %g" name n1 n2 ohms
  | Capacitor { name; n1; n2; farads } ->
    Format.fprintf fmt "%s %s %s %g" name n1 n2 farads
  | Inductor { name; n1; n2; henries } ->
    Format.fprintf fmt "%s %s %s %g" name n1 n2 henries
  | Vsource { name; np; nn; wave; ac_mag } ->
    Format.fprintf fmt "%s %s %s %a AC %g" name np nn Waveform.pp wave ac_mag
  | Isource { name; np; nn; wave; ac_mag } ->
    Format.fprintf fmt "%s %s %s %a AC %g" name np nn Waveform.pp wave ac_mag
  | Vccs { name; np; nn; cp; cn; gm } ->
    Format.fprintf fmt "%s %s %s %s %s %g" name np nn cp cn gm
  | Vcvs { name; np; nn; cp; cn; gain } ->
    Format.fprintf fmt "%s %s %s %s %s %g" name np nn cp cn gain
  | Mosfet { name; drain; gate; source; bulk; model; w; l; mult } ->
    Format.fprintf fmt "%s %s %s %s %s %s W=%g L=%g M=%d" name drain gate
      source bulk model.Mos_model.name w l mult
  | Varactor { name; n1; n2; model; mult } ->
    Format.fprintf fmt "%s %s %s %s M=%d" name n1 n2
      model.Varactor_model.name mult
