type source_loc = { file : string; line : int }

type pragma = {
  ignore_code : string;
  ignore_subject : string option;
  ignore_loc : source_loc option;
}

type directive = { verb : string; args : (string * string) list }

type t = {
  title : string;
  elements : Element.t list;
  pragmas : pragma list;
  directives : directive list;
  locs : (string, source_loc) Hashtbl.t;
}

exception Invalid of string list

let create ?(title = "untitled") ?(pragmas = []) ?(directives = [])
    ?(locs = []) elements =
  let errors = ref [] in
  let err m = errors := m :: !errors in
  (* duplicate names *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let n = Element.name e in
      if Hashtbl.mem seen n then err ("duplicate element name: " ^ n)
      else Hashtbl.add seen n ())
    elements;
  (* per-element checks *)
  List.iter
    (fun e ->
      match Element.validate e with Ok () -> () | Error m -> err m)
    elements;
  (* ground reference *)
  if elements <> []
     && not
          (List.exists
             (fun e -> List.exists Element.is_ground (Element.nodes e))
             elements)
  then err "netlist has no ground reference (node 0 or gnd)";
  (match !errors with [] -> () | es -> raise (Invalid (List.rev es)));
  let loc_table = Hashtbl.create (List.length locs |> max 1) in
  List.iter (fun (name, loc) -> Hashtbl.replace loc_table name loc) locs;
  { title; elements; pragmas; directives; locs = loc_table }

let title nl = nl.title
let elements nl = nl.elements
let element_count nl = List.length nl.elements

let pragmas nl = nl.pragmas

let directives nl = nl.directives

let element_loc nl name = Hashtbl.find_opt nl.locs name

let element_locs nl =
  Hashtbl.fold (fun name loc acc -> (name, loc) :: acc) nl.locs []
  |> List.sort compare

let nodes nl =
  List.concat_map Element.nodes nl.elements
  |> List.filter (fun n -> not (Element.is_ground n))
  |> List.sort_uniq String.compare

let find nl name =
  match
    List.find_opt (fun e -> String.equal (Element.name e) name) nl.elements
  with
  | Some e -> e
  | None -> raise Not_found

let mem_node nl n =
  Element.is_ground n
  || List.exists (fun e -> List.mem n (Element.nodes e)) nl.elements

let merge ?(title = "merged") parts =
  create ~title
    ~pragmas:(List.concat_map pragmas parts)
    ~directives:(List.concat_map directives parts)
    ~locs:(List.concat_map element_locs parts)
    (List.concat_map elements parts)

let map f nl =
  create ~title:nl.title ~pragmas:nl.pragmas ~directives:nl.directives
    ~locs:(element_locs nl)
    (List.map f nl.elements)

let filter f nl =
  create ~title:nl.title ~pragmas:nl.pragmas ~directives:nl.directives
    ~locs:(element_locs nl)
    (List.filter f nl.elements)

let pp fmt nl =
  Format.fprintf fmt "@[<v>* %s@," nl.title;
  List.iter (fun e -> Format.fprintf fmt "%a@," Element.pp e) nl.elements;
  Format.fprintf fmt "@]"
