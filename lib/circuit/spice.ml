exception Parse_error of int * string

(* ------------------------------------------------------------------ *)
(* numbers *)

let suffixes =
  [ ("meg", 1.0e6); ("f", 1.0e-15); ("p", 1.0e-12); ("n", 1.0e-9);
    ("u", 1.0e-6); ("m", 1.0e-3); ("k", 1.0e3); ("g", 1.0e9); ("t", 1.0e12) ]

let parse_number s =
  let s = String.lowercase_ascii (String.trim s) in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e'
  in
  (* split at the first character that cannot continue a float literal;
     'e' only counts as numeric when followed by a digit or sign *)
  let n = String.length s in
  let rec split i =
    if i >= n then i
    else if s.[i] = 'e' && i + 1 < n
            && (s.[i + 1] = '-' || s.[i + 1] = '+'
                || (s.[i + 1] >= '0' && s.[i + 1] <= '9'))
            && i > 0 then split (i + 1)
    else if s.[i] = 'e' then i
    else if is_num_char s.[i] then split (i + 1)
    else i
  in
  let cut = split 0 in
  let mantissa = String.sub s 0 cut in
  let tail = String.sub s cut (n - cut) in
  match float_of_string_opt mantissa with
  | None -> None
  | Some v ->
    if tail = "" then Some v
    else begin
      (* check 'meg' before 'm' *)
      let rec find = function
        | [] -> None
        | (suf, scale) :: rest ->
          if String.length tail >= String.length suf
             && String.sub tail 0 (String.length suf) = suf
          then Some scale
          else find rest
      in
      Option.map (fun scale -> v *. scale) (find suffixes)
    end

(* ------------------------------------------------------------------ *)
(* tokenizing with parenthesized stimulus groups *)

let fail ln msg = raise (Parse_error (ln, msg))

let number ln s =
  match parse_number s with
  | Some v -> v
  | None -> fail ln ("bad number: " ^ s)

(* Normalize "sin(0 1 2)" into "sin ( 0 1 2 )" then split. *)
let tokens_of_line line =
  let b = Buffer.create (String.length line + 8) in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' ->
        Buffer.add_char b ' ';
        Buffer.add_char b c;
        Buffer.add_char b ' '
      | '=' ->
        Buffer.add_char b ' ';
        Buffer.add_char b '=';
        Buffer.add_char b ' '
      | c -> Buffer.add_char b c)
    line;
  String.split_on_char ' ' (Buffer.contents b)
  |> List.filter (fun t -> t <> "")

(* parse "key = value" groups from a token list *)
let rec parse_params ln acc = function
  | [] -> acc
  | key :: "=" :: v :: rest ->
    parse_params ln ((String.lowercase_ascii key, v) :: acc) rest
  | t :: _ -> fail ln ("expected key=value, got " ^ t)

(* stimulus tail of V/I cards *)
let rec parse_stimulus ln (wave, ac_mag) = function
  | [] -> (wave, ac_mag)
  | "dc" :: v :: rest ->
    parse_stimulus ln (Waveform.Dc (number ln v), ac_mag) rest
  | "ac" :: v :: rest -> parse_stimulus ln (wave, number ln v) rest
  | "sin" :: "(" :: rest ->
    let args, rest = split_group ln [] rest in
    let wave =
      match List.map (number ln) args with
      | [ off; ampl; freq ] ->
        Waveform.Sin { offset = off; amplitude = ampl; freq; phase = 0.0 }
      | [ off; ampl; freq; phase ] ->
        Waveform.Sin { offset = off; amplitude = ampl; freq; phase }
      | _ -> fail ln "SIN needs 3 or 4 arguments"
    in
    parse_stimulus ln (wave, ac_mag) rest
  | "pulse" :: "(" :: rest ->
    let args, rest = split_group ln [] rest in
    let wave =
      match List.map (number ln) args with
      | [ v1; v2; delay; rise; fall; width; period ] ->
        Waveform.Pulse { v1; v2; delay; rise; fall; width; period }
      | _ -> fail ln "PULSE needs 7 arguments"
    in
    parse_stimulus ln (wave, ac_mag) rest
  | "pwl" :: "(" :: rest ->
    let args, rest = split_group ln [] rest in
    let values = List.map (number ln) args in
    let rec pair = function
      | [] -> []
      | t :: v :: more -> (t, v) :: pair more
      | [ _ ] -> fail ln "PWL needs an even argument count"
    in
    parse_stimulus ln (Waveform.pwl (pair values), ac_mag) rest
  | v :: rest when parse_number v <> None ->
    (* bare value means DC *)
    parse_stimulus ln (Waveform.Dc (number ln v), ac_mag) rest
  | t :: _ -> fail ln ("unexpected stimulus token: " ^ t)

and split_group ln acc = function
  | ")" :: rest -> (List.rev acc, rest)
  | [] -> fail ln "unterminated ("
  | t :: rest -> split_group ln (t :: acc) rest

(* ------------------------------------------------------------------ *)
(* model cards *)

type models = {
  mutable mos : (string * Mos_model.t) list;
  mutable var : (string * Varactor_model.t) list;
}

let lookup_param params key default =
  match List.assoc_opt key params with Some v -> v | None -> default

let parse_model ln models = function
  | name :: kind :: rest ->
    let name = String.lowercase_ascii name in
    let params = parse_params ln [] rest in
    let num key default =
      match List.assoc_opt key params with
      | Some v -> number ln v
      | None -> default
    in
    (match String.lowercase_ascii kind with
     | "nmos" | "pmos" ->
       let base =
         if String.lowercase_ascii kind = "nmos" then Mos_model.default_nmos
         else Mos_model.default_pmos
       in
       let model =
         {
           base with
           Mos_model.name;
           vt0 = num "vt0" base.Mos_model.vt0;
           kp = num "kp" base.Mos_model.kp;
           gamma = num "gamma" base.Mos_model.gamma;
           phi = num "phi" base.Mos_model.phi;
           lambda = num "lambda" base.Mos_model.lambda;
           cdb = num "cdb" base.Mos_model.cdb;
           csb = num "csb" base.Mos_model.csb;
           cgs = num "cgs" base.Mos_model.cgs;
           cgd = num "cgd" base.Mos_model.cgd;
         }
       in
       models.mos <- (name, model) :: models.mos
     | "varactor" ->
       let base = Varactor_model.default in
       let model =
         {
           Varactor_model.name;
           cmin = num "cmin" base.Varactor_model.cmin;
           cmax = num "cmax" base.Varactor_model.cmax;
           v0 = num "v0" base.Varactor_model.v0;
           vslope = num "vslope" base.Varactor_model.vslope;
         }
       in
       models.var <- (name, model) :: models.var
     | k -> fail ln ("unknown model kind: " ^ k))
  | _ -> fail ln ".model needs a name and a kind"

(* ------------------------------------------------------------------ *)
(* cards *)

let parse_card ln models tokens =
  match tokens with
  | [] -> None
  | name :: rest ->
    let lname = String.lowercase_ascii name in
    let kind = Char.lowercase_ascii name.[0] in
    (match kind, rest with
     | 'r', [ n1; n2; v ] ->
       Some (Element.Resistor { name = lname; n1; n2; ohms = number ln v })
     | 'c', [ n1; n2; v ] ->
       Some (Element.Capacitor { name = lname; n1; n2; farads = number ln v })
     | 'l', [ n1; n2; v ] ->
       Some (Element.Inductor { name = lname; n1; n2; henries = number ln v })
     | 'v', np :: nn :: stim ->
       let wave, ac_mag =
         parse_stimulus ln (Waveform.Dc 0.0, 0.0)
           (List.map String.lowercase_ascii stim)
       in
       Some (Element.Vsource { name = lname; np; nn; wave; ac_mag })
     | 'i', np :: nn :: stim ->
       let wave, ac_mag =
         parse_stimulus ln (Waveform.Dc 0.0, 0.0)
           (List.map String.lowercase_ascii stim)
       in
       Some (Element.Isource { name = lname; np; nn; wave; ac_mag })
     | 'g', [ np; nn; cp; cn; v ] ->
       Some (Element.Vccs { name = lname; np; nn; cp; cn; gm = number ln v })
     | 'e', [ np; nn; cp; cn; v ] ->
       Some (Element.Vcvs { name = lname; np; nn; cp; cn; gain = number ln v })
     | 'm', drain :: gate :: source :: bulk :: model :: params ->
       let params = parse_params ln [] params in
       let model_name = String.lowercase_ascii model in
       let model =
         match List.assoc_opt model_name models.mos with
         | Some m -> m
         | None -> fail ln ("unknown MOS model: " ^ model_name)
       in
       let w = number ln (lookup_param params "w" "10u") in
       let l = number ln (lookup_param params "l" "0.18u") in
       let mult = int_of_float (number ln (lookup_param params "m" "1")) in
       Some (Element.Mosfet { name = lname; drain; gate; source; bulk; model; w; l; mult })
     | 'y', n1 :: n2 :: model :: params ->
       let params = parse_params ln [] params in
       let model_name = String.lowercase_ascii model in
       let model =
         match List.assoc_opt model_name models.var with
         | Some m -> m
         | None -> fail ln ("unknown varactor model: " ^ model_name)
       in
       let mult = int_of_float (number ln (lookup_param params "m" "1")) in
       Some (Element.Varactor { name = lname; n1; n2; model; mult })
     | _ -> fail ln ("unrecognized card: " ^ String.concat " " tokens))

(* join '+' continuation lines *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec join acc = function
    | [] -> List.rev acc
    | (ln, line) :: rest ->
      let line = String.trim line in
      if String.length line > 0 && line.[0] = '+' then
        match acc with
        | (ln0, prev) :: acc' ->
          join ((ln0, prev ^ " " ^ String.sub line 1 (String.length line - 1)) :: acc') rest
        | [] -> fail ln "continuation line with nothing to continue"
      else join ((ln, line) :: acc) rest
  in
  join [] (List.mapi (fun i l -> (i + 1, l)) raw)

(* A [%snoise] marker line (leading [*] optional, spaces after the [*]
   allowed).  Three verbs exist: the lint-suppression pragma
   [*%snoise ignore <code>[,<code>...] [<subject>]] (a comma-separated
   code list shares the one optional subject) and the tool directives
   [*%snoise extract <key>=<value> ...] and
   [*%snoise reduce <key>=<value> ...] (e.g. [keep=n1,n2] naming
   observation nodes the model-order reduction must leave explicit).
   Returns [None] for lines that are no marker at all; raises on a
   [%snoise] line with an unknown verb so typos do not silently
   disable nothing. *)
let pragma_of_line ~file ln line =
  let body =
    let s = String.trim line in
    if String.length s > 0 && s.[0] = '*' then
      String.trim (String.sub s 1 (String.length s - 1))
    else s
  in
  if not (String.length body >= 7 && String.sub body 0 7 = "%snoise") then None
  else
    match
      String.split_on_char ' ' body |> List.filter (fun t -> t <> "")
    with
    | _ :: "ignore" :: code :: rest ->
      let subject =
        match rest with
        | [] -> None
        | [ s ] -> Some s
        | _ -> fail ln "%snoise ignore takes a code and at most one subject"
      in
      let codes =
        String.split_on_char ',' code |> List.filter (fun c -> c <> "")
      in
      if codes = [] then fail ln "%snoise ignore: empty code list";
      Some
        (`Pragmas
          (List.map
             (fun c ->
               { Netlist.ignore_code = String.lowercase_ascii c;
                 ignore_subject = subject;
                 ignore_loc = Some { Netlist.file; line = ln } })
             codes))
    | _ :: (("extract" | "reduce") as verb) :: rest ->
      let args =
        List.map
          (fun tok ->
            match String.index_opt tok '=' with
            | Some i when i > 0 && i < String.length tok - 1 ->
              ( String.lowercase_ascii (String.sub tok 0 i),
                String.sub tok (i + 1) (String.length tok - i - 1) )
            | _ ->
              fail ln
                (Printf.sprintf
                   "%%snoise %s takes key=value arguments, got: %s" verb tok))
          rest
      in
      Some (`Directive { Netlist.verb; args })
    | _ ->
      fail ln
        "unknown %snoise marker (expected: ignore <code> [<subject>] | \
         extract <key>=<value> ... | reduce <key>=<value> ...)"

let of_string ?(file = "<string>") text =
  let models = { mos = []; var = [] } in
  let title = ref "spice netlist" in
  let cards = ref [] in
  let locs = ref [] in
  let pragmas = ref [] in
  let directives = ref [] in
  (* first pass: models, title, pragmas and directives *)
  List.iter
    (fun (ln, line) ->
      match pragma_of_line ~file ln line with
      | Some (`Pragmas ps) -> pragmas := List.rev_append ps !pragmas
      | Some (`Directive d) -> directives := d :: !directives
      | None ->
        if line = "" || line.[0] = '*' then ()
        else begin
          let tokens = tokens_of_line line in
          match tokens with
          | dot :: rest when String.length dot > 0 && dot.[0] = '.' ->
            (match String.lowercase_ascii dot with
             | ".model" -> parse_model ln models rest
             | ".title" -> title := String.concat " " rest
             | ".end" -> ()
             | d -> fail ln ("unknown directive: " ^ d))
          | _ -> ()
        end)
    (logical_lines text);
  (* second pass: element cards *)
  List.iter
    (fun (ln, line) ->
      if line = "" || line.[0] = '*' || line.[0] = '.' || line.[0] = '%'
      then ()
      else
        match parse_card ln models (tokens_of_line line) with
        | Some e ->
          cards := e :: !cards;
          locs := (Element.name e, { Netlist.file; line = ln }) :: !locs
        | None -> ())
    (logical_lines text);
  Netlist.create ~title:!title ~pragmas:(List.rev !pragmas)
    ~directives:(List.rev !directives) ~locs:!locs (List.rev !cards)

(* ------------------------------------------------------------------ *)
(* printing *)

let mos_card (m : Mos_model.t) =
  Printf.sprintf
    ".model %s %s vt0=%g kp=%g gamma=%g phi=%g lambda=%g cdb=%g csb=%g cgs=%g cgd=%g"
    m.Mos_model.name
    (match m.Mos_model.polarity with
     | Mos_model.Nmos -> "nmos"
     | Mos_model.Pmos -> "pmos")
    m.Mos_model.vt0 m.Mos_model.kp m.Mos_model.gamma m.Mos_model.phi
    m.Mos_model.lambda m.Mos_model.cdb m.Mos_model.csb m.Mos_model.cgs
    m.Mos_model.cgd

let var_card (m : Varactor_model.t) =
  Printf.sprintf ".model %s varactor cmin=%g cmax=%g v0=%g vslope=%g"
    m.Varactor_model.name m.Varactor_model.cmin m.Varactor_model.cmax
    m.Varactor_model.v0 m.Varactor_model.vslope

let wave_text = function
  | Waveform.Dc v -> Printf.sprintf "DC %g" v
  | Waveform.Sin { offset; amplitude; freq; phase } ->
    Printf.sprintf "SIN(%g %g %g %g)" offset amplitude freq phase
  | Waveform.Pulse { v1; v2; delay; rise; fall; width; period } ->
    Printf.sprintf "PULSE(%g %g %g %g %g %g %g)" v1 v2 delay rise fall width
      period
  | Waveform.Pwl points ->
    Printf.sprintf "PWL(%s)"
      (String.concat " "
         (List.map (fun (t, v) -> Printf.sprintf "%g %g" t v) points))

let to_string nl =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf ".title %s\n" (Netlist.title nl));
  List.iter
    (fun (p : Netlist.pragma) ->
      Buffer.add_string b
        (match p.Netlist.ignore_subject with
         | None -> Printf.sprintf "*%%snoise ignore %s\n" p.Netlist.ignore_code
         | Some s ->
           Printf.sprintf "*%%snoise ignore %s %s\n" p.Netlist.ignore_code s))
    (Netlist.pragmas nl);
  List.iter
    (fun (d : Netlist.directive) ->
      Buffer.add_string b
        (Printf.sprintf "*%%snoise %s%s\n" d.Netlist.verb
           (String.concat ""
              (List.map
                 (fun (k, v) -> Printf.sprintf " %s=%s" k v)
                 d.Netlist.args))))
    (Netlist.directives nl);
  (* model cards, deduplicated by name *)
  let mos = Hashtbl.create 8 and var = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e with
      | Element.Mosfet { model; _ } ->
        Hashtbl.replace mos model.Mos_model.name model
      | Element.Varactor { model; _ } ->
        Hashtbl.replace var model.Varactor_model.name model
      | Element.Resistor _ | Element.Capacitor _ | Element.Inductor _
      | Element.Vsource _ | Element.Isource _ | Element.Vccs _
      | Element.Vcvs _ ->
        ())
    (Netlist.elements nl);
  Hashtbl.iter (fun _ m -> Buffer.add_string b (mos_card m ^ "\n")) mos;
  Hashtbl.iter (fun _ m -> Buffer.add_string b (var_card m ^ "\n")) var;
  List.iter
    (fun e ->
      let line =
        match e with
        | Element.Resistor { name; n1; n2; ohms } ->
          Printf.sprintf "%s %s %s %g" name n1 n2 ohms
        | Element.Capacitor { name; n1; n2; farads } ->
          Printf.sprintf "%s %s %s %g" name n1 n2 farads
        | Element.Inductor { name; n1; n2; henries } ->
          Printf.sprintf "%s %s %s %g" name n1 n2 henries
        | Element.Vsource { name; np; nn; wave; ac_mag } ->
          Printf.sprintf "%s %s %s %s AC %g" name np nn (wave_text wave) ac_mag
        | Element.Isource { name; np; nn; wave; ac_mag } ->
          Printf.sprintf "%s %s %s %s AC %g" name np nn (wave_text wave) ac_mag
        | Element.Vccs { name; np; nn; cp; cn; gm } ->
          Printf.sprintf "%s %s %s %s %s %g" name np nn cp cn gm
        | Element.Vcvs { name; np; nn; cp; cn; gain } ->
          Printf.sprintf "%s %s %s %s %s %g" name np nn cp cn gain
        | Element.Mosfet { name; drain; gate; source; bulk; model; w; l; mult } ->
          Printf.sprintf "%s %s %s %s %s %s W=%g L=%g M=%d" name drain gate
            source bulk model.Mos_model.name w l mult
        | Element.Varactor { name; n1; n2; model; mult } ->
          Printf.sprintf "%s %s %s %s M=%d" name n1 n2
            model.Varactor_model.name mult
      in
      Buffer.add_string b (line ^ "\n"))
    (Netlist.elements nl);
  Buffer.add_string b ".end\n";
  Buffer.contents b

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~file:path (In_channel.input_all ic))

let save path nl =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string nl))
