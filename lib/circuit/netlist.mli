(** A circuit netlist: a titled collection of elements with validation
    and by-name merging (how the substrate macromodel, the interconnect
    parasitics and the device-level circuit are combined into one
    impact model). *)

type t

type source_loc = { file : string; line : int }
(** Where an element card came from, for diagnostics that point at the
    offending SPICE line ({!Spice.of_string} fills this in). *)

type pragma = {
  ignore_code : string;
  ignore_subject : string option;
  ignore_loc : source_loc option;
      (** the pragma's own deck line ({!Spice.of_string} fills this
          in), so a suppression that matches nothing — e.g. a typoed
          code — can be pointed at *)
}
(** A lint-suppression request carried by the netlist: ignore
    diagnostics with rule code [ignore_code], either everywhere
    ([ignore_subject = None]) or only on the named element / node /
    port.  Written in decks as
    [*%snoise ignore <code>[,<code>...] [<subject>]] and interpreted
    by [Sn_analysis]. *)

type directive = { verb : string; args : (string * string) list }
(** A tool directive carried by the netlist: a verb with key=value
    arguments, written in decks as
    [*%snoise <verb> <key>=<value> ...] — e.g.
    [*%snoise extract tiles=2x2 grid=48x48] records the intended
    substrate extraction setup so lint rules can sanity-check it
    against the deck ([Sn_analysis]'s ["extract-tile-degenerate"]). *)

exception Invalid of string list
(** Raised by {!create} with all validation messages. *)

val create :
  ?title:string ->
  ?pragmas:pragma list ->
  ?directives:directive list ->
  ?locs:(string * source_loc) list ->
  Element.t list ->
  t
(** [create ?title ?pragmas ?directives ?locs elements] validates and
    builds a netlist.  [locs] maps element names to their source
    locations (unknown names are kept but never looked up).  Raises
    {!Invalid} on duplicate element names, per-element validation
    failures, or a netlist with no ground reference. *)

val title : t -> string
val elements : t -> Element.t list
val element_count : t -> int

val pragmas : t -> pragma list
(** Suppression pragmas, in deck order. *)

val directives : t -> directive list
(** Tool directives, in deck order. *)

val element_loc : t -> string -> source_loc option
(** Source location of the element named, when known. *)

val element_locs : t -> (string * source_loc) list
(** All known locations, sorted by element name — what {!merge} and
    {!map} carry over. *)

val nodes : t -> string list
(** Sorted distinct non-ground node names. *)

val find : t -> string -> Element.t
(** Find an element by name.  Raises [Not_found]. *)

val mem_node : t -> string -> bool

val merge : ?title:string -> t list -> t
(** [merge parts] concatenates element lists (re-validating); node
    names shared across parts become electrical connections.  Pragmas,
    directives and source locations of every part are carried over. *)

val map : (Element.t -> Element.t) -> t -> t
(** Rewrite elements (revalidates). *)

val filter : (Element.t -> bool) -> t -> t
(** Drop elements (revalidates; useful for ablations). *)

val pp : Format.formatter -> t -> unit
