(** Narrowband FM/AM spur model — equations (1)-(3) of the paper.

    Each coupling entry [i] contributes a complex FM modulation index
    [beta_i = K_i H_i(f) A_noise / f_noise] and an AM index
    [m_i = G_AM_i H_i(f) A_noise]; superposition gives the sideband
    amplitudes at [f_c +- f_noise]:

    {v |V(fc +- fn)| = (Ac / 2) |m_total +- j beta_total| v} *)

type entry = {
  label : string;  (** display name, e.g. "ground interconnect" *)
  node : string;  (** merged-netlist node whose AC transfer is H_i(f) *)
  k_hz_per_v : float;  (** oscillator frequency sensitivity K_i *)
  g_am_per_v : float;  (** AM gain G_AM_i *)
}

type oscillator = {
  carrier_freq : float;  (** f_c, Hz *)
  amplitude : float;  (** A_c, V peak at the measured output *)
  entries : entry list;
}

type contribution = {
  entry_label : string;
  h_mag : float;  (** |H_i(f_noise)| *)
  beta : Complex.t;  (** FM index contribution *)
  m_am : Complex.t;  (** AM index contribution *)
  spur_dbm : float;
      (** spur power (dBm, 50 ohm) this entry alone would produce at
          [f_c + f_noise] *)
}

type spur = {
  f_noise : float;
  lower_dbm : float;  (** at f_c - f_noise *)
  upper_dbm : float;  (** at f_c + f_noise *)
  contributions : contribution list;
}

val spur :
  oscillator -> h:(string -> Complex.t) -> a_noise:float -> f_noise:float ->
  spur
(** [spur osc ~h ~a_noise ~f_noise] evaluates the model; [h node] is
    the substrate-and-interconnect transfer (unit injected amplitude)
    to [node] at [f_noise], [a_noise] the injected tone amplitude (V
    peak).  Raises [Invalid_argument] when [f_noise <= 0]. *)

val spur_sweep :
  oscillator -> h:(float -> string -> Complex.t) -> a_noise:float ->
  f_noise:float array -> spur array
(** [h f node] now also takes the frequency.  The result array is
    positioned by input index. *)

val total_modulation :
  oscillator -> h:(string -> Complex.t) -> a_noise:float -> f_noise:float ->
  Complex.t * Complex.t
(** [(beta_total, m_total)] — exposed for the behavioral synthesizer. *)
