module U = Sn_numerics.Units

type entry = {
  label : string;
  node : string;
  k_hz_per_v : float;
  g_am_per_v : float;
}

type oscillator = {
  carrier_freq : float;
  amplitude : float;
  entries : entry list;
}

type contribution = {
  entry_label : string;
  h_mag : float;
  beta : Complex.t;
  m_am : Complex.t;
  spur_dbm : float;
}

type spur = {
  f_noise : float;
  lower_dbm : float;
  upper_dbm : float;
  contributions : contribution list;
}

let cscale k (c : Complex.t) = { Complex.re = k *. c.Complex.re; im = k *. c.Complex.im }

let j_times (c : Complex.t) = { Complex.re = -.c.Complex.im; im = c.Complex.re }

(* Upper sideband amplitude (Ac/2) |m + j beta|; lower (Ac/2) |m - j beta|. *)
let sideband_amplitudes amplitude beta m =
  let jb = j_times beta in
  let upper = 0.5 *. amplitude *. Complex.norm (Complex.add m jb) in
  let lower = 0.5 *. amplitude *. Complex.norm (Complex.sub m jb) in
  (lower, upper)

let dbm_of_amplitude a =
  if a <= 0.0 then -300.0 else U.dbm_of_vpeak a

let spur osc ~h ~a_noise ~f_noise =
  if f_noise <= 0.0 then invalid_arg "Impact.spur: f_noise must be > 0";
  let eval (e : entry) =
    let hi = h e.node in
    let beta = cscale (e.k_hz_per_v *. a_noise /. f_noise) hi in
    let m_am = cscale (e.g_am_per_v *. a_noise) hi in
    let _, upper = sideband_amplitudes osc.amplitude beta m_am in
    {
      entry_label = e.label;
      h_mag = Complex.norm hi;
      beta;
      m_am;
      spur_dbm = dbm_of_amplitude upper;
    }
  in
  let contributions = List.map eval osc.entries in
  let beta_total =
    List.fold_left (fun acc c -> Complex.add acc c.beta) Complex.zero
      contributions
  in
  let m_total =
    List.fold_left (fun acc c -> Complex.add acc c.m_am) Complex.zero
      contributions
  in
  let lower, upper = sideband_amplitudes osc.amplitude beta_total m_total in
  {
    f_noise;
    lower_dbm = dbm_of_amplitude lower;
    upper_dbm = dbm_of_amplitude upper;
    contributions;
  }

let spur_sweep osc ~h ~a_noise ~f_noise =
  Array.map (fun f -> spur osc ~h:(h f) ~a_noise ~f_noise:f) f_noise

let total_modulation osc ~h ~a_noise ~f_noise =
  let s = spur osc ~h ~a_noise ~f_noise in
  let beta =
    List.fold_left (fun acc c -> Complex.add acc c.beta) Complex.zero
      s.contributions
  in
  let m =
    List.fold_left (fun acc c -> Complex.add acc c.m_am) Complex.zero
      s.contributions
  in
  (beta, m)
