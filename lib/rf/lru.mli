(** Bounded string-keyed LRU map.

    Caps the serving layer's per-[(vtune, grid)] VCO flow cache (each
    resident flow holds a substrate macromodel plus compiled tank
    plans, so an unbounded table is an OOM waiting for a parameter
    sweep).  Recency is a monotonic tick; eviction is an O(n) minimum
    scan, which at the single-digit-to-hundreds capacities used here
    is cheaper than intrusive-list bookkeeping.

    Not thread-safe — callers serialize access (the service holds its
    own lock around every cache probe). *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty cache holding at most
    [capacity] entries.  @raise Invalid_argument if [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Look up a key, refreshing its recency on a hit. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or replace) a binding, evicting least-recently-used
    entries until the cache fits its capacity. *)

val trim : 'a t -> max_entries:int -> int
(** [trim t ~max_entries] evicts LRU entries until at most
    [max_entries] remain (memory-pressure shedding); returns how many
    were dropped. *)

val length : 'a t -> int
(** Resident entries. *)

val capacity : 'a t -> int

val evictions : 'a t -> int
(** Total evictions since creation (capacity plus {!trim}). *)

val clear : 'a t -> unit
