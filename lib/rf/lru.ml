(* Small bounded LRU map, used to cap the per-(vtune, grid) VCO flow
   cache in the serving layer.  Recency is a monotonic tick stamped on
   every find/add; eviction scans for the minimum — capacities here
   are single digits to low hundreds, so O(n) eviction beats the
   bookkeeping of an intrusive list.  Not thread-safe: callers hold
   their own lock (the service serializes cache access already). *)

type 'a entry = { value : 'a; mutable last_use : int }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create 8; tick = 0; evictions = 0 }

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
    touch t e;
    Some e.value

let length t = Hashtbl.length t.table

let evictions t = t.evictions

let capacity t = t.capacity

let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, age) when age <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    t.table;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some e ->
    touch t e;
    Hashtbl.replace t.table key { value; last_use = e.last_use }
  | None ->
    let e = { value; last_use = 0 } in
    touch t e;
    Hashtbl.replace t.table key e);
  while Hashtbl.length t.table > t.capacity do
    evict_one t
  done

let trim t ~max_entries =
  let dropped = ref 0 in
  while Hashtbl.length t.table > max 0 max_entries do
    evict_one t;
    incr dropped
  done;
  !dropped

let clear t = Hashtbl.reset t.table
