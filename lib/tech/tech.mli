(** Process technology description.

    Lengths in this module are SI (meters, ohms, farads); the layout
    layer works in micrometers and the extractors convert via
    {!micron}. *)

val micron : float
(** [micron] is 1e-6 m. *)

type metal = {
  index : int;  (** 1-based metal level *)
  sheet_resistance : float;  (** ohm / square *)
  thickness : float;  (** m *)
  height : float;  (** dielectric height above the substrate surface, m *)
  min_width : float;  (** m *)
}

type via = {
  level : int;  (** connects metal [level] to metal [level + 1]; 0 = contact *)
  resistance : float;  (** ohm per cut *)
}

type substrate_layer = {
  depth : float;  (** layer thickness, m *)
  resistivity : float;  (** ohm * m *)
}

type substrate_profile = {
  layers : substrate_layer list;  (** surface first *)
  contact_resistance : float;
      (** ohm * m^2: specific contact resistance of a p+ tap *)
  nwell_cap_area : float;  (** F / m^2: n-well to bulk junction *)
  nwell_cap_perimeter : float;  (** F / m: n-well sidewall *)
}

type t = {
  name : string;
  metals : metal list;
  vias : via list;
  substrate : substrate_profile;
  oxide_permittivity : float;  (** F / m, effective IMD permittivity *)
  supply_voltage : float;  (** V *)
}

exception Unknown_metal of { tech : string; index : int; available : int list }
(** A metal level the stack does not define; [available] lists the
    levels it does, in ascending order. *)

exception Unknown_via of { tech : string; level : int; available : int list }
(** A via level the stack does not define; [available] lists the
    levels it does, in ascending order. *)

val metal : t -> int -> metal
(** [metal t k] is metal level [k].  Raises {!Unknown_metal}. *)

val via : t -> int -> via
(** [via t k].  Raises {!Unknown_via}. *)

val substrate_depth : t -> float
(** Total modeled substrate thickness. *)

val wire_capacitance_per_area : t -> int -> float
(** [wire_capacitance_per_area t k] is the parallel-plate C density
    (F/m^2) of metal [k] to the substrate surface. *)

val wire_fringe_per_length : t -> int -> float
(** [wire_fringe_per_length t k] is the fringe C density (F/m) of a
    metal-[k] edge to substrate — a standard empirical closed form. *)

val validate : t -> (unit, string) result
(** Sanity checks: positive dimensions, contiguous metal indices,
    non-empty substrate profile. *)

val imec018 : t
(** The paper's high-ohmic (20 ohm cm) twin-well 1P6M 0.18 um CMOS
    technology, reconstructed from the values stated in the paper and
    typical 0.18 um back-end parameters. *)

val epi018 : t
(** The same back-end on an epitaxial wafer: a thin lightly doped epi
    layer over a heavily doped p+ bulk.  The p+ bulk behaves almost as
    a single node, which famously changes every substrate-coupling
    trade-off (distance and guard rings stop helping; a backside
    contact dominates) — the contrast the paper's "high-ohmic"
    qualifier refers to. *)
