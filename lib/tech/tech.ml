let micron = 1.0e-6

type metal = {
  index : int;
  sheet_resistance : float;
  thickness : float;
  height : float;
  min_width : float;
}

type via = { level : int; resistance : float }

type substrate_layer = { depth : float; resistivity : float }

type substrate_profile = {
  layers : substrate_layer list;
  contact_resistance : float;
  nwell_cap_area : float;
  nwell_cap_perimeter : float;
}

type t = {
  name : string;
  metals : metal list;
  vias : via list;
  substrate : substrate_profile;
  oxide_permittivity : float;
  supply_voltage : float;
}

exception Unknown_metal of { tech : string; index : int; available : int list }
exception Unknown_via of { tech : string; level : int; available : int list }

let () =
  Printexc.register_printer (function
    | Unknown_metal { tech; index; available } ->
      Some
        (Printf.sprintf "Tech.Unknown_metal(%s has no metal %d; available: %s)"
           tech index
           (String.concat ", " (List.map string_of_int available)))
    | Unknown_via { tech; level; available } ->
      Some
        (Printf.sprintf "Tech.Unknown_via(%s has no via level %d; available: %s)"
           tech level
           (String.concat ", " (List.map string_of_int available)))
    | _ -> None)

let metal t k =
  match List.find_opt (fun m -> m.index = k) t.metals with
  | Some m -> m
  | None ->
    raise
      (Unknown_metal
         { tech = t.name; index = k;
           available = List.map (fun m -> m.index) t.metals |> List.sort compare })

let via t k =
  match List.find_opt (fun v -> v.level = k) t.vias with
  | Some v -> v
  | None ->
    raise
      (Unknown_via
         { tech = t.name; level = k;
           available = List.map (fun v -> v.level) t.vias |> List.sort compare })

let substrate_depth t =
  List.fold_left (fun acc l -> acc +. l.depth) 0.0 t.substrate.layers

let wire_capacitance_per_area t k =
  let m = metal t k in
  t.oxide_permittivity /. m.height

(* Empirical fringe term: eps * 2 pi / ln (1 + 2 h / t) per edge is a
   common closed form; we fold both edges into one per-length figure. *)
let wire_fringe_per_length t k =
  let m = metal t k in
  2.0 *. t.oxide_permittivity *. Sn_numerics.Units.two_pi
  /. log (1.0 +. (2.0 *. m.height /. m.thickness))

let validate t =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let* () = check (t.metals <> []) "no metal layers" in
  let* () =
    check
      (List.for_all
         (fun m ->
           m.sheet_resistance > 0.0 && m.thickness > 0.0 && m.height > 0.0
           && m.min_width > 0.0)
         t.metals)
      "non-positive metal parameter"
  in
  let sorted = List.sort (fun a b -> compare a.index b.index) t.metals in
  let* () =
    check
      (List.mapi (fun i m -> m.index = i + 1) sorted |> List.for_all Fun.id)
      "metal indices must be contiguous from 1"
  in
  let* () = check (t.substrate.layers <> []) "empty substrate profile" in
  let* () =
    check
      (List.for_all
         (fun l -> l.depth > 0.0 && l.resistivity > 0.0)
         t.substrate.layers)
      "non-positive substrate layer parameter"
  in
  let* () =
    check (t.substrate.contact_resistance > 0.0) "non-positive contact resistance"
  in
  check (t.oxide_permittivity > 0.0) "non-positive oxide permittivity"

let eps0 = 8.854e-12
let eps_sio2 = 3.9 *. eps0

(* The paper's technology: 0.18 um 1P6M CMOS on a high-ohmic
   (20 ohm cm = 0.2 ohm m) lightly doped bulk.  Back-end heights and
   sheet resistances are standard 0.18 um generic values.  The surface
   layer captures the p+ channel-stop / diffusion region, an order of
   magnitude more conductive than the bulk. *)
let imec018 =
  {
    name = "imec-0.18um-1P6M-high-ohmic";
    metals =
      [
        { index = 1; sheet_resistance = 0.08; thickness = 0.35 *. micron;
          height = 1.0 *. micron; min_width = 0.23 *. micron };
        { index = 2; sheet_resistance = 0.08; thickness = 0.35 *. micron;
          height = 2.0 *. micron; min_width = 0.28 *. micron };
        { index = 3; sheet_resistance = 0.08; thickness = 0.35 *. micron;
          height = 3.0 *. micron; min_width = 0.28 *. micron };
        { index = 4; sheet_resistance = 0.08; thickness = 0.35 *. micron;
          height = 4.0 *. micron; min_width = 0.28 *. micron };
        { index = 5; sheet_resistance = 0.08; thickness = 0.35 *. micron;
          height = 5.0 *. micron; min_width = 0.28 *. micron };
        { index = 6; sheet_resistance = 0.025; thickness = 0.99 *. micron;
          height = 6.2 *. micron; min_width = 0.44 *. micron };
      ];
    vias =
      [
        { level = 0; resistance = 8.0 };
        { level = 1; resistance = 4.0 };
        { level = 2; resistance = 4.0 };
        { level = 3; resistance = 4.0 };
        { level = 4; resistance = 4.0 };
        { level = 5; resistance = 2.0 };
      ];
    substrate =
      {
        layers =
          [
            (* p+ surface region (channel stop, diffusions): a heavy
               2 kohm/sq sheet over the high-ohmic bulk *)
            { depth = 1.0 *. micron; resistivity = 0.002 };
            (* high-ohmic bulk: 20 ohm cm *)
            { depth = 50.0 *. micron; resistivity = 0.2 };
            { depth = 150.0 *. micron; resistivity = 0.2 };
            { depth = 300.0 *. micron; resistivity = 0.2 };
          ];
        contact_resistance = 1.0e-11 (* ohm m^2: ~10 ohm um^2 p+ tap *);
        nwell_cap_area = 1.0e-4 (* F/m^2: 0.1 fF/um^2 junction *);
        nwell_cap_perimeter = 1.0e-10 (* F/m: 0.1 fF/mm sidewall *);
      };
    oxide_permittivity = eps_sio2;
    supply_voltage = 1.8;
  }

(* Epitaxial variant: ~4 um of 10 ohm cm epi over a 0.01 ohm cm p+
   bulk.  The heavily doped bulk is a near-equipotential plane a few
   micrometers under every device. *)
let epi018 =
  {
    imec018 with
    name = "epi-0.18um-1P6M";
    substrate =
      {
        imec018.substrate with
        layers =
          [
            (* p- epi, lightly doped *)
            { depth = 1.0 *. micron; resistivity = 0.1 };
            { depth = 3.0 *. micron; resistivity = 0.1 };
            (* p+ bulk: 0.01 ohm cm *)
            { depth = 100.0 *. micron; resistivity = 1.0e-4 };
            { depth = 400.0 *. micron; resistivity = 1.0e-4 };
          ];
      };
  }
