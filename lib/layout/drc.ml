module G = Sn_geometry
module T = Sn_tech.Tech

type violation =
  | Min_width of {
      net : string;
      layer : Layer.t;
      width : float;
      minimum : float;
    }
  | Net_short of { layer : Layer.t; net_a : string; net_b : string }

let min_width_checks ~tech shapes =
  List.filter_map
    (fun (s : Shape.t) ->
      match (s.Shape.geometry, Layer.metal_index s.Shape.layer) with
      | Shape.Path { path; _ }, Some level ->
        (match T.metal tech level with
         | metal ->
           let minimum = metal.T.min_width /. T.micron in
           let width = G.Path.width path in
           if width < minimum then
             Some
               (Min_width { net = s.Shape.net; layer = s.Shape.layer; width;
                            minimum })
           else None
         | exception T.Unknown_metal _ -> None)
      | (Shape.Path _ | Shape.Rect _), _ -> None)
    shapes

(* Same-layer different-net overlap with positive area. *)
let short_checks shapes =
  let indexed = Array.of_list shapes in
  let n = Array.length indexed in
  let acc = ref [] in
  let seen = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = indexed.(i) and b = indexed.(j) in
      if
        Layer.equal a.Shape.layer b.Shape.layer
        && not (String.equal a.Shape.net b.Shape.net)
      then begin
        match G.Rect.intersection (Shape.bbox a) (Shape.bbox b) with
        | Some o when G.Rect.area o > 1e-9 ->
          let key =
            (Layer.name a.Shape.layer, min a.Shape.net b.Shape.net,
             max a.Shape.net b.Shape.net)
          in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            acc :=
              Net_short
                { layer = a.Shape.layer; net_a = a.Shape.net;
                  net_b = b.Shape.net }
              :: !acc
          end
        | Some _ | None -> ()
      end
    done
  done;
  List.rev !acc

let check ~tech layout =
  let shapes = Layout.flatten layout in
  min_width_checks ~tech shapes @ short_checks shapes

let pp fmt = function
  | Min_width { net; layer; width; minimum } ->
    Format.fprintf fmt
      "min-width: net %s on %a is %.3f um wide (minimum %.3f um)" net
      Layer.pp layer width minimum
  | Net_short { layer; net_a; net_b } ->
    Format.fprintf fmt "short: nets %s and %s overlap on %a" net_a net_b
      Layer.pp layer
