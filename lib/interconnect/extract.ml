module G = Sn_geometry
module L = Sn_layout
module T = Sn_tech.Tech

let log_src = Logs.Src.create "sn.interconnect" ~doc:"interconnect extraction"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  include_resistance : bool;
  include_capacitance : bool;
  substrate_node : string;
  min_resistance : float;
}

let default_options =
  {
    include_resistance = true;
    include_capacitance = true;
    substrate_node = "sub_bulk";
    min_resistance = 1.0e-6;
  }

type report = {
  netlist : Rc_netlist.t;
  wires_extracted : int;
  wires_skipped : int;
  total_squares : float;
}

(* Area of one via cut plus surround, used to convert a via-array strip
   into a cut count. *)
let via_cut_area_um2 = 0.25

let segment_elements options tech ~layer ~net ~shape_id ~from_node ~to_node path =
  let metal_level =
    match L.Layer.metal_index layer with
    | Some k -> k
    | None -> invalid_arg "Extract: segment_elements on non-metal layer"
  in
  let metal =
    match T.metal tech metal_level with
    | m -> m
    | exception T.Unknown_metal { tech; index; available } ->
      invalid_arg
        (Printf.sprintf "Extract: %s has no metal level %d (available: %s)"
           tech index
           (String.concat ", " (List.map string_of_int available)))
  in
  let width_um = G.Path.width path in
  let cap_area = T.wire_capacitance_per_area tech metal_level in
  let cap_fringe = T.wire_fringe_per_length tech metal_level in
  let segs = G.Path.segments path in
  let n_segs = List.length segs in
  let node k =
    if k = 0 then from_node
    else if k = n_segs then to_node
    else Printf.sprintf "%s~%s~%d" net shape_id k
  in
  List.concat
    (List.mapi
       (fun k (a, b) ->
         let len_um = G.Point.distance a b in
         let squares = len_um /. width_um in
         let r =
           if options.include_resistance then
             Float.max options.min_resistance
               (metal.T.sheet_resistance *. squares)
           else options.min_resistance
         in
         let n1 = node k and n2 = node (k + 1) in
         let res =
           Rc_netlist.Res
             { name = Printf.sprintf "R%s.%d" shape_id k; n1; n2; ohms = r }
         in
         if options.include_capacitance then begin
           let len_m = len_um *. T.micron and width_m = width_um *. T.micron in
           let c = (cap_area *. len_m *. width_m) +. (cap_fringe *. len_m) in
           let half n idx =
             Rc_netlist.Cap
               {
                 name = Printf.sprintf "C%s.%d%s" shape_id k idx;
                 n1 = n;
                 n2 = options.substrate_node;
                 farads = c /. 2.0;
               }
           in
           [ res; half n1 "a"; half n2 "b" ]
         end
         else [ res ])
       segs)

let via_elements options tech ~level ~shape_id ~from_node ~to_node path =
  let via =
    match T.via tech level with
    | v -> v
    | exception T.Unknown_via { tech; level; available } ->
      invalid_arg
        (Printf.sprintf "Extract: %s has no via level %d (available: %s)"
           tech level
           (String.concat ", " (List.map string_of_int available)))
  in
  let area_um2 = G.Path.length path *. G.Path.width path in
  let cuts = Float.max 1.0 (Float.round (area_um2 /. via_cut_area_um2)) in
  let r =
    if options.include_resistance then
      Float.max options.min_resistance (via.T.resistance /. cuts)
    else options.min_resistance
  in
  [
    Rc_netlist.Res
      { name = Printf.sprintf "R%s.via" shape_id;
        n1 = from_node; n2 = to_node; ohms = r };
  ]

let extract ?(options = default_options) ~tech layout =
  let extracted = ref 0 and skipped = ref 0 and squares = ref 0.0 in
  let elements = ref [] in
  List.iteri
    (fun idx (s : L.Shape.t) ->
      match s.L.Shape.geometry with
      | L.Shape.Rect _ -> ()
      | L.Shape.Path { path; from_terminal; to_terminal } ->
        let shape_id = Printf.sprintf "%s.%d" s.L.Shape.net idx in
        (match (s.L.Shape.layer, from_terminal, to_terminal) with
         | L.Layer.Metal _, Some from_node, Some to_node ->
           incr extracted;
           squares := !squares +. G.Path.squares path;
           elements :=
             List.rev_append
               (segment_elements options tech ~layer:s.L.Shape.layer
                  ~net:s.L.Shape.net ~shape_id ~from_node ~to_node path)
               !elements
         | L.Layer.Via level, Some from_node, Some to_node ->
           incr extracted;
           elements :=
             List.rev_append
               (via_elements options tech ~level ~shape_id ~from_node
                  ~to_node path)
               !elements
         | (L.Layer.Metal _ | L.Layer.Via _), _, _ ->
           incr skipped;
           Log.debug (fun m ->
               m "skipping unterminated wire on net %s" s.L.Shape.net)
         | ( ( L.Layer.Substrate_contact | L.Layer.Nwell | L.Layer.Diffusion
             | L.Layer.Poly | L.Layer.Pad | L.Layer.Backgate_probe _ ),
             _, _ ) ->
           ()))
    (L.Layout.flatten layout);
  Log.info (fun m ->
      m "extracted %d wires (%d skipped), %.1f squares" !extracted !skipped
        !squares);
  {
    netlist = List.rev !elements;
    wires_extracted = !extracted;
    wires_skipped = !skipped;
    total_squares = !squares;
  }

let widen_net ~net ~factor layout =
  L.Layout.map_shapes
    (fun (s : L.Shape.t) ->
      if String.equal s.L.Shape.net net && L.Layer.is_metal s.L.Shape.layer
      then L.Shape.scale_path_width factor s
      else s)
    layout
