exception Singular of int

module Make (F : Field.S) = struct
  type matrix = F.t array array
  type t = { lu : matrix; perm : int array; sign : int }

  let matrix_of_fun n f = Array.init n (fun i -> Array.init n (fun j -> f i j))

  let check_square a =
    let n = Array.length a in
    Array.iter
      (fun r -> if Array.length r <> n then invalid_arg "Lu: matrix not square")
      a;
    n

  (* Doolittle elimination with row partial pivoting; pivot weight is
     F.magnitude so the same code pivots sensibly for complex entries. *)
  let decompose a =
    let n = check_square a in
    let lu = Array.map Array.copy a in
    let perm = Array.init n (fun i -> i) in
    let sign = ref 1 in
    for k = 0 to n - 1 do
      let best = ref k and best_mag = ref (F.magnitude lu.(k).(k)) in
      for i = k + 1 to n - 1 do
        let m = F.magnitude lu.(i).(k) in
        if m > !best_mag then begin
          best := i;
          best_mag := m
        end
      done;
      if not (Float.is_finite !best_mag) || !best_mag = 0.0 then raise (Singular k);
      if !best <> k then begin
        let tmp = lu.(k) in
        lu.(k) <- lu.(!best);
        lu.(!best) <- tmp;
        let tp = perm.(k) in
        perm.(k) <- perm.(!best);
        perm.(!best) <- tp;
        sign := - !sign
      end;
      let pivot = lu.(k).(k) in
      for i = k + 1 to n - 1 do
        let factor = F.div lu.(i).(k) pivot in
        lu.(i).(k) <- factor;
        if F.magnitude factor <> 0.0 then
          for j = k + 1 to n - 1 do
            lu.(i).(j) <- F.sub lu.(i).(j) (F.mul factor lu.(k).(j))
          done
      done
    done;
    { lu; perm; sign = !sign }

  let solve { lu; perm; _ } b =
    let n = Array.length lu in
    if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
    let x = Array.init n (fun i -> b.(perm.(i))) in
    (* forward substitution: L has unit diagonal *)
    for i = 1 to n - 1 do
      let acc = ref x.(i) in
      for j = 0 to i - 1 do
        acc := F.sub !acc (F.mul lu.(i).(j) x.(j))
      done;
      x.(i) <- !acc
    done;
    (* back substitution *)
    for i = n - 1 downto 0 do
      let acc = ref x.(i) in
      for j = i + 1 to n - 1 do
        acc := F.sub !acc (F.mul lu.(i).(j) x.(j))
      done;
      x.(i) <- F.div !acc lu.(i).(i)
    done;
    x

  let solve_matrix a b = solve (decompose a) b

  (* A = P^T L U, so A^T x = b unrolls as U^T z = b (forward, diagonal
     division), L^T y = z (backward, unit diagonal), x = P^T y.  The
     transposed triangles are read column-wise from the stored factor,
     so no transposed matrix is ever materialized. *)
  let solve_transpose { lu; perm; _ } b =
    let n = Array.length lu in
    if Array.length b <> n then
      invalid_arg "Lu.solve_transpose: dimension mismatch";
    let z = Array.make n F.zero in
    for i = 0 to n - 1 do
      let acc = ref b.(i) in
      for j = 0 to i - 1 do
        acc := F.sub !acc (F.mul lu.(j).(i) z.(j))
      done;
      z.(i) <- F.div !acc lu.(i).(i)
    done;
    for i = n - 1 downto 0 do
      let acc = ref z.(i) in
      for j = i + 1 to n - 1 do
        acc := F.sub !acc (F.mul lu.(j).(i) z.(j))
      done;
      z.(i) <- !acc
    done;
    let x = Array.make n F.zero in
    for i = 0 to n - 1 do
      x.(perm.(i)) <- z.(i)
    done;
    x

  let det { lu; sign; _ } =
    let n = Array.length lu in
    let d = ref (if sign >= 0 then F.one else F.neg F.one) in
    for i = 0 to n - 1 do
      d := F.mul !d lu.(i).(i)
    done;
    !d

  let dim { lu; _ } = Array.length lu
end

module Real = Make (Field.Real)
module Cplx = Make (Field.Cplx)

(* ------------------------------------------------------------------ *)
(* Real factorization on the flat row-major representation of Mat.t.

   The functorial code above builds an array-of-arrays; going through
   it from [Mat.t] used to allocate n boxed rows per solve.  The flat
   variant copies the backing store once (a single [Array.copy]) and
   eliminates in place, and the factor can be refilled in place for
   repeated factorizations of a same-shape system. *)

type rfactor = { fn : int; fa : float array; fperm : int array }

let factor_flat n a perm =
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  for k = 0 to n - 1 do
    let best = ref k and best_mag = ref (Float.abs a.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let m = Float.abs a.((i * n) + k) in
      if m > !best_mag then begin
        best := i;
        best_mag := m
      end
    done;
    if not (Float.is_finite !best_mag) || !best_mag = 0.0 then raise (Singular k);
    if !best <> k then begin
      let rk = k * n and rb = !best * n in
      for j = 0 to n - 1 do
        let tmp = a.(rk + j) in
        a.(rk + j) <- a.(rb + j);
        a.(rb + j) <- tmp
      done;
      let tp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tp
    end;
    let pivot = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let factor = a.((i * n) + k) /. pivot in
      a.((i * n) + k) <- factor;
      if factor <> 0.0 then begin
        let ri = i * n and rk = k * n in
        for j = k + 1 to n - 1 do
          a.(ri + j) <- a.(ri + j) -. (factor *. a.(rk + j))
        done
      end
    done
  done

let factor_mat m =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Lu.factor_mat: matrix not square";
  let a = Array.copy (Mat.raw_data m) in
  let perm = Array.make n 0 in
  factor_flat n a perm;
  { fn = n; fa = a; fperm = perm }

(* Refill an existing factor from a same-size matrix, reusing both
   workspaces instead of allocating fresh ones. *)
let refactor_mat f m =
  if Mat.rows m <> f.fn || Mat.cols m <> f.fn then
    invalid_arg "Lu.refactor_mat: dimension mismatch";
  Array.blit (Mat.raw_data m) 0 f.fa 0 (f.fn * f.fn);
  factor_flat f.fn f.fa f.fperm

let solve_factored_into { fn = n; fa = a; fperm = perm } b x =
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Lu.solve_factored_into: dimension mismatch";
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    let ri = i * n in
    for j = 0 to i - 1 do
      acc := !acc -. (a.(ri + j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    let ri = i * n in
    for j = i + 1 to n - 1 do
      acc := !acc -. (a.(ri + j) *. x.(j))
    done;
    x.(i) <- !acc /. a.(ri + i)
  done

let solve_factored f b =
  let x = Array.make f.fn 0.0 in
  solve_factored_into f b x;
  x

let rdim f = f.fn

let solve_mat a b =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.solve_mat: matrix not square";
  if Array.length b <> n then invalid_arg "Lu.solve_mat: dimension mismatch";
  solve_factored (factor_mat a) b

let invert_mat a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.invert_mat: matrix not square";
  let f = factor_mat a in
  let inv = Mat.make n n in
  let e = Array.make n 0.0 and x = Array.make n 0.0 in
  for j = 0 to n - 1 do
    e.(j) <- 1.0;
    solve_factored_into f e x;
    e.(j) <- 0.0;
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  inv
