(* Sparse LU factorization with reusable symbolic structure.

   Left-looking Gilbert-Peierls factorization of a CSR matrix: the
   first factorization performs partial pivoting and a depth-first
   symbolic reach per column; the pivot order and the L/U fill patterns
   are then kept, so later factorizations of a matrix with the *same
   sparsity pattern* (the SPICE situation: one netlist, many Newton
   iterations and timesteps) skip all graph work and run a plain
   fixed-pattern numeric refill.  Below [default_crossover] unknowns a
   flat dense factorization wins on constant factors, so [factor]
   falls back to it transparently.

   Global counters record fresh factorizations, pattern-reusing
   refactorizations and triangular solves, so tests and benchmarks can
   assert reuse (e.g. a linear fixed-step transient must factor exactly
   once for the whole run).  They are atomic so counts stay exact when
   independent solves run on parallel domains (Sn_engine.Pool). *)

exception Singular of int

let default_crossover = 64

let n_factor = Atomic.make 0
let n_refactor = Atomic.make 0
let n_solve = Atomic.make 0

let factorizations () = Atomic.get n_factor
let refactorizations () = Atomic.get n_refactor
let solves () = Atomic.get n_solve

let reset_stats () =
  Atomic.set n_factor 0;
  Atomic.set n_refactor 0;
  Atomic.set n_solve 0

(* ------------------------------------------------------------------ *)

type sp = {
  n : int;
  perm : int array; (* perm.(k) = original row pivotal at step k *)
  (* input-matrix columns: row indices in pivot coordinates, values
     read through [aval_src] straight from the CSR value array *)
  acolptr : int array;
  arow : int array;
  aval_src : int array;
  (* L: CSC, strictly-lower row indices in pivot coordinates, unit
     diagonal implicit *)
  lcolptr : int array;
  lrow : int array;
  lval : float array;
  (* U: CSC, strictly-upper row indices in pivot coordinates, sorted
     ascending within each column; diagonal kept apart in [dval] *)
  ucolptr : int array;
  urow : int array;
  uval : float array;
  dval : float array;
  work : float array; (* dense scatter vector, kept all-zero between uses *)
}

type t =
  | Dense of { df : Lu.rfactor; scratch : Mat.t option }
  | Sparse_f of sp

let dim = function
  | Dense { df; _ } -> Lu.rdim df
  | Sparse_f sp -> sp.n

let is_dense = function Dense _ -> true | Sparse_f _ -> false

(* Sort the [lo, hi) segment of a (row, value) column by row index.
   Columns are short, so insertion sort is fine. *)
let sort_column_segment rows vals lo hi =
  let rdata = Dyn.I.unsafe_data rows and vdata = Dyn.F.unsafe_data vals in
  for p = lo + 1 to hi - 1 do
    let r = rdata.(p) and v = vdata.(p) in
    let q = ref (p - 1) in
    while !q >= lo && rdata.(!q) > r do
      rdata.(!q + 1) <- rdata.(!q);
      vdata.(!q + 1) <- vdata.(!q);
      decr q
    done;
    rdata.(!q + 1) <- r;
    vdata.(!q + 1) <- v
  done

let gp_factor m =
  let n = Sparse.rows m in
  let nnz = Sparse.nnz m in
  let row_ptr = Sparse.row_ptr m
  and col_idx = Sparse.col_idx m
  and vals = Sparse.values m in
  (* CSC view of A carrying, for each entry, its index in the CSR value
     array so refactorization can reread values without re-sorting *)
  let acolptr = Array.make (n + 1) 0 in
  for p = 0 to nnz - 1 do
    acolptr.(col_idx.(p) + 1) <- acolptr.(col_idx.(p) + 1) + 1
  done;
  for j = 0 to n - 1 do
    acolptr.(j + 1) <- acolptr.(j + 1) + acolptr.(j)
  done;
  let cursor = Array.sub acolptr 0 n in
  let arow_orig = Array.make nnz 0 in
  let aval_src = Array.make nnz 0 in
  for i = 0 to n - 1 do
    for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let j = col_idx.(p) in
      let q = cursor.(j) in
      arow_orig.(q) <- i;
      aval_src.(q) <- p;
      cursor.(j) <- q + 1
    done
  done;
  (* Gilbert-Peierls state *)
  let pinv = Array.make n (-1) in
  let perm = Array.make n (-1) in
  let lcolptr = Array.make (n + 1) 0 in
  let ucolptr = Array.make (n + 1) 0 in
  let cap = max (2 * nnz) 16 in
  let lrow = Dyn.I.create ~capacity:cap () in
  let lval = Dyn.F.create ~capacity:cap () in
  let urow = Dyn.I.create ~capacity:cap () in
  let uval = Dyn.F.create ~capacity:cap () in
  let dval = Array.make n 0.0 in
  let x = Array.make n 0.0 in
  let visited = Array.make n (-1) in
  let topo = Array.make n 0 in
  let stack = Array.make n 0 in
  let pstack = Array.make n 0 in
  for col = 0 to n - 1 do
    (* symbolic: reach of the A(:,col) nonzeros in the graph of the
       finished L columns, collected in reverse topological order in
       topo.(top..n-1) *)
    let top = ref n in
    for p = acolptr.(col) to acolptr.(col + 1) - 1 do
      let seed = arow_orig.(p) in
      if visited.(seed) <> col then begin
        let sp = ref 0 in
        stack.(0) <- seed;
        pstack.(0) <-
          (let k = pinv.(seed) in
           if k >= 0 then lcolptr.(k) else 0);
        visited.(seed) <- col;
        while !sp >= 0 do
          let i = stack.(!sp) in
          let k = pinv.(i) in
          let hi = if k >= 0 then lcolptr.(k + 1) else 0 in
          let next = pstack.(!sp) in
          if k >= 0 && next < hi then begin
            pstack.(!sp) <- next + 1;
            let child = Dyn.I.get lrow next in
            if visited.(child) <> col then begin
              visited.(child) <- col;
              incr sp;
              stack.(!sp) <- child;
              pstack.(!sp) <-
                (let ck = pinv.(child) in
                 if ck >= 0 then lcolptr.(ck) else 0)
            end
          end
          else begin
            decr top;
            topo.(!top) <- i;
            decr sp
          end
        done
      end
    done;
    (* numeric: sparse solve L x = A(:,col) along the reach *)
    for p = acolptr.(col) to acolptr.(col + 1) - 1 do
      x.(arow_orig.(p)) <- vals.(aval_src.(p))
    done;
    for t = !top to n - 1 do
      let i = topo.(t) in
      let k = pinv.(i) in
      if k >= 0 then begin
        let xi = x.(i) in
        if xi <> 0.0 then
          for q = lcolptr.(k) to lcolptr.(k + 1) - 1 do
            let r = Dyn.I.get lrow q in
            x.(r) <- x.(r) -. (Dyn.F.get lval q *. xi)
          done
      end
    done;
    (* partial pivot among the not-yet-pivotal reach entries *)
    let piv = ref (-1) and piv_mag = ref 0.0 in
    for t = !top to n - 1 do
      let i = topo.(t) in
      if pinv.(i) < 0 then begin
        let mag = Float.abs x.(i) in
        if mag > !piv_mag then begin
          piv := i;
          piv_mag := mag
        end
      end
    done;
    if !piv < 0 || not (Float.is_finite !piv_mag) || !piv_mag = 0.0 then begin
      (* keep the scatter vector clean before bailing out *)
      for t = !top to n - 1 do
        x.(topo.(t)) <- 0.0
      done;
      raise (Singular col)
    end;
    let d = x.(!piv) in
    pinv.(!piv) <- col;
    perm.(col) <- !piv;
    dval.(col) <- d;
    for t = !top to n - 1 do
      let i = topo.(t) in
      if i <> !piv then begin
        let k = pinv.(i) in
        if k >= 0 then begin
          (* finished pivot: U entry at row k; the pattern is kept even
             for exact numeric zeros so refactorization stays valid *)
          Dyn.I.push urow k;
          Dyn.F.push uval x.(i)
        end
        else begin
          Dyn.I.push lrow i;
          Dyn.F.push lval (x.(i) /. d)
        end
      end;
      x.(i) <- 0.0
    done;
    ucolptr.(col + 1) <- Dyn.I.length urow;
    lcolptr.(col + 1) <- Dyn.I.length lrow;
    (* refactorization walks U columns in ascending row order *)
    sort_column_segment urow uval ucolptr.(col) ucolptr.(col + 1)
  done;
  (* remap L rows and the A scatter rows into pivot coordinates *)
  let lrow = Dyn.I.to_array lrow in
  for p = 0 to Array.length lrow - 1 do
    lrow.(p) <- pinv.(lrow.(p))
  done;
  let arow = Array.make nnz 0 in
  for p = 0 to nnz - 1 do
    arow.(p) <- pinv.(arow_orig.(p))
  done;
  {
    n;
    perm;
    acolptr;
    arow;
    aval_src;
    lcolptr;
    lrow;
    lval = Dyn.F.to_array lval;
    ucolptr;
    urow = Dyn.I.to_array urow;
    uval = Dyn.F.to_array uval;
    dval;
    work = x;
  }

(* Numeric refill of an existing factor from a matrix with the same
   sparsity pattern: no reach computation, no pivot search. *)
let sp_refactor sp m =
  let vals = Sparse.values m in
  if Sparse.rows m <> sp.n || Sparse.cols m <> sp.n then
    invalid_arg "Splu.refactor: dimension mismatch";
  if Array.length vals <> Array.length sp.aval_src then
    invalid_arg "Splu.refactor: sparsity pattern changed";
  let x = sp.work in
  let clear_column col =
    for p = sp.ucolptr.(col) to sp.ucolptr.(col + 1) - 1 do
      x.(sp.urow.(p)) <- 0.0
    done;
    x.(col) <- 0.0;
    for q = sp.lcolptr.(col) to sp.lcolptr.(col + 1) - 1 do
      x.(sp.lrow.(q)) <- 0.0
    done
  in
  for col = 0 to sp.n - 1 do
    for p = sp.acolptr.(col) to sp.acolptr.(col + 1) - 1 do
      x.(sp.arow.(p)) <- vals.(sp.aval_src.(p))
    done;
    for p = sp.ucolptr.(col) to sp.ucolptr.(col + 1) - 1 do
      let k = sp.urow.(p) in
      let xk = x.(k) in
      sp.uval.(p) <- xk;
      if xk <> 0.0 then
        for q = sp.lcolptr.(k) to sp.lcolptr.(k + 1) - 1 do
          x.(sp.lrow.(q)) <- x.(sp.lrow.(q)) -. (sp.lval.(q) *. xk)
        done
    done;
    let d = x.(col) in
    if d = 0.0 || not (Float.is_finite d) then begin
      clear_column col;
      raise (Singular col)
    end;
    sp.dval.(col) <- d;
    for q = sp.lcolptr.(col) to sp.lcolptr.(col + 1) - 1 do
      sp.lval.(q) <- x.(sp.lrow.(q)) /. d
    done;
    clear_column col
  done

let sp_solve sp b =
  let n = sp.n in
  if Array.length b <> n then invalid_arg "Splu.solve: dimension mismatch";
  let x = Array.make n 0.0 in
  for k = 0 to n - 1 do
    x.(k) <- b.(sp.perm.(k))
  done;
  for k = 0 to n - 1 do
    let xk = x.(k) in
    if xk <> 0.0 then
      for q = sp.lcolptr.(k) to sp.lcolptr.(k + 1) - 1 do
        x.(sp.lrow.(q)) <- x.(sp.lrow.(q)) -. (sp.lval.(q) *. xk)
      done
  done;
  for k = n - 1 downto 0 do
    let xk = x.(k) /. sp.dval.(k) in
    x.(k) <- xk;
    if xk <> 0.0 then
      for p = sp.ucolptr.(k) to sp.ucolptr.(k + 1) - 1 do
        x.(sp.urow.(p)) <- x.(sp.urow.(p)) -. (sp.uval.(p) *. xk)
      done
  done;
  x

(* ------------------------------------------------------------------ *)
(* public entry points *)

let to_dense_into scratch m =
  let nc = Sparse.cols m in
  let data = Mat.raw_data scratch in
  Array.fill data 0 (Array.length data) 0.0;
  for i = 0 to Sparse.rows m - 1 do
    Sparse.iter_row m i (fun j v -> data.((i * nc) + j) <- v)
  done

let lift_singular f = try f () with Lu.Singular k -> raise (Singular k)

let factor ?(crossover = default_crossover) m =
  let n = Sparse.rows m in
  if Sparse.cols m <> n then invalid_arg "Splu.factor: matrix not square";
  Atomic.incr n_factor;
  if n < crossover then begin
    let scratch = Sparse.to_dense m in
    Dense { df = lift_singular (fun () -> Lu.factor_mat scratch);
            scratch = Some scratch }
  end
  else Sparse_f (gp_factor m)

let refactor t m =
  match t with
  | Dense { df; scratch = Some s } ->
    Atomic.incr n_refactor;
    to_dense_into s m;
    lift_singular (fun () -> Lu.refactor_mat df s)
  | Dense { scratch = None; _ } ->
    invalid_arg "Splu.refactor: factor was built from a dense matrix"
  | Sparse_f sp ->
    Atomic.incr n_refactor;
    sp_refactor sp m

(* Dense entry points for callers that assemble straight into a Mat.t
   (small systems below the crossover): same counters, same exceptions. *)
let factor_dense m =
  Atomic.incr n_factor;
  Dense { df = lift_singular (fun () -> Lu.factor_mat m); scratch = None }

let refactor_dense t m =
  match t with
  | Dense { df; _ } ->
    Atomic.incr n_refactor;
    lift_singular (fun () -> Lu.refactor_mat df m)
  | Sparse_f _ -> invalid_arg "Splu.refactor_dense: not a dense factor"

let solve t b =
  Atomic.incr n_solve;
  match t with
  | Dense { df; _ } -> lift_singular (fun () -> Lu.solve_factored df b)
  | Sparse_f sp -> sp_solve sp b

(* ------------------------------------------------------------------ *)
(* Complex kernel for the frequency-domain engine.

   Same left-looking Gilbert-Peierls algorithm as the real kernel
   above, on split re/im value arrays so every inner loop stays on
   unboxed floats — a [Complex.t array] would allocate one heap block
   per entry.  The factor is split into a symbolic half (pivot order,
   A/L/U index structure: immutable after the first factorization and
   shared read-only between worker domains) and a numeric half (L/U/D
   values plus the scatter workspace: one copy per worker via
   {!Cplx.clone}), so a frequency sweep pays the graph work exactly
   once and every parallel worker refills the same pivot order — which
   is what makes parallel sweeps byte-identical to sequential ones.

   Boxed [Complex.t] appears only at the [solve] boundaries. *)

module Cplx = struct
  type mat = { pattern : Sparse.t; re : float array; im : float array }

  let mat_of_pattern pattern =
    let nnz = Sparse.nnz pattern in
    { pattern; re = Array.make nnz 0.0; im = Array.make nnz 0.0 }

  let mat_clear m =
    Array.fill m.re 0 (Array.length m.re) 0.0;
    Array.fill m.im 0 (Array.length m.im) 0.0

  let mat_to_dense m =
    let n = Sparse.rows m.pattern and nc = Sparse.cols m.pattern in
    let d = Array.make_matrix n nc Complex.zero in
    let rp = Sparse.row_ptr m.pattern and ci = Sparse.col_idx m.pattern in
    for i = 0 to n - 1 do
      for p = rp.(i) to rp.(i + 1) - 1 do
        d.(i).(ci.(p)) <- { Complex.re = m.re.(p); im = m.im.(p) }
      done
    done;
    d

  type csym = {
    n : int;
    perm : int array;
    acolptr : int array;
    arow : int array;
    aval_src : int array;
    lcolptr : int array;
    lrow : int array;
    ucolptr : int array;
    urow : int array;
  }

  type cnum = {
    lre : float array;
    lim : float array;
    ure : float array;
    uim : float array;
    dgr : float array; (* diagonal of U *)
    dgi : float array;
    wkr : float array; (* scatter workspace, all-zero between uses *)
    wki : float array;
  }

  type t =
    | Cdense of { cdim : int; mutable df : Lu.Cplx.t }
    | Csparse of { sym : csym; num : cnum }

  let dim = function
    | Cdense { cdim; _ } -> cdim
    | Csparse { sym; _ } -> sym.n

  let is_dense = function Cdense _ -> true | Csparse _ -> false

  let sort_column_segment_c rows re im lo hi =
    let rdata = Dyn.I.unsafe_data rows in
    let rd = Dyn.F.unsafe_data re and id = Dyn.F.unsafe_data im in
    for p = lo + 1 to hi - 1 do
      let r = rdata.(p) and vr = rd.(p) and vi = id.(p) in
      let q = ref (p - 1) in
      while !q >= lo && rdata.(!q) > r do
        rdata.(!q + 1) <- rdata.(!q);
        rd.(!q + 1) <- rd.(!q);
        id.(!q + 1) <- id.(!q);
        decr q
      done;
      rdata.(!q + 1) <- r;
      rd.(!q + 1) <- vr;
      id.(!q + 1) <- vi
    done

  let gp_factor_c (m : mat) =
    let pat = m.pattern in
    let n = Sparse.rows pat in
    let nnz = Sparse.nnz pat in
    let row_ptr = Sparse.row_ptr pat and col_idx = Sparse.col_idx pat in
    let vre = m.re and vim = m.im in
    let acolptr = Array.make (n + 1) 0 in
    for p = 0 to nnz - 1 do
      acolptr.(col_idx.(p) + 1) <- acolptr.(col_idx.(p) + 1) + 1
    done;
    for j = 0 to n - 1 do
      acolptr.(j + 1) <- acolptr.(j + 1) + acolptr.(j)
    done;
    let cursor = Array.sub acolptr 0 n in
    let arow_orig = Array.make nnz 0 in
    let aval_src = Array.make nnz 0 in
    for i = 0 to n - 1 do
      for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        let j = col_idx.(p) in
        let q = cursor.(j) in
        arow_orig.(q) <- i;
        aval_src.(q) <- p;
        cursor.(j) <- q + 1
      done
    done;
    let pinv = Array.make n (-1) in
    let perm = Array.make n (-1) in
    let lcolptr = Array.make (n + 1) 0 in
    let ucolptr = Array.make (n + 1) 0 in
    let cap = max (2 * nnz) 16 in
    let lrow = Dyn.I.create ~capacity:cap () in
    let lre = Dyn.F.create ~capacity:cap () in
    let lim = Dyn.F.create ~capacity:cap () in
    let urow = Dyn.I.create ~capacity:cap () in
    let ure = Dyn.F.create ~capacity:cap () in
    let uim = Dyn.F.create ~capacity:cap () in
    let dgr = Array.make n 0.0 and dgi = Array.make n 0.0 in
    let xr = Array.make n 0.0 and xi = Array.make n 0.0 in
    let visited = Array.make n (-1) in
    let topo = Array.make n 0 in
    let stack = Array.make n 0 in
    let pstack = Array.make n 0 in
    for col = 0 to n - 1 do
      (* symbolic reach: identical to the real kernel *)
      let top = ref n in
      for p = acolptr.(col) to acolptr.(col + 1) - 1 do
        let seed = arow_orig.(p) in
        if visited.(seed) <> col then begin
          let sp = ref 0 in
          stack.(0) <- seed;
          pstack.(0) <-
            (let k = pinv.(seed) in
             if k >= 0 then lcolptr.(k) else 0);
          visited.(seed) <- col;
          while !sp >= 0 do
            let i = stack.(!sp) in
            let k = pinv.(i) in
            let hi = if k >= 0 then lcolptr.(k + 1) else 0 in
            let next = pstack.(!sp) in
            if k >= 0 && next < hi then begin
              pstack.(!sp) <- next + 1;
              let child = Dyn.I.get lrow next in
              if visited.(child) <> col then begin
                visited.(child) <- col;
                incr sp;
                stack.(!sp) <- child;
                pstack.(!sp) <-
                  (let ck = pinv.(child) in
                   if ck >= 0 then lcolptr.(ck) else 0)
              end
            end
            else begin
              decr top;
              topo.(!top) <- i;
              decr sp
            end
          done
        end
      done;
      (* numeric: sparse complex solve L x = A(:,col) along the reach *)
      for p = acolptr.(col) to acolptr.(col + 1) - 1 do
        xr.(arow_orig.(p)) <- vre.(aval_src.(p));
        xi.(arow_orig.(p)) <- vim.(aval_src.(p))
      done;
      for t = !top to n - 1 do
        let i = topo.(t) in
        let k = pinv.(i) in
        if k >= 0 then begin
          let xir = xr.(i) and xii = xi.(i) in
          if xir <> 0.0 || xii <> 0.0 then
            for q = lcolptr.(k) to lcolptr.(k + 1) - 1 do
              let r = Dyn.I.get lrow q in
              let lr = Dyn.F.get lre q and li = Dyn.F.get lim q in
              xr.(r) <- xr.(r) -. ((lr *. xir) -. (li *. xii));
              xi.(r) <- xi.(r) -. ((lr *. xii) +. (li *. xir))
            done
        end
      done;
      (* partial pivot on |x|^2 among the not-yet-pivotal reach entries *)
      let piv = ref (-1) and piv_mag = ref 0.0 in
      for t = !top to n - 1 do
        let i = topo.(t) in
        if pinv.(i) < 0 then begin
          let mag = (xr.(i) *. xr.(i)) +. (xi.(i) *. xi.(i)) in
          if mag > !piv_mag then begin
            piv := i;
            piv_mag := mag
          end
        end
      done;
      if !piv < 0 || not (Float.is_finite !piv_mag) || !piv_mag = 0.0 then begin
        for t = !top to n - 1 do
          xr.(topo.(t)) <- 0.0;
          xi.(topo.(t)) <- 0.0
        done;
        raise (Singular col)
      end;
      let dr = xr.(!piv) and di = xi.(!piv) in
      let den = (dr *. dr) +. (di *. di) in
      pinv.(!piv) <- col;
      perm.(col) <- !piv;
      dgr.(col) <- dr;
      dgi.(col) <- di;
      for t = !top to n - 1 do
        let i = topo.(t) in
        if i <> !piv then begin
          let k = pinv.(i) in
          if k >= 0 then begin
            Dyn.I.push urow k;
            Dyn.F.push ure xr.(i);
            Dyn.F.push uim xi.(i)
          end
          else begin
            Dyn.I.push lrow i;
            Dyn.F.push lre (((xr.(i) *. dr) +. (xi.(i) *. di)) /. den);
            Dyn.F.push lim (((xi.(i) *. dr) -. (xr.(i) *. di)) /. den)
          end
        end;
        xr.(i) <- 0.0;
        xi.(i) <- 0.0
      done;
      ucolptr.(col + 1) <- Dyn.I.length urow;
      lcolptr.(col + 1) <- Dyn.I.length lrow;
      sort_column_segment_c urow ure uim ucolptr.(col) ucolptr.(col + 1)
    done;
    let lrow = Dyn.I.to_array lrow in
    for p = 0 to Array.length lrow - 1 do
      lrow.(p) <- pinv.(lrow.(p))
    done;
    let arow = Array.make nnz 0 in
    for p = 0 to nnz - 1 do
      arow.(p) <- pinv.(arow_orig.(p))
    done;
    Csparse
      {
        sym =
          { n; perm; acolptr; arow; aval_src; lcolptr; lrow; ucolptr;
            urow = Dyn.I.to_array urow };
        num =
          { lre = Dyn.F.to_array lre; lim = Dyn.F.to_array lim;
            ure = Dyn.F.to_array ure; uim = Dyn.F.to_array uim; dgr; dgi;
            wkr = xr; wki = xi };
      }

  let sp_refactor_c sym num (m : mat) =
    let vre = m.re and vim = m.im in
    if Sparse.rows m.pattern <> sym.n || Sparse.cols m.pattern <> sym.n then
      invalid_arg "Splu.Cplx.refactor: dimension mismatch";
    if Array.length vre <> Array.length sym.aval_src then
      invalid_arg "Splu.Cplx.refactor: sparsity pattern changed";
    let xr = num.wkr and xi = num.wki in
    let clear_column col =
      for p = sym.ucolptr.(col) to sym.ucolptr.(col + 1) - 1 do
        xr.(sym.urow.(p)) <- 0.0;
        xi.(sym.urow.(p)) <- 0.0
      done;
      xr.(col) <- 0.0;
      xi.(col) <- 0.0;
      for q = sym.lcolptr.(col) to sym.lcolptr.(col + 1) - 1 do
        xr.(sym.lrow.(q)) <- 0.0;
        xi.(sym.lrow.(q)) <- 0.0
      done
    in
    for col = 0 to sym.n - 1 do
      for p = sym.acolptr.(col) to sym.acolptr.(col + 1) - 1 do
        xr.(sym.arow.(p)) <- vre.(sym.aval_src.(p));
        xi.(sym.arow.(p)) <- vim.(sym.aval_src.(p))
      done;
      for p = sym.ucolptr.(col) to sym.ucolptr.(col + 1) - 1 do
        let k = sym.urow.(p) in
        let ukr = xr.(k) and uki = xi.(k) in
        num.ure.(p) <- ukr;
        num.uim.(p) <- uki;
        if ukr <> 0.0 || uki <> 0.0 then
          for q = sym.lcolptr.(k) to sym.lcolptr.(k + 1) - 1 do
            let r = sym.lrow.(q) in
            let lr = num.lre.(q) and li = num.lim.(q) in
            xr.(r) <- xr.(r) -. ((lr *. ukr) -. (li *. uki));
            xi.(r) <- xi.(r) -. ((lr *. uki) +. (li *. ukr))
          done
      done;
      let dr = xr.(col) and di = xi.(col) in
      let den = (dr *. dr) +. (di *. di) in
      if den = 0.0 || not (Float.is_finite den) then begin
        clear_column col;
        raise (Singular col)
      end;
      num.dgr.(col) <- dr;
      num.dgi.(col) <- di;
      for q = sym.lcolptr.(col) to sym.lcolptr.(col + 1) - 1 do
        let r = sym.lrow.(q) in
        num.lre.(q) <- ((xr.(r) *. dr) +. (xi.(r) *. di)) /. den;
        num.lim.(q) <- ((xi.(r) *. dr) -. (xr.(r) *. di)) /. den
      done;
      clear_column col
    done

  let sp_solve_c sym num (b : Complex.t array) =
    let n = sym.n in
    if Array.length b <> n then
      invalid_arg "Splu.Cplx.solve: dimension mismatch";
    let xr = Array.make n 0.0 and xi = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let v = b.(sym.perm.(k)) in
      xr.(k) <- v.Complex.re;
      xi.(k) <- v.Complex.im
    done;
    for k = 0 to n - 1 do
      let vr = xr.(k) and vi = xi.(k) in
      if vr <> 0.0 || vi <> 0.0 then
        for q = sym.lcolptr.(k) to sym.lcolptr.(k + 1) - 1 do
          let r = sym.lrow.(q) in
          let lr = num.lre.(q) and li = num.lim.(q) in
          xr.(r) <- xr.(r) -. ((lr *. vr) -. (li *. vi));
          xi.(r) <- xi.(r) -. ((lr *. vi) +. (li *. vr))
        done
    done;
    for k = n - 1 downto 0 do
      let dr = num.dgr.(k) and di = num.dgi.(k) in
      let den = (dr *. dr) +. (di *. di) in
      let vr = ((xr.(k) *. dr) +. (xi.(k) *. di)) /. den in
      let vi = ((xi.(k) *. dr) -. (xr.(k) *. di)) /. den in
      xr.(k) <- vr;
      xi.(k) <- vi;
      if vr <> 0.0 || vi <> 0.0 then
        for p = sym.ucolptr.(k) to sym.ucolptr.(k + 1) - 1 do
          let r = sym.urow.(p) in
          let ur = num.ure.(p) and ui = num.uim.(p) in
          xr.(r) <- xr.(r) -. ((ur *. vr) -. (ui *. vi));
          xi.(r) <- xi.(r) -. ((ur *. vi) +. (ui *. vr))
        done
    done;
    Array.init n (fun k -> { Complex.re = xr.(k); im = xi.(k) })

  (* A = P^T L U, so A^T x = b is U^T z = b (forward, gathering along
     the stored U columns), L^T y = z (backward, along the L columns),
     x = P^T y.  The factorization of the forward system is reused;
     nothing is transposed or refactored. *)
  let sp_solve_transpose_c sym num (b : Complex.t array) =
    let n = sym.n in
    if Array.length b <> n then
      invalid_arg "Splu.Cplx.solve_transpose: dimension mismatch";
    let zr = Array.make n 0.0 and zi = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let accr = ref b.(k).Complex.re and acci = ref b.(k).Complex.im in
      for p = sym.ucolptr.(k) to sym.ucolptr.(k + 1) - 1 do
        let r = sym.urow.(p) in
        let ur = num.ure.(p) and ui = num.uim.(p) in
        accr := !accr -. ((ur *. zr.(r)) -. (ui *. zi.(r)));
        acci := !acci -. ((ur *. zi.(r)) +. (ui *. zr.(r)))
      done;
      let dr = num.dgr.(k) and di = num.dgi.(k) in
      let den = (dr *. dr) +. (di *. di) in
      zr.(k) <- ((!accr *. dr) +. (!acci *. di)) /. den;
      zi.(k) <- ((!acci *. dr) -. (!accr *. di)) /. den
    done;
    for k = n - 1 downto 0 do
      let accr = ref zr.(k) and acci = ref zi.(k) in
      for q = sym.lcolptr.(k) to sym.lcolptr.(k + 1) - 1 do
        let r = sym.lrow.(q) in
        let lr = num.lre.(q) and li = num.lim.(q) in
        accr := !accr -. ((lr *. zr.(r)) -. (li *. zi.(r)));
        acci := !acci -. ((lr *. zi.(r)) +. (li *. zr.(r)))
      done;
      zr.(k) <- !accr;
      zi.(k) <- !acci
    done;
    let x = Array.make n Complex.zero in
    for k = 0 to n - 1 do
      x.(sym.perm.(k)) <- { Complex.re = zr.(k); im = zi.(k) }
    done;
    x

  (* public entry points: same counters, same [Singular] as the real
     kernel, so tests can assert symbolic reuse across both fields *)

  let factor ?(crossover = default_crossover) m =
    let n = Sparse.rows m.pattern in
    if Sparse.cols m.pattern <> n then
      invalid_arg "Splu.Cplx.factor: matrix not square";
    Atomic.incr n_factor;
    if n < crossover then
      Cdense
        { cdim = n;
          df = lift_singular (fun () -> Lu.Cplx.decompose (mat_to_dense m)) }
    else gp_factor_c m

  let refactor t m =
    Atomic.incr n_refactor;
    match t with
    | Cdense d ->
      d.df <- lift_singular (fun () -> Lu.Cplx.decompose (mat_to_dense m))
    | Csparse { sym; num } -> sp_refactor_c sym num m

  let clone = function
    | Cdense { cdim; df } -> Cdense { cdim; df }
    | Csparse { sym; num } ->
      Csparse
        { sym;
          num =
            { lre = Array.copy num.lre; lim = Array.copy num.lim;
              ure = Array.copy num.ure; uim = Array.copy num.uim;
              dgr = Array.copy num.dgr; dgi = Array.copy num.dgi;
              wkr = Array.make sym.n 0.0; wki = Array.make sym.n 0.0 } }

  let solve t b =
    Atomic.incr n_solve;
    match t with
    | Cdense { df; _ } -> Lu.Cplx.solve df b
    | Csparse { sym; num } -> sp_solve_c sym num b

  let solve_transpose t b =
    Atomic.incr n_solve;
    match t with
    | Cdense { df; _ } -> Lu.Cplx.solve_transpose df b
    | Csparse { sym; num } -> sp_solve_transpose_c sym num b
end
