(** Passivity / realizability certificates for admittance-like
    matrices.

    A grounded RC pool, a Schur-complement tile conductance matrix and
    a PRIMA-projected (Ĝ, Ĉ) pencil are all passive iff their symmetric
    parts are positive semidefinite.  {!psd} measures the PSD defect by
    LDLᵀ (no eigensolve); {!certify} turns a passing check into a
    {e signed certificate} — a content-bound digest that lets a cached
    artifact be re-verified later by hashing alone, without
    refactorizing and, crucially, without re-running the extraction
    that produced it.

    Signatures are content MACs, not cryptography: they bind the
    matrix bytes, the measured defect and a caller-supplied context
    string (e.g. the cache key) under a versioned domain tag, so a
    corrupted file, a truncated matrix or a verdict pasted onto a
    different artifact all fail verification. *)

type verdict = {
  defect : float;  (** most negative LDLᵀ pivot of the symmetric part
                       (0 when PSD) *)
  index : int;  (** elimination index of the worst pivot *)
  scale : float;  (** largest absolute entry, for relative judgement *)
  tol : float;  (** round-off allowance the verdict was judged at *)
}

val psd : Mat.t -> verdict
(** Factor the symmetric part and measure its PSD defect.  The
    tolerance scales with the matrix magnitude and dimension, so
    legitimate round-off from congruence projections and Schur
    complements passes while genuine indefiniteness does not. *)

val passes : verdict -> bool
(** [defect >= -. tol]. *)

type cert = {
  cert_dim : int;
  cert_defect : float;  (** the measured (passing) defect *)
  cert_sig : string;  (** hex digest binding matrix + verdict + context *)
}

val certify : ?context:string -> Mat.t -> cert option
(** [certify ?context m] is [Some cert] when [m] passes {!psd}, [None]
    otherwise — a non-passive matrix never gets a certificate. *)

val verify : ?context:string -> Mat.t -> cert -> bool
(** [verify ?context m cert] recomputes the signature from [m]'s bytes
    and the stored verdict and compares — O(dim²) hashing, no
    factorization.  [false] on any mismatch (content, dimension,
    context or tampered verdict). *)
