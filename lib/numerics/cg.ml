type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

exception Not_converged of result

exception Zero_diagonal of int

let solve ?(tol = 1e-10) ?max_iter ?x0 ?precond a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg "Cg.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Cg.solve: dimension mismatch";
  let max_iter = match max_iter with Some m -> m | None -> 4 * n in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let apply_precond =
    match precond with
    | Some f -> f
    | None ->
      (* Jacobi preconditioner: M^-1 = 1/diag(A).  A zero diagonal in
         an SPD system is a structural error (a disconnected cell) —
         refuse it instead of quietly mispreconditioning. *)
      let inv_diag =
        Array.mapi
          (fun i d ->
            if Float.abs d > 0.0 then 1.0 /. d else raise (Zero_diagonal i))
          (Sparse.diagonal a)
      in
      fun r -> Vec.init n (fun i -> inv_diag.(i) *. r.(i))
  in
  let b_norm = Vec.norm2 b in
  if b_norm = 0.0 then
    { solution = Vec.zeros n; iterations = 0; residual_norm = 0.0; converged = true }
  else begin
    let r = Vec.sub b (Sparse.mul_vec a x) in
    let z = apply_precond r in
    let p = ref (Vec.copy z) in
    let rz = ref (Vec.dot r z) in
    let rec loop k =
      let res_norm = Vec.norm2 r /. b_norm in
      if res_norm <= tol then
        { solution = x; iterations = k; residual_norm = res_norm; converged = true }
      else if k >= max_iter then
        { solution = x; iterations = k; residual_norm = res_norm; converged = false }
      else begin
        (* cooperative cancellation: one ambient-token poll per
           iteration; a matvec dwarfs it *)
        Cancel.tick ();
        let ap = Sparse.mul_vec a !p in
        let p_ap = Vec.dot !p ap in
        if p_ap <= 0.0 then
          (* loss of positive-definiteness: stop with current iterate *)
          { solution = x; iterations = k; residual_norm = res_norm; converged = false }
        else begin
          let alpha = !rz /. p_ap in
          Vec.axpy alpha !p x;
          Vec.axpy (-.alpha) ap r;
          let z = apply_precond r in
          let rz' = Vec.dot r z in
          let beta = rz' /. !rz in
          rz := rz';
          p := Vec.add z (Vec.scale beta !p);
          loop (k + 1)
        end
      end
    in
    loop 0
  end

let solve_exn ?tol ?max_iter ?x0 ?precond a b =
  let r = solve ?tol ?max_iter ?x0 ?precond a b in
  if r.converged then r.solution else raise (Not_converged r)
