(** PRIMA-style block-Krylov model-order reduction for passive
    [(G, C)] pencils.

    Given the MNA pencil [G + s C] of a passive RC(L) network whose
    unknowns split into {e port} rows (kept explicit) and {e internal}
    rows (candidates for elimination), {!reduce} builds an orthonormal
    block-Krylov basis [V] of the internal moment space around an
    expansion point [s0],

    {v A = G_II + s0 C_II,   span V ⊇ A⁻¹[G_IP C_IP], A⁻¹C_II A⁻¹[…], … v}

    and projects by block-diagonal congruence [W = blkdiag(I_P, V)]:

    {v Ĝ = Wᵀ G W,   Ĉ = Wᵀ C W v}

    Because the projection is a congruence, symmetry and positive
    semidefiniteness of [G] and [C] carry over to [Ĝ] and [Ĉ] — the
    reduced pencil is again a passive RC network (PRIMA's passivity
    argument), and because the Krylov space contains the first [order]
    block moments at [s0], the reduced port response matches the exact
    one to [order] moments there.  A separate DC correction block
    spanning [G_II⁻¹ G_IP] keeps the [s = 0] response — a deck's DC
    bias — exact whatever the expansion point (see {!result.dc_exact}).

    The internal solves reuse one {!Splu} factorization of [A] for
    every basis column, so building a rank-[k] model costs one sparse
    factorization plus [k] triangular solves. *)

type result = {
  nports : int;  (** ports kept explicit (first [nports] reduced rows) *)
  internal : int;  (** internal unknowns of the input pencil *)
  rank : int;  (** orthonormal basis columns retained after deflation *)
  order : int;  (** block moments requested *)
  dc_exact : bool;
      (** the basis spans [G_II⁻¹ G_IP], so the reduced model's [s = 0]
          response — a deck's DC bias — is exact.  False only when
          [G_II] alone is singular (capacitor-only internal nodes). *)
  ghat : Mat.t;  (** reduced conductance, [(nports + rank)]² *)
  chat : Mat.t;  (** reduced capacitance, same shape *)
  build_seconds : float;  (** wall time of factorization + projection *)
}

val reduce :
  ?s0:float -> ?order:int -> g:Sparse.t -> c:Sparse.t -> int array -> result
(** [reduce ?s0 ?order ~g ~c ports] reduces the pencil [(g, c)] keeping
    the unknowns listed in [ports] explicit.  [g] and [c] must be
    square, symmetric, and of equal dimension; [ports] must be distinct
    in-range indices.  [s0] is the expansion point in rad/s (default
    [2π · 1e8]); [order] is the number of block moments to match
    (default 2, clamped to at least 1).  The basis is deflated
    (near-dependent columns dropped) and capped at the internal
    dimension, so [rank <= internal] always holds and full rank
    reproduces the exact port behaviour.

    Raises [Invalid_argument] on shape/port errors and {!Splu.Singular}
    when [G_II + s0 C_II] is singular (an internal node with no path to
    any port or ground — such networks are not reducible). *)

val port_admittance :
  g:Mat.t -> c:Mat.t -> ports:int array -> omega:float -> Complex.t array array
(** [port_admittance ~g ~c ~ports ~omega] is the exact port admittance
    [Y(jω) = K_PP - K_PI K_II⁻¹ K_IP] of the dense pencil
    [K = g + jω c] — the reference against which reduced models are
    judged, and the evaluator for the (small, dense) reduced pencils
    themselves.  Dense [O(n³)]; meant for reduced models and test-sized
    exact references.
    Raises [Lu.Singular] when the internal block is singular at [jω]. *)

val psd_defect : Mat.t -> float
(** [psd_defect m] measures how far the symmetric part of [m] is from
    positive semidefinite: the most negative LDLᵀ pivot encountered
    (0 when none is negative).  A passive reduced pencil has
    [psd_defect ghat >= -tol] and [psd_defect chat >= -tol] for a tiny
    round-off [tol]. *)

val psd_defect_index : Mat.t -> float * int
(** Like {!psd_defect} but also returns the elimination index at which
    the worst pivot occurred — the unknown a passivity certificate or
    diagnostic should name ([0] when the matrix is PSD). *)
