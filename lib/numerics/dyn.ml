(* Growable arrays specialised to unboxed ints and floats.

   The simulation hot paths (sparse assembly, substrate network
   construction) accumulate entry streams whose length is unknown up
   front.  Linked lists cost one heap block per entry and trash the
   minor heap on large grids; these amortised-doubling arrays keep the
   payload flat. *)

module I = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 16) () =
    { data = Array.make (max capacity 1) 0; len = 0 }

  let length t = t.len
  let clear t = t.len <- 0

  let get t k =
    if k < 0 || k >= t.len then invalid_arg "Dyn.I.get: out of bounds";
    t.data.(k)

  let set t k v =
    if k < 0 || k >= t.len then invalid_arg "Dyn.I.set: out of bounds";
    t.data.(k) <- v

  let push t v =
    if t.len = Array.length t.data then begin
      let d = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 d 0 t.len;
      t.data <- d
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let to_array t = Array.sub t.data 0 t.len

  (* Read-only view of the backing store; valid indices are
     [0, length t). *)
  let unsafe_data t = t.data
end

module F = struct
  type t = { mutable data : float array; mutable len : int }

  let create ?(capacity = 16) () =
    { data = Array.make (max capacity 1) 0.0; len = 0 }

  let length t = t.len
  let clear t = t.len <- 0

  let get t k =
    if k < 0 || k >= t.len then invalid_arg "Dyn.F.get: out of bounds";
    t.data.(k)

  let set t k v =
    if k < 0 || k >= t.len then invalid_arg "Dyn.F.set: out of bounds";
    t.data.(k) <- v

  let push t v =
    if t.len = Array.length t.data then begin
      let d = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 d 0 t.len;
      t.data <- d
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let to_array t = Array.sub t.data 0 t.len
  let unsafe_data t = t.data
end
