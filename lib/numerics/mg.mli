(** Geometric multigrid V-cycle preconditioner for regular-grid SPD
    Laplacians — the substrate FDM operator.

    The hierarchy is variational: index-space trilinear prolongation
    [P], full-weighting restriction [P{^T}], Galerkin coarse operator
    [P{^T} A P] — so the stretched (snap-line) spacings of
    {!Sn_substrate.Grid} need no special casing.  Smoothing is
    red-black Gauss-Seidel; the post-smoother runs the exact reverse
    sweep of the pre-smoother, which makes one V-cycle a symmetric
    positive-definite operator — the property PCG requires of its
    preconditioner ({!Cg.solve}'s [precond]).  The coarsest level is
    solved directly through a dense {!Lu} factorization held by the
    hierarchy. *)

type t
(** A multigrid hierarchy bound to one matrix. *)

val build : ?nu:int -> ?coarse_limit:int -> dims:int * int * int -> Sparse.t -> t
(** [build ~dims:(nx, ny, nz) a] constructs the hierarchy for the
    grid-ordered matrix [a] (cell [(ix, iy, iz)] at row
    [iz*nx*ny + iy*nx + ix], the {!Sn_substrate.Grid.cell_index}
    layout).  Each dimension of extent [>= 4] is halved per level
    ([(n+1)/2], even lines inject) until the level holds at most
    [coarse_limit] cells (default 600) or nothing coarsens further;
    [nu] (default 1) is the number of pre- and post-smoothing sweeps.
    Raises [Invalid_argument] when [dims] disagree with the matrix
    size and {!Cg.Zero_diagonal} when a level operator has a zero
    diagonal entry (a disconnected cell — structurally broken
    input). *)

val apply : t -> Vec.t -> Vec.t
(** [apply t r] runs one V-cycle on residual [r] from a zero initial
    guess — the preconditioner application [M{^-1} r].  Allocates its
    own workspaces, so concurrent calls from pool workers sharing one
    hierarchy are safe.  Pass [Mg.apply t] as {!Cg.solve}'s
    [precond]. *)

val levels : t -> int
(** Number of levels in the hierarchy (1 = direct coarse solve
    only). *)
