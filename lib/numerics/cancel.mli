(** Cooperative cancellation tokens for long-running solver loops.

    A token pairs an atomic cancel flag with an optional absolute
    wall-clock deadline and a progress counter.  Inner loops — DC
    rescue-ladder attempts, AC sweep points, transient steps, CG/MG
    iterations, pool task claiming — call {!tick} at each iteration
    boundary; when the ambient token is cancelled or past its
    deadline, the call raises {!Cancelled} and the work unwinds within
    one iteration.

    The ambient token is installed with {!with_token} around a unit of
    work; {!poll} and {!tick} are no-ops (one atomic load) when no
    token is installed, which keeps the disarmed overhead on hot sweep
    paths negligible. *)

type t
(** A cancellation token: atomic flag + optional deadline + progress
    counter.  Safe to share across domains. *)

exception Cancelled of t
(** Raised by {!check}, {!poll} and {!tick} when the token has been
    cancelled or its deadline has passed.  Carries the token so the
    handler that armed it can read {!progress} and {!reason}. *)

val create : ?deadline:float -> unit -> t
(** [create ?deadline ()] makes a fresh token.  [deadline] is an
    absolute [Unix.gettimeofday] timestamp; omitted means the token
    only cancels explicitly via {!cancel}. *)

val with_deadline_ms : float -> t
(** [with_deadline_ms ms] is a token whose deadline is [ms]
    milliseconds from now. *)

val cancel : ?reason:string -> t -> unit
(** Cancel explicitly (e.g. client disconnected).  [reason] defaults
    to ["cancelled"]; a deadline expiry records ["deadline"]. *)

val cancelled : t -> bool
(** Has the token been cancelled (explicitly or by deadline expiry
    observed by a poll)? *)

val expired : t -> bool
(** Is the token past its deadline right now (without cancelling it)? *)

val progress : t -> int
(** Iteration boundaries crossed by {!tick} while this token was
    ambient — the "how far did it get" counter reported alongside a
    [deadline-exceeded] wire error. *)

val reason : t -> string
(** Why the token cancelled: ["deadline"], ["disconnect"], or the
    [reason] given to {!cancel}. *)

val check : t -> unit
(** [check t] raises {!Cancelled} if [t] is cancelled or expired.
    Expiry latches the flag so later checks are flag-only. *)

val poll : unit -> unit
(** Check the ambient token, if any.  One atomic load when disarmed. *)

val tick : unit -> unit
(** Like {!poll} but also increments the ambient token's progress
    counter.  Call at iteration boundaries of long-running loops. *)

val active : unit -> bool
(** Is an ambient token currently installed? *)

val with_token : t -> (unit -> 'a) -> 'a
(** [with_token t f] installs [t] as the ambient token for the
    duration of [f] (restoring the previous token on exit, normal or
    exceptional).  Pool workers on other domains observe the same
    ambient token. *)
