(** Preconditioned conjugate-gradient solver for symmetric
    positive-definite sparse systems — the grounded substrate
    conductance Laplacian is SPD, so CG is the workhorse of the
    macromodel reduction. *)

type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float; (** final [||b - A x|| / ||b||] *)
  converged : bool;
}

exception Not_converged of result
(** Raised by {!solve_exn} when the iteration cap is reached before the
    tolerance. *)

exception Zero_diagonal of int
(** [Zero_diagonal i] is raised when row [i] of the matrix has a zero
    diagonal entry — structurally impossible for a correctly assembled
    SPD conductance system, so it is refused instead of silently
    mispreconditioned.  Callers that know the grid geometry
    ({!Sn_substrate.Extractor}) translate [i] back into the offending
    cell coordinates. *)

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Vec.t ->
  ?precond:(Vec.t -> Vec.t) ->
  Sparse.t ->
  Vec.t ->
  result
(** [solve ?tol ?max_iter ?x0 ?precond a b] runs preconditioned CG on
    [A x = b].  [precond] applies [M{^-1}] to a residual and must be a
    symmetric positive-definite operator (e.g. {!Mg.apply}); when
    omitted, a Jacobi preconditioner is built from the diagonal of
    [a], raising {!Zero_diagonal} on a zero entry.  [tol] is the
    relative residual target (default [1e-10]); [max_iter] defaults to
    [4 * dim].  Raises [Invalid_argument] when [a] is not square or
    dimensions mismatch. *)

val solve_exn :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Vec.t ->
  ?precond:(Vec.t -> Vec.t) ->
  Sparse.t ->
  Vec.t ->
  Vec.t
(** Like {!solve} but returns the solution directly and raises
    {!Not_converged} on failure. *)
