(* Passivity certificates: LDLᵀ PSD checks plus content-bound
   signatures so cached artifacts re-verify by hashing alone. *)

type verdict = { defect : float; index : int; scale : float; tol : float }

let tolerance ~scale ~dim =
  (* round-off allowance: congruence projections and Schur complements
     accumulate O(n · eps · scale) error in the symmetric part; a real
     passivity violation injected anywhere above noise level clears
     this comfortably *)
  1e-10 *. Float.max scale 1.0 *. Float.max 1.0 (float_of_int dim)

let psd m =
  let n = Mat.rows m in
  let scale = ref 0.0 in
  let data = Mat.raw_data m in
  Array.iter (fun v -> scale := Float.max !scale (Float.abs v)) data;
  let defect, index = Krylov.psd_defect_index m in
  { defect; index; scale = !scale; tol = tolerance ~scale:!scale ~dim:n }

let passes v = v.defect >= -.v.tol

type cert = { cert_dim : int; cert_defect : float; cert_sig : string }

(* The signature binds, under a versioned domain tag: the caller's
   context (typically the cache key of the artifact), the dimensions,
   every matrix byte, and the verdict itself.  Marshal of a float
   array is deterministic for a given layout, and the domain tag pins
   the format so a future layout change invalidates old signatures
   instead of colliding with them. *)
let domain = "snoise-passivity-cert-v1"

let signature ~context ~defect m =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            domain;
            context;
            string_of_int (Mat.rows m);
            string_of_int (Mat.cols m);
            Marshal.to_string (Mat.raw_data m) [];
            Printf.sprintf "%.17g" defect;
          ]))

let certify ?(context = "") m =
  let v = psd m in
  if passes v then
    Some
      {
        cert_dim = Mat.rows m;
        cert_defect = v.defect;
        cert_sig = signature ~context ~defect:v.defect m;
      }
  else None

let verify ?(context = "") m cert =
  Mat.rows m = cert.cert_dim
  && String.equal
       (signature ~context ~defect:cert.cert_defect m)
       cert.cert_sig
