(* Cooperative cancellation tokens.

   A token is an atomic flag plus an optional absolute wall-clock
   deadline.  Long-running loops call {!tick} (or {!poll}) at their
   iteration boundaries; when the ambient token has been cancelled or
   its deadline has passed, the poll raises {!Cancelled} carrying the
   token, and the caller that armed the token reports how far the work
   got from the token's progress counter.

   The ambient token is a process-global [Atomic.t] rather than a
   parameter threaded through every solver signature: the serving loop
   dispatches one request at a time, and pool workers on other domains
   read the same global, so a single slot is sufficient and keeps the
   disarmed fast path to one atomic load and a branch. *)

type t = {
  cancelled : bool Atomic.t;
  deadline : float; (* absolute Unix time; infinity = none *)
  progress : int Atomic.t;
  reason : string Atomic.t;
}

exception Cancelled of t

let create ?deadline () =
  let deadline = match deadline with Some d -> d | None -> Float.infinity in
  {
    cancelled = Atomic.make false;
    deadline;
    progress = Atomic.make 0;
    reason = Atomic.make "cancelled";
  }

let with_deadline_ms ms =
  create ~deadline:(Unix.gettimeofday () +. (ms /. 1000.)) ()

let cancel ?(reason = "cancelled") t =
  Atomic.set t.reason reason;
  Atomic.set t.cancelled true

let cancelled t = Atomic.get t.cancelled

let progress t = Atomic.get t.progress

let reason t = Atomic.get t.reason

let expired t =
  t.deadline < Float.infinity && Unix.gettimeofday () > t.deadline

(* The ambient token consulted by {!poll}/{!tick}. *)
let current : t option Atomic.t = Atomic.make None

let check t =
  if Atomic.get t.cancelled then raise (Cancelled t)
  else if expired t then begin
    Atomic.set t.reason "deadline";
    Atomic.set t.cancelled true;
    raise (Cancelled t)
  end

let poll () =
  match Atomic.get current with None -> () | Some t -> check t

let tick () =
  match Atomic.get current with
  | None -> ()
  | Some t ->
      Atomic.incr t.progress;
      check t

let active () = Atomic.get current <> None

let with_token t f =
  let previous = Atomic.get current in
  Atomic.set current (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set current previous) f
