(** Dense real matrices (row-major). *)

type t

val make : int -> int -> t
(** [make rows cols] is the zero matrix of the given shape. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)

val identity : int -> t
(** [identity n] is the [n]x[n] identity. *)

val of_arrays : float array array -> t
(** [of_arrays rows] builds a matrix from row arrays.
    Raises [Invalid_argument] when rows have unequal lengths. *)

val rows : t -> int
val cols : t -> int

val raw_data : t -> float array
(** [raw_data m] is the live row-major backing store: entry [(i, j)]
    lives at index [i * cols m + j].  Mutations are visible to [m].
    Meant for solver kernels that refill a matrix in place. *)

val of_flat : rows:int -> cols:int -> float array -> t
(** [of_flat ~rows ~cols data] wraps a row-major array as a matrix
    without copying; [data] stays shared.
    Raises [Invalid_argument] when the length does not match. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] accumulates [v] into entry [(i, j)] — the MNA
    "stamp" operation. *)

val copy : t -> t
val transpose : t -> t

val mul : t -> t -> t
(** [mul a b] is the matrix product.  Raises [Invalid_argument] on
    dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m v] is [m * v]. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val row : t -> int -> Vec.t
(** [row m i] is a copy of row [i]. *)

val col : t -> int -> Vec.t
(** [col m j] is a copy of column [j]. *)

val max_abs_diff : t -> t -> float
(** [max_abs_diff a b] is the largest absolute entrywise difference. *)

val is_symmetric : ?tol:float -> t -> bool
(** [is_symmetric ?tol m] checks symmetry within absolute tolerance
    [tol] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
