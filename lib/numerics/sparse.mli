(** Sparse matrices in compressed-sparse-row form, built from triplets.

    Used for the substrate conductance grid, whose node count (tens of
    thousands) rules out dense storage. *)

type t
(** An immutable CSR matrix. *)

type builder
(** A mutable triplet accumulator. *)

val builder : int -> int -> builder
(** [builder rows cols] is an empty accumulator of the given shape. *)

val add : builder -> int -> int -> float -> unit
(** [add b i j v] accumulates [v] into entry [(i, j)]; duplicate
    coordinates are summed at {!finalize} time.
    Raises [Invalid_argument] on out-of-range indices. *)

val finalize : builder -> t
(** [finalize b] compresses the triplets (summing duplicates, dropping
    exact zeros) into CSR form. *)

val rows : t -> int
val cols : t -> int

val nnz : t -> int
(** [nnz m] is the number of stored entries. *)

val get : t -> int -> int -> float
(** [get m i j] is entry [(i, j)] (0 when not stored);
    O(log nnz-per-row). *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m v] is [m * v]. *)

val diagonal : t -> Vec.t
(** [diagonal m] is the main diagonal (square matrices only). *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row m i f] applies [f j v] to every stored entry of row [i]. *)

val index : t -> int -> int -> int
(** [index m i j] is the position of entry [(i, j)] in {!values}, or
    [-1] when the entry is not stored; O(log nnz-per-row). *)

val row_ptr : t -> int array
(** The live CSR row-pointer array (length [rows + 1]).  Read-only by
    convention. *)

val col_idx : t -> int array
(** The live CSR column-index array (length [nnz], sorted within each
    row).  Read-only by convention. *)

val values : t -> float array
(** The live CSR value array, parallel to {!col_idx}.  Owners may
    refill it in place to reuse one sparsity pattern across many
    numeric assemblies (the pattern itself must not change). *)

val is_symmetric : ?tol:float -> t -> bool
(** [is_symmetric ?tol m] checks structural + numeric symmetry. *)

val to_dense : t -> Mat.t
(** [to_dense m] converts to a dense matrix (small matrices only). *)
