type t = { nr : int; nc : int; data : float array }

let make nr nc =
  if nr < 0 || nc < 0 then invalid_arg "Mat.make: negative dimension";
  { nr; nc; data = Array.make (nr * nc) 0.0 }

let init nr nc f =
  let m = make nr nc in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      m.data.((i * nc) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays rows_arr =
  let nr = Array.length rows_arr in
  if nr = 0 then make 0 0
  else begin
    let nc = Array.length rows_arr.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> nc then
          invalid_arg "Mat.of_arrays: ragged rows")
      rows_arr;
    init nr nc (fun i j -> rows_arr.(i).(j))
  end

let rows m = m.nr
let cols m = m.nc

(* Direct access to the row-major backing store for solver kernels that
   want to avoid per-element bounds checks; index (i,j) lives at
   i * cols + j. *)
let raw_data m = m.data

let of_flat ~rows:nr ~cols:nc data =
  if nr < 0 || nc < 0 then invalid_arg "Mat.of_flat: negative dimension";
  if Array.length data <> nr * nc then
    invalid_arg "Mat.of_flat: data length does not match dimensions";
  { nr; nc; data }

let check_bounds name m i j =
  if i < 0 || i >= m.nr || j < 0 || j >= m.nc then
    invalid_arg
      (Printf.sprintf "Mat.%s: index (%d,%d) out of %dx%d" name i j m.nr m.nc)

let get m i j =
  check_bounds "get" m i j;
  m.data.((i * m.nc) + j)

let set m i j v =
  check_bounds "set" m i j;
  m.data.((i * m.nc) + j) <- v

let add_to m i j v =
  check_bounds "add_to" m i j;
  let k = (i * m.nc) + j in
  m.data.(k) <- m.data.(k) +. v

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.nc m.nr (fun i j -> m.data.((j * m.nc) + i))

let mul a b =
  if a.nc <> b.nr then
    invalid_arg
      (Printf.sprintf "Mat.mul: %dx%d * %dx%d" a.nr a.nc b.nr b.nc);
  let c = make a.nr b.nc in
  for i = 0 to a.nr - 1 do
    for k = 0 to a.nc - 1 do
      let aik = a.data.((i * a.nc) + k) in
      if aik <> 0.0 then
        for j = 0 to b.nc - 1 do
          c.data.((i * c.nc) + j) <-
            c.data.((i * c.nc) + j) +. (aik *. b.data.((k * b.nc) + j))
        done
    done
  done;
  c

let mul_vec m v =
  if m.nc <> Array.length v then
    invalid_arg
      (Printf.sprintf "Mat.mul_vec: %dx%d * %d" m.nr m.nc (Array.length v));
  Vec.init m.nr (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.nc - 1 do
        acc := !acc +. (m.data.((i * m.nc) + j) *. v.(j))
      done;
      !acc)

let map2 name f a b =
  if a.nr <> b.nr || a.nc <> b.nc then
    invalid_arg (Printf.sprintf "Mat.%s: shape mismatch" name);
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = map2 "add" ( +. ) a b
let sub a b = map2 "sub" ( -. ) a b
let scale k m = { m with data = Array.map (fun x -> k *. x) m.data }

let row m i = Vec.init m.nc (fun j -> get m i j)
let col m j = Vec.init m.nr (fun i -> get m i j)

let max_abs_diff a b =
  if a.nr <> b.nr || a.nc <> b.nc then
    invalid_arg "Mat.max_abs_diff: shape mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun k x -> acc := Float.max !acc (Float.abs (x -. b.data.(k))))
    a.data;
  !acc

let is_symmetric ?(tol = 1e-9) m =
  m.nr = m.nc
  &&
  let ok = ref true in
  for i = 0 to m.nr - 1 do
    for j = i + 1 to m.nc - 1 do
      if Float.abs (get m i j -. get m j i) > tol then ok := false
    done
  done;
  !ok

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.nr - 1 do
    Format.fprintf fmt "|";
    for j = 0 to m.nc - 1 do
      Format.fprintf fmt " %10.4g" (get m i j)
    done;
    Format.fprintf fmt " |@,"
  done;
  Format.fprintf fmt "@]"
