type t = {
  nr : int;
  nc : int;
  row_ptr : int array; (* length nr + 1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

(* The builder accumulates (row, col, value) triples in flat growable
   arrays: one unboxed int/float push per entry instead of a heap block
   per entry, which matters when assembling 10^5..10^6 conductances from
   a substrate grid. *)
type builder = {
  bnr : int;
  bnc : int;
  bri : Dyn.I.t;
  bci : Dyn.I.t;
  bvv : Dyn.F.t;
}

let builder nr nc =
  if nr < 0 || nc < 0 then invalid_arg "Sparse.builder: negative dimension";
  { bnr = nr; bnc = nc; bri = Dyn.I.create (); bci = Dyn.I.create ();
    bvv = Dyn.F.create () }

let add b i j v =
  if i < 0 || i >= b.bnr || j < 0 || j >= b.bnc then
    invalid_arg
      (Printf.sprintf "Sparse.add: (%d,%d) out of %dx%d" i j b.bnr b.bnc);
  if v <> 0.0 then begin
    Dyn.I.push b.bri i;
    Dyn.I.push b.bci j;
    Dyn.F.push b.bvv v
  end

let finalize b =
  let n = Dyn.I.length b.bri in
  let ri = Dyn.I.unsafe_data b.bri
  and ci = Dyn.I.unsafe_data b.bci
  and vv = Dyn.F.unsafe_data b.bvv in
  (* sort an index permutation by (row, col); nc is bounded so the
     composite key fits a native int *)
  let order = Array.init n (fun k -> k) in
  let key k = (ri.(k) * b.bnc) + ci.(k) in
  Array.sort (fun a c -> compare (key a) (key c)) order;
  (* sum duplicates, dropping entries that cancel to exactly 0 *)
  let out_i = Dyn.I.create ~capacity:(max n 1) () in
  let out_j = Dyn.I.create ~capacity:(max n 1) () in
  let out_v = Dyn.F.create ~capacity:(max n 1) () in
  let k = ref 0 in
  while !k < n do
    let idx = order.(!k) in
    let i = ri.(idx) and j = ci.(idx) in
    let acc = ref 0.0 in
    while
      !k < n
      &&
      let idx' = order.(!k) in
      ri.(idx') = i && ci.(idx') = j
    do
      acc := !acc +. vv.(order.(!k));
      incr k
    done;
    if !acc <> 0.0 then begin
      Dyn.I.push out_i i;
      Dyn.I.push out_j j;
      Dyn.F.push out_v !acc
    end
  done;
  let nnz = Dyn.I.length out_i in
  let row_ptr = Array.make (b.bnr + 1) 0 in
  for k = 0 to nnz - 1 do
    let i = Dyn.I.get out_i k in
    row_ptr.(i + 1) <- row_ptr.(i + 1) + 1
  done;
  for i = 0 to b.bnr - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { nr = b.bnr; nc = b.bnc; row_ptr;
    col_idx = Dyn.I.to_array out_j;
    values = Dyn.F.to_array out_v }

let rows m = m.nr
let cols m = m.nc
let nnz m = Array.length m.values

let index m i j =
  if i < 0 || i >= m.nr || j < 0 || j >= m.nc then
    invalid_arg "Sparse.index: out of bounds";
  let lo = m.row_ptr.(i) and hi = m.row_ptr.(i + 1) - 1 in
  let rec search lo hi =
    if lo > hi then -1
    else begin
      let mid = (lo + hi) / 2 in
      let c = m.col_idx.(mid) in
      if c = j then mid
      else if c < j then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search lo hi

let get m i j =
  if i < 0 || i >= m.nr || j < 0 || j >= m.nc then
    invalid_arg "Sparse.get: out of bounds";
  match index m i j with -1 -> 0.0 | k -> m.values.(k)

let row_ptr m = m.row_ptr
let col_idx m = m.col_idx
let values m = m.values

let mul_vec m v =
  if Array.length v <> m.nc then invalid_arg "Sparse.mul_vec: dimension mismatch";
  Vec.init m.nr (fun i ->
      let acc = ref 0.0 in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        acc := !acc +. (m.values.(k) *. v.(m.col_idx.(k)))
      done;
      !acc)

let diagonal m =
  if m.nr <> m.nc then invalid_arg "Sparse.diagonal: matrix not square";
  Vec.init m.nr (fun i -> get m i i)

let iter_row m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let is_symmetric ?(tol = 1e-9) m =
  m.nr = m.nc
  &&
  let ok = ref true in
  for i = 0 to m.nr - 1 do
    iter_row m i (fun j v ->
        if Float.abs (v -. get m j i) > tol then ok := false)
  done;
  !ok

let to_dense m =
  let d = Mat.make m.nr m.nc in
  for i = 0 to m.nr - 1 do
    iter_row m i (fun j v -> Mat.set d i j v)
  done;
  d
