(** LU factorization with partial pivoting, functorized over the scalar
    field so that the same code solves the real (DC, transient) and
    complex (AC) linear systems of the circuit engine. *)

exception Singular of int
(** [Singular k] is raised when no usable pivot exists at elimination
    step [k]. *)

module Make (F : Field.S) : sig
  type matrix = F.t array array
  (** Square matrices as arrays of rows. *)

  type t
  (** A factorization [P*A = L*U]. *)

  val matrix_of_fun : int -> (int -> int -> F.t) -> matrix
  (** [matrix_of_fun n f] is the [n]x[n] matrix with entries [f i j]. *)

  val decompose : matrix -> t
  (** [decompose a] factorizes a copy of [a].
      Raises {!Singular} if [a] is singular to working precision and
      [Invalid_argument] if [a] is not square. *)

  val solve : t -> F.t array -> F.t array
  (** [solve lu b] solves [A x = b]. *)

  val solve_matrix : matrix -> F.t array -> F.t array
  (** [solve_matrix a b] is [solve (decompose a) b]. *)

  val solve_transpose : t -> F.t array -> F.t array
  (** [solve_transpose lu b] solves [A{^T} x = b] on the {e existing}
      factorization of [A] (U{^T} then L{^T} sweeps) — no transposed
      matrix is built and no second factorization is run.  This is the
      adjoint-analysis primitive: the noise engine factors the forward
      AC system once per frequency and reuses it for the transposed
      solve. *)

  val det : t -> F.t
  (** [det lu] is the determinant of the factorized matrix. *)

  val dim : t -> int
  (** [dim lu] is the matrix dimension. *)
end

module Real : module type of Make (Field.Real)
(** Real-valued instantiation. *)

module Cplx : module type of Make (Field.Cplx)
(** Complex-valued instantiation. *)

type rfactor
(** A real factorization [P*A = L*U] held in flat row-major form — no
    per-row boxing, refillable in place for repeated factorizations of
    same-shape systems. *)

val factor_mat : Mat.t -> rfactor
(** [factor_mat a] factorizes a copy of [a] (one flat array copy).
    Raises {!Singular} / [Invalid_argument] as {!Make.decompose}. *)

val refactor_mat : rfactor -> Mat.t -> unit
(** [refactor_mat f a] refills [f] from [a], reusing both workspaces.
    Raises [Invalid_argument] on shape mismatch and {!Singular} as
    {!factor_mat} (the factor is then invalid until the next
    successful refill). *)

val solve_factored : rfactor -> Vec.t -> Vec.t
(** [solve_factored f b] solves [A x = b] from an existing factor. *)

val solve_factored_into : rfactor -> Vec.t -> Vec.t -> unit
(** [solve_factored_into f b x] writes the solution into [x]
    ([b] and [x] may not alias). *)

val rdim : rfactor -> int
(** Matrix dimension of the factor. *)

val solve_mat : Mat.t -> Vec.t -> Vec.t
(** [solve_mat a b] solves the dense real system [A x = b] on the flat
    representation directly.
    Raises {!Singular} or [Invalid_argument] as {!Make.decompose}. *)

val invert_mat : Mat.t -> Mat.t
(** [invert_mat a] is the inverse of [a], column by column from a
    single factorization. *)
