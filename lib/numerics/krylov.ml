(* PRIMA block-Krylov reduction of symmetric (G, C) pencils.

   The implementation keeps port rows explicit (block-diagonal
   congruence W = blkdiag(I_P, V), the SPRIM trick) so the reduced
   pencil partitions exactly like the original one and realizes back
   into an R/C branch network over (ports + rank) nodes. *)

type result = {
  nports : int;
  internal : int;
  rank : int;
  order : int;
  dc_exact : bool;
  ghat : Mat.t;
  chat : Mat.t;
  build_seconds : float;
}

(* Modified Gram-Schmidt, run twice for orthogonality to working
   precision.  Returns [None] when [v] is (numerically) dependent on
   the basis — the deflation test of the block Arnoldi loop. *)
let orthonormalize basis v =
  let n0 = Vec.norm2 v in
  if n0 = 0.0 then None
  else begin
    for _pass = 1 to 2 do
      List.iter
        (fun q ->
          let h = Vec.dot q v in
          Vec.axpy (-.h) q v)
        basis
    done;
    let nv = Vec.norm2 v in
    if nv <= 1e-10 *. n0 then None
    else begin
      let inv = 1.0 /. nv in
      for i = 0 to Array.length v - 1 do
        v.(i) <- v.(i) *. inv
      done;
      Some v
    end
  end

let reduce ?(s0 = 2.0 *. Float.pi *. 1e8) ?(order = 2) ~g ~c ports =
  let t0 = Unix.gettimeofday () in
  let n = Sparse.rows g in
  if Sparse.cols g <> n then invalid_arg "Krylov.reduce: g must be square";
  if Sparse.rows c <> n || Sparse.cols c <> n then
    invalid_arg "Krylov.reduce: c must match g";
  let order = max 1 order in
  let p = Array.length ports in
  (* Partition: pidx/iidx map a global row to its port / internal slot. *)
  let pidx = Array.make n (-1) in
  Array.iteri
    (fun a gi ->
      if gi < 0 || gi >= n then invalid_arg "Krylov.reduce: port out of range";
      if pidx.(gi) >= 0 then invalid_arg "Krylov.reduce: duplicate port";
      pidx.(gi) <- a)
    ports;
  let iidx = Array.make n (-1) in
  let m = ref 0 in
  for gi = 0 to n - 1 do
    if pidx.(gi) < 0 then begin
      iidx.(gi) <- !m;
      incr m
    end
  done;
  let m = !m in
  (* Scatter both pencils into the partitioned blocks.  The port-port
     corner stays dense (it is p x p and lands in the reduced model
     verbatim); internal-internal blocks stay sparse; the coupling
     blocks are dense columns, one per port. *)
  let split sp =
    let bb = Sparse.builder (max m 1) (max m 1) in
    let pp = Mat.make p p in
    let ip = Array.init p (fun _ -> Vec.zeros (max m 1)) in
    for row = 0 to n - 1 do
      Sparse.iter_row sp row (fun col v ->
          if pidx.(row) >= 0 then begin
            if pidx.(col) >= 0 then Mat.add_to pp pidx.(row) (pidx.(col)) v
            (* port-internal handled from the symmetric mirror below *)
          end
          else if pidx.(col) >= 0 then ip.(pidx.(col)).(iidx.(row)) <- v
          else Sparse.add bb (iidx.(row)) (iidx.(col)) v)
    done;
    (Sparse.finalize bb, pp, ip)
  in
  let g_ii, g_pp, g_ip = split g in
  let c_ii, c_pp, c_ip = split c in
  if m = 0 then
    {
      nports = p;
      internal = 0;
      rank = 0;
      order;
      dc_exact = true;
      ghat = g_pp;
      chat = c_pp;
      build_seconds = Unix.gettimeofday () -. t0;
    }
  else begin
    (* A = G_II + s0 C_II, factored once and reused for every column. *)
    let ab = Sparse.builder m m in
    for i = 0 to m - 1 do
      Sparse.iter_row g_ii i (fun j v -> Sparse.add ab i j v);
      Sparse.iter_row c_ii i (fun j v -> Sparse.add ab i j (s0 *. v))
    done;
    let a = Splu.factor (Sparse.finalize ab) in
    let basis = ref [] and rank = ref 0 in
    let push block col =
      match orthonormalize !basis col with
      | None -> block
      | Some q ->
        basis := !basis @ [ q ];
        incr rank;
        q :: block
    in
    (* DC correction block: spanning G_II⁻¹ G_IP makes the reduced
       model's s = 0 response exact regardless of the expansion point
       (Galerkin projection reproduces any solution inside the span),
       so reduction never shifts a deck's DC bias.  When G_II alone is
       singular (a capacitor-only internal node) the network has no
       unique DC solution to preserve and the block is skipped. *)
    let dc_exact =
      s0 = 0.0
      ||
      match Splu.factor g_ii with
      | exception Splu.Singular _ -> false
      | gfac ->
        Array.iter
          (fun col ->
            if Vec.norm2 col > 0.0 && !rank < m then
              ignore (push [] (Splu.solve gfac col)))
          g_ip;
        true
    in
    (* Starting block at s0: A⁻¹ [G_IP C_IP] (zero columns skipped). *)
    let first =
      List.fold_left
        (fun block col ->
          if Vec.norm2 col = 0.0 || !rank >= m then block
          else push block (Splu.solve a col))
        []
        (Array.to_list g_ip @ Array.to_list c_ip)
    in
    (* Higher moments: each next block is A⁻¹ C_II · (previous block). *)
    let block = ref first in
    let j = ref 1 in
    while !j < order && !block <> [] && !rank < m do
      block :=
        List.fold_left
          (fun nb v ->
            if !rank >= m then nb
            else
              let w = Sparse.mul_vec c_ii v in
              if Vec.norm2 w = 0.0 then nb else push nb (Splu.solve a w))
          [] !block;
      incr j
    done;
    let k = !rank in
    let v = Array.of_list !basis in
    (* Congruence Ĝ = Wᵀ G W with W = [E_P, E_I V]:
         Ĝ_PP = G_PP, Ĝ_PI = G_PI V (= G_IPᵀ V by symmetry),
         Ĝ_II = Vᵀ G_II V — and identically for Ĉ. *)
    let project pp ip ii =
      let h = Mat.make (p + k) (p + k) in
      for a' = 0 to p - 1 do
        for b = 0 to p - 1 do
          Mat.set h a' b (Mat.get pp a' b)
        done;
        for l = 0 to k - 1 do
          let x = Vec.dot ip.(a') v.(l) in
          Mat.set h a' (p + l) x;
          Mat.set h (p + l) a' x
        done
      done;
      for l = 0 to k - 1 do
        let w = Sparse.mul_vec ii v.(l) in
        for l' = l to k - 1 do
          let x = Vec.dot w v.(l') in
          Mat.set h (p + l) (p + l') x;
          Mat.set h (p + l') (p + l) x
        done
      done;
      h
    in
    let ghat = project g_pp g_ip g_ii in
    let chat = project c_pp c_ip c_ii in
    {
      nports = p;
      internal = m;
      rank = k;
      order;
      dc_exact;
      ghat;
      chat;
      build_seconds = Unix.gettimeofday () -. t0;
    }
  end

let port_admittance ~g ~c ~ports ~omega =
  let n = Mat.rows g in
  if Mat.cols g <> n || Mat.rows c <> n || Mat.cols c <> n then
    invalid_arg "Krylov.port_admittance: shape mismatch";
  let p = Array.length ports in
  let pidx = Array.make n (-1) in
  Array.iteri
    (fun a gi ->
      if gi < 0 || gi >= n then
        invalid_arg "Krylov.port_admittance: port out of range";
      if pidx.(gi) >= 0 then invalid_arg "Krylov.port_admittance: duplicate port";
      pidx.(gi) <- a)
    ports;
  let internal = ref [] in
  for gi = n - 1 downto 0 do
    if pidx.(gi) < 0 then internal := gi :: !internal
  done;
  let internal = Array.of_list !internal in
  let m = Array.length internal in
  let k i j =
    { Complex.re = Mat.get g i j; im = omega *. Mat.get c i j }
  in
  let y = Array.init p (fun a -> Array.init p (fun b -> k ports.(a) ports.(b))) in
  if m > 0 then begin
    let kii =
      Array.init m (fun i -> Array.init m (fun j -> k internal.(i) internal.(j)))
    in
    let lu = Lu.Cplx.decompose kii in
    for b = 0 to p - 1 do
      let rhs = Array.init m (fun i -> k internal.(i) ports.(b)) in
      let x = Lu.Cplx.solve lu rhs in
      for a = 0 to p - 1 do
        let acc = ref Complex.zero in
        for i = 0 to m - 1 do
          acc := Complex.add !acc (Complex.mul (k ports.(a) internal.(i)) x.(i))
        done;
        y.(a).(b) <- Complex.sub y.(a).(b) !acc
      done
    done
  end;
  y

let psd_defect_index m =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Krylov.psd_defect: square matrices only";
  (* LDLᵀ without pivoting on the symmetric part; for a PSD input all
     pivots are >= 0 (a zero pivot forces a zero row, which we treat as
     eliminated).  Scaled so the defect is comparable across
     magnitudes. *)
  let a = Array.init n (fun i ->
      Array.init n (fun j -> 0.5 *. (Mat.get m i j +. Mat.get m j i)))
  in
  let scale = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      scale := Float.max !scale (Float.abs a.(i).(j))
    done
  done;
  let tiny = 1e-14 *. Float.max !scale 1.0 in
  let defect = ref 0.0 and at = ref 0 in
  for kk = 0 to n - 1 do
    let d = a.(kk).(kk) in
    if d < !defect then begin
      defect := d;
      at := kk
    end;
    if Float.abs d > tiny then
      for i = kk + 1 to n - 1 do
        let f = a.(i).(kk) /. d in
        if f <> 0.0 then
          for j = kk to n - 1 do
            a.(i).(j) <- a.(i).(j) -. f *. a.(kk).(j)
          done
      done
    else
      (* a (near-)zero pivot over a nonzero row means indefiniteness *)
      for i = kk + 1 to n - 1 do
        let off = Float.abs a.(i).(kk) in
        if off > tiny && -.off < !defect then begin
          defect := -.off;
          at := kk
        end
      done
  done;
  (!defect, !at)

let psd_defect m = fst (psd_defect_index m)
