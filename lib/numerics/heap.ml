(* Binary min-heap over (int key, int payload) pairs.

   Used for lazy-deletion priority queues: callers push fresh entries
   whenever a payload's key changes and discard stale entries on pop.
   Keys compare as plain ints, so composite priorities (for example
   degree * n + node for deterministic tie-breaking) encode naturally. *)

type t = {
  mutable keys : int array;
  mutable payloads : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { keys = Array.make capacity 0; payloads = Array.make capacity 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = 2 * Array.length t.keys in
  let k = Array.make cap 0 and p = Array.make cap 0 in
  Array.blit t.keys 0 k 0 t.len;
  Array.blit t.payloads 0 p 0 t.len;
  t.keys <- k;
  t.payloads <- p

let swap t a b =
  let k = t.keys.(a) in
  t.keys.(a) <- t.keys.(b);
  t.keys.(b) <- k;
  let p = t.payloads.(a) in
  t.payloads.(a) <- t.payloads.(b);
  t.payloads.(b) <- p

let push t ~key payload =
  if t.len = Array.length t.keys then grow t;
  t.keys.(t.len) <- key;
  t.payloads.(t.len) <- payload;
  t.len <- t.len + 1;
  (* sift up *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    t.keys.(!i) < t.keys.(parent)
  do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let pop t =
  if t.len = 0 then None
  else begin
    let key = t.keys.(0) and payload = t.payloads.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.keys.(0) <- t.keys.(t.len);
      t.payloads.(0) <- t.payloads.(t.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && t.keys.(l) < t.keys.(!smallest) then smallest := l;
        if r < t.len && t.keys.(r) < t.keys.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap t !i !smallest;
          i := !smallest
        end
      done
    end;
    Some (key, payload)
  end
