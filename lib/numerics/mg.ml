(* Geometric multigrid V-cycle preconditioner for the FDM substrate
   Laplacian.  The hierarchy is built variationally: index-space
   trilinear prolongation P per level, restriction P^T, Galerkin
   coarse operator P^T A P — so nonuniform (snap-line) spacings need
   no special casing.  Smoothing is red-black Gauss-Seidel; the
   post-smoother sweeps in exactly the reverse order of the
   pre-smoother, which makes one V-cycle a symmetric positive-definite
   operator, as PCG requires. *)

type level = {
  a : Sparse.t;
  n : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
  inv_diag : float array;
  order : int array; (* red cells ascending, then black cells ascending *)
  (* interpolation from the next-coarser level, CSR over fine rows;
     empty arrays on the coarsest level *)
  p_ptr : int array;
  p_idx : int array;
  p_w : float array;
  coarse_n : int;
}

type t = { levels : level array; coarse : Lu.rfactor option; nu : int }

let levels t = Array.length t.levels

(* 1-D index-space coarsening: even fine lines inject, odd fine lines
   average their two coarse flanks.  Dimensions below 4 stay as they
   are (the z extent of the substrate stack bottoms out quickly while
   x/y keep halving). *)
let coarsen_dim nf = if nf >= 4 then (nf + 1) / 2 else nf

let interp_1d nf nc =
  Array.init nf (fun i ->
      if nc = nf then [| (i, 1.0) |]
      else if i land 1 = 0 then [| (i / 2, 1.0) |]
      else begin
        let l = (i - 1) / 2 in
        let r = l + 1 in
        if r < nc then [| (l, 0.5); (r, 0.5) |] else [| (l, 1.0) |]
      end)

let red_black_order (nx, ny, nz) =
  let n = nx * ny * nz in
  let order = Array.make n 0 in
  let pos = ref 0 in
  for parity = 0 to 1 do
    for iz = 0 to nz - 1 do
      for iy = 0 to ny - 1 do
        for ix = 0 to nx - 1 do
          if (ix + iy + iz) land 1 = parity then begin
            order.(!pos) <- (iz * nx * ny) + (iy * nx) + ix;
            incr pos
          end
        done
      done
    done
  done;
  order

let inv_diag_of a =
  Array.mapi
    (fun i d ->
      if Float.abs d > 0.0 then 1.0 /. d else raise (Cg.Zero_diagonal i))
    (Sparse.diagonal a)

(* Tensor-product trilinear prolongation as a CSR map fine -> coarse
   entries, and the Galerkin triple product P^T A P accumulated row by
   row into hash tables (the coarse stencil stays O(27) wide, so the
   tables stay tiny). *)
let build_transfer (nx, ny, nz) (cx, cy, cz) a =
  let mx = interp_1d nx cx and my = interp_1d ny cy and mz = interp_1d nz cz in
  let n = nx * ny * nz in
  let nc = cx * cy * cz in
  let p_ptr = Array.make (n + 1) 0 in
  let rows = Array.make n [||] in
  for iz = 0 to nz - 1 do
    for iy = 0 to ny - 1 do
      for ix = 0 to nx - 1 do
        let i = (iz * nx * ny) + (iy * nx) + ix in
        let ex = mx.(ix) and ey = my.(iy) and ez = mz.(iz) in
        let row =
          Array.concat
            (List.concat_map
               (fun (jz, wz) ->
                 List.map
                   (fun (jy, wy) ->
                     Array.map
                       (fun (jx, wx) ->
                         ((jz * cx * cy) + (jy * cx) + jx, wx *. wy *. wz))
                       ex)
                   (Array.to_list ey))
               (Array.to_list ez))
        in
        rows.(i) <- row;
        p_ptr.(i + 1) <- p_ptr.(i) + Array.length row
      done
    done
  done;
  let nnz_p = p_ptr.(n) in
  let p_idx = Array.make nnz_p 0 and p_w = Array.make nnz_p 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun k (j, w) ->
          p_idx.(p_ptr.(i) + k) <- j;
          p_w.(p_ptr.(i) + k) <- w)
        row)
    rows;
  (* Galerkin coarse operator *)
  let acc = Array.init nc (fun _ -> Hashtbl.create 32) in
  let bump ci cj v =
    let tbl = acc.(ci) in
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl cj) in
    Hashtbl.replace tbl cj (cur +. v)
  in
  for i = 0 to n - 1 do
    Sparse.iter_row a i (fun j aij ->
        let rj = rows.(j) in
        Array.iter
          (fun (ci, wi) ->
            Array.iter (fun (cj, wj) -> bump ci cj (wi *. wj *. aij)) rj)
          rows.(i))
  done;
  let b = Sparse.builder nc nc in
  Array.iteri
    (fun ci tbl -> Hashtbl.iter (fun cj v -> Sparse.add b ci cj v) tbl)
    acc;
  (p_ptr, p_idx, p_w, Sparse.finalize b)

let build ?(nu = 1) ?(coarse_limit = 600) ~dims a =
  let nx, ny, nz = dims in
  let n = nx * ny * nz in
  if Sparse.rows a <> n || Sparse.cols a <> n then
    invalid_arg "Mg.build: dims do not match matrix size";
  if nu < 1 then invalid_arg "Mg.build: nu must be >= 1";
  let rec grow a dims acc =
    let nx, ny, nz = dims in
    let n = nx * ny * nz in
    let cx = coarsen_dim nx and cy = coarsen_dim ny and cz = coarsen_dim nz in
    let stop = n <= coarse_limit || (cx = nx && cy = ny && cz = nz) in
    if stop then begin
      let lvl =
        {
          a;
          n;
          row_ptr = Sparse.row_ptr a;
          col_idx = Sparse.col_idx a;
          values = Sparse.values a;
          inv_diag = inv_diag_of a;
          order = red_black_order dims;
          p_ptr = [||];
          p_idx = [||];
          p_w = [||];
          coarse_n = 0;
        }
      in
      List.rev (lvl :: acc)
    end
    else begin
      let p_ptr, p_idx, p_w, a_c = build_transfer dims (cx, cy, cz) a in
      let lvl =
        {
          a;
          n;
          row_ptr = Sparse.row_ptr a;
          col_idx = Sparse.col_idx a;
          values = Sparse.values a;
          inv_diag = inv_diag_of a;
          order = red_black_order dims;
          p_ptr;
          p_idx;
          p_w;
          coarse_n = cx * cy * cz;
        }
      in
      grow a_c (cx, cy, cz) (lvl :: acc)
    end
  in
  let levels = Array.of_list (grow a dims []) in
  let last = levels.(Array.length levels - 1) in
  (* the coarsest operator is dense-factored once; with only one level
     the V-cycle degenerates to that direct solve *)
  let coarse = Some (Lu.factor_mat (Sparse.to_dense last.a)) in
  { levels; coarse; nu }

(* One Gauss-Seidel sweep over the given cell order (forward = the
   stored red-then-black order; the post-smoother passes it
   reversed). *)
let gs_sweep lvl b x ~reverse =
  let order = lvl.order in
  let rp = lvl.row_ptr and ci = lvl.col_idx and v = lvl.values in
  let m = Array.length order in
  for k = 0 to m - 1 do
    let i = order.(if reverse then m - 1 - k else k) in
    let s = ref b.(i) in
    for e = rp.(i) to rp.(i + 1) - 1 do
      let j = ci.(e) in
      if j <> i then s := !s -. (v.(e) *. x.(j))
    done;
    x.(i) <- !s *. lvl.inv_diag.(i)
  done

let residual lvl b x r =
  let rp = lvl.row_ptr and ci = lvl.col_idx and v = lvl.values in
  for i = 0 to lvl.n - 1 do
    let s = ref 0.0 in
    for e = rp.(i) to rp.(i + 1) - 1 do
      s := !s +. (v.(e) *. x.(ci.(e)))
    done;
    r.(i) <- b.(i) -. !s
  done

let restrict lvl r rc =
  Array.fill rc 0 (Array.length rc) 0.0;
  for i = 0 to lvl.n - 1 do
    let ri = r.(i) in
    for e = lvl.p_ptr.(i) to lvl.p_ptr.(i + 1) - 1 do
      rc.(lvl.p_idx.(e)) <- rc.(lvl.p_idx.(e)) +. (lvl.p_w.(e) *. ri)
    done
  done

let prolong_add lvl xc x =
  for i = 0 to lvl.n - 1 do
    let s = ref 0.0 in
    for e = lvl.p_ptr.(i) to lvl.p_ptr.(i + 1) - 1 do
      s := !s +. (lvl.p_w.(e) *. xc.(lvl.p_idx.(e)))
    done;
    x.(i) <- x.(i) +. !s
  done

let rec v_cycle t l b =
  let lvl = t.levels.(l) in
  if l = Array.length t.levels - 1 then
    match t.coarse with
    | Some f -> Lu.solve_factored f b
    | None -> assert false
  else begin
    let x = Vec.zeros lvl.n in
    for _ = 1 to t.nu do
      gs_sweep lvl b x ~reverse:false
    done;
    let r = Vec.zeros lvl.n in
    residual lvl b x r;
    let rc = Vec.zeros lvl.coarse_n in
    restrict lvl r rc;
    let xc = v_cycle t (l + 1) rc in
    prolong_add lvl xc x;
    for _ = 1 to t.nu do
      gs_sweep lvl b x ~reverse:true
    done;
    x
  end

let apply t r =
  if Array.length r <> t.levels.(0).n then
    invalid_arg "Mg.apply: dimension mismatch";
  (* one cancellation poll per V-cycle; the cycle itself is bounded *)
  Cancel.poll ();
  v_cycle t 0 r
