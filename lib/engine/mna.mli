(** Modified nodal analysis bookkeeping shared by the DC, AC and
    transient engines: node and branch-current variable numbering.

    Unknown vector layout: node voltages first (non-ground nodes in
    sorted order), then one branch current per voltage-defined element
    (independent voltage sources, VCVS, inductors). *)

type t

exception Unknown_node of { node : string; candidates : string list }
(** A node name that is not in the netlist; [candidates] holds the
    closest existing node names (by edit distance, at most five). *)

exception Unknown_branch of { name : string; candidates : string list }
(** An element name that does not define a branch current;
    [candidates] holds the closest voltage-defined element names. *)

val build : Sn_circuit.Netlist.t -> t

val netlist : t -> Sn_circuit.Netlist.t

val n_nodes : t -> int
val n_branches : t -> int

val dim : t -> int
(** [dim m = n_nodes m + n_branches m]. *)

val node_slot : t -> string -> int
(** [node_slot m name] is the unknown index of node [name], or [-1]
    for ground.  Raises {!Unknown_node} for unknown nodes. *)

val branch_slot : t -> string -> int
(** [branch_slot m element_name] is the unknown index of the branch
    current of a voltage-defined element.  Raises {!Unknown_branch}. *)

val node_names : t -> string array
(** Index [i] holds the name of unknown [i], for [i < n_nodes]. *)

val branch_names : t -> string array
(** Index [i] holds the element name of branch unknown
    [n_nodes + i] — voltage-defined elements in netlist order. *)

val slot_name : t -> int -> string option
(** [slot_name m i] maps unknown index [i] back to its node name
    ([i < n_nodes]) or branch element name — the reverse of
    {!node_slot} / {!branch_slot}, used to attach names to solver
    diagnostics (a singular pivot, a worst-residual unknown). *)
