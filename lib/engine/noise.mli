(** Small-signal noise analysis (the Spectre [noise] statement).

    Thermal noise of every resistor ([4kT/R]) and channel thermal
    noise of every MOSFET ([4kT gamma gm], [gamma = 2/3]) is
    propagated to an output node with the adjoint method: one solve of
    the {e transposed} AC system per frequency gives the transfer from
    every internal current injection to the output at once.

    The transpose solve runs on the {e same} sparse factorization the
    forward AC path builds ([U{^T}] then [L{^T}] sweeps) — no
    transposed matrix is materialized and no second factorization is
    run.  Frequency points are distributed over the default {!Pool}
    ([--jobs] / [SNOISE_JOBS]) with byte-identical results at any
    width. *)

type contribution = {
  element : string;
  psd : float;  (** V^2 / Hz at the output due to this element *)
}

type point = {
  freq : float;
  total_psd : float;  (** V^2 / Hz *)
  contributions : contribution list;  (** sorted, largest first *)
}

val analyze :
  ?dc:Dc.solution -> ?temperature:float -> Sn_circuit.Netlist.t ->
  output:string -> freqs:float array -> point list
(** [analyze ?dc ?temperature nl ~output ~freqs] computes the output
    noise voltage spectral density.  [temperature] defaults to 300 K.
    Raises [Not_found] for an unknown output node and
    [Invalid_argument] for negative frequencies (validated before any
    solve runs). *)

val analyze_plan :
  ?temperature:float -> dc:Dc.solution -> Ac_plan.t ->
  output:string -> freqs:float array -> point list
(** [analyze_plan ~dc acp ~output ~freqs] is {!analyze} over a
    pre-compiled {!Ac_plan} and its operating point — the
    resident-service hot path, skipping the MNA build, the stamp-plan
    compilation and the bias solve.  [dc] must be the operating point
    the plan was compiled at.  Raises as {!analyze}. *)

val total_rms : point list -> float
(** [total_rms points] integrates the PSD over the swept band
    (trapezoidal in linear frequency) and returns the RMS noise
    voltage (V).  Raises [Invalid_argument] on fewer than 2 points. *)

val spot_nv : point -> float
(** [spot_nv p] is the spot noise in nV/sqrt(Hz). *)
