(* Fixed-size domain pool.

   Workers are spawned once and parked on a condition variable between
   batches; a batch is published by bumping [generation] under the
   lock.  Tasks are claimed with an atomic fetch-and-add over the
   index range — at sweep grain (a task is a whole model build or
   spur evaluation) a shared counter balances better than static
   chunking and costs one CAS per task, so no deque or stealing is
   needed.  The calling domain participates as worker 0, which keeps a
   width-1 pool literally sequential: no domains, no locks taken in
   [run]'s fast path beyond the stats bookkeeping. *)

let max_jobs = 64

let clamp_jobs n = if n < 1 then 1 else if n > max_jobs then max_jobs else n

let recommended_jobs () = clamp_jobs (Domain.recommended_domain_count ())

let jobs_of_string ?default s =
  let default =
    match default with Some d -> clamp_jobs d | None -> recommended_jobs ()
  in
  match int_of_string_opt (String.trim s) with
  | None -> default
  | Some n when n < 1 -> default
  | Some n -> clamp_jobs n

let env_jobs () =
  match Sys.getenv_opt "SNOISE_JOBS" with
  | None -> recommended_jobs ()
  | Some s -> jobs_of_string s

type stats = {
  jobs : int;
  tasks_run : int;
  tasks_failed : int;
  batches : int;
  busy_seconds : float array;
  wall_seconds : float;
}

type t = {
  n_workers : int;
  lock : Mutex.t;
  work_cond : Condition.t;  (* workers: a new batch (or stop) is up *)
  done_cond : Condition.t;  (* caller: all workers left the batch *)
  mutable batch : int -> unit;
  mutable batch_n : int;
  next : int Atomic.t;  (* next unclaimed task index *)
  mutable generation : int;  (* bumped per batch, under [lock] *)
  mutable active : int;  (* spawned workers still inside the batch *)
  mutable stop : bool;
  mutable error : exn option;  (* first task exception of the batch *)
  mutable running : bool;  (* a batch is in flight (nested-run guard) *)
  mutable domains : unit Domain.t array;
  (* observability *)
  mutable tasks_run : int;
  mutable tasks_failed : int;
  mutable batches : int;
  busy : float array;
  mutable wall : float;
}

let jobs t = t.n_workers

(* Claim and execute tasks until the batch is exhausted; returns the
   number of tasks this worker ran.  Called with [lock] NOT held. *)
let drain t w =
  let t0 = Unix.gettimeofday () in
  let ran = ref 0 in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add t.next 1 in
    if i >= t.batch_n then continue := false
    else begin
      (* benign racy read: after a task has failed the batch's results
         are discarded anyway, so remaining tasks are skipped *)
      (if t.error == None then
         (* cancellation is checked at task-claim time so a cancelled
            batch stops claiming work within one task boundary and the
            pool slot frees for the next request *)
         try Sn_numerics.Cancel.poll (); t.batch i
         with e ->
           Mutex.lock t.lock;
           if t.error = None then t.error <- Some e;
           Mutex.unlock t.lock);
      incr ran
    end
  done;
  t.busy.(w) <- t.busy.(w) +. (Unix.gettimeofday () -. t0);
  !ran

let rec worker_loop t w my_gen =
  Mutex.lock t.lock;
  while (not t.stop) && t.generation = my_gen do
    Condition.wait t.work_cond t.lock
  done;
  if t.stop then Mutex.unlock t.lock
  else begin
    let gen = t.generation in
    Mutex.unlock t.lock;
    let ran = drain t w in
    Mutex.lock t.lock;
    t.tasks_run <- t.tasks_run + ran;
    t.active <- t.active - 1;
    if t.active = 0 then Condition.broadcast t.done_cond;
    Mutex.unlock t.lock;
    worker_loop t w gen
  end

let create ?jobs () =
  let n_workers =
    match jobs with None -> env_jobs () | Some j -> clamp_jobs j
  in
  let t =
    {
      n_workers;
      lock = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      batch = ignore;
      batch_n = 0;
      next = Atomic.make 0;
      generation = 0;
      active = 0;
      stop = false;
      error = None;
      running = false;
      domains = [||];
      tasks_run = 0;
      tasks_failed = 0;
      batches = 0;
      busy = Array.make n_workers 0.0;
      wall = 0.0;
    }
  in
  t.domains <-
    Array.init (n_workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let sequential_run t ~n f =
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    Sn_numerics.Cancel.poll ();
    f i
  done;
  let dt = Unix.gettimeofday () -. t0 in
  t.busy.(0) <- t.busy.(0) +. dt;
  t.tasks_run <- t.tasks_run + n;
  t.batches <- t.batches + 1;
  t.wall <- t.wall +. dt

let run t ~n f =
  if n > 0 then begin
    let inline =
      Array.length t.domains = 0
      ||
      (Mutex.lock t.lock;
       let r = t.running in
       Mutex.unlock t.lock;
       r)
    in
    if inline then sequential_run t ~n f
    else begin
      let t0 = Unix.gettimeofday () in
      Mutex.lock t.lock;
      t.running <- true;
      t.batch <- f;
      t.batch_n <- n;
      t.error <- None;
      Atomic.set t.next 0;
      t.active <- Array.length t.domains;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_cond;
      Mutex.unlock t.lock;
      let ran = drain t 0 in
      Mutex.lock t.lock;
      while t.active > 0 do
        Condition.wait t.done_cond t.lock
      done;
      t.tasks_run <- t.tasks_run + ran;
      t.batches <- t.batches + 1;
      t.batch <- ignore;
      t.running <- false;
      let err = t.error in
      t.error <- None;
      Mutex.unlock t.lock;
      t.wall <- t.wall +. (Unix.gettimeofday () -. t0);
      match err with Some e -> raise e | None -> ()
    end
  end

let map_array t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run t ~n (fun i -> results.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))

(* Per-task exception capture: unlike [map_array], where the first
   failure aborts the batch, every task runs to completion and returns
   [Ok _] or [Error exn].  The wrapped task never raises, so the
   batch-abort machinery in [run] stays dormant and surviving points
   are never discarded because of a failed sibling. *)
let map_array_result t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run t ~n (fun i ->
        let r = try Ok (f xs.(i)) with e -> Error e in
        results.(i) <- Some r);
    let out =
      Array.map (function Some v -> v | None -> assert false) results
    in
    let failed =
      Array.fold_left
        (fun acc r -> match r with Error _ -> acc + 1 | Ok _ -> acc)
        0 out
    in
    if failed > 0 then begin
      Mutex.lock t.lock;
      t.tasks_failed <- t.tasks_failed + failed;
      Mutex.unlock t.lock
    end;
    out
  end

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      jobs = t.n_workers;
      tasks_run = t.tasks_run;
      tasks_failed = t.tasks_failed;
      batches = t.batches;
      busy_seconds = Array.copy t.busy;
      wall_seconds = t.wall;
    }
  in
  Mutex.unlock t.lock;
  s

let reset_stats t =
  Mutex.lock t.lock;
  t.tasks_run <- 0;
  t.tasks_failed <- 0;
  t.batches <- 0;
  Array.fill t.busy 0 (Array.length t.busy) 0.0;
  t.wall <- 0.0;
  Mutex.unlock t.lock

let cpu_seconds s = Array.fold_left ( +. ) 0.0 s.busy_seconds

let imbalance s =
  let cpu = cpu_seconds s in
  if cpu <= 0.0 then 0.0
  else
    let mean = cpu /. float_of_int (Array.length s.busy_seconds) in
    let mx = Array.fold_left Float.max 0.0 s.busy_seconds in
    mx /. mean

let pp_stats fmt s =
  Format.fprintf fmt "@[<v>pool: %d worker%s, %d task%s in %d batch%s@,"
    s.jobs
    (if s.jobs = 1 then "" else "s")
    s.tasks_run
    (if s.tasks_run = 1 then "" else "s")
    s.batches
    (if s.batches = 1 then "" else "es");
  if s.tasks_failed > 0 then
    Format.fprintf fmt "  %d task%s failed@," s.tasks_failed
      (if s.tasks_failed = 1 then "" else "s");
  Format.fprintf fmt
    "wall %.3f s, cpu %.3f s (parallelism %.2fx, imbalance %.2f)@,"
    s.wall_seconds (cpu_seconds s)
    (if s.wall_seconds > 0.0 then cpu_seconds s /. s.wall_seconds else 0.0)
    (imbalance s);
  Array.iteri
    (fun w b -> Format.fprintf fmt "  worker %d busy %.3f s@," w b)
    s.busy_seconds;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* default pool *)

let default_pool = ref None
let default_width = ref None (* set by --jobs before first use *)
let exit_hook_registered = ref false

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let jobs =
      match !default_width with Some j -> j | None -> env_jobs ()
    in
    let p = create ~jobs () in
    default_pool := Some p;
    if not !exit_hook_registered then begin
      exit_hook_registered := true;
      at_exit (fun () ->
          match !default_pool with
          | Some p ->
            default_pool := None;
            shutdown p
          | None -> ())
    end;
    p

let set_default_jobs n =
  let n = clamp_jobs n in
  default_width := Some n;
  match !default_pool with
  | Some p when jobs p = n -> ()
  | Some p ->
    default_pool := None;
    shutdown p;
    ignore (default ())
  | None -> ()
