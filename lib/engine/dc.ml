module C = Sn_circuit
module N = Sn_numerics

let log_src = Logs.Src.create "sn.engine.dc" ~doc:"DC analysis"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  max_iterations : int;
  tolerance : float;
  gmin : float;
  damping : float;
  gmin_steps : int;
}

let default_options =
  { max_iterations = 200; tolerance = 1e-9; gmin = 1e-12; damping = 0.6;
    gmin_steps = 6 }

exception No_convergence of { iterations : int; residual : float }

type solution = { mna : Mna.t; x : float array }

let volt_of x slot = if slot < 0 then 0.0 else x.(slot)

(* Assemble the linearized MNA system at candidate [x] into the shared
   assembler and right-hand side.  The stamps walk the compiled plan:
   every node and branch index was resolved when the plan was built, so
   the Newton inner loop does no name lookups at all.  Dynamic elements
   are open circuits at DC. *)
let assemble_plan (plan : Stamp_plan.t) asm rhs ~gmin x =
  Assembler.start asm;
  Array.fill rhs 0 (Array.length rhs) 0.0;
  let stamp i j g = Assembler.add asm i j g in
  let inject i v = if i >= 0 then rhs.(i) <- rhs.(i) +. v in
  Array.iter
    (fun (e : Stamp_plan.elt) ->
      match e with
      | Stamp_plan.Resistor { i; j; g } ->
        stamp i i g;
        stamp j j g;
        stamp i j (-.g);
        stamp j i (-.g)
      | Stamp_plan.Capacitor _ | Stamp_plan.Varactor _ -> ()
      | Stamp_plan.Inductor { b; i; j; _ } ->
        (* DC short with explicit branch current *)
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp i b 1.0;
        stamp j b (-1.0)
      | Stamp_plan.Vsource { b; i; j; wave; _ } ->
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp i b 1.0;
        stamp j b (-1.0);
        rhs.(b) <- rhs.(b) +. C.Waveform.dc_value wave
      | Stamp_plan.Isource { i; j; wave; _ } ->
        let v = C.Waveform.dc_value wave in
        inject i (-.v);
        inject j v
      | Stamp_plan.Vccs { i; j; k; l; gm } ->
        stamp i k gm;
        stamp i l (-.gm);
        stamp j k (-.gm);
        stamp j l gm
      | Stamp_plan.Vcvs { b; i; j; k; l; gain } ->
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp b k (-.gain);
        stamp b l gain;
        stamp i b 1.0;
        stamp j b (-1.0)
      | Stamp_plan.Mosfet m ->
        let d = m.Stamp_plan.md and g = m.Stamp_plan.mg
        and s = m.Stamp_plan.ms and b = m.Stamp_plan.mbk in
        let lin =
          Device_eval.mos ~model:m.Stamp_plan.mmodel ~w:m.Stamp_plan.mw
            ~l:m.Stamp_plan.ml ~mult:m.Stamp_plan.mmult ~vd:(volt_of x d)
            ~vg:(volt_of x g) ~vs:(volt_of x s) ~vb:(volt_of x b)
        in
        (* i_d(v) ~ id0 + sum g_t (v_t - v_t0); current leaves drain,
           enters source *)
        let linear_part =
          (lin.Device_eval.g_dd *. volt_of x d)
          +. (lin.Device_eval.g_dg *. volt_of x g)
          +. (lin.Device_eval.g_ds *. volt_of x s)
          +. (lin.Device_eval.g_db *. volt_of x b)
        in
        let ieq = lin.Device_eval.id -. linear_part in
        stamp d d lin.Device_eval.g_dd;
        stamp d g lin.Device_eval.g_dg;
        stamp d s lin.Device_eval.g_ds;
        stamp d b lin.Device_eval.g_db;
        stamp s d (-.lin.Device_eval.g_dd);
        stamp s g (-.lin.Device_eval.g_dg);
        stamp s s (-.lin.Device_eval.g_ds);
        stamp s b (-.lin.Device_eval.g_db);
        inject d (-.ieq);
        inject s ieq)
    plan.Stamp_plan.elts;
  (* gmin on every node row keeps floating subnets solvable *)
  for i = 0 to Stamp_plan.n_nodes plan - 1 do
    Assembler.add asm i i gmin
  done

let newton_loop plan asm rhs options ~gmin x0 =
  let dim = Stamp_plan.dim plan in
  let n_nodes = Stamp_plan.n_nodes plan in
  let x = Array.copy x0 in
  let rec iterate k =
    if k >= options.max_iterations then
      raise (No_convergence { iterations = k; residual = Float.infinity })
    else begin
      assemble_plan plan asm rhs ~gmin x;
      let x_new =
        try Assembler.solve asm rhs
        with N.Splu.Singular _ ->
          raise (No_convergence { iterations = k; residual = Float.nan })
      in
      let max_delta = ref 0.0 in
      for i = 0 to dim - 1 do
        let delta = x_new.(i) -. x.(i) in
        let clamped =
          if i < n_nodes then
            Float.max (-.options.damping) (Float.min options.damping delta)
          else delta
        in
        max_delta := Float.max !max_delta (Float.abs delta);
        x.(i) <- x.(i) +. clamped
      done;
      if !max_delta < options.tolerance then x else iterate (k + 1)
    end
  in
  iterate 0

let solve_plan ?(options = default_options) plan =
  let dim = Stamp_plan.dim plan in
  let asm = Assembler.create dim in
  let rhs = Array.make dim 0.0 in
  let x0 = Array.make dim 0.0 in
  match newton_loop plan asm rhs options ~gmin:options.gmin x0 with
  | x -> { mna = Stamp_plan.mna plan; x }
  | exception No_convergence _ ->
    (* gmin continuation: solve with a heavy gmin, then relax.  The
       assembler (and its factorization pattern) carries across all
       continuation steps — only values change. *)
    Log.info (fun m -> m "direct Newton failed; starting gmin stepping");
    let rec continuation x = function
      | [] -> x
      | g :: rest ->
        let x = newton_loop plan asm rhs options ~gmin:g x in
        continuation x rest
    in
    let steps =
      List.init options.gmin_steps (fun k ->
          1e-3 *. (10.0 ** (-.float_of_int k *. 9.0 /. float_of_int (options.gmin_steps - 1))))
      @ [ options.gmin ]
    in
    let x = continuation x0 steps in
    { mna = Stamp_plan.mna plan; x }

let solve_mna ?options mna = solve_plan ?options (Stamp_plan.build mna)
let solve ?options netlist = solve_mna ?options (Mna.build netlist)

let mna s = s.mna

let voltage s node =
  let slot = Mna.node_slot s.mna node in
  volt_of s.x slot

let branch_current s name = s.x.(Mna.branch_slot s.mna name)

let mos_operating_point s name =
  match C.Netlist.find (Mna.netlist s.mna) name with
  | C.Element.Mosfet { drain; gate; source; bulk; model; w; l; mult; _ } ->
    let v n = voltage s n in
    let lin =
      Device_eval.mos ~model ~w ~l ~mult ~vd:(v drain) ~vg:(v gate)
        ~vs:(v source) ~vb:(v bulk)
    in
    lin.Device_eval.op
  | C.Element.Resistor _ | C.Element.Capacitor _ | C.Element.Inductor _
  | C.Element.Vsource _ | C.Element.Isource _ | C.Element.Vccs _
  | C.Element.Vcvs _ | C.Element.Varactor _ ->
    raise Not_found

let unknowns s = Array.copy s.x

let pp fmt s =
  let m = s.mna in
  Format.fprintf fmt "@[<v>operating point (%d nodes, %d branches)@,"
    (Mna.n_nodes m) (Mna.n_branches m);
  Array.iter
    (fun name ->
      Format.fprintf fmt "  v(%-20s) = %12.6g V@," name (voltage s name))
    (Mna.node_names m);
  List.iter
    (fun e ->
      match e with
      | C.Element.Vsource { name; _ } | C.Element.Vcvs { name; _ }
      | C.Element.Inductor { name; _ } ->
        Format.fprintf fmt "  i(%-20s) = %12.6g A@," name
          (branch_current s name)
      | C.Element.Mosfet { name; mult; _ } ->
        let op = mos_operating_point s name in
        let fm = float_of_int mult in
        Format.fprintf fmt
          "  %-8s %-11s id=%9.4g A gm=%9.4g S gds=%9.4g S gmb=%9.4g S@,"
          name
          (match op.C.Mos_model.region with
           | `Cutoff -> "cutoff"
           | `Triode -> "triode"
           | `Saturation -> "saturation")
          (fm *. op.C.Mos_model.id)
          (fm *. op.C.Mos_model.gm)
          (fm *. op.C.Mos_model.gds)
          (fm *. op.C.Mos_model.gmb)
      | C.Element.Resistor _ | C.Element.Capacitor _ | C.Element.Isource _
      | C.Element.Vccs _ | C.Element.Varactor _ ->
        ())
    (C.Netlist.elements (Mna.netlist m));
  Format.fprintf fmt "@]"
