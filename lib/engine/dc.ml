module C = Sn_circuit
module N = Sn_numerics

let log_src = Logs.Src.create "sn.engine.dc" ~doc:"DC analysis"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  max_iterations : int;
  tolerance : float;
  gmin : float;
  damping : float;
  gmin_steps : int;
  ladder : Diag.rung list;
  source_steps : int;
  ptran_steps : int;
}

let default_options =
  { max_iterations = 200; tolerance = 1e-9; gmin = 1e-12; damping = 0.6;
    gmin_steps = 6;
    ladder =
      [ Diag.Plain_newton; Diag.Damped_newton; Diag.Gmin_stepping;
        Diag.Source_stepping; Diag.Pseudo_transient ];
    source_steps = 20; ptran_steps = 8 }

type solution = { mna : Mna.t; x : float array; attempts : Diag.attempt list }

(* Why one rung attempt gave up: carried through the ladder so the
   final diagnostic can report the *last* (deepest) failure with real
   context — the worst-residual unknown, or the singular pivot. *)
type failure =
  | Diverged of { iterations : int; residual : float; worst : int }
  | Singular of { iterations : int; pivot : int }

exception Attempt_failed of failure

let volt_of x slot = if slot < 0 then 0.0 else x.(slot)

(* Assemble the linearized MNA system at candidate [x] into the shared
   assembler and right-hand side.  The stamps walk the compiled plan:
   every node and branch index was resolved when the plan was built, so
   the Newton inner loop does no name lookups at all.  Dynamic elements
   are open circuits at DC.

   [source_scale] multiplies every independent-source value (source
   stepping ramps it 0 -> 1); it only touches the right-hand side, so
   the stamp event sequence stays identical across the whole ladder and
   the assembler's recorded pattern remains valid. *)
let assemble_plan ?(source_scale = 1.0) (plan : Stamp_plan.t) asm rhs ~gmin x =
  Assembler.start asm;
  Array.fill rhs 0 (Array.length rhs) 0.0;
  let stamp i j g = Assembler.add asm i j g in
  let inject i v = if i >= 0 then rhs.(i) <- rhs.(i) +. v in
  Array.iter
    (fun (e : Stamp_plan.elt) ->
      match e with
      | Stamp_plan.Resistor { i; j; g } ->
        stamp i i g;
        stamp j j g;
        stamp i j (-.g);
        stamp j i (-.g)
      | Stamp_plan.Capacitor _ | Stamp_plan.Varactor _ -> ()
      | Stamp_plan.Inductor { b; i; j; _ } ->
        (* DC short with explicit branch current *)
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp i b 1.0;
        stamp j b (-1.0)
      | Stamp_plan.Vsource { b; i; j; wave; _ } ->
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp i b 1.0;
        stamp j b (-1.0);
        rhs.(b) <- rhs.(b) +. (source_scale *. C.Waveform.dc_value wave)
      | Stamp_plan.Isource { i; j; wave; _ } ->
        let v = source_scale *. C.Waveform.dc_value wave in
        inject i (-.v);
        inject j v
      | Stamp_plan.Vccs { i; j; k; l; gm } ->
        stamp i k gm;
        stamp i l (-.gm);
        stamp j k (-.gm);
        stamp j l gm
      | Stamp_plan.Vcvs { b; i; j; k; l; gain } ->
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp b k (-.gain);
        stamp b l gain;
        stamp i b 1.0;
        stamp j b (-1.0)
      | Stamp_plan.Mosfet m ->
        let d = m.Stamp_plan.md and g = m.Stamp_plan.mg
        and s = m.Stamp_plan.ms and b = m.Stamp_plan.mbk in
        let lin =
          Device_eval.mos ~model:m.Stamp_plan.mmodel ~w:m.Stamp_plan.mw
            ~l:m.Stamp_plan.ml ~mult:m.Stamp_plan.mmult ~vd:(volt_of x d)
            ~vg:(volt_of x g) ~vs:(volt_of x s) ~vb:(volt_of x b)
        in
        (* i_d(v) ~ id0 + sum g_t (v_t - v_t0); current leaves drain,
           enters source *)
        let linear_part =
          (lin.Device_eval.g_dd *. volt_of x d)
          +. (lin.Device_eval.g_dg *. volt_of x g)
          +. (lin.Device_eval.g_ds *. volt_of x s)
          +. (lin.Device_eval.g_db *. volt_of x b)
        in
        let ieq = lin.Device_eval.id -. linear_part in
        stamp d d lin.Device_eval.g_dd;
        stamp d g lin.Device_eval.g_dg;
        stamp d s lin.Device_eval.g_ds;
        stamp d b lin.Device_eval.g_db;
        stamp s d (-.lin.Device_eval.g_dd);
        stamp s g (-.lin.Device_eval.g_dg);
        stamp s s (-.lin.Device_eval.g_ds);
        stamp s b (-.lin.Device_eval.g_db);
        inject d (-.ieq);
        inject s ieq)
    plan.Stamp_plan.elts;
  (* gmin on every node row keeps floating subnets solvable *)
  for i = 0 to Stamp_plan.n_nodes plan - 1 do
    Assembler.add asm i i gmin
  done

(* One Newton run.  [anchor = (g, x_prev)] turns the iteration into a
   backward-Euler pseudo-transient step: conductance [g] from every
   node to its previous voltage, i.e. [g] is folded into the gmin
   diagonal add (keeping the stamp sequence unchanged) and [g * x_prev]
   is injected into the node rows of the right-hand side.

   Returns [(x, iterations)]; raises [Attempt_failed] with the last
   iteration's worst slot and residual on budget exhaustion, or the
   singular column on a factorization failure. *)
let newton_loop ?source_scale ?anchor plan asm rhs ~budget ~clamp ~tolerance
    ~gmin x0 =
  let dim = Stamp_plan.dim plan in
  let n_nodes = Stamp_plan.n_nodes plan in
  let x = Array.copy x0 in
  let gmin_eff, inject_anchor =
    match anchor with
    | None -> (gmin, fun () -> ())
    | Some (g, x_prev) ->
      ( gmin +. g,
        fun () ->
          for i = 0 to n_nodes - 1 do
            rhs.(i) <- rhs.(i) +. (g *. x_prev.(i))
          done )
  in
  let last_residual = ref Float.infinity in
  let last_worst = ref (-1) in
  let rec iterate k =
    if k >= budget then
      raise
        (Attempt_failed
           (Diverged
              { iterations = k; residual = !last_residual;
                worst = !last_worst }))
    else begin
      N.Cancel.poll ();
      assemble_plan ?source_scale plan asm rhs ~gmin:gmin_eff x;
      inject_anchor ();
      let x_new =
        try Assembler.solve asm rhs
        with N.Splu.Singular col ->
          raise (Attempt_failed (Singular { iterations = k; pivot = col }))
      in
      let max_delta = ref 0.0 in
      let worst = ref (-1) in
      for i = 0 to dim - 1 do
        let delta = x_new.(i) -. x.(i) in
        let clamped =
          if i < n_nodes then Float.max (-.clamp) (Float.min clamp delta)
          else delta
        in
        let mag = Float.abs delta in
        if mag > !max_delta then begin
          max_delta := mag;
          worst := i
        end;
        x.(i) <- x.(i) +. clamped
      done;
      last_residual := !max_delta;
      last_worst := !worst;
      if !max_delta < tolerance then (x, k + 1) else iterate (k + 1)
    end
  in
  iterate 0

(* ------------------------------------------------------------------ *)
(* The rescue ladder.  Each rung takes the cold start [x0] and either
   returns [(x, total_newton_iterations)] or raises [Attempt_failed].
   All rungs share one assembler, so the factorization pattern is
   discovered once and reused across the whole ladder. *)

let run_plain plan asm rhs (o : options) x0 =
  newton_loop plan asm rhs ~budget:o.max_iterations ~clamp:o.damping
    ~tolerance:o.tolerance ~gmin:o.gmin x0

(* Heavier clamp, larger budget: slower but monotone-ish progress on
   circuits where the full-strength update overshoots. *)
let run_damped plan asm rhs (o : options) x0 =
  newton_loop plan asm rhs ~budget:(3 * o.max_iterations)
    ~clamp:(o.damping /. 6.0) ~tolerance:o.tolerance ~gmin:o.gmin x0

let run_gmin plan asm rhs (o : options) x0 =
  let steps =
    List.init o.gmin_steps (fun k ->
        1e-3
        *. (10.0
            ** (-.float_of_int k *. 9.0 /. float_of_int (o.gmin_steps - 1))))
    @ [ o.gmin ]
  in
  let rec continuation x iters = function
    | [] -> (x, iters)
    | g :: rest -> (
      match
        newton_loop plan asm rhs ~budget:o.max_iterations ~clamp:o.damping
          ~tolerance:o.tolerance ~gmin:g x
      with
      | x, k -> continuation x (iters + k) rest
      | exception Attempt_failed (Diverged d) ->
        raise
          (Attempt_failed (Diverged { d with iterations = iters + d.iterations }))
      | exception Attempt_failed (Singular s) ->
        raise
          (Attempt_failed (Singular { s with iterations = iters + s.iterations })))
  in
  continuation x0 0 steps

(* Ramp every independent source from 0 to 100 %.  At scale ~0 the
   all-zero start is already near the solution; each sub-step warm
   starts from the previous one, so even a tight damping clamp only has
   to cover the per-step voltage increment. *)
let run_source plan asm rhs (o : options) x0 =
  let n = max 1 o.source_steps in
  let rec ramp x iters k =
    if k > n then (x, iters)
    else
      let scale = float_of_int k /. float_of_int n in
      match
        newton_loop ~source_scale:scale plan asm rhs ~budget:o.max_iterations
          ~clamp:o.damping ~tolerance:o.tolerance ~gmin:o.gmin x
      with
      | x, it -> ramp x (iters + it) (k + 1)
      | exception Attempt_failed (Diverged d) ->
        raise
          (Attempt_failed (Diverged { d with iterations = iters + d.iterations }))
      | exception Attempt_failed (Singular s) ->
        raise
          (Attempt_failed (Singular { s with iterations = iters + s.iterations }))
  in
  ramp x0 0 1

(* Pseudo-transient continuation: anchor every node to its previous
   voltage through a conductance [g], ramp [g] down by decades, then
   polish with one clean Newton.  Equivalent to backward-Euler time
   stepping toward the equilibrium with growing timestep. *)
let run_ptran plan asm rhs (o : options) x0 =
  let n = max 1 o.ptran_steps in
  let gs = List.init n (fun k -> 1.0 *. (10.0 ** -.float_of_int k)) in
  let rec march x iters = function
    | [] -> (
      (* final polish without the anchor *)
      match
        newton_loop plan asm rhs ~budget:o.max_iterations ~clamp:o.damping
          ~tolerance:o.tolerance ~gmin:o.gmin x
      with
      | x, it -> (x, iters + it)
      | exception Attempt_failed (Diverged d) ->
        raise
          (Attempt_failed (Diverged { d with iterations = iters + d.iterations }))
      | exception Attempt_failed (Singular s) ->
        raise
          (Attempt_failed (Singular { s with iterations = iters + s.iterations })))
    | g :: rest -> (
      match
        newton_loop ~anchor:(g, x) plan asm rhs ~budget:o.max_iterations
          ~clamp:o.damping ~tolerance:o.tolerance ~gmin:o.gmin x
      with
      | x, it -> march x (iters + it) rest
      | exception Attempt_failed (Diverged d) ->
        raise
          (Attempt_failed (Diverged { d with iterations = iters + d.iterations }))
      | exception Attempt_failed (Singular s) ->
        raise
          (Attempt_failed (Singular { s with iterations = iters + s.iterations })))
  in
  march x0 0 gs

let run_rung plan asm rhs options rung x0 =
  match rung with
  | Diag.Plain_newton -> run_plain plan asm rhs options x0
  | Diag.Damped_newton -> run_damped plan asm rhs options x0
  | Diag.Gmin_stepping -> run_gmin plan asm rhs options x0
  | Diag.Source_stepping -> run_source plan asm rhs options x0
  | Diag.Pseudo_transient -> run_ptran plan asm rhs options x0

let solve_plan ?(options = default_options) plan =
  let dim = Stamp_plan.dim plan in
  let asm = Assembler.create dim in
  let rhs = Array.make dim 0.0 in
  let x0 = Array.make dim 0.0 in
  let mna = Stamp_plan.mna plan in
  let ladder =
    match options.ladder with [] -> [ Diag.Plain_newton ] | l -> l
  in
  let attempts = ref [] in
  let total_iters = ref 0 in
  let last_failure = ref None in
  let rec try_rungs attempt_no = function
    | [] ->
      let loc = Diag.loc "dc" in
      let diag =
        match !last_failure with
        | Some (Singular { pivot; _ }) ->
          Diag.Singular_pivot
            { loc; pivot; unknown = Diag.unknown_of_slot mna pivot }
        | Some (Diverged { residual; worst; _ }) ->
          Diag.No_convergence
            { loc; iterations = !total_iters; residual;
              worst = Diag.unknown_of_slot mna worst;
              attempts = List.rev !attempts }
        | None ->
          Diag.No_convergence
            { loc; iterations = 0; residual = Float.infinity; worst = None;
              attempts = List.rev !attempts }
      in
      Log.err (fun m -> m "%a" Diag.pp diag);
      raise (Diag.Error diag)
    | rung :: rest ->
      (* cancellation boundary: a deadline-armed solve gives up between
         rescue-ladder attempts *)
      N.Cancel.tick ();
      if Fault.fire ~scope_index:attempt_no Dc_attempt then begin
        Log.warn (fun m ->
            m "injected fault: failing %s attempt" (Diag.rung_name rung));
        attempts :=
          { Diag.rung; iterations = 0; converged = false } :: !attempts;
        try_rungs (attempt_no + 1) rest
      end
      else begin
        (if attempt_no > 1 then
           Log.info (fun m -> m "rescue: trying %s" (Diag.rung_name rung)));
        match run_rung plan asm rhs options rung x0 with
        | x, iters ->
          attempts :=
            { Diag.rung; iterations = iters; converged = true } :: !attempts;
          total_iters := !total_iters + iters;
          if attempt_no > 1 then
            Log.info (fun m ->
                m "rescue: %s converged after %d iterations"
                  (Diag.rung_name rung) iters);
          { mna; x; attempts = List.rev !attempts }
        | exception Attempt_failed f ->
          let iters =
            match f with
            | Diverged { iterations; _ } | Singular { iterations; _ } ->
              iterations
          in
          attempts :=
            { Diag.rung; iterations = iters; converged = false } :: !attempts;
          total_iters := !total_iters + iters;
          last_failure := Some f;
          Log.info (fun m ->
              m "%s failed after %d iterations" (Diag.rung_name rung) iters);
          try_rungs (attempt_no + 1) rest
      end
  in
  try_rungs 1 ladder

let solve_mna ?options mna = solve_plan ?options (Stamp_plan.build mna)
let solve ?options netlist = solve_mna ?options (Mna.build netlist)

let mna s = s.mna
let attempts s = s.attempts

let voltage s node =
  let slot = Mna.node_slot s.mna node in
  volt_of s.x slot

let branch_current s name = s.x.(Mna.branch_slot s.mna name)

let mos_operating_point s name =
  match C.Netlist.find (Mna.netlist s.mna) name with
  | C.Element.Mosfet { drain; gate; source; bulk; model; w; l; mult; _ } ->
    let v n = voltage s n in
    let lin =
      Device_eval.mos ~model ~w ~l ~mult ~vd:(v drain) ~vg:(v gate)
        ~vs:(v source) ~vb:(v bulk)
    in
    lin.Device_eval.op
  | C.Element.Resistor _ | C.Element.Capacitor _ | C.Element.Inductor _
  | C.Element.Vsource _ | C.Element.Isource _ | C.Element.Vccs _
  | C.Element.Vcvs _ | C.Element.Varactor _ ->
    raise Not_found

let unknowns s = Array.copy s.x

let pp fmt s =
  let m = s.mna in
  Format.fprintf fmt "@[<v>operating point (%d nodes, %d branches)@,"
    (Mna.n_nodes m) (Mna.n_branches m);
  Array.iter
    (fun name ->
      Format.fprintf fmt "  v(%-20s) = %12.6g V@," name (voltage s name))
    (Mna.node_names m);
  List.iter
    (fun e ->
      match e with
      | C.Element.Vsource { name; _ } | C.Element.Vcvs { name; _ }
      | C.Element.Inductor { name; _ } ->
        Format.fprintf fmt "  i(%-20s) = %12.6g A@," name
          (branch_current s name)
      | C.Element.Mosfet { name; mult; _ } ->
        let op = mos_operating_point s name in
        let fm = float_of_int mult in
        Format.fprintf fmt
          "  %-8s %-11s id=%9.4g A gm=%9.4g S gds=%9.4g S gmb=%9.4g S@,"
          name
          (match op.C.Mos_model.region with
           | `Cutoff -> "cutoff"
           | `Triode -> "triode"
           | `Saturation -> "saturation")
          (fm *. op.C.Mos_model.id)
          (fm *. op.C.Mos_model.gm)
          (fm *. op.C.Mos_model.gds)
          (fm *. op.C.Mos_model.gmb)
      | C.Element.Resistor _ | C.Element.Capacitor _ | C.Element.Isource _
      | C.Element.Vccs _ | C.Element.Varactor _ ->
        ())
    (C.Netlist.elements (Mna.netlist m));
  Format.fprintf fmt "@]"
