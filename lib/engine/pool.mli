(** Fixed-size [Domain]-based worker pool for experiment-level
    parallelism.

    The paper's flow is embarrassingly parallel at the sweep level:
    every point of a frequency, corner or sizing sweep re-solves an
    independent merged model.  A pool spawns its worker domains once
    and reuses them across sweeps, so the spawn cost (~ms) is paid per
    process, not per sweep.  Work is distributed by atomic chunk
    claiming (no work stealing — sweep points are coarse enough that a
    shared counter balances them), and results are always gathered in
    input order, so parallel sweeps produce output bit-identical to
    the sequential path.

    Each task runs entirely on one domain and must only share
    immutable data with its siblings; solver scratch state (assembler
    slots, LU factors) is created per task and never crosses domains.

    A pool of width 1 spawns no domains at all: {!run} degrades to a
    plain sequential loop on the calling domain — the exact sequential
    path. *)

type t
(** A pool of worker domains.  The creating domain participates in
    every batch as worker 0, so a pool of width [j] spawns [j - 1]
    domains. *)

(** {1 Lifecycle} *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool of [jobs] workers (default
    {!env_jobs}; clamped to [[1, max_jobs]]). *)

val jobs : t -> int
(** Width of the pool, including the calling domain. *)

val shutdown : t -> unit
(** Join every worker domain.  Idempotent; the pool degrades to the
    sequential path afterwards.  The {!default} pool is shut down
    automatically at exit. *)

(** {1 Running work} *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run pool ~n f] evaluates [f i] for every [i] in [0 .. n-1], in
    parallel over the pool's workers, and returns when all [n] tasks
    have finished.  If any task raises, the first exception observed is
    re-raised on the caller after the batch drains.  A nested [run]
    from inside a task executes sequentially inline (pools do not
    recurse). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs] is [Array.map f xs] evaluated on the pool;
    results are positioned by input index, so the output is identical
    to the sequential map. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f xs] is [List.map f xs] evaluated on the pool, in
    input order. *)

val map_array_result : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Fault-tolerant {!map_array}: each task's exception is captured as
    [Error exn] in its own slot instead of aborting the batch, so a
    single bad point never discards its siblings' results.  Failures
    are counted in {!type-stats.field-tasks_failed}. *)

(** {1 Observability} *)

type stats = {
  jobs : int;  (** pool width, including the calling domain *)
  tasks_run : int;  (** tasks completed since the last reset *)
  tasks_failed : int;
      (** tasks whose exception was captured by {!map_array_result}
          since the last reset *)
  batches : int;  (** {!run} invocations since the last reset *)
  busy_seconds : float array;
      (** per-worker wall time spent inside tasks (index 0 is the
          calling domain) *)
  wall_seconds : float;
      (** wall time spent inside {!run} on the calling domain *)
}

val stats : t -> stats
(** Counters accumulated since {!create} or {!reset_stats}.  Safe to
    call between batches only (not from inside a task). *)

val reset_stats : t -> unit

val cpu_seconds : stats -> float
(** Total worker busy time — the "area under" {!field-busy_seconds}.
    [cpu_seconds s /. s.wall_seconds] is the effective parallelism. *)

val imbalance : stats -> float
(** Max over mean of the per-worker busy times: [1.0] is a perfectly
    balanced pool, [float jobs] a pool where one worker did
    everything.  [0] when the pool has done no work. *)

val pp_stats : Format.formatter -> stats -> unit
(** Render the counters as a one-line-per-worker summary. *)

(** {1 Sizing} *)

val max_jobs : int
(** Hard upper clamp on the pool width (64). *)

val clamp_jobs : int -> int
(** Clamp to [[1, max_jobs]]. *)

val jobs_of_string : ?default:int -> string -> int
(** Parse a job-count string ([SNOISE_JOBS], [--jobs]).  Garbage, zero
    and negative values fall back to [default] (itself defaulting to
    {!recommended_jobs}); values above {!max_jobs} clamp down to it. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to
    [[1, max_jobs]]. *)

val env_jobs : unit -> int
(** Pool width selected by the [SNOISE_JOBS] environment variable via
    {!jobs_of_string}, or {!recommended_jobs} when unset. *)

(** {1 The shared default pool} *)

val default : unit -> t
(** The process-wide pool, created on first use with {!env_jobs}
    workers and shut down at exit.  The sweep combinators
    ([Snoise.Sweep]) run on it unless given an explicit pool. *)

val set_default_jobs : int -> unit
(** Resize the {!default} pool (the [--jobs] flag).  Shuts the current
    default pool down and recreates it lazily at the new width; a
    no-op when the width is unchanged. *)
