module C = Sn_circuit
module N = Sn_numerics
module P = Stamp_plan

let log_src = Logs.Src.create "sn.engine.tran" ~doc:"transient analysis"

module Log = (val Logs.src_log log_src : Logs.LOG)

type method_ = Backward_euler | Trapezoidal

type initial_condition = Operating_point | Uic of (string * float) list

type options = {
  method_ : method_;
  max_newton : int;
  tolerance : float;
  ic : initial_condition;
  record : string list option;
  linear_fast_path : bool;
  max_step_retries : int;
}

let default_options =
  { method_ = Trapezoidal; max_newton = 50; tolerance = 1e-9;
    ic = Operating_point; record = None; linear_fast_path = true;
    max_step_retries = 6 }

exception Step_failed of { time : float; iterations : int }

type dataset = {
  times : float array;
  names : string array;
  data : float array array;
  truncated : Diag.t option;
}

(* Dynamic-element state carried between time points, as flat arrays
   indexed by the plan's per-kind slots ([ci] / [qi] / [li]) — the hot
   loop touches no hashtables. *)
type state = {
  cap_v : float array;  (* capacitor voltage at accepted point *)
  cap_i : float array;  (* capacitor current at accepted point *)
  q_prev : float array;  (* varactor charge *)
  vq_prev : float array;
  iq_prev : float array;
  il_prev : float array;  (* inductor current *)
  vl_prev : float array;
}

let volt_of x slot = if slot < 0 then 0.0 else x.(slot)

let init_state (plan : P.t) x0 =
  let mk n = Array.make (max n 1) 0.0 in
  let st =
    { cap_v = mk plan.P.n_caps; cap_i = mk plan.P.n_caps;
      q_prev = mk plan.P.n_charges; vq_prev = mk plan.P.n_charges;
      iq_prev = mk plan.P.n_charges; il_prev = mk plan.P.n_inds;
      vl_prev = mk plan.P.n_inds }
  in
  Array.iter
    (fun (e : P.elt) ->
      match e with
      | P.Capacitor { ci; i; j; _ } ->
        st.cap_v.(ci) <- volt_of x0 i -. volt_of x0 j
      | P.Varactor { qi; i; j; vmodel; fm } ->
        let v = volt_of x0 i -. volt_of x0 j in
        st.q_prev.(qi) <- C.Varactor_model.charge vmodel v *. fm;
        st.vq_prev.(qi) <- v
      | P.Inductor { li; b; i; j; _ } ->
        st.il_prev.(li) <- x0.(b);
        st.vl_prev.(li) <- volt_of x0 i -. volt_of x0 j
      | P.Resistor _ | P.Vsource _ | P.Isource _ | P.Vccs _ | P.Vcvs _
      | P.Mosfet _ ->
        ())
    plan.P.elts;
  st

let clone_state st =
  { cap_v = Array.copy st.cap_v; cap_i = Array.copy st.cap_i;
    q_prev = Array.copy st.q_prev; vq_prev = Array.copy st.vq_prev;
    iq_prev = Array.copy st.iq_prev; il_prev = Array.copy st.il_prev;
    vl_prev = Array.copy st.vl_prev }

let copy_state ~src ~dst =
  let blit a b = Array.blit a 0 b 0 (Array.length a) in
  blit src.cap_v dst.cap_v;
  blit src.cap_i dst.cap_i;
  blit src.q_prev dst.q_prev;
  blit src.vq_prev dst.vq_prev;
  blit src.iq_prev dst.iq_prev;
  blit src.il_prev dst.il_prev;
  blit src.vl_prev dst.vl_prev

(* Companion coefficients for a linear capacitance. *)
let cap_companion options ~h ~v_prev ~i_prev c =
  match options.method_ with
  | Backward_euler ->
    let geq = c /. h in
    (geq, -.(geq *. v_prev))
  | Trapezoidal ->
    let geq = 2.0 *. c /. h in
    (geq, -.(geq *. v_prev) -. i_prev)

(* Assemble the companion-model MNA system at time [t], candidate [x].
   The walk is over the compiled plan, so the per-iteration cost is
   pure numeric stamping; the assembler reuses its sparsity pattern
   (and, when frozen, skips matrix work entirely). *)
let assemble (plan : P.t) asm rhs options (state : state) ~h ~t x =
  Assembler.start asm;
  Array.fill rhs 0 (Array.length rhs) 0.0;
  let gmin = Dc.default_options.Dc.gmin in
  let stamp i j g = Assembler.add asm i j g in
  let inject i v = if i >= 0 then rhs.(i) <- rhs.(i) +. v in
  let stamp_conductance i j g =
    stamp i i g;
    stamp j j g;
    stamp i j (-.g);
    stamp j i (-.g)
  in
  Array.iter
    (fun (e : P.elt) ->
      match e with
      | P.Resistor { i; j; g } -> stamp_conductance i j g
      | P.Capacitor { ci; i; j; c } ->
        let geq, ieq =
          cap_companion options ~h ~v_prev:state.cap_v.(ci)
            ~i_prev:state.cap_i.(ci) c
        in
        stamp_conductance i j geq;
        inject i (-.ieq);
        inject j ieq
      | P.Varactor { qi; i; j; vmodel; fm } ->
        let v = volt_of x i -. volt_of x j in
        let cv = C.Varactor_model.capacitance vmodel v *. fm in
        let qv = C.Varactor_model.charge vmodel v *. fm in
        let geq, ieq =
          match options.method_ with
          | Backward_euler ->
            let geq = cv /. h in
            (geq, ((qv -. state.q_prev.(qi)) /. h) -. (geq *. v))
          | Trapezoidal ->
            let geq = 2.0 *. cv /. h in
            ( geq,
              (2.0 *. (qv -. state.q_prev.(qi)) /. h)
              -. state.iq_prev.(qi) -. (geq *. v) )
        in
        stamp_conductance i j geq;
        inject i (-.ieq);
        inject j ieq
      | P.Inductor { li; b; i; j; henries } ->
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp i b 1.0;
        stamp j b (-1.0);
        (match options.method_ with
         | Backward_euler ->
           let z = henries /. h in
           stamp b b (-.z);
           rhs.(b) <- rhs.(b) -. (z *. state.il_prev.(li))
         | Trapezoidal ->
           let z = 2.0 *. henries /. h in
           stamp b b (-.z);
           rhs.(b) <- rhs.(b) -. (z *. state.il_prev.(li))
                      -. state.vl_prev.(li))
      | P.Vsource { b; i; j; wave; _ } ->
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp i b 1.0;
        stamp j b (-1.0);
        rhs.(b) <- rhs.(b) +. C.Waveform.value wave t
      | P.Isource { i; j; wave; _ } ->
        let v = C.Waveform.value wave t in
        inject i (-.v);
        inject j v
      | P.Vccs { i; j; k; l; gm } ->
        stamp i k gm;
        stamp i l (-.gm);
        stamp j k (-.gm);
        stamp j l gm
      | P.Vcvs { b; i; j; k; l; gain } ->
        stamp b i 1.0;
        stamp b j (-1.0);
        stamp b k (-.gain);
        stamp b l gain;
        stamp i b 1.0;
        stamp j b (-1.0)
      | P.Mosfet m ->
        let d = m.P.md and g = m.P.mg and s = m.P.ms and b = m.P.mbk in
        let lin =
          Device_eval.mos ~model:m.P.mmodel ~w:m.P.mw ~l:m.P.ml
            ~mult:m.P.mmult ~vd:(volt_of x d) ~vg:(volt_of x g)
            ~vs:(volt_of x s) ~vb:(volt_of x b)
        in
        let linear_part =
          (lin.Device_eval.g_dd *. volt_of x d)
          +. (lin.Device_eval.g_dg *. volt_of x g)
          +. (lin.Device_eval.g_ds *. volt_of x s)
          +. (lin.Device_eval.g_db *. volt_of x b)
        in
        let ieq = lin.Device_eval.id -. linear_part in
        stamp d d lin.Device_eval.g_dd;
        stamp d g lin.Device_eval.g_dg;
        stamp d s lin.Device_eval.g_ds;
        stamp d b lin.Device_eval.g_db;
        stamp s d (-.lin.Device_eval.g_dd);
        stamp s g (-.lin.Device_eval.g_dg);
        stamp s s (-.lin.Device_eval.g_ds);
        stamp s b (-.lin.Device_eval.g_db);
        inject d (-.ieq);
        inject s ieq)
    plan.P.elts;
  for i = 0 to plan.P.n_nodes - 1 do
    Assembler.add asm i i gmin
  done

(* Solve one time point.  A linear plan on the fast path needs no
   Newton loop: the matrix does not depend on [x], so a single assembly
   (a no-op once the assembler is frozen) and one solve suffice. *)
let solve_point ?(fault_scope = 0) plan asm rhs options state ~h ~t x_guess =
  (* fault-injection site: pretend this time-point solve stalled *)
  if Fault.fire ~scope_index:fault_scope Tran_solve then
    raise (Step_failed { time = t; iterations = 0 });
  if P.linear plan && options.linear_fast_path then begin
    assemble plan asm rhs options state ~h ~t x_guess;
    try Assembler.solve asm rhs
    with N.Splu.Singular _ -> raise (Step_failed { time = t; iterations = 0 })
  end
  else begin
    let dim = P.dim plan in
    let x = Array.copy x_guess in
    let rec newton k =
      if k >= options.max_newton then
        raise (Step_failed { time = t; iterations = k });
      assemble plan asm rhs options state ~h ~t x;
      let x_new =
        try Assembler.solve asm rhs
        with N.Splu.Singular _ ->
          raise (Step_failed { time = t; iterations = k })
      in
      let max_delta = ref 0.0 in
      for i = 0 to dim - 1 do
        max_delta := Float.max !max_delta (Float.abs (x_new.(i) -. x.(i)));
        x.(i) <- x_new.(i)
      done;
      if !max_delta < options.tolerance then x else newton (k + 1)
    in
    newton 0
  end

(* After accepting a step, refresh the dynamic-element states. *)
let update_state (plan : P.t) options (state : state) ~h x =
  Array.iter
    (fun (e : P.elt) ->
      match e with
      | P.Capacitor { ci; i; j; c } ->
        let v = volt_of x i -. volt_of x j in
        let geq, ieq =
          cap_companion options ~h ~v_prev:state.cap_v.(ci)
            ~i_prev:state.cap_i.(ci) c
        in
        state.cap_i.(ci) <- (geq *. v) +. ieq;
        state.cap_v.(ci) <- v
      | P.Varactor { qi; i; j; vmodel; fm } ->
        let v = volt_of x i -. volt_of x j in
        let q = C.Varactor_model.charge vmodel v *. fm in
        let i_new =
          match options.method_ with
          | Backward_euler -> (q -. state.q_prev.(qi)) /. h
          | Trapezoidal ->
            (2.0 *. (q -. state.q_prev.(qi)) /. h) -. state.iq_prev.(qi)
        in
        state.q_prev.(qi) <- q;
        state.vq_prev.(qi) <- v;
        state.iq_prev.(qi) <- i_new
      | P.Inductor { li; b; i; j; _ } ->
        state.il_prev.(li) <- x.(b);
        state.vl_prev.(li) <- volt_of x i -. volt_of x j
      | P.Resistor _ | P.Vsource _ | P.Isource _ | P.Vccs _ | P.Vcvs _
      | P.Mosfet _ ->
        ())
    plan.P.elts

let initial_unknowns mna plan options =
  match options.ic with
  | Operating_point -> Dc.unknowns (Dc.solve_plan plan)
  | Uic pairs ->
    let x = Array.make (Mna.dim mna) 0.0 in
    List.iter
      (fun (node, v) ->
        let s = Mna.node_slot mna node in
        if s >= 0 then x.(s) <- v)
      pairs;
    x

let recorded_nodes mna options =
  match options.record with
  | Some nodes -> Array.of_list nodes
  | None -> Mna.node_names mna

let simulate ?(options = default_options) ~tstop ~dt netlist =
  if tstop <= 0.0 || dt <= 0.0 then
    invalid_arg "Tran.simulate: tstop and dt must be > 0";
  let mna = Mna.build netlist in
  let plan = P.build mna in
  let x0 = initial_unknowns mna plan options in
  let recorded = recorded_nodes mna options in
  (* resolve recorded slots once, outside the time loop *)
  let rec_slots = Array.map (fun n -> Mna.node_slot mna n) recorded in
  let n_steps = int_of_float (Float.round (tstop /. dt)) in
  let times = Array.init (n_steps + 1) (fun k -> float_of_int k *. dt) in
  let data = Array.map (fun _ -> Array.make (n_steps + 1) 0.0) recorded in
  let record k x =
    Array.iteri (fun r s -> data.(r).(k) <- volt_of x s) rec_slots
  in
  let state = init_state plan x0 in
  let asm = Assembler.create (P.dim plan) in
  let rhs = Array.make (P.dim plan) 0.0 in
  record 0 x0;
  let x = ref x0 in
  let scope = ref 0 in
  let sp state ~h ~t x =
    incr scope;
    (* per-step cancellation tick: a deadline-armed transient stops at
       the next solve boundary *)
    N.Cancel.tick ();
    solve_point ~fault_scope:!scope plan asm rhs options state ~h ~t x
  in
  (* Advance one output interval [times.(k-1), times.(k)].  The plain
     path is one full-[dt] solve; on [Step_failed] the whole interval
     is re-integrated from the accepted state with 2^r substeps of
     [dt / 2^r], doubling [r] up to [max_step_retries].  [Error]
     carries the smallest step tried and the retry count. *)
  let advance k =
    let t_prev = times.(k - 1) in
    match
      let x_next = sp state ~h:dt ~t:times.(k) !x in
      (* fixed step + linear circuit: after the first point the matrix
         can never change again, so pin the factorization — every
         remaining step is two triangular solves *)
      if P.linear plan && options.linear_fast_path
         && not (Assembler.frozen asm)
      then Assembler.freeze asm;
      update_state plan options state ~h:dt x_next;
      x_next
    with
    | x_next -> Ok x_next
    | exception Step_failed _ ->
      (* substepping changes the matrix values, so the pinned
         factorization (if any) must be released first *)
      Assembler.unfreeze asm;
      let rec retry r =
        if r > options.max_step_retries then
          Error (dt /. float_of_int (1 lsl options.max_step_retries),
                 options.max_step_retries)
        else begin
          let sub = 1 lsl r in
          let h = dt /. float_of_int sub in
          Log.debug (fun m ->
              m "step at t = %g s failed; retrying with %d substeps of %g s"
                times.(k) sub h);
          let st = clone_state state in
          match
            let xr = ref !x in
            for s = 1 to sub do
              let t_s = t_prev +. (float_of_int s *. h) in
              let xn = sp st ~h ~t:t_s !xr in
              update_state plan options st ~h xn;
              xr := xn
            done;
            !xr
          with
          | x_next ->
            copy_state ~src:st ~dst:state;
            Ok x_next
          | exception Step_failed _ -> retry (r + 1)
        end
      in
      retry 1
  in
  let rec march k =
    if k > n_steps then { times; names = recorded; data; truncated = None }
    else
      match advance k with
      | Ok x_next ->
        record k x_next;
        x := x_next;
        march (k + 1)
      | Error (dt_final, retries) ->
        let diag =
          Diag.Step_truncated
            { loc = Diag.loc "tran" ~time:times.(k); dt_final; retries;
              completed_points = k }
        in
        Log.warn (fun m -> m "%a" Diag.pp diag);
        { times = Array.sub times 0 k;
          names = recorded;
          data = Array.map (fun w -> Array.sub w 0 k) data;
          truncated = Some diag }
  in
  march 1

let node d name =
  let rec find k =
    if k >= Array.length d.names then raise Not_found
    else if String.equal d.names.(k) name then d.data.(k)
    else find (k + 1)
  in
  find 0

let samples_after d ~t0 name =
  let w = node d name in
  let start = ref 0 in
  Array.iteri (fun k t -> if t < t0 then start := k + 1) d.times;
  Array.sub w !start (Array.length w - !start)

(* ------------------------------------------------------------------ *)
(* adaptive stepping: step-doubling local truncation error control *)

let simulate_adaptive ?(options = default_options) ?dt_min ?dt_max
    ?(lte_tol = 1e-6) ~tstop ~dt netlist =
  if tstop <= 0.0 || dt <= 0.0 then
    invalid_arg "Tran.simulate_adaptive: tstop and dt must be > 0";
  let dt_min = match dt_min with Some v -> v | None -> dt /. 1024.0 in
  let dt_max = match dt_max with Some v -> v | None -> 16.0 *. dt in
  let mna = Mna.build netlist in
  let plan = P.build mna in
  let x0 = initial_unknowns mna plan options in
  let recorded = recorded_nodes mna options in
  let rec_slots = Array.map (fun n -> Mna.node_slot mna n) recorded in
  let times = ref [ 0.0 ] in
  let data = Array.map (fun _ -> ref []) recorded in
  let record x =
    Array.iteri (fun r s -> data.(r) := volt_of x s :: !(data.(r))) rec_slots
  in
  record x0;
  (* the step size changes, so the matrix values change per trial — but
     the sparsity pattern doesn't: one assembler, refactored in place,
     never frozen *)
  let asm = Assembler.create (P.dim plan) in
  let rhs = Array.make (P.dim plan) 0.0 in
  let state = ref (init_state plan x0) in
  let x = ref x0 in
  let t = ref 0.0 and h = ref dt in
  let scope = ref 0 in
  let sp state ~h ~t x =
    incr scope;
    (* per-step cancellation tick: a deadline-armed transient stops at
       the next solve boundary *)
    N.Cancel.tick ();
    solve_point ~fault_scope:!scope plan asm rhs options state ~h ~t x
  in
  let n_accepted = ref 1 in
  let rejects = ref 0 in
  let truncated = ref None in
  while !truncated = None && !t < tstop -. 1e-18 do
    let h_eff = Float.min !h (tstop -. !t) in
    (* A Newton stall anywhere in the trial is handled like an LTE
       rejection: halve the step and try again from the accepted
       state (the trials only touch cloned states). *)
    let trial =
      try
        (* one full step *)
        let st_full = clone_state !state in
        let x_full = sp st_full ~h:h_eff ~t:(!t +. h_eff) !x in
        (* two half steps *)
        let st_half = clone_state !state in
        let h2 = h_eff /. 2.0 in
        let x_mid = sp st_half ~h:h2 ~t:(!t +. h2) !x in
        update_state plan options st_half ~h:h2 x_mid;
        let x_end = sp st_half ~h:h2 ~t:(!t +. h_eff) x_mid in
        let err = ref 0.0 in
        for i = 0 to P.n_nodes plan - 1 do
          err := Float.max !err (Float.abs (x_full.(i) -. x_end.(i)))
        done;
        Some (st_half, h2, x_end, !err)
      with Step_failed _ -> None
    in
    match trial with
    | Some (st_half, h2, x_end, err) when err <= lte_tol ->
      (* accept the more accurate half-step solution *)
      update_state plan options st_half ~h:h2 x_end;
      state := st_half;
      x := x_end;
      t := !t +. h_eff;
      times := !t :: !times;
      record x_end;
      incr n_accepted;
      rejects := 0;
      if err < lte_tol /. 4.0 then h := Float.min (2.0 *. h_eff) dt_max
    | Some _ | None ->
      if h_eff <= dt_min *. 1.000001 then begin
        let diag =
          Diag.Step_truncated
            { loc = Diag.loc "tran" ~time:(!t +. h_eff); dt_final = h_eff;
              retries = !rejects; completed_points = !n_accepted }
        in
        Log.warn (fun m -> m "%a" Diag.pp diag);
        truncated := Some diag
      end
      else begin
        incr rejects;
        h := Float.max (h_eff /. 2.0) dt_min
      end
  done;
  {
    times = Array.of_list (List.rev !times);
    names = recorded;
    data = Array.map (fun cell -> Array.of_list (List.rev !cell)) data;
    truncated = !truncated;
  }

let to_csv d =
  let b = Buffer.create 4096 in
  Buffer.add_string b "time";
  Array.iter
    (fun n ->
      Buffer.add_char b ',';
      Buffer.add_string b n)
    d.names;
  Buffer.add_char b '\n';
  Array.iteri
    (fun k t ->
      Buffer.add_string b (Printf.sprintf "%.12g" t);
      Array.iter
        (fun w -> Buffer.add_string b (Printf.sprintf ",%.9g" w.(k)))
        d.data;
      Buffer.add_char b '\n')
    d.times;
  Buffer.contents b
