module C = Sn_circuit

exception Unknown_node of { node : string; candidates : string list }
exception Unknown_branch of { name : string; candidates : string list }

let () =
  Printexc.register_printer (function
    | Unknown_node { node; candidates } ->
      Some
        (Printf.sprintf "Mna.Unknown_node(%S, did you mean: %s)" node
           (String.concat ", " candidates))
    | Unknown_branch { name; candidates } ->
      Some
        (Printf.sprintf "Mna.Unknown_branch(%S, voltage-defined elements: %s)"
           name
           (String.concat ", " candidates))
    | _ -> None)

(* Edit distance for "did you mean" suggestions on a missing node or
   branch.  Lookup failures are cold paths, so the O(|a| |b|) dynamic
   program per candidate is fine. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let row = Array.init (lb + 1) Fun.id in
  for i = 1 to la do
    let prev_diag = ref row.(0) in
    row.(0) <- i;
    for j = 1 to lb do
      let d = !prev_diag in
      prev_diag := row.(j);
      row.(j) <-
        min
          (min (row.(j) + 1) (row.(j - 1) + 1))
          (d + if a.[i - 1] = b.[j - 1] then 0 else 1)
    done
  done;
  row.(lb)

let closest ?(limit = 5) name candidates =
  candidates
  |> List.map (fun c -> (edit_distance name c, c))
  |> List.sort compare
  |> List.filteri (fun i _ -> i < limit)
  |> List.map snd

type t = {
  netlist : C.Netlist.t;
  node_table : (string, int) Hashtbl.t;
  branch_table : (string, int) Hashtbl.t;
  node_names : string array;
  branch_names : string array;  (* index i names branch slot n_nodes + i *)
  n_nodes : int;
  n_branches : int;
}

let needs_branch = function
  | C.Element.Vsource _ | C.Element.Vcvs _ | C.Element.Inductor _ -> true
  | C.Element.Resistor _ | C.Element.Capacitor _ | C.Element.Isource _
  | C.Element.Vccs _ | C.Element.Mosfet _ | C.Element.Varactor _ ->
    false

let build netlist =
  let nodes = C.Netlist.nodes netlist in
  let node_table = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.replace node_table n i) nodes;
  let n_nodes = List.length nodes in
  let branch_table = Hashtbl.create 16 in
  let n_branches = ref 0 in
  let branch_names = ref [] in
  List.iter
    (fun e ->
      if needs_branch e then begin
        Hashtbl.replace branch_table (C.Element.name e) (n_nodes + !n_branches);
        branch_names := C.Element.name e :: !branch_names;
        incr n_branches
      end)
    (C.Netlist.elements netlist);
  {
    netlist;
    node_table;
    branch_table;
    node_names = Array.of_list nodes;
    branch_names = Array.of_list (List.rev !branch_names);
    n_nodes;
    n_branches = !n_branches;
  }

let netlist m = m.netlist
let n_nodes m = m.n_nodes
let n_branches m = m.n_branches
let dim m = m.n_nodes + m.n_branches

let node_slot m name =
  if C.Element.is_ground name then -1
  else
    match Hashtbl.find_opt m.node_table name with
    | Some i -> i
    | None ->
      raise
        (Unknown_node
           { node = name;
             candidates = closest name (Array.to_list m.node_names) })

let branch_slot m name =
  match Hashtbl.find_opt m.branch_table name with
  | Some i -> i
  | None ->
    raise
      (Unknown_branch
         { name;
           candidates =
             closest name
               (Hashtbl.fold (fun k _ acc -> k :: acc) m.branch_table []
               |> List.sort String.compare) })

let node_names m = m.node_names
let branch_names m = m.branch_names

let slot_name m i =
  if i >= 0 && i < m.n_nodes then Some m.node_names.(i)
  else if i >= m.n_nodes && i < m.n_nodes + m.n_branches then
    Some m.branch_names.(i - m.n_nodes)
  else None
