(* A netlist compiled once into slot-resolved stamps.

   The DC, AC and transient engines all used to walk the element list
   and re-resolve every node and branch name through hashtables on
   every assembly — every Newton iteration of every timestep.  The
   stamp plan does that symbolic work exactly once per netlist: each
   element becomes a flat record of precomputed unknown indices
   (ground = -1), each dynamic element gets an index into the
   transient state arrays, and the per-MOSFET linear capacitances are
   expanded into ordinary capacitor stamps.  Assemblies then run over
   an array of int-indexed records with no string hashing and no list
   traversal. *)

module C = Sn_circuit

(* Conductance floor stamped on every node diagonal by the small-signal
   analyses (both the dense reference and the sparse frequency-domain
   paths) so an isolated subnet never makes the system singular.  Small
   enough (1 fS) to be invisible next to any real admittance; the
   Newton paths use the larger, user-settable [Dc.options.gmin]
   instead, which also serves their convergence continuation. *)
let node_gmin = 1e-15

type mosfet = {
  md : int;
  mg : int;
  ms : int;
  mbk : int;
  mmodel : C.Mos_model.t;
  mw : float;
  ml : float;
  mmult : int;
}

type elt =
  | Resistor of { i : int; j : int; g : float }
  | Capacitor of { ci : int; i : int; j : int; c : float }
      (* [ci] indexes the transient capacitor-state arrays; covers both
         netlist capacitors and the four linear capacitances of each
         MOSFET *)
  | Varactor of {
      qi : int;
      i : int;
      j : int;
      vmodel : C.Varactor_model.t;
      fm : float;
    }
  | Inductor of { li : int; b : int; i : int; j : int; henries : float }
  | Vsource of { b : int; i : int; j : int; wave : C.Waveform.t; ac_mag : float }
  | Isource of { i : int; j : int; wave : C.Waveform.t; ac_mag : float }
  | Vccs of { i : int; j : int; k : int; l : int; gm : float }
  | Vcvs of { b : int; i : int; j : int; k : int; l : int; gain : float }
  | Mosfet of mosfet

type t = {
  mna : Mna.t;
  dim : int;
  n_nodes : int;
  elts : elt array;
  n_caps : int;
  n_charges : int;
  n_inds : int;
  linear : bool;  (** no MOSFET, no varactor: the MNA matrix is
                      state-independent *)
}

let mna p = p.mna
let dim p = p.dim
let n_nodes p = p.n_nodes
let linear p = p.linear

let build mna =
  let slot = Mna.node_slot mna in
  let bslot = Mna.branch_slot mna in
  let n_caps = ref 0 and n_charges = ref 0 and n_inds = ref 0 in
  let linear = ref true in
  let out = ref [] in
  let emit e = out := e :: !out in
  let fresh r =
    let v = !r in
    incr r;
    v
  in
  List.iter
    (fun e ->
      match e with
      | C.Element.Resistor { n1; n2; ohms; _ } ->
        emit (Resistor { i = slot n1; j = slot n2; g = 1.0 /. ohms })
      | C.Element.Capacitor { n1; n2; farads; _ } ->
        emit
          (Capacitor { ci = fresh n_caps; i = slot n1; j = slot n2; c = farads })
      | C.Element.Varactor { n1; n2; model; mult; _ } ->
        linear := false;
        emit
          (Varactor
             { qi = fresh n_charges; i = slot n1; j = slot n2; vmodel = model;
               fm = float_of_int mult })
      | C.Element.Inductor { name; n1; n2; henries } ->
        emit
          (Inductor
             { li = fresh n_inds; b = bslot name; i = slot n1; j = slot n2;
               henries })
      | C.Element.Vsource { name; np; nn; wave; ac_mag } ->
        emit (Vsource { b = bslot name; i = slot np; j = slot nn; wave; ac_mag })
      | C.Element.Isource { np; nn; wave; ac_mag; _ } ->
        emit (Isource { i = slot np; j = slot nn; wave; ac_mag })
      | C.Element.Vccs { np; nn; cp; cn; gm; _ } ->
        emit
          (Vccs { i = slot np; j = slot nn; k = slot cp; l = slot cn; gm })
      | C.Element.Vcvs { name; np; nn; cp; cn; gain } ->
        emit
          (Vcvs
             { b = bslot name; i = slot np; j = slot nn; k = slot cp;
               l = slot cn; gain })
      | C.Element.Mosfet { drain; gate; source; bulk; model; w; l; mult; _ } ->
        linear := false;
        let d = slot drain and g = slot gate and s = slot source
        and bk = slot bulk in
        emit
          (Mosfet
             { md = d; mg = g; ms = s; mbk = bk; mmodel = model; mw = w;
               ml = l; mmult = mult });
        (* the four linear device capacitances, scaled by multiplicity *)
        let fm = float_of_int mult in
        let cap a b c =
          emit (Capacitor { ci = fresh n_caps; i = a; j = b; c = c *. fm })
        in
        cap g s model.C.Mos_model.cgs;
        cap g d model.C.Mos_model.cgd;
        cap d bk model.C.Mos_model.cdb;
        cap s bk model.C.Mos_model.csb)
    (C.Netlist.elements (Mna.netlist mna));
  {
    mna;
    dim = Mna.dim mna;
    n_nodes = Mna.n_nodes mna;
    elts = Array.of_list (List.rev !out);
    n_caps = !n_caps;
    n_charges = !n_charges;
    n_inds = !n_inds;
    linear = !linear;
  }

(* ------------------------------------------------------------------ *)
(* Structural zero-nonzero pattern export, consumed by the static
   analyzer (Sn_analysis) for matching-based singularity prediction.

   The pattern must reproduce exactly which matrix positions the
   assembly paths can ever fill: the DC shape follows Dc.assemble_plan
   (dynamic elements open, gmin on every node diagonal), the AC shape
   follows Ac_plan.compile (capacitive susceptances present, jwL on
   the inductor branch diagonal, same gmin floor).  Device
   small-signal parameters are treated as symbolic nonzeros — a cutoff
   MOSFET's conductances stay in the pattern, matching the unit-weight
   pattern compilation of the numeric engines.

   Cancellation is resolved per element with signed unit weights: a
   stamp group whose coefficients sum to zero at one position (a
   self-looped element's +1/-1 incidence pair, a resistor with both
   terminals on one node) contributes nothing there, exactly as the
   numeric stamps would.  Sums across different elements never cancel
   structurally, so positions are unioned across elements. *)

type pattern = {
  pat_dim : int;  (** unknown count: [dim] of the plan *)
  pat_nodes : int;  (** node-voltage unknowns come first *)
  pat_adj : int array array;
      (** row [i] holds the strictly increasing column indices of the
          structurally nonzero entries of matrix row [i] *)
}

let structural_pattern ~with_dynamic p =
  let global : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let local : (int * int, float ref) Hashtbl.t = Hashtbl.create 16 in
  let stamp i j v =
    if i >= 0 && j >= 0 then
      match Hashtbl.find_opt local (i, j) with
      | Some r -> r := !r +. v
      | None -> Hashtbl.add local (i, j) (ref v)
  in
  let adm i j =
    stamp i i 1.0;
    stamp j j 1.0;
    stamp i j (-1.0);
    stamp j i (-1.0)
  in
  let branch_pair b i j =
    stamp b i 1.0;
    stamp b j (-1.0);
    stamp i b 1.0;
    stamp j b (-1.0)
  in
  let flush () =
    Hashtbl.iter
      (fun pos r -> if !r <> 0.0 then Hashtbl.replace global pos ())
      local;
    Hashtbl.reset local
  in
  Array.iter
    (fun e ->
      (match e with
       | Resistor { i; j; _ } -> adm i j
       | Capacitor { i; j; _ } | Varactor { i; j; _ } ->
         if with_dynamic then adm i j
       | Inductor { b; i; j; _ } ->
         branch_pair b i j;
         if with_dynamic then stamp b b 1.0
       | Vsource { b; i; j; _ } -> branch_pair b i j
       | Isource _ -> ()
       | Vccs { i; j; k; l; _ } ->
         stamp i k 1.0;
         stamp i l (-1.0);
         stamp j k (-1.0);
         stamp j l 1.0
       | Vcvs { b; i; j; k; l; _ } ->
         branch_pair b i j;
         stamp b k (-1.0);
         stamp b l 1.0
       | Mosfet { md; mg; ms; mbk; _ } ->
         (* symbolic conductances g_d{d,g,s,b}: each appears once with
            + on the drain row and once with - on the source row, so
            signed units cancel exactly when (and only when) the
            numeric stamps would *)
         List.iter
           (fun col ->
             stamp md col 1.0;
             stamp ms col (-1.0))
           [ md; mg; ms; mbk ]);
      flush ())
    p.elts;
  (* the gmin floor both assembly paths put on every node diagonal *)
  for i = 0 to p.n_nodes - 1 do
    Hashtbl.replace global (i, i) ()
  done;
  let rows = Array.make p.dim [] in
  Hashtbl.iter (fun (i, j) () -> rows.(i) <- j :: rows.(i)) global;
  {
    pat_dim = p.dim;
    pat_nodes = p.n_nodes;
    pat_adj =
      Array.map
        (fun cols -> Array.of_list (List.sort_uniq compare cols))
        rows;
  }

let dc_pattern p = structural_pattern ~with_dynamic:false p
let ac_pattern p = structural_pattern ~with_dynamic:true p

(* ------------------------------------------------------------------ *)
(* Magnitude-annotated pattern export, consumed by the numerical
   pre-flight pass of Sn_analysis (conditioning span and stiffness
   spectrum).  Where [structural_pattern] records only which positions
   the assemblies can fill, this records *how big* the fills are, per
   node row, with the contributing element's name attached so the
   analyzer can point at the card that dominates a span.

   Weights mirror the numeric stamps of the DC/AC assembly paths:

   - a resistor adds its conductance magnitude |1/R| to both terminal
     node rows; a VCCS adds |gm| to both output rows;
   - a capacitor (and each expanded MOSFET device capacitance) adds
     its capacitance magnitude — the susceptance scale of the AC path
     and the companion-conductance scale [c/dt] of the transient path;
   - a varactor contributes its worst-case (maximal) capacitance;
   - voltage-defined branches (V, E, L) put unit incidence entries in
     their terminal node rows, so they contribute weight 1.0 exactly
     as assembled;
   - MOSFET channel conductances are bias-dependent and carry no
     static magnitude: they are left out, and the profile says so via
     [prof_nonlinear] so the analyzer can soften its claims;
   - stamps that cancel (both terminals on one node, exactly as the
     signed-unit flush of [structural_pattern]) contribute nothing.

   The gmin floor of every assembly path is exported too, so the
   analyzer reasons about the same matrix the engine factorizes. *)

type node_weight = {
  nw_elt : string;  (** contributing element, by netlist name *)
  nw_g : float;  (** DC conductance / unit-incidence magnitude (0 if none) *)
  nw_c : float;  (** capacitance magnitude (0 for resistive stamps) *)
}

type numeric_profile = {
  prof_nodes : int;  (** node-voltage unknown count *)
  prof_names : string array;  (** node name per slot, [prof_nodes] long *)
  prof_weights : node_weight list array;
      (** index = node slot; every magnitude-carrying stamp that lands
          in that node's row *)
  prof_gmin : float;  (** the {!node_gmin} diagonal floor *)
  prof_nonlinear : bool;
      (** the deck has MOSFETs / varactors whose conductances the
          static profile cannot bound *)
}

let numeric_profile p =
  let slot = Mna.node_slot p.mna in
  let weights = Array.make p.n_nodes [] in
  let add s w = if s >= 0 then weights.(s) <- w :: weights.(s) in
  let pair name a b ~g ~c =
    (* signed-unit cancellation: a stamp with both terminals on one
       node (or both grounded) fills nothing *)
    if a <> b then begin
      add a { nw_elt = name; nw_g = g; nw_c = c };
      add b { nw_elt = name; nw_g = g; nw_c = c }
    end
  in
  let nonlinear = ref false in
  List.iter
    (fun e ->
      match e with
      | C.Element.Resistor { name; n1; n2; ohms } ->
        pair name (slot n1) (slot n2) ~g:(Float.abs (1.0 /. ohms)) ~c:0.0
      | C.Element.Capacitor { name; n1; n2; farads } ->
        pair name (slot n1) (slot n2) ~g:0.0 ~c:(Float.abs farads)
      | C.Element.Varactor { name; n1; n2; model; mult } ->
        nonlinear := true;
        let c =
          Float.max model.C.Varactor_model.cmin model.C.Varactor_model.cmax
          *. float_of_int mult
        in
        pair name (slot n1) (slot n2) ~g:0.0 ~c
      | C.Element.Inductor { name; n1; n2; _ } ->
        (* DC short through a branch: unit incidence in both node rows *)
        pair name (slot n1) (slot n2) ~g:1.0 ~c:0.0
      | C.Element.Vsource { name; np; nn; _ }
      | C.Element.Vcvs { name; np; nn; _ } ->
        pair name (slot np) (slot nn) ~g:1.0 ~c:0.0
      | C.Element.Isource _ -> ()
      | C.Element.Vccs { name; np; nn; cp; cn; gm } ->
        if slot cp <> slot cn then
          pair name (slot np) (slot nn) ~g:(Float.abs gm) ~c:0.0
      | C.Element.Mosfet { name; drain; gate; source; bulk; model; mult; _ }
        ->
        nonlinear := true;
        (* channel conductances are bias-dependent — only the four
           linear device capacitances carry a static magnitude *)
        let fm = float_of_int mult in
        let cap a b c =
          pair name (slot a) (slot b) ~g:0.0 ~c:(Float.abs (c *. fm))
        in
        cap gate source model.C.Mos_model.cgs;
        cap gate drain model.C.Mos_model.cgd;
        cap drain bulk model.C.Mos_model.cdb;
        cap source bulk model.C.Mos_model.csb)
    (C.Netlist.elements (Mna.netlist p.mna));
  {
    prof_nodes = p.n_nodes;
    prof_names = Mna.node_names p.mna;
    prof_weights = weights;
    prof_gmin = node_gmin;
    prof_nonlinear = !nonlinear;
  }
