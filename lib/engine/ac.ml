module C = Sn_circuit
module N = Sn_numerics

type solution = {
  mna : Mna.t;
  freq : float;
  x : Complex.t array;
}

let cx re im = { Complex.re; im }
let czero = Complex.zero

(* Dense reference assembly of the complex admittance system at angular
   frequency w.  This is the slow-but-obvious formulation the sparse
   frequency-domain engine ({!Ac_plan}) is validated against: it
   re-stamps the full matrix and re-evaluates every device's
   small-signal parameters at each call.  The production solve path
   below goes through [Ac_plan] instead.  [dcx] is the raw DC unknown
   vector; MOSFET and varactor small-signal parameters are evaluated at
   those bias voltages. *)
let assemble_plan (plan : Stamp_plan.t) dcx ~omega =
  let dim = Stamp_plan.dim plan in
  let a = Array.make_matrix dim dim czero in
  let rhs = Array.make dim czero in
  let volt s = if s < 0 then 0.0 else dcx.(s) in
  let stamp i j (y : Complex.t) =
    if i >= 0 && j >= 0 then a.(i).(j) <- Complex.add a.(i).(j) y
  in
  let inject i (v : Complex.t) =
    if i >= 0 then rhs.(i) <- Complex.add rhs.(i) v
  in
  let stamp_admittance i j y =
    stamp i i y;
    stamp j j y;
    stamp i j (Complex.neg y);
    stamp j i (Complex.neg y)
  in
  let one = cx 1.0 0.0 in
  Array.iter
    (fun (e : Stamp_plan.elt) ->
      match e with
      | Stamp_plan.Resistor { i; j; g } -> stamp_admittance i j (cx g 0.0)
      | Stamp_plan.Capacitor { i; j; c; _ } ->
        stamp_admittance i j (cx 0.0 (omega *. c))
      | Stamp_plan.Varactor { i; j; vmodel; fm; _ } ->
        let c =
          C.Varactor_model.capacitance vmodel (volt i -. volt j) *. fm
        in
        stamp_admittance i j (cx 0.0 (omega *. c))
      | Stamp_plan.Inductor { b; i; j; henries; _ } ->
        stamp b i one;
        stamp b j (Complex.neg one);
        stamp i b one;
        stamp j b (Complex.neg one);
        stamp b b (cx 0.0 (-.(omega *. henries)))
      | Stamp_plan.Vsource { b; i; j; ac_mag; _ } ->
        stamp b i one;
        stamp b j (Complex.neg one);
        stamp i b one;
        stamp j b (Complex.neg one);
        rhs.(b) <- Complex.add rhs.(b) (cx ac_mag 0.0)
      | Stamp_plan.Isource { i; j; ac_mag; _ } ->
        inject i (cx (-.ac_mag) 0.0);
        inject j (cx ac_mag 0.0)
      | Stamp_plan.Vccs { i; j; k; l; gm } ->
        let y = cx gm 0.0 in
        stamp i k y;
        stamp i l (Complex.neg y);
        stamp j k (Complex.neg y);
        stamp j l y
      | Stamp_plan.Vcvs { b; i; j; k; l; gain } ->
        stamp b i one;
        stamp b j (Complex.neg one);
        stamp b k (cx (-.gain) 0.0);
        stamp b l (cx gain 0.0);
        stamp i b one;
        stamp j b (Complex.neg one)
      | Stamp_plan.Mosfet m ->
        let d = m.Stamp_plan.md and g = m.Stamp_plan.mg
        and s = m.Stamp_plan.ms and b = m.Stamp_plan.mbk in
        let lin =
          Device_eval.mos ~model:m.Stamp_plan.mmodel ~w:m.Stamp_plan.mw
            ~l:m.Stamp_plan.ml ~mult:m.Stamp_plan.mmult ~vd:(volt d)
            ~vg:(volt g) ~vs:(volt s) ~vb:(volt b)
        in
        (* transconductances: id = g_dg vg + g_dd vd + g_ds vs + g_db vb;
           the current leaves the drain node and enters the source node.
           The device capacitances were expanded into Capacitor stamps
           by the plan. *)
        List.iter
          (fun (coeff, node) ->
            stamp d node (cx coeff 0.0);
            stamp s node (cx (-.coeff) 0.0))
          [ (lin.Device_eval.g_dd, d); (lin.Device_eval.g_dg, g);
            (lin.Device_eval.g_ds, s); (lin.Device_eval.g_db, b) ])
    plan.Stamp_plan.elts;
  (* a touch of gmin keeps isolated nodes from making the system singular *)
  for i = 0 to Stamp_plan.n_nodes plan - 1 do
    a.(i).(i) <- Complex.add a.(i).(i) (cx Stamp_plan.node_gmin 0.0)
  done;
  (a, rhs)

let system_of_plan plan dc ~omega = assemble_plan plan (Dc.unknowns dc) ~omega
let system mna dc ~omega = system_of_plan (Stamp_plan.build mna) dc ~omega

(* Production solve path: compiled G + jwB plan, pattern-reusing sparse
   factorization, per-domain workspace. *)
let solve_at_acp acp ~freq =
  let ws = Ac_plan.domain_workspace acp in
  Ac_plan.prepare_at acp ws ~freq;
  let x = Ac_plan.solve_stimulus acp ws in
  { mna = Stamp_plan.mna (Ac_plan.plan acp); freq; x }

let solve_plan acp ~freq = solve_at_acp acp ~freq

let solve_at_plan plan dc ~freq = solve_at_acp (Ac_plan.of_dc plan dc) ~freq

let solve ?dc netlist ~freq =
  let mna = Mna.build netlist in
  let dc = match dc with Some d -> d | None -> Dc.solve_mna mna in
  solve_at_plan (Stamp_plan.build mna) dc ~freq

let frequency s = s.freq

let voltage s node =
  let slot = Mna.node_slot s.mna node in
  if slot < 0 then czero else s.x.(slot)

let magnitude_db s node =
  N.Units.db_of_ratio (Complex.norm (voltage s node))

type sweep_point = { freq : float; values : (string * Complex.t) list }

let sweep_plan acp ~freqs ~nodes =
  let mna = Stamp_plan.mna (Ac_plan.plan acp) in
  Array.iter
    (fun f -> if f < 0.0 then invalid_arg "Ac.solve: freq must be >= 0")
    freqs;
  (* resolve node names once, not per point *)
  let slots = List.map (fun n -> (n, Mna.node_slot mna n)) nodes in
  (* pin the pivot order before the pool fans out so any jobs width
     produces byte-identical results; a plan that already carries a
     master factorization (a resident-service cache hit) keeps it, so
     batched and individual dispatches over one plan agree bit for
     bit *)
  if Array.length freqs > 0 then Ac_plan.ensure_master acp ~freq:freqs.(0);
  Pool.map_array (Pool.default ())
    (fun freq ->
      (* per-point cancellation tick: a deadline-armed sweep stops at
         the next point boundary (one refill+solve) *)
      N.Cancel.tick ();
      let ws = Ac_plan.domain_workspace acp in
      Ac_plan.prepare_at acp ws ~freq;
      let x = Ac_plan.solve_stimulus acp ws in
      {
        freq;
        values =
          List.map (fun (n, s) -> (n, if s < 0 then czero else x.(s))) slots;
      })
    freqs

let sweep ?dc netlist ~freqs ~nodes =
  let mna = Mna.build netlist in
  let plan = Stamp_plan.build mna in
  let dc = match dc with Some d -> d | None -> Dc.solve_mna mna in
  sweep_plan (Ac_plan.of_dc plan dc) ~freqs ~nodes

let transfer_db points node =
  Array.map
    (fun p -> N.Units.db_of_ratio (Complex.norm (List.assoc node p.values)))
    points
