(* Structured solver diagnostics.

   Every engine failure mode is one constructor of [t], carrying
   enough context to act on: the analysis it happened in, the time or
   frequency point, the iteration count, and — crucially — names
   rather than indices.  A singular pivot is mapped back through
   [Mna.slot_name] to the node or element whose equation broke; a
   diverged Newton reports the unknown with the worst residual; the
   DC rescue ladder records which rung finally converged.  [pp] is the
   human rendering, [to_json] the stable machine one (reports, sweep
   failure sections, CI logs). *)

type location = { analysis : string; time : float option; freq : float option }

let loc ?time ?freq analysis = { analysis; time; freq }

type unknown = Node of string | Branch of string

type rung =
  | Plain_newton
  | Damped_newton
  | Gmin_stepping
  | Source_stepping
  | Pseudo_transient

let rung_name = function
  | Plain_newton -> "plain-newton"
  | Damped_newton -> "damped-newton"
  | Gmin_stepping -> "gmin-stepping"
  | Source_stepping -> "source-stepping"
  | Pseudo_transient -> "pseudo-transient"

type attempt = { rung : rung; iterations : int; converged : bool }

type t =
  | No_convergence of {
      loc : location;
      iterations : int;
      residual : float;
      worst : unknown option;
      attempts : attempt list;
    }
  | Singular_pivot of { loc : location; pivot : int; unknown : unknown option }
  | Step_truncated of {
      loc : location;
      dt_final : float;
      retries : int;
      completed_points : int;
    }
  | Bad_input of { loc : location; what : string }

exception Error of t

let unknown_of_slot mna slot =
  if slot < 0 then None
  else
    match Mna.slot_name mna slot with
    | None -> None
    | Some name ->
      Some (if slot < Mna.n_nodes mna then Node name else Branch name)

let unknown_name = function Node n -> n | Branch b -> b

let pp_unknown fmt = function
  | Node n -> Format.fprintf fmt "node %s" n
  | Branch b -> Format.fprintf fmt "branch of element %s" b

let pp_location fmt l =
  Format.fprintf fmt "%s" l.analysis;
  Option.iter (fun t -> Format.fprintf fmt " at t = %g s" t) l.time;
  Option.iter (fun f -> Format.fprintf fmt " at f = %g Hz" f) l.freq

let pp_attempt fmt a =
  Format.fprintf fmt "%s: %s after %d iteration%s" (rung_name a.rung)
    (if a.converged then "converged" else "failed")
    a.iterations
    (if a.iterations = 1 then "" else "s")

let pp fmt = function
  | No_convergence { loc; iterations; residual; worst; attempts } ->
    Format.fprintf fmt "@[<v>%a: no convergence after %d iterations"
      pp_location loc iterations;
    if Float.is_finite residual then
      Format.fprintf fmt " (residual %.3g)" residual;
    Option.iter (fun u -> Format.fprintf fmt ", worst %a" pp_unknown u) worst;
    if attempts <> [] then begin
      Format.fprintf fmt "@,rescue ladder:";
      List.iter (fun a -> Format.fprintf fmt "@,  %a" pp_attempt a) attempts
    end;
    Format.fprintf fmt "@]"
  | Singular_pivot { loc; pivot; unknown } ->
    Format.fprintf fmt "%a: singular pivot" pp_location loc;
    if pivot >= 0 then Format.fprintf fmt " at column %d" pivot;
    (match unknown with
     | Some u -> Format.fprintf fmt " (%a)" pp_unknown u
     | None -> if pivot < 0 then Format.fprintf fmt " (injected fault)")
  | Step_truncated { loc; dt_final; retries; completed_points } ->
    Format.fprintf fmt
      "%a: step failed after %d retr%s down to dt = %g s; waveform \
       truncated to %d accepted point%s"
      pp_location loc retries
      (if retries = 1 then "y" else "ies")
      dt_final completed_points
      (if completed_points = 1 then "" else "s")
  | Bad_input { loc; what } ->
    Format.fprintf fmt "%a: bad input: %s" pp_location loc what

let to_string d = Format.asprintf "%a" pp d

let () =
  Printexc.register_printer (function
    | Error d -> Some (Printf.sprintf "Sn_engine.Diag.Error(%s)" (to_string d))
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* JSON rendering: hand-rolled (no JSON dependency), stable key order *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let jfloat v =
  if Float.is_nan v then "\"nan\""
  else if v = Float.infinity then "\"inf\""
  else if v = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" v

let jopt f = function None -> "null" | Some v -> f v

let junknown = function
  | Node n -> Printf.sprintf "{\"node\": %s}" (jstr n)
  | Branch b -> Printf.sprintf "{\"branch\": %s}" (jstr b)

let jlocation l =
  Printf.sprintf "{\"analysis\": %s, \"time\": %s, \"freq\": %s}"
    (jstr l.analysis)
    (jopt jfloat l.time)
    (jopt jfloat l.freq)

let jattempt a =
  Printf.sprintf "{\"rung\": %s, \"iterations\": %d, \"converged\": %b}"
    (jstr (rung_name a.rung))
    a.iterations a.converged

let to_json = function
  | No_convergence { loc; iterations; residual; worst; attempts } ->
    Printf.sprintf
      "{\"kind\": \"no-convergence\", \"location\": %s, \"iterations\": %d, \
       \"residual\": %s, \"worst\": %s, \"attempts\": [%s]}"
      (jlocation loc) iterations (jfloat residual)
      (jopt junknown worst)
      (String.concat ", " (List.map jattempt attempts))
  | Singular_pivot { loc; pivot; unknown } ->
    Printf.sprintf
      "{\"kind\": \"singular-pivot\", \"location\": %s, \"pivot\": %d, \
       \"unknown\": %s}"
      (jlocation loc) pivot
      (jopt junknown unknown)
  | Step_truncated { loc; dt_final; retries; completed_points } ->
    Printf.sprintf
      "{\"kind\": \"step-truncated\", \"location\": %s, \"dt_final\": %s, \
       \"retries\": %d, \"completed_points\": %d}"
      (jlocation loc) (jfloat dt_final) retries completed_points
  | Bad_input { loc; what } ->
    Printf.sprintf "{\"kind\": \"bad-input\", \"location\": %s, \"what\": %s}"
      (jlocation loc) (jstr what)
