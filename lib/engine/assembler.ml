(* Matrix assembly with a pattern that is discovered once and reused.

   The first assembly records the (row, col) add sequence.  For systems
   at or above the crossover size the triples are compiled into a CSR
   matrix plus a slot table mapping each add event to its position in
   the CSR value array, so every later assembly is a value refill in
   stamp order — no hashing, no allocation, no sorting.  Small systems
   use a flat dense matrix instead, where direct indexing already beats
   any sparse bookkeeping.

   Either way the factorization object ([Splu.t]) is created on the
   first solve and numerically refreshed afterwards, so the symbolic
   work (pivot order, fill pattern) happens once per netlist.  When the
   stamped values are known not to change between solves — a linear
   circuit on a fixed timestep — [freeze] pins the current
   factorization: subsequent [start]/[add] calls become no-ops and
   [solve] only performs the two triangular substitutions. *)

module N = Sn_numerics

type mode =
  | Dense of { ddata : float array; dmat : N.Mat.t }
  | Collect of { ci : N.Dyn.I.t; cj : N.Dyn.I.t; cv : N.Dyn.F.t }
  | Refill of {
      slots : int array;
      n_ev : int;
      rvalues : float array;
      matrix : N.Sparse.t;
      mutable k : int;
    }

type t = {
  adim : int;
  mutable mode : mode;
  mutable factor : N.Splu.t option;
  mutable frozen : bool;
}

let create ?(crossover = N.Splu.default_crossover) dim =
  if dim <= 0 then invalid_arg "Assembler.create: dimension must be > 0";
  let mode =
    if dim < crossover then begin
      let ddata = Array.make (dim * dim) 0.0 in
      Dense { ddata; dmat = N.Mat.of_flat ~rows:dim ~cols:dim ddata }
    end
    else
      Collect
        { ci = N.Dyn.I.create (); cj = N.Dyn.I.create ();
          cv = N.Dyn.F.create () }
  in
  { adim = dim; mode; factor = None; frozen = false }

let dim t = t.adim
let frozen t = t.frozen

let freeze t =
  if t.factor = None then invalid_arg "Assembler.freeze: nothing factored yet";
  t.frozen <- true

let unfreeze t = t.frozen <- false

let start t =
  if not t.frozen then
    match t.mode with
    | Dense { ddata; _ } -> Array.fill ddata 0 (Array.length ddata) 0.0
    | Collect { ci; cj; cv } ->
      N.Dyn.I.clear ci;
      N.Dyn.I.clear cj;
      N.Dyn.F.clear cv
    | Refill r ->
      Array.fill r.rvalues 0 (Array.length r.rvalues) 0.0;
      r.k <- 0

let add t i j v =
  if (not t.frozen) && i >= 0 && j >= 0 then
    match t.mode with
    | Dense { ddata; _ } ->
      let p = (i * t.adim) + j in
      ddata.(p) <- ddata.(p) +. v
    | Collect { ci; cj; cv } ->
      N.Dyn.I.push ci i;
      N.Dyn.I.push cj j;
      N.Dyn.F.push cv v
    | Refill r ->
      if r.k >= r.n_ev then
        invalid_arg "Assembler.add: stamp sequence longer than recorded";
      let s = r.slots.(r.k) in
      r.rvalues.(s) <- r.rvalues.(s) +. v;
      r.k <- r.k + 1

(* Compile the recorded triples into CSR + slot table.  The pattern is
   built with unit weights so that structurally present entries survive
   even when their first numeric value is zero (a cutoff MOSFET's
   conductances, say, must stay in the pattern: later iterations fill
   them in). *)
let compile_pattern t ci cj cv =
  let n_ev = N.Dyn.I.length ci in
  let id = N.Dyn.I.unsafe_data ci
  and jd = N.Dyn.I.unsafe_data cj
  and vd = N.Dyn.F.unsafe_data cv in
  let b = N.Sparse.builder t.adim t.adim in
  for k = 0 to n_ev - 1 do
    N.Sparse.add b id.(k) jd.(k) 1.0
  done;
  let matrix = N.Sparse.finalize b in
  let slots = Array.make (max n_ev 1) 0 in
  for k = 0 to n_ev - 1 do
    slots.(k) <- N.Sparse.index matrix id.(k) jd.(k)
  done;
  let rvalues = N.Sparse.values matrix in
  Array.fill rvalues 0 (Array.length rvalues) 0.0;
  for k = 0 to n_ev - 1 do
    let s = slots.(k) in
    rvalues.(s) <- rvalues.(s) +. vd.(k)
  done;
  Refill { slots; n_ev; rvalues; matrix; k = n_ev }

let solve t rhs =
  if Array.length rhs <> t.adim then
    invalid_arg "Assembler.solve: rhs dimension mismatch";
  (match t.mode with
   | Collect { ci; cj; cv } -> t.mode <- compile_pattern t ci cj cv
   | Dense _ | Refill _ -> ());
  if not t.frozen then begin
    (* fault-injection site: pretend the factorization hit a zero
       pivot, so tests can drive the rescue paths on healthy circuits *)
    if Fault.fire Factor then raise (N.Splu.Singular (-1));
    match (t.mode, t.factor) with
    | Dense { dmat; _ }, None -> t.factor <- Some (N.Splu.factor_dense dmat)
    | Dense { dmat; _ }, Some f -> N.Splu.refactor_dense f dmat
    | Refill r, fo ->
      if r.k <> r.n_ev then
        invalid_arg "Assembler.solve: stamp sequence shorter than recorded";
      (match fo with
       | None -> t.factor <- Some (N.Splu.factor ~crossover:0 r.matrix)
       | Some f -> N.Splu.refactor f r.matrix)
    | Collect _, _ -> assert false
  end;
  N.Splu.solve (Option.get t.factor) rhs
