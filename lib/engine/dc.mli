(** DC operating-point analysis: Newton-Raphson on the MNA equations
    with a configurable convergence-rescue ladder.

    When the plain damped Newton attempt fails, the solver escalates
    through the rungs of {!type-options.field-ladder} in order — heavier damping,
    gmin continuation, source stepping (all independent sources ramped
    from 0 to 100 %), and pseudo-transient continuation — until one
    converges.  Every attempt is recorded; the trace is exposed on the
    solution via {!attempts} and carried in the diagnostic when every
    rung fails. *)

type options = {
  max_iterations : int;  (** Newton cap per attempt / sub-step (default 200) *)
  tolerance : float;  (** max |delta x| convergence target (default 1e-9) *)
  gmin : float;  (** conductance to ground on every node (default 1e-12) *)
  damping : float;  (** per-iteration update clamp, V (default 0.6) *)
  gmin_steps : int;  (** gmin continuation steps (default 6) *)
  ladder : Diag.rung list;
      (** rescue rungs tried in order (default: all five, starting with
          {!Diag.Plain_newton}); an empty list falls back to a single
          plain Newton attempt *)
  source_steps : int;  (** source-stepping ramp sub-steps (default 20) *)
  ptran_steps : int;
      (** pseudo-transient anchor-conductance decades (default 8) *)
}

val default_options : options

type solution

val solve : ?options:options -> Sn_circuit.Netlist.t -> solution
(** Raises {!Diag.Error} with {!Diag.No_convergence} (carrying the full
    rescue-ladder trace and the worst-residual unknown's name) when
    every rung fails, or {!Diag.Singular_pivot} (naming the node or
    element behind the pivot) when the failure was a singular matrix.
    All node references are checked at build time. *)

val solve_mna : ?options:options -> Mna.t -> solution

val solve_plan : ?options:options -> Stamp_plan.t -> solution
(** Solve over a pre-compiled stamp plan, sharing the symbolic work
    with a caller that keeps the plan (the transient engine does). *)

val mna : solution -> Mna.t

val attempts : solution -> Diag.attempt list
(** The recorded rescue-ladder trace, in the order the rungs ran.  A
    healthy solve has exactly one converged {!Diag.Plain_newton}
    entry. *)

val voltage : solution -> string -> float
(** [voltage s node] — 0 for ground.  Raises {!Mna.Unknown_node}. *)

val branch_current : solution -> string -> float
(** Current through a voltage-defined element (V source, VCVS,
    inductor).  Raises {!Mna.Unknown_branch}. *)

val mos_operating_point :
  solution -> string -> Sn_circuit.Mos_model.operating_point
(** Single-device operating point of MOSFET [name] at the solution
    (multiply small-signal parameters by the device [mult] for the
    total).  Raises [Not_found]. *)

val unknowns : solution -> float array
(** Raw unknown vector (nodes then branches) — used by the transient
    engine to warm-start. *)

val pp : Format.formatter -> solution -> unit
(** Operating-point report: every node voltage, every branch current,
    and the region / small-signal parameters of every MOSFET — the
    ".op" printout of a conventional simulator. *)
