(** DC operating-point analysis: Newton-Raphson on the MNA equations
    with gmin stepping as a convergence fallback. *)

type options = {
  max_iterations : int;  (** Newton cap per gmin step (default 200) *)
  tolerance : float;  (** max |delta x| convergence target (default 1e-9) *)
  gmin : float;  (** conductance to ground on every node (default 1e-12) *)
  damping : float;  (** per-iteration update clamp, V (default 0.6) *)
  gmin_steps : int;  (** gmin continuation steps on failure (default 6) *)
}

val default_options : options

exception No_convergence of { iterations : int; residual : float }

type solution

val solve : ?options:options -> Sn_circuit.Netlist.t -> solution
(** Raises {!No_convergence} when even gmin stepping fails, and
    [Not_found]-free: all node references are checked at build time. *)

val solve_mna : ?options:options -> Mna.t -> solution

val solve_plan : ?options:options -> Stamp_plan.t -> solution
(** Solve over a pre-compiled stamp plan, sharing the symbolic work
    with a caller that keeps the plan (the transient engine does). *)

val mna : solution -> Mna.t

val voltage : solution -> string -> float
(** [voltage s node] — 0 for ground.  Raises [Not_found]. *)

val branch_current : solution -> string -> float
(** Current through a voltage-defined element (V source, VCVS,
    inductor).  Raises [Not_found]. *)

val mos_operating_point :
  solution -> string -> Sn_circuit.Mos_model.operating_point
(** Single-device operating point of MOSFET [name] at the solution
    (multiply small-signal parameters by the device [mult] for the
    total).  Raises [Not_found]. *)

val unknowns : solution -> float array
(** Raw unknown vector (nodes then branches) — used by the transient
    engine to warm-start. *)

val pp : Format.formatter -> solution -> unit
(** Operating-point report: every node voltage, every branch current,
    and the region / small-signal parameters of every MOSFET — the
    ".op" printout of a conventional simulator. *)
