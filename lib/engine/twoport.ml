module C = Sn_circuit
module E = C.Element
module N = Sn_numerics

type sparams = {
  freq : float;
  s11 : Complex.t;
  s21 : Complex.t;
  s12 : Complex.t;
  s22 : Complex.t;
}

(* Voltage-wave convention with equal reference impedances: drive one
   side with an EMF of 2 V behind z0 (incident wave a = 1 at the port
   plane), terminate the other side in z0.  Then
   S_driven,driven = v_driven - 1 and S_other,driven = v_other. *)
let analyze ?(z0 = 50.0) nl ~port1 ~port2 ~freqs =
  if E.is_ground port1 || E.is_ground port2 then
    invalid_arg "Twoport.analyze: port cannot be ground";
  if not (C.Netlist.mem_node nl port1 && C.Netlist.mem_node nl port2) then
    invalid_arg "Twoport.analyze: unknown port node";
  let harness ~drive =
    let src name node mag =
      [ E.Vsource { name = name ^ "_src"; np = name ^ "_emf"; nn = "0";
                    wave = C.Waveform.dc 0.0; ac_mag = mag };
        E.Resistor { name = name ^ "_term"; n1 = name ^ "_emf"; n2 = node;
                     ohms = z0 } ]
    in
    C.Netlist.create
      (C.Netlist.elements nl
      @ src "p1" port1 (if drive = `One then 2.0 else 0.0)
      @ src "p2" port2 (if drive = `Two then 2.0 else 0.0))
  in
  let forward = harness ~drive:`One and reverse = harness ~drive:`Two in
  let dc_f = Dc.solve forward and dc_r = Dc.solve reverse in
  (* one compiled plan and one factorization pattern per direction, all
     frequencies through the sparse sweep engine *)
  let nodes = [ port1; port2 ] in
  let fwd = Ac.sweep ~dc:dc_f forward ~freqs ~nodes in
  let rev = Ac.sweep ~dc:dc_r reverse ~freqs ~nodes in
  Array.to_list
    (Array.map2
       (fun (pf : Ac.sweep_point) (pr : Ac.sweep_point) ->
         {
           freq = pf.Ac.freq;
           s11 = Complex.sub (List.assoc port1 pf.Ac.values) Complex.one;
           s21 = List.assoc port2 pf.Ac.values;
           s22 = Complex.sub (List.assoc port2 pr.Ac.values) Complex.one;
           s12 = List.assoc port1 pr.Ac.values;
         })
       fwd rev)

let isolation_db s = -.N.Units.db_of_ratio (Complex.norm s.s21)
