(* Compiled complex frequency-domain plan: the G + jwB split.

   The dense AC path used to rebuild an n x n complex matrix at every
   frequency point and re-evaluate every nonlinear device's
   small-signal parameters (MOSFET transconductances, varactor C(V))
   while doing so — although neither depends on frequency, only on the
   DC bias.  This module walks the stamp plan exactly once per
   (plan, operating point) pair and splits every stamp into a
   frequency-independent real conductance event G (resistors,
   gm/gmb/gds, source and inductor branch connections) and a
   susceptance event B (capacitors, varactor C(V_dc), inductor -L on
   its branch row), each resolved to a slot in one shared CSR pattern.
   Assembling the system at angular frequency w is then a slot-replay
   refill [G + jwB] into reused split re/im value arrays: zero
   allocation, zero device evaluation, no hashing.

   The pattern is built with unit weights so structurally present
   entries survive a zero first value (a cutoff MOSFET's conductances
   must stay in the pattern).  One symbolic factorization (the
   "master", created by {!ensure_master} before a sweep goes parallel)
   fixes the pivot order; every worker domain owns a private
   {!workspace} and a {!N.Splu.Cplx.clone} of the master, so parallel
   frequency sweeps are byte-identical to sequential ones. *)

module C = Sn_circuit
module N = Sn_numerics
module P = Stamp_plan

type t = {
  plan : Stamp_plan.t;
  adim : int;
  crossover : int;
  pattern : N.Sparse.t; (* shared, read-only after compile *)
  g_slots : int array;
  g_vals : float array;
  b_slots : int array;
  b_vals : float array;
  rhs_slots : int array;
  rhs_vals : float array;
  mutable master : N.Splu.Cplx.t option;
  master_lock : Mutex.t;
}

(* Per-worker mutable state: the split re/im value arrays over the
   shared pattern, the stimulus vector, and this worker's clone of the
   factorization.  Never crosses domains. *)
type workspace = {
  mat : N.Splu.Cplx.mat;
  rhs : Complex.t array;
  mutable factor : N.Splu.Cplx.t option;
}

let plan t = t.plan
let dim t = t.adim
let nnz t = N.Sparse.nnz t.pattern

let workspace t =
  { mat = N.Splu.Cplx.mat_of_pattern t.pattern;
    rhs = Array.make t.adim Complex.zero;
    factor = None }

(* One cached workspace per domain, keyed by the plan it belongs to:
   a pool worker that processes many points of the same sweep reuses
   its arrays across all of them. *)
let ws_cache : (t * workspace) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let domain_workspace t =
  let cell = Domain.DLS.get ws_cache in
  match !cell with
  | Some (t', ws) when t' == t -> ws
  | _ ->
    let ws = workspace t in
    cell := Some (t, ws);
    ws

let compile ?(crossover = N.Splu.default_crossover) (plan : Stamp_plan.t) dcx =
  let adim = Stamp_plan.dim plan in
  let gi = N.Dyn.I.create () and gj = N.Dyn.I.create ()
  and gv = N.Dyn.F.create () in
  let bi = N.Dyn.I.create () and bj = N.Dyn.I.create ()
  and bv = N.Dyn.F.create () in
  let ri = N.Dyn.I.create () and rv = N.Dyn.F.create () in
  let volt s = if s < 0 then 0.0 else dcx.(s) in
  let g i j v =
    if i >= 0 && j >= 0 then begin
      N.Dyn.I.push gi i;
      N.Dyn.I.push gj j;
      N.Dyn.F.push gv v
    end
  in
  let b i j v =
    if i >= 0 && j >= 0 then begin
      N.Dyn.I.push bi i;
      N.Dyn.I.push bj j;
      N.Dyn.F.push bv v
    end
  in
  let g_adm i j v =
    g i i v;
    g j j v;
    g i j (-.v);
    g j i (-.v)
  in
  let b_adm i j v =
    b i i v;
    b j j v;
    b i j (-.v);
    b j i (-.v)
  in
  let inject i v =
    if i >= 0 then begin
      N.Dyn.I.push ri i;
      N.Dyn.F.push rv v
    end
  in
  Array.iter
    (fun (e : P.elt) ->
      match e with
      | P.Resistor { i; j; g = gval } -> g_adm i j gval
      | P.Capacitor { i; j; c; _ } -> b_adm i j c
      | P.Varactor { i; j; vmodel; fm; _ } ->
        (* C(V) at the DC bias, evaluated once for the whole sweep *)
        b_adm i j (C.Varactor_model.capacitance vmodel (volt i -. volt j) *. fm)
      | P.Inductor { b = br; i; j; henries; _ } ->
        g br i 1.0;
        g br j (-1.0);
        g i br 1.0;
        g j br (-1.0);
        b br br (-.henries)
      | P.Vsource { b = br; i; j; ac_mag; _ } ->
        g br i 1.0;
        g br j (-1.0);
        g i br 1.0;
        g j br (-1.0);
        inject br ac_mag
      | P.Isource { i; j; ac_mag; _ } ->
        inject i (-.ac_mag);
        inject j ac_mag
      | P.Vccs { i; j; k; l; gm } ->
        g i k gm;
        g i l (-.gm);
        g j k (-.gm);
        g j l gm
      | P.Vcvs { b = br; i; j; k; l; gain } ->
        g br i 1.0;
        g br j (-1.0);
        g br k (-.gain);
        g br l gain;
        g i br 1.0;
        g j br (-1.0)
      | P.Mosfet m ->
        (* transconductances at the DC bias, evaluated once: the
           device capacitances were expanded into Capacitor stamps by
           the plan *)
        let d = m.P.md and gt = m.P.mg and s = m.P.ms and bk = m.P.mbk in
        let lin =
          Device_eval.mos ~model:m.P.mmodel ~w:m.P.mw ~l:m.P.ml
            ~mult:m.P.mmult ~vd:(volt d) ~vg:(volt gt) ~vs:(volt s)
            ~vb:(volt bk)
        in
        List.iter
          (fun (coeff, node) ->
            g d node coeff;
            g s node (-.coeff))
          [ (lin.Device_eval.g_dd, d); (lin.Device_eval.g_dg, gt);
            (lin.Device_eval.g_ds, s); (lin.Device_eval.g_db, bk) ])
    plan.P.elts;
  (* the gmin floor keeps isolated nodes from making the system
     singular — same constant as the dense reference path *)
  for i = 0 to Stamp_plan.n_nodes plan - 1 do
    g i i Stamp_plan.node_gmin
  done;
  (* one pattern over the union of G and B coordinates, built with unit
     weights so structural zeros survive *)
  let builder = N.Sparse.builder adim adim in
  let n_g = N.Dyn.I.length gi and n_b = N.Dyn.I.length bi in
  for k = 0 to n_g - 1 do
    N.Sparse.add builder (N.Dyn.I.get gi k) (N.Dyn.I.get gj k) 1.0
  done;
  for k = 0 to n_b - 1 do
    N.Sparse.add builder (N.Dyn.I.get bi k) (N.Dyn.I.get bj k) 1.0
  done;
  let pattern = N.Sparse.finalize builder in
  {
    plan;
    adim;
    crossover;
    pattern;
    g_slots =
      Array.init n_g (fun k ->
          N.Sparse.index pattern (N.Dyn.I.get gi k) (N.Dyn.I.get gj k));
    g_vals = N.Dyn.F.to_array gv;
    b_slots =
      Array.init n_b (fun k ->
          N.Sparse.index pattern (N.Dyn.I.get bi k) (N.Dyn.I.get bj k));
    b_vals = N.Dyn.F.to_array bv;
    rhs_slots = N.Dyn.I.to_array ri;
    rhs_vals = N.Dyn.F.to_array rv;
    master = None;
    master_lock = Mutex.create ();
  }

let of_dc ?crossover plan dc = compile ?crossover plan (Dc.unknowns dc)

(* Per-frequency system assembly: the slot-replay G + jwB refill. *)
let refill t ws ~omega =
  N.Splu.Cplx.mat_clear ws.mat;
  let re = ws.mat.N.Splu.Cplx.re and im = ws.mat.N.Splu.Cplx.im in
  let gs = t.g_slots and gv = t.g_vals in
  for k = 0 to Array.length gs - 1 do
    let s = gs.(k) in
    re.(s) <- re.(s) +. gv.(k)
  done;
  let bs = t.b_slots and bv = t.b_vals in
  for k = 0 to Array.length bs - 1 do
    let s = bs.(k) in
    im.(s) <- im.(s) +. (omega *. bv.(k))
  done

let raise_singular t ~analysis ~freq col =
  raise
    (Diag.Error
       (Diag.Singular_pivot
          { loc = Diag.loc analysis ~freq; pivot = col;
            unknown = Diag.unknown_of_slot (Stamp_plan.mna t.plan) col }))

(* Take a factorization for this workspace: clone the shared master if
   it exists, otherwise become it.  Factoring happens under the lock so
   exactly one pivot order ever exists per plan; cloning only copies
   numeric arrays, which the subsequent refactor overwrites anyway. *)
let acquire_factor t ws =
  Mutex.lock t.master_lock;
  match t.master with
  | Some m ->
    let c = N.Splu.Cplx.clone m in
    Mutex.unlock t.master_lock;
    `Refactor c
  | None ->
    (match N.Splu.Cplx.factor ~crossover:t.crossover ws.mat with
     | f ->
       t.master <- Some f;
       Mutex.unlock t.master_lock;
       `Fresh f
     | exception e ->
       Mutex.unlock t.master_lock;
       raise e)

(* Assemble and factorize the system at [freq] into [ws]; after this
   returns, [ws] holds a valid factorization for forward and transpose
   solves.  Singularities (and the injected-fault site) surface as a
   {!Diag.Singular_pivot} naming the offending unknown. *)
let prepare_at ?(analysis = "ac") t ws ~freq =
  if freq < 0.0 then invalid_arg "Ac.solve: freq must be >= 0";
  let omega = N.Units.two_pi *. freq in
  refill t ws ~omega;
  (* fault-injection site: the frequency-domain factorization *)
  if Fault.fire Factor then raise_singular t ~analysis ~freq (-1);
  try
    match ws.factor with
    | Some f -> N.Splu.Cplx.refactor f ws.mat
    | None ->
      (match acquire_factor t ws with
       | `Fresh f -> ws.factor <- Some f
       | `Refactor f ->
         N.Splu.Cplx.refactor f ws.mat;
         ws.factor <- Some f)
  with N.Splu.Singular col -> raise_singular t ~analysis ~freq col

(* Fix the master factorization (pivot order and fill pattern) at a
   deterministic point before a sweep goes parallel, so every worker
   clones the same symbolic structure regardless of which frequency it
   happens to claim first. *)
let ensure_master ?analysis t ~freq = prepare_at ?analysis t (domain_workspace t) ~freq

let solve_stimulus t ws =
  Array.fill ws.rhs 0 t.adim Complex.zero;
  let rs = t.rhs_slots and rvals = t.rhs_vals in
  for k = 0 to Array.length rs - 1 do
    let s = rs.(k) in
    ws.rhs.(s) <- Complex.add ws.rhs.(s) { Complex.re = rvals.(k); im = 0.0 }
  done;
  N.Splu.Cplx.solve (Option.get ws.factor) ws.rhs

let solve_transpose ws b = N.Splu.Cplx.solve_transpose (Option.get ws.factor) b
