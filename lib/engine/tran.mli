(** Transient analysis: fixed-step backward-Euler or trapezoidal
    integration with a Newton solve per time point.

    Capacitors and inductors get the standard companion models; the
    varactor integrates its exact charge equation (charge-conserving),
    which matters when it frequency-modulates the tank. *)

type method_ = Backward_euler | Trapezoidal

type initial_condition =
  | Operating_point  (** start from the DC solution *)
  | Uic of (string * float) list
      (** skip the DC solve; start from 0 V except the listed nodes *)

type options = {
  method_ : method_;
  max_newton : int;
  tolerance : float;
  ic : initial_condition;
  record : string list option;  (** nodes to record; [None] = all *)
  linear_fast_path : bool;
      (** when the circuit is linear (no MOSFET, no varactor), skip the
          Newton loop and — on a fixed step — freeze the LU
          factorization after the first point, leaving two triangular
          solves per step (default [true]) *)
  max_step_retries : int;
      (** step-size halvings tried when a time point fails before the
          waveform is truncated (default 6, i.e. down to [dt / 64]) *)
}

val default_options : options
(** Trapezoidal, 50 Newton iterations, 1e-9 tolerance, operating-point
    start, record all nodes, linear fast path on. *)

exception Step_failed of { time : float; iterations : int }
(** Internal per-point failure.  The public entry points do not let it
    escape: a failing point triggers the step-retry backoff, and past
    the retry limit the waveform is returned truncated (see
    {!type-dataset.field-truncated}). *)

type dataset = {
  times : float array;
  names : string array;
  data : float array array;  (** [data.(k)] is the waveform of [names.(k)] *)
  truncated : Diag.t option;
      (** [None] for a complete run; [Some (Step_truncated _)] when a
          time point kept failing at the smallest allowed step and the
          waveform stops early — [times] / [data] then hold only the
          accepted points *)
}

val simulate :
  ?options:options -> tstop:float -> dt:float -> Sn_circuit.Netlist.t ->
  dataset
(** [simulate ?options ~tstop ~dt nl] integrates from 0 to [tstop].
    A failing time point is retried by re-integrating its interval
    with up to [2 ^ max_step_retries] substeps; if even the smallest
    substep fails, the partial waveform is returned with
    {!type-dataset.field-truncated} set instead of raising.  Raises
    [Invalid_argument] for non-positive [tstop] / [dt]. *)

val simulate_adaptive :
  ?options:options -> ?dt_min:float -> ?dt_max:float -> ?lte_tol:float ->
  tstop:float -> dt:float -> Sn_circuit.Netlist.t -> dataset
(** [simulate_adaptive ?options ?dt_min ?dt_max ?lte_tol ~tstop ~dt nl]
    integrates with step-doubling local-truncation-error control: each
    accepted step compares one [h] step against two [h/2] steps and
    grows or shrinks [h] to keep the estimated error under [lte_tol]
    (default 1e-6, absolute on node voltages).  [dt] is the initial
    step; [dt_min] defaults to [dt / 1024], [dt_max] to [16 * dt].
    Time points are non-uniform.  A Newton stall is treated like an
    LTE rejection (halve the step); when the step cannot be met at
    [dt_min] the partial waveform is returned with
    {!type-dataset.field-truncated} set.  Raises [Invalid_argument] like
    {!simulate}. *)

val node : dataset -> string -> float array
(** Waveform of one recorded node.  Raises [Not_found]. *)

val samples_after : dataset -> t0:float -> string -> float array
(** [samples_after d ~t0 node] drops the start-up transient before
    [t0] — the window handed to the spectral estimator. *)

val to_csv : dataset -> string
(** [to_csv d] renders the dataset as CSV (header ["time,node,..."]),
    for external plotting. *)
