(** Transient analysis: fixed-step backward-Euler or trapezoidal
    integration with a Newton solve per time point.

    Capacitors and inductors get the standard companion models; the
    varactor integrates its exact charge equation (charge-conserving),
    which matters when it frequency-modulates the tank. *)

type method_ = Backward_euler | Trapezoidal

type initial_condition =
  | Operating_point  (** start from the DC solution *)
  | Uic of (string * float) list
      (** skip the DC solve; start from 0 V except the listed nodes *)

type options = {
  method_ : method_;
  max_newton : int;
  tolerance : float;
  ic : initial_condition;
  record : string list option;  (** nodes to record; [None] = all *)
  linear_fast_path : bool;
      (** when the circuit is linear (no MOSFET, no varactor), skip the
          Newton loop and — on a fixed step — freeze the LU
          factorization after the first point, leaving two triangular
          solves per step (default [true]) *)
}

val default_options : options
(** Trapezoidal, 50 Newton iterations, 1e-9 tolerance, operating-point
    start, record all nodes, linear fast path on. *)

exception Step_failed of { time : float; iterations : int }

type dataset = {
  times : float array;
  names : string array;
  data : float array array;  (** [data.(k)] is the waveform of [names.(k)] *)
}

val simulate :
  ?options:options -> tstop:float -> dt:float -> Sn_circuit.Netlist.t ->
  dataset
(** [simulate ?options ~tstop ~dt nl] integrates from 0 to [tstop].
    Raises [Invalid_argument] for non-positive [tstop] / [dt] and
    {!Step_failed} when Newton stalls. *)

val simulate_adaptive :
  ?options:options -> ?dt_min:float -> ?dt_max:float -> ?lte_tol:float ->
  tstop:float -> dt:float -> Sn_circuit.Netlist.t -> dataset
(** [simulate_adaptive ?options ?dt_min ?dt_max ?lte_tol ~tstop ~dt nl]
    integrates with step-doubling local-truncation-error control: each
    accepted step compares one [h] step against two [h/2] steps and
    grows or shrinks [h] to keep the estimated error under [lte_tol]
    (default 1e-6, absolute on node voltages).  [dt] is the initial
    step; [dt_min] defaults to [dt / 1024], [dt_max] to [16 * dt].
    Time points are non-uniform.  Raises like {!simulate}, plus
    {!Step_failed} when the error cannot be met at [dt_min]. *)

val node : dataset -> string -> float array
(** Waveform of one recorded node.  Raises [Not_found]. *)

val samples_after : dataset -> t0:float -> string -> float array
(** [samples_after d ~t0 node] drops the start-up transient before
    [t0] — the window handed to the spectral estimator. *)

val to_csv : dataset -> string
(** [to_csv d] renders the dataset as CSV (header ["time,node,..."]),
    for external plotting. *)
