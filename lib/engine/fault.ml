(* Deterministic fault injection for the solver robustness layer.

   The rescue ladder, the transient backoff and the fault-tolerant
   sweep paths only run when something goes wrong, so without help they
   would be dead code in every healthy test run.  This module lets a
   test (or the SNOISE_FAULT environment variable) declare "the Nth
   factorization fails" or "the first DC Newton attempt of every solve
   fails"; the engines poll {!fire} at each occurrence and simulate the
   failure on a hit.  Counters are atomic so an armed fault behaves
   deterministically even when the occurrences race across pool
   domains (exactly one domain wins the Nth slot). *)

type site =
  | Factor
  | Dc_attempt
  | Tran_solve
  (* server-side chaos points (PR 8): the wire layer polls these to
     kill the worker mid-request, delay/garble a reply, or drop a
     client connection *)
  | Server_kill
  | Server_delay
  | Server_garble
  | Server_drop

type spec =
  | Nth of int
  | First_in_scope

type armed = { site : site; spec : spec }

let state : armed option ref = ref None

(* one global occurrence counter per site *)
let factor_count = Atomic.make 0
let dc_count = Atomic.make 0
let tran_count = Atomic.make 0
let kill_count = Atomic.make 0
let delay_count = Atomic.make 0
let garble_count = Atomic.make 0
let drop_count = Atomic.make 0

let counter = function
  | Factor -> factor_count
  | Dc_attempt -> dc_count
  | Tran_solve -> tran_count
  | Server_kill -> kill_count
  | Server_delay -> delay_count
  | Server_garble -> garble_count
  | Server_drop -> drop_count

let site_name = function
  | Factor -> "factor"
  | Dc_attempt -> "dc-attempt"
  | Tran_solve -> "tran-solve"
  | Server_kill -> "server-kill"
  | Server_delay -> "server-delay"
  | Server_garble -> "server-garble"
  | Server_drop -> "server-drop"

let site_of_name = function
  | "factor" -> Some Factor
  | "dc-attempt" -> Some Dc_attempt
  | "tran-solve" -> Some Tran_solve
  | "server-kill" -> Some Server_kill
  | "server-delay" -> Some Server_delay
  | "server-garble" -> Some Server_garble
  | "server-drop" -> Some Server_drop
  | _ -> None

let reset_counters () =
  Atomic.set factor_count 0;
  Atomic.set dc_count 0;
  Atomic.set tran_count 0;
  Atomic.set kill_count 0;
  Atomic.set delay_count 0;
  Atomic.set garble_count 0;
  Atomic.set drop_count 0

let arm site spec =
  reset_counters ();
  state := Some { site; spec }

let disarm () =
  reset_counters ();
  state := None

let armed () = Option.map (fun a -> (a.site, a.spec)) !state

let parse s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
    let name = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    (match site_of_name (String.lowercase_ascii (String.trim name)) with
     | None -> None
     | Some site ->
       (match String.lowercase_ascii (String.trim arg) with
        | "first" -> Some { site; spec = First_in_scope }
        | n ->
          (match int_of_string_opt n with
           | Some n when n >= 1 -> Some { site; spec = Nth n }
           | _ -> None)))

(* the environment is consulted exactly once, before the first fire *)
let env_loaded = ref false

let load_env () =
  if not !env_loaded then begin
    env_loaded := true;
    match Sys.getenv_opt "SNOISE_FAULT" with
    | None -> ()
    | Some "" -> () (* a supervisor scrubs the variable on restart *)
    | Some s ->
      (match parse s with
       | Some a -> if !state = None then state := Some a
       | None ->
         Printf.eprintf "snoise: ignoring malformed SNOISE_FAULT=%S\n%!" s)
  end

let fire ?(scope_index = 0) site =
  load_env ();
  match !state with
  | None -> false
  | Some a when a.site <> site -> false
  | Some a ->
    (match a.spec with
     | First_in_scope -> scope_index = 1
     | Nth n -> Atomic.fetch_and_add (counter site) 1 + 1 = n)

let pp fmt (site, spec) =
  match spec with
  | Nth n -> Format.fprintf fmt "%s:%d" (site_name site) n
  | First_in_scope -> Format.fprintf fmt "%s:first" (site_name site)
