(** AC small-signal analysis: the netlist is linearized around a DC
    operating point and solved in the complex domain per frequency.

    Stimuli are the sources' [ac_mag] fields; everything else is
    linearized (MOSFETs become gm / gds / gmb controlled sources plus
    their capacitances, varactors become C(V_dc)).

    Solves run on the sparse frequency-domain engine ({!Ac_plan}): the
    stamp plan is compiled once per operating point into
    frequency-independent conductance and susceptance slot lists, each
    point is a [G + jwB] refill into a reused sparse pattern, and the
    symbolic factorization is computed once and numerically refilled per
    frequency.  {!sweep} distributes points over the process-wide
    {!Pool} (the [--jobs] flag / [SNOISE_JOBS]); results are
    byte-identical at any pool width. *)

type solution

val solve : ?dc:Dc.solution -> Sn_circuit.Netlist.t -> freq:float -> solution
(** [solve ?dc nl ~freq] computes the phasor solution at [freq] (Hz).
    The operating point is computed with {!Dc.solve} when not
    supplied.  Raises [Invalid_argument] when [freq < 0], and
    {!Diag.Error} with a frequency-tagged {!Diag.Singular_pivot}
    (naming the offending node or element) when the complex system is
    singular at [freq]. *)

val solve_plan : Ac_plan.t -> freq:float -> solution
(** [solve_plan acp ~freq] solves one point on a pre-compiled
    {!Ac_plan} — the resident-service hot path: no parse, no stamp
    compilation, no bias solve, just a [G + jwB] refill of the plan's
    reused pattern and a factorization (or numeric refactor when the
    plan already carries its master).  Raises like {!solve}. *)

val frequency : solution -> float

val voltage : solution -> string -> Complex.t
(** Node phasor (0 for ground).  Raises [Not_found]. *)

val magnitude_db : solution -> string -> float
(** [20 log10 |v(node)|].  Raises [Invalid_argument] when the
    magnitude is zero. *)

val system :
  Mna.t -> Dc.solution -> omega:float ->
  Complex.t array array * Complex.t array
(** [system mna dc ~omega] is the assembled complex MNA matrix and
    stimulus vector at angular frequency [omega] — the dense reference
    formulation, kept for validation of the sparse engine and for
    callers that want the explicit matrix.  Compiles a fresh stamp plan
    per call; for repeated assemblies build the plan once and use
    {!system_of_plan}. *)

val system_of_plan :
  Stamp_plan.t -> Dc.solution -> omega:float ->
  Complex.t array array * Complex.t array
(** Same as {!system} over a pre-compiled stamp plan: per-frequency
    cost is numeric stamping only. *)

type sweep_point = { freq : float; values : (string * Complex.t) list }

val sweep :
  ?dc:Dc.solution -> Sn_circuit.Netlist.t -> freqs:float array ->
  nodes:string list -> sweep_point array
(** [sweep nl ~freqs ~nodes] reuses one operating point, one compiled
    plan and one symbolic factorization across the whole frequency
    sweep, and evaluates the points on the default {!Pool}.  The result
    array is positioned by input index and byte-identical regardless of
    the pool's width.  Raises as {!solve}; unknown node names raise
    [Not_found] before any solve runs. *)

val sweep_plan :
  Ac_plan.t -> freqs:float array -> nodes:string list -> sweep_point array
(** [sweep_plan acp ~freqs ~nodes] is {!sweep} over a pre-compiled
    {!Ac_plan}: the symbolic factorization is pinned once (or reused
    when the plan already carries it) and the points run on the
    default {!Pool}.  Because a plan's pivot order is fixed by its
    first factorization, repeated and batched sweeps over one cached
    plan are byte-identical however the points are grouped into
    dispatches.  Raises as {!sweep}. *)

val transfer_db : sweep_point array -> string -> float array
(** [transfer_db points node] extracts [20 log10 |v(node)|] per sweep
    point. *)
