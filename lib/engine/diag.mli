(** Typed solver diagnostics.

    One variant type, {!t}, covers every way an analysis can fail:
    Newton non-convergence, a singular pivot during factorization, a
    transient step that could not complete even at the minimum step
    size, and malformed input.  Each constructor carries the analysis
    name, the time or frequency point, iteration counts and — via
    {!Mna.slot_name} — the {e name} of the node or element involved
    rather than a bare matrix index.

    Diagnostics render two ways: {!pp} for humans and {!to_json} for
    reports and CI (stable key order, no external JSON dependency). *)

type location = {
  analysis : string;  (** ["dc"], ["tran"], ["ac"], a sweep label… *)
  time : float option;  (** transient time point, seconds *)
  freq : float option;  (** AC frequency point, Hz *)
}

val loc : ?time:float -> ?freq:float -> string -> location
(** [loc analysis] builds a {!location}; [?time] and [?freq] default
    to [None]. *)

(** An MNA unknown identified by name: a node voltage or the branch
    current of a voltage-defined element. *)
type unknown = Node of string | Branch of string

(** One rung of the DC convergence-rescue ladder, in escalation
    order. *)
type rung =
  | Plain_newton  (** the ordinary damped Newton attempt *)
  | Damped_newton  (** heavier damping, larger iteration budget *)
  | Gmin_stepping  (** gmin continuation from a large shunt gmin *)
  | Source_stepping  (** all V/I sources ramped from 0 to 100 % *)
  | Pseudo_transient  (** artificial time stepping toward steady state *)

val rung_name : rung -> string
(** Stable lower-case name, e.g. ["source-stepping"]. *)

type attempt = {
  rung : rung;
  iterations : int;  (** Newton iterations spent on this rung *)
  converged : bool;
}
(** One recorded rescue-ladder attempt. *)

type t =
  | No_convergence of {
      loc : location;
      iterations : int;  (** total iterations across all attempts *)
      residual : float;  (** worst residual at the last attempt *)
      worst : unknown option;  (** unknown with the largest residual *)
      attempts : attempt list;  (** the rescue-ladder trace *)
    }  (** every rescue rung was exhausted without convergence *)
  | Singular_pivot of {
      loc : location;
      pivot : int;  (** MNA unknown (column) index; [-1] if unknown *)
      unknown : unknown option;  (** the pivot mapped back to a name *)
    }  (** LU factorization hit a zero or non-finite pivot *)
  | Step_truncated of {
      loc : location;  (** [loc.time] is the first uncompleted time *)
      dt_final : float;  (** smallest step size attempted *)
      retries : int;  (** backoff retries spent on the failing step *)
      completed_points : int;  (** accepted points in the partial waveform *)
    }  (** a transient step failed even at the minimum step size *)
  | Bad_input of { loc : location; what : string }
      (** malformed input detected before solving *)

exception Error of t
(** Raised by engine entry points that cannot return a [result];
    registered with {!Printexc} so uncaught diagnostics print
    readably. *)

val unknown_name : unknown -> string
(** The bare node or element name, without the "node"/"branch"
    qualifier — what static analysis cross-checks solver diagnostics
    against. *)

val unknown_of_slot : Mna.t -> int -> unknown option
(** [unknown_of_slot mna i] names MNA unknown [i] — [Node _] for a
    node-voltage slot, [Branch _] for a branch-current slot, [None]
    when [i] is out of range (e.g. the [-1] used by injected
    faults). *)

val pp : Format.formatter -> t -> unit
(** Human-readable, possibly multi-line rendering (the rescue-ladder
    trace prints one attempt per line). *)

val to_string : t -> string
(** [Format.asprintf "%a" pp]. *)

val to_json : t -> string
(** Stable single-line JSON object with a ["kind"] discriminator
    (["no-convergence"], ["singular-pivot"], ["step-truncated"],
    ["bad-input"]).  Non-finite floats render as the strings ["nan"],
    ["inf"], ["-inf"]. *)
