(** Deterministic fault injection for exercising the solver rescue
    paths.

    A healthy run never enters the DC rescue ladder, the transient
    step-backoff or the sweep retry path; this hook lets tests and the
    [SNOISE_FAULT] environment variable force a failure at an exact,
    reproducible point.  Engines poll {!fire} at each injection site
    and simulate the corresponding failure (a singular factorization,
    a diverged Newton attempt, a failed transient solve) on a hit.

    Environment syntax: [SNOISE_FAULT=<site>:<n>] fails the [n]th
    occurrence of the site counted globally across the process, once;
    [SNOISE_FAULT=<site>:first] fails occurrence #1 within every scope
    (e.g. the first Newton attempt of {e every} DC solve, forcing each
    solve through the rescue ladder).  Site names: [factor],
    [dc-attempt], [tran-solve], [server-kill], [server-delay],
    [server-garble], [server-drop].  Programmatic {!arm} overrides
    the environment.  An empty [SNOISE_FAULT] is treated as unset (a
    supervisor scrubs the variable before restarting a crashed worker
    so a single-shot injected crash cannot loop). *)

type site =
  | Factor  (** a matrix factorization in {!Assembler.solve} *)
  | Dc_attempt  (** one rescue-ladder rung attempt in a DC solve *)
  | Tran_solve  (** one transient time-point solve *)
  | Server_kill
      (** the serving worker process exits abruptly mid-request *)
  | Server_delay  (** a wire reply is delayed before being written *)
  | Server_garble  (** a wire reply line is corrupted *)
  | Server_drop
      (** a client connection is closed instead of replied to *)

type spec =
  | Nth of int  (** fail the [n]th global occurrence (1-based), once *)
  | First_in_scope
      (** fail occurrence #1 of every scope (scope = one solve) *)

val arm : site -> spec -> unit
(** [arm site spec] installs a fault and resets the occurrence
    counters.  At most one fault is armed at a time; arming replaces
    any previous fault. *)

val disarm : unit -> unit
(** Remove the armed fault and reset the counters. *)

val armed : unit -> (site * spec) option
(** Currently armed fault, if any (after consulting the environment at
    most once per process). *)

val fire : ?scope_index:int -> site -> bool
(** [fire ?scope_index site] is polled by the engines at each
    occurrence of [site]; [true] means "simulate a failure here".
    [scope_index] is the 1-based index of the occurrence within the
    current solve (used by {!First_in_scope}; defaults to 0 = not
    scoped).  Thread-safe: with [Nth n], exactly one caller across all
    domains sees [true]. *)

val reset_counters : unit -> unit
(** Reset the global occurrence counters without disarming. *)

val pp : Format.formatter -> site * spec -> unit
(** Render a fault in the [SNOISE_FAULT] syntax. *)
