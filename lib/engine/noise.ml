module C = Sn_circuit
module N = Sn_numerics

let boltzmann = 1.380649e-23
let mos_gamma = 2.0 /. 3.0

type contribution = { element : string; psd : float }

type point = {
  freq : float;
  total_psd : float;
  contributions : contribution list;
}

(* Noise current sources: (element name, node+, node-, PSD in A^2/Hz).
   The MOS channel noise acts between drain and source with
   4 k T gamma gm of the biased device. *)
let noise_sources nl dc ~temperature =
  let four_kt = 4.0 *. boltzmann *. temperature in
  List.filter_map
    (fun e ->
      match e with
      | C.Element.Resistor { name; n1; n2; ohms } ->
        Some (name, n1, n2, four_kt /. ohms)
      | C.Element.Mosfet { name; drain; source; mult; _ } ->
        let op = Dc.mos_operating_point dc name in
        let gm_total = float_of_int mult *. op.C.Mos_model.gm in
        if gm_total > 0.0 then
          Some (name, drain, source, four_kt *. mos_gamma *. gm_total)
        else None
      | C.Element.Capacitor _ | C.Element.Inductor _ | C.Element.Vsource _
      | C.Element.Isource _ | C.Element.Vccs _ | C.Element.Vcvs _
      | C.Element.Varactor _ ->
        None)
    (C.Netlist.elements nl)

let analyze_plan ?(temperature = 300.0) ~dc acp ~output ~freqs =
  let mna = Stamp_plan.mna (Ac_plan.plan acp) in
  let nl = Mna.netlist mna in
  let out_slot = Mna.node_slot mna output in
  if out_slot < 0 then invalid_arg "Noise.analyze: output cannot be ground";
  Array.iter
    (fun f -> if f < 0.0 then invalid_arg "Noise.analyze: negative frequency")
    freqs;
  let sources =
    (* resolve injection slots once; the frequency loop below only does
       numeric work *)
    List.map
      (fun (element, np, nn, psd_i) ->
        (element, Mna.node_slot mna np, Mna.node_slot mna nn, psd_i))
      (noise_sources nl dc ~temperature)
  in
  (* the adjoint stimulus: a unit excitation of the output row, shared
     by every frequency point *)
  let e_out =
    Array.init (Mna.dim mna) (fun i ->
        if i = out_slot then Complex.one else Complex.zero)
  in
  (* pin the pivot order before the pool fans out (byte-identical at
     any jobs width) *)
  if Array.length freqs > 0 then
    Ac_plan.ensure_master ~analysis:"noise" acp ~freq:freqs.(0);
  Pool.map_array (Pool.default ())
    (fun freq ->
      (* adjoint: factor the forward AC system once, then solve
         A^T y = e_out on the same factorization (transpose solve); the
         transfer from a unit current injected into node k to the
         output voltage is y_k *)
      let ws = Ac_plan.domain_workspace acp in
      Ac_plan.prepare_at ~analysis:"noise" acp ws ~freq;
      let y = Ac_plan.solve_transpose ws e_out in
      let gain n = if n < 0 then Complex.zero else y.(n) in
      let contributions =
        List.map
          (fun (element, sp, sn, psd_i) ->
            let h = Complex.sub (gain sp) (gain sn) in
            (* Complex.norm2 is |h|^2 *)
            { element; psd = Complex.norm2 h *. psd_i })
          sources
        |> List.sort (fun a b -> compare b.psd a.psd)
      in
      let total_psd =
        List.fold_left (fun acc c -> acc +. c.psd) 0.0 contributions
      in
      { freq; total_psd; contributions })
    freqs
  |> Array.to_list

let analyze ?dc ?temperature nl ~output ~freqs =
  let mna = Mna.build nl in
  let dc = match dc with Some d -> d | None -> Dc.solve_mna mna in
  let acp = Ac_plan.of_dc (Stamp_plan.build mna) dc in
  analyze_plan ?temperature ~dc acp ~output ~freqs

let total_rms points =
  match points with
  | [] | [ _ ] -> invalid_arg "Noise.total_rms: need at least 2 points"
  | _ ->
    let rec integrate acc = function
      | a :: (b :: _ as rest) ->
        integrate
          (acc
          +. (0.5 *. (a.total_psd +. b.total_psd) *. (b.freq -. a.freq)))
          rest
      | [ _ ] | [] -> acc
    in
    sqrt (integrate 0.0 points)

let spot_nv p = 1.0e9 *. sqrt p.total_psd
