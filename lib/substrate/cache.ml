(* Content-addressed macromodel cache.

   A reduced tile model is a pure function of the branch list it was
   reduced from (grid slice geometry and technology numbers are folded
   into the branch conductances), the retained-node labels and the
   solver settings — so the cache key is a digest over exactly that
   serialized content, and a hit can skip the tile reduction entirely.
   Entries persist as versioned Marshal payloads behind a magic
   header; anything unreadable (truncated file, stale version, label
   mismatch) is treated as a miss and recomputed. *)

let log_src = Logs.Src.create "sn.subcache" ~doc:"substrate macromodel cache"

module Log = (val Logs.src_log log_src : Logs.LOG)

module N = Sn_numerics

(* 3: a signed passivity certificate rides alongside each entry, so a
   warm artifact can be re-verified (psd + untampered) by hashing
   alone — no re-extraction, no refactorization.  The version field
   is first in [payload] and checked before any other field is
   touched, so older entries are clean misses. *)
let format_version = 3

type t = { dir : string }

type tile_model = {
  labels : string array;
  matrix : float array;
  iterations : int;
  form : string;
}

(* payload written to disk; [version] is checked on read so a format
   bump invalidates old entries instead of misreading them *)
type payload = {
  version : int;
  model : tile_model;
  cert : N.Passivity.cert option;
      (** [None] only when the matrix failed certification at store
          time — recorded rather than refused, so the verify pass can
          point at it *)
}

let magic = "snoise-tile-cache\n"

let dir t = t.dir

let create ~dir =
  (* best-effort mkdir -p over the last two path components; an
     unreachable directory degrades to a cache that never hits *)
  let rec ensure d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      ensure (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ()
    end
  in
  ensure dir;
  { dir }

let hex_key material = Digest.to_hex (Digest.string material)

let path t ~key = Filename.concat t.dir (key ^ ".tile")

let model_mat model =
  let dim = Array.length model.labels in
  N.Mat.of_flat ~rows:dim ~cols:dim model.matrix

let read_payload file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if not (String.equal m magic) then None
      else
        let (p : payload) = Marshal.from_channel ic in
        if p.version = format_version then Some p else None)

(* process-wide counters, reported by [snoise runtime] and the
   server's stats / verify verbs *)
let n_lookups = Atomic.make 0
let n_hits = Atomic.make 0
let n_rejected = Atomic.make 0
let n_stores = Atomic.make 0

type counters = { lookups : int; hits : int; rejected : int; stores : int }

let counters () =
  {
    lookups = Atomic.get n_lookups;
    hits = Atomic.get n_hits;
    rejected = Atomic.get n_rejected;
    stores = Atomic.get n_stores;
  }

let reset_counters () =
  List.iter (fun c -> Atomic.set c 0) [ n_lookups; n_hits; n_rejected; n_stores ]

let lookup t ~key =
  Atomic.incr n_lookups;
  let file = path t ~key in
  match read_payload file with
  | Some p -> (
    (* a certified entry must still verify against its own bytes: a
       corrupted matrix or a certificate pasted from another artifact
       is a miss, not a wrong answer *)
    match p.cert with
    | Some cert when not (N.Passivity.verify ~context:key (model_mat p.model) cert)
      ->
      Atomic.incr n_rejected;
      Log.warn (fun m ->
          m "cache entry %s fails certificate verification: recomputing" file);
      None
    | _ ->
      Atomic.incr n_hits;
      Some p.model)
  | None -> None
  | exception _ ->
    (* missing, truncated or corrupted entry: fall back to recompute *)
    if Sys.file_exists file then
      Log.warn (fun m -> m "unreadable cache entry %s: recomputing" file);
    None

let store t ~key model =
  (* write-to-temp + rename so concurrent readers never observe a
     partial entry; failures only cost the caching, never the result *)
  try
    Atomic.incr n_stores;
    let file = path t ~key in
    let cert = N.Passivity.certify ~context:key (model_mat model) in
    if cert = None then
      Log.warn (fun m ->
          m "tile model %s is not passive: stored without certificate" key);
    let tmp =
      Filename.temp_file ~temp_dir:t.dir "tile-"
        ("." ^ string_of_int (Unix.getpid ()))
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        Marshal.to_channel oc { version = format_version; model; cert } []);
    Sys.rename tmp file
  with _ -> Log.warn (fun m -> m "cache store failed under %s" t.dir)

(* ------------------------------------------------------------------ *)
(* certificate verification of a whole cache directory: every entry is
   re-judged from its bytes alone — signature hashing for certified
   entries, a fresh LDL^T for uncertified ones — with no extraction
   and no CG work, which is the point of storing certificates. *)

type entry_status =
  | Certified  (** signature verifies against the entry's own bytes *)
  | Recertified
      (** no stored certificate, but the matrix passes a fresh PSD
          check now *)
  | Stale  (** older format version: a clean miss for the extractor *)
  | Bad of string  (** corrupt, tampered, or genuinely non-passive *)

type verification = {
  vf_entries : (string * entry_status) list;  (** key, judgement *)
  vf_certified : int;
  vf_recertified : int;
  vf_stale : int;
  vf_bad : int;
}

let verify_entry t ~key =
  let file = path t ~key in
  match read_payload file with
  | Some p -> (
    let mat = model_mat p.model in
    match p.cert with
    | Some cert ->
      if N.Passivity.verify ~context:key mat cert then Certified
      else Bad "certificate signature does not match entry bytes"
    | None ->
      let v = N.Passivity.psd mat in
      if N.Passivity.passes v then Recertified
      else
        Bad
          (Printf.sprintf
             "matrix is not passive (LDL^T pivot %.3g at index %d)"
             v.N.Passivity.defect v.N.Passivity.index))
  | None -> Stale
  | exception _ -> Bad "unreadable entry (truncated or corrupt)"

let status_name = function
  | Certified -> "certified"
  | Recertified -> "recertified"
  | Stale -> "stale"
  | Bad _ -> "bad"

let verify_dir t =
  let keys =
    (try Sys.readdir t.dir with Sys_error _ -> [||])
    |> Array.to_list
    |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".tile" f)
    |> List.sort String.compare
  in
  let entries = List.map (fun key -> (key, verify_entry t ~key)) keys in
  let count p = List.length (List.filter (fun (_, s) -> p s) entries) in
  {
    vf_entries = entries;
    vf_certified = count (fun s -> s = Certified);
    vf_recertified = count (fun s -> s = Recertified);
    vf_stale = count (fun s -> s = Stale);
    vf_bad = count (function Bad _ -> true | _ -> false);
  }

(* process-wide default, the CLI / SNOISE_CACHE_DIR knob.
   Unset reads the environment on first use; Disabled (--no-cache)
   wins over the environment.  Each resolved state remembers where it
   came from so `snoise runtime` and the server's stats request can
   report why a run was warm or cold. *)

type origin = Flag | Env | No_cache_flag | Unset_default

type resolution = { origin : origin; dir : string option }

let origin_name = function
  | Flag -> "--cache-dir"
  | Env -> "SNOISE_CACHE_DIR"
  | No_cache_flag -> "--no-cache"
  | Unset_default -> "unset"

type selection = Unset | Disabled of origin | Selected of t * origin

let selection = Atomic.make Unset

let set_default_dir = function
  | None -> Atomic.set selection (Disabled No_cache_flag)
  | Some d -> Atomic.set selection (Selected (create ~dir:d, Flag))

let default () =
  match Atomic.get selection with
  | Selected (c, _) -> Some c
  | Disabled _ -> None
  | Unset -> (
    match Sys.getenv_opt "SNOISE_CACHE_DIR" with
    | Some d when String.trim d <> "" ->
      let c = create ~dir:d in
      Atomic.set selection (Selected (c, Env));
      Some c
    | _ ->
      Atomic.set selection (Disabled Unset_default);
      None)

let resolution () =
  (* force the lazy environment read so the answer matches what
     Extractor.extract would actually consult *)
  ignore (default ());
  match Atomic.get selection with
  | Selected (c, origin) -> { origin; dir = Some c.dir }
  | Disabled origin -> { origin; dir = None }
  | Unset -> { origin = Unset_default; dir = None }

let pp_resolution fmt r =
  match r.dir with
  | Some d -> Format.fprintf fmt "%s (from %s)" d (origin_name r.origin)
  | None ->
    if r.origin = No_cache_flag then
      Format.fprintf fmt "disabled (%s)" (origin_name r.origin)
    else
      Format.fprintf fmt
        "disabled (no --cache-dir and no SNOISE_CACHE_DIR set)"
