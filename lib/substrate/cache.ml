(* Content-addressed macromodel cache.

   A reduced tile model is a pure function of the branch list it was
   reduced from (grid slice geometry and technology numbers are folded
   into the branch conductances), the retained-node labels and the
   solver settings — so the cache key is a digest over exactly that
   serialized content, and a hit can skip the tile reduction entirely.
   Entries persist as versioned Marshal payloads behind a magic
   header; anything unreadable (truncated file, stale version, label
   mismatch) is treated as a miss and recomputed. *)

let log_src = Logs.Src.create "sn.subcache" ~doc:"substrate macromodel cache"

module Log = (val Logs.src_log log_src : Logs.LOG)

let format_version = 2

type t = { dir : string }

type tile_model = {
  labels : string array;
  matrix : float array;
  iterations : int;
  form : string;
}

(* payload written to disk; [version] is checked on read so a format
   bump invalidates old entries instead of misreading them *)
type payload = { version : int; model : tile_model }

let magic = "snoise-tile-cache\n"

let dir t = t.dir

let create ~dir =
  (* best-effort mkdir -p over the last two path components; an
     unreachable directory degrades to a cache that never hits *)
  let rec ensure d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      ensure (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ()
    end
  in
  ensure dir;
  { dir }

let hex_key material = Digest.to_hex (Digest.string material)

let path t ~key = Filename.concat t.dir (key ^ ".tile")

let lookup t ~key =
  let file = path t ~key in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let m = really_input_string ic (String.length magic) in
        if not (String.equal m magic) then None
        else
          let (p : payload) = Marshal.from_channel ic in
          if p.version = format_version then Some p.model else None)
  with
  | result -> result
  | exception _ ->
    (* missing, truncated or corrupted entry: fall back to recompute *)
    if Sys.file_exists file then
      Log.warn (fun m -> m "unreadable cache entry %s: recomputing" file);
    None

let store t ~key model =
  (* write-to-temp + rename so concurrent readers never observe a
     partial entry; failures only cost the caching, never the result *)
  try
    let file = path t ~key in
    let tmp =
      Filename.temp_file ~temp_dir:t.dir "tile-"
        ("." ^ string_of_int (Unix.getpid ()))
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        Marshal.to_channel oc { version = format_version; model } []);
    Sys.rename tmp file
  with _ -> Log.warn (fun m -> m "cache store failed under %s" t.dir)

(* process-wide default, the CLI / SNOISE_CACHE_DIR knob.
   Unset reads the environment on first use; Disabled (--no-cache)
   wins over the environment.  Each resolved state remembers where it
   came from so `snoise runtime` and the server's stats request can
   report why a run was warm or cold. *)

type origin = Flag | Env | No_cache_flag | Unset_default

type resolution = { origin : origin; dir : string option }

let origin_name = function
  | Flag -> "--cache-dir"
  | Env -> "SNOISE_CACHE_DIR"
  | No_cache_flag -> "--no-cache"
  | Unset_default -> "unset"

type selection = Unset | Disabled of origin | Selected of t * origin

let selection = Atomic.make Unset

let set_default_dir = function
  | None -> Atomic.set selection (Disabled No_cache_flag)
  | Some d -> Atomic.set selection (Selected (create ~dir:d, Flag))

let default () =
  match Atomic.get selection with
  | Selected (c, _) -> Some c
  | Disabled _ -> None
  | Unset -> (
    match Sys.getenv_opt "SNOISE_CACHE_DIR" with
    | Some d when String.trim d <> "" ->
      let c = create ~dir:d in
      Atomic.set selection (Selected (c, Env));
      Some c
    | _ ->
      Atomic.set selection (Disabled Unset_default);
      None)

let resolution () =
  (* force the lazy environment read so the answer matches what
     Extractor.extract would actually consult *)
  ignore (default ());
  match Atomic.get selection with
  | Selected (c, origin) -> { origin; dir = Some c.dir }
  | Disabled origin -> { origin; dir = None }
  | Unset -> { origin = Unset_default; dir = None }

let pp_resolution fmt r =
  match r.dir with
  | Some d -> Format.fprintf fmt "%s (from %s)" d (origin_name r.origin)
  | None ->
    if r.origin = No_cache_flag then
      Format.fprintf fmt "disabled (%s)" (origin_name r.origin)
    else
      Format.fprintf fmt
        "disabled (no --cache-dir and no SNOISE_CACHE_DIR set)"
