(** Content-addressed cache of reduced tile macromodels.

    A tile's reduced conductance matrix is a pure function of the
    serialized content {!Extractor} hashes into the key: the tile's
    branch list (grid slice geometry and technology numbers are folded
    into the branch conductances), the retained-node labels, and the
    solver settings.  Keying by content means incremental layout edits
    and corner sweeps re-reduce only the tiles whose inputs actually
    changed, while warm extractions skip the reduction entirely.

    Entries persist on disk (conventionally under [_snoise_cache/]) as
    versioned [Marshal] payloads behind a magic header.  Reads are
    fail-soft: a truncated, corrupted or version-stale entry is a miss
    that falls back to recomputation. *)

type t
(** A handle on one cache directory. *)

(** A cached reduced tile. *)
type tile_model = {
  labels : string array;
      (** retained-node labels in matrix order — verified against the
          extraction on a hit, so a stale entry can never be scattered
          into the wrong slots *)
  matrix : float array;
      (** row-major reduced conductance matrix over the retained
          nodes *)
  iterations : int;  (** CG iterations spent producing the entry *)
  form : string;
      (** solver/reduction configuration tag the entry was produced
          under (["exact"], or a {!Snoise.Reduced_model.config_digest}
          string when the flow runs with model-order reduction) —
          verified against the extraction on a hit, so reduced and
          exact artifacts can never collide even across format
          versions *)
}

val create : dir:string -> t
(** [create ~dir] binds a cache to [dir], creating it (best-effort,
    [mkdir -p] style) when missing.  An unwritable directory degrades
    to a cache that never hits — extraction results are never
    affected. *)

val dir : t -> string
(** The cache directory. *)

val hex_key : string -> string
(** [hex_key material] digests serialized key material into the hex
    file-name key. *)

val lookup : t -> key:string -> tile_model option
(** [lookup t ~key] returns the cached model, or [None] on a miss —
    including any unreadable or version-stale entry, and any entry
    whose passivity certificate no longer verifies against its own
    bytes (corruption and tampering downgrade to recomputation, never
    to a wrong answer). *)

val store : t -> key:string -> tile_model -> unit
(** [store t ~key model] persists an entry atomically (temp file +
    rename), together with a signed passivity certificate
    ({!Sn_numerics.Passivity.certify} over the reduced matrix, bound
    to [key]); a non-passive matrix — which a healthy extraction never
    produces — is stored uncertified and flagged by {!verify_dir}.
    Failures are logged and swallowed: caching is an optimization,
    never a correctness dependency. *)

val format_version : int
(** Serialization format version; bumping it invalidates every
    existing entry.  Version 3 added the passivity certificate. *)

(** {1 Certificate verification}

    [snoise verify --cache-dir DIR] and the server's [verify] verb
    re-judge every entry from its bytes alone: signature hashing for
    certified entries (O(dim²)), a fresh LDLᵀ for uncertified ones —
    never an extraction, never a CG iteration. *)

(** How one entry verified. *)
type entry_status =
  | Certified  (** stored signature verifies against the entry bytes *)
  | Recertified
      (** no stored certificate (pre-certificate writer or a store
          that failed certification), but the matrix passes a fresh
          PSD check *)
  | Stale
      (** older format version — harmless, the extractor treats it as
          a miss *)
  | Bad of string  (** corrupt, tampered or genuinely non-passive *)

type verification = {
  vf_entries : (string * entry_status) list;
      (** (key, judgement), sorted by key *)
  vf_certified : int;
  vf_recertified : int;
  vf_stale : int;
  vf_bad : int;
}

val status_name : entry_status -> string
(** Stable kebab-case name for JSON output: ["certified"],
    ["recertified"], ["stale"], ["bad"]. *)

val verify_entry : t -> key:string -> entry_status
(** Judge a single entry. *)

val verify_dir : t -> verification
(** Judge every [*.tile] entry under the cache directory.  A cache
    passes verification iff [vf_bad = 0]. *)

(** {1 Process-wide counters} *)

type counters = {
  lookups : int;
  hits : int;  (** lookups that returned a (verified) model *)
  rejected : int;
      (** lookups whose entry was readable but failed certificate
          verification — corruption or tampering caught in time *)
  stores : int;
}

val counters : unit -> counters
(** Lifetime totals for this process ([snoise runtime], server
    stats). *)

val reset_counters : unit -> unit

(** {1 Process-wide default}

    The CLI flags [--cache-dir DIR] / [--no-cache] and the
    [SNOISE_CACHE_DIR] environment variable select the default cache
    consulted by {!Extractor.extract} when no explicit cache is
    passed. *)

val set_default_dir : string option -> unit
(** [set_default_dir (Some d)] selects [d]; [set_default_dir None]
    disables caching for the process, overriding the environment. *)

val default : unit -> t option
(** The selected default cache: the last {!set_default_dir}, else
    [SNOISE_CACHE_DIR] from the environment, else [None] (caching
    off). *)

(** Where the process-wide default came from, in precedence order:
    the CLI flags beat the environment, and an untouched process
    reports [Unset_default]. *)
type origin =
  | Flag  (** [--cache-dir DIR] (a {!set_default_dir} with a path) *)
  | Env  (** [SNOISE_CACHE_DIR] from the environment *)
  | No_cache_flag  (** [--no-cache] (a {!set_default_dir} with [None]) *)
  | Unset_default  (** nothing selected: caching off *)

type resolution = { origin : origin; dir : string option }
(** The resolved default-cache state: [dir] is [None] exactly when
    caching is off. *)

val origin_name : origin -> string
(** Stable name for reports and the server stats JSON:
    ["--cache-dir"], ["SNOISE_CACHE_DIR"], ["--no-cache"] or
    ["unset"]. *)

val resolution : unit -> resolution
(** How the default cache resolved for this process — what
    [snoise runtime] and the server's [stats] reply report, so
    warm-vs-cold extraction behaviour is diagnosable. *)

val pp_resolution : Format.formatter -> resolution -> unit
(** E.g. ["/tmp/tiles (from SNOISE_CACHE_DIR)"] or
    ["disabled (no --cache-dir and no SNOISE_CACHE_DIR set)"]. *)
