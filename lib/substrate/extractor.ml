module G = Sn_geometry
module N = Sn_numerics
module T = Sn_tech.Tech
module Pool = Sn_engine.Pool

let log_src = Logs.Src.create "sn.substrate" ~doc:"substrate extraction"

module Log = (val Logs.src_log log_src : Logs.LOG)

type solver = Mg_cg | Jacobi_cg | Direct

type stats = {
  grid_cells : int;
  ports : int;
  tiles : int;
  interface_nodes : int;
  cg_iterations_total : int;
  mg_levels : int;
  assemble_seconds : float;
  reduce_seconds : float;
  stitch_seconds : float;
  cache_hits : int;
  cache_misses : int;
  elapsed_seconds : float;
}

(* atomic: concurrent extractions on pool workers (Sn_engine.Pool)
   must not tear the record; last writer wins *)
let stats_ref : stats option Atomic.t = Atomic.make None
let last_stats () = Atomic.get stats_ref

(* Overlap area (um^2) of a port with one surface cell. *)
let overlap_area (port : Port.t) cell_rect =
  List.fold_left
    (fun acc r ->
      match G.Rect.intersection r cell_rect with
      | Some o -> acc +. G.Rect.area o
      | None -> acc)
    0.0 port.Port.region

let well_capacitance (profile : T.substrate_profile) (port : Port.t) =
  let um2 = T.micron *. T.micron in
  List.fold_left
    (fun acc r ->
      acc
      +. (G.Rect.area r *. um2 *. profile.T.nwell_cap_area)
      +. (G.Rect.perimeter r *. T.micron *. profile.T.nwell_cap_perimeter))
    0.0 port.Port.region

(* ------------------------------------------------------------------ *)
(* unboxed growable branch buffers: one per tile, holding every
   conductance branch in tile-local numbering (interior cells first,
   then retained nodes).  The buffer is both the assembly input of the
   tile reduction and the content the cache key digests. *)

type branchbuf = {
  mutable bi : int array;
  mutable bj : int array;
  mutable bg : float array;
  mutable blen : int;
}

let bb_create () =
  { bi = Array.make 64 0; bj = Array.make 64 0; bg = Array.make 64 0.0;
    blen = 0 }

let bb_push b i j g =
  if b.blen = Array.length b.bi then begin
    let cap = 2 * b.blen in
    let bi = Array.make cap 0 and bj = Array.make cap 0 in
    let bg = Array.make cap 0.0 in
    Array.blit b.bi 0 bi 0 b.blen;
    Array.blit b.bj 0 bj 0 b.blen;
    Array.blit b.bg 0 bg 0 b.blen;
    b.bi <- bi;
    b.bj <- bj;
    b.bg <- bg
  end;
  b.bi.(b.blen) <- i;
  b.bj.(b.blen) <- j;
  b.bg.(b.blen) <- g;
  b.blen <- b.blen + 1

(* ------------------------------------------------------------------ *)
(* per-tile reduction state *)

type solve_state = {
  aii : N.Sparse.t;
  mg : N.Mg.t option;
  brow_idx : int array array; (* sparse A_ri rows over interior, per retained *)
  brow_val : float array array;
  abb : float array; (* r x r retained block, row-major *)
}

type tile_work = {
  t_id : int;
  n_i : int;
  r : int;
  labels : string array;
  key : string option;
  mutable s : float array; (* reduced r x r tile matrix *)
  mutable from_cache : bool;
  mutable iters : int;
  mutable solve : solve_state option;
}

let cell_of_interior (tl : Tiling.tile) li =
  let w = tl.Tiling.ix1 - tl.Tiling.ix0 in
  let h = tl.Tiling.iy1 - tl.Tiling.iy0 in
  let iz = li / (w * h) in
  let rem = li mod (w * h) in
  (tl.Tiling.ix0 + (rem mod w), tl.Tiling.iy0 + (rem / w), iz)

let zero_diag_error tl li =
  let ix, iy, iz = cell_of_interior tl li in
  invalid_arg
    (Printf.sprintf
       "Extractor: grid cell (%d,%d,%d) has a zero diagonal — the cell is \
        disconnected from the conductance network"
       ix iy iz)

(* cache key material: everything the reduced tile matrix depends on —
   solver settings, the downstream reduction configuration tag, the
   interior box shape, retained labels and the full branch list (grid
   spacings and technology numbers are already folded into the branch
   conductances) *)
let key_material ~solver ~form ~tol ~dims:(w, h, d) ~n_i ~labels
    (bb : branchbuf) =
  let buf = Buffer.create (64 + (20 * bb.blen)) in
  Buffer.add_string buf "snoise-tile/";
  Buffer.add_string buf (string_of_int Cache.format_version);
  Buffer.add_char buf '/';
  Buffer.add_string buf form;
  (match solver with
   | Direct -> Buffer.add_string buf "/direct"
   | Mg_cg | Jacobi_cg ->
     (* both CG flavours converge to the same tolerance: identical
        keys let a Jacobi run warm an MG run and vice versa *)
     Buffer.add_string buf "/cg:";
     Buffer.add_int64_le buf (Int64.bits_of_float tol));
  List.iter
    (fun v ->
      Buffer.add_char buf '/';
      Buffer.add_string buf (string_of_int v))
    [ w; h; d; n_i; Array.length labels ];
  Array.iter
    (fun l ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf l)
    labels;
  Buffer.add_char buf '\x00';
  for k = 0 to bb.blen - 1 do
    Buffer.add_int32_le buf (Int32.of_int bb.bi.(k));
    Buffer.add_int32_le buf (Int32.of_int bb.bj.(k));
    Buffer.add_int64_le buf (Int64.bits_of_float bb.bg.(k))
  done;
  Buffer.contents buf

let extract ?(config = Grid.default_config) ?(grounded_backplane = false)
    ?(solver = Mg_cg) ?(tiles = (1, 1)) ?cache ?(tol = 1e-13) ?reduction
    ~tech ~die ports =
  if ports = [] then invalid_arg "Extractor.extract: no ports";
  (* artifact namespace tag: runs targeting a PRIMA-reduced flow must
     never share entries with exact runs, whatever the format version *)
  let form = match reduction with None -> "exact" | Some d -> d in
  List.iter
    (fun (p : Port.t) ->
      List.iter
        (fun r ->
          if not (G.Rect.intersects die r) then
            invalid_arg
              (Printf.sprintf "Extractor.extract: port %s outside die"
                 p.Port.name))
        p.Port.region)
    ports;
  let t0 = Unix.gettimeofday () in
  let cache = match cache with Some c -> Some c | None -> Cache.default () in
  let profile = tech.T.substrate in
  let surface_ports = ports in
  (* snap grid lines to every port rectangle edge so thin rings and
     gaps are resolved exactly rather than aliased *)
  let snap_x, snap_y =
    List.fold_left
      (fun (xs, ys) (p : Port.t) ->
        List.fold_left
          (fun (xs, ys) (r : G.Rect.t) ->
            ( r.G.Rect.x0 :: r.G.Rect.x1 :: xs,
              r.G.Rect.y0 :: r.G.Rect.y1 :: ys ))
          (xs, ys) p.Port.region)
      ([], []) surface_ports
  in
  let grid = Grid.build ~snap_x ~snap_y config ~die profile in
  let n = Grid.cell_count grid in
  let nx = Grid.nx grid and ny = Grid.ny grid and nz = Grid.nz grid in
  let ports_arr =
    if grounded_backplane then
      Array.of_list
        (ports @ [ Port.v ~name:"backplane" ~kind:Port.Resistive [ die ] ])
    else Array.of_list ports
  in
  let np = Array.length ports_arr in
  (match Tiling.degenerate ~tiles ~grid:(nx, ny) ~ports:np with
   | Some why -> Log.warn (fun m -> m "degenerate tiling: %s" why)
   | None -> ());
  let plan = Tiling.plan ~tiles ~nx ~ny ~nz in
  let n_tiles = Tiling.count plan in
  Log.info (fun m ->
      m "grid %dx%dx%d (%d cells), %d ports, %dx%d tiles" nx ny nz n np
        (fst (Tiling.shape plan))
        (snd (Tiling.shape plan)));
  (* --- assemble phase ------------------------------------------- *)
  (* interface cells per tile (ascending global index) and, per cell,
     its tile-local slot: interior index when >= 0, interface retained
     position encoded as -(pos) - 1 *)
  let iface = Array.init n_tiles (fun id -> Tiling.interface_cells plan id) in
  let interface_nodes = Array.fold_left (fun a c -> a + Array.length c) 0 iface in
  let nxy = nx * ny in
  let cell_slot = Array.make n 0 in
  Array.iteri
    (fun id (tl : Tiling.tile) ->
      for iz = 0 to nz - 1 do
        for iy = tl.Tiling.y0 to tl.Tiling.y1 - 1 do
          for ix = tl.Tiling.x0 to tl.Tiling.x1 - 1 do
            if Tiling.is_interior tl ~ix ~iy then
              cell_slot.((iz * nxy) + (iy * nx) + ix) <-
                Tiling.interior_index tl ~nz ~ix ~iy ~iz
          done
        done
      done;
      Array.iteri
        (fun pos cell -> cell_slot.(cell) <- -pos - 1)
        iface.(id))
    plan.Tiling.tiles;
  let tile_of_cell cell = plan.Tiling.tile_of.(cell mod nxy) in
  (* contact scan: port coverage and, per tile, which ports touch it *)
  let um2 = T.micron *. T.micron in
  let coverage = Array.make np 0.0 in
  let port_touches = Array.make_matrix n_tiles np false in
  let contacts = Array.init n_tiles (fun _ -> bb_create ()) in
  let add_contact cell p g =
    let t = tile_of_cell cell in
    port_touches.(t).(p) <- true;
    (* stash (cell, port) in the tile's contact buffer; rewritten to
       tile-local numbering once retained slots are known *)
    bb_push contacts.(t) cell p g;
    coverage.(p) <- coverage.(p) +. g
  in
  for iy = 0 to ny - 1 do
    for ix = 0 to nx - 1 do
      let cell_rect = Grid.surface_cell_rect grid ix iy in
      let cell = Grid.cell_index grid ix iy 0 in
      Array.iteri
        (fun p port ->
          let a_um2 = overlap_area port cell_rect in
          if a_um2 > 0.0 then
            add_contact cell p (a_um2 *. um2 /. profile.T.contact_resistance))
        ports_arr
    done
  done;
  (* metallized backside: the last port couples to every bottom cell *)
  if grounded_backplane then begin
    let p = np - 1 in
    let iz = nz - 1 in
    for iy = 0 to ny - 1 do
      for ix = 0 to nx - 1 do
        let cell = Grid.cell_index grid ix iy iz in
        let area = Grid.dx grid ix *. Grid.dy grid iy in
        add_contact cell p (area /. profile.T.contact_resistance)
      done
    done
  end;
  Array.iteri
    (fun p c ->
      if c <= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Extractor.extract: port %s overlaps no surface cell"
             ports_arr.(p).Port.name))
    coverage;
  (* retained-node layout per tile: interface cells first (ascending
     global index), then the tile's ports (ascending port index) *)
  let tile_ports =
    Array.init n_tiles (fun t ->
        let acc = ref [] in
        for p = np - 1 downto 0 do
          if port_touches.(t).(p) then acc := p :: !acc
        done;
        Array.of_list !acc)
  in
  let port_slot = Array.make_matrix n_tiles np (-1) in
  Array.iteri
    (fun t ps ->
      let m_t = Array.length iface.(t) in
      Array.iteri (fun k p -> port_slot.(t).(p) <- m_t + k) ps)
    tile_ports;
  let interior_count =
    Array.map
      (fun (tl : Tiling.tile) ->
        let w, h, d = Tiling.interior_dims tl ~nz in
        w * h * d)
      plan.Tiling.tiles
  in
  let retained_count =
    Array.init n_tiles (fun t ->
        Array.length iface.(t) + Array.length tile_ports.(t))
  in
  (* branch buffers in tile-local numbering: interior index, or
     n_i + retained slot *)
  let branches = Array.init n_tiles (fun _ -> bb_create ()) in
  let local_of_cell t cell =
    let s = cell_slot.(cell) in
    if s >= 0 then s else interior_count.(t) + (-s - 1)
  in
  let stitch = bb_create () in
  Grid.iter_conductances grid (fun a b g ->
      let ta = tile_of_cell a and tb = tile_of_cell b in
      if ta = tb then
        bb_push branches.(ta) (local_of_cell ta a) (local_of_cell ta b) g
      else
        (* a lateral cut edge: both endpoints are interface cells *)
        bb_push stitch a b g);
  Array.iteri
    (fun t cb ->
      for k = 0 to cb.blen - 1 do
        let cell = cb.bi.(k) and p = cb.bj.(k) in
        bb_push branches.(t) (local_of_cell t cell)
          (interior_count.(t) + port_slot.(t).(p))
          cb.bg.(k)
      done)
    contacts;
  let labels =
    Array.init n_tiles (fun t ->
        Array.append
          (Array.map (fun c -> "c" ^ string_of_int c) iface.(t))
          (Array.map
             (fun p -> "p:" ^ ports_arr.(p).Port.name)
             tile_ports.(t)))
  in
  let t_assemble = Unix.gettimeofday () in
  (* --- reduce phase ---------------------------------------------- *)
  let pool = Pool.default () in
  let total_iters = Atomic.make 0 in
  let prepare_tile t_id =
    let tl = plan.Tiling.tiles.(t_id) in
    let n_i = interior_count.(t_id) in
    let r = retained_count.(t_id) in
    let bb = branches.(t_id) in
    let key =
      match cache with
      | None -> None
      | Some _ ->
        Some
          (Cache.hex_key
             (key_material ~solver ~form ~tol
                ~dims:(Tiling.interior_dims tl ~nz)
                ~n_i ~labels:labels.(t_id) bb))
    in
    let work =
      {
        t_id;
        n_i;
        r;
        labels = labels.(t_id);
        key;
        s = [||];
        from_cache = false;
        iters = 0;
        solve = None;
      }
    in
    let cached =
      match (cache, key) with
      | Some c, Some k -> (
        match Cache.lookup c ~key:k with
        | Some m
          when m.Cache.labels = labels.(t_id)
               && Array.length m.Cache.matrix = r * r
               && String.equal m.Cache.form form ->
          Some m
        | Some _ ->
          Log.warn (fun f ->
              f "cache entry %s does not match its key: recomputing" k);
          None
        | None -> None)
      | _ -> None
    in
    (match cached with
     | Some m ->
       work.s <- m.Cache.matrix;
       work.iters <- m.Cache.iterations;
       work.from_cache <- true
     | None -> (
       match solver with
       | Direct ->
         let edges = ref [] in
         for k = bb.blen - 1 downto 0 do
           edges := (bb.bi.(k), bb.bj.(k), bb.bg.(k)) :: !edges
         done;
         let net =
           Elimination.of_conductances ~n:(n_i + r)
             ~ports:(Array.init r (fun k -> n_i + k))
             !edges
         in
         Elimination.eliminate_internal net;
         let s = Elimination.port_conductance net in
         work.s <- Array.init (r * r) (fun k -> N.Mat.get s (k / r) (k mod r))
       | Mg_cg | Jacobi_cg ->
         let builder = N.Sparse.builder (max n_i 1) (max n_i 1) in
         let brow = Array.init r (fun _ -> Hashtbl.create 16) in
         let abb = Array.make (r * r) 0.0 in
         for k = 0 to bb.blen - 1 do
           let u = bb.bi.(k) and v = bb.bj.(k) and g = bb.bg.(k) in
           let stamp_cross i rq =
             (* interior i against retained rq *)
             N.Sparse.add builder i i g;
             abb.((rq * r) + rq) <- abb.((rq * r) + rq) +. g;
             let tbl = brow.(rq) in
             let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl i) in
             Hashtbl.replace tbl i (cur -. g)
           in
           match (u < n_i, v < n_i) with
           | true, true ->
             N.Sparse.add builder u u g;
             N.Sparse.add builder v v g;
             N.Sparse.add builder u v (-.g);
             N.Sparse.add builder v u (-.g)
           | true, false -> stamp_cross u (v - n_i)
           | false, true -> stamp_cross v (u - n_i)
           | false, false ->
             let ru = u - n_i and rv = v - n_i in
             abb.((ru * r) + ru) <- abb.((ru * r) + ru) +. g;
             abb.((rv * r) + rv) <- abb.((rv * r) + rv) +. g;
             abb.((ru * r) + rv) <- abb.((ru * r) + rv) -. g;
             abb.((rv * r) + ru) <- abb.((rv * r) + ru) -. g
         done;
         if n_i = 0 then work.s <- abb
         else begin
           let aii = N.Sparse.finalize builder in
           let mg =
             match solver with
             | Mg_cg -> (
               try
                 Some
                   (N.Mg.build ~dims:(Tiling.interior_dims tl ~nz) aii)
               with N.Cg.Zero_diagonal li -> zero_diag_error tl li)
             | _ -> None
           in
           let brow_idx = Array.make r [||] in
           let brow_val = Array.make r [||] in
           Array.iteri
             (fun rq tbl ->
               let entries =
                 Hashtbl.fold (fun i v acc -> (i, v) :: acc) tbl []
                 |> List.sort (fun (a, _) (b, _) -> compare a b)
               in
               brow_idx.(rq) <- Array.of_list (List.map fst entries);
               brow_val.(rq) <- Array.of_list (List.map snd entries))
             brow;
           work.s <- Array.make (r * r) 0.0;
           work.solve <- Some { aii; mg; brow_idx; brow_val; abb }
         end));
    work
  in
  let works = Pool.map_array pool prepare_tile (Array.init n_tiles Fun.id) in
  (* flatten the remaining Schur columns of every missed tile into one
     batch: tile- and port-level parallelism share the same pool *)
  let columns =
    Array.concat
      (Array.to_list
         (Array.map
            (fun w ->
              match w.solve with
              | None -> [||]
              | Some _ -> Array.init w.r (fun q -> (w, q)))
            works))
  in
  Pool.run pool ~n:(Array.length columns) (fun k ->
      let w, q = columns.(k) in
      let st = Option.get w.solve in
      let tl = plan.Tiling.tiles.(w.t_id) in
      let r = w.r in
      let idx_q = st.brow_idx.(q) and val_q = st.brow_val.(q) in
      let x =
        if Array.length idx_q = 0 then None
        else begin
          let rhs = Array.make w.n_i 0.0 in
          Array.iteri (fun e i -> rhs.(i) <- val_q.(e)) idx_q;
          let precond = Option.map N.Mg.apply st.mg in
          let res =
            try N.Cg.solve ~tol ?precond st.aii rhs
            with N.Cg.Zero_diagonal li -> zero_diag_error tl li
          in
          ignore
            (Atomic.fetch_and_add total_iters res.N.Cg.iterations);
          if not res.N.Cg.converged then raise (N.Cg.Not_converged res);
          Some res.N.Cg.solution
        end
      in
      for rr = 0 to r - 1 do
        let v =
          match x with
          | None -> st.abb.((rr * r) + q)
          | Some x ->
            let idx = st.brow_idx.(rr) and vl = st.brow_val.(rr) in
            let dot = ref 0.0 in
            Array.iteri (fun e i -> dot := !dot +. (vl.(e) *. x.(i))) idx;
            st.abb.((rr * r) + q) -. !dot
        in
        w.s.((rr * r) + q) <- v
      done);
  (* symmetrize the freshly computed tiles (iterative tolerance breaks
     exact symmetry) and persist them *)
  Array.iter
    (fun w ->
      if not w.from_cache then begin
        let r = w.r in
        if w.solve <> None then begin
          let s = w.s in
          for a = 0 to r - 1 do
            for b = a + 1 to r - 1 do
              let v = 0.5 *. (s.((a * r) + b) +. s.((b * r) + a)) in
              s.((a * r) + b) <- v;
              s.((b * r) + a) <- v
            done
          done
        end;
        match (cache, w.key) with
        | Some c, Some k ->
          Cache.store c ~key:k
            { Cache.labels = w.labels; matrix = w.s; iterations = w.iters;
              form }
        | _ -> ()
      end)
    works;
  let cache_hits =
    Array.fold_left (fun a w -> if w.from_cache then a + 1 else a) 0 works
  in
  let cache_misses =
    match cache with None -> 0 | Some _ -> n_tiles - cache_hits
  in
  let mg_levels =
    Array.fold_left
      (fun acc w ->
        match w.solve with
        | Some { mg = Some mg; _ } -> max acc (N.Mg.levels mg)
        | _ -> acc)
      0 works
  in
  let t_reduce = Unix.gettimeofday () in
  (* --- stitch phase ---------------------------------------------- *)
  (* stitched system over (all interface cells, then all ports) *)
  let stitch_of_cell = Hashtbl.create (max 16 interface_nodes) in
  let m_total = ref 0 in
  Array.iter
    (fun cells ->
      Array.iter
        (fun c ->
          Hashtbl.replace stitch_of_cell c !m_total;
          incr m_total)
        cells)
    iface;
  let m_total = !m_total in
  let dim = m_total + np in
  let k_mat = N.Mat.make dim dim in
  Array.iter
    (fun w ->
      let m_t = Array.length iface.(w.t_id) in
      let global =
        Array.init w.r (fun k ->
            if k < m_t then Hashtbl.find stitch_of_cell iface.(w.t_id).(k)
            else m_total + tile_ports.(w.t_id).(k - m_t))
      in
      for a = 0 to w.r - 1 do
        for b = 0 to w.r - 1 do
          N.Mat.add_to k_mat global.(a) global.(b) w.s.((a * w.r) + b)
        done
      done)
    works;
  for k = 0 to stitch.blen - 1 do
    let a = Hashtbl.find stitch_of_cell stitch.bi.(k) in
    let b = Hashtbl.find stitch_of_cell stitch.bj.(k) in
    let g = stitch.bg.(k) in
    N.Mat.add_to k_mat a a g;
    N.Mat.add_to k_mat b b g;
    N.Mat.add_to k_mat a b (-.g);
    N.Mat.add_to k_mat b a (-.g)
  done;
  let s =
    if m_total = 0 then
      N.Mat.init np np (fun p q ->
          N.Mat.get k_mat (m_total + p) (m_total + q))
    else begin
      (* dense Schur over the interface skeleton: the retained blocks
         are dense after the per-tile reduction anyway, and the
         skeleton is one cell line per cut — small next to the grid *)
      let kii =
        N.Mat.init m_total m_total (fun a b -> N.Mat.get k_mat a b)
      in
      let f = N.Lu.factor_mat kii in
      let xcols =
        Array.init np (fun q ->
            N.Lu.solve_factored f
              (Array.init m_total (fun i -> N.Mat.get k_mat i (m_total + q))))
      in
      N.Mat.init np np (fun p q ->
          let acc = ref (N.Mat.get k_mat (m_total + p) (m_total + q)) in
          let x = xcols.(q) in
          for i = 0 to m_total - 1 do
            acc := !acc -. (N.Mat.get k_mat (m_total + p) i *. x.(i))
          done;
          !acc)
    end
  in
  (* enforce exact symmetry lost to iterative tolerance *)
  let s =
    N.Mat.init np np (fun p q ->
        0.5 *. (N.Mat.get s p q +. N.Mat.get s q p))
  in
  let well_caps =
    Array.to_list ports_arr
    |> List.filter (fun (p : Port.t) -> p.Port.kind = Port.Well)
    |> List.map (fun (p : Port.t) ->
           (p.Port.name, well_capacitance profile p))
  in
  let t_end = Unix.gettimeofday () in
  Atomic.set stats_ref
    (Some
       {
         grid_cells = n;
         ports = np;
         tiles = n_tiles;
         interface_nodes = m_total;
         cg_iterations_total = Atomic.get total_iters;
         mg_levels;
         assemble_seconds = t_assemble -. t0;
         reduce_seconds = t_reduce -. t_assemble;
         stitch_seconds = t_end -. t_reduce;
         cache_hits;
         cache_misses;
         elapsed_seconds = t_end -. t0;
       });
  Log.info (fun m ->
      m
        "reduction done: %d CG iterations (%d MG levels), %d/%d cache \
         hits, %.2f s"
        (Atomic.get total_iters) mg_levels cache_hits n_tiles
        (t_end -. t0));
  Macromodel.make ~ports:ports_arr ~conductance:s ~well_capacitance:well_caps

(* The extraction window covers the substrate-relevant geometry
   (contacts, wells, probes) — not the metal routing and pads, whose
   bounding box would blow the grid cells up past the guard-ring
   feature size. *)
let substrate_bbox layout =
  let relevant (s : Sn_layout.Shape.t) =
    match s.Sn_layout.Shape.layer with
    | Sn_layout.Layer.Substrate_contact | Sn_layout.Layer.Nwell
    | Sn_layout.Layer.Diffusion | Sn_layout.Layer.Backgate_probe _ ->
      true
    | Sn_layout.Layer.Poly | Sn_layout.Layer.Metal _ | Sn_layout.Layer.Via _
    | Sn_layout.Layer.Pad ->
      false
  in
  match List.filter relevant (Sn_layout.Layout.flatten layout) with
  | [] -> invalid_arg "Extractor: layout has no substrate geometry"
  | s :: rest ->
    List.fold_left
      (fun acc sh -> G.Rect.union_bbox acc (Sn_layout.Shape.bbox sh))
      (Sn_layout.Shape.bbox s) rest

let extract_from_layout ?config ?(margin_fraction = 0.35) ?solver ?tiles
    ?cache ?tol ?reduction ~tech layout =
  let bbox = substrate_bbox layout in
  let margin =
    margin_fraction *. Float.max (G.Rect.width bbox) (G.Rect.height bbox)
  in
  let die = G.Rect.expand margin bbox in
  extract ?config ?solver ?tiles ?cache ?tol ?reduction ~tech ~die
    (Port.of_layout layout)
