module G = Sn_geometry
module N = Sn_numerics
module T = Sn_tech.Tech

let log_src = Logs.Src.create "sn.substrate" ~doc:"substrate extraction"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  grid_cells : int;
  ports : int;
  cg_iterations_total : int;
  elapsed_seconds : float;
}

(* atomic: concurrent extractions on pool workers (Sn_engine.Pool)
   must not tear the record; last writer wins *)
let stats_ref : stats option Atomic.t = Atomic.make None
let last_stats () = Atomic.get stats_ref

(* Overlap area (um^2) of a port with one surface cell. *)
let overlap_area (port : Port.t) cell_rect =
  List.fold_left
    (fun acc r ->
      match G.Rect.intersection r cell_rect with
      | Some o -> acc +. G.Rect.area o
      | None -> acc)
    0.0 port.Port.region

let well_capacitance (profile : T.substrate_profile) (port : Port.t) =
  let um2 = T.micron *. T.micron in
  List.fold_left
    (fun acc r ->
      acc
      +. (G.Rect.area r *. um2 *. profile.T.nwell_cap_area)
      +. (G.Rect.perimeter r *. T.micron *. profile.T.nwell_cap_perimeter))
    0.0 port.Port.region

let extract ?(config = Grid.default_config) ?(grounded_backplane = false) ~tech ~die ports =
  if ports = [] then invalid_arg "Extractor.extract: no ports";
  List.iter
    (fun (p : Port.t) ->
      List.iter
        (fun r ->
          if not (G.Rect.intersects die r) then
            invalid_arg
              (Printf.sprintf "Extractor.extract: port %s outside die"
                 p.Port.name))
        p.Port.region)
    ports;
  let t0 = Unix.gettimeofday () in
  let profile = tech.T.substrate in
  let surface_ports = ports in
  (* snap grid lines to every port rectangle edge so thin rings and
     gaps are resolved exactly rather than aliased *)
  let snap_x, snap_y =
    List.fold_left
      (fun (xs, ys) (p : Port.t) ->
        List.fold_left
          (fun (xs, ys) (r : G.Rect.t) ->
            ( r.G.Rect.x0 :: r.G.Rect.x1 :: xs,
              r.G.Rect.y0 :: r.G.Rect.y1 :: ys ))
          (xs, ys) p.Port.region)
      ([], []) surface_ports
  in
  let grid = Grid.build ~snap_x ~snap_y config ~die profile in
  let n = Grid.cell_count grid in
  let ports_arr =
    if grounded_backplane then
      Array.of_list
        (ports @ [ Port.v ~name:"backplane" ~kind:Port.Resistive [ die ] ])
    else Array.of_list ports
  in
  let np = Array.length ports_arr in
  Log.info (fun m -> m "grid %dx%dx%d (%d cells), %d ports"
               (Grid.nx grid) (Grid.ny grid) (Grid.nz grid) n np);
  (* G_ii as sparse builder; G_pp dense; G_pi as per-port dense rows. *)
  let gii = N.Sparse.builder n n in
  let gpp = N.Mat.make np np in
  let gpi = Array.init np (fun _ -> Array.make n 0.0) in
  Grid.iter_conductances grid (fun a b g ->
      N.Sparse.add gii a a g;
      N.Sparse.add gii b b g;
      N.Sparse.add gii a b (-.g);
      N.Sparse.add gii b a (-.g));
  (* Port-to-surface contact conductances. *)
  let um2 = T.micron *. T.micron in
  let coverage = Array.make np 0.0 in
  for iy = 0 to Grid.ny grid - 1 do
    for ix = 0 to Grid.nx grid - 1 do
      let cell_rect = Grid.surface_cell_rect grid ix iy in
      let cell = Grid.cell_index grid ix iy 0 in
      Array.iteri
        (fun p port ->
          let a_um2 = overlap_area port cell_rect in
          if a_um2 > 0.0 then begin
            let g = a_um2 *. um2 /. profile.T.contact_resistance in
            N.Mat.add_to gpp p p g;
            N.Sparse.add gii cell cell g;
            gpi.(p).(cell) <- gpi.(p).(cell) -. g;
            coverage.(p) <- coverage.(p) +. a_um2
          end)
        ports_arr
    done
  done;
  (* metallized backside: the last port couples to every bottom cell *)
  if grounded_backplane then begin
    let p = np - 1 in
    let iz = Grid.nz grid - 1 in
    for iy = 0 to Grid.ny grid - 1 do
      for ix = 0 to Grid.nx grid - 1 do
        let cell = Grid.cell_index grid ix iy iz in
        let area = Grid.dx grid ix *. Grid.dy grid iy in
        let g = area /. profile.T.contact_resistance in
        N.Mat.add_to gpp p p g;
        N.Sparse.add gii cell cell g;
        gpi.(p).(cell) <- gpi.(p).(cell) -. g;
        coverage.(p) <- coverage.(p) +. area
      done
    done
  end;
  Array.iteri
    (fun p c ->
      if c <= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Extractor.extract: port %s overlaps no surface cell"
             ports_arr.(p).Port.name))
    coverage;
  let gii = N.Sparse.finalize gii in
  (* Schur complement column by column. *)
  let total_iters = ref 0 in
  let columns =
    Array.map
      (fun row ->
        let rhs = Array.map (fun x -> -.x) row in
        (* G_ip column for port p is (G_pi row p)^T; sign folded here *)
        let res = N.Cg.solve ~tol:1e-10 gii rhs in
        total_iters := !total_iters + res.N.Cg.iterations;
        if not res.N.Cg.converged then raise (N.Cg.Not_converged res);
        res.N.Cg.solution)
      gpi
  in
  (* columns.(q) solves G_ii x_q = -G_ip e_q; then
     S_pq = Gpp_pq - G_pi x... keep signs explicit:
     S = Gpp - Gpi Gii^-1 Gip.  Gip e_q = -rhs_q, x_q = Gii^-1 Gip e_q
     = -(columns q).  So S_pq = Gpp_pq - dot (Gpi row p) (-(columns q)). *)
  let s =
    N.Mat.init np np (fun p q ->
        let dot = ref 0.0 in
        let xq = columns.(q) in
        let gp = gpi.(p) in
        for i = 0 to n - 1 do
          dot := !dot +. (gp.(i) *. xq.(i))
        done;
        N.Mat.get gpp p q +. !dot)
  in
  (* enforce exact symmetry lost to iterative tolerance *)
  let s =
    N.Mat.init np np (fun p q ->
        0.5 *. (N.Mat.get s p q +. N.Mat.get s q p))
  in
  let well_caps =
    Array.to_list ports_arr
    |> List.filter (fun (p : Port.t) -> p.Port.kind = Port.Well)
    |> List.map (fun (p : Port.t) ->
           (p.Port.name, well_capacitance profile p))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set stats_ref
    (Some
       {
         grid_cells = n;
         ports = np;
         cg_iterations_total = !total_iters;
         elapsed_seconds = elapsed;
       });
  Log.info (fun m ->
      m "reduction done: %d CG iterations, %.2f s" !total_iters elapsed);
  Macromodel.make ~ports:ports_arr ~conductance:s ~well_capacitance:well_caps

(* The extraction window covers the substrate-relevant geometry
   (contacts, wells, probes) — not the metal routing and pads, whose
   bounding box would blow the grid cells up past the guard-ring
   feature size. *)
let substrate_bbox layout =
  let relevant (s : Sn_layout.Shape.t) =
    match s.Sn_layout.Shape.layer with
    | Sn_layout.Layer.Substrate_contact | Sn_layout.Layer.Nwell
    | Sn_layout.Layer.Diffusion | Sn_layout.Layer.Backgate_probe _ ->
      true
    | Sn_layout.Layer.Poly | Sn_layout.Layer.Metal _ | Sn_layout.Layer.Via _
    | Sn_layout.Layer.Pad ->
      false
  in
  match List.filter relevant (Sn_layout.Layout.flatten layout) with
  | [] -> invalid_arg "Extractor: layout has no substrate geometry"
  | s :: rest ->
    List.fold_left
      (fun acc sh -> G.Rect.union_bbox acc (Sn_layout.Shape.bbox sh))
      (Sn_layout.Shape.bbox s) rest

let extract_from_layout ?config ?(margin_fraction = 0.35) ~tech layout =
  let bbox = substrate_bbox layout in
  let margin =
    margin_fraction *. Float.max (G.Rect.width bbox) (G.Rect.height bbox)
  in
  let die = G.Rect.expand margin bbox in
  extract ?config ~tech ~die (Port.of_layout layout)
