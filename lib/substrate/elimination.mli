(** Direct node-elimination macromodel reduction — the classic
    star-mesh (Gaussian elimination on the conductance graph)
    alternative to the CG-based Schur complement in {!Extractor}.

    Eliminating node k with self-conductance g_kk rewrites each
    neighbour pair (i, j) with g_ij += g_ik g_jk / g_kk.  Exact, but
    fill-in grows quickly on 3-D grids, so this path suits small grids
    and serves as an independent cross-check of the iterative
    reduction (they must agree to solver tolerance — asserted in the
    test suite). *)

type network
(** A mutable conductance network under reduction. *)

val of_conductances :
  n:int -> ports:int array -> (int * int * float) list -> network
(** [of_conductances ~n ~ports edges] builds the network on nodes
    [0 .. n-1]; [ports] are the node indices to keep.  Edges are
    (node, node, conductance) branches.
    Raises [Invalid_argument] on out-of-range indices or non-positive
    conductances. *)

val eliminate_internal : ?strategy:[ `Heap | `Scan ] -> network -> unit
(** Eliminate every non-port node, lowest-degree first (a greedy
    minimum-degree ordering refreshed on the fly; ties go to the
    lowest node index).  [`Heap] (default) tracks candidates in a
    lazy-deletion binary heap, O(log n) per pick; [`Scan] re-scans the
    whole network per pick, O(n) — kept as the reference oracle.  Both
    produce the same elimination order, hence identical reduced
    matrices. *)

val port_conductance : network -> Sn_numerics.Mat.t
(** The reduced port Laplacian, indexed by the order of [ports].
    Only meaningful after {!eliminate_internal}. *)

val reduce_grid :
  ?config:Grid.config -> tech:Sn_tech.Tech.t -> die:Sn_geometry.Rect.t ->
  Port.t list -> Macromodel.t
(** Drop-in alternative to {!Extractor.extract} using direct
    elimination.  Intended for small grids (the cost grows steeply
    with grid size). *)
