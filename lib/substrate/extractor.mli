(** Substrate macromodel extraction (the SubstrateStorm substitute).

    Assembles the FDM conductance Laplacian of the discretized bulk,
    couples each port to the surface cells it overlaps through the
    technology's specific contact resistance, and eliminates every
    grid node with a Schur complement:

    {v S = G_pp - G_pi G_ii^-1 G_ip v}

    Three solvers compute the elimination ({!solver}); the default
    multigrid-preconditioned CG keeps the cost per Schur column far
    below a direct factorization as the grid grows (the layered
    profile's z-anisotropy still costs iterations at scale — the
    bench records the per-size counts).  The reduction optionally runs {e tiled}
    (hierarchical, nested Schur: reduce each lateral tile onto its
    interface and local ports independently on the worker pool, then
    stitch the interface skeleton — see {!Tiling}) and consults a
    content-addressed {!Cache} so unchanged tiles are never reduced
    twice. *)

(** How the interior Schur columns are computed. *)
type solver =
  | Mg_cg
      (** conjugate gradients preconditioned by a geometric multigrid
          V-cycle ({!Sn_numerics.Mg}) — the default, and the only
          choice that scales to million-cell grids *)
  | Jacobi_cg
      (** diagonally preconditioned CG — the pre-multigrid baseline,
          kept for comparison benches *)
  | Direct
      (** exact star-mesh elimination per tile
          ({!Elimination}) — the small-grid oracle *)

(** Counters and phase timings of one extraction. *)
type stats = {
  grid_cells : int;
  ports : int;
  tiles : int;  (** tiles actually used (after clamping) *)
  interface_nodes : int;
      (** total interface cells stitched; [0] for the untiled path *)
  cg_iterations_total : int;
      (** CG iterations actually run — [0] on a fully warm cache *)
  mg_levels : int;
      (** deepest multigrid hierarchy built; [0] unless {!Mg_cg}
          reduced at least one tile *)
  assemble_seconds : float;  (** grid build, contact scan, bucketing *)
  reduce_seconds : float;  (** per-tile Schur reduction (or cache) *)
  stitch_seconds : float;  (** interface-skeleton elimination *)
  cache_hits : int;
  cache_misses : int;
  elapsed_seconds : float;
}

val last_stats : unit -> stats option
(** Statistics of the most recent {!extract} call (for the runtime
    report and the benches).  Stored atomically, so concurrent
    extractions on pool workers never expose a torn record. *)

val extract :
  ?config:Grid.config ->
  ?grounded_backplane:bool ->
  ?solver:solver ->
  ?tiles:int * int ->
  ?cache:Cache.t ->
  ?tol:float ->
  ?reduction:string ->
  tech:Sn_tech.Tech.t ->
  die:Sn_geometry.Rect.t ->
  Port.t list ->
  Macromodel.t
(** [extract ?config ?grounded_backplane ?solver ?tiles ?cache ?tol
    ?reduction ~tech ~die ports] computes the macromodel.

    With [grounded_backplane] (default [false]) the die backside is
    metallized: an extra resistive port named ["backplane"] couples to
    every bottom grid cell — ground it in the merged model to study a
    conductively attached die.  [die] is in micrometers.

    [solver] defaults to {!Mg_cg}.  [tiles] (default [(1, 1)], the
    whole-die reduction) selects the hierarchical tiled path; all
    solver/tile combinations agree to the iterative tolerance [tol]
    (default [1e-13], relative residual per Schur column).  [cache]
    overrides the process default ({!Cache.default}); pass a handle
    explicitly to isolate benches and tests.

    [reduction] tags the cached artifacts with the downstream
    model-order-reduction configuration (a
    [Snoise.Reduced_model.config_digest] string); omitted means the
    exact flow.  The tag is folded into every tile cache key {e and}
    recorded in each stored entry, so reduced and exact runs keep
    disjoint cache namespaces — a mismatched or corrupted entry is a
    fail-soft miss, never a wrong answer.

    Port columns (and tiles) are reduced in parallel on
    {!Sn_engine.Pool.default}; results are byte-identical regardless
    of worker count.

    Raises [Invalid_argument] when [ports] is empty, when a port lies
    outside the die, when a grid cell is disconnected (zero diagonal —
    the error names the offending cell), or on grid configuration
    errors; fails with [Sn_numerics.Cg.Not_converged] if an
    elimination solve stalls. *)

val extract_from_layout :
  ?config:Grid.config ->
  ?margin_fraction:float ->
  ?solver:solver ->
  ?tiles:int * int ->
  ?cache:Cache.t ->
  ?tol:float ->
  ?reduction:string ->
  tech:Sn_tech.Tech.t ->
  Sn_layout.Layout.t ->
  Macromodel.t
(** [extract_from_layout ?config ?margin_fraction ?solver ?tiles
    ?cache ?tol ?reduction ~tech layout] derives the extraction window from the
    substrate-relevant shapes (contacts, wells, probes — metal routing
    and pads are excluded so they cannot blow up the cell size),
    padded on each side by [margin_fraction] (default 0.35) of the
    larger extent so bulk spreading has room, then extracts with ports
    from {!Port.of_layout}.  The solver, tiling, cache and reduction
    options are forwarded to {!extract}. *)
