(** Lateral tile partition of the FDM grid for the hierarchical
    (nested Schur) macromodel reduction.

    The die is split into [k x k] rectangles of whole cell columns
    spanning the full substrate depth.  A tile's {e interface} is the
    set of its cells with a lateral neighbour in another tile —
    exactly the outermost cell lines on its cut sides — and the
    remaining {e interior} is itself a box, which is what lets
    {!Sn_numerics.Mg} build its hierarchy per tile.  Reducing each
    tile onto (interface + local ports) and then eliminating the
    interface skeleton is algebraically identical to eliminating every
    grid cell at once (the quotient property of Schur complements), so
    the tiled path is exact, not an approximation.  A [1 x 1] plan has
    no cuts: the single tile's interior is the whole grid and the
    reduction degenerates to the classic whole-die Schur
    complement. *)

(** One tile: lateral cell ranges [[x0, x1) x [y0, y1)] and the
    interior sub-box [[ix0, ix1) x [iy0, iy1)] that remains after the
    interface lines on cut sides are peeled off. *)
type tile = {
  x0 : int;
  x1 : int;
  y0 : int;
  y1 : int;
  ix0 : int;
  ix1 : int;
  iy0 : int;
  iy1 : int;
}

type t = {
  shape : int * int;  (** effective tile counts [(tx, ty)] *)
  nx : int;
  ny : int;
  nz : int;
  tiles : tile array;  (** row-major: tile [(jx, jy)] at [jy*tx + jx] *)
  tile_of : int array;  (** lateral cell [iy*nx + ix] -> tile id *)
}

val plan : tiles:int * int -> nx:int -> ny:int -> nz:int -> t
(** [plan ~tiles:(tx, ty) ~nx ~ny ~nz] partitions the grid with
    balanced cut lines.  Tile counts exceeding the cell counts are
    clamped (an empty tile could never be stitched).  Raises
    [Invalid_argument] on non-positive tile counts or an empty
    grid. *)

val shape : t -> int * int
(** Effective [(tx, ty)] after clamping. *)

val count : t -> int
(** Number of tiles. *)

val tile_of_cell : t -> ix:int -> iy:int -> int
(** Tile id owning lateral cell [(ix, iy)]. *)

val is_interior : tile -> ix:int -> iy:int -> bool
(** Whether lateral cell [(ix, iy)] of the tile is interior (no
    lateral neighbour outside the tile). *)

val interior_dims : tile -> nz:int -> int * int * int
(** Interior box dimensions [(w, h, depth)] — the [dims] handed to
    {!Sn_numerics.Mg.build}.  All zero-depth when the interior is
    empty (a one-cell-wide tile cut on both sides). *)

val interior_index : tile -> nz:int -> ix:int -> iy:int -> iz:int -> int
(** Tile-local interior index of global cell [(ix, iy, iz)] in the
    interior box ordering (caller guarantees {!is_interior}). *)

val interface_cells : t -> int -> int array
(** Interface cells of one tile as ascending global cell indices —
    the deterministic retained-node order shared by reduction,
    stitching and the cache labels. *)

val degenerate : tiles:int * int -> grid:int * int -> ports:int -> string option
(** [degenerate ~tiles ~grid ~ports] is a human-readable warning when
    the configuration would leave a tile with zero cells (tile counts
    exceeding grid cells) or guarantee a tile with zero ports
    (pigeonhole: more tiles than substrate ports — a degenerate stitch
    that only adds overhead), and [None] for a sound configuration.
    Shared by the extractor's runtime warning and the
    ["extract-tile-degenerate"] lint rule. *)
