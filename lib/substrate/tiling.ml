(* Lateral k x k tile partition of the FDM grid for the hierarchical
   (nested Schur) reduction.

   Tiles are rectangles of whole cell columns spanning the full
   substrate depth, so a tile's interface — the cells with a lateral
   neighbour in another tile — is exactly the outermost cell lines on
   its cut sides, and the interior that remains is itself a box: the
   shape the geometric multigrid hierarchy is built on.  Cell indices
   follow Grid.cell_index ordering throughout. *)

type tile = {
  x0 : int;
  x1 : int;
  y0 : int;
  y1 : int;
  ix0 : int;
  ix1 : int;
  iy0 : int;
  iy1 : int;
}

type t = {
  shape : int * int;
  nx : int;
  ny : int;
  nz : int;
  tiles : tile array;
  tile_of : int array; (* lateral cell iy*nx + ix -> tile id *)
}

let shape t = t.shape
let count t = Array.length t.tiles

let plan ~tiles:(txr, tyr) ~nx ~ny ~nz =
  if txr < 1 || tyr < 1 then
    invalid_arg "Tiling.plan: tile counts must be >= 1";
  if nx < 1 || ny < 1 || nz < 1 then
    invalid_arg "Tiling.plan: empty grid";
  (* more tiles than cell columns would leave empty tiles: clamp *)
  let tx = min txr nx and ty = min tyr ny in
  let bx = Array.init (tx + 1) (fun k -> k * nx / tx) in
  let by = Array.init (ty + 1) (fun k -> k * ny / ty) in
  let tiles =
    Array.init (tx * ty) (fun id ->
        let jx = id mod tx and jy = id / tx in
        let x0 = bx.(jx) and x1 = bx.(jx + 1) in
        let y0 = by.(jy) and y1 = by.(jy + 1) in
        {
          x0;
          x1;
          y0;
          y1;
          (* interface = boundary lines on cut sides only; the die
             edge is a natural boundary, not a cut *)
          ix0 = (if jx > 0 then x0 + 1 else x0);
          ix1 = (if jx < tx - 1 then x1 - 1 else x1);
          iy0 = (if jy > 0 then y0 + 1 else y0);
          iy1 = (if jy < ty - 1 then y1 - 1 else y1);
        })
  in
  let tile_of = Array.make (nx * ny) 0 in
  Array.iteri
    (fun id tl ->
      for iy = tl.y0 to tl.y1 - 1 do
        for ix = tl.x0 to tl.x1 - 1 do
          tile_of.((iy * nx) + ix) <- id
        done
      done)
    tiles;
  { shape = (tx, ty); nx; ny; nz; tiles; tile_of }

let tile_of_cell t ~ix ~iy = t.tile_of.((iy * t.nx) + ix)

let is_interior tl ~ix ~iy =
  ix >= tl.ix0 && ix < tl.ix1 && iy >= tl.iy0 && iy < tl.iy1

let interior_dims tl ~nz =
  let w = max 0 (tl.ix1 - tl.ix0) and h = max 0 (tl.iy1 - tl.iy0) in
  (w, h, (if w = 0 || h = 0 then 0 else nz))

let interior_index tl ~nz:_ ~ix ~iy ~iz =
  let w = tl.ix1 - tl.ix0 and h = tl.iy1 - tl.iy0 in
  (iz * w * h) + ((iy - tl.iy0) * w) + (ix - tl.ix0)

(* interface cells of one tile, ascending global cell index — the
   deterministic retained-node order every phase agrees on *)
let interface_cells t id =
  let tl = t.tiles.(id) in
  let acc = ref [] in
  for iz = t.nz - 1 downto 0 do
    for iy = tl.y1 - 1 downto tl.y0 do
      for ix = tl.x1 - 1 downto tl.x0 do
        if not (is_interior tl ~ix ~iy) then
          acc := ((iz * t.nx * t.ny) + (iy * t.nx) + ix) :: !acc
      done
    done
  done;
  Array.of_list !acc

let degenerate ~tiles:(tx, ty) ~grid:(nx, ny) ~ports =
  if tx < 1 || ty < 1 then Some "tile counts must be >= 1"
  else if tx > nx || ty > ny then
    Some
      (Printf.sprintf
         "%dx%d tiles exceed the %dx%d cell grid: some tiles would hold \
          zero cells (no interface nodes to stitch)"
         tx ty nx ny)
  else if ports > 0 && tx * ty > ports then
    Some
      (Printf.sprintf
         "%d tiles for %d substrate ports: at least one tile holds no \
          port and only contributes stitch overhead"
         (tx * ty) ports)
  else None
