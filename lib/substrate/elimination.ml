module G = Sn_geometry
module N = Sn_numerics
module T = Sn_tech.Tech

type network = {
  adj : (int, float) Hashtbl.t array;  (** neighbour -> branch conductance *)
  alive : bool array;
  is_port : bool array;
  ports : int array;
}

let add_branch net i j g =
  if i <> j && g <> 0.0 then begin
    let bump a b =
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt net.adj.(a) b) in
      Hashtbl.replace net.adj.(a) b (cur +. g)
    in
    bump i j;
    bump j i
  end

let of_conductances ~n ~ports edges =
  let net =
    {
      adj = Array.init n (fun _ -> Hashtbl.create 8);
      alive = Array.make n true;
      is_port = Array.make n false;
      ports;
    }
  in
  Array.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg "Elimination: port out of range";
      net.is_port.(p) <- true)
    ports;
  List.iter
    (fun (i, j, g) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Elimination: node out of range";
      if g <= 0.0 then invalid_arg "Elimination: conductance must be > 0";
      add_branch net i j g)
    edges;
  net

(* Star-mesh: eliminating node k inserts g_ik g_jk / g_k between every
   neighbour pair.  Returns the (former) neighbours, whose degrees have
   just changed. *)
let eliminate_node net k =
  let neighbours =
    Hashtbl.fold
      (fun j g acc -> if net.alive.(j) then (j, g) :: acc else acc)
      net.adj.(k) []
  in
  let total = List.fold_left (fun acc (_, g) -> acc +. g) 0.0 neighbours in
  if total > 0.0 then begin
    let arr = Array.of_list neighbours in
    let m = Array.length arr in
    for a = 0 to m - 1 do
      let i, gi = arr.(a) in
      for b = a + 1 to m - 1 do
        let j, gj = arr.(b) in
        add_branch net i j (gi *. gj /. total)
      done
    done
  end;
  List.iter (fun (j, _) -> Hashtbl.remove net.adj.(j) k) neighbours;
  Hashtbl.reset net.adj.(k);
  net.alive.(k) <- false;
  List.map fst neighbours

(* Reference ordering: full scan for the minimum-degree internal node
   before every elimination — O(n) per eliminated node.  Kept as the
   oracle the heap path is tested against. *)
let eliminate_internal_scan net =
  let n = Array.length net.alive in
  let remaining = ref 0 in
  for i = 0 to n - 1 do
    if net.alive.(i) && not (net.is_port.(i)) then incr remaining
  done;
  while !remaining > 0 do
    (* greedy minimum degree *)
    let best = ref (-1) and best_deg = ref max_int in
    for i = 0 to n - 1 do
      if net.alive.(i) && not (net.is_port.(i)) then begin
        let deg = Hashtbl.length net.adj.(i) in
        if deg < !best_deg then begin
          best := i;
          best_deg := deg
        end
      end
    done;
    ignore (eliminate_node net !best);
    decr remaining
  done

(* Lazy-deletion binary heap keyed on [deg * n + node]: pops come out
   ordered by degree with the node index breaking ties — exactly the
   order the scan produces — but finding the next victim is O(log n).
   A node is re-pushed whenever its degree changes; entries whose key
   no longer matches the live degree are stale and skipped on pop. *)
let eliminate_internal_heap net =
  let n = Array.length net.alive in
  let heap = N.Heap.create ~capacity:(max n 1) () in
  let push i =
    N.Heap.push heap ~key:((Hashtbl.length net.adj.(i) * n) + i) i
  in
  let remaining = ref 0 in
  for i = 0 to n - 1 do
    if net.alive.(i) && not (net.is_port.(i)) then begin
      incr remaining;
      push i
    end
  done;
  while !remaining > 0 do
    match N.Heap.pop heap with
    | None ->
      (* every live internal node always has a current entry *)
      assert false
    | Some (key, i) ->
      if net.alive.(i) && key = (Hashtbl.length net.adj.(i) * n) + i then begin
        let neighbours = eliminate_node net i in
        List.iter
          (fun j -> if net.alive.(j) && not net.is_port.(j) then push j)
          neighbours;
        decr remaining
      end
  done

let eliminate_internal ?(strategy = `Heap) net =
  match strategy with
  | `Heap -> eliminate_internal_heap net
  | `Scan -> eliminate_internal_scan net

let port_conductance net =
  let np = Array.length net.ports in
  let index_of = Hashtbl.create np in
  Array.iteri (fun k p -> Hashtbl.replace index_of p k) net.ports;
  let s = N.Mat.make np np in
  Array.iteri
    (fun k p ->
      Hashtbl.iter
        (fun j g ->
          match Hashtbl.find_opt index_of j with
          | Some kj ->
            N.Mat.add_to s k kj (-.g);
            N.Mat.add_to s k k g
          | None -> ())
        net.adj.(p);
      ignore k)
    net.ports;
  s

let reduce_grid ?(config = Grid.default_config) ~tech ~die ports =
  if ports = [] then invalid_arg "Elimination.reduce_grid: no ports";
  let profile = tech.T.substrate in
  let snap_x, snap_y =
    List.fold_left
      (fun (xs, ys) (p : Port.t) ->
        List.fold_left
          (fun (xs, ys) (r : G.Rect.t) ->
            ( r.G.Rect.x0 :: r.G.Rect.x1 :: xs,
              r.G.Rect.y0 :: r.G.Rect.y1 :: ys ))
          (xs, ys) p.Port.region)
      ([], []) ports
  in
  let grid = Grid.build ~snap_x ~snap_y config ~die profile in
  let n = Grid.cell_count grid in
  let ports_arr = Array.of_list ports in
  let np = Array.length ports_arr in
  (* port nodes appended after the grid cells; branches go straight
     into the network — no intermediate edge list *)
  let net =
    of_conductances ~n:(n + np) ~ports:(Array.init np (fun p -> n + p)) []
  in
  Grid.iter_conductances grid (fun a b g -> add_branch net a b g);
  let um2 = T.micron *. T.micron in
  for iy = 0 to Grid.ny grid - 1 do
    for ix = 0 to Grid.nx grid - 1 do
      let cell_rect = Grid.surface_cell_rect grid ix iy in
      let cell = Grid.cell_index grid ix iy 0 in
      Array.iteri
        (fun p (port : Port.t) ->
          let overlap =
            List.fold_left
              (fun acc r ->
                match G.Rect.intersection r cell_rect with
                | Some o -> acc +. G.Rect.area o
                | None -> acc)
              0.0 port.Port.region
          in
          if overlap > 0.0 then
            add_branch net (n + p) cell
              (overlap *. um2 /. profile.T.contact_resistance))
        ports_arr
    done
  done;
  eliminate_internal net;
  let s = port_conductance net in
  let well_caps =
    Array.to_list ports_arr
    |> List.filter (fun (p : Port.t) -> p.Port.kind = Port.Well)
    |> List.map (fun (p : Port.t) ->
           let c =
             List.fold_left
               (fun acc r ->
                 acc
                 +. (G.Rect.area r *. um2 *. profile.T.nwell_cap_area)
                 +. (G.Rect.perimeter r *. T.micron
                    *. profile.T.nwell_cap_perimeter))
               0.0 p.Port.region
           in
           (p.Port.name, c))
  in
  Macromodel.make ~ports:ports_arr ~conductance:s
    ~well_capacitance:well_caps
