module E = Experiments
module U = Sn_numerics.Units

let hr fmt = Format.fprintf fmt "%s@," (String.make 72 '-')

let fig3 fmt (r : E.fig3) =
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt
    "Figure 3 - substrate to NMOS output transfer (measured leg = AC sim)@,";
  hr fmt;
  Format.fprintf fmt
    "SUB -> back-gate division: 1/%.0f (%.1f dB)   [paper: 1/652]@,"
    (1.0 /. r.E.divider)
    (U.db_of_ratio r.E.divider);
  Format.fprintf fmt
    "same with ideal (R = 0) interconnect: 1/%.0f  -> R factor %.2fx   [paper: ~2x]@,"
    (1.0 /. r.E.divider_no_r)
    (r.E.divider /. r.E.divider_no_r);
  Format.fprintf fmt "extracted MOS-GR ground wire: %.2f ohm@,"
    r.E.ground_wire_ohms;
  Format.fprintf fmt "%6s %10s %10s %12s %12s %8s@," "vgs" "gmb[mS]"
    "gds[mS]" "sim[dB]" "hand[dB]" "err[dB]";
  List.iter
    (fun (p : Flow.nmos_point) ->
      Format.fprintf fmt "%6.2f %10.1f %10.1f %12.1f %12.1f %8.2f@,"
        p.Flow.vgs
        (1.0e3 *. p.Flow.gmb_total)
        (1.0e3 *. p.Flow.gds_total)
        p.Flow.transfer_sim_db p.Flow.transfer_hand_db
        (Float.abs (p.Flow.transfer_sim_db -. p.Flow.transfer_hand_db)))
    r.E.points;
  Format.fprintf fmt
    "worst sim-vs-hand-calculation error: %.2f dB   [paper: <= 1 dB]@,"
    r.E.max_hand_error_db;
  Format.fprintf fmt "@]"

let sec3 fmt (r : E.sec3_numbers) =
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt "Section 3 numbers@,";
  hr fmt;
  Format.fprintf fmt "voltage division SUB -> back-gate: 1/%.0f   [paper: 1/652]@,"
    r.E.division_ratio;
  Format.fprintf fmt "interconnect-R factor on v_bs: %.2f   [paper: ~2]@,"
    r.E.r_factor;
  let lo_gmb, hi_gmb = r.E.gmb_range_ms in
  let lo_gds, hi_gds = r.E.gds_range_ms in
  Format.fprintf fmt "gmb range: %.1f - %.1f mS   [paper: 10 - 38 mS]@," lo_gmb
    hi_gmb;
  Format.fprintf fmt "gds range: %.1f - %.1f mS   [paper: 2.8 - 22 mS]@,"
    lo_gds hi_gds;
  Format.fprintf fmt
    "junction-cap crossover f3dB: %.1f - %.1f GHz   [paper: 5 - 19 GHz]@,"
    r.E.f3db_min_ghz r.E.f3db_max_ghz;
  Format.fprintf fmt "@]"

let spectrum_ascii ?(width = 64) ?(height = 16) fmt points =
  match points with
  | [] -> Format.fprintf fmt "(empty spectrum)@,"
  | _ ->
    let dbm_values = List.map snd points in
    let max_dbm = List.fold_left Float.max (-300.0) dbm_values in
    let floor_dbm = max_dbm -. 80.0 in
    let offsets = List.map fst points in
    let min_off = List.fold_left Float.min Float.infinity offsets in
    let max_off = List.fold_left Float.max Float.neg_infinity offsets in
    let cols = Array.make width floor_dbm in
    List.iter
      (fun (off, dbm) ->
        let k =
          int_of_float
            (Float.round
               ((off -. min_off) /. (max_off -. min_off)
               *. float_of_int (width - 1)))
        in
        if k >= 0 && k < width then cols.(k) <- Float.max cols.(k) dbm)
      points;
    Format.fprintf fmt "@[<v>";
    for row = 0 to height - 1 do
      let level =
        max_dbm -. (float_of_int row /. float_of_int (height - 1) *. 80.0)
      in
      Format.fprintf fmt "%8.0f |" level;
      Array.iter
        (fun c -> Format.fprintf fmt "%c" (if c >= level then '#' else ' '))
        cols;
      Format.fprintf fmt "@,"
    done;
    Format.fprintf fmt "%8s +%s@," "dBm" (String.make width '-');
    Format.fprintf fmt "%8s  %-10s%*s@," ""
      (Printf.sprintf "%+.0f MHz" (min_off /. 1.0e6))
      (width - 10)
      (Printf.sprintf "%+.0f MHz" (max_off /. 1.0e6));
    Format.fprintf fmt "@]"

let fig7 fmt (r : E.fig7) =
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt
    "Figure 7 - VCO output spectrum, %s tone at %s (offsets from carrier)@,"
    (Printf.sprintf "%.0f dBm" E.paper_noise_dbm)
    (U.eng ~unit:"Hz" r.E.f_noise);
  hr fmt;
  Format.fprintf fmt "carrier: %s at %.1f dBm@,"
    (U.eng ~unit:"Hz" r.E.carrier_freq)
    r.E.carrier_dbm;
  spectrum_ascii fmt r.E.spectrum;
  Format.fprintf fmt
    "spurs at fc+-fn: model %.1f / %.1f dBm, DFT-measured %.1f / %.1f dBm@,"
    r.E.model_lower_dbm r.E.model_upper_dbm r.E.measured_lower_dbm
    r.E.measured_upper_dbm;
  Format.fprintf fmt "@]"

let fig8 fmt (families : E.fig8_family list) =
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt
    "Figure 8 - total spur power at fc+-fn vs noise frequency@,";
  hr fmt;
  List.iter
    (fun (f : E.fig8_family) ->
      Format.fprintf fmt "Vtune = %.2f V (fc = %.2f GHz):@," f.E.vtune
        f.E.carrier_ghz;
      Format.fprintf fmt "  %12s %12s %12s %14s@," "f_noise" "upper[dBm]"
        "lower[dBm]" "DFT-check[dBm]";
      List.iter
        (fun (p : E.fig8_point) ->
          Format.fprintf fmt "  %12s %12.1f %12.1f %14.1f@,"
            (U.eng ~unit:"Hz" p.E.f_noise)
            p.E.upper_dbm p.E.lower_dbm p.E.behavioral_dbm)
        f.E.points;
      Format.fprintf fmt
        "  slope %.1f dB/dec [paper: -20, resistive coupling + FM]; \
         model-vs-DFT <= %.2f dB [paper: <= 2 dB]@,"
        f.E.slope_db_per_decade f.E.max_model_vs_behavioral_db)
    families;
  Format.fprintf fmt "@]"

let fig9 fmt (r : E.fig9) =
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt "Figure 9 - per-device contributions (Vtune = 0 V)@,";
  hr fmt;
  List.iter
    (fun (e : E.fig9_entry) ->
      Format.fprintf fmt "%-22s slope %6.1f dB/dec :" e.E.label
        e.E.slope_db_per_decade;
      List.iter
        (fun (fn, dbm) ->
          Format.fprintf fmt " %s:%.1f" (U.eng ~unit:"Hz" fn) dbm)
        e.E.spur_dbm_by_freq;
      Format.fprintf fmt "@,")
    r.E.entries;
  Format.fprintf fmt
    "ground-vs-backgate gap at 10 MHz: %.1f dB   [paper: ~20 dB]@,"
    r.E.ground_minus_backgate_db;
  Format.fprintf fmt
    "inductor curve flatness: %.2f dB   [paper: constant with frequency]@,"
    r.E.inductor_flatness_db;
  Format.fprintf fmt "@]"

let fig10 fmt (r : E.fig10) =
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt "Figure 10 - ground interconnect widened 2x@,";
  hr fmt;
  Format.fprintf fmt "extracted ground wire: %.2f ohm -> %.2f ohm@,"
    r.E.wire_ohms_normal r.E.wire_ohms_widened;
  Format.fprintf fmt "  %12s %14s %14s %10s@," "f_noise" "normal[dBm]"
    "widened[dBm]" "delta[dB]";
  List.iter
    (fun (fn, n, w) ->
      Format.fprintf fmt "  %12s %14.1f %14.1f %10.2f@,"
        (U.eng ~unit:"Hz" fn) n w (n -. w))
    r.E.points;
  Format.fprintf fmt
    "mean improvement: %.2f dB   [paper: 4.5 dB predicted, 6 dB ideal]@,"
    r.E.mean_improvement_db;
  Format.fprintf fmt "@]"

let vco_card fmt (r : E.vco_card) =
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt "Section 4 - VCO design card@,";
  hr fmt;
  Format.fprintf fmt "carrier: %.2f GHz   [paper: ~3 GHz]@," r.E.carrier_ghz;
  Format.fprintf fmt "tuning gain: %.0f MHz/V@," r.E.kvco_mhz_per_v;
  let lo, hi = r.E.tuning_range_ghz in
  Format.fprintf fmt "tuning range: %.2f - %.2f GHz@," lo hi;
  Format.fprintf fmt
    "phase noise at 100 kHz: %.1f dBc/Hz   [paper: -100 dBc/Hz]@,"
    r.E.phase_noise_100k_dbc;
  Format.fprintf fmt "core current: %.1f mA at %.1f V   [paper: 5 mA, 1.8 V]@,"
    r.E.core_current_ma r.E.supply_v;
  Format.fprintf fmt "@]"

let runtime fmt (r : E.runtime) =
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt "Section 6 runtime note@,";
  hr fmt;
  Format.fprintf fmt
    "extraction %.2f s, impact simulation %.3f s (%d grid cells)@,"
    r.E.extraction_seconds r.E.simulation_seconds r.E.grid_cells;
  (match r.E.extractor with
   | None -> ()
   | Some x ->
     let module X = Sn_substrate.Extractor in
     Format.fprintf fmt
       "extractor: assemble %.2f s, reduce %.2f s, stitch %.2f s \
        (%d tiles, %d interface nodes)@,"
       x.X.assemble_seconds x.X.reduce_seconds x.X.stitch_seconds x.X.tiles
       x.X.interface_nodes;
     Format.fprintf fmt
       "extractor: %d CG iterations (%d MG levels), cache %d hit%s / %d \
        miss%s@,"
       x.X.cg_iterations_total x.X.mg_levels x.X.cache_hits
       (if x.X.cache_hits = 1 then "" else "s")
       x.X.cache_misses
       (if x.X.cache_misses = 1 then "" else "es"));
  Format.fprintf fmt "tile cache: %a@," Sn_substrate.Cache.pp_resolution
    r.E.tile_cache;
  (match r.E.reduction with
   | None -> ()
   | Some s ->
     Format.fprintf fmt
       "reduction: %d ports + %d internal -> rank %d (order %d, %.1f ms%s)@,"
       s.Reduced_model.ports s.Reduced_model.internal s.Reduced_model.rank
       s.Reduced_model.order
       (1e3 *. s.Reduced_model.build_seconds)
       (if Float.is_nan s.Reduced_model.est_error then ""
        else Printf.sprintf ", est. error %.1e" s.Reduced_model.est_error));
  Format.fprintf fmt
    "[paper: 20 min extraction + 15 min simulation on an HP-UX L2000]@,";
  Format.fprintf fmt "%a" Sn_engine.Pool.pp_stats r.E.pool;
  Format.fprintf fmt "@]"

let sweep_failures fmt failures =
  match failures with
  | [] -> ()
  | _ ->
    Format.fprintf fmt "@[<v>";
    hr fmt;
    Format.fprintf fmt "Failed sweep points (%d)@," (List.length failures);
    hr fmt;
    List.iter
      (fun (label, diag) ->
        Format.fprintf fmt "%-24s %a@," label Sn_engine.Diag.pp diag)
      failures;
    Format.fprintf fmt "@]"

let aggressor fmt (r : E.aggressor_comb) =
  let a = r.E.aggressor in
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt
    "Extension - digital aggressor spur comb (%s clock, %.0f mA spikes)@,"
    (U.eng ~unit:"Hz" a.Sn_rf.Aggressor.clock_freq)
    (1.0e3 *. a.Sn_rf.Aggressor.peak_current);
  hr fmt;
  Format.fprintf fmt "  %3s %12s %14s %12s %12s@," "k" "k*fclk"
    "injected[dBm]" "upper[dBm]" "lower[dBm]";
  List.iter
    (fun (l : Sn_rf.Aggressor.comb_line) ->
      Format.fprintf fmt "  %3d %12s %14.1f %12.1f %12.1f@,"
        l.Sn_rf.Aggressor.harmonic
        (U.eng ~unit:"Hz" l.Sn_rf.Aggressor.f_noise)
        l.Sn_rf.Aggressor.injected_dbm l.Sn_rf.Aggressor.upper_dbm
        l.Sn_rf.Aggressor.lower_dbm)
    r.E.lines;
  Format.fprintf fmt "total comb power: %.1f dBm@," r.E.total_dbm;
  Format.fprintf fmt "@]"

let lint fmt ~deck (r : Sn_analysis.Analyzer.report) =
  let module A = Sn_analysis in
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt "Lint - %s@," deck;
  hr fmt;
  (match r.A.Analyzer.diagnostics with
   | [] -> Format.fprintf fmt "clean@,"
   | ds ->
     List.iter (fun d -> Format.fprintf fmt "%a@," A.Rule.pp_diagnostic d) ds);
  let ne = List.length (A.Analyzer.errors r)
  and nw = List.length (A.Analyzer.warnings r) in
  Format.fprintf fmt "%d error%s, %d warning%s" ne
    (if ne = 1 then "" else "s")
    nw
    (if nw = 1 then "" else "s");
  if r.A.Analyzer.suppressed > 0 then
    Format.fprintf fmt " (%d suppressed)" r.A.Analyzer.suppressed;
  Format.fprintf fmt "@,@]"

let verify fmt ~deck (p : Flow.preflight) =
  let module A = Sn_analysis in
  let r = p.Flow.pf_report in
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt "Verify - %s@," deck;
  hr fmt;
  List.iter
    (fun d -> Format.fprintf fmt "%a@," A.Rule.pp_diagnostic d)
    r.A.Analyzer.diagnostics;
  (match p.Flow.pf_spans with
   | [] ->
     Format.fprintf fmt
       "conditioning : every node row spans < %.0e@," A.Numeric.span_limit
   | s :: _ ->
     let hi_name, hi = s.A.Numeric.sp_hi and lo_name, lo = s.A.Numeric.sp_lo in
     Format.fprintf fmt
       "conditioning : worst span %.1e at node %s (%s %.3g S vs %s %.3g S, \
        ~%.0f digits)@,"
       s.A.Numeric.sp_ratio s.A.Numeric.sp_node hi_name hi lo_name lo
       s.A.Numeric.sp_digits);
  (match p.Flow.pf_stiffness with
   | None ->
     Format.fprintf fmt
       "stiffness    : no resistively tied capacitive pair@,"
   | Some st ->
     Format.fprintf fmt
       "stiffness    : tau %s (%s) .. %s (%s), ratio %.1e%s@,"
       (U.eng ~unit:"s" st.A.Numeric.st_fast_tau)
       st.A.Numeric.st_fast_node
       (U.eng ~unit:"s" st.A.Numeric.st_slow_tau)
       st.A.Numeric.st_slow_node st.A.Numeric.st_ratio
       (if st.A.Numeric.st_ratio > A.Numeric.stiffness_limit then
          Printf.sprintf "; suggest dt <= %s"
            (U.eng ~unit:"s" st.A.Numeric.st_dt)
        else ""));
  (match p.Flow.pf_pool with
   | [] -> Format.fprintf fmt "passivity    : R/C pool is passive@,"
   | ds ->
     List.iter
       (fun d ->
         Format.fprintf fmt
           "passivity    : indefinite %s pencil (pivot %.3g at node %s, \
            component of %d, %d negative branch%s)@,"
           (match d.A.Numeric.pd_pencil with
            | `Conductance -> "conductance"
            | `Capacitance -> "capacitance")
           d.A.Numeric.pd_defect d.A.Numeric.pd_node d.A.Numeric.pd_dim
           d.A.Numeric.pd_negative
           (if d.A.Numeric.pd_negative = 1 then "" else "es"))
       ds);
  Format.fprintf fmt "reduction    : %s@,"
    (match p.Flow.pf_reduction with
     | Flow.Not_reduced -> "not reduced"
     | Flow.Certified -> "pencil certified passive"
     | Flow.Refused -> "certificate REFUSED (indefinite reduced pencil)");
  let ne = List.length (A.Analyzer.errors r)
  and nw = List.length (A.Analyzer.warnings r) in
  Format.fprintf fmt "%d error%s, %d warning%s" ne
    (if ne = 1 then "" else "s")
    nw
    (if nw = 1 then "" else "s");
  if r.A.Analyzer.suppressed > 0 then
    Format.fprintf fmt " (%d suppressed)" r.A.Analyzer.suppressed;
  Format.fprintf fmt " -> %s@,"
    (if Flow.preflight_failing p then "REFUSED" else "verified");
  Format.fprintf fmt "@]"

let cache_verification fmt ~dir (v : Sn_substrate.Cache.verification) =
  let module SC = Sn_substrate.Cache in
  Format.fprintf fmt "@[<v>";
  hr fmt;
  Format.fprintf fmt "Verify - tile cache %s@," dir;
  hr fmt;
  if v.SC.vf_entries = [] then Format.fprintf fmt "no entries@,"
  else
    List.iter
      (fun (key, status) ->
        Format.fprintf fmt "%s  %s@," key
          (match status with
           | SC.Certified -> "certified"
           | SC.Recertified -> "recertified (no stored certificate)"
           | SC.Stale -> "stale format (treated as a miss)"
           | SC.Bad why -> "BAD: " ^ why))
      v.SC.vf_entries;
  Format.fprintf fmt
    "%d certified, %d recertified, %d stale, %d bad -> %s@,"
    v.SC.vf_certified v.SC.vf_recertified v.SC.vf_stale v.SC.vf_bad
    (if v.SC.vf_bad = 0 then "verified" else "REFUSED");
  Format.fprintf fmt "@]"
