(** Domain-parallel sweep combinators.

    Every experiment of the paper's evaluation is a sweep: frequencies
    (Figs. 7-10), process corners, guard-ring and ground-wire sizing
    studies all re-solve independent merged models.  The combinators
    here fan those points out over the shared {!Sn_engine.Pool} and
    gather the results in input order, so a parallel sweep is
    bit-identical to the sequential one — the pool width only changes
    wall-clock time, never numbers.

    Pool width resolution, in priority order: the [?pool] argument, a
    {!set_jobs} call (the CLI's [--jobs]), the [SNOISE_JOBS]
    environment variable, [Domain.recommended_domain_count ()].  Width
    1 runs the exact sequential path (no domains are spawned). *)

val jobs : unit -> int
(** Width of the pool the combinators will use (resolving it creates
    the default pool on first call). *)

val set_jobs : int -> unit
(** Select the default pool width (clamped to
    [[1, Sn_engine.Pool.max_jobs]]).  Recreates the shared pool when
    the width changes. *)

val stats : unit -> Sn_engine.Pool.stats
(** Counters of the shared default pool ({!Sn_engine.Pool.stats}). *)

val reset_stats : unit -> unit
(** Reset the shared default pool's counters. *)

val map_points : ?pool:Sn_engine.Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_points f points] is [List.map f points] with the points
    evaluated in parallel on the pool (default: the shared pool) and
    the results in input order.  [f] must not share mutable state
    between points.  The first exception raised by any point is
    re-raised after the sweep drains. *)

val map_array : ?pool:Sn_engine.Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map_points}; results are positioned by input
    index. *)

val grid :
  ?pool:Sn_engine.Pool.t ->
  ('a -> 'b -> 'c) -> 'a list -> 'b list -> ('a * 'b * 'c) list
(** [grid f xs ys] evaluates [f x y] for the full cartesian product,
    flattened row-major ([xs] outer, [ys] inner) so every grid cell is
    an independent pool task.  Returns [(x, y, f x y)] triples in
    row-major order. *)

val corners :
  ?pool:Sn_engine.Pool.t -> ('c -> 'r) -> 'c list -> 'r list
(** [corners f cs] runs one independent flow evaluation per process
    corner (or any other scenario list) in parallel — {!map_points}
    under a name that reads like the sign-off loop it implements. *)

(** {1 Fault-tolerant sweeps}

    The plain combinators abort the whole sweep on the first
    exception.  The [_result] variants instead capture each point's
    failure, retry the point once sequentially on the calling domain
    (with the full DC rescue ladder available), and return a
    per-point [result] — one permanently bad point costs one [Error]
    entry, never the other points' work. *)

val map_points_result :
  ?pool:Sn_engine.Pool.t ->
  ('a -> 'b) -> 'a list -> ('b, Sn_engine.Diag.t) result list
(** [map_points_result f points] is {!map_points} with per-point
    capture and one sequential retry; results stay in input order.  A
    non-{!Sn_engine.Diag.Error} exception is wrapped as
    {!Sn_engine.Diag.Bad_input}. *)

val map_array_result :
  ?pool:Sn_engine.Pool.t ->
  ('a -> 'b) -> 'a array -> ('b, Sn_engine.Diag.t) result array
(** Array analogue of {!map_points_result}. *)

val grid_result :
  ?pool:Sn_engine.Pool.t ->
  ('a -> 'b -> 'c) -> 'a list -> 'b list ->
  ('a * 'b * ('c, Sn_engine.Diag.t) result) list
(** {!grid} with per-cell capture and retry: the coordinates of a
    failed cell survive alongside its diagnostic. *)
