(** Process-corner analysis: rerun the flow across technology
    variations (bulk resistivity, metal sheet resistance, contact
    resistance, junction capacitance) and report the spread of the
    coupling figures — the "sign-off" use the paper's conclusion
    anticipates.

    The corner values are multiplicative factors on the nominal
    {!Sn_tech.Tech.imec018} card. *)

type corner = {
  name : string;
  bulk_resistivity : float;  (** x nominal *)
  sheet_resistance : float;  (** x nominal, all metals *)
  contact_resistance : float;  (** x nominal *)
  well_capacitance : float;  (** x nominal *)
}

val nominal : corner
(** All factors 1.0 — the unscaled {!Sn_tech.Tech.imec018} card. *)

val corners_3sigma : corner list
(** nominal, slow (every parasitic worse) and fast (every parasitic
    better), plus the two mixed corners that matter for this coupling
    problem (resistive-worst and capacitive-worst). *)

val apply : corner -> Sn_tech.Tech.t -> Sn_tech.Tech.t
(** Scale a technology card by the corner factors. *)

type nmos_corner_result = {
  corner : corner;
  division_ratio : float;  (** 1/x of the SUB -> back-gate divider *)
  wire_ohms : float;
}

val nmos_spread :
  ?options:Flow.options -> ?corners:corner list -> unit ->
  nmos_corner_result list
(** Run the NMOS structure divider across the corners. *)

type vco_corner_result = {
  corner : corner;
  spur_at_10mhz_dbm : float;
  carrier_ghz : float;
}

val vco_spread :
  ?options:Flow.options -> ?corners:corner list -> unit ->
  vco_corner_result list
(** Run the VCO spur at 10 MHz across the corners. *)

val spread_db : vco_corner_result list -> float
(** Max - min spur level over the corners. *)
