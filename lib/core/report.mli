(** Textual rendering of the experiment results — the rows and series
    the paper's tables and figures show. *)

val fig3 : Format.formatter -> Experiments.fig3 -> unit
(** Fig. 3 table: divider with/without wire R and the bias sweep. *)

val sec3 : Format.formatter -> Experiments.sec3_numbers -> unit
(** Section-3 scalar claims next to the paper's quoted values. *)

val fig7 : Format.formatter -> Experiments.fig7 -> unit
(** Fig. 7 spur table plus the ASCII spectrum panel. *)

val fig8 : Format.formatter -> Experiments.fig8_family list -> unit
(** Fig. 8 spur-vs-frequency table, one block per tuning voltage. *)

val fig9 : Format.formatter -> Experiments.fig9 -> unit
(** Fig. 9 per-entry-point contribution curves and headline gaps. *)

val fig10 : Format.formatter -> Experiments.fig10 -> unit
(** Fig. 10 normal-vs-widened ground comparison. *)

val vco_card : Format.formatter -> Experiments.vco_card -> unit
(** Section-4 VCO design card. *)

val runtime : Format.formatter -> Experiments.runtime -> unit
(** Wall-clock breakdown of one flow run, including the worker-pool
    statistics of the impact sweep. *)

val aggressor : Format.formatter -> Experiments.aggressor_comb -> unit
(** Digital-aggressor spur comb (line table and total power). *)

val sweep_failures :
  Format.formatter -> (string * Sn_engine.Diag.t) list -> unit
(** Render the points a fault-tolerant sweep could not complete, one
    labelled diagnostic per line (see
    {!Sweep.map_points_result}).  Prints nothing for an empty list, so
    it can be appended unconditionally to any report. *)

val spectrum_ascii :
  ?width:int -> ?height:int -> Format.formatter -> (float * float) list -> unit
(** [spectrum_ascii fmt points] renders (frequency-offset, dBm) points
    as an ASCII spectrum plot — the Figure 7 panel. *)

val lint :
  Format.formatter -> deck:string -> Sn_analysis.Analyzer.report -> unit
(** Boxed lint report for one deck: one {!Sn_analysis.Rule.pp_diagnostic}
    line per finding (or ["clean"]) and an error/warning/suppressed
    summary.  The CLI's [snoise lint] text output. *)

val verify : Format.formatter -> deck:string -> Flow.preflight -> unit
(** Boxed numerical pre-flight report for one deck: every analyzer
    diagnostic, one line each for the conditioning / stiffness /
    passivity / reduction analyses, and a summary ending in
    [verified] or [REFUSED] ({!Flow.preflight_failing}).  The CLI's
    [snoise verify DECK] text output. *)

val cache_verification :
  Format.formatter -> dir:string -> Sn_substrate.Cache.verification -> unit
(** Boxed certificate-verification report for a tile-cache directory:
    one judged entry per line and the certified / recertified / stale /
    bad counts.  The CLI's [snoise verify --cache] text output. *)
