(** One interface over every extracted passive network — substrate
    macromodel, interconnect parasitics, or any merged R/C pool — that
    can be held in {e exact} form (the elements as extracted, port
    behaviour preserved exactly) or swapped for a {e rank-k reduced}
    form built by PRIMA block-Krylov projection
    ({!Sn_numerics.Krylov}): same ports, [rank] internal states instead
    of the full internal node set, passivity preserved by congruence.

    The reduced form realizes back into ordinary resistor / capacitor
    elements (over fresh internal nodes, values possibly negative —
    mathematical branches, not physical ones), so downstream stamping,
    compiled plans, caching and the server need no new element kinds:
    reduction is a netlist-to-netlist rewrite ({!reduce_deck}) applied
    before compilation. *)

type order_spec =
  | Fixed of int  (** match this many block moments *)
  | Auto of float
      (** grow the order until the estimated port-transfer error over
          the AC band drops below this relative tolerance *)

type config = {
  order : order_spec;
  s0_hz : float;  (** expansion point, Hz (rad/s = 2π·[s0_hz]) *)
  band : float * float;
      (** AC band (Hz) probed by the [Auto] error estimate *)
}

val default_config : config
(** [Fixed 2], expansion point 100 MHz, band 1 MHz – 10 GHz. *)

val config_digest : config -> string
(** Canonical one-line rendering of a config, stable across runs — the
    string cache digests fold in so reduced and exact artifacts never
    collide ([Plan_cache] override keys, [Sn_substrate.Cache]). *)

type stats = {
  ports : int;
  internal : int;  (** internal unknowns before reduction *)
  rank : int;  (** internal states after reduction *)
  order : int;  (** block moments matched *)
  build_seconds : float;
  est_error : float;
      (** [Auto] mode's final error estimate; [nan] for fixed order *)
}

type t

(** {1 Constructors} *)

val of_elements : ports:string list -> Sn_circuit.Element.t list -> t
(** [of_elements ~ports els] wraps a passive R/C pool in exact form.
    [ports] are the node names kept explicit under reduction
    (ground is implicit and never a port).
    Raises [Invalid_argument] when [els] contains a non-R/C element or
    a port node no element touches. *)

val of_macromodel : Sn_substrate.Macromodel.t -> t
(** The substrate macromodel as a reduced-model pool: ports are its
    port nodes and well nets, elements are {!Merge.of_macromodel}.
    (A Schur macromodel is already port-only, so reduction of this
    pool alone is the identity — its value is merging into a larger
    pool via {!elements} / {!reduce_deck}.) *)

val of_rc_netlist :
  ports:string list -> Sn_interconnect.Rc_netlist.t -> t
(** The interconnect parasitics as a reduced-model pool (elements are
    {!Merge.of_rc_netlist}, names prefixed ["itc_"]). *)

(** {1 Reduction} *)

val reduce : ?config:config -> t -> t
(** [reduce ?config t] is the rank-k reduced form of [t] (built from
    its exact elements; reducing an already-reduced model re-reduces
    from the stored exact form).  Falls back to the exact form — and
    logs a warning — when the internal pencil is singular (an internal
    island with no path to any port or ground) or when reduction would
    not shrink the model ([rank >= internal]). *)

val is_reduced : t -> bool
val ports : t -> string array
val stats : t -> stats option
(** Reduction stats of a reduced form ([None] for exact). *)

(** {1 Realization} *)

val to_elements : ?prefix:string -> t -> Sn_circuit.Element.t list
(** The model as netlist elements: the original elements for an exact
    form; for a reduced form, the (Ĝ, Ĉ) realization as R/C branches
    over the ports plus [rank] fresh internal nodes
    ([<prefix>x<i>], elements [<prefix>g<i>] / [<prefix>c<i>], default
    prefix ["red_"]).  Branch values may be negative. *)

(** {1 Passivity certificates} *)

val certificate :
  t -> (Sn_numerics.Passivity.cert * Sn_numerics.Passivity.cert) option
(** [certificate t] certifies a {e reduced} model's (Ĝ, Ĉ) pencil:
    signed PSD certificates bound to the model's port set.  [None] for
    an exact form, and — by construction of
    {!Sn_numerics.Passivity.certify} — for any pencil that fails the
    LDLᵀ check: a de-passivated pencil never gets a certificate.
    SPRIM congruence preserves passivity, so a healthy reduction
    always certifies. *)

val verify_certificate :
  t -> Sn_numerics.Passivity.cert * Sn_numerics.Passivity.cert -> bool
(** Re-verify stored certificates against the pencil bytes (hashing
    only, no factorization).  [false] for exact forms and on any
    mismatch. *)

val port_admittance : t -> freq_hz:float -> Complex.t array array
(** The model's port admittance matrix at [freq_hz] — the quantity
    reduction preserves, used by tests and the [Auto] error estimate.
    Dense [O(n³)] in the model size; meant for reduced forms and
    test-sized exact references. *)

(** {1 Deck rewrite} *)

val reduce_deck :
  ?config:config -> ?keep:string list -> Sn_circuit.Netlist.t ->
  Sn_circuit.Netlist.t
(** [reduce_deck ?config ?keep nl] swaps the passive R/C pool of [nl]
    for its reduced realization: ports are every passive node also
    touched by a non-R/C element, named in [keep], or named in a deck
    directive [*%snoise reduce keep=n1,n2,...]; all other
    passive-only nodes are eliminated.  Nodes that are {e not} kept no
    longer exist downstream — observation nodes must be listed in
    [keep] (or the directive) to survive.  Active elements, title,
    pragmas and directives are carried over unchanged.  Returns [nl]
    itself when there is nothing to reduce, when reduction would not
    shrink the deck, or when the passive pool is irreducible
    (singular internal pencil — logged). *)

val reduce_deck_certified :
  ?config:config -> ?keep:string list -> Sn_circuit.Netlist.t ->
  Sn_circuit.Netlist.t
  * (t * (Sn_numerics.Passivity.cert * Sn_numerics.Passivity.cert) option)
    option
(** {!reduce_deck} plus the artifact the rewrite realized: [None] when
    nothing was reduced (the returned netlist is [nl] itself),
    otherwise the reduced model and its {!certificate} — kept by the
    server's plan cache alongside the compiled plan, so a resident
    plan's pencil can be re-verified by hashing alone
    ([snoise verify], server [verify] verb). *)

(** {1 Process-wide counters} *)

val last_stats : unit -> stats option
(** Stats of the most recent reduction in this process (for
    [snoise runtime] and the server's [stats] verb). *)

val reductions : unit -> int
(** How many reductions have run in this process. *)

val reset_stats : unit -> unit
