(* Exact / rank-k reduced forms of extracted passive networks.

   The exact form stores the R/C elements as extracted.  The reduced
   form stores the PRIMA-projected (Ĝ, Ĉ) pencil (Krylov.reduce) plus
   the port names, and realizes back into R/C branches on demand so
   the rest of the engine never learns a new element kind. *)

module C = Sn_circuit
module N = Sn_numerics

let src = Logs.Src.create "snoise.reduce" ~doc:"Model-order reduction"

module Log = (val Logs.src_log src : Logs.LOG)

type order_spec = Fixed of int | Auto of float

type config = {
  order : order_spec;
  s0_hz : float;
  band : float * float;
}

let default_config = { order = Fixed 2; s0_hz = 1e8; band = (1e6, 1e10) }

let config_digest c =
  let order =
    match c.order with
    | Fixed k -> Printf.sprintf "fixed:%d" k
    | Auto tol -> Printf.sprintf "auto:%.17g" tol
  in
  Printf.sprintf "prima;order=%s;s0=%.17g;band=%.17g:%.17g" order c.s0_hz
    (fst c.band) (snd c.band)

type stats = {
  ports : int;
  internal : int;
  rank : int;
  order : int;
  build_seconds : float;
  est_error : float;
}

type form = Exact | Reduced of { result : N.Krylov.result; stats : stats }

type t = {
  port_names : string array;
  exact : C.Element.t list;  (** always the as-extracted elements *)
  form : form;
}

let n_reductions = Atomic.make 0
let last = Atomic.make (None : stats option)
let last_stats () = Atomic.get last
let reductions () = Atomic.get n_reductions

let reset_stats () =
  Atomic.set n_reductions 0;
  Atomic.set last None

let is_passive = function
  | C.Element.Resistor _ | C.Element.Capacitor _ -> true
  | _ -> false

let of_elements ~ports els =
  List.iter
    (fun e ->
      if not (is_passive e) then
        invalid_arg
          (Printf.sprintf "Reduced_model.of_elements: %s is not an R/C element"
             (C.Element.name e)))
    els;
  let touched = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (fun n -> if not (C.Element.is_ground n) then Hashtbl.replace touched n ())
        (C.Element.nodes e))
    els;
  let port_names =
    ports
    |> List.filter (fun n -> not (C.Element.is_ground n))
    |> List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) []
    |> Array.of_list
  in
  Array.iter
    (fun n ->
      if not (Hashtbl.mem touched n) then
        invalid_arg
          (Printf.sprintf "Reduced_model.of_elements: port %S touches no element"
             n))
    port_names;
  { port_names; exact = els; form = Exact }

let of_macromodel m =
  let module Mm = Sn_substrate.Macromodel in
  let ports =
    Array.to_list m.Mm.ports
    |> List.map (fun p -> p.Sn_substrate.Port.name)
  in
  let wells = List.map (fun (p, _) -> Merge.well_net p) m.Mm.well_capacitance in
  of_elements ~ports:(ports @ wells) (Merge.of_macromodel m)

let of_rc_netlist ~ports nl = of_elements ~ports (Merge.of_rc_netlist nl)

let is_reduced t = match t.form with Exact -> false | Reduced _ -> true
let ports t = Array.copy t.port_names
let stats t = match t.form with Exact -> None | Reduced r -> Some r.stats

(* Assemble the (G, C) pencil of the pool over ports-first node
   ordering; returns the index map alongside. *)
let assemble t =
  let index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace index n i) t.port_names;
  let next = ref (Array.length t.port_names) in
  let node_id n =
    match Hashtbl.find_opt index n with
    | Some i -> i
    | None ->
      let i = !next in
      Hashtbl.replace index n i;
      incr next;
      i
  in
  (* internal nodes in sorted order for deterministic assembly *)
  let internal =
    List.concat_map C.Element.nodes t.exact
    |> List.filter (fun n ->
           (not (C.Element.is_ground n)) && not (Hashtbl.mem index n))
    |> List.sort_uniq String.compare
  in
  List.iter (fun n -> ignore (node_id n)) internal;
  let n = !next in
  let gb = N.Sparse.builder n n and cb = N.Sparse.builder n n in
  let stamp b n1 n2 v =
    let g1 = C.Element.is_ground n1 and g2 = C.Element.is_ground n2 in
    if not (g1 && g2) then begin
      if not g1 then N.Sparse.add b (node_id n1) (node_id n1) v;
      if not g2 then N.Sparse.add b (node_id n2) (node_id n2) v;
      if (not g1) && not g2 then begin
        N.Sparse.add b (node_id n1) (node_id n2) (-.v);
        N.Sparse.add b (node_id n2) (node_id n1) (-.v)
      end
    end
  in
  List.iter
    (function
      | C.Element.Resistor { n1; n2; ohms; _ } -> stamp gb n1 n2 (1.0 /. ohms)
      | C.Element.Capacitor { n1; n2; farads; _ } -> stamp cb n1 n2 farads
      | _ -> assert false)
    t.exact;
  (N.Sparse.finalize gb, N.Sparse.finalize cb, n)

let hat_admittance (r : N.Krylov.result) ~omega =
  N.Krylov.port_admittance ~g:r.N.Krylov.ghat ~c:r.N.Krylov.chat
    ~ports:(Array.init r.N.Krylov.nports (fun i -> i))
    ~omega

let port_admittance t ~freq_hz =
  let omega = 2.0 *. Float.pi *. freq_hz in
  match t.form with
  | Reduced { result; _ } -> hat_admittance result ~omega
  | Exact ->
    let g, c, _n = assemble t in
    N.Krylov.port_admittance ~g:(N.Sparse.to_dense g)
      ~c:(N.Sparse.to_dense c)
      ~ports:(Array.init (Array.length t.port_names) (fun i -> i))
      ~omega

(* Max entrywise |y1 - y2| relative to the largest |y2| entry. *)
let rel_diff y1 y2 =
  let p = Array.length y2 in
  let scale = ref 0.0 and diff = ref 0.0 in
  for a = 0 to p - 1 do
    for b = 0 to p - 1 do
      scale := Float.max !scale (Complex.norm y2.(a).(b));
      diff := Float.max !diff (Complex.norm (Complex.sub y1.(a).(b) y2.(a).(b)))
    done
  done;
  if !scale > 0.0 then !diff /. !scale else !diff

let probe_freqs (lo, hi) =
  let lo = Float.max lo 1.0 and k = 5 in
  let hi = Float.max hi (lo *. 10.) in
  Array.init k (fun i ->
      lo *. ((hi /. lo) ** (float_of_int i /. float_of_int (k - 1))))

let reduce ?(config = default_config) t =
  let p = Array.length t.port_names in
  let g, c, n = assemble t in
  let internal = n - p in
  let exact_t = { t with form = Exact } in
  if internal = 0 then exact_t
  else
    let s0 = 2.0 *. Float.pi *. Float.max config.s0_hz 0.0 in
    let run order =
      N.Krylov.reduce ~s0 ~order ~g ~c (Array.init p (fun i -> i))
    in
    match
      match config.order with
      | Fixed k -> (run (max 1 k), Float.nan)
      | Auto tol ->
        let probes = probe_freqs config.band in
        let eval r =
          Array.map (fun f -> hat_admittance r ~omega:(2.0 *. Float.pi *. f))
            probes
        in
        let rec grow order prev prev_y =
          if order > 32 || prev.N.Krylov.rank >= internal then (prev, 0.0)
          else
            let r = run order in
            let y = eval r in
            let err =
              Array.to_list (Array.map2 rel_diff prev_y y)
              |> List.fold_left Float.max 0.0
            in
            if err <= tol || r.N.Krylov.rank = prev.N.Krylov.rank then (r, err)
            else grow (order + 1) r y
        in
        let r1 = run 1 in
        grow 2 r1 (eval r1)
    with
    | exception N.Splu.Singular k ->
      Log.warn (fun m ->
          m "reduction skipped: internal pencil singular at unknown %d \
             (island with no port/ground path); keeping exact form" k);
      exact_t
    | exception N.Lu.Singular k ->
      Log.warn (fun m ->
          m "reduction skipped: singular pivot %d during error probe; \
             keeping exact form" k);
      exact_t
    | result, est_error ->
      if result.N.Krylov.rank >= internal then begin
        Log.info (fun m ->
            m "reduction found no win: rank %d >= %d internal unknowns; \
               keeping exact form" result.N.Krylov.rank internal);
        exact_t
      end
      else begin
        let stats =
          {
            ports = p;
            internal;
            rank = result.N.Krylov.rank;
            order = result.N.Krylov.order;
            build_seconds = result.N.Krylov.build_seconds;
            est_error;
          }
        in
        Atomic.incr n_reductions;
        Atomic.set last (Some stats);
        Log.info (fun m ->
            m "reduced %d ports + %d internal -> rank %d (order %d, %.1f ms)"
              p internal stats.rank stats.order
              (1e3 *. stats.build_seconds));
        { t with form = Reduced { result; stats } }
      end

(* Realize a symmetric admittance-like matrix as two-terminal branches:
   off-diagonal h_ij is branch value -h_ij between i and j, the row sum
   is the branch to ground.  [emit] receives (node_i, node_j) names
   with [""] meaning ground. *)
let realize_branches h names emit =
  let n = Array.length names in
  let scale = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      scale := Float.max !scale (Float.abs (N.Mat.get h i j))
    done
  done;
  let drop = 1e-14 *. !scale in
  for i = 0 to n - 1 do
    let rowsum = ref 0.0 in
    for j = 0 to n - 1 do
      rowsum := !rowsum +. N.Mat.get h i j;
      if j > i then begin
        let v = -.N.Mat.get h i j in
        if Float.abs v > drop then emit names.(i) names.(j) v
      end
    done;
    if Float.abs !rowsum > drop then emit names.(i) "" !rowsum
  done

let to_elements ?(prefix = "red_") t =
  match t.form with
  | Exact -> t.exact
  | Reduced { result; _ } ->
    let p = result.N.Krylov.nports and k = result.N.Krylov.rank in
    let names =
      Array.init (p + k) (fun i ->
          if i < p then t.port_names.(i)
          else Printf.sprintf "%sx%d" prefix (i - p))
    in
    let acc = ref [] and ng = ref 0 and nc = ref 0 in
    realize_branches result.N.Krylov.ghat names (fun a b gb ->
        let name = Printf.sprintf "%sg%d" prefix !ng in
        incr ng;
        let n2 = if b = "" then "0" else b in
        acc := C.Element.Resistor { name; n1 = a; n2; ohms = 1.0 /. gb } :: !acc);
    realize_branches result.N.Krylov.chat names (fun a b farads ->
        let name = Printf.sprintf "%sc%d" prefix !nc in
        incr nc;
        let n2 = if b = "" then "0" else b in
        acc := C.Element.Capacitor { name; n1 = a; n2; farads } :: !acc);
    List.rev !acc

(* Certification context: ties a pencil certificate to this model's
   port set, so a certificate from a different reduction never
   verifies against it. *)
let cert_context t =
  "reduced-pencil:" ^ String.concat "," (Array.to_list t.port_names)

let certificate t =
  match t.form with
  | Exact -> None
  | Reduced { result; _ } -> (
    let context = cert_context t in
    match
      ( N.Passivity.certify ~context result.N.Krylov.ghat,
        N.Passivity.certify ~context result.N.Krylov.chat )
    with
    | Some cg, Some cc -> Some (cg, cc)
    | _ -> None)

let verify_certificate t (cg, cc) =
  match t.form with
  | Exact -> false
  | Reduced { result; _ } ->
    let context = cert_context t in
    N.Passivity.verify ~context result.N.Krylov.ghat cg
    && N.Passivity.verify ~context result.N.Krylov.chat cc

let directive_keeps nl =
  C.Netlist.directives nl
  |> List.concat_map (fun d ->
         if String.equal d.C.Netlist.verb "reduce" then
           List.concat_map
             (fun (k, v) ->
               if String.equal k "keep" then String.split_on_char ',' v else [])
             d.C.Netlist.args
         else [])
  |> List.filter (fun s -> s <> "")

let reduce_deck_certified ?(config = default_config) ?(keep = []) nl =
  let passive, active =
    List.partition is_passive (C.Netlist.elements nl)
  in
  if passive = [] then (nl, None)
  else begin
    let keep = keep @ directive_keeps nl in
    let active_nodes = Hashtbl.create 64 in
    List.iter
      (fun e ->
        List.iter (fun n -> Hashtbl.replace active_nodes n ())
          (C.Element.nodes e))
      active;
    List.iter (fun n -> Hashtbl.replace active_nodes n ()) keep;
    let passive_nodes =
      List.concat_map C.Element.nodes passive
      |> List.filter (fun n -> not (C.Element.is_ground n))
      |> List.sort_uniq String.compare
    in
    let ports_list =
      List.filter (fun n -> Hashtbl.mem active_nodes n) passive_nodes
    in
    let internal = List.length passive_nodes - List.length ports_list in
    if internal = 0 then (nl, None)
    else begin
      let model = reduce ~config (of_elements ~ports:ports_list passive) in
      match model.form with
      | Exact -> (nl, None)
      | Reduced _ ->
        ( C.Netlist.create ~title:(C.Netlist.title nl)
            ~pragmas:(C.Netlist.pragmas nl)
            ~directives:(C.Netlist.directives nl)
            ~locs:(C.Netlist.element_locs nl)
            (active @ to_elements model),
          Some (model, certificate model) )
    end
  end

let reduce_deck ?config ?keep nl =
  fst (reduce_deck_certified ?config ?keep nl)
