(* Sweep combinators: thin, order-preserving adapters from the
   experiment drivers onto the shared worker pool.  All the
   scheduling, stats and width policy live in Sn_engine.Pool; this
   module only chooses the pool and shapes the work. *)

module Pool = Sn_engine.Pool
module Diag = Sn_engine.Diag

let log_src = Logs.Src.create "sn.core.sweep" ~doc:"sweep combinators"

module Log = (val Logs.src_log log_src : Logs.LOG)

let jobs () = Pool.jobs (Pool.default ())
let set_jobs n = Pool.set_default_jobs n
let stats () = Pool.stats (Pool.default ())
let reset_stats () = Pool.reset_stats (Pool.default ())

let resolve = function Some p -> p | None -> Pool.default ()

let map_points ?pool f points = Pool.map_list (resolve pool) f points
let map_array ?pool f points = Pool.map_array (resolve pool) f points

let grid ?pool f xs ys =
  let cells = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs in
  map_points ?pool (fun (x, y) -> (x, y, f x y)) cells

let corners ?pool f cs = map_points ?pool f cs

(* ------------------------------------------------------------------ *)
(* fault-tolerant variants *)

let diag_of_exn = function
  | Diag.Error d -> d
  | e -> Diag.Bad_input { loc = Diag.loc "sweep"; what = Printexc.to_string e }

(* Pool workers capture per-point exceptions; each failed point then
   gets exactly one sequential retry on the calling domain — with the
   full DC rescue ladder available — before it is written off as an
   [Error] carrying the diagnostic.  The retry is sequential on
   purpose: a point that failed under parallel load re-runs in the
   quietest environment we can offer. *)
let map_array_result ?pool f points =
  let p = resolve pool in
  Pool.map_array_result p f points
  |> Array.mapi (fun i r ->
         match r with
         | Ok v -> Ok v
         | Error first ->
           Log.info (fun m ->
               m "sweep point %d failed (%s); retrying sequentially" i
                 (Printexc.to_string first));
           (try Ok (f points.(i))
            with e ->
              let d = diag_of_exn e in
              Log.warn (fun m ->
                  m "sweep point %d failed permanently: %a" i Diag.pp d);
              Error d))

let map_points_result ?pool f points =
  Array.to_list (map_array_result ?pool f (Array.of_list points))

let grid_result ?pool f xs ys =
  let cells = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs in
  List.map2
    (fun (x, y) r -> (x, y, r))
    cells
    (map_points_result ?pool (fun (x, y) -> f x y) cells)
