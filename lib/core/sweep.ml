(* Sweep combinators: thin, order-preserving adapters from the
   experiment drivers onto the shared worker pool.  All the
   scheduling, stats and width policy live in Sn_engine.Pool; this
   module only chooses the pool and shapes the work. *)

module Pool = Sn_engine.Pool

let jobs () = Pool.jobs (Pool.default ())
let set_jobs n = Pool.set_default_jobs n
let stats () = Pool.stats (Pool.default ())
let reset_stats () = Pool.reset_stats (Pool.default ())

let resolve = function Some p -> p | None -> Pool.default ()

let map_points ?pool f points = Pool.map_list (resolve pool) f points
let map_array ?pool f points = Pool.map_array (resolve pool) f points

let grid ?pool f xs ys =
  let cells = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs in
  map_points ?pool (fun (x, y) -> (x, y, f x y)) cells

let corners ?pool f cs = map_points ?pool f cs
