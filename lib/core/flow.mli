(** The paper's simulation methodology (Figure 2) end to end:

    layout + technology
    -> substrate macromodel (sn_substrate)
    -> interconnect RC model (sn_interconnect)
    -> circuit model (sn_circuit)
    -> merged impact model (Merge)
    -> impact simulation (sn_engine AC) and spur prediction (sn_rf).

    A flow value holds the extracted models of one structure; building
    it is the expensive step (substrate extraction dominates), and the
    analyses that follow reuse it.  Flow values are immutable after
    construction, so independent analyses of one flow may run on
    parallel pool workers ([Snoise.Sweep]). *)

(** Knobs of one flow run — the ablations of the paper's evaluation
    are all expressed as option records. *)
type options = {
  grid : Sn_substrate.Grid.config;
      (** substrate FDM discretization (default 48x48, four doping
          layers) *)
  tiles : int * int;
      (** hierarchical-Schur tiling of the substrate extraction
          (default [(1, 1)], the whole-die reduction) — see
          {!Sn_substrate.Tiling} *)
  interconnect_resistance : bool;
      (** [false] reproduces the "classical flow" that ignores wire R *)
  widen_ground : float option;
      (** Fig. 10: scale factor applied to the ground-net wire widths
          before extraction *)
  tech : Sn_tech.Tech.t;
      (** process card; default {!Sn_tech.Tech.imec018} — corner
          analysis swaps in scaled variants *)
  lint : bool;
      (** run the {!Sn_analysis} rule suite on every merged model
          before simulating it (default [true]); error-severity
          diagnostics refuse to simulate by raising
          {!Sn_engine.Diag.Error} *)
  reduce : Reduced_model.config option;
      (** swap each merged model's passive pool (substrate resistors,
          well capacitors, interconnect RC) for its PRIMA rank-k
          realization ({!Reduced_model.reduce_deck}) before
          simulating.  [None] (the default) follows the process-wide
          default set by {!set_default_reduction} — so figure flows
          built with {!default_options} honour the CLI's
          [--reduce-order] / [--reduce-tol].  Observation nodes the
          flow needs (injection node, back-gate probes, spur entry
          nodes) are kept explicit automatically. *)
}

val default_options : options
(** The paper's setup: 48x48 grid, extracted interconnect resistance,
    nominal widths, the 0.18 um high-ohmic imec card, lint gate on,
    no reduction. *)

val set_default_reduction : Reduced_model.config option -> unit
(** Process-wide reduction default — the CLI's [--reduce-order k] /
    [--reduce-tol e] knob.  Applies wherever an options record leaves
    [reduce] as [None]. *)

val reduction_of : options -> Reduced_model.config option
(** The reduction configuration in effect for [options] (its own
    [reduce] field, else the process-wide default). *)

val lint_gate : ?enabled:bool -> Sn_circuit.Netlist.t -> unit
(** [lint_gate nl] runs {!Sn_analysis.Analyzer.analyze} (with deck
    pragmas honoured) and refuses a netlist with error-severity
    diagnostics by raising {!Sn_engine.Diag.Error} with a
    {!Sn_engine.Diag.Bad_input} listing every error; warnings are
    logged once per distinct message.  [?enabled:false] (or
    {!disable_lint}) turns the gate into a no-op.  The flow calls this
    on every merged model it is about to simulate. *)

val disable_lint : unit -> unit
(** Process-wide lint kill switch — the CLI's [--no-lint].  Overrides
    the per-flow [lint] option. *)

(* ------------------------------------------------------------------ *)
(** {1 Numerical pre-flight}

    Everything [snoise verify] reports about a deck: the full analyzer
    report (structural and numeric rules), the raw analyses behind the
    numeric rules ({!Sn_analysis.Numeric}), and — when a reduction is
    configured process-wide — whether the deck's reduced pencil earns
    a passivity certificate.  Purely static: no DC solve, no sweep, no
    extraction. *)

(** Did the configured model-order reduction certify? *)
type reduction_verdict =
  | Not_reduced
      (** no reduction configured, or the deck has nothing to reduce *)
  | Certified  (** the reduced (Ĝ, Ĉ) pencil carries PSD certificates *)
  | Refused
      (** reduction produced an indefinite pencil —
          {!Sn_numerics.Passivity.certify} declined to sign it *)

val reduction_verdict_name : reduction_verdict -> string
(** Stable kebab-case name for JSON output: ["not-reduced"],
    ["certified"], ["refused"]. *)

type preflight = {
  pf_report : Sn_analysis.Analyzer.report;
  pf_spans : Sn_analysis.Numeric.span list;
      (** conductance spans above {!Sn_analysis.Numeric.span_limit} *)
  pf_stiffness : Sn_analysis.Numeric.stiffness option;
      (** RC time-constant extremes, when the deck has a resistively
          tied capacitive pair at all *)
  pf_pool : Sn_analysis.Numeric.pool_defect list;
      (** indefinite R/C pool components *)
  pf_reduction : reduction_verdict;
}

val preflight :
  ?config:Sn_analysis.Analyzer.config -> Sn_circuit.Netlist.t -> preflight
(** Run the pre-flight over a deck.  [?config] tunes the analyzer pass
    exactly as in {!Sn_analysis.Analyzer.analyze} (deck pragmas are
    honoured either way). *)

val preflight_failing : preflight -> bool
(** The verify gate: [true] when any diagnostic fired (warnings
    included — verify is stricter than the lint gate by design) or the
    configured reduction was refused a certificate. *)

(* ------------------------------------------------------------------ *)
(** {1 Compiled decks (resident flows)}

    The per-invocation CLI pays parse, lint, MNA build, stamp-plan
    compilation and the DC bias on every run.  A {!compiled} value
    pays each stage exactly once and memoizes the rest, which is what
    the [snoise serve] daemon keeps hot between requests: a warm
    served analysis is a pure solve over pre-compiled plans.  Values
    are safe to share between threads — the lazily-computed stages are
    memoized behind a mutex. *)

type compiled
(** One deck's compiled artifacts: netlist, MNA structure,
    {!Sn_engine.Stamp_plan}, and (lazily) the DC operating point and
    the complex {!Sn_engine.Ac_plan} at that bias. *)

val compile_deck : ?lint:bool -> Sn_circuit.Netlist.t -> compiled
(** [compile_deck nl] runs the {!lint_gate} (unless [~lint:false]) and
    compiles the deck's stamp plan.  The expensive bias-dependent
    stages are deferred until first use.  Raises
    {!Sn_engine.Diag.Error} on lint errors, like every flow entry
    point. *)

val compiled_netlist : compiled -> Sn_circuit.Netlist.t
(** The deck the artifacts were compiled from. *)

val compiled_mna : compiled -> Sn_engine.Mna.t
(** The deck's MNA structure (node/branch name resolution). *)

val compiled_plan : compiled -> Sn_engine.Stamp_plan.t
(** The compiled stamp plan — what {!Sn_engine.Dc.solve_plan} and the
    transient engine consume. *)

val compiled_bias : compiled -> Sn_engine.Dc.solution
(** The DC operating point, solved on first call and memoized.
    Raises {!Sn_engine.Diag.Error} when the rescue ladder is
    exhausted; the failure is {e not} memoized, so a later call
    retries. *)

val compiled_bias_cached : compiled -> bool
(** Whether {!compiled_bias} has already been computed — how the
    server's stats distinguish a bias hit from a bias solve. *)

val compiled_ac_plan : compiled -> Sn_engine.Ac_plan.t
(** The complex G + jwB plan compiled at {!compiled_bias}, memoized.
    Because the plan also carries its master factorization after the
    first solve, repeated served AC/noise requests skip the symbolic
    factorization too. *)

(* ------------------------------------------------------------------ *)
(** {1 NMOS measurement structure (paper section 3)} *)

type nmos_flow
(** Extracted models of the four-finger NMOS measurement structure
    (substrate macromodel + ground interconnect), ready for
    bias-dependent analysis. *)

val build_nmos :
  ?options:options -> Sn_testchip.Nmos_structure.params -> nmos_flow
(** Extracts the substrate macromodel and the ground interconnect of
    the measurement structure once; bias-dependent analyses reuse
    them. *)

val nmos_macromodel : nmos_flow -> Sn_substrate.Macromodel.t
(** The reduced substrate admittance model between the structure's
    contacts (injection pad, rings, back gate). *)

val nmos_ground_wire_resistance : nmos_flow -> float
(** Extracted metal resistance from the MOS guard ring to the pad. *)

val nmos_divider : nmos_flow -> float
(** SUB -> back-gate voltage division with the rings grounded through
    their extracted interconnect (the paper's 1/652 figure), evaluated
    at 1 MHz where the structure is purely resistive. *)

val nmos_merged : nmos_flow -> vgs:float -> vds:float -> Sn_circuit.Netlist.t
(** Merged impact model (substrate + interconnect + devices linearized
    at the given bias), the netlist the AC engine simulates. *)

(** One bias point of the Fig. 4/5 substrate-to-drain transfer
    characterization. *)
type nmos_point = {
  vgs : float;  (** gate bias, V *)
  vds : float;  (** drain bias, V *)
  gmb_total : float;  (** S, all four devices *)
  gds_total : float;  (** S, all four devices *)
  transfer_sim_db : float;  (** AC |v(d)| / |v(sub_inject)| *)
  transfer_hand_db : float;  (** divider * gmb / gds, the paper's check *)
}

val nmos_transfer : nmos_flow -> vgs:float -> vds:float -> freq:float -> nmos_point
(** Simulates the substrate-to-drain transfer at one bias point and
    also evaluates the paper's hand formula for cross-checking. *)

(* ------------------------------------------------------------------ *)
(** {1 VCO (paper sections 4-6)} *)

type vco_flow
(** Extracted models of the 3 GHz LC-VCO test chip at one tuning
    voltage: substrate macromodel, ground/tank interconnect, and the
    oscillator operating point. *)

val build_vco :
  ?options:options -> Sn_testchip.Vco_chip.params -> vtune:float -> vco_flow
(** Runs the full extraction chain for the VCO chip at tuning voltage
    [vtune]; the returned flow is reused by every spur analysis. *)

val vco_merged : vco_flow -> Sn_circuit.Netlist.t
(** Merged impact model of the VCO (substrate + interconnect + the
    linearized oscillator core). *)

val vco_oscillator : vco_flow -> Sn_rf.Impact.oscillator
(** Oscillator operating point (carrier, amplitude, sensitivities)
    consumed by the spur model. *)

val vco_ground_wire_resistance : vco_flow -> float
(** Extracted resistance of the VCO ground net, the Fig. 10 knob. *)

val vco_carrier_freq : vco_flow -> float
(** Free-running carrier frequency at this flow's [vtune], Hz. *)

val vco_amplitude : vco_flow -> float
(** Differential tank amplitude at the operating point, V. *)

val vco_transfers :
  vco_flow -> f_noise:float array ->
  (float -> string -> Complex.t)
(** [vco_transfers flow ~f_noise] runs the AC impact simulation of the
    merged model over the noise frequencies (unit drive at the noise
    source) and returns the interpolating transfer accessor [h f node]
    used by the spur model.  The inductor entry's capacitive transfer
    is formed from the bulk potential under the coil and the tank's
    common-mode impedance. *)

val vco_spur :
  vco_flow -> h:(float -> string -> Complex.t) -> p_noise_dbm:float ->
  f_noise:float -> Sn_rf.Impact.spur
(** Spur prediction for a substrate tone of the given power (dBm into
    the 50 ohm injection chain). *)
