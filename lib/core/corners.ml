module T = Sn_tech.Tech
module Tc = Sn_testchip
module Impact = Sn_rf.Impact

type corner = {
  name : string;
  bulk_resistivity : float;
  sheet_resistance : float;
  contact_resistance : float;
  well_capacitance : float;
}

let nominal =
  { name = "nominal"; bulk_resistivity = 1.0; sheet_resistance = 1.0;
    contact_resistance = 1.0; well_capacitance = 1.0 }

let corners_3sigma =
  [
    nominal;
    { name = "slow"; bulk_resistivity = 1.3; sheet_resistance = 1.2;
      contact_resistance = 1.5; well_capacitance = 1.2 };
    { name = "fast"; bulk_resistivity = 0.7; sheet_resistance = 0.8;
      contact_resistance = 0.6; well_capacitance = 0.8 };
    (* resistive-worst: low-ohmic substrate couples harder, resistive
       wires bounce harder *)
    { name = "res-worst"; bulk_resistivity = 0.7; sheet_resistance = 1.2;
      contact_resistance = 0.6; well_capacitance = 1.0 };
    (* capacitive-worst: bigger junctions, everything else nominal *)
    { name = "cap-worst"; bulk_resistivity = 1.0; sheet_resistance = 1.0;
      contact_resistance = 1.0; well_capacitance = 1.4 };
  ]

let apply c (tech : T.t) =
  let substrate = tech.T.substrate in
  {
    tech with
    T.metals =
      List.map
        (fun (m : T.metal) ->
          { m with
            T.sheet_resistance = m.T.sheet_resistance *. c.sheet_resistance })
        tech.T.metals;
    T.substrate =
      {
        T.layers =
          List.map
            (fun (l : T.substrate_layer) ->
              { l with T.resistivity = l.T.resistivity *. c.bulk_resistivity })
            substrate.T.layers;
        T.contact_resistance =
          substrate.T.contact_resistance *. c.contact_resistance;
        T.nwell_cap_area = substrate.T.nwell_cap_area *. c.well_capacitance;
        T.nwell_cap_perimeter =
          substrate.T.nwell_cap_perimeter *. c.well_capacitance;
      };
  }

type nmos_corner_result = {
  corner : corner;
  division_ratio : float;
  wire_ohms : float;
}

let with_corner options c =
  { options with Flow.tech = apply c options.Flow.tech }

let nmos_spread ?(options = Flow.default_options)
    ?(corners = corners_3sigma) () =
  Sweep.corners
    (fun c ->
      let flow =
        Flow.build_nmos ~options:(with_corner options c)
          Tc.Nmos_structure.default
      in
      {
        corner = c;
        division_ratio = 1.0 /. Flow.nmos_divider flow;
        wire_ohms = Flow.nmos_ground_wire_resistance flow;
      })
    corners

type vco_corner_result = {
  corner : corner;
  spur_at_10mhz_dbm : float;
  carrier_ghz : float;
}

let vco_spread ?(options = Flow.default_options) ?(corners = corners_3sigma)
    () =
  Sweep.corners
    (fun c ->
      let flow =
        Flow.build_vco ~options:(with_corner options c) Tc.Vco_chip.default
          ~vtune:0.0
      in
      let h = Flow.vco_transfers flow ~f_noise:[| 10.0e6 |] in
      let spur =
        Flow.vco_spur flow ~h ~p_noise_dbm:Experiments.paper_noise_dbm
          ~f_noise:10.0e6
      in
      {
        corner = c;
        spur_at_10mhz_dbm = spur.Impact.upper_dbm;
        carrier_ghz = Flow.vco_carrier_freq flow /. 1.0e9;
      })
    corners

let spread_db results =
  let dbs = List.map (fun r -> r.spur_at_10mhz_dbm) results in
  List.fold_left Float.max Float.neg_infinity dbs
  -. List.fold_left Float.min Float.infinity dbs
