module N = Sn_numerics
module U = N.Units
module Tc = Sn_testchip
module Impact = Sn_rf.Impact
module Tank = Sn_rf.Tank
module Behavioral = Sn_rf.Behavioral

let default_f_noise = N.Sweep.logspace 1.0e6 15.0e6 7

let paper_noise_dbm = -5.0

(* Behavioral "measurement" leg: the oscillator of eq. (1) is
   synthesized at a scaled-down carrier (the spur amplitudes depend
   only on the modulation indices, not on the absolute carrier), then
   the spur is read back with a windowed single-bin DFT — the role the
   spectrum analyzer plays in the paper. *)
let scaled_carrier = 64.0e6
let behavioral_fs = 320.0e6
let behavioral_n = 65536

let behavioral_sidebands osc ~h ~f_noise =
  let a_noise = U.vpeak_of_dbm paper_noise_dbm in
  let beta, m_am = Impact.total_modulation osc ~h ~a_noise ~f_noise in
  let samples =
    Behavioral.synthesize ~carrier_freq:scaled_carrier
      ~amplitude:osc.Impact.amplitude
      ~tones:[ { Behavioral.f_noise; beta; m_am } ]
      ~fs:behavioral_fs ~n:behavioral_n
  in
  let measure side =
    Behavioral.measured_sideband_dbm samples ~fs:behavioral_fs
      ~carrier_freq:scaled_carrier ~f_noise side
  in
  (measure `Lower, measure `Upper, samples)

(* ------------------------------------------------------------------ *)
(* Figure 3 / section 3 *)

type fig3 = {
  divider : float;
  divider_no_r : float;
  ground_wire_ohms : float;
  points : Flow.nmos_point list;
  max_hand_error_db : float;
}

let fig3 ?(options = Flow.default_options) () =
  let params = Tc.Nmos_structure.default in
  let flow = Flow.build_nmos ~options params in
  let flow_no_r =
    Flow.build_nmos
      ~options:{ options with Flow.interconnect_resistance = false }
      params
  in
  let points =
    List.map
      (fun (vgs, vds) -> Flow.nmos_transfer flow ~vgs ~vds ~freq:5.0e6)
      (Tc.Nmos_structure.bias_sweep params)
  in
  let max_err =
    List.fold_left
      (fun acc (p : Flow.nmos_point) ->
        Float.max acc
          (Float.abs (p.Flow.transfer_sim_db -. p.Flow.transfer_hand_db)))
      0.0 points
  in
  {
    divider = Flow.nmos_divider flow;
    divider_no_r = Flow.nmos_divider flow_no_r;
    ground_wire_ohms = Flow.nmos_ground_wire_resistance flow;
    points;
    max_hand_error_db = max_err;
  }

type sec3_numbers = {
  division_ratio : float;
  r_factor : float;
  f3db_min_ghz : float;
  f3db_max_ghz : float;
  gmb_range_ms : float * float;
  gds_range_ms : float * float;
}

let sec3_numbers ?options () =
  let f3 = fig3 ?options () in
  let params = Tc.Nmos_structure.default in
  let mos = params.Tc.Nmos_structure.mos in
  let mult = float_of_int params.Tc.Nmos_structure.parallel_devices in
  let cj_total =
    mult *. (mos.Sn_circuit.Mos_model.cdb +. mos.Sn_circuit.Mos_model.csb)
  in
  let gmbs = List.map (fun p -> p.Flow.gmb_total) f3.points in
  let gdss = List.map (fun p -> p.Flow.gds_total) f3.points in
  let min_l = List.fold_left Float.min Float.infinity in
  let max_l = List.fold_left Float.max Float.neg_infinity in
  let f3db g = g /. (U.two_pi *. cj_total) in
  {
    division_ratio = 1.0 /. f3.divider;
    r_factor = f3.divider /. f3.divider_no_r;
    f3db_min_ghz = f3db (min_l gmbs) /. 1.0e9;
    f3db_max_ghz = f3db (max_l gmbs) /. 1.0e9;
    gmb_range_ms = (1.0e3 *. min_l gmbs, 1.0e3 *. max_l gmbs);
    gds_range_ms = (1.0e3 *. min_l gdss, 1.0e3 *. max_l gdss);
  }

(* ------------------------------------------------------------------ *)
(* Figure 7 *)

type fig7 = {
  carrier_freq : float;
  carrier_dbm : float;
  f_noise : float;
  model_upper_dbm : float;
  model_lower_dbm : float;
  measured_upper_dbm : float;
  measured_lower_dbm : float;
  spectrum : (float * float) list;
}

let fig7 ?(options = Flow.default_options) ?(f_noise = 10.0e6) () =
  let flow = Flow.build_vco ~options Tc.Vco_chip.default ~vtune:0.0 in
  let h = Flow.vco_transfers flow ~f_noise:[| f_noise |] in
  let osc = Flow.vco_oscillator flow in
  (* one tone, but routed through the sweep layer so fig7 shares the
     pool path (and its determinism guarantee) with fig8-fig10 *)
  let spur, lower, upper, samples =
    match
      Sweep.map_points
        (fun fn ->
          let spur = Flow.vco_spur flow ~h ~p_noise_dbm:paper_noise_dbm ~f_noise:fn in
          let lower, upper, samples = behavioral_sidebands osc ~h:(h fn) ~f_noise:fn in
          (spur, lower, upper, samples))
        [ f_noise ]
    with
    | [ r ] -> r
    | _ -> assert false
  in
  let spec = N.Fft.amplitude_spectrum ~fs:behavioral_fs samples in
  let spectrum =
    let pts = ref [] in
    Array.iteri
      (fun k fk ->
        let off = fk -. scaled_carrier in
        if Float.abs off <= 2.2 *. f_noise then begin
          let a = spec.N.Fft.amplitudes.(k) in
          let dbm = if a > 1e-12 then U.dbm_of_vpeak a else -140.0 in
          pts := (off, dbm) :: !pts
        end)
      spec.N.Fft.frequencies;
    List.rev !pts
  in
  {
    carrier_freq = Flow.vco_carrier_freq flow;
    carrier_dbm =
      Behavioral.carrier_dbm samples ~fs:behavioral_fs
        ~carrier_freq:scaled_carrier;
    f_noise;
    model_upper_dbm = spur.Impact.upper_dbm;
    model_lower_dbm = spur.Impact.lower_dbm;
    measured_upper_dbm = upper;
    measured_lower_dbm = lower;
    spectrum;
  }

(* ------------------------------------------------------------------ *)
(* Figure 8 *)

type fig8_point = {
  f_noise : float;
  upper_dbm : float;
  lower_dbm : float;
  behavioral_dbm : float;
}

type fig8_family = {
  vtune : float;
  carrier_ghz : float;
  points : fig8_point list;
  slope_db_per_decade : float;
  max_model_vs_behavioral_db : float;
}

let fig8 ?(options = Flow.default_options) ?(vtunes = [ 0.0; 0.45; 0.9 ])
    ?(f_noise = default_f_noise) () =
  (* two sweep levels: the heavy per-family work (extraction + AC
     impact simulation) fans out over the vtunes, then the per-point
     work fans out over the full (family x f_noise) grid.  Each level
     drains before the next starts, so the pool is never re-entered. *)
  let families =
    Sweep.map_points
      (fun vtune ->
        let flow = Flow.build_vco ~options Tc.Vco_chip.default ~vtune in
        let h = Flow.vco_transfers flow ~f_noise in
        let osc = Flow.vco_oscillator flow in
        (vtune, Flow.vco_carrier_freq flow /. 1.0e9, flow, h, osc))
      vtunes
  in
  let cells =
    Sweep.grid
      (fun (_, _, flow, h, osc) fn ->
        let spur =
          Flow.vco_spur flow ~h ~p_noise_dbm:paper_noise_dbm ~f_noise:fn
        in
        let _, upper_meas, _ = behavioral_sidebands osc ~h:(h fn) ~f_noise:fn in
        {
          f_noise = fn;
          upper_dbm = spur.Impact.upper_dbm;
          lower_dbm = spur.Impact.lower_dbm;
          behavioral_dbm = upper_meas;
        })
      families
      (Array.to_list f_noise)
  in
  let n_points = Array.length f_noise in
  List.mapi
    (fun i (vtune, carrier_ghz, _, _, _) ->
      let points =
        List.filteri
          (fun j _ -> j / n_points = i)
          (List.map (fun (_, _, p) -> p) cells)
      in
      let slope =
        N.Stats.slope_db_per_decade
          (Array.of_list (List.map (fun p -> p.f_noise) points))
          (Array.of_list (List.map (fun p -> p.upper_dbm) points))
      in
      let max_err =
        List.fold_left
          (fun acc p ->
            Float.max acc (Float.abs (p.upper_dbm -. p.behavioral_dbm)))
          0.0 points
      in
      {
        vtune;
        carrier_ghz;
        points;
        slope_db_per_decade = slope;
        max_model_vs_behavioral_db = max_err;
      })
    families

(* ------------------------------------------------------------------ *)
(* Figure 9 *)

type fig9_entry = {
  label : string;
  spur_dbm_by_freq : (float * float) list;
  slope_db_per_decade : float;
}

type fig9 = {
  entries : fig9_entry list;
  ground_minus_backgate_db : float;
  inductor_flatness_db : float;
}

let fig9 ?(options = Flow.default_options) ?(f_noise = default_f_noise) () =
  let flow = Flow.build_vco ~options Tc.Vco_chip.default ~vtune:0.0 in
  let h = Flow.vco_transfers flow ~f_noise in
  let spurs =
    Array.to_list f_noise
    |> Sweep.map_points (fun fn ->
           (fn, Flow.vco_spur flow ~h ~p_noise_dbm:paper_noise_dbm ~f_noise:fn))
  in
  let labels =
    match spurs with
    | (_, first) :: _ ->
      List.map (fun c -> c.Impact.entry_label) first.Impact.contributions
    | [] -> []
  in
  let entry_curve label =
    List.map
      (fun (fn, spur) ->
        let c =
          List.find
            (fun c -> String.equal c.Impact.entry_label label)
            spur.Impact.contributions
        in
        (fn, c.Impact.spur_dbm))
      spurs
  in
  let entries =
    List.map
      (fun label ->
        let curve = entry_curve label in
        let slope =
          N.Stats.slope_db_per_decade
            (Array.of_list (List.map fst curve))
            (Array.of_list (List.map snd curve))
        in
        { label; spur_dbm_by_freq = curve; slope_db_per_decade = slope })
      labels
  in
  let at_10mhz label =
    let curve = entry_curve label in
    N.Sweep.interp1
      (Array.of_list (List.map fst curve))
      (Array.of_list (List.map snd curve))
      10.0e6
  in
  let inductor_curve = entry_curve "inductor" in
  let ind_values = List.map snd inductor_curve in
  let flatness =
    List.fold_left Float.max Float.neg_infinity ind_values
    -. List.fold_left Float.min Float.infinity ind_values
  in
  {
    entries;
    ground_minus_backgate_db =
      at_10mhz "ground interconnect" -. at_10mhz "nmos back-gate";
    inductor_flatness_db = flatness;
  }

(* ------------------------------------------------------------------ *)
(* Figure 10 *)

type fig10 = {
  wire_ohms_normal : float;
  wire_ohms_widened : float;
  points : (float * float * float) list;
  mean_improvement_db : float;
}

let fig10 ?(options = Flow.default_options) ?(f_noise = default_f_noise) () =
  (* the two variants (normal / widened ground) are independent full
     extractions: build them as parallel sweep points, then fan the
     per-frequency spur pairs out *)
  let normal, widened =
    match
      Sweep.map_points
        (fun options ->
          let flow = Flow.build_vco ~options Tc.Vco_chip.default ~vtune:0.0 in
          (flow, Flow.vco_transfers flow ~f_noise))
        [ options; { options with Flow.widen_ground = Some 2.0 } ]
    with
    | [ n; w ] -> (n, w)
    | _ -> assert false
  in
  let points =
    Array.to_list f_noise
    |> Sweep.map_points (fun fn ->
           let s_n =
             Flow.vco_spur (fst normal) ~h:(snd normal)
               ~p_noise_dbm:paper_noise_dbm ~f_noise:fn
           in
           let s_w =
             Flow.vco_spur (fst widened) ~h:(snd widened)
               ~p_noise_dbm:paper_noise_dbm ~f_noise:fn
           in
           (fn, s_n.Impact.upper_dbm, s_w.Impact.upper_dbm))
  in
  let deltas = List.map (fun (_, n, w) -> n -. w) points in
  {
    wire_ohms_normal = Flow.vco_ground_wire_resistance (fst normal);
    wire_ohms_widened = Flow.vco_ground_wire_resistance (fst widened);
    points;
    mean_improvement_db = N.Stats.mean (Array.of_list deltas);
  }

(* ------------------------------------------------------------------ *)
(* VCO design card *)

type vco_card = {
  carrier_ghz : float;
  kvco_mhz_per_v : float;
  tuning_range_ghz : float * float;
  phase_noise_100k_dbc : float;
  core_current_ma : float;
  supply_v : float;
}

let vco_card ?(options = Flow.default_options) () =
  let params = Tc.Vco_chip.default in
  let flow = Flow.build_vco ~options params ~vtune:0.45 in
  let tank = params.Tc.Vco_chip.tank in
  let fc_at vt = Tank.frequency tank (Tank.quiet_bias ~v_tune:vt) in
  let pn =
    { Sn_rf.Phase_noise.default_vco with
      Sn_rf.Phase_noise.carrier_freq = Flow.vco_carrier_freq flow }
  in
  {
    carrier_ghz = Flow.vco_carrier_freq flow /. 1.0e9;
    kvco_mhz_per_v = Tank.kvco tank ~v_tune:0.45 /. 1.0e6;
    tuning_range_ghz = (fc_at 0.0 /. 1.0e9, fc_at 1.8 /. 1.0e9);
    phase_noise_100k_dbc = Sn_rf.Phase_noise.dbc_per_hz pn 100.0e3;
    core_current_ma = 1.0e3 *. params.Tc.Vco_chip.tail_current;
    supply_v = 1.8;
  }

(* ------------------------------------------------------------------ *)
(* Digital aggressor extension *)

type aggressor_comb = {
  aggressor : Sn_rf.Aggressor.t;
  lines : Sn_rf.Aggressor.comb_line list;
  total_dbm : float;
}

let aggressor_comb ?(options = Flow.default_options)
    ?(aggressor = Sn_rf.Aggressor.default) () =
  let flow = Flow.build_vco ~options Tc.Vco_chip.default ~vtune:0.0 in
  let freqs =
    Array.init aggressor.Sn_rf.Aggressor.harmonics (fun i ->
        float_of_int (i + 1) *. aggressor.Sn_rf.Aggressor.clock_freq)
  in
  let h = Flow.vco_transfers flow ~f_noise:freqs in
  let osc = Flow.vco_oscillator flow in
  let lines = Sn_rf.Aggressor.spur_comb aggressor ~osc ~h in
  { aggressor; lines;
    total_dbm = Sn_rf.Aggressor.total_spur_power_dbm lines }

(* ------------------------------------------------------------------ *)
(* Runtime *)

type runtime = {
  extraction_seconds : float;
  simulation_seconds : float;
  grid_cells : int;
  extractor : Sn_substrate.Extractor.stats option;
  pool : Sn_engine.Pool.stats;
  tile_cache : Sn_substrate.Cache.resolution;
  reduction : Reduced_model.stats option;
}

let runtime ?(options = Flow.default_options) () =
  Sweep.reset_stats ();
  let t0 = Unix.gettimeofday () in
  let flow = Flow.build_vco ~options Tc.Vco_chip.default ~vtune:0.0 in
  let t1 = Unix.gettimeofday () in
  let h = Flow.vco_transfers flow ~f_noise:default_f_noise in
  ignore
    (Sweep.map_array
       (fun fn ->
         Flow.vco_spur flow ~h ~p_noise_dbm:paper_noise_dbm ~f_noise:fn)
       default_f_noise);
  let t2 = Unix.gettimeofday () in
  let xstats = Sn_substrate.Extractor.last_stats () in
  let cells =
    match xstats with
    | Some s -> s.Sn_substrate.Extractor.grid_cells
    | None -> 0
  in
  {
    extraction_seconds = t1 -. t0;
    simulation_seconds = t2 -. t1;
    grid_cells = cells;
    extractor = xstats;
    pool = Sweep.stats ();
    tile_cache = Sn_substrate.Cache.resolution ();
    reduction = Reduced_model.last_stats ();
  }
