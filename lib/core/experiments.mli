(** Drivers that regenerate every table and figure of the paper's
    evaluation.  Each function returns a structured result record; the
    benchmark harness and the CLI print them, and the test suite
    asserts the acceptance bands recorded in EXPERIMENTS.md. *)

val paper_noise_dbm : float
(** The paper's injected tone power: -5 dBm. *)

val default_f_noise : float array
(** The default noise-frequency sweep (1 to 15 MHz, log-spaced). *)

(** {1 Figure 3 / section 3: NMOS measurement structure} *)

type fig3 = {
  divider : float;  (** SUB -> back-gate division (paper: ~1/652) *)
  divider_no_r : float;  (** same with wire resistance zeroed *)
  ground_wire_ohms : float;
  points : Flow.nmos_point list;  (** bias sweep at 5 MHz *)
  max_hand_error_db : float;  (** worst |sim - hand| (paper: <= 1 dB) *)
}

val fig3 : ?options:Flow.options -> unit -> fig3
(** Reproduce the Fig. 3 structure characterization: extract the
    measurement structure, compute the divider with and without wire
    resistance, and sweep the bias grid at 5 MHz. *)

(** Scalar claims of the paper's section 3 text, checked as a group. *)
type sec3_numbers = {
  division_ratio : float;  (** 1 / divider *)
  r_factor : float;  (** divider with R / divider without R (paper: ~2) *)
  f3db_min_ghz : float;  (** junction-cap crossover band (paper: 5-19 GHz) *)
  f3db_max_ghz : float;
  gmb_range_ms : float * float;  (** paper: 10-38 mS *)
  gds_range_ms : float * float;  (** paper: 2.8-22 mS *)
}

val sec3_numbers : ?options:Flow.options -> unit -> sec3_numbers
(** Derive the section-3 scalar claims from a fresh NMOS flow. *)

(** {1 Figure 7: VCO output spectrum} *)

(** Single-tone VCO spectrum: closed-form spur prediction next to the
    DFT of the synthesized waveform. *)
type fig7 = {
  carrier_freq : float;
  carrier_dbm : float;
  f_noise : float;
  model_upper_dbm : float;  (** closed-form eq. (2)/(3) prediction *)
  model_lower_dbm : float;
  measured_upper_dbm : float;  (** DFT on the synthesized waveform *)
  measured_lower_dbm : float;
  spectrum : (float * float) list;
      (** (offset from f_c in Hz, dBm) points around the carrier for
          rendering the Figure 7 spectrum *)
}

val fig7 : ?options:Flow.options -> ?f_noise:float -> unit -> fig7
(** Default tone: the paper's -5 dBm at 10 MHz, Vtune = 0. *)

(** {1 Figure 8: total spur power vs noise frequency and Vtune} *)

(** One noise frequency of a Fig. 8 family. *)
type fig8_point = {
  f_noise : float;
  upper_dbm : float;
  lower_dbm : float;
  behavioral_dbm : float;
      (** cross-check: spur measured by DFT on the synthesized
          oscillator waveform (the "measurement" leg) *)
}

(** Spur-vs-frequency curve of one tuning voltage. *)
type fig8_family = {
  vtune : float;
  carrier_ghz : float;
  points : fig8_point list;
  slope_db_per_decade : float;  (** paper: -20 (resistive coupling + FM) *)
  max_model_vs_behavioral_db : float;  (** paper: <= 2 dB *)
}

val fig8 :
  ?options:Flow.options -> ?vtunes:float list -> ?f_noise:float array ->
  unit -> fig8_family list
(** Sweep spur power over noise frequency for each tuning voltage
    (default Vtune 0, 0.45, 0.9 V).  Each family rebuilds the VCO flow
    at its [vtune]; families and points both fan out on the sweep
    pool. *)

(** {1 Figure 9: per-device contributions} *)

(** Spur curve of a single coupling entry point (ground wire, back
    gate, varactor well, inductor). *)
type fig9_entry = {
  label : string;  (** entry-point name as the figure legend shows it *)
  spur_dbm_by_freq : (float * float) list;  (** (f_noise Hz, dBm) *)
  slope_db_per_decade : float;  (** fitted low-frequency slope *)
}

(** Decomposition of the total spur into per-entry-point curves. *)
type fig9 = {
  entries : fig9_entry list;
  ground_minus_backgate_db : float;
      (** gap at 10 MHz (paper: ~20 dB) *)
  inductor_flatness_db : float;
      (** max-min of the inductor curve (paper: ~0, capacitive + FM) *)
}

val fig9 : ?options:Flow.options -> ?f_noise:float array -> unit -> fig9
(** Sweep the spur model and regroup its per-entry-point contribution
    terms into one curve per coupling mechanism. *)

(** {1 Figure 10: ground interconnect sizing} *)

(** Effect of widening the ground interconnect on the dominant
    (resistive) coupling path. *)
type fig10 = {
  wire_ohms_normal : float;
  wire_ohms_widened : float;
  points : (float * float * float) list;
      (** (f_noise, spur normal dBm, spur widened dBm) *)
  mean_improvement_db : float;  (** paper: ~4.5 dB (6 dB ideal) *)
}

val fig10 : ?options:Flow.options -> ?f_noise:float array -> unit -> fig10
(** Build the nominal and 2x-widened-ground flows (in parallel on the
    sweep pool) and compare their spur curves. *)

(** {1 Section 4 design card} *)

(** Headline VCO numbers the paper's section 4 quotes. *)
type vco_card = {
  carrier_ghz : float;  (** paper: ~3 GHz *)
  kvco_mhz_per_v : float;
  tuning_range_ghz : float * float;
  phase_noise_100k_dbc : float;  (** paper: -100 dBc/Hz @ 100 kHz *)
  core_current_ma : float;  (** paper: 5 mA *)
  supply_v : float;  (** paper: 1.8 V *)
}

val vco_card : ?options:Flow.options -> unit -> vco_card
(** Evaluate the design card from the extracted VCO flow (carrier and
    Kvco from a tuning sweep, phase noise from the oscillator model). *)

(** {1 Extension: digital aggressor (conclusion / ref. [10])} *)

(** Spur comb a clocked digital block imprints on the VCO output. *)
type aggressor_comb = {
  aggressor : Sn_rf.Aggressor.t;
  lines : Sn_rf.Aggressor.comb_line list;
  total_dbm : float;
}

val aggressor_comb :
  ?options:Flow.options -> ?aggressor:Sn_rf.Aggressor.t -> unit ->
  aggressor_comb
(** Predict the spur comb a synchronous digital block imprints on the
    VCO through the extracted substrate and interconnect models. *)

(** {1 Runtime (section 6 note)} *)

type runtime = {
  extraction_seconds : float;  (** wall time of the model build *)
  simulation_seconds : float;  (** wall time of the impact sweep *)
  grid_cells : int;  (** FDM cells of the substrate extraction *)
  extractor : Sn_substrate.Extractor.stats option;
      (** extractor phase timings, CG iteration count and macromodel
          cache hit/miss counters of the flow's substrate
          extraction *)
  pool : Sn_engine.Pool.stats;
      (** worker-pool counters of the impact sweep (tasks, per-worker
          busy time, effective parallelism) *)
  tile_cache : Sn_substrate.Cache.resolution;
      (** how the substrate tile-cache directory resolved
          ([--cache-dir] / [SNOISE_CACHE_DIR] / disabled) — the knob
          that decides whether this extraction could run warm *)
  reduction : Reduced_model.stats option;
      (** model-order reduction counters of the flow's merged deck
          (order, rank, build time, estimated error) when
          [--reduce-order] / [--reduce-tol] is active *)
}

val runtime : ?options:Flow.options -> unit -> runtime
(** Time one full flow run — extraction, then the default noise-
    frequency impact sweep on the shared pool — mirroring the paper's
    "20 min + 15 min on an HP-UX L2000" section-6 note. *)
