module G = Sn_geometry
module C = Sn_circuit
module E = C.Element
module N = Sn_numerics
module Sub = Sn_substrate
module Itc = Sn_interconnect
module Tc = Sn_testchip
module Tank = Sn_rf.Tank
module Impact = Sn_rf.Impact
module Dc = Sn_engine.Dc
module Ac = Sn_engine.Ac

let log_src = Logs.Src.create "sn.flow" ~doc:"impact simulation flow"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  grid : Sub.Grid.config;
  tiles : int * int;
  interconnect_resistance : bool;
  widen_ground : float option;
  tech : Sn_tech.Tech.t;
  lint : bool;
  reduce : Reduced_model.config option;
      (** swap the merged deck's passive pool for its PRIMA-reduced
          realization before compiling; [None] follows the process-wide
          default ({!set_default_reduction}) *)
}

let default_options =
  {
    grid = { Sub.Grid.nx = 48; ny = 48; z_per_layer = Some [ 1; 4; 3; 2 ] };
    tiles = (1, 1);
    interconnect_resistance = true;
    widen_ground = None;
    tech = Sn_tech.Tech.imec018;
    lint = true;
    reduce = None;
  }

(* process-wide reduction default, the --reduce-order / --reduce-tol
   CLI knob (mirrors the disable_lint pattern: figure flows construct
   their own options and pick the default up from here) *)
let default_reduction : Reduced_model.config option ref = ref None

let set_default_reduction c = default_reduction := c

let reduction_of options =
  match options.reduce with Some _ as c -> c | None -> !default_reduction

let maybe_reduce options ~keep nl =
  match reduction_of options with
  | None -> nl
  | Some config -> Reduced_model.reduce_deck ~config ~keep nl

(* substrate tile-cache namespace tag: reduced and exact runs must
   never share cached artifacts *)
let reduction_digest options =
  Option.map Reduced_model.config_digest (reduction_of options)

(* ------------------------------------------------------------------ *)
(* lint gate: merged models pass the Sn_analysis rule suite before the
   engine sees them.  Errors refuse to simulate (raised as a
   Diag.Bad_input); warnings are logged once per distinct message —
   bias sweeps re-merge the same structure dozens of times and
   repeating identical warnings would bury the report. *)

module A = Sn_analysis

let lint_disabled = ref false

let disable_lint () = lint_disabled := true

let warned : (string, unit) Hashtbl.t = Hashtbl.create 16

let warned_lock = Mutex.create ()

let lint_gate ?(enabled = true) nl =
  if enabled && not !lint_disabled then begin
    let report = A.Analyzer.analyze nl in
    List.iter
      (fun (d : A.Rule.diagnostic) ->
        let key = d.A.Rule.code ^ ":" ^ d.A.Rule.message in
        let fresh =
          Mutex.lock warned_lock;
          let f = not (Hashtbl.mem warned key) in
          if f then Hashtbl.replace warned key ();
          Mutex.unlock warned_lock;
          f
        in
        if fresh then
          Log.warn (fun m -> m "lint: %a" A.Rule.pp_diagnostic d))
      (A.Analyzer.warnings report);
    match A.Analyzer.errors report with
    | [] -> ()
    | errs ->
      let what =
        String.concat "; "
          (List.map
             (fun (d : A.Rule.diagnostic) ->
               Printf.sprintf "%s: %s" d.A.Rule.code d.A.Rule.message)
             errs)
      in
      raise
        (Sn_engine.Diag.Error
           (Sn_engine.Diag.Bad_input
              { loc = Sn_engine.Diag.loc "lint"; what }))
  end

(* ------------------------------------------------------------------ *)
(* numerical pre-flight: everything the lint gate checks, plus the raw
   conditioning / stiffness / passivity analyses behind the numeric
   rules, plus — when a reduction is configured — a dry run of the
   deck rewrite to confirm its pencil certifies.  One static pass over
   the deck that predicts the gmin / step-truncation / instability
   trouble the engine would otherwise discover mid-solve. *)

type reduction_verdict = Not_reduced | Certified | Refused

let reduction_verdict_name = function
  | Not_reduced -> "not-reduced"
  | Certified -> "certified"
  | Refused -> "refused"

type preflight = {
  pf_report : A.Analyzer.report;
  pf_spans : A.Numeric.span list;
  pf_stiffness : A.Numeric.stiffness option;
  pf_pool : A.Numeric.pool_defect list;
  pf_reduction : reduction_verdict;
}

let preflight ?config nl =
  let report = A.Analyzer.analyze ?config nl in
  let ctx = A.Rule.context nl in
  let reduction =
    match !default_reduction with
    | None -> Not_reduced
    | Some rc -> (
      match snd (Reduced_model.reduce_deck_certified ~config:rc nl) with
      | None -> Not_reduced
      | Some (_, Some _) -> Certified
      | Some (_, None) -> Refused)
  in
  {
    pf_report = report;
    pf_spans = A.Numeric.conditioning ctx;
    pf_stiffness = A.Numeric.stiffness ctx;
    pf_pool = A.Numeric.pool_passivity ctx;
    pf_reduction = reduction;
  }

(* verify is a gate, not a report: any finding — warnings included —
   or an uncertifiable reduction refuses the deck *)
let preflight_failing p =
  p.pf_report.A.Analyzer.diagnostics <> [] || p.pf_reduction = Refused

(* ------------------------------------------------------------------ *)
(* compiled decks: the resident-service hot path.  One value holds the
   parse -> lint -> MNA -> stamp-plan chain of a deck, with the DC
   operating point and the complex AC plan memoized behind a mutex so
   a long-lived process pays each stage exactly once however many
   requests hit the deck (and from whichever thread). *)

type compiled = {
  c_netlist : C.Netlist.t;
  c_mna : Sn_engine.Mna.t;
  c_plan : Sn_engine.Stamp_plan.t;
  c_lock : Mutex.t;
  mutable c_bias : Dc.solution option;
  mutable c_acp : Sn_engine.Ac_plan.t option;
}

let compile_deck ?(lint = true) nl =
  lint_gate ~enabled:lint nl;
  let mna = Sn_engine.Mna.build nl in
  {
    c_netlist = nl;
    c_mna = mna;
    c_plan = Sn_engine.Stamp_plan.build mna;
    c_lock = Mutex.create ();
    c_bias = None;
    c_acp = None;
  }

let compiled_netlist c = c.c_netlist
let compiled_mna c = c.c_mna
let compiled_plan c = c.c_plan

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* callers hold c_lock *)
let bias_locked c =
  match c.c_bias with
  | Some b -> b
  | None ->
    let b = Dc.solve_plan c.c_plan in
    c.c_bias <- Some b;
    b

let compiled_bias c = with_lock c.c_lock (fun () -> bias_locked c)

let compiled_bias_cached c = with_lock c.c_lock (fun () -> c.c_bias <> None)

let compiled_ac_plan c =
  with_lock c.c_lock (fun () ->
      match c.c_acp with
      | Some a -> a
      | None ->
        let a = Sn_engine.Ac_plan.of_dc c.c_plan (bias_locked c) in
        c.c_acp <- Some a;
        a)

(* ------------------------------------------------------------------ *)

let noise_elements ~inject_node =
  [
    E.Vsource { name = "vnoise"; np = "sub_drive"; nn = "0";
                wave = C.Waveform.dc 0.0; ac_mag = 1.0 };
    E.Resistor { name = "rs_noise"; n1 = "sub_drive"; n2 = inject_node;
                 ohms = 50.0 };
  ]

(* the VCO sits inside the chip's pad frame (paper Fig. 6); its seal
   ring substrate tap is hard-grounded through the many pads it
   touches.  The standalone NMOS structure (paper Fig. 4) has no such
   frame — its outer guard ring is its outermost feature. *)
let frame_elements =
  [ E.Resistor { name = "rframe"; n1 = "frame"; n2 = "0"; ohms = 0.2 } ]

(* ------------------------------------------------------------------ *)
(* NMOS measurement structure *)

type nmos_flow = {
  nmos_params : Tc.Nmos_structure.params;
  nmos_macro : Sub.Macromodel.t;
  nmos_itc : Itc.Rc_netlist.t;
  nmos_options : options;
}

let itc_options options ~substrate_node =
  { Itc.Extract.default_options with
    Itc.Extract.include_resistance = options.interconnect_resistance;
    substrate_node }

let build_nmos ?(options = default_options) params =
  let layout = Tc.Nmos_structure.layout params in
  let layout =
    match options.widen_ground with
    | None -> layout
    | Some factor -> Itc.Extract.widen_net ~net:"gnd" ~factor layout
  in
  let report =
    Itc.Extract.extract
      ~options:(itc_options options ~substrate_node:"gr")
      ~tech:options.tech layout
  in
  let macro =
    Sub.Extractor.extract_from_layout ~config:options.grid
      ~tiles:options.tiles ?reduction:(reduction_digest options)
      ~tech:options.tech layout
  in
  Log.info (fun m ->
      m "nmos structure: %d wires, %d substrate ports"
        report.Itc.Extract.wires_extracted
        (Sub.Macromodel.port_count macro));
  { nmos_params = params; nmos_macro = macro;
    nmos_itc = report.Itc.Extract.netlist; nmos_options = options }

let nmos_macromodel f = f.nmos_macro

let nmos_ground_wire_resistance f =
  Itc.Rc_netlist.resistance_between f.nmos_itc "mos_gr" "gnd_pad"

(* The structure without the transistor: noise source, extracted
   models, and the probe tying the pad to off-chip ground. *)
let nmos_passive_netlist f =
  C.Netlist.create ~title:"nmos structure, passive"
    (noise_elements ~inject_node:"sub_inject"
    @ [ E.Resistor { name = "rprobe"; n1 = "gnd_pad"; n2 = "0";
                     ohms = f.nmos_params.Tc.Nmos_structure.probe_resistance };
        E.Resistor { name = "rprobe_gr"; n1 = "gr_pad"; n2 = "0";
                     ohms = f.nmos_params.Tc.Nmos_structure.probe_resistance } ]
    @ Merge.of_macromodel f.nmos_macro
    @ Merge.of_rc_netlist f.nmos_itc)
  (* sub_inject and the back-gate probe are passive-touched only: the
     divider observes them, so reduction must keep them explicit *)
  |> maybe_reduce f.nmos_options ~keep:[ "sub_inject"; "backgate:m1" ]

let nmos_divider f =
  let nl = nmos_passive_netlist f in
  lint_gate ~enabled:f.nmos_options.lint nl;
  let s = Ac.solve nl ~freq:1.0e6 in
  Complex.norm (Ac.voltage s "backgate:m1")
  /. Complex.norm (Ac.voltage s "sub_inject")

let nmos_merged f ~vgs ~vds =
  C.Netlist.create ~title:"nmos structure, merged impact model"
    (C.Netlist.elements (Tc.Nmos_structure.device_netlist f.nmos_params ~vgs ~vds)
    @ noise_elements ~inject_node:"sub_inject"
    @ Merge.of_macromodel f.nmos_macro
    @ Merge.of_rc_netlist f.nmos_itc)
  |> maybe_reduce f.nmos_options ~keep:[ "sub_inject" ]

type nmos_point = {
  vgs : float;
  vds : float;
  gmb_total : float;
  gds_total : float;
  transfer_sim_db : float;
  transfer_hand_db : float;
}

let nmos_transfer f ~vgs ~vds ~freq =
  let nl = nmos_merged f ~vgs ~vds in
  lint_gate ~enabled:f.nmos_options.lint nl;
  let dc = Dc.solve nl in
  let op = Dc.mos_operating_point dc "m1" in
  let mult = float_of_int f.nmos_params.Tc.Nmos_structure.parallel_devices in
  let gmb_total = mult *. op.C.Mos_model.gmb in
  let gds_total = mult *. op.C.Mos_model.gds in
  let s = Ac.solve ~dc nl ~freq in
  let transfer_sim =
    Complex.norm (Ac.voltage s "d") /. Complex.norm (Ac.voltage s "sub_inject")
  in
  let divider = nmos_divider f in
  let transfer_hand = divider *. gmb_total /. gds_total in
  {
    vgs;
    vds;
    gmb_total;
    gds_total;
    transfer_sim_db = N.Units.db_of_ratio transfer_sim;
    transfer_hand_db = N.Units.db_of_ratio transfer_hand;
  }

(* ------------------------------------------------------------------ *)
(* VCO *)

type vco_flow = {
  vco_params : Tc.Vco_chip.params;
  vco_macro : Sub.Macromodel.t;
  vco_itc : Itc.Rc_netlist.t;
  vco_nl : C.Netlist.t;
  vco_dc : Dc.solution;
  bias : Tank.bias;
  oscillator : Impact.oscillator;
  tank_cm_resistance : float;
}

(* AM gains per entry (1/V): small, so AM stays far below FM as the
   paper observes; the ground and supply entries modulate the bias
   hardest. *)
let g_am_of_entry = function
  | Tank.Ground -> 0.5
  | Tank.Backgate -> 0.05
  | Tank.Pmos_well -> 0.3
  | Tank.Varactor_well -> 0.05
  | Tank.Inductor_node -> 0.1
  | Tank.Supply -> 0.3

let build_vco ?(options = default_options) params ~vtune =
  let layout = Tc.Vco_chip.layout params in
  let layout =
    match options.widen_ground with
    | None -> layout
    | Some factor -> Itc.Extract.widen_net ~net:"vss" ~factor layout
  in
  let report =
    Itc.Extract.extract
      ~options:(itc_options options ~substrate_node:"backgate:sub_ind")
      ~tech:options.tech layout
  in
  let macro =
    Sub.Extractor.extract_from_layout ~config:options.grid
      ~tiles:options.tiles ?reduction:(reduction_digest options)
      ~tech:options.tech layout
  in
  let circuit = Tc.Vco_chip.circuit params ~vtune in
  let merged =
    C.Netlist.create ~title:"vco merged impact model"
      (C.Netlist.elements circuit
      @ frame_elements
      @ Merge.of_macromodel macro
      @ Merge.of_rc_netlist report.Itc.Extract.netlist)
    (* every node the spur flow observes or the bias read-out touches
       must survive reduction; most are device-touched anyway, but the
       injection node and the inductor back-gate are passive-only *)
    |> maybe_reduce options
         ~keep:
           (List.sort_uniq String.compare
              (List.map snd Tc.Vco_chip.sensitive_nodes
              @ [ "sub_inject"; "vtune_pad"; "vss_local"; "tank_p";
                  "backgate:mn1"; "vdd_local" ]))
  in
  lint_gate ~enabled:options.lint merged;
  let dc = Dc.solve merged in
  let v node = Dc.voltage dc node in
  let bias =
    {
      Tank.v_tune = v "vtune_pad";
      v_gnd = v "vss_local";
      v_tank_cm = v "tank_p" -. v "vss_local";
      v_backgate = v "backgate:mn1";
      v_nwell = v "vdd_local";
    }
  in
  let tank = params.Tc.Vco_chip.tank in
  let fc = Tank.frequency tank bias in
  (* amplitude: current-limited level in the tank's parallel
     resistance, clipped by the supply, then the output coupling to
     the 50 ohm measurement chain *)
  let omega = N.Units.two_pi *. fc in
  let q_l = omega *. tank.Tank.inductance /. params.Tc.Vco_chip.inductor_series_r in
  let rp = q_l *. q_l *. params.Tc.Vco_chip.inductor_series_r in
  let swing =
    Float.min
      (4.0 /. N.Units.pi *. params.Tc.Vco_chip.tail_current *. rp)
      (0.45 *. 1.8)
  in
  let amplitude = 0.5 *. swing in
  let entries =
    List.map
      (fun (entry, node) ->
        {
          Impact.label = Tank.entry_name entry;
          node;
          k_hz_per_v = Tank.sensitivity tank bias entry;
          g_am_per_v = g_am_of_entry entry;
        })
      Tc.Vco_chip.sensitive_nodes
  in
  let oscillator = { Impact.carrier_freq = fc; amplitude; entries } in
  (* tank common-mode resistance for the inductor entry's capacitive
     transfer: the cross-coupled devices' output conductances *)
  let gds_of name mult =
    float_of_int mult *. (Dc.mos_operating_point dc name).C.Mos_model.gds
  in
  let g_cm =
    gds_of "mn1" 1 +. gds_of "mn2" 1 +. gds_of "mp1" 2 +. gds_of "mp2" 2
  in
  let tank_cm_resistance = if g_cm > 0.0 then 1.0 /. g_cm else 1.0e3 in
  Log.info (fun m ->
      m "vco: fc = %s, amplitude %.2f V, R_cm = %.0f ohm"
        (N.Units.eng ~unit:"Hz" fc) amplitude tank_cm_resistance);
  {
    vco_params = params;
    vco_macro = macro;
    vco_itc = report.Itc.Extract.netlist;
    vco_nl = merged;
    vco_dc = dc;
    bias;
    oscillator;
    tank_cm_resistance;
  }

let vco_merged f = f.vco_nl
let vco_oscillator f = f.oscillator

let vco_ground_wire_resistance f =
  Itc.Rc_netlist.resistance_between f.vco_itc "vss_ring" "vss_pad"

let vco_carrier_freq f = f.oscillator.Impact.carrier_freq
let vco_amplitude f = f.oscillator.Impact.amplitude

let inductor_node = "backgate:sub_ind"

let vco_transfers f ~f_noise =
  let nodes =
    List.map snd Tc.Vco_chip.sensitive_nodes @ [ "sub_inject" ]
    |> List.sort_uniq String.compare
  in
  let points = Ac.sweep ~dc:f.vco_dc f.vco_nl ~freqs:f_noise ~nodes in
  let table = Hashtbl.create 64 in
  Array.iter
    (fun (p : Ac.sweep_point) ->
      List.iter
        (fun (node, v) -> Hashtbl.replace table (p.Ac.freq, node) v)
        p.Ac.values)
    points;
  let c_ind = 2.0 *. f.vco_params.Tc.Vco_chip.inductor_sub_cap in
  let r_cm = f.tank_cm_resistance in
  let freqs = Array.copy f_noise in
  Array.sort compare freqs;
  (* linear interpolation between the swept points for off-grid
     queries *)
  let lookup freq node =
    match Hashtbl.find_opt table (freq, node) with
    | Some v -> v
    | None ->
      let n = Array.length freqs in
      if n = 0 then invalid_arg "vco_transfers: empty frequency sweep";
      if freq <= freqs.(0) then Hashtbl.find table (freqs.(0), node)
      else if freq >= freqs.(n - 1) then
        Hashtbl.find table (freqs.(n - 1), node)
      else begin
        let lo = ref 0 and hi = ref (n - 1) in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if freqs.(mid) <= freq then lo := mid else hi := mid
        done;
        let f0 = freqs.(!lo) and f1 = freqs.(!hi) in
        let v0 = Hashtbl.find table (f0, node) in
        let v1 = Hashtbl.find table (f1, node) in
        let t = (freq -. f0) /. (f1 -. f0) in
        let lerp a b = a +. (t *. (b -. a)) in
        { Complex.re = lerp v0.Complex.re v1.Complex.re;
          im = lerp v0.Complex.im v1.Complex.im }
      end
  in
  fun freq node ->
    let raw = lookup freq node in
    if String.equal node inductor_node then begin
      (* capacitive injection through the coil metal onto the tank
         common mode: H = v_bulk * j omega C_ind R_cm *)
      let omega = N.Units.two_pi *. freq in
      Complex.mul raw { Complex.re = 0.0; im = omega *. c_ind *. r_cm }
    end
    else raw

let vco_spur f ~h ~p_noise_dbm ~f_noise =
  let a_noise = N.Units.vpeak_of_dbm p_noise_dbm in
  Impact.spur f.oscillator ~h:(h f_noise) ~a_noise ~f_noise
