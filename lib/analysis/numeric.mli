(** Numerical pre-flight: static conditioning, stiffness and passivity
    analyses over the compiled stamp plan.

    The structural rules ({!Structural}) predict {e pattern} failures —
    matrices that cannot be nonsingular.  These analyses predict
    {e numeric} failures of pattern-perfect decks, from magnitudes the
    engine exports per node row
    ({!Sn_engine.Stamp_plan.numeric_profile}):

    - {b conditioning span}: a node row whose incident conductances
      span many decades loses that many digits to cancellation when LU
      eliminates the strong neighbor into the weak pivot; beyond
      [1/eps] the pivot underflows to exactly zero and the engine
      reports the same node in a [Diag.Singular_pivot];
    - {b stiffness spectrum}: per-node RC time constants
      [tau = C_node / G_node]; a min/max ratio beyond {!stiffness_limit}
      means no fixed step both resolves the fastest mode and covers the
      slowest — the transient engine's step retry then truncates;
    - {b pool passivity}: the deck's R/C pool (including [red_*]
      reduced-model realizations, which legitimately carry negative
      branch values) must assemble into PSD conductance / capacitance
      matrices; an indefinite pool has no physical realization and
      produces meaningless, potentially unstable AC/transient results.

    Each analysis is exposed raw (for {!Snoise.Flow} pre-flight
    summaries and [snoise verify]) and as a rule check registered in
    {!Rules.registry} (codes ["conditioning-span"], ["stiff-transient"],
    ["non-passive-pool"]). *)

(** {2 Conditioning} *)

type span = {
  sp_node : string;  (** the node whose row cancels *)
  sp_ratio : float;  (** max/min incident conductance magnitude *)
  sp_hi : string * float;  (** dominating element and its magnitude *)
  sp_lo : string * float;  (** weakest element and its magnitude *)
  sp_digits : float;  (** predicted surviving significant digits *)
}

val span_limit : float
(** Spans above this (1e13: three surviving digits) are flagged. *)

val conditioning : Rule.context -> span list
(** Per-node conductance spans above {!span_limit}, worst first. *)

(** {2 Stiffness} *)

type stiffness = {
  st_fast_node : string;
  st_fast_tau : float;  (** smallest resistively-tied RC constant, s *)
  st_slow_node : string;
  st_slow_tau : float;  (** largest, s *)
  st_ratio : float;
  st_dt : float;  (** suggested step bound: [st_fast_tau / 2] *)
  st_steps : float;  (** steps to cover [5 * st_slow_tau] at [st_dt] *)
}

val stiffness_limit : float
(** Ratios above this (1e12) predict step truncation. *)

val stiffness : Rule.context -> stiffness option
(** Min/max RC time constant over nodes that are both capacitively
    loaded and resistively tied (capacitor-only nodes carry a slow,
    quasi-static mode and do not limit the step).  [None] when fewer
    than two such nodes exist. *)

(** {2 Pool passivity} *)

type pool_defect = {
  pd_pencil : [ `Conductance | `Capacitance ];
  pd_node : string;  (** pool node at the offending pivot *)
  pd_defect : float;  (** most negative LDLᵀ pivot *)
  pd_tol : float;  (** round-off allowance it was judged against *)
  pd_dim : int;  (** checked component size *)
  pd_negative : int;  (** negative-valued branches in the component *)
}

val pool_passivity : Rule.context -> pool_defect list
(** LDLᵀ PSD check of the deck's R/C pool.  All-positive pools are
    passive by diagonal dominance and skip factorization entirely;
    otherwise only the connected components actually containing a
    negative branch are assembled and factored. *)

(** {2 Rule checks} (registered in {!Rules.registry}) *)

val check_conditioning : Rule.context -> Rule.diagnostic list
val check_stiffness : Rule.context -> Rule.diagnostic list
val check_passivity : Rule.context -> Rule.diagnostic list
