(** Core vocabulary of the structural analyzer: severities, diagnostic
    subjects, located diagnostics, and the rule record the registry is
    made of.

    A {e rule} is one named structural check over a netlist (and, for
    the matching-based checks, its compiled MNA pattern).  Rules have
    stable kebab-case codes — the identifiers used by deck pragmas
    ([*%snoise ignore <code>]), the analyzer configuration, JSON
    output and the documentation in [docs/LINT.md]. *)

type severity = Warning | Error

(** What a diagnostic is about.  Subjects make diagnostics
    machine-comparable: the acceptance tests match the solver's
    {!Sn_engine.Diag.unknown} names against them. *)
type subject =
  | Element of string  (** a netlist element, by name *)
  | Node of string  (** a circuit node, by name *)
  | Port of string  (** a substrate port node (merge namespace) *)
  | Deck  (** the netlist as a whole *)

val subject_name : subject -> string
(** The bare name; [""] for {!Deck}. *)

val subject_kind : subject -> string
(** ["element"], ["node"], ["port"] or ["deck"] — the JSON
    discriminator. *)

type diagnostic = {
  severity : severity;
  code : string;  (** the rule that fired *)
  subject : subject;
  message : string;
  loc : Sn_circuit.Netlist.source_loc option;
      (** deck line of the subject element, when the netlist came from
          {!Sn_circuit.Spice} *)
}

val diag :
  ?loc:Sn_circuit.Netlist.source_loc ->
  severity ->
  string ->
  subject ->
  ('a, unit, string, diagnostic) format4 ->
  'a
(** [diag severity code subject fmt ...] builds a diagnostic with a
    printf-formatted message. *)

val compare_diagnostic : diagnostic -> diagnostic -> int
(** Total order: severity (errors first), then code, then subject
    name, then message — the documented, stable report order. *)

(** The analysis input: the netlist plus its lazily compiled MNA
    structure (shared by every pattern-based rule, built at most
    once per run). *)
type context = {
  netlist : Sn_circuit.Netlist.t;
  plan : Sn_engine.Stamp_plan.t Lazy.t;
}

val context : Sn_circuit.Netlist.t -> context

type t = {
  code : string;  (** stable identifier, e.g. ["structural-singular"] *)
  severity : severity;  (** severity of the diagnostics it emits *)
  summary : string;  (** one-line description (registry listing, docs) *)
  check : context -> diagnostic list;
}

val pp_severity : Format.formatter -> severity -> unit

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** [error [code] @ file:line: message (subject)] — the human text
    rendering used by the CLI and the flow's lint log. *)

val diagnostic_to_json : diagnostic -> string
(** One stable single-line JSON object:
    [{"severity", "code", "subject_kind", "subject", "message",
    "file", "line"}] ([file]/[line] are [null] when unlocated). *)
