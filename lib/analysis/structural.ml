module P = Sn_engine.Stamp_plan
module Mna = Sn_engine.Mna
module Diag = Sn_engine.Diag

type matching = { m_row : int array; m_col : int array; size : int }

let maximum_matching (pat : P.pattern) =
  let n = pat.P.pat_dim in
  let m_row = Array.make (max n 1) (-1) in
  let m_col = Array.make (max n 1) (-1) in
  let size = ref 0 in
  (* greedy seed before augmenting: match each row to its diagonal
     when the pattern has one (an MNA row can almost always pivot for
     its own unknown), else to any still-free column.  Augmenting from
     a partial matching still yields a maximum one, but the seed
     leaves the augmentation almost nothing to repair — without it,
     chain-structured patterns (long RC ladders) drive the naive
     row-order scan quadratic *)
  for r = 0 to n - 1 do
    let cols = pat.P.pat_adj.(r) in
    if m_col.(r) = -1 && Array.exists (fun c -> c = r) cols then begin
      m_row.(r) <- r;
      m_col.(r) <- r;
      incr size
    end
    else begin
      let n_cols = Array.length cols in
      let k = ref 0 in
      while m_row.(r) = -1 && !k < n_cols do
        let c = cols.(!k) in
        if m_col.(c) = -1 then begin
          m_row.(r) <- c;
          m_col.(c) <- r;
          incr size
        end;
        incr k
      done
    end
  done;
  (* [visited.(c) = stamp] marks column [c] as seen during the current
     augmentation, avoiding an O(n) clear per row *)
  let visited = Array.make (max n 1) (-1) in
  let rec augment stamp r =
    let cols = pat.P.pat_adj.(r) in
    let n_cols = Array.length cols in
    let rec try_col k =
      if k >= n_cols then false
      else begin
        let c = cols.(k) in
        if visited.(c) <> stamp then begin
          visited.(c) <- stamp;
          if m_col.(c) = -1 || augment stamp m_col.(c) then begin
            m_row.(r) <- c;
            m_col.(c) <- r;
            true
          end
          else try_col (k + 1)
        end
        else try_col (k + 1)
      end
    in
    try_col 0
  in
  for r = 0 to n - 1 do
    if m_row.(r) = -1 && augment r r then incr size
  done;
  { m_row; m_col; size = !size }

let unmatched_columns m =
  let out = ref [] in
  for c = Array.length m.m_col - 1 downto 0 do
    if m.m_col.(c) = -1 then out := c :: !out
  done;
  !out

let alternating_columns (pat : P.pattern) m c0 =
  let n = pat.P.pat_dim in
  (* transpose adjacency: column -> rows with a structural entry there *)
  let col_rows = Array.make n [] in
  for r = 0 to n - 1 do
    Array.iter (fun c -> col_rows.(c) <- r :: col_rows.(c)) pat.P.pat_adj.(r)
  done;
  let seen = Array.make n false in
  let rec walk acc = function
    | [] -> acc
    | c :: rest ->
      if seen.(c) then walk acc rest
      else begin
        seen.(c) <- true;
        (* free edge into any row touching c, then the matching edge
           out of that row to its matched column *)
        let next =
          List.filter_map
            (fun r ->
              let c' = m.m_row.(r) in
              if c' >= 0 && not seen.(c') then Some c' else None)
            col_rows.(c)
        in
        walk (c :: acc) (next @ rest)
      end
  in
  walk [] [ c0 ] |> List.sort_uniq compare

type deficiency = {
  analyses : string;
  unknown : Diag.unknown;
  group : Diag.unknown list;
}

(* unmatched columns of one pattern, with their dependent groups *)
let pattern_deficiencies pat =
  let m = maximum_matching pat in
  List.map
    (fun c -> (c, alternating_columns pat m c))
    (unmatched_columns m)

let deficiencies (ctx : Rule.context) =
  let plan = Lazy.force ctx.Rule.plan in
  if P.dim plan = 0 then []
  else begin
    let mna = P.mna plan in
    let name slot =
      match Diag.unknown_of_slot mna slot with
      | Some u -> u
      | None -> Diag.Node (Printf.sprintf "#%d" slot)
    in
    let dc = pattern_deficiencies (P.dc_pattern plan) in
    let ac = pattern_deficiencies (P.ac_pattern plan) in
    let slots =
      List.sort_uniq compare (List.map fst dc @ List.map fst ac)
    in
    List.map
      (fun slot ->
        let in_dc = List.assoc_opt slot dc and in_ac = List.assoc_opt slot ac in
        let analyses, group =
          match (in_dc, in_ac) with
          | Some g, None -> ("dc", g)
          | None, Some g -> ("ac", g)
          | Some g1, Some g2 ->
            ("dc and ac", List.sort_uniq compare (g1 @ g2))
          | None, None -> assert false
        in
        {
          analyses;
          unknown = name slot;
          group = List.map name group;
        })
      slots
  end

let check ctx =
  List.map
    (fun d ->
      let subject =
        match d.unknown with
        | Diag.Node n -> Rule.Node n
        | Diag.Branch b -> Rule.Element b
      in
      let qualify = function
        | Diag.Node n -> "node " ^ n
        | Diag.Branch b -> "branch of " ^ b
      in
      Rule.diag Rule.Error "structural-singular" subject
        "the %s MNA pattern is structurally singular: no equation can \
         pivot for %s (dependent group: %s); solving would fail with a \
         singular pivot"
        d.analyses (qualify d.unknown)
        (String.concat ", " (List.map qualify d.group)))
    (deficiencies ctx)
