(* Numerical pre-flight: conditioning span, stiffness spectrum and
   pool passivity, computed statically from the magnitude-annotated
   pattern the engine exports (Stamp_plan.numeric_profile). *)

module C = Sn_circuit
module E = C.Element
module P = Sn_engine.Stamp_plan
module N = Sn_numerics

let diag = Rule.diag
let profile ctx = P.numeric_profile (Lazy.force ctx.Rule.plan)

(* ------------------------------------------------------------------ *)
(* conditioning span *)

type span = {
  sp_node : string;
  sp_ratio : float;
  sp_hi : string * float;
  sp_lo : string * float;
  sp_digits : float;
}

let span_limit = 1e13

let conditioning ctx =
  let prof = profile ctx in
  let spans = ref [] in
  Array.iteri
    (fun slot ws ->
      (* the row's conductance-carrying entries; capacitive stamps
         scale with frequency / step and are judged by the stiffness
         analysis instead *)
      let gs =
        List.filter_map
          (fun w ->
            if w.P.nw_g > 0.0 then Some (w.P.nw_elt, w.P.nw_g) else None)
          ws
      in
      match gs with
      | [] | [ _ ] -> ()
      | (n0, g0) :: rest ->
        let hi, lo =
          List.fold_left
            (fun ((_, ghi) as hi, ((_, glo) as lo)) ((_, g) as w) ->
              ((if g > ghi then w else hi), if g < glo then w else lo))
            ((n0, g0), (n0, g0))
            rest
        in
        let ratio = snd hi /. snd lo in
        if ratio > span_limit then
          spans :=
            {
              sp_node = prof.P.prof_names.(slot);
              sp_ratio = ratio;
              sp_hi = hi;
              sp_lo = lo;
              sp_digits = Float.max 0.0 (15.95 -. Float.log10 ratio);
            }
            :: !spans)
    prof.P.prof_weights;
  List.sort (fun a b -> Float.compare b.sp_ratio a.sp_ratio) !spans

let check_conditioning ctx =
  List.map
    (fun s ->
      diag Rule.Warning "conditioning-span" (Rule.Node s.sp_node)
        "conductances at node %s span %.1e (%s at %.3g S against %s at \
         %.3g S): LU cancellation leaves ~%.0f significant digits in the \
         pivot; beyond 1e16 it underflows to zero and the solve fails \
         with a singular pivot at this node"
        s.sp_node s.sp_ratio (fst s.sp_hi) (snd s.sp_hi) (fst s.sp_lo)
        (snd s.sp_lo) s.sp_digits)
    (conditioning ctx)

(* ------------------------------------------------------------------ *)
(* stiffness spectrum *)

type stiffness = {
  st_fast_node : string;
  st_fast_tau : float;
  st_slow_node : string;
  st_slow_tau : float;
  st_ratio : float;
  st_dt : float;
  st_steps : float;
}

let stiffness_limit = 1e12

(* a node counts as resistively tied when its conductance sum clears
   this floor; below it the node's mode is quasi-static (set by gmin /
   leakage), not step-limiting *)
let g_floor = 1e-12

let stiffness ctx =
  let prof = profile ctx in
  let best = ref None in
  Array.iteri
    (fun slot ws ->
      let gsum = List.fold_left (fun a w -> a +. w.P.nw_g) 0.0 ws
      and csum = List.fold_left (fun a w -> a +. w.P.nw_c) 0.0 ws in
      if csum > 0.0 && gsum > g_floor then begin
        let tau = csum /. gsum in
        let node = prof.P.prof_names.(slot) in
        best :=
          match !best with
          | None -> Some ((node, tau), (node, tau))
          | Some (((_, tf) as fast), ((_, ts) as slow)) ->
            Some
              ( (if tau < tf then (node, tau) else fast),
                if tau > ts then (node, tau) else slow )
      end)
    prof.P.prof_weights;
  match !best with
  | Some ((fn, ft), (sn, st)) when fn <> sn ->
    let dt = ft /. 2.0 in
    Some
      {
        st_fast_node = fn;
        st_fast_tau = ft;
        st_slow_node = sn;
        st_slow_tau = st;
        st_ratio = st /. ft;
        st_dt = dt;
        st_steps = 5.0 *. st /. dt;
      }
  | _ -> None

let check_stiffness ctx =
  match stiffness ctx with
  | Some s when s.st_ratio > stiffness_limit ->
    [ diag Rule.Warning "stiff-transient" (Rule.Node s.st_fast_node)
        "stiffness ratio %.1e: node %s relaxes in %.2g s while node %s \
         needs %.2g s — resolving the fast mode (dt <= %.2g s) while \
         covering the slow one takes ~%.1e steps, so transient runs \
         will truncate; simulate the fast subcircuit separately or \
         relax dt past the fast constant"
        s.st_ratio s.st_fast_node s.st_fast_tau s.st_slow_node
        s.st_slow_tau s.st_dt s.st_steps ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* pool passivity *)

type pool_defect = {
  pd_pencil : [ `Conductance | `Capacitance ];
  pd_node : string;
  pd_defect : float;
  pd_tol : float;
  pd_dim : int;
  pd_negative : int;
}

(* minimal union-find over node names (the rules module has its own;
   depending on it here would be circular: Rules registers our
   checks) *)
module Uf = struct
  let find (t : (string, string) Hashtbl.t) n =
    let rec go n =
      match Hashtbl.find_opt t n with
      | None -> n
      | Some p ->
        let r = go p in
        Hashtbl.replace t n r;
        r
    in
    go n

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb
end

let pool_value = function
  | E.Resistor { ohms; _ } -> Some (1.0 /. ohms)
  | E.Capacitor { farads; _ } -> Some farads
  | _ -> None

let pool_passivity ctx =
  let pool =
    List.filter
      (fun e -> Option.is_some (pool_value e))
      (C.Netlist.elements ctx.Rule.netlist)
  in
  if List.for_all (fun e -> Option.get (pool_value e) > 0.0) pool then
    (* all branch values positive: the assembled matrices are
       symmetric, diagonally dominant with nonnegative diagonal —
       PSD by Gershgorin, no factorization needed *)
    []
  else begin
    let uf = Hashtbl.create 64 in
    List.iter
      (fun e ->
        match List.filter (fun n -> not (E.is_ground n)) (E.nodes e) with
        | a :: rest -> List.iter (Uf.union uf a) rest
        | [] -> ())
      pool;
    (* components that actually contain a negative branch; the rest
       are passive by the same dominance argument *)
    let tainted = Hashtbl.create 8 in
    List.iter
      (fun e ->
        if Option.get (pool_value e) < 0.0 then
          match List.filter (fun n -> not (E.is_ground n)) (E.nodes e) with
          | n :: _ -> Hashtbl.replace tainted (Uf.find uf n) ()
          | [] -> ())
      pool;
    let members : (string, string list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        List.iter
          (fun n ->
            if not (E.is_ground n) then begin
              let root = Uf.find uf n in
              if Hashtbl.mem tainted root then
                Hashtbl.replace members root
                  (n :: Option.value ~default:[] (Hashtbl.find_opt members root))
            end)
          (E.nodes e))
      pool;
    let defects = ref [] in
    Hashtbl.iter
      (fun root nodes ->
        let nodes = Array.of_list (List.sort_uniq String.compare nodes) in
        let index = Hashtbl.create 32 in
        Array.iteri (fun i n -> Hashtbl.replace index n i) nodes;
        let dim = Array.length nodes in
        let g = N.Mat.make dim dim and c = N.Mat.make dim dim in
        let negative = ref 0 in
        List.iter
          (fun e ->
            match E.nodes e with
            | [ n1; n2 ]
              when (E.is_ground n1 || Uf.find uf n1 = root)
                   && (E.is_ground n2 || Uf.find uf n2 = root)
                   && not (E.is_ground n1 && E.is_ground n2) ->
              let v = Option.get (pool_value e) in
              if v < 0.0 then incr negative;
              let m =
                match e with E.Resistor _ -> g | _ -> c
              in
              let stamp n w =
                if not (E.is_ground n) then
                  N.Mat.add_to m (Hashtbl.find index n) (Hashtbl.find index n) w
              in
              stamp n1 v;
              stamp n2 v;
              if (not (E.is_ground n1)) && not (E.is_ground n2) then begin
                let i = Hashtbl.find index n1 and j = Hashtbl.find index n2 in
                N.Mat.add_to m i j (-.v);
                N.Mat.add_to m j i (-.v)
              end
            | _ -> ())
          pool;
        List.iter
          (fun (tag, m) ->
            let v = N.Passivity.psd m in
            if not (N.Passivity.passes v) then
              defects :=
                {
                  pd_pencil = tag;
                  pd_node = nodes.(v.N.Passivity.index);
                  pd_defect = v.N.Passivity.defect;
                  pd_tol = v.N.Passivity.tol;
                  pd_dim = dim;
                  pd_negative = !negative;
                }
                :: !defects)
          [ (`Conductance, g); (`Capacitance, c) ])
      members;
    List.sort
      (fun a b -> Float.compare a.pd_defect b.pd_defect)
      !defects
  end

let check_passivity ctx =
  List.map
    (fun d ->
      let pencil =
        match d.pd_pencil with
        | `Conductance -> "conductance"
        | `Capacitance -> "capacitance"
      in
      diag Rule.Error "non-passive-pool" (Rule.Node d.pd_node)
        "the R/C pool is not passive: the %s matrix has LDL^T pivot \
         %.3g (tolerance %.3g) at node %s (%d-node component, %d \
         negative branch%s) — a corrupted or de-passivated reduced \
         realization; AC and transient results would be meaningless"
        pencil d.pd_defect d.pd_tol d.pd_node d.pd_dim d.pd_negative
        (if d.pd_negative = 1 then "" else "es"))
    (pool_passivity ctx)
