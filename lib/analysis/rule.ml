module C = Sn_circuit

type severity = Warning | Error

type subject =
  | Element of string
  | Node of string
  | Port of string
  | Deck

let subject_name = function
  | Element n | Node n | Port n -> n
  | Deck -> ""

let subject_kind = function
  | Element _ -> "element"
  | Node _ -> "node"
  | Port _ -> "port"
  | Deck -> "deck"

type diagnostic = {
  severity : severity;
  code : string;
  subject : subject;
  message : string;
  loc : C.Netlist.source_loc option;
}

let diag ?loc severity code subject fmt =
  Printf.ksprintf
    (fun message -> { severity; code; subject; message; loc })
    fmt

let severity_rank = function Error -> 0 | Warning -> 1

let compare_diagnostic a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = String.compare (subject_name a.subject) (subject_name b.subject) in
      if c <> 0 then c else String.compare a.message b.message

type context = {
  netlist : C.Netlist.t;
  plan : Sn_engine.Stamp_plan.t Lazy.t;
}

let context netlist =
  {
    netlist;
    plan =
      lazy (Sn_engine.Stamp_plan.build (Sn_engine.Mna.build netlist));
  }

type t = {
  code : string;
  severity : severity;
  summary : string;
  check : context -> diagnostic list;
}

let pp_severity fmt s =
  Format.pp_print_string fmt
    (match s with Error -> "error" | Warning -> "warning")

let pp_diagnostic fmt (d : diagnostic) =
  Format.fprintf fmt "%a [%s]" pp_severity d.severity d.code;
  Option.iter
    (fun (l : C.Netlist.source_loc) ->
      Format.fprintf fmt " @@ %s:%d" l.C.Netlist.file l.C.Netlist.line)
    d.loc;
  Format.fprintf fmt ": %s" d.message

(* hand-rolled JSON, same conventions as Sn_engine.Diag.to_json *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let diagnostic_to_json d =
  let file, line =
    match d.loc with
    | None -> ("null", "null")
    | Some l -> (jstr l.C.Netlist.file, string_of_int l.C.Netlist.line)
  in
  Printf.sprintf
    "{\"severity\": %s, \"code\": %s, \"subject_kind\": %s, \"subject\": %s, \
     \"message\": %s, \"file\": %s, \"line\": %s}"
    (jstr (match d.severity with Error -> "error" | Warning -> "warning"))
    (jstr d.code)
    (jstr (subject_kind d.subject))
    (jstr (subject_name d.subject))
    (jstr d.message) file line
