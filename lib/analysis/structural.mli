(** Matching-based structural singularity prediction.

    A matrix can only be nonsingular if its zero-nonzero pattern
    admits a perfect matching between rows (equations) and columns
    (unknowns) — a system of distinct representatives assigning every
    unknown a pivot position.  Over the {!Sn_engine.Stamp_plan}
    structural patterns this is a purely static test: a deck whose DC
    or AC pattern has no perfect matching {e will} die in the solver
    with a {!Sn_engine.Diag.Singular_pivot}, and the unmatched column
    names the unknown the factorization cannot eliminate.

    The converse does not hold — a pattern-perfect matrix can still be
    {e numerically} singular (two identical voltage sources in
    parallel) — which is why the analyzer keeps the graph-based
    [vsource-loop] rule alongside this one. *)

type matching = {
  m_row : int array;  (** row -> matched column, [-1] if unmatched *)
  m_col : int array;  (** column -> matched row, [-1] if unmatched *)
  size : int;  (** matched pair count; [< dim] means singular *)
}

val maximum_matching : Sn_engine.Stamp_plan.pattern -> matching
(** Kuhn's augmenting-path maximum bipartite matching, rows processed
    in ascending index so the result (and therefore every reported
    unmatched unknown) is deterministic. *)

val unmatched_columns : matching -> int list
(** Columns no maximum-matching augmentation could cover, ascending. *)

val alternating_columns :
  Sn_engine.Stamp_plan.pattern -> matching -> int -> int list
(** [alternating_columns pat m c] is the set of columns reachable from
    unmatched column [c] by alternating (non-matching / matching)
    paths — the Dulmage–Mendelsohn underdetermined block containing
    [c].  Any of these unknowns may surface as the solver's singular
    pivot, so diagnostics report the whole dependent group. *)

(** One structural rank deficiency of the compiled MNA system. *)
type deficiency = {
  analyses : string;  (** ["dc"], ["ac"] or ["dc and ac"] *)
  unknown : Sn_engine.Diag.unknown;  (** canonical unmatched unknown *)
  group : Sn_engine.Diag.unknown list;
      (** every unknown in the dependent block, including [unknown] *)
}

val deficiencies : Rule.context -> deficiency list
(** Deficiencies of the DC and AC structural patterns, merged per
    unknown, ordered by unknown slot. *)

val check : Rule.context -> Rule.diagnostic list
(** The [structural-singular] rule body: one error per deficiency. *)
