module C = Sn_circuit
module E = C.Element

let diag = Rule.diag

(* location of a named element, for diagnostics that point at a card *)
let loc_of ctx name = C.Netlist.element_loc ctx.Rule.netlist name

let elements ctx = C.Netlist.elements ctx.Rule.netlist

let canonical n = if E.is_ground n then "0" else n

(* ------------------------------------------------------------------ *)
(* small union-find over node names *)

module Uf = struct
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find (t : t) n =
    match Hashtbl.find_opt t n with
    | None -> n
    | Some p ->
      let root = find t p in
      Hashtbl.replace t n root;
      root

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb

  let connected t a b = find t a = find t b
end

(* ------------------------------------------------------------------ *)
(* dangling-node *)

let dangling_nodes ctx =
  let touches : (string, int * string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (fun n ->
          if not (E.is_ground n) then
            let count, _ =
              Option.value ~default:(0, "") (Hashtbl.find_opt touches n)
            in
            Hashtbl.replace touches n (count + 1, E.name e))
        (E.nodes e))
    (elements ctx);
  Hashtbl.fold
    (fun node (count, elt) acc ->
      if count = 1 then
        diag ?loc:(loc_of ctx elt) Rule.Warning "dangling-node"
          (Rule.Node node)
          "node %s is connected to a single terminal (of %s)" node elt
        :: acc
      else acc)
    touches []

(* ------------------------------------------------------------------ *)
(* no-ground-path: union-find over DC-conducting elements.  Current
   sources conduct DC current but have infinite impedance, so they do
   not define a node's potential. *)

let dc_conducting_edges e =
  match e with
  | E.Resistor { n1; n2; _ } | E.Inductor { n1; n2; _ } -> [ (n1, n2) ]
  | E.Vsource { np; nn; _ } | E.Vcvs { np; nn; _ } -> [ (np, nn) ]
  | E.Mosfet { drain; source; _ } -> [ (drain, source) ]
  | E.Capacitor _ | E.Isource _ | E.Vccs _ | E.Varactor _ -> []

let no_ground_path ctx =
  let uf = Uf.create () in
  let nodes = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (fun n -> Hashtbl.replace nodes (canonical n) ())
        (E.nodes e);
      List.iter
        (fun (a, b) -> Uf.union uf (canonical a) (canonical b))
        (dc_conducting_edges e))
    (elements ctx);
  (* lexicographically smallest member represents each floating
     component, so report order is deterministic *)
  let representative = Hashtbl.create 8 in
  Hashtbl.iter
    (fun node () ->
      if node <> "0" && not (Uf.connected uf node "0") then begin
        let root = Uf.find uf node in
        match Hashtbl.find_opt representative root with
        | Some best when String.compare best node <= 0 -> ()
        | _ -> Hashtbl.replace representative root node
      end)
    nodes;
  Hashtbl.fold
    (fun _ node acc ->
      diag Rule.Error "no-ground-path" (Rule.Node node)
        "the subcircuit containing node %s has no DC path to ground" node
      :: acc)
    representative []

(* ------------------------------------------------------------------ *)
(* vsource-loop: a cycle whose edges are ideal voltage-defined
   branches (V sources, inductors at DC) is numerically singular even
   when the pattern is structurally fine *)

let vsource_loops ctx =
  let uf = Uf.create () in
  List.filter_map
    (fun e ->
      match e with
      | E.Vsource { name; np = a; nn = b; _ }
      | E.Inductor { name; n1 = a; n2 = b; _ } ->
        let a = canonical a and b = canonical b in
        if Uf.connected uf a b then
          Some
            (diag ?loc:(loc_of ctx name) Rule.Error "vsource-loop"
               (Rule.Element name)
               "element %s closes a loop of ideal voltage sources / \
                inductors (singular at DC)"
               name)
        else begin
          Uf.union uf a b;
          None
        end
      | E.Vcvs _ | E.Resistor _ | E.Capacitor _ | E.Isource _ | E.Vccs _
      | E.Mosfet _ | E.Varactor _ ->
        None)
    (elements ctx)

(* ------------------------------------------------------------------ *)
(* isource-cutset: the dual of vsource-loop.  Contract every edge that
   is not a current source; a current source whose endpoints stay in
   different components crosses a cut made only of current sources, so
   KCL fixes its current with nothing to absorb the difference — the
   gmin floor turns that into voltages of order I/gmin. *)

let isource_cutsets ctx =
  let uf = Uf.create () in
  List.iter
    (fun e ->
      match e with
      | E.Isource _ -> ()
      | E.Vccs _ -> () (* dependent current source: no path either *)
      | E.Mosfet { drain; gate; source; bulk; _ } ->
        (* channel plus the device capacitances couple all terminals *)
        let d = canonical drain in
        List.iter
          (fun n -> Uf.union uf d (canonical n))
          [ gate; source; bulk ]
      | e ->
        (match E.nodes e with
         | a :: rest ->
           List.iter (fun b -> Uf.union uf (canonical a) (canonical b)) rest
         | [] -> ()))
    (elements ctx);
  List.filter_map
    (fun e ->
      match e with
      | E.Isource { name; np; nn; _ }
        when not (Uf.connected uf (canonical np) (canonical nn)) ->
        Some
          (diag ?loc:(loc_of ctx name) Rule.Warning "isource-cutset"
             (Rule.Element name)
             "the current of %s has no return path (every connection \
              between %s and %s is a current source): only the gmin \
              floor absorbs it, so voltages reach I/gmin"
             name (canonical np) (canonical nn))
      | _ -> None)
    (elements ctx)

(* ------------------------------------------------------------------ *)
(* duplicate-element: identical kind, nodes and value — a double
   merge.  Distinct values in parallel are legitimate and stay
   silent. *)

let signature e =
  let f = Printf.sprintf "%.17g" in
  match e with
  | E.Resistor { n1; n2; ohms; _ } -> Some ("r|" ^ n1 ^ "|" ^ n2 ^ "|" ^ f ohms)
  | E.Capacitor { n1; n2; farads; _ } ->
    Some ("c|" ^ n1 ^ "|" ^ n2 ^ "|" ^ f farads)
  | E.Inductor { n1; n2; henries; _ } ->
    Some ("l|" ^ n1 ^ "|" ^ n2 ^ "|" ^ f henries)
  | E.Vccs { np; nn; cp; cn; gm; _ } ->
    Some (String.concat "|" [ "g"; np; nn; cp; cn; f gm ])
  | E.Vcvs { np; nn; cp; cn; gain; _ } ->
    Some (String.concat "|" [ "e"; np; nn; cp; cn; f gain ])
  | E.Mosfet { drain; gate; source; bulk; model; w; l; mult; _ } ->
    Some
      (String.concat "|"
         [ "m"; drain; gate; source; bulk; model.C.Mos_model.name; f w; f l;
           string_of_int mult ])
  | E.Varactor { n1; n2; model; mult; _ } ->
    Some
      (String.concat "|"
         [ "y"; n1; n2; model.C.Varactor_model.name; string_of_int mult ])
  | E.Vsource _ | E.Isource _ ->
    (* stimulus waveforms rarely collide by accident *)
    None

let duplicate_elements ctx =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun e ->
      match signature e with
      | None -> None
      | Some key -> (
        match Hashtbl.find_opt seen key with
        | None ->
          Hashtbl.add seen key (E.name e);
          None
        | Some first ->
          Some
            (diag
               ?loc:(loc_of ctx (E.name e))
               Rule.Warning "duplicate-element"
               (Rule.Element (E.name e))
               "%s duplicates %s exactly (same kind, nodes and value) — \
                was one model merged twice?"
               (E.name e) first)))
    (elements ctx)

(* ------------------------------------------------------------------ *)
(* shorted-element *)

let shorted_elements ctx =
  List.filter_map
    (fun e ->
      let name = E.name e in
      let shorted a b what =
        if canonical a = canonical b then
          Some
            (diag ?loc:(loc_of ctx name) Rule.Warning "shorted-element"
               (Rule.Element name) "%s has %s on the same node (%s)" name
               what (canonical a))
        else None
      in
      match e with
      | E.Resistor { n1; n2; _ } | E.Capacitor { n1; n2; _ }
      | E.Inductor { n1; n2; _ } | E.Varactor { n1; n2; _ } ->
        shorted n1 n2 "both terminals"
      | E.Vsource { np; nn; _ } | E.Isource { np; nn; _ } ->
        shorted np nn "both terminals"
      | E.Mosfet { drain; source; _ } ->
        shorted drain source "drain and source"
      | E.Vccs { cp; cn; _ } -> shorted cp cn "both controlling pins"
      | E.Vcvs _ -> None)
    (elements ctx)

(* ------------------------------------------------------------------ *)
(* floating-gate / floating-body: a gate (bulk) node is floating when
   every terminal touching it is another gate (bulk) — no element
   defines its potential *)

type touch = Gate | Bulk | Other

let terminal_touches ctx =
  let touches : (string, touch list) Hashtbl.t = Hashtbl.create 64 in
  let add n t =
    if not (E.is_ground n) then
      Hashtbl.replace touches n
        (t :: Option.value ~default:[] (Hashtbl.find_opt touches n))
  in
  List.iter
    (fun e ->
      match e with
      | E.Mosfet { drain; gate; source; bulk; _ } ->
        add drain Other;
        add gate Gate;
        add source Other;
        add bulk Bulk
      | e -> List.iter (fun n -> add n Other) (E.nodes e))
    (elements ctx);
  touches

let floating_terminals which code what ctx =
  let touches = terminal_touches ctx in
  let floating n =
    match Hashtbl.find_opt touches n with
    | None -> false (* ground *)
    | Some ts -> List.for_all (fun t -> t = which) ts
  in
  List.filter_map
    (fun e ->
      match e with
      | E.Mosfet { name; gate; bulk; _ } ->
        let n = if which = Gate then gate else bulk in
        if floating n then
          Some
            (diag ?loc:(loc_of ctx name) Rule.Warning code (Rule.Node n)
               "%s of %s (node %s) is floating: nothing defines its \
                potential"
               what name n)
        else None
      | _ -> None)
    (elements ctx)

let floating_gates = floating_terminals Gate "floating-gate" "the gate"
let floating_bodies = floating_terminals Bulk "floating-body" "the bulk"

(* ------------------------------------------------------------------ *)
(* extreme-value: unit-suffix slips in component values and device
   geometry *)

let reduced_prefix = "red_"

(* SPICE scale suffixes a slipped card most likely dropped *)
let si_suffixes =
  [ ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6); ("m", 1e-3);
    ("k", 1e3); ("meg", 1e6); ("g", 1e9) ]

(* The classic extreme-value cause is a dropped scale suffix: the
   mantissa was right, the multiplier missing.  Suggest the suffix
   that lands the value closest (log-wise) to the geometric center of
   the plausible range; [None] when no suffix rescues it (then the
   value itself, not its scale, is wrong). *)
let suggest_suffix v lo hi =
  let center = sqrt (lo *. hi) in
  let score f = Float.abs (Float.log10 (v *. f /. center)) in
  List.filter (fun (_, f) -> v *. f >= lo && v *. f <= hi) si_suffixes
  |> function
  | [] -> None
  | c0 :: rest ->
    Some
      (List.fold_left
         (fun best c -> if score (snd c) < score (snd best) then c else best)
         c0 rest)

let extreme_values ctx =
  List.concat_map
    (fun e ->
      let name = E.name e in
      let out kind v lo hi unit =
        (* R / C ranges are checked on |v|: reduced-order macromodel
           branches (Snoise.Reduced_model, prefix "red_") legitimately
           carry negative values, and those are exempt entirely —
           their magnitudes are mathematical, not physical. *)
        if v < lo || v > hi then
          let hint =
            match
              if unit = "" then None else suggest_suffix v lo hi
            with
            | Some (sfx, f) ->
              Printf.sprintf " — was the %g meant as %g%s (%g %s)?" v v sfx
                (v *. f) unit
            | None -> ""
          in
          [ diag ?loc:(loc_of ctx name) Rule.Warning "extreme-value"
              (Rule.Element name) "%s: %s %g %s is outside [%g, %g]%s" name
              kind v unit lo hi hint ]
        else []
      in
      let reduced =
        String.length name >= String.length reduced_prefix
        && String.sub name 0 (String.length reduced_prefix) = reduced_prefix
      in
      match e with
      | _ when reduced -> []
      | E.Resistor { ohms; _ } -> out "resistance" (Float.abs ohms) 1e-6 1e11 "ohm"
      | E.Capacitor { farads; _ } -> out "capacitance" (Float.abs farads) 1e-18 1.0 "F"
      | E.Inductor { henries; _ } -> out "inductance" henries 1e-12 1e3 "H"
      | E.Mosfet { w; l; mult; _ } ->
        out "channel width W" w 1e-8 1e-2 "m"
        @ out "channel length L" l 1e-8 1e-3 "m"
        @ out "multiplicity M" (float_of_int mult) 1.0 1e4 ""
      | E.Varactor { mult; _ } ->
        out "multiplicity M" (float_of_int mult) 1.0 1e4 ""
      | E.Vsource _ | E.Isource _ | E.Vccs _ | E.Vcvs _ -> [])
    (elements ctx)

(* ------------------------------------------------------------------ *)
(* merge-binding rules.  Snoise.Merge names the elements it renders
   from the extracted models with fixed prefixes; a contract test in
   test_analysis.ml keeps these in sync with the merge layer. *)

let substrate_prefixes = [ "rsub_"; "cwell_" ]
let probe_port_prefix = "backgate:"
let well_port_prefix = "nwell:"

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_substrate_element name = List.exists (fun p -> has_prefix p name) substrate_prefixes

(* unbound-port: a substrate port node that never met anything but the
   macromodel itself.  Back-gate probes are observation-only by
   design and exempt. *)

let port_bindings ctx =
  (* node -> (substrate touches, other touches) *)
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let sub = is_substrate_element (E.name e) in
      List.iter
        (fun n ->
          if not (E.is_ground n) then begin
            let s, o = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl n) in
            Hashtbl.replace tbl n
              (if sub then (s + 1, o) else (s, o + 1))
          end)
        (E.nodes e))
    (elements ctx);
  tbl

let unbound_ports ctx =
  let tbl = port_bindings ctx in
  Hashtbl.fold
    (fun node (sub, other) acc ->
      if sub > 0 && other = 0 && not (has_prefix probe_port_prefix node) then
        diag Rule.Warning "unbound-port" (Rule.Port node)
          "substrate port %s is not bound to any circuit element — did \
           the port name match its circuit node?"
          node
        :: acc
      else acc)
    tbl []

(* untied-ring: a resistive substrate port (guard ring, substrate tap)
   that is bound to the circuit but whose non-substrate surroundings
   have no DC path to ground: the ring only "grounds" through the
   silicon it is supposed to shield. *)

let untied_rings ctx =
  let tbl = port_bindings ctx in
  let uf = Uf.create () in
  List.iter
    (fun e ->
      if not (is_substrate_element (E.name e)) then
        List.iter
          (fun (a, b) -> Uf.union uf (canonical a) (canonical b))
          (dc_conducting_edges e))
    (elements ctx);
  Hashtbl.fold
    (fun node (sub, other) acc ->
      if
        sub > 0 && other > 0
        && (not (has_prefix probe_port_prefix node))
        && (not (has_prefix well_port_prefix node))
        && not (Uf.connected uf node "0")
      then
        diag Rule.Warning "untied-ring" (Rule.Port node)
          "guard ring / substrate tap %s has no metal DC path to ground \
           — it is tied only through the substrate"
          node
        :: acc
      else acc)
    tbl []

(* ------------------------------------------------------------------ *)
(* extract-tile-degenerate: an [*%snoise extract tiles=TXxTY ...]
   directive whose tiling would leave a tile with zero cells (more
   tiles than grid cells) or guarantee a tile with zero ports
   (pigeonhole against the deck's substrate port count).  The
   geometric judgement itself lives in Sn_substrate.Tiling.degenerate,
   shared with the extractor's runtime warning. *)

let parse_pair s =
  match String.split_on_char 'x' (String.lowercase_ascii s) with
  | [ a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some a, Some b -> Some (a, b)
    | _ -> None)
  | _ -> None

(* Flow.default_options' lateral grid, assumed when the directive
   does not pin grid=NXxNY *)
let default_extract_grid = (48, 48)

let extract_tile_degenerate ctx =
  (* substrate port count of the deck: distinct non-ground nodes the
     rendered macromodel elements touch *)
  let ports =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun e ->
        if is_substrate_element (E.name e) then
          List.iter
            (fun n -> if not (E.is_ground n) then Hashtbl.replace tbl n ())
            (E.nodes e))
      (elements ctx);
    Hashtbl.length tbl
  in
  List.concat_map
    (fun (d : C.Netlist.directive) ->
      if d.C.Netlist.verb <> "extract" then []
      else
        match List.assoc_opt "tiles" d.C.Netlist.args with
        | None -> []
        | Some tv -> (
          match parse_pair tv with
          | None ->
            [ diag Rule.Warning "extract-tile-degenerate" Rule.Deck
                "extract directive: cannot parse tiles=%S (expected \
                 TXxTY, e.g. tiles=2x2)"
                tv ]
          | Some tiles -> (
            let grid =
              Option.value ~default:default_extract_grid
                (Option.bind
                   (List.assoc_opt "grid" d.C.Netlist.args)
                   parse_pair)
            in
            match Sn_substrate.Tiling.degenerate ~tiles ~grid ~ports with
            | Some why ->
              [ diag Rule.Warning "extract-tile-degenerate" Rule.Deck
                  "extract directive: %s" why ]
            | None -> [])))
    (C.Netlist.directives ctx.Rule.netlist)

(* ------------------------------------------------------------------ *)
(* unknown-pragma: a suppression that can never match a rule is a
   typo that silently disables nothing *)

let rec registry =
  [
    { Rule.code = "conditioning-span"; severity = Rule.Warning;
      summary =
        "a node whose incident conductance magnitudes span enough \
         decades to cancel the LU pivot";
      check = Numeric.check_conditioning };
    { Rule.code = "dangling-node"; severity = Rule.Warning;
      summary = "a node connected to exactly one element terminal";
      check = dangling_nodes };
    { Rule.code = "duplicate-element"; severity = Rule.Warning;
      summary = "two elements with identical kind, nodes and value";
      check = duplicate_elements };
    { Rule.code = "extract-tile-degenerate"; severity = Rule.Warning;
      summary =
        "an extract directive whose tiling leaves a tile without cells \
         or ports";
      check = extract_tile_degenerate };
    { Rule.code = "extreme-value"; severity = Rule.Warning;
      summary = "component value or device geometry outside its plausible range";
      check = extreme_values };
    { Rule.code = "floating-body"; severity = Rule.Warning;
      summary = "a MOSFET bulk node touched only by bulk terminals";
      check = floating_bodies };
    { Rule.code = "floating-gate"; severity = Rule.Warning;
      summary = "a MOSFET gate node touched only by gate terminals";
      check = floating_gates };
    { Rule.code = "isource-cutset"; severity = Rule.Warning;
      summary = "a current source whose current has no return path";
      check = isource_cutsets };
    { Rule.code = "no-ground-path"; severity = Rule.Error;
      summary = "a connected component with no DC path to ground";
      check = no_ground_path };
    { Rule.code = "non-passive-pool"; severity = Rule.Error;
      summary =
        "the deck's R/C pool assembles into an indefinite (non-passive) \
         conductance or capacitance matrix";
      check = Numeric.check_passivity };
    { Rule.code = "shorted-element"; severity = Rule.Warning;
      summary = "an element with all terminals on one node";
      check = shorted_elements };
    { Rule.code = "stiff-transient"; severity = Rule.Warning;
      summary =
        "an RC time-constant spread too wide for any transient step to \
         both resolve and cover";
      check = Numeric.check_stiffness };
    { Rule.code = "structural-singular"; severity = Rule.Error;
      summary = "the MNA pattern admits no perfect row/column matching";
      check = Structural.check };
    { Rule.code = "unbound-port"; severity = Rule.Warning;
      summary = "a substrate port that never bound to a circuit element";
      check = unbound_ports };
    { Rule.code = "unknown-pragma"; severity = Rule.Warning;
      summary = "an ignore pragma naming a rule code that does not exist";
      check = unknown_pragmas };
    { Rule.code = "untied-ring"; severity = Rule.Warning;
      summary = "a guard ring / substrate tap with no metal path to ground";
      check = untied_rings };
    { Rule.code = "vsource-loop"; severity = Rule.Error;
      summary = "a cycle of ideal voltage sources / inductors";
      check = vsource_loops };
  ]

and unknown_pragmas ctx =
  let known code = List.exists (fun r -> r.Rule.code = code) registry in
  List.filter_map
    (fun (p : C.Netlist.pragma) ->
      if known p.C.Netlist.ignore_code then None
      else
        Some
          (diag ?loc:p.C.Netlist.ignore_loc Rule.Warning "unknown-pragma"
             Rule.Deck
             "pragma ignores unknown rule code %S (known codes: see \
              docs/LINT.md)"
             p.C.Netlist.ignore_code))
    (C.Netlist.pragmas ctx.Rule.netlist)

let find code = List.find_opt (fun r -> r.Rule.code = code) registry

let codes = List.map (fun r -> r.Rule.code) registry
