(** The analyzer driver: runs every enabled rule over a netlist and
    produces a deterministic, suppression-aware report. *)

(** What to run and what to silence. *)
type config = {
  disabled : string list;
      (** rule codes not to run at all (their checks never execute) *)
  ignores : (string * string option) list;
      (** [(code, subject)] suppressions applied after running: a
          diagnostic is dropped when its code matches and — if the
          subject is [Some s] — its subject name equals [s].  [None]
          suppresses the code everywhere. *)
  use_pragmas : bool;
      (** honour [*%snoise ignore] pragmas carried by the netlist
          (see {!Sn_circuit.Spice}); they extend [ignores] *)
}

val default : config
(** Everything enabled, no suppressions, pragmas honoured. *)

type report = {
  diagnostics : Rule.diagnostic list;
      (** deduplicated and sorted with {!Rule.compare_diagnostic}:
          errors first, then by code, subject and message — stable
          across runs and element orderings *)
  suppressed : int;
      (** diagnostics dropped by [ignores] or deck pragmas *)
}

val analyze : ?config:config -> Sn_circuit.Netlist.t -> report
(** Run the {!Rules.registry} over the netlist (compiling its
    {!Sn_engine.Stamp_plan} lazily for the pattern rules).  Element
    subjects are given the element's SPICE source location when the
    netlist carries one and the rule did not attach a location
    itself. *)

val errors : report -> Rule.diagnostic list
val warnings : report -> Rule.diagnostic list

val pp_report : Format.formatter -> report -> unit
(** One {!Rule.pp_diagnostic} line per diagnostic followed by an
    ["N errors, M warnings"] summary (plus a suppressed count when
    non-zero). *)

val schema_version : int
(** Version of the JSON report shape emitted by {!to_json} (and by
    [snoise verify --json], which shares it).  Bumped when fields are
    added or change meaning; see docs/LINT.md. *)

val to_json : report -> string
(** Stable JSON object:
    [{"tool", "version", "schema_version", "errors", "warnings",
    "suppressed", "diagnostics": [...]}] with each diagnostic rendered
    by {!Rule.diagnostic_to_json}. *)
