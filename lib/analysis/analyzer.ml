module C = Sn_circuit

type config = {
  disabled : string list;
  ignores : (string * string option) list;
  use_pragmas : bool;
}

let default = { disabled = []; ignores = []; use_pragmas = true }

type report = {
  diagnostics : Rule.diagnostic list;
  suppressed : int;
}

let matches_ignore (d : Rule.diagnostic) (code, subject) =
  String.equal d.Rule.code code
  &&
  match subject with
  | None -> true
  | Some s -> String.equal (Rule.subject_name d.Rule.subject) s

let analyze ?(config = default) netlist =
  let ctx = Rule.context netlist in
  let ignores =
    if config.use_pragmas then
      config.ignores
      @ List.map
          (fun (p : C.Netlist.pragma) -> (p.ignore_code, p.ignore_subject))
          (C.Netlist.pragmas netlist)
    else config.ignores
  in
  let raw =
    List.concat_map
      (fun (r : Rule.t) ->
        if List.mem r.Rule.code config.disabled then [] else r.Rule.check ctx)
      Rules.registry
  in
  (* autofill a source location for element subjects whose rule did
     not attach one *)
  let raw =
    List.map
      (fun (d : Rule.diagnostic) ->
        match (d.Rule.loc, d.Rule.subject) with
        | None, Rule.Element name ->
          { d with Rule.loc = C.Netlist.element_loc netlist name }
        | _ -> d)
      raw
  in
  let kept, dropped =
    List.partition
      (fun d -> not (List.exists (matches_ignore d) ignores))
      raw
  in
  {
    diagnostics = List.sort_uniq Rule.compare_diagnostic kept;
    suppressed = List.length dropped;
  }

let errors r =
  List.filter
    (fun (d : Rule.diagnostic) -> d.Rule.severity = Rule.Error)
    r.diagnostics

let warnings r =
  List.filter
    (fun (d : Rule.diagnostic) -> d.Rule.severity = Rule.Warning)
    r.diagnostics

let pp_report fmt r =
  List.iter
    (fun d -> Format.fprintf fmt "%a@." Rule.pp_diagnostic d)
    r.diagnostics;
  let ne = List.length (errors r) and nw = List.length (warnings r) in
  Format.fprintf fmt "%d error%s, %d warning%s" ne
    (if ne = 1 then "" else "s")
    nw
    (if nw = 1 then "" else "s");
  if r.suppressed > 0 then
    Format.fprintf fmt " (%d suppressed)" r.suppressed;
  Format.pp_print_newline fmt ()

(* Version of the JSON report shape itself, shared by [snoise lint
   --json] and [snoise verify --json].  Bump when fields are added,
   renamed or change meaning, so downstream parsers can gate on it:
   1 = the original PR 5 shape (implicit), 2 = schema_version field
   added alongside the numerical pre-flight rules. *)
let schema_version = 2

let to_json r =
  Printf.sprintf
    "{\"tool\": \"snoise lint\", \"version\": \"1.0.0\", \
     \"schema_version\": %d, \"errors\": %d, \"warnings\": %d, \
     \"suppressed\": %d, \"diagnostics\": [%s]}"
    schema_version
    (List.length (errors r))
    (List.length (warnings r))
    r.suppressed
    (String.concat ", " (List.map Rule.diagnostic_to_json r.diagnostics))
