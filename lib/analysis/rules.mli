(** The built-in rule suite and its registry.

    Codes are stable identifiers: deck pragmas, analyzer configuration
    and [docs/LINT.md] all refer to rules by code.  The registry is
    sorted by code; {!Analyzer.analyze} runs every rule that is not
    disabled. *)

val registry : Rule.t list
(** All built-in rules, sorted by code:
    - ["conditioning-span"] (warning): a node whose incident
      conductance magnitudes span enough decades that LU elimination
      cancels its pivot — the static conditioning bound of the
      numerical pre-flight (see {!Numeric});
    - ["dangling-node"] (warning): a node touched by exactly one
      element terminal;
    - ["duplicate-element"] (warning): two elements of the same kind,
      nodes and value — almost always a double merge;
    - ["extract-tile-degenerate"] (warning): an
      [*%snoise extract tiles=TXxTY] directive whose tiling would
      leave a tile with zero cells (more tiles than lateral grid
      cells) or guarantee a tile with zero substrate ports
      (pigeonhole against the deck's port count) — the stitch then
      only adds overhead;
    - ["extreme-value"] (warning): component value or device geometry
      outside its plausible range — usually a unit-suffix slip;
    - ["floating-body"] (warning): a MOSFET bulk node touched only by
      bulk terminals — no substrate tie;
    - ["floating-gate"] (warning): a MOSFET gate node touched only by
      gate terminals — DC bias undefined;
    - ["isource-cutset"] (warning): a current source whose current has
      no return path — the cutset dual of [vsource-loop]; the gmin
      floor keeps such decks solvable, but voltages reach [I/gmin];
    - ["no-ground-path"] (error): a connected component with no DC
      path to ground;
    - ["non-passive-pool"] (error): the deck's R/C pool assembles into
      an indefinite conductance or capacitance matrix — a corrupted or
      de-passivated reduced realization (see {!Numeric});
    - ["shorted-element"] (warning): an element with all terminals on
      one node;
    - ["stiff-transient"] (warning): the per-node RC time-constant
      spread exceeds what any transient step size can both resolve and
      cover (see {!Numeric});
    - ["structural-singular"] (error): the compiled MNA pattern admits
      no perfect row/column matching (see {!Structural});
    - ["unbound-port"] (warning): a substrate macromodel port that
      never met a circuit element after {!Snoise.Merge};
    - ["unknown-pragma"] (warning): an [ignore] pragma naming a rule
      code that does not exist — a typo that suppresses nothing;
    - ["untied-ring"] (warning): a guard ring / substrate tap bound to
      circuit elements but with no metal DC path to ground;
    - ["vsource-loop"] (error): a cycle of ideal voltage sources /
      inductors (numerically singular at DC). *)

val find : string -> Rule.t option
(** Look a rule up by code. *)

val codes : string list
(** All registry codes, sorted. *)

(** {2 Merge namespace conventions}

    [Snoise.Merge] names the elements it synthesizes with these
    prefixes; the port-binding rules recognize substrate parasitics by
    them.  A contract test ([test_analysis.ml]) asserts the merge
    layer actually uses them. *)

val substrate_prefixes : string list
(** [["rsub_"; "cwell_"]] — macromodel conductances / well caps. *)

val probe_port_prefix : string
(** ["backgate:"] — observation-only ports, exempt from binding
    rules. *)

val well_port_prefix : string
(** ["nwell:"] — well ports, tied through their junction cap. *)

val is_substrate_element : string -> bool
(** Whether an element name carries a {!substrate_prefixes} prefix. *)
